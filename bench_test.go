package mlcc

// The figure benchmarks regenerate the data behind every table and figure of
// the paper's evaluation at Quick scale (see internal/exp); run them with
//
//	go test -bench=Fig -benchtime=1x
//
// Each benchmark reports the headline quantities of its figure via
// b.ReportMetric, so `-bench` output doubles as a results table. The
// micro-benchmarks at the bottom track simulator performance (events/sec,
// allocation behaviour), which bounds how large a topology the harness can
// sweep.

import (
	"testing"
	"time"

	"mlcc/internal/audit"
	"mlcc/internal/exp"
	"mlcc/internal/fabric"
	"mlcc/internal/link"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// runExperiment executes a registered experiment once per bench iteration.
func runExperiment(b *testing.B, id string) *exp.Report {
	b.Helper()
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rep *exp.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = e.Run(exp.Config{Scale: exp.Quick, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// metric pulls a table cell into the benchmark output.
func metric(b *testing.B, rep *exp.Report, table int, row, col, name string) {
	b.Helper()
	if table >= len(rep.Tables) {
		return
	}
	if v, ok := rep.Tables[table].Get(row, col); ok {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig02Motivation(b *testing.B) {
	rep := runExperiment(b, "fig2")
	metric(b, rep, 0, "dcqcn", "pfcPauses", "dcqcn-pfc")
	metric(b, rep, 0, "dcqcn", "peakLeafQMB", "dcqcn-peakQ-MB")
}

func BenchmarkFig03Motivation(b *testing.B) {
	rep := runExperiment(b, "fig3")
	metric(b, rep, 0, "dcqcn", "intraShare", "dcqcn-intraShare")
	metric(b, rep, 0, "mlcc", "intraShare", "mlcc-intraShare")
}

func BenchmarkFig04Motivation(b *testing.B) {
	rep := runExperiment(b, "fig4")
	metric(b, rep, 0, "dcqcn", "peakQMB", "dcqcn-peakQ-MB")
	metric(b, rep, 0, "dcqcn", "avgQMB", "dcqcn-avgQ-MB")
}

func BenchmarkFig07Convergence(b *testing.B) {
	rep := runExperiment(b, "fig7")
	metric(b, rep, 0, "simultaneous", "jain", "jain-simultaneous")
	metric(b, rep, 0, "sequential", "jain", "jain-sequential")
	metric(b, rep, 0, "simultaneous", "mean", "mean-Gbps")
}

func BenchmarkFig08Convergence(b *testing.B) {
	rep := runExperiment(b, "fig8")
	metric(b, rep, 0, "simultaneous", "jain", "jain-simultaneous")
	metric(b, rep, 0, "simultaneous", "dciQMB", "dciQ-MB")
}

func BenchmarkFig09DQMTheta(b *testing.B) {
	rep := runExperiment(b, "fig9")
	metric(b, rep, 0, "18.000ms", "peak", "theta18-peakQ-MB")
	metric(b, rep, 0, "18.000ms", "steady", "theta18-steadyQ-MB")
	metric(b, rep, 0, "18.000ms", "perFlowSteady", "theta18-perflowQ-MB")
}

func BenchmarkFig10DQMSequential(b *testing.B) {
	rep := runExperiment(b, "fig10")
	metric(b, rep, 0, "theta=18ms", "peak", "peakQ-MB")
	metric(b, rep, 0, "theta=18ms", "final", "finalQ-MB")
}

func BenchmarkFig11HeavyLoad(b *testing.B) {
	rep := runExperiment(b, "fig11")
	metric(b, rep, 0, "mlcc", "intra", "ws-mlcc-intra-ms")
	metric(b, rep, 0, "dcqcn", "intra", "ws-dcqcn-intra-ms")
	metric(b, rep, 1, "dcqcn", "intra", "ws-reduction-vs-dcqcn-pct")
}

func BenchmarkFig12LightLoad(b *testing.B) {
	rep := runExperiment(b, "fig12")
	metric(b, rep, 0, "mlcc", "intra", "ws-mlcc-intra-ms")
	metric(b, rep, 1, "dcqcn", "intra", "ws-reduction-vs-dcqcn-pct")
}

func BenchmarkFig13TailHeavy(b *testing.B) {
	rep := runExperiment(b, "fig13")
	metric(b, rep, 0, "mlcc", "<10KB", "ws-intra-small-p999-ms")
	metric(b, rep, 1, "mlcc", ">5M", "ws-cross-big-p999-ms")
}

func BenchmarkFig14TailLight(b *testing.B) {
	rep := runExperiment(b, "fig14")
	metric(b, rep, 0, "mlcc", "<10KB", "ws-intra-small-p999-ms")
}

func BenchmarkFig15ShortHaul(b *testing.B) {
	rep := runExperiment(b, "fig15")
	metric(b, rep, 0, "mlcc", "intra", "ws-mlcc-intra-ms")
	metric(b, rep, 1, "dcqcn", "intra", "ws-reduction-vs-dcqcn-pct")
}

func BenchmarkFig16Testbed(b *testing.B) {
	rep := runExperiment(b, "fig16")
	metric(b, rep, 0, "mlcc", "overall", "mlcc-overall-ms")
	metric(b, rep, 0, "dcqcn", "overall", "dcqcn-overall-ms")
}

// --- micro-benchmarks -------------------------------------------------------

// BenchmarkSimulatorThroughput measures raw engine throughput on a saturated
// two-DC network: simulated events per wall second bound every experiment.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
		n := topo.TwoDC(p)
		for j := 0; j < 4; j++ {
			n.AddFlow(n.RackHost(1, j), n.RackHost(5, j), 1<<24, 0)
		}
		n.Run(5 * sim.Millisecond)
		b.ReportMetric(float64(n.Fired()), "events/op")
	}
}

// shardBenchRun executes the full-scale dumbbell workload (§4.6 shape at the
// paper's 32-hosts-per-rack scale) on the given shard count, with the
// conservation audit attached. It returns the wall time, total fired events,
// and the busiest single shard's fired events (the per-window critical path,
// which bounds parallel speedup at total/max).
func shardBenchRun(b *testing.B, shards int) (time.Duration, uint64, uint64) {
	b.Helper()
	p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
	p.HostsPerLeaf = 32
	p.HostRate = 100 * sim.Gbps
	p.Seed = 1
	p.Shards = shards
	p.Audit = audit.New()
	n := topo.Dumbbell(p)
	flows, err := workload.Generate(workload.Spec{
		CDF:       workload.Websearch(),
		IntraLoad: 0.5,
		CrossLoad: 0.2,
		HostRate:  n.P.HostRate,
		IntraRate: n.PerHostBisection(),
		CrossRate: n.P.FabricRate,
		Hosts:     n.NumHosts(),
		Duration:  5 * sim.Millisecond,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, fs := range flows {
		n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
	}
	t0 := time.Now()
	n.Run(60 * sim.Millisecond)
	wall := time.Since(t0)
	if got := n.ShardCount(); got != shards {
		b.Fatalf("network built with %d shards, want %d", got, shards)
	}
	if probs := n.AuditProblems(); len(probs) != 0 {
		b.Fatalf("shards=%d: conservation audit failed: %v", shards, probs)
	}
	var maxShard uint64
	for _, e := range n.Engines {
		if f := e.Fired(); f > maxShard {
			maxShard = f
		}
	}
	return wall, n.Fired(), maxShard
}

// BenchmarkShardSpeedup measures the tentpole's payoff: the same full-scale
// dumbbell workload on one engine versus one engine per DC. Both runs must
// fire the same event count (the determinism property) and close the merged
// conservation books. Reported metrics:
//
//   - "speedup": wall(shards=1)/wall(shards=2) as measured on this machine.
//     Needs ≥2 CPUs to show parallelism; on one CPU the residual gain comes
//     from halving the event-heap depth.
//   - "bound-speedup": total events / busiest shard's events — the
//     workload-balance bound the barrier design achieves given enough CPUs
//     (each window's wall time is its slowest shard).
func BenchmarkShardSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w1, f1, _ := shardBenchRun(b, 1)
		w2, f2, maxShard := shardBenchRun(b, 2)
		if f1 != f2 {
			b.Fatalf("event counts diverged: shards=1 fired %d, shards=2 fired %d", f1, f2)
		}
		b.ReportMetric(w1.Seconds()/w2.Seconds(), "speedup")
		b.ReportMetric(float64(f2)/float64(maxShard), "bound-speedup")
		b.ReportMetric(w1.Seconds()*1000, "single-ms")
		b.ReportMetric(w2.Seconds()*1000, "sharded-ms")
	}
}

// BenchmarkSingleFlowFCT measures the cost of one complete flow lifecycle.
func BenchmarkSingleFlowFCT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
		n := topo.TwoDC(p)
		f := n.AddFlow(0, 20, 1<<20, 0)
		n.Run(50 * sim.Millisecond)
		if !f.Done {
			b.Fatal("flow incomplete")
		}
	}
}

// BenchmarkWorkloadGeneration measures the traffic generator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	spec := workload.Spec{
		CDF:       workload.Websearch(),
		IntraLoad: 0.5,
		CrossLoad: 0.2,
		HostRate:  25 * sim.Gbps,
		CrossRate: 100 * sim.Gbps,
		Hosts:     64,
		Duration:  5 * sim.Millisecond,
		Seed:      1,
	}
	for i := 0; i < b.N; i++ {
		flows, err := workload.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(flows) == 0 {
			b.Fatal("no flows")
		}
	}
}

// BenchmarkEngineSchedule measures the cost of scheduling and firing one
// event — the innermost operation of every simulation.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Nanosecond, fn)
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineCancelReschedule measures the pacing/timeout pattern used by
// hosts and PFQ disciplines: arm a timer, cancel it, arm a tighter one.
func BenchmarkEngineCancelReschedule(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.After(2*sim.Nanosecond, fn)
		t.Cancel()
		e.After(sim.Nanosecond, fn)
		if e.PendingRaw() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

// benchSink counts and frees every delivered frame.
type benchSink struct {
	pool *pkt.Pool
	got  int64
}

func (s *benchSink) Receive(p *pkt.Packet, on *link.Port) {
	s.got++
	s.pool.Put(p)
}

// benchFeed emits a fixed number of MTU-sized data frames.
type benchFeed struct {
	pool      *pkt.Pool
	remaining int
}

func (f *benchFeed) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	if f.remaining == 0 {
		return nil
	}
	f.remaining--
	return f.pool.NewData(1, 1, 2, 0, pkt.DefaultMTU)
}

// BenchmarkLinkTransfer measures the per-packet cost of the link layer:
// serialization event, wire pipe, delivery. One op = one frame end to end.
func BenchmarkLinkTransfer(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	pool := pkt.NewPool()
	sink := &benchSink{pool: pool}
	feed := &benchFeed{pool: pool}
	a := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
	z := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
	link.Connect(a, z)
	a.SetSource(feed)
	z.SetSource(&benchFeed{pool: pool})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed.remaining = 1
		a.Kick()
		e.Run()
	}
	if sink.got != int64(b.N) {
		b.Fatalf("delivered %d frames, want %d", sink.got, b.N)
	}
}

// BenchmarkSwitchForward measures the per-packet cost of the fabric switch:
// admission, ECN, FIFO enqueue/dequeue, INT stamping, link transmission.
func BenchmarkSwitchForward(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	pool := pkt.NewPool()
	sw := fabric.New(e, pool, fabric.Config{
		ID: 100, BufferBytes: 22 << 20,
		ECNKmin: 100 << 10, ECNKmax: 400 << 10, ECNPmax: 0.2,
		INTEnabled: true, Seed: 1,
	})
	sink := &benchSink{pool: pool}
	idle := &benchFeed{pool: pool}
	p0 := sw.AddPort(100*sim.Gbps, sim.Microsecond)
	p1 := sw.AddPort(100*sim.Gbps, sim.Microsecond)
	e0 := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
	e1 := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
	e0.SetSource(idle)
	e1.SetSource(idle)
	link.Connect(p0, e0)
	link.Connect(p1, e1)
	sw.AddRoute(2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Receive(pool.NewData(1, 1, 2, 0, pkt.DefaultMTU), sw.Port(0))
		e.Run()
	}
	if sink.got != int64(b.N) {
		b.Fatalf("delivered %d frames, want %d", sink.got, b.N)
	}
}

// BenchmarkFCTCollector measures summary statistics on 100k samples.
func BenchmarkFCTCollector(b *testing.B) {
	col := stats.NewFCTCollector()
	for i := 0; i < 100_000; i++ {
		col.Add(stats.FCTSample{
			Size:  int64(i%1000)*1000 + 1,
			FCT:   sim.Time(i%977+1) * sim.Microsecond,
			Cross: i%7 == 0,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := col.Percentile(stats.Intra, 0.999); !ok {
			b.Fatal("no samples")
		}
	}
}
