package main

import (
	"strings"
	"testing"
)

func TestValidateShards(t *testing.T) {
	cases := []struct {
		name     string
		in       int
		want     int
		wantErr  bool
		wantWarn string // substring of a warning, "" = no warnings
	}{
		{name: "zero rejected", in: 0, wantErr: true},
		{name: "negative rejected", in: -3, wantErr: true},
		{name: "one is silent", in: 1, want: 1},
		{name: "two is silent", in: 2, want: 2},
		{name: "excess clamps", in: 8, want: 2, wantWarn: "clamped to 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, warns, err := validateShards(c.in)
			if c.wantErr {
				if err == nil {
					t.Fatalf("validateShards(%d) accepted, want error", c.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("validateShards(%d): %v", c.in, err)
			}
			if got != c.want {
				t.Errorf("shards = %d, want %d", got, c.want)
			}
			if c.wantWarn == "" {
				if len(warns) != 0 {
					t.Errorf("unexpected warnings %q", warns)
				}
				return
			}
			found := false
			for _, w := range warns {
				if strings.Contains(w, c.wantWarn) {
					found = true
				}
			}
			if !found {
				t.Errorf("warnings %q missing %q", warns, c.wantWarn)
			}
		})
	}
}

// TestNoFeatureFallsBack pins the shard-safety contract at the CLI: neither
// telemetry flags nor fault plans downgrade -shards 2 — every plane is
// shard-safe, so validateShards no longer needs to know what the run carries.
func TestNoFeatureFallsBack(t *testing.T) {
	got, warns, err := validateShards(2)
	if err != nil || got != 2 || len(warns) != 0 {
		t.Fatalf("validateShards(2) = (%d, %q, %v), want (2, none, nil)", got, warns, err)
	}
}
