// Command mlccsim runs one workload simulation on the two-datacenter
// topology and prints an FCT summary.
//
// Examples:
//
//	mlccsim -alg mlcc -workload websearch -intra 0.5 -cross 0.2
//	mlccsim -alg dcqcn -workload hadoop -intra 0.3 -cross 0.1 -duration 10ms
//	mlccsim -alg hpcc -fb-loss 0.3 -fb-corrupt 0.2 -audit
//	mlccsim -alg mlcc -scenario plan.json
//	mlccsim -alg mlcc -scenario-kind collective
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"mlcc"
)

func main() {
	var (
		alg      = flag.String("alg", "mlcc", "congestion control algorithm: "+strings.Join(mlcc.Algorithms(), ", "))
		wl       = flag.String("workload", "websearch", "traffic distribution: "+strings.Join(mlcc.Workloads(), ", "))
		intra    = flag.Float64("intra", 0.5, "intra-DC load (fraction of per-host bisection capacity)")
		cross    = flag.Float64("cross", 0.2, "cross-DC load (fraction of long-haul capacity)")
		duration = flag.Duration("duration", 5*time.Millisecond, "flow arrival window")
		hosts    = flag.Int("hosts-per-leaf", 8, "servers per rack (paper scale: 32)")
		longhaul = flag.Duration("longhaul", 3*time.Millisecond, "inter-DC propagation delay")
		dumbbell = flag.Bool("dumbbell", false, "use the testbed dumbbell topology")
		shards   = flag.Int("shards", 1, "per-DC simulation engines (2 = parallel shards; results are bit-identical)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		flowsIn  = flag.String("flows", "", "replay a flow trace file instead of generating traffic")
		flowsOut = flag.String("save-flows", "", "write the generated workload to a trace file")
		fctOut   = flag.String("fct", "", "write per-flow completion times to a CSV file")

		scenIn   = flag.String("scenario", "", "run the composed scenario from this JSON plan file instead of generating traffic")
		scenKind = flag.String("scenario-kind", "", "run a canonical acceptance scenario: "+strings.Join(mlcc.ScenarioKinds(), ", "))

		faultIn  = flag.String("fault-plan", "", "inject the scripted link/node faults from this JSON plan file")
		wanLoss  = flag.Float64("wan-loss", 0, "Bernoulli loss probability on the long-haul link for the whole run")
		useAudit = flag.Bool("audit", false, "enable the end-to-end conservation audit (exits non-zero on any violation)")

		useGuard    = flag.Bool("guard", false, "arm the runtime guard plane (PFC pause-storm watchdog, pause-cycle deadlock detector, global progress supervisor)")
		guardStallK = flag.Int("guard-stall-k", 0, "progress-supervisor stall threshold in max-RTTs (0 = guard default; implies -guard)")

		fbLoss    = flag.Float64("fb-loss", 0, "drop probability for feedback frames (ACK/CNP/Switch-INT) at every host's feedback ingress")
		fbCorrupt = flag.Float64("fb-corrupt", 0, "INT-stack corruption probability for feedback frames at every host")
		fbDelay   = flag.Duration("fb-delay", 0, "fixed extra delay on every feedback frame")
		fbJitter  = flag.Duration("fb-jitter", 0, "max uniform random extra feedback delay (bounded reordering)")
		watchdogK = flag.Int("watchdog-k", 0, "arm the feedback-silence watchdog at K round-trips (0 = off, or the default K when a -fb-* flag is given)")

		useMetrics = flag.Bool("metrics", false, "enable the telemetry metrics registry")
		flightN    = flag.Int("flight-recorder", 0, "keep the last N packet-lifecycle events in a flight recorder")
		telOut     = flag.String("telemetry-out", "", "write manifest.json/series.csv/flight.log to this directory (implies -metrics)")
		sampleIvl  = flag.Duration("sample", 0, "telemetry time-series sampling interval (default 100µs when -telemetry-out is set)")
		serveAddr  = flag.String("serve", "", "serve live observability HTTP (/metrics, /manifest, /flight, /trace, /debug/pprof) on this address during and after the run (implies -metrics); Ctrl-C to exit")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	cfg := mlcc.Config{
		Algorithm:     *alg,
		Workload:      *wl,
		IntraLoad:     *intra,
		CrossLoad:     *cross,
		Duration:      mlcc.Time(duration.Nanoseconds()) * mlcc.Nanosecond,
		HostsPerLeaf:  *hosts,
		LongHaulDelay: mlcc.Time(longhaul.Nanoseconds()) * mlcc.Nanosecond,
		Dumbbell:      *dumbbell,
		Audit:         *useAudit,
		Seed:          *seed,
	}
	if *telOut != "" {
		*useMetrics = true
		if *sampleIvl == 0 {
			*sampleIvl = 100 * time.Microsecond
		}
	}
	if *serveAddr != "" {
		*useMetrics = true
	}
	if *useMetrics || *flightN > 0 {
		cfg.Telemetry = mlcc.NewTelemetry(mlcc.TelemetryOptions{
			Metrics:            *useMetrics,
			FlightRecorderSize: *flightN,
			SampleInterval:     mlcc.Time(sampleIvl.Nanoseconds()) * mlcc.Nanosecond,
			SampleAll:          true,
		})
	}
	if *scenIn != "" && *scenKind != "" {
		fmt.Fprintln(os.Stderr, "mlccsim: -scenario and -scenario-kind are mutually exclusive")
		os.Exit(2)
	}
	if *scenIn != "" {
		f, err := os.Open(*scenIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		cfg.Scenario, err = mlcc.ReadScenarioPlan(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
	}
	if *scenKind != "" {
		totalHosts := 2 * 4 * *hosts
		if *dumbbell {
			totalHosts = 2 * *hosts
		}
		plan, err := mlcc.CanonicalScenario(*scenKind, totalHosts, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(2)
		}
		cfg.Scenario = plan
	}
	if cfg.Scenario != nil && !explicit["longhaul"] {
		// Let a plan profile reshape the haul: only an explicit -longhaul
		// overrides it (mlcc.Run treats a zero delay as "use the default").
		cfg.LongHaulDelay = 0
	}
	if *faultIn != "" {
		f, err := os.Open(*faultIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		cfg.Fault, err = mlcc.ReadFaultPlan(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
	}
	if *wanLoss > 0 {
		if cfg.Fault == nil {
			cfg.Fault = &mlcc.FaultPlan{Seed: *seed}
		}
		cfg.Fault.Loss = append(cfg.Fault.Loss, mlcc.FaultLossRule{Link: "longhaul", Prob: *wanLoss})
	}
	if *fbLoss > 0 || *fbCorrupt > 0 || *fbDelay > 0 || *fbJitter > 0 {
		if cfg.Fault == nil {
			cfg.Fault = &mlcc.FaultPlan{Seed: *seed}
		}
		cfg.Fault.Feedback = append(cfg.Fault.Feedback, mlcc.FaultFeedbackRule{
			Host:    "*",
			Drop:    *fbLoss,
			Corrupt: *fbCorrupt,
			Delay:   mlcc.Time(fbDelay.Nanoseconds()) * mlcc.Nanosecond,
			Jitter:  mlcc.Time(fbJitter.Nanoseconds()) * mlcc.Nanosecond,
		})
		// Feedback under attack without a watchdog decays nothing; arm the
		// default unless the user chose a K (or explicitly left it off with
		// a JSON plan instead of flags).
		if *watchdogK == 0 {
			*watchdogK = mlcc.DefaultFBWatchdogK
		}
	}
	cfg.FBWatchdogK = *watchdogK
	if *useGuard || *guardStallK > 0 {
		cfg.Guard = &mlcc.GuardConfig{StallK: *guardStallK}
	}
	nShards, warns, err := validateShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlccsim:", err)
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "mlccsim:", w)
	}
	cfg.Shards = nShards
	if *flowsIn != "" {
		f, err := os.Open(*flowsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		totalHosts := 2 * 4 * *hosts // leaves per DC × hosts per leaf × 2 DCs
		if *dumbbell {
			totalHosts = 2 * *hosts
		}
		cfg.Flows, err = mlcc.ReadFlows(f, totalHosts)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
	}
	var obsSrv *mlcc.ObsServer
	if *serveAddr != "" {
		obsSrv = mlcc.NewObsServer()
		addr, err := obsSrv.Serve(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mlccsim: observability server on http://%s\n", addr)
		cfg.Obs = obsSrv
	}
	t0 := time.Now()
	res, err := mlcc.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlccsim:", err)
		os.Exit(1)
	}
	if *flowsOut != "" {
		f, err := os.Create(*flowsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		if err := mlcc.WriteFlows(f, res.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *fctOut != "" {
		f, err := os.Create(*fctOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		if err := res.FCT.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *telOut != "" {
		if err := cfg.Telemetry.WriteDir(*telOut); err != nil {
			fmt.Fprintln(os.Stderr, "mlccsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("algorithm      %s\n", *alg)
	if cfg.Scenario != nil {
		fmt.Printf("scenario       %s (%d components)\n", cfg.Scenario.Name, len(cfg.Scenario.Components()))
	} else {
		fmt.Printf("workload       %s (intra %.0f%%, cross %.0f%%)\n", *wl, *intra*100, *cross*100)
	}
	fmt.Printf("flows          %d (%d completed, %d unfinished)\n", res.Flows, res.Completed, res.Unfinished)
	if cfg.Fault != nil {
		fmt.Printf("aborted flows  %d\n", res.Aborted)
		fmt.Printf("fault drops    %d\n", res.FaultDrops)
	}
	if res.NodeCrashes+res.NodeRestarts+res.SwitchFails+res.SwitchRecovers > 0 {
		fmt.Printf("node faults    %d crashes, %d restarts, %d switch fails, %d recovers\n",
			res.NodeCrashes, res.NodeRestarts, res.SwitchFails, res.SwitchRecovers)
	}
	if res.FBDrops > 0 || res.FBCorrupts > 0 || res.InvalidINT > 0 {
		fmt.Printf("fb faults      %d dropped, %d corrupted, %d invalid INT discarded\n",
			res.FBDrops, res.FBCorrupts, res.InvalidINT)
	}
	if cfg.FBWatchdogK > 0 {
		fmt.Printf("watchdog       K=%d: %d decays, %d recovers\n",
			cfg.FBWatchdogK, res.WatchdogDecays, res.WatchdogRecovers)
	}
	fmt.Printf("avg FCT intra  %v\n", res.AvgFCTIntra)
	fmt.Printf("avg FCT cross  %v\n", res.AvgFCTCross)
	fmt.Printf("avg FCT        %v\n", res.AvgFCT)
	fmt.Printf("p99.9 intra    %v\n", res.P999Intra)
	fmt.Printf("p99.9 cross    %v\n", res.P999Cross)
	fmt.Printf("PFC pauses     %d\n", res.PFCPauses)
	fmt.Printf("drops          %d\n", res.Drops)
	for _, cs := range res.Collectives {
		state := "finished"
		if cs.Failed {
			state = "FAILED"
		} else if !cs.Finished {
			state = "unfinished"
		}
		fmt.Printf("collective %-10s %s, %d/%d phases, last barrier at %v\n",
			cs.Name, state, cs.PhasesDone, cs.Phases, cs.FinishedAt)
	}
	if res.Tenants != nil {
		for _, name := range res.Tenants.Names() {
			avg, _ := res.Tenants.AvgFCT(name)
			p99, _ := res.Tenants.Percentile(name, 0.99)
			fmt.Printf("tenant %-12s %d done, %d aborted, %d bytes, avg FCT %v, p99 %v\n",
				name, res.Tenants.Completed(name), res.Tenants.Aborted(name),
				res.Tenants.CompletedBytes(name), avg, p99)
		}
		fmt.Printf("fairness       %.3f (Jain, completed bytes)\n", res.Tenants.Fairness())
	}
	if cfg.Guard != nil {
		fmt.Printf("guard          %d storms, %d deadlocks, %d stalls\n",
			res.GuardStorms, res.GuardDeadlocks, res.GuardStalls)
	}
	if *useAudit {
		if len(res.AuditProblems) > 0 {
			fmt.Printf("audit          %d conservation problem(s)\n", len(res.AuditProblems))
		} else {
			fmt.Printf("%s\n", res.Audit)
		}
	}
	fmt.Printf("elapsed        %v\n", time.Since(t0).Round(time.Millisecond))

	// A run that finished but failed an invariant exits non-zero with one
	// diagnostic line, so scripted callers don't have to parse the summary.
	var failure string
	switch {
	case len(res.AuditProblems) > 0:
		failure = fmt.Sprintf("audit: %d conservation problem(s), first: %s",
			len(res.AuditProblems), res.AuditProblems[0])
	case res.Stalled:
		failure = "guard: run stalled: " + res.StallReason
	case res.Aborted > 0 && cfg.Fault == nil:
		failure = fmt.Sprintf("%d flow(s) aborted with no fault plan attached", res.Aborted)
	}
	if failure != "" {
		fmt.Fprintln(os.Stderr, "mlccsim:", failure)
	}
	if obsSrv != nil {
		fmt.Fprintf(os.Stderr, "mlccsim: serving final snapshot on http://%s; Ctrl-C to exit\n", obsSrv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		obsSrv.Close()
	}
	if failure != "" {
		os.Exit(1)
	}
}
