package main

import "fmt"

// validateShards sanity-checks the -shards argument before the run starts,
// so a bad value is a CLI error rather than a silent clamp deep in the
// topology builder. It returns the shard count to use plus any warnings to
// print: counts above the per-DC maximum clamp with a warning. Nothing else
// forces a fallback: telemetry keeps a per-shard flight-recorder ring with
// pump-driven sampling at quiescent boundaries, and fault plans schedule
// their scripted events per direction on the engine owning each port with
// per-direction PRNG streams, so every plane is shard-safe.
func validateShards(n int) (int, []string, error) {
	if n < 1 {
		return 0, nil, fmt.Errorf("-shards must be at least 1, got %d", n)
	}
	var warns []string
	if n > 2 {
		warns = append(warns, fmt.Sprintf("-shards %d clamped to 2: one engine-shard per datacenter", n))
		n = 2
	}
	return n, warns, nil
}
