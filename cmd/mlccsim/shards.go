package main

import "fmt"

// validateShards sanity-checks the -shards argument before the run starts,
// so a bad value is a CLI error rather than a silent clamp deep in the
// topology builder. It returns the shard count to use plus any warnings to
// print: counts above the per-DC maximum clamp with a warning, and a fault
// plan — which scripts both sides of the long-haul link from one timeline —
// downgrades to one engine with a warning, mirroring topo.Params.ShardFallback
// but visibly. Telemetry never forces a fallback: the flight recorder keeps a
// per-shard ring and sampling is pump-driven at quiescent boundaries, so every
// plane is shard-safe.
func validateShards(n int, haveFault bool) (int, []string, error) {
	if n < 1 {
		return 0, nil, fmt.Errorf("-shards must be at least 1, got %d", n)
	}
	var warns []string
	if n > 2 {
		warns = append(warns, fmt.Sprintf("-shards %d clamped to 2: one engine-shard per datacenter", n))
		n = 2
	}
	if n > 1 && haveFault {
		warns = append(warns, "-shards ignored (fault plans script both sides of the long-haul link from one timeline); running on a single engine")
		n = 1
	}
	return n, warns, nil
}
