package main

import "fmt"

// validateShards sanity-checks the -shards argument before the run starts,
// so a bad value is a CLI error rather than a silent clamp deep in the
// topology builder. It returns the shard count to use plus any warnings to
// print: counts above the per-DC maximum clamp with a warning, and features
// that pin the simulation to a single timeline (fault plans, time-series
// sampling, the flight recorder) downgrade to one engine with a warning —
// mirroring topo.Params.ShardFallback, but visibly.
func validateShards(n int, haveFault, haveRecorder, haveSampling bool) (int, []string, error) {
	if n < 1 {
		return 0, nil, fmt.Errorf("-shards must be at least 1, got %d", n)
	}
	var warns []string
	if n > 2 {
		warns = append(warns, fmt.Sprintf("-shards %d clamped to 2: one engine-shard per datacenter", n))
		n = 2
	}
	if n > 1 {
		reason := ""
		switch {
		case haveFault:
			reason = "fault plans script both sides of the long-haul link from one timeline"
		case haveRecorder:
			reason = "the flight recorder is shared hot-path state"
		case haveSampling:
			reason = "time-series sampling ticks on a single engine"
		}
		if reason != "" {
			warns = append(warns, "-shards ignored ("+reason+"); running on a single engine")
			n = 1
		}
	}
	return n, warns, nil
}
