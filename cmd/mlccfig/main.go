// Command mlccfig regenerates the data behind any figure of the paper's
// evaluation. Run with -list to see experiment ids.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mlcc/internal/exp"
	"mlcc/internal/obs"
	"mlcc/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		full    = flag.Bool("full", false, "run at the paper's full scale (slow)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 2, "per-DC simulation engines (1 = single engine; figures are bit-identical either way)")
		fig     = flag.String("fig", "", "experiment id (fig2..fig16, ablation) or 'all'")
		csvDir  = flag.String("csv", "", "directory to write per-figure time-series CSVs")
		manDir  = flag.String("manifests", "", "directory to write per-figure run manifests (JSON)")
		serve   = flag.String("serve", "", "serve observability HTTP (/healthz, /manifest, /debug/pprof) on this address while figures run; each figure's manifests appear as it completes")
	)
	flag.Parse()
	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.Lookup(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: mlccfig -fig <id>|all [-full] [-seed N]")
		os.Exit(2)
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = exp.IDs()
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "mlccfig: -shards must be at least 1, got %d\n", *shards)
		os.Exit(2)
	}
	cfg := exp.Config{Scale: exp.Quick, Seed: *seed, Workers: *workers, Shards: *shards}
	if *full {
		cfg.Scale = exp.Full
	}
	var srv *obs.Server
	if *serve != "" {
		srv = obs.NewServer()
		addr, err := srv.Serve(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlccfig:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mlccfig: observability server on http://%s\n", addr)
	}
	failed := false
	for _, id := range ids {
		e, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n(elapsed %v)\n\n", rep, time.Since(t0).Round(time.Millisecond))
		for _, w := range rep.Warnings {
			fmt.Fprintf(os.Stderr, "mlccfig: %s: warning: %s\n", id, w)
		}
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "mlccfig: %s: failure: %s\n", id, f)
			failed = true
		}
		if srv != nil {
			for _, m := range rep.Manifests {
				srv.AddManifest(m)
			}
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "%s: csv: %v\n", id, err)
				os.Exit(1)
			}
		}
		if *manDir != "" {
			if err := writeManifests(*manDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "%s: manifests: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeManifests exports the report's run manifests as
// <dir>/<figid>.manifests.json (one JSON array per figure).
func writeManifests(dir string, rep *exp.Report) error {
	if len(rep.Manifests) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(rep.Manifests, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, rep.ID+".manifests.json"), append(raw, '\n'), 0o644)
}

// writeCSV exports a report's time series as <dir>/<figid>.csv in long form.
func writeCSV(dir string, rep *exp.Report) error {
	if len(rep.Series) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tr := trace.New()
	for i, ser := range rep.Series {
		// Series names may repeat across sub-scenarios; disambiguate.
		st := tr.Stream(fmt.Sprintf("%02d:%s", i, ser.Name), trace.QueueLen)
		for j := range ser.T {
			st.Add(ser.T[j], ser.V[j])
		}
	}
	f, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteCSV(f)
}
