// Quickstart: run one Websearch workload under MLCC and print the FCT
// summary — the smallest useful program against the public API.
package main

import (
	"fmt"
	"log"

	"mlcc"
)

func main() {
	res, err := mlcc.Run(mlcc.Config{
		Algorithm: "mlcc",
		Workload:  "websearch",
		IntraLoad: 0.5, // 50% of per-host bisection capacity
		CrossLoad: 0.2, // 20% of the 100G inter-DC fiber
		Duration:  2 * mlcc.Millisecond,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flows completed:    %d/%d\n", res.Completed, res.Flows)
	fmt.Printf("avg FCT (intra-DC): %v\n", res.AvgFCTIntra)
	fmt.Printf("avg FCT (cross-DC): %v\n", res.AvgFCTCross)
	fmt.Printf("p99.9 FCT intra:    %v\n", res.P999Intra)
	fmt.Printf("PFC pause events:   %d\n", res.PFCPauses)
}
