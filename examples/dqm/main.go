// DQM: watch the receiver-side DCI switch queue being managed.
//
// Four cross-DC flows (25G senders) converge on two 25G receivers, so each
// flow's fair share is 12.5 Gbps and the first cross-DC RTT's worth of
// excess lands in the DCI per-flow queues. The DQM algorithm then feeds
// R̄_DQM back to the senders until the per-flow queuing delay settles at the
// target D_t. The program prints the DCI backlog under three θ settings.
package main

import (
	"fmt"
	"log"

	"mlcc"
)

func main() {
	thetas := []mlcc.Time{6 * mlcc.Millisecond, 18 * mlcc.Millisecond, 30 * mlcc.Millisecond}
	for _, theta := range thetas {
		fmt.Printf("=== θ = %v, D_t = 1ms ===\n", theta)
		run(theta)
		fmt.Println()
	}
}

func run(theta mlcc.Time) {
	nw, err := mlcc.NewNetwork(mlcc.NetworkConfig{
		Algorithm:   "mlcc",
		Theta:       theta,
		TargetDelay: mlcc.Millisecond,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		nw.AddFlow(nw.RackHost(1, i), nw.RackHost(5, i/2), 1<<30, mlcc.Millisecond)
	}
	fmt.Printf("%10s %14s\n", "time", "DCI queue (MB)")
	for t := 5 * mlcc.Millisecond; t <= 50*mlcc.Millisecond; t += 5 * mlcc.Millisecond {
		nw.RunUntil(t)
		fmt.Printf("%10v %14.2f\n", t, float64(nw.DCIQueueBytes(1))/(1<<20))
	}
	fmt.Println("target per-flow backlog: 12.5 Gbps × 1 ms ≈ 1.5 MB (×4 flows ≈ 6 MB)")
}
