// Fairness: reproduce the paper's motivation experiment 2 interactively.
// Four intra-DC flows (Rack 1 → Rack 2) share Rack 1's uplinks with four
// cross-DC flows (Rack 1 → Rack 5) that join later. Under end-to-end
// congestion control the two classes share unfairly; MLCC's near-source
// loop converges both classes to the fair split.
//
// The program runs the same scenario under DCQCN and MLCC and prints the
// class throughputs every 5 ms.
package main

import (
	"fmt"
	"log"

	"mlcc"
)

func main() {
	for _, alg := range []string{"dcqcn", "mlcc"} {
		fmt.Printf("=== %s ===\n", alg)
		run(alg)
		fmt.Println()
	}
}

func run(alg string) {
	nw, err := mlcc.NewNetwork(mlcc.NetworkConfig{
		Algorithm:    alg,
		SpinesPerDC:  1, // single uplink per rack: a clear sender-side bottleneck
		HostsPerLeaf: 8,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	const size = 1 << 30 // long-lived
	var intra, cross []*mlcc.Flow
	for i := 0; i < 4; i++ {
		intra = append(intra, nw.AddFlow(nw.RackHost(1, i), nw.RackHost(2, i), size, mlcc.Millisecond))
	}
	for i := 0; i < 4; i++ {
		start := 2*mlcc.Millisecond + mlcc.Time(i)*2*mlcc.Millisecond
		cross = append(cross, nw.AddFlow(nw.RackHost(1, 4+i), nw.RackHost(5, i), size, start))
	}

	sum := func(fs []*mlcc.Flow) int64 {
		var b int64
		for _, f := range fs {
			b += f.ReceivedBytes()
		}
		return b
	}

	fmt.Printf("%8s %12s %12s %12s\n", "time", "intra Gbps", "cross Gbps", "intra share")
	lastI, lastC := int64(0), int64(0)
	for t := 5 * mlcc.Millisecond; t <= 30*mlcc.Millisecond; t += 5 * mlcc.Millisecond {
		nw.RunUntil(t)
		i, c := sum(intra), sum(cross)
		gi := float64(i-lastI) * 8 / (5 * mlcc.Millisecond).Seconds() / 1e9
		gc := float64(c-lastC) * 8 / (5 * mlcc.Millisecond).Seconds() / 1e9
		share := 0.0
		if gi+gc > 0 {
			share = gi / (gi + gc)
		}
		fmt.Printf("%8v %12.1f %12.1f %12.2f\n", t, gi, gc, share)
		lastI, lastC = i, c
	}
	fmt.Println("fair share once all eight flows run: 0.50")
}
