// Compare: a miniature of the paper's Fig. 11 — run the same Websearch
// workload under every congestion-control algorithm and print the average
// flow completion times side by side.
package main

import (
	"fmt"
	"log"

	"mlcc"
)

func main() {
	fmt.Printf("%-10s %14s %14s %12s %10s\n", "algorithm", "intra avg FCT", "cross avg FCT", "p999 intra", "PFC")
	for _, alg := range mlcc.Algorithms() {
		res, err := mlcc.Run(mlcc.Config{
			Algorithm: alg,
			Workload:  "websearch",
			IntraLoad: 0.5,
			CrossLoad: 0.2,
			Duration:  3 * mlcc.Millisecond,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14v %14v %12v %10d\n",
			alg, res.AvgFCTIntra, res.AvgFCTCross, res.P999Intra, res.PFCPauses)
	}
	fmt.Println("\nlower is better; MLCC should lead or tie on intra-DC FCT while keeping cross-DC FCT competitive")
}
