package mlcc

import (
	"fmt"

	"mlcc/internal/host"
	"mlcc/internal/topo"
)

// NetworkConfig parameterizes a hand-built scenario network.
type NetworkConfig struct {
	// Algorithm is one of Algorithms(); default "mlcc".
	Algorithm string

	// Topology shape; zero values use the paper's §4.1 defaults
	// (2 spines, 4 leaves, 4 servers per leaf, per DC).
	SpinesPerDC  int
	LeavesPerDC  int
	HostsPerLeaf int

	// LongHaulDelay overrides the 3 ms inter-DC propagation delay.
	LongHaulDelay Time

	// Theta and TargetDelay override the DQM parameters θ and D_t.
	Theta       Time
	TargetDelay Time

	// Dumbbell selects the §4.6 testbed shape.
	Dumbbell bool

	Seed int64
}

// Network is a simulation a caller drives flow-by-flow: place transfers,
// advance virtual time, observe throughput and switch queues.
type Network struct {
	n *topo.Network
}

// Flow is a transfer placed on a Network.
type Flow struct {
	f *host.Flow
	n *topo.Network
}

// NewNetwork builds a two-DC (or dumbbell) network running the given
// congestion-control algorithm.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = "mlcc"
	}
	ok := false
	for _, a := range topo.Algorithms() {
		if a == cfg.Algorithm {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("mlcc: unknown algorithm %q (have %v)", cfg.Algorithm, topo.Algorithms())
	}
	p := topo.DefaultParams()
	if cfg.SpinesPerDC > 0 {
		p.SpinesPerDC = cfg.SpinesPerDC
	}
	if cfg.LeavesPerDC > 0 {
		p.LeavesPerDC = cfg.LeavesPerDC
	}
	if cfg.HostsPerLeaf > 0 {
		p.HostsPerLeaf = cfg.HostsPerLeaf
	}
	if cfg.LongHaulDelay > 0 {
		p.LongHaulDelay = cfg.LongHaulDelay
	}
	if cfg.Theta > 0 {
		p.DQM.Theta = cfg.Theta
	}
	if cfg.TargetDelay > 0 {
		p.DQM.Dt = cfg.TargetDelay
	}
	p.Seed = cfg.Seed
	p = p.WithAlgorithm(cfg.Algorithm)
	var n *topo.Network
	if cfg.Dumbbell {
		if cfg.HostsPerLeaf == 0 {
			p.HostsPerLeaf = 2
		}
		p.HostRate = 100 * Gbps
		n = topo.Dumbbell(p)
	} else {
		n = topo.TwoDC(p)
	}
	return &Network{n: n}, nil
}

// NumHosts reports the total number of servers.
func (nw *Network) NumHosts() int { return nw.n.NumHosts() }

// HostsPerDC reports the servers per datacenter.
func (nw *Network) HostsPerDC() int { return nw.n.HostsPerDC }

// RackHost returns the host index of server i (0-based) in paper rack r
// (1-based); racks 1–4 are DC 0, racks 5–8 are DC 1.
func (nw *Network) RackHost(r, i int) int { return nw.n.RackHost(r, i) }

// CrossDC reports whether src→dst crosses datacenters.
func (nw *Network) CrossDC(src, dst int) bool { return nw.n.CrossDC(src, dst) }

// IntraRTT returns the base intra-DC (different-rack) round-trip time.
func (nw *Network) IntraRTT() Time { return nw.n.IntraRTT() }

// CrossRTT returns the base cross-DC round-trip time.
func (nw *Network) CrossRTT() Time { return nw.n.CrossRTT() }

// Now returns the current simulation time.
func (nw *Network) Now() Time { return nw.n.Now() }

// AddFlow schedules a transfer of size bytes from host src to host dst
// starting at the given simulation time.
func (nw *Network) AddFlow(src, dst int, size int64, start Time) *Flow {
	return &Flow{f: nw.n.AddFlow(src, dst, size, start), n: nw.n}
}

// At schedules fn to run at simulation time t (observation hooks).
func (nw *Network) At(t Time, fn func()) {
	nw.n.Eng.At(t, fn)
}

// RunUntil advances the simulation to time t.
func (nw *Network) RunUntil(t Time) { nw.n.Run(t) }

// DCIQueueBytes reports the buffered bytes at datacenter dc's DCI switch
// (including MLCC per-flow queues).
func (nw *Network) DCIQueueBytes(dc int) int64 {
	return nw.n.DCIs[dc].BufferUsed()
}

// LeafQueueBytes reports the buffered bytes at the leaf switch of the given
// paper rack (1-based).
func (nw *Network) LeafQueueBytes(rack int) int64 {
	return nw.n.Leaves[rack-1].BufferUsed()
}

// PFCPauses reports the total PFC pause events generated so far.
func (nw *Network) PFCPauses() int64 {
	var sum int64
	for _, sw := range nw.n.Leaves {
		sum += sw.PFCPauses
	}
	for _, sw := range nw.n.Spines {
		sum += sw.PFCPauses
	}
	for _, sw := range nw.n.DCIs {
		sum += sw.PFCPauses
	}
	return sum
}

// Done reports whether the flow's last byte has been received.
func (fl *Flow) Done() bool { return fl.f.Done }

// FCT returns the flow completion time (0 while unfinished).
func (fl *Flow) FCT() Time { return fl.f.FCT() }

// ReceivedBytes reports payload bytes delivered so far.
func (fl *Flow) ReceivedBytes() int64 { return fl.f.RxBytes }

// Size returns the flow's payload size in bytes.
func (fl *Flow) Size() int64 { return fl.f.Info.Size }
