package mlcc

import (
	"testing"
)

func TestAlgorithmsAndWorkloads(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 5 {
		t.Fatalf("algorithms = %v", algs)
	}
	found := map[string]bool{}
	for _, a := range algs {
		found[a] = true
	}
	for _, want := range []string{"mlcc", "dcqcn", "timely", "hpcc", "powertcp"} {
		if !found[want] {
			t.Errorf("missing algorithm %q", want)
		}
	}
	if w := Workloads(); len(w) != 2 {
		t.Fatalf("workloads = %v", w)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Algorithm: "bogus", IntraLoad: 0.1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(Config{Workload: "bogus", IntraLoad: 0.1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero load accepted")
	}
}

func TestRunSmallWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res, err := Run(Config{
		Algorithm: "mlcc",
		Workload:  "hadoop",
		IntraLoad: 0.2,
		CrossLoad: 0.1,
		Duration:  Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 || res.Completed == 0 {
		t.Fatalf("flows=%d completed=%d", res.Flows, res.Completed)
	}
	if res.Unfinished != res.Flows-res.Completed {
		t.Fatal("unfinished accounting broken")
	}
	if res.AvgFCTIntra <= 0 {
		t.Fatalf("intra avg FCT = %v", res.AvgFCTIntra)
	}
	// FCT is measured at the receiver, so a tiny cross-DC flow costs at
	// least the one-way long-haul latency (~3 ms).
	if res.AvgFCTCross <= 3*Millisecond {
		t.Fatalf("cross avg FCT = %v, must exceed one-way latency", res.AvgFCTCross)
	}
	if res.FCT.Len() != res.Completed {
		t.Fatal("collector length mismatch")
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := Config{Workload: "hadoop", IntraLoad: 0.2, CrossLoad: 0.05, Duration: Millisecond, Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgFCT != b.AvgFCT || a.Flows != b.Flows || a.PFCPauses != b.PFCPauses {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunDumbbell(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res, err := Run(Config{
		Dumbbell:  true,
		Workload:  "hadoop",
		IntraLoad: 0.3,
		CrossLoad: 0.2,
		Duration:  Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no flows completed on dumbbell")
	}
}

func TestNetworkAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	nw, err := NewNetwork(NetworkConfig{Algorithm: "mlcc", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumHosts() != 32 || nw.HostsPerDC() != 16 {
		t.Fatalf("hosts = %d/%d", nw.NumHosts(), nw.HostsPerDC())
	}
	if !nw.CrossDC(0, 16) || nw.CrossDC(0, 1) {
		t.Fatal("CrossDC broken")
	}
	if nw.CrossRTT() < 6*Millisecond {
		t.Fatalf("CrossRTT = %v", nw.CrossRTT())
	}
	if nw.IntraRTT() > 30*Microsecond {
		t.Fatalf("IntraRTT = %v", nw.IntraRTT())
	}

	f := nw.AddFlow(nw.RackHost(1, 0), nw.RackHost(5, 0), 1<<20, Millisecond)
	var observedQueue int64
	nw.At(4*Millisecond, func() { observedQueue = nw.DCIQueueBytes(1) })
	nw.RunUntil(60 * Millisecond)
	if !f.Done() {
		t.Fatalf("flow incomplete: %d/%d bytes", f.ReceivedBytes(), f.Size())
	}
	if f.FCT() <= 0 || f.Size() != 1<<20 {
		t.Fatalf("flow accessors broken: fct=%v size=%d", f.FCT(), f.Size())
	}
	if nw.Now() != 60*Millisecond {
		t.Fatalf("Now = %v", nw.Now())
	}
	_ = observedQueue // queue may legitimately be zero for a single flow
	if nw.LeafQueueBytes(1) < 0 || nw.PFCPauses() < 0 {
		t.Fatal("negative counters")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Algorithm: "nah"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestExperimentAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("experiments = %v", ids)
	}
	if _, err := Experiment("nope", false, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentRunsFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	rep, err := Experiment("fig10", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig10" || len(rep.Tables) == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
}

func TestTraceReplayMatchesGeneratedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := Config{Workload: "hadoop", IntraLoad: 0.2, CrossLoad: 0.1, Duration: Millisecond, Seed: 5}
	orig, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Trace) != orig.Flows {
		t.Fatalf("trace has %d flows, ran %d", len(orig.Trace), orig.Flows)
	}
	replay, err := Run(Config{Workload: "hadoop", Duration: Millisecond, Seed: 5, Flows: orig.Trace})
	if err != nil {
		t.Fatal(err)
	}
	if replay.AvgFCT != orig.AvgFCT || replay.Flows != orig.Flows {
		t.Fatalf("replay diverged: %v/%d vs %v/%d",
			replay.AvgFCT, replay.Flows, orig.AvgFCT, orig.Flows)
	}
}

func TestTraceReplayValidatesHosts(t *testing.T) {
	_, err := Run(Config{Flows: []FlowSpec{{Src: 0, Dst: 9999, Size: 1000}}})
	if err == nil {
		t.Fatal("out-of-range trace accepted")
	}
}
