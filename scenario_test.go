package mlcc

import (
	"testing"
)

// collectivePlan is the canonical collective acceptance plan sized for the
// 8-host topology the scenario tests run on (HostsPerLeaf=2).
func collectivePlan(t *testing.T, seed int64) *ScenarioPlan {
	t.Helper()
	p, err := CanonicalScenario("collective", 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunScenarioCollective(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res, err := Run(Config{
		Algorithm:    "mlcc",
		Scenario:     collectivePlan(t, 3),
		HostsPerLeaf: 2,
		Deadline:     100 * Millisecond,
		Audit:        true,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collectives) != 1 {
		t.Fatalf("collectives: %+v", res.Collectives)
	}
	cs := res.Collectives[0]
	if cs.Name != "ring" || !cs.Finished || cs.Failed || cs.PhasesDone != 4 {
		t.Fatalf("collective did not settle cleanly: %+v", cs)
	}
	if cs.FinishedAt <= 0 || cs.FinishedAt > 100*Millisecond {
		t.Fatalf("FinishedAt = %v", cs.FinishedAt)
	}
	// 4 phases × 8 ring flows ride on top of the open-loop background trace.
	if want := len(res.Trace) + 32; res.Flows != want {
		t.Fatalf("flows = %d, want %d (open loop %d + 32 ring)", res.Flows, want, len(res.Trace))
	}
	if res.Tenants == nil {
		t.Fatal("scenario run returned no tenant stats")
	}
	if got := res.Tenants.CompletedBytes("ring"); got != 32*64<<10 {
		t.Fatalf("ring bytes = %d, want %d", got, 32*64<<10)
	}
	if res.Tenants.Completed("bg") == 0 {
		t.Fatal("background tenant completed nothing")
	}
	if res.Audit == "" {
		t.Fatal("audit summary empty")
	}
}

// TestRunScenarioShardInvariant exercises the public API's promise that
// sharding never changes results, closed-loop collectives included.
func TestRunScenarioShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	run := func(shards int) *Result {
		res, err := Run(Config{
			Scenario:     collectivePlan(t, 7),
			HostsPerLeaf: 2,
			Deadline:     100 * Millisecond,
			Shards:       shards,
			Seed:         7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	if a.Flows != b.Flows || a.AvgFCT != b.AvgFCT || a.Completed != b.Completed {
		t.Fatalf("sharded scenario diverged: %d/%v vs %d/%v", a.Flows, a.AvgFCT, b.Flows, b.AvgFCT)
	}
	if len(a.Collectives) != len(b.Collectives) || a.Collectives[0].FinishedAt != b.Collectives[0].FinishedAt {
		t.Fatalf("collective timing diverged: %+v vs %+v", a.Collectives, b.Collectives)
	}
}

// TestRunScenarioProfileLongHaul proves a plan profile reshapes the haul: a
// cross-DC tenant under a 10 ms one-way profile cannot beat that latency.
func TestRunScenarioProfileLongHaul(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	plan := &ScenarioPlan{
		Seed:    5,
		Name:    "haul",
		Tenants: []ScenarioTenant{{Name: "bulk", Workload: "websearch", CrossLoad: 0.3, Duration: 10 * Millisecond}},
		Profile: &ScenarioProfile{LongHaul: 10 * Millisecond},
	}
	res, err := Run(Config{Scenario: plan, HostsPerLeaf: 2, Deadline: 400 * Millisecond, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.AvgFCTCross <= 10*Millisecond {
		t.Fatalf("cross FCT %v beat the 10 ms profile haul", res.AvgFCTCross)
	}
}

func TestRunScenarioValidation(t *testing.T) {
	plan := &ScenarioPlan{
		Name:    "x",
		Tenants: []ScenarioTenant{{Name: "t", Workload: "websearch", IntraLoad: 0.1, Duration: Millisecond}},
	}
	if _, err := Run(Config{Scenario: plan, Flows: []FlowSpec{{Dst: 1, Size: 1}}}); err == nil {
		t.Fatal("Scenario+Flows accepted")
	}
	if _, err := Run(Config{Scenario: &ScenarioPlan{Name: "empty"}}); err == nil {
		t.Fatal("empty plan accepted")
	}
	bad := &ScenarioPlan{
		Name:        "oob",
		Collectives: []ScenarioCollective{{Name: "c", Hosts: []int{0, 999}, Tensor: 1, Phases: 1}},
	}
	if _, err := Run(Config{Scenario: bad, HostsPerLeaf: 2}); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
}
