package pkt

import (
	"testing"
	"testing/quick"

	"mlcc/internal/sim"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Data: "DATA", Ack: "ACK", CNP: "CNP", SwitchINT: "SINT",
		Pause: "PAUSE", Resume: "RESUME", Kind(99): "Kind(99)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, s)
		}
	}
}

func TestPayloadEnd(t *testing.T) {
	p := &Packet{Seq: 4000, Size: 1000}
	if got := p.PayloadEnd(); got != 5000 {
		t.Fatalf("PayloadEnd = %d", got)
	}
}

func TestAddHopBounded(t *testing.T) {
	p := &Packet{}
	for i := 0; i < MaxINTHops+5; i++ {
		p.AddHop(INTHop{Node: NodeID(i)})
	}
	if len(p.Hops) != MaxINTHops {
		t.Fatalf("len(Hops) = %d, want %d", len(p.Hops), MaxINTHops)
	}
	p.ClearHops()
	if len(p.Hops) != 0 {
		t.Fatalf("ClearHops left %d hops", len(p.Hops))
	}
	if cap(p.Hops) == 0 {
		t.Fatal("ClearHops released storage")
	}
}

func TestPoolReuseZeroes(t *testing.T) {
	pl := NewPool()
	p := pl.NewData(7, 1, 2, 1000, DefaultMTU)
	p.CE = true
	p.AddHop(INTHop{Node: 3, QLen: 55})
	p.RDQM = 5 * sim.Gbps
	pl.Put(p)

	q := pl.Get()
	if q != p {
		t.Fatal("pool did not reuse the freed packet")
	}
	if q.CE || q.RDQM != 0 || q.Flow != 0 || q.Seq != 0 || len(q.Hops) != 0 {
		t.Fatalf("reused packet not zeroed: %+v", q)
	}
	if pl.Reuses != 1 || pl.Allocs != 1 {
		t.Fatalf("counters: allocs=%d reuses=%d", pl.Allocs, pl.Reuses)
	}
}

func TestPoolPutNil(t *testing.T) {
	pl := NewPool()
	pl.Put(nil) // must not panic
	if got := pl.Get(); got == nil {
		t.Fatal("Get returned nil")
	}
}

func TestNewControl(t *testing.T) {
	pl := NewPool()
	p := pl.NewControl(CNP, 3, 9, 4)
	if p.Kind != CNP || p.Size != ControlSize || p.Pri != ClassControl {
		t.Fatalf("bad control packet: %+v", p)
	}
	if !p.IsControl() {
		t.Fatal("IsControl = false")
	}
}

func TestNewData(t *testing.T) {
	pl := NewPool()
	p := pl.NewData(3, 9, 4, 2000, DefaultMTU)
	if p.Kind != Data || p.Pri != ClassData || !p.ECT || p.Seq != 2000 {
		t.Fatalf("bad data packet: %+v", p)
	}
	if p.IsControl() {
		t.Fatal("data marked control")
	}
}

// Property: any get/put interleaving keeps returned packets zeroed.
func TestPoolProperty(t *testing.T) {
	f := func(ops []bool) bool {
		pl := NewPool()
		var live []*Packet
		for _, get := range ops {
			if get || len(live) == 0 {
				p := pl.Get()
				if p.Flow != 0 || p.Seq != 0 || len(p.Hops) != 0 || p.CE {
					return false
				}
				p.Flow = 42
				p.Seq = 99
				p.CE = true
				p.AddHop(INTHop{Node: 1})
				live = append(live, p)
			} else {
				pl.Put(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
