package pkt

// Ring is a growable FIFO of packets with O(1) amortized push/pop and byte
// accounting. The zero value is ready to use.
type Ring struct {
	buf   []*Packet
	head  int
	n     int
	bytes int64
}

// Push appends p to the tail.
func (r *Ring) Push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
	r.bytes += int64(p.Size)
}

// Pop removes and returns the head, or nil when empty.
func (r *Ring) Pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.bytes -= int64(p.Size)
	return p
}

// Peek returns the head without removing it, or nil when empty.
func (r *Ring) Peek() *Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// Len reports the number of queued packets.
func (r *Ring) Len() int { return r.n }

// Bytes reports the queued bytes.
func (r *Ring) Bytes() int64 { return r.bytes }

func (r *Ring) grow() {
	nb := make([]*Packet, maxInt(16, len(r.buf)*2))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
