// Package pkt defines the on-wire units of the simulator: data packets,
// acknowledgements, congestion-notification and Switch-INT control frames,
// PFC pause/resume frames, the per-hop INT telemetry stack, and the MLCC
// credit/rate fields carried by data packets and ACKs.
package pkt

import (
	"fmt"

	"mlcc/internal/sim"
)

// Kind identifies the packet type.
type Kind uint8

// Packet kinds.
const (
	Data      Kind = iota // payload-carrying data packet
	Ack                   // per-packet acknowledgement
	CNP                   // DCQCN congestion notification packet
	SwitchINT             // MLCC near-source feedback from the sender-side DCI switch
	Pause                 // PFC pause frame (hop-by-hop, data class)
	Resume                // PFC resume frame
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case CNP:
		return "CNP"
	case SwitchINT:
		return "SINT"
	case Pause:
		return "PAUSE"
	case Resume:
		return "RESUME"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FlowID identifies a flow (a five-tuple in a real network).
type FlowID int32

// NodeID identifies a host or switch in the topology.
type NodeID int32

// Priority classes. PFC applies to the data class only; control frames
// (ACK/CNP/SwitchINT) ride the control class and are scheduled strictly
// first, matching how RDMA deployments protect congestion signals.
const (
	ClassData    = 0
	ClassControl = 1
	NumClasses   = 2
)

// INTHop is one hop's in-band network telemetry record, stamped by a switch
// egress port when the packet is dequeued (HPCC-style).
type INTHop struct {
	Node    NodeID   // switch that stamped the record
	QLen    int64    // egress queue length in bytes at dequeue
	TxBytes int64    // cumulative bytes transmitted by the egress port
	TS      sim.Time // stamp time
	Band    sim.Rate // egress link capacity
}

// MaxINTHops bounds the telemetry stack, as INT headers do on real hardware.
const MaxINTHops = 8

// Packet is the unit moved through ports, links and switches. One Packet
// value represents one frame; it is allocated from a free list (see Pool)
// and must not be retained after being freed.
type Packet struct {
	Kind Kind
	Flow FlowID
	Src  NodeID // originating host
	Dst  NodeID // destination host (for Pause/Resume: the paused neighbor)
	Seq  int64  // first payload byte offset (Data) or cumulative ack (Ack)
	Size int    // bytes on the wire, including headers
	Pri  int    // scheduling class: ClassData or ClassControl

	// ECN state: ECT set by senders on data packets, CE set by a marking
	// switch. The receiver echoes CE via CNPs (DCQCN) or the ECE bit on ACKs.
	ECT bool
	CE  bool
	ECE bool // echoed CE, on ACKs

	// Last reports that this packet carries the final payload byte of its
	// flow (Data), or acknowledges it (Ack).
	Last bool

	// INT telemetry stack. Cleared/reinserted by DCI switches under MLCC.
	Hops []INTHop

	// Timestamps for RTT measurement (Timely) and diagnostics.
	SendTS sim.Time // when the sender emitted the data packet
	EchoTS sim.Time // on ACKs: SendTS of the acknowledged packet

	// MLCC credit and rate fields (Algorithm 1 / Algorithm 2).
	CD      uint32   // credit stamped into data packets by the receiver-side DCI switch
	CR      uint32   // credit echoed in ACKs by the receiver
	RCredit sim.Rate // PFQ dequeue rate chosen by the receiver (in ACKs); 0 = unset
	RDQM    sim.Rate // smoothed DQM end-to-end rate (in ACKs); 0 = unset

	// PauseClass is the priority class a Pause/Resume frame applies to.
	PauseClass int

	// InPort is switch-internal bookkeeping: the ingress port index the
	// packet arrived on, used for PFC per-ingress accounting while queued.
	InPort int
}

// Standard frame sizes (bytes on the wire).
const (
	DefaultMTU  = 1000 // data packet size used throughout the evaluation
	ControlSize = 64   // ACK/CNP/SwitchINT/PFC frame size
)

// PayloadEnd returns the byte offset just past this data packet's payload.
func (p *Packet) PayloadEnd() int64 { return p.Seq + int64(p.Size) }

// AddHop appends an INT record, respecting MaxINTHops.
func (p *Packet) AddHop(h INTHop) {
	if len(p.Hops) < MaxINTHops {
		p.Hops = append(p.Hops, h)
	}
}

// ClearHops empties the INT stack without releasing its storage.
func (p *Packet) ClearHops() { p.Hops = p.Hops[:0] }

// IsControl reports whether the packet rides the control class.
func (p *Packet) IsControl() bool { return p.Pri == ClassControl }

// String renders a compact description for traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d size=%d", p.Kind, p.Flow, p.Src, p.Dst, p.Seq, p.Size)
}
