package pkt

// Pool is a simple free list of packets. The simulator is single-goroutine
// per engine, so no locking is needed; each engine owns one Pool. Pooling
// matters: large-scale FCT runs move tens of millions of frames.
type Pool struct {
	free []*Packet
	out  int64
	// Allocs and Reuses count pool behaviour for tests and diagnostics.
	Allocs int64
	Reuses int64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, reusing a freed one when available. The INT
// stack's backing array is retained across reuse.
func (pl *Pool) Get() *Packet {
	pl.out++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.Reuses++
		hops := p.Hops[:0]
		*p = Packet{Hops: hops}
		return p
	}
	pl.Allocs++
	return &Packet{}
}

// Put returns p to the free list. p must not be used afterwards.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.out--
	pl.free = append(pl.free, p)
}

// Outstanding reports packets currently checked out (Get minus Put). At
// quiescence — every flow completed or aborted and every queue drained —
// any nonzero value is a leak.
func (pl *Pool) Outstanding() int64 { return pl.out }

// NewData builds a data packet.
func (pl *Pool) NewData(flow FlowID, src, dst NodeID, seq int64, size int) *Packet {
	p := pl.Get()
	p.Kind = Data
	p.Flow = flow
	p.Src = src
	p.Dst = dst
	p.Seq = seq
	p.Size = size
	p.Pri = ClassData
	p.ECT = true
	return p
}

// NewControl builds a control frame of the given kind addressed src → dst.
func (pl *Pool) NewControl(kind Kind, flow FlowID, src, dst NodeID) *Packet {
	p := pl.Get()
	p.Kind = kind
	p.Flow = flow
	p.Src = src
	p.Dst = dst
	p.Size = ControlSize
	p.Pri = ClassControl
	return p
}
