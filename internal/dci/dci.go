// Package dci models datacenter-interconnect switches. A DCI switch is a
// deep-buffered fabric switch (hundreds of MB) that, when MLCC is enabled,
// additionally plays both MLCC roles depending on packet direction:
//
//   - Sender-side role (near-source feedback loop, §3.2.1): for data packets
//     leaving through the long-haul port, it reads and clears the INT
//     records accumulated inside the sender-side datacenter and reflects
//     them to the sender in a Switch-INT control frame.
//   - Receiver-side role (receiver-driven loop + DQM, §3.2.2/§3.3): data
//     packets arriving from the long-haul port are stored in dynamically
//     allocated per-flow queues (PFQ) that drain at the receiver-published
//     credit rate R_credit; dequeued packets are stamped with the flow
//     credit C_D and a fresh DCI INT record. ACKs flowing back toward the
//     sender deliver C_R and R_credit to the PFQ, drive the per-flow DQM
//     instance, and leave carrying the smoothed end-to-end rate R̄_DQM.
//
// Without MLCC the type degenerates to a plain deep-buffered fabric.Switch,
// which is exactly how the baselines (DCQCN/Timely/HPCC/PowerTCP) see DCI
// switches in the paper.
package dci

import (
	"mlcc/internal/cc"
	"mlcc/internal/core"
	"mlcc/internal/fabric"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Config parameterizes a DCI switch.
type Config struct {
	Fabric fabric.Config

	// LongHaulPort is the index of the port facing the other datacenter.
	LongHaulPort int

	// MLCC enables near-source feedback, PFQ and DQM.
	MLCC bool

	// DQM parameters (used when MLCC). RTTc/RTTd/MTU/MaxRate must be set by
	// the topology builder.
	DQM core.DQMParams

	// InitRate is the initial PFQ dequeue rate for a new flow (the paper:
	// "the receiver-side DCI-switch sends the flow into the receiver-side
	// datacenter using the initial rate"). Typically the server line rate.
	InitRate sim.Rate
}

// Switch is a DCI switch.
type Switch struct {
	*fabric.Switch
	cfg Config

	pfq   map[pkt.FlowID]*pfqFlow
	discs []*PFQDisc // one per DC-facing port (indexed arbitrarily)

	// Counters.
	SwitchINTSent int64 // near-source feedback frames generated
	PFQFlows      int64 // PFQs ever allocated
	DQMUpdates    int64
}

// New builds a DCI switch. Ports are added by the topology builder through
// AddPort (inherited); call Finalize after all ports exist.
func New(eng *sim.Engine, pool *pkt.Pool, cfg Config) *Switch {
	s := &Switch{
		Switch: fabric.New(eng, pool, cfg.Fabric),
		cfg:    cfg,
		pfq:    make(map[pkt.FlowID]*pfqFlow),
	}
	return s
}

// Finalize installs MLCC behaviours once all ports have been added: PFQ
// disciplines on every DC-facing port and the ingress hooks on the switch.
func (s *Switch) Finalize() {
	if !s.cfg.MLCC {
		return
	}
	for i := 0; i < s.NumPorts(); i++ {
		if i == s.cfg.LongHaulPort {
			continue
		}
		d := &PFQDisc{sw: s, port: i}
		s.SetDiscipline(i, d)
		s.discs = append(s.discs, d)
	}
	s.SetHooks(s)
}

// PFQBacklog reports the queued bytes of one flow's PFQ (0 if none).
func (s *Switch) PFQBacklog(id pkt.FlowID) int64 {
	if f, ok := s.pfq[id]; ok {
		return f.q.Bytes()
	}
	return 0
}

// PFQTotalBacklog reports queued bytes across all PFQs.
func (s *Switch) PFQTotalBacklog() int64 {
	var sum int64
	for _, d := range s.discs {
		sum += d.DataBytes()
	}
	return sum
}

// ActivePFQs reports currently allocated per-flow queues.
func (s *Switch) ActivePFQs() int { return len(s.pfq) }

// RegisterMetrics registers the embedded fabric instruments plus the DCI's
// MLCC counters and PFQ gauges under prefix (e.g. "dci.dci0").
func (s *Switch) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	s.Switch.RegisterMetrics(reg, prefix)
	reg.CounterFunc(prefix+".switch_int_sent", func() int64 { return s.SwitchINTSent })
	reg.CounterFunc(prefix+".pfq_flows", func() int64 { return s.PFQFlows })
	reg.CounterFunc(prefix+".dqm_updates", func() int64 { return s.DQMUpdates })
	reg.GaugeFunc(prefix+".active_pfqs", func() float64 { return float64(s.ActivePFQs()) })
	reg.GaugeFunc(prefix+".pfq_backlog_bytes", func() float64 { return float64(s.PFQTotalBacklog()) })
}

// OnIngress implements fabric.Hooks.
func (s *Switch) OnIngress(p *pkt.Packet, in, out int) bool {
	if out == s.cfg.LongHaulPort {
		switch p.Kind {
		case pkt.Data:
			s.reflectINT(p)
		case pkt.Ack:
			s.applyAck(p)
		}
	}
	return false
}

// reflectINT implements the near-source feedback loop: encapsulate the
// sender-side datacenter's INT records — plus this DCI switch's own
// long-haul egress record, since the inter-DC fiber is the last sender-side
// hop and its queue is otherwise invisible to every loop — in a Switch-INT
// frame to the sender, and clear them from the data packet.
func (s *Switch) reflectINT(p *pkt.Packet) {
	si := s.Pool.NewControl(pkt.SwitchINT, p.Flow, s.ID(), p.Src)
	si.Hops = append(si.Hops, p.Hops...)
	lh := s.Port(s.cfg.LongHaulPort)
	si.Hops = append(si.Hops, pkt.INTHop{
		Node:    s.ID(),
		QLen:    s.DisciplineAt(s.cfg.LongHaulPort).DataBytes(),
		TxBytes: lh.TxBytes,
		TS:      s.Eng.Now(),
		Band:    lh.Rate,
	})
	p.ClearHops()
	s.SwitchINTSent++
	s.ForwardTo(si, -1, s.RouteFor(p.Src, p.Flow))
}

// applyAck implements the receiver-side DCI ACK processing: update the PFQ
// credit C_D and dequeue rate from (C_R, R_credit), run one DQM round, and
// stamp R̄_DQM for the sender.
func (s *Switch) applyAck(p *pkt.Packet) {
	f, ok := s.pfq[p.Flow]
	if !ok {
		return
	}
	f.cd = p.CR
	if p.RCredit > 0 {
		f.rate = sim.ClampRate(p.RCredit, cc.MinRate, f.disc.portRate())
		f.dqm.OnCreditRound(p.RCredit, f.q.Bytes())
		s.DQMUpdates++
		if fr := s.Recorder(); fr != nil {
			fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvRateUpdate,
				Node: int32(s.ID()), Port: -1, Flow: int32(p.Flow), Val: int64(f.rate)})
		}
		f.disc.kickSoon()
	}
	p.RDQM = f.dqm.Smoothed()
	if p.Last {
		f.closed = true
		f.disc.maybeRemove(f)
	}
}

// flowFor returns (allocating if needed) the PFQ state for a flow on disc d.
func (s *Switch) flowFor(id pkt.FlowID, d *PFQDisc) *pfqFlow {
	if f, ok := s.pfq[id]; ok {
		return f
	}
	dq := s.cfg.DQM
	if dq.MaxRate <= 0 {
		dq.MaxRate = s.cfg.InitRate
	}
	if dq.MTU <= 0 {
		dq.MTU = pkt.DefaultMTU
	}
	f := &pfqFlow{
		id:   id,
		disc: d,
		rate: s.cfg.InitRate,
		dqm:  core.NewDQM(dq, s.cfg.InitRate),
	}
	s.pfq[id] = f
	d.flows = append(d.flows, f)
	s.PFQFlows++
	return f
}
