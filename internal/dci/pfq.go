package dci

import (
	"mlcc/internal/core"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// pfqFlow is one dynamically allocated per-flow queue at the receiver-side
// DCI switch.
type pfqFlow struct {
	id   pkt.FlowID
	disc *PFQDisc

	q        pkt.Ring
	rate     sim.Rate // R_credit: dequeue rate set by the receiver
	nextTime sim.Time // pacing: earliest next dequeue
	cd       uint32   // C_D: credit stamped into outgoing data packets
	txBytes  int64    // cumulative bytes dequeued (INT TxBytes field)
	dqm      *core.DQM
	closed   bool // flow finished; remove once drained
}

// PFQDisc is the egress discipline of a DC-facing DCI port under MLCC:
// strict-priority control FIFO plus a set of rate-paced per-flow queues
// served round-robin among flows whose pacing allows a dequeue now.
type PFQDisc struct {
	sw   *Switch
	port int

	ctl   pkt.Ring
	flows []*pfqFlow
	rr    int

	dataBytes int64

	wakeEv sim.Timer
	wakeAt sim.Time
	kick   func() // bound port.Kick, so pacing wake-ups don't allocate
}

// Enqueue implements fabric.Discipline: control frames go to the priority
// FIFO; data packets are pushed into their flow's PFQ, allocating one (at
// the initial rate) on first sight — the paper's dynamic PFQ allocation.
func (d *PFQDisc) Enqueue(p *pkt.Packet) {
	if p.Pri == pkt.ClassControl {
		d.ctl.Push(p)
		return
	}
	f := d.sw.flowFor(p.Flow, d)
	f.q.Push(p)
	d.dataBytes += int64(p.Size)
}

// DataBytes implements fabric.Discipline.
func (d *PFQDisc) DataBytes() int64 { return d.dataBytes }

// Drain implements fabric.Discipline: the control FIFO and every per-flow
// queue empty into drop, the per-flow queues deallocate (switch-level PFQ
// registrations included), and the pacing wake-up cancels — after a switch
// failure the discipline is indistinguishable from a freshly built one.
func (d *PFQDisc) Drain(drop func(p *pkt.Packet)) {
	for p := d.ctl.Pop(); p != nil; p = d.ctl.Pop() {
		drop(p)
	}
	for _, f := range d.flows {
		for p := f.q.Pop(); p != nil; p = f.q.Pop() {
			drop(p)
		}
		delete(d.sw.pfq, f.id)
	}
	d.flows = d.flows[:0]
	d.rr = 0
	d.dataBytes = 0
	d.wakeEv.Cancel()
	d.wakeAt = 0
}

// Next implements link.Source.
func (d *PFQDisc) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	if !paused[pkt.ClassControl] {
		if p := d.ctl.Pop(); p != nil {
			return p
		}
	}
	if paused[pkt.ClassData] || len(d.flows) == 0 {
		return nil
	}
	now := d.sw.Eng.Now()
	n := len(d.flows)
	var earliest sim.Time = -1
	for i := 0; i < n; i++ {
		idx := (d.rr + i) % n
		f := d.flows[idx]
		if f.q.Len() == 0 {
			continue
		}
		if f.nextTime <= now {
			d.rr = (idx + 1) % n
			return d.dequeue(f, now)
		}
		if earliest < 0 || f.nextTime < earliest {
			earliest = f.nextTime
		}
	}
	if earliest >= 0 {
		d.scheduleWake(earliest)
	}
	return nil
}

// dequeue pops one packet from f, applies pacing at R_credit, stamps the
// credit C_D and a fresh DCI INT record ("erases and reinserts the INT
// information"), and advances the flow's DQM token bucket.
func (d *PFQDisc) dequeue(f *pfqFlow, now sim.Time) *pkt.Packet {
	p := f.q.Pop()
	d.dataBytes -= int64(p.Size)
	base := f.nextTime
	if now > base {
		base = now
	}
	f.nextTime = base + sim.TxTime(p.Size, f.rate)

	p.CD = f.cd
	p.ClearHops()
	p.AddHop(pkt.INTHop{
		Node:    d.sw.ID(),
		QLen:    f.q.Bytes(),
		TxBytes: f.txBytes,
		TS:      now,
		Band:    d.portRate(),
	})
	f.txBytes += int64(p.Size)
	f.dqm.OnPacketOut()

	if f.closed && f.q.Len() == 0 {
		d.maybeRemove(f)
	}
	return p
}

// portRate returns the line rate of the owning port.
func (d *PFQDisc) portRate() sim.Rate { return d.sw.Port(d.port).Rate }

// kickSoon prompts the port after a rate update: a higher R_credit may make
// a previously ineligible flow eligible immediately.
func (d *PFQDisc) kickSoon() { d.sw.Port(d.port).Kick() }

// scheduleWake arms (or tightens) the single pending wake-up for pacing.
func (d *PFQDisc) scheduleWake(at sim.Time) {
	now := d.sw.Eng.Now()
	if d.wakeEv.Active() && d.wakeAt <= at && d.wakeAt > now {
		return
	}
	d.wakeEv.Cancel()
	d.wakeAt = at
	if d.kick == nil {
		d.kick = d.sw.Port(d.port).Kick
	}
	d.wakeEv = d.sw.Eng.At(at, d.kick)
}

// maybeRemove garbage-collects a finished flow once its queue drained.
func (d *PFQDisc) maybeRemove(f *pfqFlow) {
	if !f.closed || f.q.Len() != 0 {
		return
	}
	for i, x := range d.flows {
		if x == f {
			d.flows = append(d.flows[:i], d.flows[i+1:]...)
			break
		}
	}
	if d.rr >= len(d.flows) {
		d.rr = 0
	}
	delete(d.sw.pfq, f.id)
}
