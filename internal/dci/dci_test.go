package dci

import (
	"testing"

	"mlcc/internal/core"
	"mlcc/internal/fabric"
	"mlcc/internal/link"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// stub is a link endpoint that records deliveries and can transmit queued
// frames.
type stub struct {
	eng    *sim.Engine
	pool   *pkt.Pool
	port   *link.Port
	outbox []*pkt.Packet
	got    []*pkt.Packet
	gotAt  []sim.Time
}

func newStub(eng *sim.Engine, pool *pkt.Pool, rate sim.Rate, delay sim.Time) *stub {
	s := &stub{eng: eng, pool: pool}
	s.port = link.NewPort(eng, s, 0, rate, delay, pool)
	s.port.SetSource(s)
	return s
}

func (s *stub) Receive(p *pkt.Packet, on *link.Port) {
	s.got = append(s.got, p)
	s.gotAt = append(s.gotAt, s.eng.Now())
}

func (s *stub) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	if len(s.outbox) == 0 || paused[s.outbox[0].Pri] {
		return nil
	}
	p := s.outbox[0]
	s.outbox = s.outbox[1:]
	return p
}

func (s *stub) send(p *pkt.Packet) {
	s.outbox = append(s.outbox, p)
	s.port.Kick()
}

// rig: dcSide (host 1) -- port0 [DCI] port1 -- farSide (host 2).
type rig struct {
	eng     *sim.Engine
	pool    *pkt.Pool
	sw      *Switch
	dcSide  *stub
	farSide *stub
}

func dqmParams() core.DQMParams {
	p := core.DefaultDQMParams()
	p.RTTc = 6 * sim.Millisecond
	p.RTTd = 24 * sim.Microsecond
	p.MTU = 1000
	p.MaxRate = 25 * sim.Gbps
	return p
}

func newRig(t *testing.T, mlccMode bool) *rig {
	t.Helper()
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	sw := New(eng, pool, Config{
		Fabric: fabric.Config{
			ID:          300,
			BufferBytes: 128 << 20,
			INTEnabled:  !mlccMode,
		},
		LongHaulPort: 1,
		MLCC:         mlccMode,
		DQM:          dqmParams(),
		InitRate:     25 * sim.Gbps,
	})
	dcSide := newStub(eng, pool, 100*sim.Gbps, sim.Microsecond)
	farSide := newStub(eng, pool, 100*sim.Gbps, sim.Microsecond)
	p0 := sw.AddPort(100*sim.Gbps, sim.Microsecond)
	p1 := sw.AddPort(100*sim.Gbps, sim.Microsecond)
	link.Connect(dcSide.port, p0)
	link.Connect(farSide.port, p1)
	sw.AddRoute(1, 0) // host 1 on the DC side
	sw.AddRoute(2, 1) // host 2 beyond the long haul
	sw.Finalize()
	return &rig{eng: eng, pool: pool, sw: sw, dcSide: dcSide, farSide: farSide}
}

func TestFinalizeInstallsPFQOnDCPortsOnly(t *testing.T) {
	r := newRig(t, true)
	if _, ok := r.sw.DisciplineAt(0).(*PFQDisc); !ok {
		t.Fatal("DC-facing port lacks PFQ discipline")
	}
	if _, ok := r.sw.DisciplineAt(1).(*PFQDisc); ok {
		t.Fatal("long-haul port must keep the FIFO discipline")
	}
}

func TestNonMLCCKeepsFIFO(t *testing.T) {
	r := newRig(t, false)
	for i := 0; i < 2; i++ {
		if _, ok := r.sw.DisciplineAt(i).(*PFQDisc); ok {
			t.Fatal("PFQ installed without MLCC mode")
		}
	}
}

func TestNearSourceReflection(t *testing.T) {
	r := newRig(t, true)
	// Data from host 1 toward host 2 (out = long haul) carrying DC INT.
	data := r.pool.NewData(7, 1, 2, 0, 1000)
	data.AddHop(pkt.INTHop{Node: 101, QLen: 5000, Band: 100 * sim.Gbps})
	r.dcSide.send(data)
	r.eng.Run()

	if r.sw.SwitchINTSent != 1 {
		t.Fatalf("SwitchINTSent = %d", r.sw.SwitchINTSent)
	}
	// The data packet reaches the far side with INT cleared.
	if len(r.farSide.got) != 1 {
		t.Fatalf("far side got %d packets", len(r.farSide.got))
	}
	if len(r.farSide.got[0].Hops) != 0 {
		t.Fatal("INT not cleared from forwarded data")
	}
	// The sender got a SwitchINT with the DC hop plus the long-haul hop.
	if len(r.dcSide.got) != 1 {
		t.Fatalf("dc side got %d packets", len(r.dcSide.got))
	}
	si := r.dcSide.got[0]
	if si.Kind != pkt.SwitchINT || si.Flow != 7 {
		t.Fatalf("bad SwitchINT: %v", si)
	}
	if len(si.Hops) != 2 {
		t.Fatalf("SwitchINT hops = %d, want DC hop + long-haul hop", len(si.Hops))
	}
	if si.Hops[0].Node != 101 || si.Hops[1].Node != 300 {
		t.Fatalf("hop nodes = %v, %v", si.Hops[0].Node, si.Hops[1].Node)
	}
}

func TestPFQStampsCreditAndINT(t *testing.T) {
	r := newRig(t, true)
	// Data arriving from the long haul for host 1: must be PFQ'd.
	data := r.pool.NewData(9, 2, 1, 0, 1000)
	data.AddHop(pkt.INTHop{Node: 999}) // stale; must be erased
	r.farSide.send(data)
	r.eng.Run()
	if len(r.dcSide.got) != 1 {
		t.Fatalf("dc side got %d packets", len(r.dcSide.got))
	}
	p := r.dcSide.got[0]
	if p.CD != 0 {
		t.Fatalf("CD = %d, want initial 0", p.CD)
	}
	if len(p.Hops) != 1 || p.Hops[0].Node != 300 {
		t.Fatalf("INT not reinserted by the DCI: %v", p.Hops)
	}
	if r.sw.PFQFlows != 1 {
		t.Fatalf("PFQFlows = %d", r.sw.PFQFlows)
	}
}

func TestAckUpdatesCreditRateAndDQM(t *testing.T) {
	r := newRig(t, true)
	// Allocate the PFQ first.
	r.farSide.send(r.pool.NewData(9, 2, 1, 0, 1000))
	r.eng.Run()

	ack := r.pool.NewControl(pkt.Ack, 9, 1, 2)
	ack.CR = 1
	ack.RCredit = 5 * sim.Gbps
	r.dcSide.send(ack)
	r.eng.Run()

	if r.sw.DQMUpdates != 1 {
		t.Fatalf("DQMUpdates = %d", r.sw.DQMUpdates)
	}
	// The ACK continued to the far side carrying R̄_DQM.
	var got *pkt.Packet
	for _, p := range r.farSide.got {
		if p.Kind == pkt.Ack {
			got = p
		}
	}
	if got == nil {
		t.Fatal("ack not forwarded")
	}
	if got.RDQM == 0 {
		t.Fatal("RDQM not stamped on ack")
	}
	// Subsequent data dequeues carry the updated CD and the new pace.
	r.farSide.send(r.pool.NewData(9, 2, 1, 1000, 1000))
	r.eng.Run()
	last := r.dcSide.got[len(r.dcSide.got)-1]
	if last.Kind != pkt.Data || last.CD != 1 {
		t.Fatalf("CD not updated from CR: %v cd=%d", last.Kind, last.CD)
	}
}

func TestPFQPacingAtCreditRate(t *testing.T) {
	r := newRig(t, true)
	r.farSide.send(r.pool.NewData(9, 2, 1, 0, 1000))
	r.eng.Run()
	// Set a slow dequeue rate (1 Gbps → 8 µs per 1000B packet).
	ack := r.pool.NewControl(pkt.Ack, 9, 1, 2)
	ack.CR = 1
	ack.RCredit = sim.Gbps
	r.dcSide.send(ack)
	r.eng.Run()

	// Burst three packets; inter-arrival on the DC side must be ≥ 8 µs.
	base := len(r.dcSide.got)
	for i := 1; i <= 3; i++ {
		r.farSide.send(r.pool.NewData(9, 2, 1, int64(i)*1000, 1000))
	}
	r.eng.Run()
	if got := len(r.dcSide.got) - base; got != 3 {
		t.Fatalf("delivered %d", got)
	}
	for i := base + 1; i < len(r.dcSide.got); i++ {
		gap := r.dcSide.gotAt[i] - r.dcSide.gotAt[i-1]
		if gap < 7*sim.Microsecond {
			t.Fatalf("pacing violated: gap %v < 8us", gap)
		}
	}
}

func TestPFQGarbageCollection(t *testing.T) {
	r := newRig(t, true)
	r.farSide.send(r.pool.NewData(9, 2, 1, 0, 1000))
	r.eng.Run()
	if r.sw.ActivePFQs() != 1 {
		t.Fatalf("ActivePFQs = %d", r.sw.ActivePFQs())
	}
	ack := r.pool.NewControl(pkt.Ack, 9, 1, 2)
	ack.CR = 1
	ack.RCredit = sim.Gbps
	ack.Last = true
	r.dcSide.send(ack)
	r.eng.Run()
	if r.sw.ActivePFQs() != 0 {
		t.Fatalf("PFQ not garbage-collected: %d", r.sw.ActivePFQs())
	}
}

func TestPFQBacklogAccounting(t *testing.T) {
	r := newRig(t, true)
	// Throttle the PFQ hard so packets accumulate.
	r.farSide.send(r.pool.NewData(9, 2, 1, 0, 1000))
	r.eng.Run()
	ack := r.pool.NewControl(pkt.Ack, 9, 1, 2)
	ack.CR = 1
	ack.RCredit = 10 * sim.Mbps
	r.dcSide.send(ack)
	r.eng.Run()
	for i := 1; i <= 5; i++ {
		r.farSide.send(r.pool.NewData(9, 2, 1, int64(i)*1000, 1000))
	}
	r.eng.RunUntil(r.eng.Now() + 100*sim.Microsecond)
	if b := r.sw.PFQBacklog(9); b < 3000 {
		t.Fatalf("backlog = %d, want several packets", b)
	}
	if tot := r.sw.PFQTotalBacklog(); tot != r.sw.PFQBacklog(9) {
		t.Fatalf("total %d != flow backlog %d", tot, r.sw.PFQBacklog(9))
	}
	if r.sw.PFQBacklog(12345) != 0 {
		t.Fatal("unknown flow reports backlog")
	}
	// Drain completely.
	ack2 := r.pool.NewControl(pkt.Ack, 9, 1, 2)
	ack2.CR = 2
	ack2.RCredit = 25 * sim.Gbps
	r.dcSide.send(ack2)
	r.eng.Run()
	if r.sw.PFQTotalBacklog() != 0 {
		t.Fatalf("backlog not drained: %d", r.sw.PFQTotalBacklog())
	}
	if r.sw.BufferUsed() != 0 {
		t.Fatalf("shared buffer residual: %d", r.sw.BufferUsed())
	}
}

func TestControlBypassesPFQ(t *testing.T) {
	r := newRig(t, true)
	// Freeze the only PFQ at a crawl, then send a control frame: it must
	// not queue behind data.
	r.farSide.send(r.pool.NewData(9, 2, 1, 0, 1000))
	r.eng.Run()
	ack := r.pool.NewControl(pkt.Ack, 9, 1, 2)
	ack.CR = 1
	ack.RCredit = 10 * sim.Mbps
	r.dcSide.send(ack)
	r.eng.Run()
	for i := 1; i <= 3; i++ {
		r.farSide.send(r.pool.NewData(9, 2, 1, int64(i)*1000, 1000))
	}
	cnp := r.pool.NewControl(pkt.CNP, 9, 2, 1)
	r.farSide.send(cnp)
	before := r.eng.Now()
	r.eng.RunUntil(before + 50*sim.Microsecond)
	found := false
	for _, p := range r.dcSide.got {
		if p.Kind == pkt.CNP {
			found = true
		}
	}
	if !found {
		t.Fatal("control frame stuck behind paced PFQ data")
	}
}
