package scenario

import (
	"bytes"
	"testing"

	"mlcc/internal/sim"
)

// FuzzScenarioPlan hammers ReadPlan with arbitrary bytes: it must reject or
// accept, never panic — and every plan it accepts must satisfy Validate and
// survive WritePlan→ReadPlan with all fields intact (times within the float64
// microsecond precision the JSON schema carries). The hostile inputs of
// interest are times whose float→int64 conversion is implementation-defined,
// contradictory workers/hosts pairs, and shapes that would once have
// generated silently-empty schedules. A committed seed corpus lives in
// testdata/fuzz/FuzzScenarioPlan.
func FuzzScenarioPlan(f *testing.F) {
	f.Add([]byte(`{"seed":7,"collectives":[{"name":"ring","workers":8,"tensor_bytes":65536,"phases":4,"gap_us":5}]}`))
	f.Add([]byte(`{"incasts":[{"name":"burst","dst":0,"fan_in":3,"bytes":65536,"waves":2,"interval_us":500}]}`))
	f.Add([]byte(`{"shuffles":[{"name":"s","hosts":[0,4,2,6],"bytes":1024,"stagger_us":10}]}`))
	f.Add([]byte(`{"tenants":[{"name":"web","workload":"websearch","intra_load":0.3,"cross_load":0.1,"duration_us":2000}]}`))
	f.Add([]byte(`{"name":"space","tenants":[{"name":"b","workload":"hadoop","cross_load":0.1,"duration_us":5000}],` +
		`"profile":{"longhaul_us":100000,"jitter_us":150,"outages":[{"start_us":120000,"end_us":123000}]}}`))
	f.Add([]byte(`{"collectives":[{"name":"c","workers":2,"tensor_bytes":1,"phases":2,"gap_us":9.3e18}]}`))
	f.Add([]byte(`{"tenants":[{"name":"t","workload":"websearch","intra_load":-1,"duration_us":1}]}`))
	f.Add([]byte(`{"collectives":[{"name":"c","workers":4,"hosts":[0,1],"tensor_bytes":1,"phases":1}]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadPlan accepted a plan Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := WritePlan(&buf, p); err != nil {
			t.Fatalf("WritePlan: %v", err)
		}
		p2, err := ReadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, buf.Bytes())
		}
		if p2.Seed != p.Seed || p2.Name != p.Name ||
			len(p2.Collectives) != len(p.Collectives) || len(p2.Incasts) != len(p.Incasts) ||
			len(p2.Shuffles) != len(p.Shuffles) || len(p2.Tenants) != len(p.Tenants) ||
			(p2.Profile == nil) != (p.Profile == nil) {
			t.Fatalf("round trip changed shape: %+v vs %+v", p, p2)
		}
		// Microsecond fields pass through float64: exact below ~2^51 ps, a
		// bounded rounding error near the int64 clock's rim.
		timeClose := func(a, b sim.Time) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= sim.Nanosecond+a/(1<<40)
		}
		if !timeClose(p.Poll, p2.Poll) {
			t.Fatalf("poll drifted: %v vs %v", p.Poll, p2.Poll)
		}
		for i := range p.Collectives {
			a, b := p.Collectives[i], p2.Collectives[i]
			if a.Name != b.Name || a.Workers != b.Workers || len(a.Hosts) != len(b.Hosts) ||
				a.Tensor != b.Tensor || a.Phases != b.Phases {
				t.Fatalf("collective %d changed: %+v vs %+v", i, a, b)
			}
			for j := range a.Hosts {
				if a.Hosts[j] != b.Hosts[j] {
					t.Fatalf("collective %d placement changed: %v vs %v", i, a.Hosts, b.Hosts)
				}
			}
			if !timeClose(a.Start, b.Start) || !timeClose(a.Gap, b.Gap) {
				t.Fatalf("collective %d times drifted: %+v vs %+v", i, a, b)
			}
		}
		for i := range p.Incasts {
			a, b := p.Incasts[i], p2.Incasts[i]
			if a.Name != b.Name || a.Dst != b.Dst || a.FanIn != b.FanIn ||
				a.Bytes != b.Bytes || a.Waves != b.Waves || a.Cross != b.Cross {
				t.Fatalf("incast %d changed: %+v vs %+v", i, a, b)
			}
			if !timeClose(a.Start, b.Start) || !timeClose(a.Interval, b.Interval) {
				t.Fatalf("incast %d times drifted: %+v vs %+v", i, a, b)
			}
		}
		for i := range p.Shuffles {
			a, b := p.Shuffles[i], p2.Shuffles[i]
			if a.Name != b.Name || a.Workers != b.Workers || len(a.Hosts) != len(b.Hosts) || a.Bytes != b.Bytes {
				t.Fatalf("shuffle %d changed: %+v vs %+v", i, a, b)
			}
			for j := range a.Hosts {
				if a.Hosts[j] != b.Hosts[j] {
					t.Fatalf("shuffle %d placement changed: %v vs %v", i, a.Hosts, b.Hosts)
				}
			}
			if !timeClose(a.Start, b.Start) || !timeClose(a.Stagger, b.Stagger) {
				t.Fatalf("shuffle %d times drifted: %+v vs %+v", i, a, b)
			}
		}
		for i := range p.Tenants {
			a, b := p.Tenants[i], p2.Tenants[i]
			if a.Name != b.Name || a.Workload != b.Workload ||
				a.IntraLoad != b.IntraLoad || a.CrossLoad != b.CrossLoad {
				t.Fatalf("tenant %d changed: %+v vs %+v", i, a, b)
			}
			if !timeClose(a.Start, b.Start) || !timeClose(a.Duration, b.Duration) {
				t.Fatalf("tenant %d times drifted: %+v vs %+v", i, a, b)
			}
		}
		if p.Profile != nil {
			a, b := p.Profile, p2.Profile
			if !timeClose(a.LongHaul, b.LongHaul) || !timeClose(a.Jitter, b.Jitter) || len(a.Outages) != len(b.Outages) {
				t.Fatalf("profile drifted: %+v vs %+v", a, b)
			}
			for i := range a.Outages {
				if !timeClose(a.Outages[i].Start, b.Outages[i].Start) || !timeClose(a.Outages[i].End, b.Outages[i].End) {
					t.Fatalf("outage %d drifted: %+v vs %+v", i, a.Outages[i], b.Outages[i])
				}
			}
		}
	})
}
