package scenario

import (
	"fmt"

	"mlcc/internal/host"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// Runner is a plan bound to a built network. Open-loop flows are registered
// immediately (before Run, in canonical merge order); collectives are primed
// with their phase-zero flows and then advanced by a quiescent barrier poll.
//
// Shard safety of the closed loop: host OnFlowDone (fires on the receiver's
// engine) and OnFlowAbort (sender's engine) callbacks increment one counter
// cell per shard — each cell written only by its own shard's goroutine, read
// by the driving goroutine at quiescent boundaries where every engine is
// parked and the barrier resume gives the happens-before edge. The owner map
// routing callbacks to their collective is written only with engines parked
// (at bind time and inside the quiescent tick) and read concurrently
// in-between, which Go maps permit. The tick itself — barrier verification
// against the authoritative Flow.Done/Aborted flags and next-phase
// registration via Network.AddFlow — runs on the driving goroutine at exact
// boundary multiples, so phase launch times, flow-ID assignment and ECMP
// routing are identical for any shard count.
type Runner struct {
	n    *topo.Network
	plan *Plan

	openLoop []workload.FlowSpec
	tags     map[pkt.FlowID]string

	colls []*collRun
	owner map[pkt.FlowID]*collRun
}

// collRun is one collective's live state.
type collRun struct {
	spec  Collective
	hosts []int // resolved ring placement

	phasesDone int
	flows      []*host.Flow // current phase, worker order
	counters   []int64      // per-shard completion events (done + abort)
	failed     bool
	finished   bool
	finishedAt sim.Time // max FinishAt of the terminal phase
}

// CollectiveStatus is one collective's end-of-run summary.
type CollectiveStatus struct {
	Name       string
	Phases     int // planned
	PhasesDone int // barriers passed cleanly
	Failed     bool
	Finished   bool
	FinishedAt sim.Time
}

// defaultPlacement interleaves W workers across the DCs — worker k on host
// k/2 of DC k%2 — so every ring hop of an even-sized ring crosses the long
// haul.
func defaultPlacement(n *topo.Network, w int) ([]int, error) {
	if w > n.NumHosts() {
		return nil, fmt.Errorf("%d workers exceed the %d-host topology", w, n.NumHosts())
	}
	hosts := make([]int, w)
	for k := 0; k < w; k++ {
		if k/2 >= n.HostsPerDC {
			return nil, fmt.Errorf("%d workers exceed the interleaved capacity of %d hosts per DC", w, n.HostsPerDC)
		}
		hosts[k] = k/2 + (k%2)*n.HostsPerDC
	}
	return hosts, nil
}

// resolvePlacement picks explicit hosts (bounds-checked) or the default
// interleaving.
func resolvePlacement(n *topo.Network, what, name string, workers int, explicit []int) ([]int, error) {
	if len(explicit) > 0 {
		for _, h := range explicit {
			if h >= n.NumHosts() {
				return nil, fmt.Errorf("scenario: %s %q: host %d outside the %d-host topology", what, name, h, n.NumHosts())
			}
		}
		return append([]int(nil), explicit...), nil
	}
	hosts, err := defaultPlacement(n, workers)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s %q: %v", what, name, err)
	}
	return hosts, nil
}

// incastSenders lists the burst sources: the lowest-indexed hosts of the
// destination's own DC (or the opposite one for cross bursts), skipping the
// destination.
func incastSenders(n *topo.Network, in Incast) ([]int, error) {
	if in.Dst >= n.NumHosts() {
		return nil, fmt.Errorf("scenario: incast %q: destination %d outside the %d-host topology", in.Name, in.Dst, n.NumHosts())
	}
	dc := n.DC(in.Dst)
	if in.Cross {
		dc = 1 - dc
	}
	var pool []int
	for h := dc * n.HostsPerDC; h < (dc+1)*n.HostsPerDC; h++ {
		if h != in.Dst {
			pool = append(pool, h)
		}
	}
	if in.FanIn > len(pool) {
		return nil, fmt.Errorf("scenario: incast %q: fan-in %d exceeds the %d available senders", in.Name, in.FanIn, len(pool))
	}
	return pool[:in.FanIn], nil
}

// expand builds the open-loop flow list of every non-collective component,
// in the canonical merged order.
func expand(p *Plan, n *topo.Network) ([]workload.FlowSpec, error) {
	var lists [][]workload.FlowSpec
	for _, in := range p.Incasts {
		senders, err := incastSenders(n, in)
		if err != nil {
			return nil, err
		}
		var fl []workload.FlowSpec
		for w := 0; w < in.Waves; w++ {
			start := in.Start + sim.Time(w)*in.Interval
			for _, s := range senders {
				fl = append(fl, workload.FlowSpec{
					Src: s, Dst: in.Dst, Size: in.Bytes, Start: start,
					Cross: n.CrossDC(s, in.Dst), Tag: in.Name,
				})
			}
		}
		lists = append(lists, fl)
	}
	for _, sh := range p.Shuffles {
		hosts, err := resolvePlacement(n, "shuffle", sh.Name, sh.WorkerCount(), sh.Hosts)
		if err != nil {
			return nil, err
		}
		var fl []workload.FlowSpec
		for i, src := range hosts {
			start := sh.Start + sim.Time(i)*sh.Stagger
			for j, dst := range hosts {
				if i == j {
					continue
				}
				fl = append(fl, workload.FlowSpec{
					Src: src, Dst: dst, Size: sh.Bytes, Start: start,
					Cross: n.CrossDC(src, dst), Tag: sh.Name,
				})
			}
		}
		lists = append(lists, fl)
	}
	for _, t := range p.Tenants {
		cdf, err := workload.ByName(t.Workload)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		fl, err := workload.Generate(workload.Spec{
			CDF:       cdf,
			IntraLoad: t.IntraLoad,
			CrossLoad: t.CrossLoad,
			HostRate:  n.P.HostRate,
			IntraRate: n.PerHostBisection(),
			CrossRate: n.P.FabricRate,
			Hosts:     n.NumHosts(),
			Duration:  t.Duration,
			Seed:      p.SubSeed(t.Name),
			Tag:       t.Name,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		for i := range fl {
			fl[i].Start += t.Start
		}
		lists = append(lists, fl)
	}
	return workload.MergeFlows(lists...), nil
}

// Bind attaches the plan to a built (not yet run) network: it validates,
// registers every open-loop flow, primes each collective's first phase and
// installs the quiescent barrier poll. The caller then drives n.Run with a
// deadline generous enough for the closed-loop phases to drain.
func Bind(p *Plan, n *topo.Network) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	flows, err := expand(p, n)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		n:        n,
		plan:     p,
		openLoop: flows,
		tags:     make(map[pkt.FlowID]string, len(flows)),
		owner:    make(map[pkt.FlowID]*collRun),
	}
	for _, fs := range flows {
		f := n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
		r.tags[f.Info.ID] = fs.Tag
	}
	for _, c := range p.Collectives {
		hosts, err := resolvePlacement(n, "collective", c.Name, c.WorkerCount(), c.Hosts)
		if err != nil {
			return nil, err
		}
		cr := &collRun{spec: c, hosts: hosts, counters: make([]int64, n.ShardCount())}
		r.colls = append(r.colls, cr)
		r.launchPhase(cr, c.Start)
	}
	if len(r.colls) > 0 {
		r.hookHosts()
		n.OnQuiescent(p.PollInterval(), r.tick)
	}
	return r, nil
}

// launchPhase registers one ring round: worker i sends Tensor bytes to
// worker (i+1) mod W, all starting at start. Callers hold the engines parked
// (bind time or a quiescent tick), so Table registration and the engine
// schedule push are race-free.
func (r *Runner) launchPhase(cr *collRun, start sim.Time) {
	w := len(cr.hosts)
	cr.flows = cr.flows[:0]
	for i := range cr.counters {
		cr.counters[i] = 0
	}
	for i := 0; i < w; i++ {
		f := r.n.AddFlow(cr.hosts[i], cr.hosts[(i+1)%w], cr.spec.Tensor, start)
		cr.flows = append(cr.flows, f)
		r.owner[f.Info.ID] = cr
	}
}

// shardOf maps a host index to the shard owning its engine.
func (r *Runner) shardOf(h int) int {
	if r.n.ShardCount() > 1 {
		return r.n.DC(h)
	}
	return 0
}

// hookHosts chains the runner's completion observers behind any callbacks
// already installed. OnFlowDone fires on the receiver's engine, OnFlowAbort
// on the sender's: each increments the counter cell of the engine it runs
// on, so no cell is ever written by two goroutines.
func (r *Runner) hookHosts() {
	for _, h := range r.n.Hosts {
		prevDone := h.OnFlowDone
		h.OnFlowDone = func(f *host.Flow) {
			if prevDone != nil {
				prevDone(f)
			}
			if cr := r.owner[f.Info.ID]; cr != nil {
				cr.counters[r.shardOf(r.n.HostIndex(f.Info.Dst))]++
			}
		}
		prevAbort := h.OnFlowAbort
		h.OnFlowAbort = func(f *host.Flow) {
			if prevAbort != nil {
				prevAbort(f)
			}
			if cr := r.owner[f.Info.ID]; cr != nil {
				cr.counters[r.shardOf(r.n.HostIndex(f.Info.Src))]++
			}
		}
	}
}

// tick is the quiescent barrier poll: with every engine parked at an exact
// boundary, sum each live collective's per-shard counters; when a phase's
// flow count is reached, verify the barrier against the authoritative
// Done/Aborted flags and either fail the collective (an aborted tensor flow
// poisons the all-reduce — there is no partial sum) or launch the next phase
// Gap after the boundary. Iteration is in plan order and launches go through
// AddFlow, so flow-ID assignment stays a pure function of the plan.
func (r *Runner) tick(now sim.Time) {
	for _, cr := range r.colls {
		if cr.finished || cr.failed {
			continue
		}
		var sum int64
		for _, c := range cr.counters {
			sum += c
		}
		if sum < int64(len(cr.flows)) {
			continue
		}
		var last sim.Time
		aborted := false
		for _, f := range cr.flows {
			if f.Aborted {
				aborted = true
			}
			if f.FinishAt > last {
				last = f.FinishAt
			}
		}
		if aborted {
			cr.failed = true
			cr.finishedAt = last
			continue
		}
		cr.phasesDone++
		if cr.phasesDone >= cr.spec.Phases {
			cr.finished = true
			cr.finishedAt = last
			continue
		}
		r.launchPhase(cr, now+cr.spec.Gap)
	}
}

// Tag names the component that produced flow id ("" for flows the scenario
// did not register).
func (r *Runner) Tag(id pkt.FlowID) string {
	if tag, ok := r.tags[id]; ok {
		return tag
	}
	if cr, ok := r.owner[id]; ok {
		return cr.spec.Name
	}
	return ""
}

// OpenLoop returns the open-loop flow schedule the runner registered, in
// canonical order (collective flows are closed-loop and excluded — they
// cannot be replayed as a trace).
func (r *Runner) OpenLoop() []workload.FlowSpec {
	return append([]workload.FlowSpec(nil), r.openLoop...)
}

// Statuses reports each collective's end state, in plan order.
func (r *Runner) Statuses() []CollectiveStatus {
	out := make([]CollectiveStatus, 0, len(r.colls))
	for _, cr := range r.colls {
		out = append(out, CollectiveStatus{
			Name:       cr.spec.Name,
			Phases:     cr.spec.Phases,
			PhasesDone: cr.phasesDone,
			Failed:     cr.failed,
			Finished:   cr.finished,
			FinishedAt: cr.finishedAt,
		})
	}
	return out
}

// Settled reports whether every collective has finished or failed — the
// closed-loop half of "the scenario is done" (open-loop flows settle on
// their own by the run deadline).
func (r *Runner) Settled() bool {
	for _, cr := range r.colls {
		if !cr.finished && !cr.failed {
			return false
		}
	}
	return true
}
