package scenario

import (
	"strings"
	"testing"

	"mlcc/internal/fault"
	"mlcc/internal/sim"
)

// validPlan is a minimal plan that passes Validate; tests mutate copies.
func validPlan() *Plan {
	return &Plan{
		Seed: 1,
		Name: "test",
		Collectives: []Collective{
			{Name: "ring", Workers: 4, Tensor: 1 << 20, Phases: 2, Gap: 5 * sim.Microsecond},
		},
		Incasts: []Incast{
			{Name: "burst", Dst: 0, FanIn: 3, Bytes: 64 << 10, Waves: 1},
		},
		Shuffles: []Shuffle{
			{Name: "shuffle", Workers: 4, Bytes: 32 << 10},
		},
		Tenants: []Tenant{
			{Name: "web", Workload: "websearch", IntraLoad: 0.3, Duration: sim.Millisecond},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validPlan().Validate(); err != nil {
		t.Fatal(err)
	}
	p := validPlan()
	p.Profile = &Profile{
		LongHaul: 100 * sim.Millisecond,
		Jitter:   150 * sim.Microsecond,
		Outages:  []Outage{{Start: sim.Millisecond, End: 2 * sim.Millisecond}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Plan){
		"no components":           func(p *Plan) { p.Collectives, p.Incasts, p.Shuffles, p.Tenants = nil, nil, nil, nil },
		"negative poll":           func(p *Plan) { p.Poll = -1 },
		"empty name":              func(p *Plan) { p.Incasts[0].Name = "" },
		"duplicate name":          func(p *Plan) { p.Incasts[0].Name = "ring" },
		"one worker":              func(p *Plan) { p.Collectives[0].Workers = 1 },
		"workers vs hosts":        func(p *Plan) { p.Collectives[0].Hosts = []int{0, 1, 2} },
		"duplicate host":          func(p *Plan) { p.Collectives[0].Workers = 0; p.Collectives[0].Hosts = []int{0, 1, 1} },
		"negative host":           func(p *Plan) { p.Collectives[0].Workers = 0; p.Collectives[0].Hosts = []int{-1, 1} },
		"zero tensor":             func(p *Plan) { p.Collectives[0].Tensor = 0 },
		"zero phases":             func(p *Plan) { p.Collectives[0].Phases = 0 },
		"negative start":          func(p *Plan) { p.Collectives[0].Start = -1 },
		"multi-phase zero gap":    func(p *Plan) { p.Collectives[0].Gap = 0 },
		"zero fan-in":             func(p *Plan) { p.Incasts[0].FanIn = 0 },
		"negative incast dst":     func(p *Plan) { p.Incasts[0].Dst = -1 },
		"zero incast bytes":       func(p *Plan) { p.Incasts[0].Bytes = 0 },
		"zero waves":              func(p *Plan) { p.Incasts[0].Waves = 0 },
		"multi-wave zero gap":     func(p *Plan) { p.Incasts[0].Waves = 2 },
		"zero shuffle bytes":      func(p *Plan) { p.Shuffles[0].Bytes = 0 },
		"negative stagger":        func(p *Plan) { p.Shuffles[0].Stagger = -1 },
		"unknown workload":        func(p *Plan) { p.Tenants[0].Workload = "nope" },
		"negative load":           func(p *Plan) { p.Tenants[0].IntraLoad = -0.5 },
		"zero tenant duration":    func(p *Plan) { p.Tenants[0].Duration = 0 },
		"negative tenant start":   func(p *Plan) { p.Tenants[0].Start = -1 },
		"negative profile jitter": func(p *Plan) { p.Profile = &Profile{Jitter: -1} },
		"empty outage window": func(p *Plan) {
			p.Profile = &Profile{Outages: []Outage{{Start: sim.Millisecond, End: sim.Millisecond}}}
		},
	}
	for name, mutate := range cases {
		p := validPlan()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCanonicalPlans(t *testing.T) {
	for _, kind := range Kinds() {
		p, err := CanonicalPlan(kind, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: canonical plan fails validation: %v", kind, err)
		}
		if p.Name != kind {
			t.Errorf("%s: plan named %q", kind, p.Name)
		}
		if len(p.Components()) == 0 {
			t.Errorf("%s: no components", kind)
		}
	}
	if _, err := CanonicalPlan("nope", 8, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := CanonicalPlan("incast", 7, 1); err == nil {
		t.Error("odd host count accepted")
	}
}

func TestHorizon(t *testing.T) {
	p := &Plan{
		Collectives: []Collective{{Name: "c", Workers: 2, Tensor: 1, Phases: 3, Start: 10 * sim.Microsecond, Gap: 5 * sim.Microsecond}},
		Incasts:     []Incast{{Name: "i", FanIn: 1, Bytes: 1, Waves: 4, Start: 0, Interval: 100 * sim.Microsecond}},
		Tenants:     []Tenant{{Name: "t", Workload: "websearch", Start: 50 * sim.Microsecond, Duration: 200 * sim.Microsecond}},
	}
	// incast: 0 + 3*100 = 300µs beats collective 10+2*5=20µs and tenant 250µs.
	if got, want := p.Horizon(), 300*sim.Microsecond; got != want {
		t.Errorf("Horizon() = %v, want %v", got, want)
	}
	if got := p.MaxPhases(); got != 3 {
		t.Errorf("MaxPhases() = %d, want 3", got)
	}
}

func TestSubSeedStable(t *testing.T) {
	p := &Plan{Seed: 42}
	if p.SubSeed("web") != p.SubSeed("web") {
		t.Error("SubSeed not deterministic")
	}
	if p.SubSeed("web") == p.SubSeed("batch") {
		t.Error("distinct tenants collided")
	}
	q := &Plan{Seed: 43}
	if p.SubSeed("web") == q.SubSeed("web") {
		t.Error("plan seed does not enter the sub-seed")
	}
}

func TestFaultPlanSynthesis(t *testing.T) {
	// No profile: base passes through untouched (nil included).
	p := validPlan()
	if got := p.FaultPlan(nil); got != nil {
		t.Errorf("profile-free plan synthesized %+v", got)
	}
	base := &fault.Plan{Seed: 9, Events: []fault.Event{{At: sim.Millisecond, Link: "longhaul", Action: fault.LinkDown}}}
	if got := p.FaultPlan(base); got != base {
		t.Error("profile-free plan did not pass base through")
	}

	// LongHaul-only profile: a pure propagation change needs no fault events.
	p.Profile = &Profile{LongHaul: 50 * sim.Millisecond}
	if got := p.FaultPlan(nil); got != nil {
		t.Errorf("longhaul-only profile synthesized %+v", got)
	}

	// Jitter + outages: degrade at t=0 plus a down/up pair per outage,
	// appended after the base events.
	p.Profile = &Profile{
		Jitter:  200 * sim.Microsecond,
		Outages: []Outage{{Start: 2 * sim.Millisecond, End: 3 * sim.Millisecond}},
	}
	fp := p.FaultPlan(base)
	if fp == base {
		t.Fatal("synthesis returned base unmodified")
	}
	if fp.Seed != base.Seed {
		t.Errorf("seed = %d, want base seed %d", fp.Seed, base.Seed)
	}
	if len(fp.Events) != 4 {
		t.Fatalf("events = %d, want 4 (1 base + 1 jitter + 2 outage): %+v", len(fp.Events), fp.Events)
	}
	if len(base.Events) != 1 {
		t.Fatal("synthesis mutated base")
	}
	jit := fp.Events[1]
	if jit.Action != fault.Degrade || jit.At != 0 || jit.Jitter != 200*sim.Microsecond || jit.RateFactor != 0 {
		t.Errorf("jitter event %+v", jit)
	}
	if fp.Events[2].Action != fault.LinkDown || fp.Events[2].At != 2*sim.Millisecond ||
		fp.Events[3].Action != fault.LinkUp || fp.Events[3].At != 3*sim.Millisecond {
		t.Errorf("outage events %+v", fp.Events[2:])
	}
	if err := fp.Validate(); err != nil {
		t.Errorf("synthesized plan invalid: %v", err)
	}
	// Seed falls back to the scenario's when base carries none.
	p.Seed = 7
	if fp := p.FaultPlan(nil); fp.Seed != 7 {
		t.Errorf("seed = %d, want plan seed 7", fp.Seed)
	}
}

func TestValidateErrorsMentionComponent(t *testing.T) {
	p := validPlan()
	p.Collectives[0].Tensor = -1
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "ring") {
		t.Errorf("error %v does not name the offending component", err)
	}
}
