package scenario

import (
	"bytes"
	"strings"
	"testing"

	"mlcc/internal/sim"
)

const examplePlan = `{
  "seed": 7,
  "name": "mixed",
  "poll_us": 100,
  "collectives": [
    {"name": "ring", "workers": 8, "tensor_bytes": 65536,
     "phases": 4, "start_us": 0, "gap_us": 5}
  ],
  "incasts": [
    {"name": "burst", "dst": 0, "fan_in": 3, "bytes": 65536,
     "start_us": 0, "waves": 2, "interval_us": 500}
  ],
  "shuffles": [
    {"name": "shuffle", "workers": 8, "bytes": 32768,
     "start_us": 1000, "stagger_us": 10}
  ],
  "tenants": [
    {"name": "web", "workload": "websearch", "intra_load": 0.3,
     "cross_load": 0.1, "duration_us": 2000}
  ],
  "profile": {"longhaul_us": 100000, "jitter_us": 150,
              "outages": [{"start_us": 120000, "end_us": 123000}]}
}`

func TestReadPlanExample(t *testing.T) {
	p, err := ReadPlan(strings.NewReader(examplePlan))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Name != "mixed" || p.Poll != 100*sim.Microsecond {
		t.Errorf("header: %+v", p)
	}
	if len(p.Collectives) != 1 || len(p.Incasts) != 1 || len(p.Shuffles) != 1 || len(p.Tenants) != 1 {
		t.Fatalf("shape: %+v", p)
	}
	c := p.Collectives[0]
	if c.Name != "ring" || c.Workers != 8 || c.Tensor != 65536 || c.Phases != 4 || c.Gap != 5*sim.Microsecond {
		t.Errorf("collective: %+v", c)
	}
	in := p.Incasts[0]
	if in.FanIn != 3 || in.Waves != 2 || in.Interval != 500*sim.Microsecond || in.Cross {
		t.Errorf("incast: %+v", in)
	}
	tn := p.Tenants[0]
	if tn.Workload != "websearch" || tn.IntraLoad != 0.3 || tn.Duration != 2*sim.Millisecond {
		t.Errorf("tenant: %+v", tn)
	}
	pr := p.Profile
	if pr == nil || pr.LongHaul != 100*sim.Millisecond || pr.Jitter != 150*sim.Microsecond {
		t.Fatalf("profile: %+v", pr)
	}
	if len(pr.Outages) != 1 || pr.Outages[0].Start != 120*sim.Millisecond || pr.Outages[0].End != 123*sim.Millisecond {
		t.Errorf("outages: %+v", pr.Outages)
	}
}

// TestWritePlanByteStable: Write→Read→Write must emit byte-identical JSON —
// the stability property the fuzz target leans on and the experiment
// manifests require for reproducible artifact directories.
func TestWritePlanByteStable(t *testing.T) {
	plans := []*Plan{}
	for _, kind := range Kinds() {
		p, err := CanonicalPlan(kind, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	if p, err := ReadPlan(strings.NewReader(examplePlan)); err == nil {
		plans = append(plans, p)
	} else {
		t.Fatal(err)
	}
	for _, p := range plans {
		var a bytes.Buffer
		if err := WritePlan(&a, p); err != nil {
			t.Fatal(err)
		}
		p2, err := ReadPlan(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("%s: round trip rejected own output: %v\n%s", p.Name, err, a.Bytes())
		}
		var b bytes.Buffer
		if err := WritePlan(&b, p2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: second write differs:\n%s\nvs\n%s", p.Name, a.Bytes(), b.Bytes())
		}
	}
}

func TestReadPlanRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"bogus": 1}`,
		"unknown component": `{"collectivez": []}`,
		"not json":          `ring: 8 workers`,
		"negative time":     `{"tenants":[{"name":"t","workload":"websearch","duration_us":-5}]}`,
		"huge time":         `{"incasts":[{"name":"i","dst":0,"fan_in":1,"bytes":1,"waves":1,"start_us":9.3e18}]}`,
		"invalid plan":      `{"incasts":[{"name":"i","dst":0,"fan_in":0,"bytes":1,"waves":1}]}`,
		"bad workload":      `{"tenants":[{"name":"t","workload":"nope","duration_us":1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadPlan(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadPlanExplicitHosts(t *testing.T) {
	in := `{"shuffles":[{"name":"s","hosts":[0,4,2,6],"bytes":1024}]}`
	p, err := ReadPlan(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Shuffles[0]
	if s.WorkerCount() != 4 || s.Hosts[1] != 4 {
		t.Errorf("shuffle: %+v", s)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hosts"`) {
		t.Errorf("explicit hosts did not round trip:\n%s", buf.String())
	}
}
