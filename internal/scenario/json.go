package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mlcc/internal/sim"
)

// The JSON scenario schema uses microseconds, byte counts and plain
// fractions, mirroring the fault-plan format:
//
//	{
//	  "seed": 7,
//	  "name": "mixed",
//	  "poll_us": 100,
//	  "collectives": [
//	    {"name": "ring", "workers": 8, "tensor_bytes": 65536,
//	     "phases": 4, "start_us": 0, "gap_us": 5}
//	  ],
//	  "incasts": [
//	    {"name": "burst", "dst": 0, "fan_in": 3, "bytes": 65536,
//	     "start_us": 0, "waves": 2, "interval_us": 500, "cross": false}
//	  ],
//	  "shuffles": [
//	    {"name": "shuffle", "workers": 8, "bytes": 32768,
//	     "start_us": 1000, "stagger_us": 10}
//	  ],
//	  "tenants": [
//	    {"name": "web", "workload": "websearch", "intra_load": 0.3,
//	     "cross_load": 0.1, "start_us": 0, "duration_us": 2000}
//	  ],
//	  "profile": {"longhaul_us": 100000, "jitter_us": 150,
//	              "outages": [{"start_us": 120000, "end_us": 123000}]}
//	}
//
// "hosts" on a collective or shuffle pins explicit worker placement and
// overrides "workers". Tenant workloads name a flow-size CDF ("websearch",
// "hadoop").
type jsonPlan struct {
	Seed        int64            `json:"seed,omitempty"`
	Name        string           `json:"name,omitempty"`
	PollUS      float64          `json:"poll_us,omitempty"`
	Collectives []jsonCollective `json:"collectives,omitempty"`
	Incasts     []jsonIncast     `json:"incasts,omitempty"`
	Shuffles    []jsonShuffle    `json:"shuffles,omitempty"`
	Tenants     []jsonTenant     `json:"tenants,omitempty"`
	Profile     *jsonProfile     `json:"profile,omitempty"`
}

type jsonCollective struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers,omitempty"`
	Hosts       []int   `json:"hosts,omitempty"`
	TensorBytes int64   `json:"tensor_bytes"`
	Phases      int     `json:"phases"`
	StartUS     float64 `json:"start_us,omitempty"`
	GapUS       float64 `json:"gap_us,omitempty"`
}

type jsonIncast struct {
	Name       string  `json:"name"`
	Dst        int     `json:"dst"`
	FanIn      int     `json:"fan_in"`
	Bytes      int64   `json:"bytes"`
	StartUS    float64 `json:"start_us,omitempty"`
	Waves      int     `json:"waves"`
	IntervalUS float64 `json:"interval_us,omitempty"`
	Cross      bool    `json:"cross,omitempty"`
}

type jsonShuffle struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers,omitempty"`
	Hosts     []int   `json:"hosts,omitempty"`
	Bytes     int64   `json:"bytes"`
	StartUS   float64 `json:"start_us,omitempty"`
	StaggerUS float64 `json:"stagger_us,omitempty"`
}

type jsonTenant struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"`
	IntraLoad  float64 `json:"intra_load,omitempty"`
	CrossLoad  float64 `json:"cross_load,omitempty"`
	StartUS    float64 `json:"start_us,omitempty"`
	DurationUS float64 `json:"duration_us"`
}

type jsonProfile struct {
	LongHaulUS float64      `json:"longhaul_us,omitempty"`
	JitterUS   float64      `json:"jitter_us,omitempty"`
	Outages    []jsonOutage `json:"outages,omitempty"`
}

type jsonOutage struct {
	StartUS float64 `json:"start_us"`
	EndUS   float64 `json:"end_us"`
}

// maxPlanUS bounds every microsecond field: the int64 picosecond clock's
// range. Validating BEFORE the float→int64 conversion matters — converting
// NaN or out-of-range floats is implementation-defined in Go, so a
// converted-then-checked value can look plausible while meaning nothing.
const maxPlanUS = float64(1<<63-1) / 1e6

// usTime converts a validated microsecond count to simulation time, rounding
// to the picosecond grid.
func usTime(us float64) sim.Time {
	return sim.Time(math.Round(us * float64(sim.Microsecond)))
}

// checkUS validates a microsecond field's domain before conversion.
func checkUS(what string, us float64) error {
	if !(us >= 0 && us <= maxPlanUS) {
		return fmt.Errorf("scenario: %s: time %v µs outside [0, %g]", what, us, maxPlanUS)
	}
	return nil
}

// ReadPlan parses a JSON scenario plan and validates it.
func ReadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jp jsonPlan
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("scenario: parse plan: %w", err)
	}
	if err := checkUS("poll", jp.PollUS); err != nil {
		return nil, err
	}
	p := &Plan{Seed: jp.Seed, Name: jp.Name, Poll: usTime(jp.PollUS)}
	for i, jc := range jp.Collectives {
		what := fmt.Sprintf("collective %d", i)
		for _, f := range []struct {
			name string
			us   float64
		}{{"start", jc.StartUS}, {"gap", jc.GapUS}} {
			if err := checkUS(what+" "+f.name, f.us); err != nil {
				return nil, err
			}
		}
		p.Collectives = append(p.Collectives, Collective{
			Name:    jc.Name,
			Workers: jc.Workers,
			Hosts:   append([]int(nil), jc.Hosts...),
			Tensor:  jc.TensorBytes,
			Phases:  jc.Phases,
			Start:   usTime(jc.StartUS),
			Gap:     usTime(jc.GapUS),
		})
	}
	for i, ji := range jp.Incasts {
		what := fmt.Sprintf("incast %d", i)
		for _, f := range []struct {
			name string
			us   float64
		}{{"start", ji.StartUS}, {"interval", ji.IntervalUS}} {
			if err := checkUS(what+" "+f.name, f.us); err != nil {
				return nil, err
			}
		}
		p.Incasts = append(p.Incasts, Incast{
			Name:     ji.Name,
			Dst:      ji.Dst,
			FanIn:    ji.FanIn,
			Bytes:    ji.Bytes,
			Start:    usTime(ji.StartUS),
			Waves:    ji.Waves,
			Interval: usTime(ji.IntervalUS),
			Cross:    ji.Cross,
		})
	}
	for i, js := range jp.Shuffles {
		what := fmt.Sprintf("shuffle %d", i)
		for _, f := range []struct {
			name string
			us   float64
		}{{"start", js.StartUS}, {"stagger", js.StaggerUS}} {
			if err := checkUS(what+" "+f.name, f.us); err != nil {
				return nil, err
			}
		}
		p.Shuffles = append(p.Shuffles, Shuffle{
			Name:    js.Name,
			Workers: js.Workers,
			Hosts:   append([]int(nil), js.Hosts...),
			Bytes:   js.Bytes,
			Start:   usTime(js.StartUS),
			Stagger: usTime(js.StaggerUS),
		})
	}
	for i, jt := range jp.Tenants {
		what := fmt.Sprintf("tenant %d", i)
		for _, f := range []struct {
			name string
			us   float64
		}{{"start", jt.StartUS}, {"duration", jt.DurationUS}} {
			if err := checkUS(what+" "+f.name, f.us); err != nil {
				return nil, err
			}
		}
		p.Tenants = append(p.Tenants, Tenant{
			Name:      jt.Name,
			Workload:  jt.Workload,
			IntraLoad: jt.IntraLoad,
			CrossLoad: jt.CrossLoad,
			Start:     usTime(jt.StartUS),
			Duration:  usTime(jt.DurationUS),
		})
	}
	if jp.Profile != nil {
		for _, f := range []struct {
			name string
			us   float64
		}{{"longhaul", jp.Profile.LongHaulUS}, {"jitter", jp.Profile.JitterUS}} {
			if err := checkUS("profile "+f.name, f.us); err != nil {
				return nil, err
			}
		}
		pr := &Profile{
			LongHaul: usTime(jp.Profile.LongHaulUS),
			Jitter:   usTime(jp.Profile.JitterUS),
		}
		for i, jo := range jp.Profile.Outages {
			what := fmt.Sprintf("profile outage %d", i)
			if err := checkUS(what+" start", jo.StartUS); err != nil {
				return nil, err
			}
			if err := checkUS(what+" end", jo.EndUS); err != nil {
				return nil, err
			}
			pr.Outages = append(pr.Outages, Outage{Start: usTime(jo.StartUS), End: usTime(jo.EndUS)})
		}
		p.Profile = pr
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WritePlan emits the plan in the JSON schema ReadPlan accepts.
func WritePlan(w io.Writer, p *Plan) error {
	jp := jsonPlan{Seed: p.Seed, Name: p.Name, PollUS: p.Poll.Micros()}
	for _, c := range p.Collectives {
		jp.Collectives = append(jp.Collectives, jsonCollective{
			Name:        c.Name,
			Workers:     c.Workers,
			Hosts:       append([]int(nil), c.Hosts...),
			TensorBytes: c.Tensor,
			Phases:      c.Phases,
			StartUS:     c.Start.Micros(),
			GapUS:       c.Gap.Micros(),
		})
	}
	for _, in := range p.Incasts {
		jp.Incasts = append(jp.Incasts, jsonIncast{
			Name:       in.Name,
			Dst:        in.Dst,
			FanIn:      in.FanIn,
			Bytes:      in.Bytes,
			StartUS:    in.Start.Micros(),
			Waves:      in.Waves,
			IntervalUS: in.Interval.Micros(),
			Cross:      in.Cross,
		})
	}
	for _, s := range p.Shuffles {
		jp.Shuffles = append(jp.Shuffles, jsonShuffle{
			Name:      s.Name,
			Workers:   s.Workers,
			Hosts:     append([]int(nil), s.Hosts...),
			Bytes:     s.Bytes,
			StartUS:   s.Start.Micros(),
			StaggerUS: s.Stagger.Micros(),
		})
	}
	for _, t := range p.Tenants {
		jp.Tenants = append(jp.Tenants, jsonTenant{
			Name:       t.Name,
			Workload:   t.Workload,
			IntraLoad:  t.IntraLoad,
			CrossLoad:  t.CrossLoad,
			StartUS:    t.Start.Micros(),
			DurationUS: t.Duration.Micros(),
		})
	}
	if pr := p.Profile; pr != nil {
		jpr := &jsonProfile{LongHaulUS: pr.LongHaul.Micros(), JitterUS: pr.Jitter.Micros()}
		for _, o := range pr.Outages {
			jpr.Outages = append(jpr.Outages, jsonOutage{StartUS: o.Start.Micros(), EndUS: o.End.Micros()})
		}
		jp.Profile = jpr
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}
