// Package scenario composes named workload components — ML-collective ring
// all-reduce phases, N→1 incasts, all-to-all shuffles, multi-tenant Poisson
// mixes and a high-RTT "space DC" link profile — into one deterministic flow
// schedule for the two-DC topology.
//
// A Plan is declarative and seeded, like a fault.Plan: the same plan bound to
// the same build yields bit-identical simulations, sharded or not. Open-loop
// components (incasts, shuffles, tenants) expand into workload.FlowSpecs
// merged in the canonical SortFlows order and registered before the run.
// Collectives are closed-loop: each all-reduce phase is a ring of tensor
// flows, and the next phase starts only after every flow of the current one
// has finished — completion is observed through chained host OnFlowDone /
// OnFlowAbort callbacks feeding per-shard counters, and the barrier decision
// plus next-phase registration happen on the driving goroutine at quiescent
// poll boundaries, where every engine is parked (see Runner). That keeps the
// control loop shard-safe: boundaries, flow states and registration order are
// identical for any shard count, so determinism digests are too.
//
// Plans have a JSON form (µs-grid, unknown-field-rejecting, byte-stable
// round-trip; see ReadPlan/WritePlan) mirroring the fault-plan schema.
package scenario

import (
	"fmt"
	"math"

	"mlcc/internal/fault"
	"mlcc/internal/sim"
	"mlcc/internal/workload"
)

// DefaultPoll is the collective barrier poll interval when Plan.Poll is zero:
// fine enough that a phase gap is dominated by transfer time, coarse enough
// that quiescent pauses stay negligible.
const DefaultPoll = 100 * sim.Microsecond

// Plan is one composed scenario. The zero value is invalid (a plan must name
// at least one component); construct by hand, via CanonicalPlan, or ReadPlan.
type Plan struct {
	// Seed drives every random process in the plan (tenant Poisson arrivals
	// and sizes); each tenant draws from Seed XORed with a stable hash of
	// its name, so adding a tenant never perturbs another's trace.
	Seed int64

	// Name labels the scenario in reports and manifests.
	Name string

	// Poll is the collective barrier poll interval (0 = DefaultPoll). Only
	// plans with collectives install the quiescent hook.
	Poll sim.Time

	Collectives []Collective
	Incasts     []Incast
	Shuffles    []Shuffle
	Tenants     []Tenant

	// Profile, when non-nil, reshapes the long-haul link: propagation
	// override, jitter, scripted outages (synthesized into a fault.Plan; see
	// Plan.FaultPlan).
	Profile *Profile
}

// Collective is a closed-loop ring all-reduce: Workers hosts arranged in a
// ring run Phases rounds, each round sending Tensor bytes from every worker i
// to worker (i+1) mod W concurrently, with a barrier between rounds — round
// p+1 starts Gap after the last flow of round p completes. (A W-worker ring
// all-reduce is 2(W−1) such rounds; Phases is explicit so plans can scale the
// round count independently of the ring size.)
type Collective struct {
	Name string

	// Workers places the ring on the default interleaved layout: worker k on
	// host k/2 of DC k%2, so every ring hop crosses the long haul when W is
	// even. Hosts, when non-empty, overrides placement explicitly (Workers
	// must then be 0 or len(Hosts)).
	Workers int
	Hosts   []int

	Tensor int64    // bytes per worker per phase
	Phases int      // barrier-separated rounds
	Start  sim.Time // first phase launch
	Gap    sim.Time // barrier-to-next-phase delay (must be > 0: the next phase is scheduled strictly after the barrier poll that observed completion)
}

// WorkerCount resolves the ring size.
func (c Collective) WorkerCount() int {
	if len(c.Hosts) > 0 {
		return len(c.Hosts)
	}
	return c.Workers
}

// Incast is an open-loop N→1 burst: FanIn senders each push Bytes to Dst at
// the same instant, repeated Waves times every Interval. Senders are the
// lowest-indexed hosts of Dst's own DC (Cross false) or of the opposite DC
// (Cross true), skipping Dst itself.
type Incast struct {
	Name     string
	Dst      int
	FanIn    int
	Bytes    int64
	Start    sim.Time
	Waves    int
	Interval sim.Time
	Cross    bool
}

// Shuffle is an open-loop all-to-all: every ordered worker pair (i, j), i≠j,
// carries one Bytes-sized flow, with sender i's flows starting at
// Start + i·Stagger. Placement follows the collective rules.
type Shuffle struct {
	Name    string
	Workers int
	Hosts   []int
	Bytes   int64
	Start   sim.Time
	Stagger sim.Time
}

// WorkerCount resolves the shuffle width.
func (s Shuffle) WorkerCount() int {
	if len(s.Hosts) > 0 {
		return len(s.Hosts)
	}
	return s.Workers
}

// Tenant is one open-loop Poisson mix sharing the fabric under its own name:
// a workload.Spec with the plan's topology capacities filled in at bind time.
// Flows are tagged with the tenant name and reported per tenant.
type Tenant struct {
	Name      string
	Workload  string // workload.ByName: "websearch" | "hadoop"
	IntraLoad float64
	CrossLoad float64
	Start     sim.Time // arrival-window offset
	Duration  sim.Time // arrival-window length
}

// Profile reshapes the long-haul link into a high-RTT "space DC" haul.
type Profile struct {
	// LongHaul overrides the one-way long-haul propagation delay (0 keeps
	// the topology's). ≈100 ms gives the ≈200 ms RTT of a GEO-relay DC.
	LongHaul sim.Time

	// Jitter adds up to this much uniform random extra delay per long-haul
	// frame (seeded; 0 = none). Jitter only ever lengthens the haul, so the
	// sharded lookahead — bounded by the nominal propagation — stays safe.
	Jitter sim.Time

	// Outages are scripted long-haul blackouts [Start, End).
	Outages []Outage
}

// Outage is one long-haul blackout window.
type Outage struct {
	Start, End sim.Time
}

// names returns every component name in declaration order (collectives,
// incasts, shuffles, tenants).
func (p *Plan) names() []string {
	var out []string
	for _, c := range p.Collectives {
		out = append(out, c.Name)
	}
	for _, i := range p.Incasts {
		out = append(out, i.Name)
	}
	for _, s := range p.Shuffles {
		out = append(out, s.Name)
	}
	for _, t := range p.Tenants {
		out = append(out, t.Name)
	}
	return out
}

// Components returns the plan's component names in declaration order — the
// report ordering for per-tenant statistics.
func (p *Plan) Components() []string { return p.names() }

// checkPlacement validates an explicit-or-default worker placement.
func checkPlacement(what, name string, workers int, hosts []int) error {
	if len(hosts) > 0 {
		if workers != 0 && workers != len(hosts) {
			return fmt.Errorf("scenario: %s %q: workers %d contradicts %d explicit hosts", what, name, workers, len(hosts))
		}
		seen := make(map[int]bool, len(hosts))
		for _, h := range hosts {
			if h < 0 {
				return fmt.Errorf("scenario: %s %q: negative host %d", what, name, h)
			}
			if seen[h] {
				return fmt.Errorf("scenario: %s %q: duplicate host %d", what, name, h)
			}
			seen[h] = true
		}
		workers = len(hosts)
	}
	if workers < 2 {
		return fmt.Errorf("scenario: %s %q: %d workers (need at least 2)", what, name, workers)
	}
	return nil
}

// Validate checks the plan's internal consistency. Host-index bounds are
// topology-dependent and checked by Bind.
func (p *Plan) Validate() error {
	if p.Poll < 0 {
		return fmt.Errorf("scenario: negative poll interval %v", p.Poll)
	}
	names := p.names()
	if len(names) == 0 {
		return fmt.Errorf("scenario: plan has no components")
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if name == "" {
			return fmt.Errorf("scenario: component with empty name")
		}
		if seen[name] {
			return fmt.Errorf("scenario: duplicate component name %q", name)
		}
		seen[name] = true
	}
	for _, c := range p.Collectives {
		if err := checkPlacement("collective", c.Name, c.Workers, c.Hosts); err != nil {
			return err
		}
		if c.Tensor <= 0 {
			return fmt.Errorf("scenario: collective %q: non-positive tensor size %d", c.Name, c.Tensor)
		}
		if c.Phases < 1 {
			return fmt.Errorf("scenario: collective %q: %d phases (need at least 1)", c.Name, c.Phases)
		}
		if c.Start < 0 {
			return fmt.Errorf("scenario: collective %q: negative start %v", c.Name, c.Start)
		}
		if c.Phases > 1 && c.Gap <= 0 {
			return fmt.Errorf("scenario: collective %q: multi-phase ring needs a positive gap (got %v)", c.Name, c.Gap)
		}
		if c.Gap < 0 {
			return fmt.Errorf("scenario: collective %q: negative gap %v", c.Name, c.Gap)
		}
	}
	for _, in := range p.Incasts {
		if in.Dst < 0 {
			return fmt.Errorf("scenario: incast %q: negative destination %d", in.Name, in.Dst)
		}
		if in.FanIn < 1 {
			return fmt.Errorf("scenario: incast %q: fan-in %d (need at least 1)", in.Name, in.FanIn)
		}
		if in.Bytes <= 0 {
			return fmt.Errorf("scenario: incast %q: non-positive size %d", in.Name, in.Bytes)
		}
		if in.Waves < 1 {
			return fmt.Errorf("scenario: incast %q: %d waves (need at least 1)", in.Name, in.Waves)
		}
		if in.Start < 0 || in.Interval < 0 {
			return fmt.Errorf("scenario: incast %q: negative time (start %v, interval %v)", in.Name, in.Start, in.Interval)
		}
		if in.Waves > 1 && in.Interval <= 0 {
			return fmt.Errorf("scenario: incast %q: multi-wave burst needs a positive interval", in.Name)
		}
	}
	for _, s := range p.Shuffles {
		if err := checkPlacement("shuffle", s.Name, s.Workers, s.Hosts); err != nil {
			return err
		}
		if s.Bytes <= 0 {
			return fmt.Errorf("scenario: shuffle %q: non-positive size %d", s.Name, s.Bytes)
		}
		if s.Start < 0 || s.Stagger < 0 {
			return fmt.Errorf("scenario: shuffle %q: negative time (start %v, stagger %v)", s.Name, s.Start, s.Stagger)
		}
	}
	for _, t := range p.Tenants {
		if _, err := workload.ByName(t.Workload); err != nil {
			return fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		for _, l := range []struct {
			what string
			v    float64
		}{{"intra", t.IntraLoad}, {"cross", t.CrossLoad}} {
			if math.IsNaN(l.v) || math.IsInf(l.v, 0) || l.v < 0 {
				return fmt.Errorf("scenario: tenant %q: %s load %v (want a finite fraction >= 0)", t.Name, l.what, l.v)
			}
		}
		if t.Start < 0 {
			return fmt.Errorf("scenario: tenant %q: negative start %v", t.Name, t.Start)
		}
		if t.Duration <= 0 {
			return fmt.Errorf("scenario: tenant %q: non-positive duration %v", t.Name, t.Duration)
		}
	}
	if pr := p.Profile; pr != nil {
		if pr.LongHaul < 0 {
			return fmt.Errorf("scenario: profile: negative long-haul delay %v", pr.LongHaul)
		}
		if pr.Jitter < 0 {
			return fmt.Errorf("scenario: profile: negative jitter %v", pr.Jitter)
		}
		for i, o := range pr.Outages {
			if o.Start < 0 || o.End <= o.Start {
				return fmt.Errorf("scenario: profile outage %d: window [%v, %v) is empty or negative", i, o.Start, o.End)
			}
		}
	}
	return nil
}

// PollInterval resolves the barrier poll interval.
func (p *Plan) PollInterval() sim.Time {
	if p.Poll > 0 {
		return p.Poll
	}
	return DefaultPoll
}

// Horizon is the latest scheduled open-loop instant of the plan: the last
// incast wave, shuffle launch, tenant arrival-window end and collective
// phase-zero start. Closed-loop phases extend past it by transfer and barrier
// time, so run deadlines should add drain headroom on top (mlcc.Run scales
// the headroom by the long-haul delay).
func (p *Plan) Horizon() sim.Time {
	var h sim.Time
	bump := func(t sim.Time) {
		if t > h {
			h = t
		}
	}
	for _, c := range p.Collectives {
		bump(c.Start + sim.Time(c.Phases-1)*c.Gap)
	}
	for _, in := range p.Incasts {
		bump(in.Start + sim.Time(in.Waves-1)*in.Interval)
	}
	for _, s := range p.Shuffles {
		bump(s.Start + sim.Time(s.WorkerCount()-1)*s.Stagger)
	}
	for _, t := range p.Tenants {
		bump(t.Start + t.Duration)
	}
	return h
}

// MaxPhases is the largest collective phase count (0 with no collectives) —
// the factor deadline heuristics multiply the RTT by.
func (p *Plan) MaxPhases() int {
	m := 0
	for _, c := range p.Collectives {
		if c.Phases > m {
			m = c.Phases
		}
	}
	return m
}

// FaultPlan synthesizes the profile's long-haul effects — jitter as a
// Degrade at time zero (rate untouched), each outage as a down/up pair —
// merged after the events of base (nil for none). The plan's seed drives the
// jitter stream when base carries none. A profile-free scenario returns base
// unchanged, so scenarios without a profile perturb nothing.
func (p *Plan) FaultPlan(base *fault.Plan) *fault.Plan {
	pr := p.Profile
	if pr == nil || (pr.Jitter <= 0 && len(pr.Outages) == 0) {
		return base
	}
	fp := &fault.Plan{Seed: p.Seed}
	if base != nil {
		fp.Seed = base.Seed
		fp.Events = append(fp.Events, base.Events...)
		fp.Loss = append(fp.Loss, base.Loss...)
		fp.Feedback = append(fp.Feedback, base.Feedback...)
	}
	if pr.Jitter > 0 {
		fp.Events = append(fp.Events, fault.Event{
			Link: "longhaul", Action: fault.Degrade, Jitter: pr.Jitter,
		})
	}
	for _, o := range pr.Outages {
		fp.Events = append(fp.Events,
			fault.Event{At: o.Start, Link: "longhaul", Action: fault.LinkDown},
			fault.Event{At: o.End, Link: "longhaul", Action: fault.LinkUp},
		)
	}
	return fp
}

// stableHash is FNV-1a over a component name — the per-tenant sub-seed salt
// (same construction the fault layer uses for per-link PRNG streams).
func stableHash(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return int64(h)
}

// SubSeed is the seed tenant name draws its Poisson processes from.
func (p *Plan) SubSeed(name string) int64 { return p.Seed ^ stableHash(name) }

// Kinds lists the canonical scenario kinds of the acceptance matrix, in
// report order.
func Kinds() []string { return []string{"collective", "incast", "tenants", "spacedc"} }

// CanonicalPlan builds the pinned acceptance scenario of the given kind,
// sized for a topology with hosts hosts (even, ≥ 8 recommended). These are
// the plans the "scenario" figure and the shard-digest gates run.
func CanonicalPlan(kind string, hosts int, seed int64) (*Plan, error) {
	if hosts < 4 || hosts%2 != 0 {
		return nil, fmt.Errorf("scenario: canonical plans need an even host count >= 4 (got %d)", hosts)
	}
	workers := hosts
	if workers > 8 {
		workers = 8
	}
	fanIn := hosts/2 - 1
	if fanIn > 4 {
		fanIn = 4
	}
	switch kind {
	case "collective":
		return &Plan{
			Seed: seed,
			Name: "collective",
			Collectives: []Collective{
				{Name: "ring", Workers: workers, Tensor: 64 << 10, Phases: 4, Gap: 5 * sim.Microsecond},
			},
			Tenants: []Tenant{
				{Name: "bg", Workload: "websearch", IntraLoad: 0.1, Duration: 2 * sim.Millisecond},
			},
		}, nil
	case "incast":
		return &Plan{
			Seed: seed,
			Name: "incast",
			Incasts: []Incast{
				{Name: "burst", Dst: 0, FanIn: fanIn, Bytes: 64 << 10, Waves: 2, Interval: 500 * sim.Microsecond},
				{Name: "far-burst", Dst: 0, FanIn: fanIn, Bytes: 64 << 10, Start: 200 * sim.Microsecond, Waves: 1, Cross: true},
			},
			Shuffles: []Shuffle{
				{Name: "shuffle", Workers: workers, Bytes: 32 << 10, Start: sim.Millisecond, Stagger: 10 * sim.Microsecond},
			},
		}, nil
	case "tenants":
		return &Plan{
			Seed: seed,
			Name: "tenants",
			Tenants: []Tenant{
				{Name: "web", Workload: "websearch", IntraLoad: 0.3, CrossLoad: 0.1, Duration: 2 * sim.Millisecond},
				{Name: "batch", Workload: "hadoop", IntraLoad: 0.15, CrossLoad: 0.05, Duration: 2 * sim.Millisecond},
			},
		}, nil
	case "spacedc":
		return &Plan{
			Seed: seed,
			Name: "spacedc",
			Poll: sim.Millisecond,
			Collectives: []Collective{
				{Name: "relay-ring", Workers: 4, Tensor: 32 << 10, Phases: 2, Gap: 10 * sim.Microsecond},
			},
			Tenants: []Tenant{
				{Name: "bulk", Workload: "websearch", CrossLoad: 0.1, Duration: 5 * sim.Millisecond},
			},
			Profile: &Profile{
				LongHaul: 100 * sim.Millisecond,
				Jitter:   150 * sim.Microsecond,
				Outages:  []Outage{{Start: 120 * sim.Millisecond, End: 123 * sim.Millisecond}},
			},
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown canonical kind %q (have %v)", kind, Kinds())
	}
}
