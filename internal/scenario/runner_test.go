package scenario

import (
	"testing"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

// smallParams is the 8-host two-DC build (2 spines, 2 leaves, 2 hosts/leaf
// per DC) the scenario tests run on.
func smallParams(alg string, seed int64, shards int) topo.Params {
	p := topo.DefaultParams()
	p.SpinesPerDC = 2
	p.LeavesPerDC = 2
	p.HostsPerLeaf = 2
	p.Seed = seed
	p.Shards = shards
	return p.WithAlgorithm(alg)
}

// runDigest folds the per-flow outcomes and collective statuses into one
// hash — the equality probe for shard invariance.
func runDigest(n *topo.Network, r *Runner) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	mix(n.Fired())
	mix(uint64(n.Now()))
	mix(uint64(n.Table.Len()))
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		mix(uint64(f.Info.ID))
		bits := uint64(0)
		if f.Done {
			bits |= 1
		}
		if f.Aborted {
			bits |= 2
		}
		mix(bits)
		mix(uint64(f.FinishAt))
		mix(uint64(f.RxBytes))
	}
	for _, st := range r.Statuses() {
		mix(uint64(st.PhasesDone))
		bits := uint64(0)
		if st.Failed {
			bits |= 1
		}
		if st.Finished {
			bits |= 2
		}
		mix(bits)
		mix(uint64(st.FinishedAt))
	}
	return h
}

func TestBindExpandsOpenLoop(t *testing.T) {
	n := topo.TwoDC(smallParams("mlcc", 1, 0))
	p := &Plan{
		Seed: 1,
		Incasts: []Incast{
			{Name: "near", Dst: 0, FanIn: 3, Bytes: 4096, Waves: 2, Interval: 100 * sim.Microsecond},
			{Name: "far", Dst: 0, FanIn: 4, Bytes: 4096, Waves: 1, Cross: true},
		},
		Shuffles: []Shuffle{
			{Name: "shuffle", Workers: 4, Bytes: 2048, Start: sim.Millisecond, Stagger: 10 * sim.Microsecond},
		},
		Tenants: []Tenant{
			{Name: "web", Workload: "websearch", IntraLoad: 0.3, Duration: sim.Millisecond},
		},
	}
	r, err := Bind(p, n)
	if err != nil {
		t.Fatal(err)
	}
	flows := r.OpenLoop()
	if n.Table.Len() != len(flows) {
		t.Fatalf("registered %d flows, OpenLoop reports %d", n.Table.Len(), len(flows))
	}
	counts := map[string]int{}
	for _, fs := range flows {
		counts[fs.Tag]++
	}
	// near: 3 senders × 2 waves; far: 4 senders × 1; shuffle: 4×3 pairs.
	if counts["near"] != 6 || counts["far"] != 4 || counts["shuffle"] != 12 {
		t.Errorf("component counts %v", counts)
	}
	if counts["web"] == 0 {
		t.Error("tenant generated no flows")
	}
	for _, fs := range flows {
		switch fs.Tag {
		case "near":
			// Same-DC senders skipping dst 0: hosts 1..3.
			if fs.Src < 1 || fs.Src > 3 || fs.Dst != 0 || fs.Cross {
				t.Errorf("near flow %+v", fs)
			}
		case "far":
			// Opposite-DC senders: hosts 4..7.
			if fs.Src < 4 || fs.Src > 7 || fs.Dst != 0 || !fs.Cross {
				t.Errorf("far flow %+v", fs)
			}
		}
	}
	// Canonical merge order and tags visible through Tag().
	for i := 1; i < len(flows); i++ {
		a, b := flows[i-1], flows[i]
		if a.Start > b.Start {
			t.Fatalf("open-loop schedule out of order at %d: %v > %v", i, a.Start, b.Start)
		}
	}
	for id := 1; id <= n.Table.Len(); id++ {
		if r.Tag(pkt.FlowID(id)) == "" {
			t.Fatalf("flow %d has no tag", id)
		}
	}
	if r.Tag(pkt.FlowID(10_000)) != "" {
		t.Error("unknown flow tagged")
	}
	if !r.Settled() {
		t.Error("plan without collectives must start settled")
	}
}

func TestBindRejectsOutOfRange(t *testing.T) {
	cases := map[string]*Plan{
		"too many workers": {Collectives: []Collective{{Name: "c", Workers: 10, Tensor: 1, Phases: 1}}},
		"explicit host":    {Shuffles: []Shuffle{{Name: "s", Hosts: []int{0, 99}, Bytes: 1}}},
		"incast dst":       {Incasts: []Incast{{Name: "i", Dst: 99, FanIn: 1, Bytes: 1, Waves: 1}}},
		"incast fan-in":    {Incasts: []Incast{{Name: "i", Dst: 0, FanIn: 4, Bytes: 1, Waves: 1}}},
		"invalid plan":     {},
	}
	for name, p := range cases {
		n := topo.TwoDC(smallParams("mlcc", 1, 0))
		if _, err := Bind(p, n); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCollectiveCompletes drives a two-phase ring to completion: every phase
// must run to its barrier, phases must not overlap, and the flow table must
// hold exactly workers×phases tensor flows, all tagged and done.
func TestCollectiveCompletes(t *testing.T) {
	n := topo.TwoDC(smallParams("mlcc", 1, 0))
	p := &Plan{
		Seed: 1,
		Collectives: []Collective{
			{Name: "ring", Workers: 4, Tensor: 64 << 10, Phases: 2, Gap: 5 * sim.Microsecond},
		},
	}
	r, err := Bind(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if n.Table.Len() != 4 {
		t.Fatalf("phase 0 registered %d flows, want 4", n.Table.Len())
	}
	n.Run(100 * sim.Millisecond)
	if !r.Settled() {
		t.Fatal("collective did not settle")
	}
	sts := r.Statuses()
	if len(sts) != 1 {
		t.Fatalf("statuses: %+v", sts)
	}
	st := sts[0]
	if st.Failed || !st.Finished || st.PhasesDone != 2 || st.FinishedAt <= 0 {
		t.Fatalf("status %+v", st)
	}
	if n.Table.Len() != 8 {
		t.Fatalf("table holds %d flows, want 4 workers × 2 phases", n.Table.Len())
	}
	var phase0End, phase1Start sim.Time
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		if !f.Done || f.Aborted {
			t.Fatalf("flow %d not completed: %+v", id, f)
		}
		if r.Tag(f.Info.ID) != "ring" {
			t.Fatalf("flow %d tag %q", id, r.Tag(f.Info.ID))
		}
		if id <= 4 {
			if f.FinishAt > phase0End {
				phase0End = f.FinishAt
			}
		} else if phase1Start == 0 || f.Start < phase1Start {
			phase1Start = f.Start
		}
	}
	// The barrier property: no phase-1 flow starts before the last phase-0
	// completion (the poll grid then adds up to one interval plus the gap).
	if phase1Start < phase0End {
		t.Errorf("phase 1 started at %v before phase 0 finished at %v", phase1Start, phase0End)
	}
	if slack := phase1Start - phase0End; slack > p.PollInterval()+p.Collectives[0].Gap {
		t.Errorf("barrier slack %v exceeds poll %v + gap %v", slack, p.PollInterval(), p.Collectives[0].Gap)
	}
}

// TestCollectiveShardInvariant is the tentpole's core invariant at package
// level: the closed-loop schedule must be byte-identical between shards=1
// and shards=2, with clean audit books on both.
func TestCollectiveShardInvariant(t *testing.T) {
	run := func(shards int) uint64 {
		params := smallParams("mlcc", 1, shards)
		params.Audit = audit.New()
		n := topo.TwoDC(params)
		plan, err := CanonicalPlan("collective", n.NumHosts(), 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Bind(plan, n)
		if err != nil {
			t.Fatal(err)
		}
		n.Run(100 * sim.Millisecond)
		if !r.Settled() {
			t.Fatalf("shards=%d: collective did not settle: %+v", shards, r.Statuses())
		}
		if probs := n.AuditProblems(); len(probs) != 0 {
			t.Fatalf("shards=%d: audit problems: %v", shards, probs)
		}
		return runDigest(n, r)
	}
	d1 := run(1)
	d2 := run(2)
	if d1 != d2 {
		t.Fatalf("digest shards=1 %#016x != shards=2 %#016x", d1, d2)
	}
}

// TestCollectiveAbortFailsRing cuts the long haul under a cross-DC ring with
// a tight retransmission budget: the tensor flows abort, the collective must
// mark itself failed without launching another phase, and a same-fabric
// intra-DC tenant must ride through with its own books intact (the abort
// isolation half of the multi-tenant story, end to end).
func TestCollectiveAbortFailsRing(t *testing.T) {
	params := smallParams("mlcc", 1, 0)
	params.LongHaulDelay = 200 * sim.Microsecond
	params.MaxRetrans = 1
	params.RTOMax = 2 * sim.Millisecond
	params.Fault = &fault.Plan{Events: []fault.Event{
		{At: 100 * sim.Microsecond, Link: "longhaul", Action: fault.LinkDown},
		{At: 60 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
	}}
	n := topo.TwoDC(params)
	p := &Plan{
		Seed: 1,
		Collectives: []Collective{
			// Workers 0 and 4: both ring hops cross the severed haul.
			{Name: "ring", Workers: 2, Tensor: 256 << 10, Phases: 2, Gap: 5 * sim.Microsecond},
		},
		Tenants: []Tenant{
			{Name: "web", Workload: "websearch", IntraLoad: 0.2, Duration: 2 * sim.Millisecond},
		},
	}
	r, err := Bind(p, n)
	if err != nil {
		t.Fatal(err)
	}
	open := len(r.OpenLoop())
	if open == 0 {
		t.Fatal("tenant generated no flows")
	}
	n.Run(80 * sim.Millisecond)
	if !r.Settled() {
		t.Fatal("failed collective did not settle")
	}
	st := r.Statuses()[0]
	if !st.Failed || st.Finished || st.PhasesDone != 0 {
		t.Fatalf("status %+v, want failed at phase 0", st)
	}
	if n.Table.Len() != open+2 {
		t.Fatalf("table holds %d flows, want %d open-loop + 2 ring (no phase past the failure)", n.Table.Len(), open+2)
	}

	// Per-tenant isolation under the blackout, through the real pipeline.
	ts := stats.NewTenantSet()
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		if f.Done || f.Aborted {
			ts.Add(r.Tag(f.Info.ID), stats.FCTSample{
				Size: f.Info.Size, FCT: f.FCT(), Cross: f.Info.CrossDC,
				Start: f.Start, Aborted: f.Aborted,
			})
		}
	}
	if got := ts.Aborted("ring"); got != 2 {
		t.Errorf("ring aborts = %d, want 2", got)
	}
	if got := ts.Aborted("web"); got != 0 {
		t.Errorf("tenant aborts = %d, want 0 (intra-DC traffic must ride through)", got)
	}
	if ts.Completed("web") == 0 {
		t.Error("tenant completed nothing")
	}
	if b := ts.CompletedBytes("ring"); b != 0 {
		t.Errorf("failed ring credited %d completed bytes", b)
	}
}

// TestTenantSubSeedIndependence: regenerating one tenant with a different
// neighbor set must not change its flows — each tenant draws from its own
// sub-seed stream.
func TestTenantSubSeedIndependence(t *testing.T) {
	gen := func(tenants []Tenant) []int64 {
		n := topo.TwoDC(smallParams("mlcc", 1, 0))
		p := &Plan{Seed: 5, Tenants: tenants}
		r, err := Bind(p, n)
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int64
		for _, fs := range r.OpenLoop() {
			if fs.Tag == "web" {
				sizes = append(sizes, fs.Size)
			}
		}
		return sizes
	}
	web := Tenant{Name: "web", Workload: "websearch", IntraLoad: 0.3, Duration: sim.Millisecond}
	batch := Tenant{Name: "batch", Workload: "hadoop", IntraLoad: 0.2, Duration: sim.Millisecond}
	solo := gen([]Tenant{web})
	mixed := gen([]Tenant{batch, web})
	if len(solo) == 0 || len(solo) != len(mixed) {
		t.Fatalf("web flows: solo %d, mixed %d", len(solo), len(mixed))
	}
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("web flow %d changed when batch joined: %d vs %d", i, solo[i], mixed[i])
		}
	}
}
