// Package audit is an opt-in end-to-end conservation ledger for one
// simulation. Attached at build time (topo.Params.Audit), it shadows the
// packet plane from the outside: hosts report every data frame they inject
// and deliver per flow, switches report WRED admission drops, and ports
// report frames the fault layer destroys. At run end the ledger asserts that
// every injected byte is accounted for —
//
//	injected = delivered + WRED drops + corruption drops + admin-down drops
//	           (+ in-flight, which must be zero once the packet pool drains)
//
// — per flow, and that per link direction every frame the transmitter
// counted was received by the peer, destroyed by the fault layer, or is
// still on the wire. Go-back-N sanity rides along: the sender's cumulative
// acked prefix must advance monotonically, never past the receiver's
// contiguous prefix, and never past the flow size.
//
// The ledger is strictly passive: it schedules no events, draws no
// randomness and never touches a packet, so an audited run is bit-identical
// to an unaudited one (TestDigestAuditInvariant in internal/exp pins this).
// A nil *Ledger is the off state — every hook is nil-safe and costs one
// branch, mirroring the telemetry layer's zero-overhead-off contract.
//
// Violations detected mid-run (impossible sequence numbers, acked bytes
// that were never delivered) route through metrics.Violation, which replays
// the flight recorder's last packet-lifecycle events before panicking;
// end-of-run accounting gaps surface the same way via MustCheck, or as
// strings via Problems for tests. See DESIGN.md, "Correctness audit".
package audit

import (
	"fmt"
	"sort"
	"strings"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
)

// FlowRec is the ledger's account of one flow. All counters are in the
// packet/byte pair form (pkts, bytes); retransmissions inflate Injected and
// show up again as duplicates in Delivered, so conservation holds per frame,
// not per distinct payload byte.
type FlowRec struct {
	ID   pkt.FlowID
	Size int64 // flow size in payload bytes (0 until OnFlowStart)

	Started bool
	Done    bool // receiver saw the full contiguous payload
	Aborted bool // sender gave up after its retransmission budget

	InjectedPkts   int64 // data frames emitted by the sender (incl. retransmits)
	InjectedBytes  int64
	DeliveredPkts  int64 // data frames that reached the receiving host
	DeliveredBytes int64
	WREDPkts       int64 // dropped at switch shared-buffer admission
	WREDBytes      int64
	CorruptPkts    int64 // destroyed by Bernoulli corruption on a link
	CorruptBytes   int64
	DownPkts       int64 // destroyed by an admin-down link (flush or discard)
	DownBytes      int64

	DupPkts int64 // delivered frames at or below the receiver's prefix
	GapPkts int64 // delivered frames beyond the receiver's prefix (reordering/loss)

	AckedMax   int64 // sender's cumulative acked prefix (monotone)
	RecvPrefix int64 // ledger's replica of the receiver's contiguous prefix
	injectEnd  int64 // highest payload byte offset ever injected (seq+size)

	// AbortUnacked is the payload still unacknowledged when the sender gave
	// up — the "in-flight at abort" fate bucket. Frames of an aborted flow
	// still on the wire keep flowing to a normal fate (delivered as
	// duplicates, or dropped); this records what the abort stranded.
	AbortUnacked int64
}

// unaccounted returns the flow's in-flight frame and byte counts: injected
// minus every terminal fate. Negative values are impossible (a frame cannot
// terminate twice) and always a violation.
func (r *FlowRec) unaccounted() (pkts, bytes int64) {
	pkts = r.InjectedPkts - r.DeliveredPkts - r.WREDPkts - r.CorruptPkts - r.DownPkts
	bytes = r.InjectedBytes - r.DeliveredBytes - r.WREDBytes - r.CorruptBytes - r.DownBytes
	return pkts, bytes
}

// linkRec is one registered full-duplex link (two ports).
type linkRec struct {
	name string
	a, b *link.Port
}

// Ledger is the conservation ledger. The zero value is not usable; call New.
// A nil *Ledger is valid everywhere and records nothing.
type Ledger struct {
	fr    *metrics.FlightRecorder
	flows map[pkt.FlowID]*FlowRec
	order []pkt.FlowID // creation order, for deterministic reports
	links []linkRec

	// ControlFaultDrops counts control/PFC frames (no flow attribution)
	// destroyed by the fault layer; they appear in per-link accounting via
	// Port.FaultDrops.
	ControlFaultDrops int64

	// FeedbackDrops counts feedback frames (ACK/CNP/Switch-INT) the fault
	// layer destroyed at a host's feedback ingress. These frames were
	// already counted as received by the NIC port, so neither per-link nor
	// per-flow data conservation is affected; the ledger carries the total
	// so a feedback-faulted run's books still name every destroyed control
	// frame.
	FeedbackDrops int64

	// partial marks a shard-local ledger in a sharded run: it sees only the
	// hooks fired on its own shard, so for a cross-DC flow the sender-side
	// counters (injections, acks) and receiver-side counters (deliveries,
	// prefix) live in different ledgers. The two mid-run checks that compare
	// across that split — "delivered but never injected" and "acked beyond
	// the receiver prefix" — are deferred to the merged ledger, where both
	// sides are present. Everything single-sided still checks mid-run.
	partial bool
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{flows: make(map[pkt.FlowID]*FlowRec)}
}

// Enabled reports whether the ledger is recording (i.e. non-nil).
func (l *Ledger) Enabled() bool { return l != nil }

// SetRecorder attaches a flight recorder so violations dump packet-lifecycle
// context (nil detaches).
func (l *Ledger) SetRecorder(fr *metrics.FlightRecorder) {
	if l == nil {
		return
	}
	l.fr = fr
}

// SetPartial marks the ledger shard-local: cross-side mid-run checks are
// skipped (see the partial field). End-of-run accounting must go through
// Merged — Problems on a partial ledger would report one-sided books as
// violations.
func (l *Ledger) SetPartial(partial bool) {
	if l == nil {
		return
	}
	l.partial = partial
}

// Merged combines shard-local ledgers into one ledger with closed books: the
// per-flow sender-side and receiver-side halves recombine, so the full check
// suite (Problems, MustCheck, Summary) applies to the whole run. Fate
// counters sum; lifecycle flags OR; the prefix fields (Size, AckedMax,
// RecvPrefix, injectEnd) take the maximum, since each is advanced by exactly
// one side and stays zero in the other shard's record. Links and the fault
// counters are owned by whichever part registered them, so concatenation and
// summation keep every frame counted exactly once. Flow order is parts-major
// creation order, which is deterministic because the shard merge order is.
func Merged(parts ...*Ledger) *Ledger {
	m := New()
	for _, p := range parts {
		if p == nil {
			continue
		}
		if m.fr == nil {
			m.fr = p.fr
		}
		m.ControlFaultDrops += p.ControlFaultDrops
		m.FeedbackDrops += p.FeedbackDrops
		m.links = append(m.links, p.links...)
		for _, id := range p.order {
			r := p.flows[id]
			t := m.rec(id)
			t.Started = t.Started || r.Started
			t.Done = t.Done || r.Done
			t.Aborted = t.Aborted || r.Aborted
			if r.Size > t.Size {
				t.Size = r.Size
			}
			t.InjectedPkts += r.InjectedPkts
			t.InjectedBytes += r.InjectedBytes
			t.DeliveredPkts += r.DeliveredPkts
			t.DeliveredBytes += r.DeliveredBytes
			t.WREDPkts += r.WREDPkts
			t.WREDBytes += r.WREDBytes
			t.CorruptPkts += r.CorruptPkts
			t.CorruptBytes += r.CorruptBytes
			t.DownPkts += r.DownPkts
			t.DownBytes += r.DownBytes
			t.DupPkts += r.DupPkts
			t.GapPkts += r.GapPkts
			if r.AckedMax > t.AckedMax {
				t.AckedMax = r.AckedMax
			}
			if r.RecvPrefix > t.RecvPrefix {
				t.RecvPrefix = r.RecvPrefix
			}
			if r.injectEnd > t.injectEnd {
				t.injectEnd = r.injectEnd
			}
			t.AbortUnacked += r.AbortUnacked
		}
	}
	return m
}

// rec returns (creating if needed) the record for a flow.
func (l *Ledger) rec(id pkt.FlowID) *FlowRec {
	r := l.flows[id]
	if r == nil {
		r = &FlowRec{ID: id}
		l.flows[id] = r
		l.order = append(l.order, id)
	}
	return r
}

// violatef reports a mid-run invariant violation: flight-recorder dump, then
// panic. The audit plane never limps past an impossible state.
func (l *Ledger) violatef(format string, args ...any) {
	metrics.Violation(l.fr, "audit: "+fmt.Sprintf(format, args...))
}

// OnFlowStart records a flow's registration at its sender.
func (l *Ledger) OnFlowStart(id pkt.FlowID, size int64) {
	if l == nil {
		return
	}
	r := l.rec(id)
	if r.Started {
		l.violatef("flow %d started twice", id)
	}
	r.Started = true
	r.Size = size
}

// OnInject records one data frame entering the network at its sender (first
// transmission or go-back-N retransmission alike).
func (l *Ledger) OnInject(id pkt.FlowID, seq int64, size int) {
	if l == nil {
		return
	}
	r := l.rec(id)
	if seq < 0 || size <= 0 {
		l.violatef("flow %d injected frame [%d, %d)", id, seq, seq+int64(size))
	}
	if r.Size > 0 && seq+int64(size) > r.Size {
		l.violatef("flow %d injected payload [%d, %d) beyond size %d", id, seq, seq+int64(size), r.Size)
	}
	r.InjectedPkts++
	r.InjectedBytes += int64(size)
	if end := seq + int64(size); end > r.injectEnd {
		r.injectEnd = end
	}
}

// OnDeliver records one data frame arriving at the receiving host. The
// ledger maintains its own contiguous-prefix replica of the receiver's
// go-back-N state, advanced exactly the way the host advances it.
func (l *Ledger) OnDeliver(id pkt.FlowID, seq int64, size int) {
	if l == nil {
		return
	}
	r := l.rec(id)
	r.DeliveredPkts++
	r.DeliveredBytes += int64(size)
	if !l.partial && seq > r.injectEnd-int64(size) {
		l.violatef("flow %d delivered frame [%d, %d) that was never injected", id, seq, seq+int64(size))
	}
	switch {
	case seq == r.RecvPrefix:
		r.RecvPrefix += int64(size)
	case seq > r.RecvPrefix:
		r.GapPkts++
	default:
		r.DupPkts++
	}
	if r.Size > 0 && r.RecvPrefix > r.Size {
		l.violatef("flow %d receiver prefix %d beyond size %d", id, r.RecvPrefix, r.Size)
	}
}

// OnAckAdvance records the sender's cumulative acked prefix moving from
// `from` to `to`. The go-back-N invariants live here: the prefix only moves
// forward, in agreement with the ledger's own view, never past what the
// receiver has contiguously received, and never past the flow size.
func (l *Ledger) OnAckAdvance(id pkt.FlowID, from, to int64) {
	if l == nil {
		return
	}
	r := l.rec(id)
	if from != r.AckedMax {
		l.violatef("flow %d acked prefix desync: sender at %d, ledger at %d", id, from, r.AckedMax)
	}
	if to <= from {
		l.violatef("flow %d acked prefix moved backward: %d -> %d", id, from, to)
	}
	if r.Size > 0 && to > r.Size {
		l.violatef("flow %d acked %d bytes beyond size %d", id, to, r.Size)
	}
	if !l.partial && to > r.RecvPrefix {
		l.violatef("flow %d acked %d bytes but receiver prefix is %d", id, to, r.RecvPrefix)
	}
	r.AckedMax = to
}

// OnFlowDone records the receiver seeing the flow's last in-order byte.
func (l *Ledger) OnFlowDone(id pkt.FlowID) {
	if l == nil {
		return
	}
	r := l.rec(id)
	if r.Done {
		l.violatef("flow %d done twice", id)
	}
	r.Done = true
	if r.Size > 0 && r.RecvPrefix != r.Size {
		l.violatef("flow %d done with receiver prefix %d != size %d", id, r.RecvPrefix, r.Size)
	}
}

// OnFlowAbort records the sender giving up on a flow.
func (l *Ledger) OnFlowAbort(id pkt.FlowID) {
	if l == nil {
		return
	}
	r := l.rec(id)
	if r.Aborted {
		l.violatef("flow %d aborted twice", id)
	}
	r.Aborted = true
	r.AbortUnacked = r.Size - r.AckedMax
}

// OnWREDDrop records a data frame dropped at switch shared-buffer admission.
func (l *Ledger) OnWREDDrop(id pkt.FlowID, size int) {
	if l == nil {
		return
	}
	r := l.rec(id)
	r.WREDPkts++
	r.WREDBytes += int64(size)
}

// OnFaultDrop records a frame destroyed by the fault layer on a port:
// corrupt distinguishes Bernoulli corruption from admin-down discards
// (in-flight cut at arrival, mid-serialization cut, offered-while-down).
// Control and PFC frames carry no flow and land in ControlFaultDrops.
func (l *Ledger) OnFaultDrop(p *pkt.Packet, corrupt bool) {
	if l == nil {
		return
	}
	if p.Kind != pkt.Data {
		l.ControlFaultDrops++
		return
	}
	r := l.rec(p.Flow)
	if corrupt {
		r.CorruptPkts++
		r.CorruptBytes += int64(p.Size)
	} else {
		r.DownPkts++
		r.DownBytes += int64(p.Size)
	}
}

// OnFeedbackDrop records a feedback frame destroyed by a feedback-plane
// fault rule at a host's ingress (post port-Rx, pre consumer).
func (l *Ledger) OnFeedbackDrop(p *pkt.Packet) {
	if l == nil {
		return
	}
	l.FeedbackDrops++
}

// AddLink registers a full-duplex link for per-link frame conservation.
// Both directions are checked: everything a transmitter counted must be at
// the peer, destroyed by the fault layer, on the wire, or mid-serialization.
func (l *Ledger) AddLink(name string, a, b *link.Port) {
	if l == nil || a == nil || b == nil {
		return
	}
	l.links = append(l.links, linkRec{name: name, a: a, b: b})
}

// Flow returns the ledger's record for a flow, or nil (for tests and
// diagnostics).
func (l *Ledger) Flow(id pkt.FlowID) *FlowRec {
	if l == nil {
		return nil
	}
	return l.flows[id]
}

// Flows returns every record in creation order.
func (l *Ledger) Flows() []*FlowRec {
	if l == nil {
		return nil
	}
	out := make([]*FlowRec, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.flows[id])
	}
	return out
}

// dirProblem checks one transmit direction of a link; empty means clean.
// The equation holds at any instant, drained or not: TxPackets counts
// frames whose serialization began, MacTx counts MAC-injected PFC frames
// (which bypass TxPackets), and every such frame is exactly one of —
// received by the peer, destroyed by the fault layer at this transmitter,
// destroyed at the peer because the wire was cut mid-flight (the peer's
// CutDrops), in flight on the wire, or still mid-serialization.
func dirProblem(name string, tx, rx *link.Port) string {
	busy := int64(0)
	if tx.Busy() {
		busy = 1
	}
	sent := tx.TxPackets + tx.MacTx
	accounted := rx.RxPackets + tx.FaultDrops + rx.CutDrops + int64(tx.InFlightFrames()) + busy
	if sent != accounted {
		return fmt.Sprintf("link %s: tx %d + mac %d != rx %d + faultDrops %d + cutDrops %d + inFlight %d + busy %d (missing %d)",
			name, tx.TxPackets, tx.MacTx, rx.RxPackets, tx.FaultDrops, rx.CutDrops, tx.InFlightFrames(), busy, sent-accounted)
	}
	return ""
}

// Problems runs every end-of-run check and returns human-readable
// descriptions of the violations found (nil when the ledger is clean or
// detached). drained tells the ledger the packet pool has fully drained
// (pkt.Pool.Outstanding() == 0): only then may it insist that per-flow
// in-flight counts are zero — at an arbitrary deadline cut, frames parked
// in queues or on the wire are legitimate.
func (l *Ledger) Problems(drained bool) []string {
	if l == nil {
		return nil
	}
	var probs []string
	addf := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	ids := append([]pkt.FlowID(nil), l.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := l.flows[id]
		pkts, bytes := r.unaccounted()
		if pkts < 0 || bytes < 0 {
			addf("flow %d: over-accounted (in-flight %d pkts / %d bytes is negative: a frame terminated twice)", id, pkts, bytes)
		}
		if drained && (pkts != 0 || bytes != 0) {
			addf("flow %d: %d pkts / %d bytes injected but never delivered or dropped (pool is drained)", id, pkts, bytes)
		}
		if r.Done && r.Size > 0 && r.RecvPrefix != r.Size {
			addf("flow %d: done but receiver prefix %d != size %d", id, r.RecvPrefix, r.Size)
		}
		if r.AckedMax > r.RecvPrefix {
			addf("flow %d: acked prefix %d beyond receiver prefix %d", id, r.AckedMax, r.RecvPrefix)
		}
		if r.Size > 0 && r.injectEnd > r.Size {
			addf("flow %d: injected through byte %d beyond size %d", id, r.injectEnd, r.Size)
		}
		if r.Started && !r.Done && !r.Aborted && r.AckedMax > 0 && r.AckedMax == r.Size && r.Size > 0 {
			// Fully acked flows are finished at the sender; the receiver must
			// have seen them complete too (Done is receiver-side).
			addf("flow %d: fully acked but never marked done", id)
		}
	}
	for _, lk := range l.links {
		if p := dirProblem(lk.name+" ->", lk.a, lk.b); p != "" {
			probs = append(probs, p)
		}
		if p := dirProblem(lk.name+" <-", lk.b, lk.a); p != "" {
			probs = append(probs, p)
		}
	}
	return probs
}

// MustCheck runs Problems and routes any violation through
// metrics.Violation: the flight recorder's last events are replayed (when
// attached) and the simulation panics with the full problem list.
func (l *Ledger) MustCheck(drained bool) {
	if l == nil {
		return
	}
	probs := l.Problems(drained)
	if len(probs) == 0 {
		return
	}
	metrics.Violation(l.fr, fmt.Sprintf("audit: %d conservation violations:\n  %s",
		len(probs), strings.Join(probs, "\n  ")))
}

// Summary renders the ledger's aggregate fate accounting on one line.
func (l *Ledger) Summary() string {
	if l == nil {
		return "audit: off"
	}
	var t FlowRec
	done, aborted := 0, 0
	var abortUnacked int64
	for _, r := range l.flows {
		if r.Done {
			done++
		}
		if r.Aborted {
			aborted++
			abortUnacked += r.AbortUnacked
		}
		t.InjectedPkts += r.InjectedPkts
		t.InjectedBytes += r.InjectedBytes
		t.DeliveredPkts += r.DeliveredPkts
		t.DeliveredBytes += r.DeliveredBytes
		t.WREDPkts += r.WREDPkts
		t.CorruptPkts += r.CorruptPkts
		t.DownPkts += r.DownPkts
		t.DupPkts += r.DupPkts
		t.GapPkts += r.GapPkts
	}
	return fmt.Sprintf(
		"audit: flows=%d done=%d aborted=%d injected=%d pkts (%d B) delivered=%d wred=%d corrupt=%d admin_down=%d dup=%d gap=%d abort_unacked=%d B ctl_fault_drops=%d fb_drops=%d links=%d",
		len(l.flows), done, aborted, t.InjectedPkts, t.InjectedBytes, t.DeliveredPkts,
		t.WREDPkts, t.CorruptPkts, t.DownPkts, t.DupPkts, t.GapPkts, abortUnacked,
		l.ControlFaultDrops, l.FeedbackDrops, len(l.links))
}
