package audit

import (
	"strings"
	"testing"

	"mlcc/internal/pkt"
)

// wantViolation runs fn and asserts it panics with an audit violation
// containing frag.
func wantViolation(t *testing.T, frag string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected audit violation containing %q, got none", frag)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, frag) {
			t.Fatalf("violation %v does not contain %q", r, frag)
		}
	}()
	fn()
}

func TestCleanFlowDrains(t *testing.T) {
	l := New()
	l.OnFlowStart(1, 3000)
	l.OnInject(1, 0, 1500)
	l.OnInject(1, 1500, 1500)
	l.OnDeliver(1, 0, 1500)
	l.OnAckAdvance(1, 0, 1500)
	l.OnDeliver(1, 1500, 1500)
	l.OnFlowDone(1)
	l.OnAckAdvance(1, 1500, 3000)
	for _, drained := range []bool{false, true} {
		if probs := l.Problems(drained); len(probs) != 0 {
			t.Fatalf("clean flow, drained=%v: %v", drained, probs)
		}
	}
	r := l.Flow(1)
	if r == nil || !r.Done || r.InjectedBytes != 3000 || r.DeliveredBytes != 3000 {
		t.Fatalf("bad record: %+v", r)
	}
	if !strings.Contains(l.Summary(), "flows=1 done=1") {
		t.Fatalf("summary: %s", l.Summary())
	}
}

func TestUnaccountedFrameOnlyWhenDrained(t *testing.T) {
	l := New()
	l.OnFlowStart(1, 3000)
	l.OnInject(1, 0, 1500)
	l.OnInject(1, 1500, 1500)
	l.OnDeliver(1, 0, 1500)
	// One frame is still somewhere: fine at a deadline cut, a violation once
	// the pool reports fully drained.
	if probs := l.Problems(false); len(probs) != 0 {
		t.Fatalf("undrained in-flight flagged: %v", probs)
	}
	probs := l.Problems(true)
	if len(probs) != 1 || !strings.Contains(probs[0], "never delivered or dropped") {
		t.Fatalf("drained leak not flagged: %v", probs)
	}
}

func TestDropsBalanceTheLedger(t *testing.T) {
	l := New()
	pool := pkt.NewPool()
	l.OnFlowStart(1, 4500)
	l.OnInject(1, 0, 1500)
	l.OnInject(1, 1500, 1500)
	l.OnInject(1, 3000, 1500)
	l.OnWREDDrop(1, 1500)
	d := pool.NewData(1, 1, 2, 1500, 1500)
	l.OnFaultDrop(d, true) // corruption
	pool.Put(d)
	d = pool.NewData(1, 1, 2, 3000, 1500)
	l.OnFaultDrop(d, false) // admin-down
	pool.Put(d)
	if probs := l.Problems(true); len(probs) != 0 {
		t.Fatalf("fully dropped flow should balance: %v", probs)
	}
	r := l.Flow(1)
	if r.WREDPkts != 1 || r.CorruptPkts != 1 || r.DownPkts != 1 {
		t.Fatalf("fate buckets: %+v", r)
	}
}

func TestOverAccountingIsAlwaysAViolation(t *testing.T) {
	l := New()
	l.OnFlowStart(1, 1500)
	l.OnInject(1, 0, 1500)
	l.OnWREDDrop(1, 1500)
	l.OnWREDDrop(1, 1500) // the same frame cannot terminate twice
	for _, drained := range []bool{false, true} {
		probs := l.Problems(drained)
		found := false
		for _, p := range probs {
			if strings.Contains(p, "over-accounted") {
				found = true
			}
		}
		if !found {
			t.Fatalf("drained=%v: over-accounting not flagged: %v", drained, probs)
		}
	}
}

func TestControlFaultDropsHaveNoFlow(t *testing.T) {
	l := New()
	pool := pkt.NewPool()
	c := pool.NewControl(pkt.Ack, 7, 1, 2)
	l.OnFaultDrop(c, false)
	pool.Put(c)
	if l.ControlFaultDrops != 1 {
		t.Fatalf("control drops = %d", l.ControlFaultDrops)
	}
	if r := l.Flow(7); r != nil {
		t.Fatalf("control drop created a flow record: %+v", r)
	}
}

func TestAbortRecordsStrandedBytes(t *testing.T) {
	l := New()
	l.OnFlowStart(1, 3000)
	l.OnInject(1, 0, 1500)
	l.OnDeliver(1, 0, 1500)
	l.OnAckAdvance(1, 0, 1500)
	l.OnFlowAbort(1)
	if r := l.Flow(1); !r.Aborted || r.AbortUnacked != 1500 {
		t.Fatalf("abort record: %+v", r)
	}
	if probs := l.Problems(true); len(probs) != 0 {
		t.Fatalf("aborted-but-balanced flow flagged: %v", probs)
	}
}

func TestGoBackNDupAndGapCounting(t *testing.T) {
	l := New()
	l.OnFlowStart(1, 4500)
	l.OnInject(1, 0, 1500)
	l.OnInject(1, 1500, 1500)
	l.OnInject(1, 3000, 1500)
	l.OnDeliver(1, 0, 1500)    // prefix -> 1500
	l.OnDeliver(1, 3000, 1500) // gap (frame 1500 lost then retransmitted)
	l.OnInject(1, 1500, 1500)  // go-back-N retransmission
	l.OnInject(1, 3000, 1500)
	l.OnDeliver(1, 1500, 1500) // prefix -> 3000
	l.OnDeliver(1, 3000, 1500) // prefix -> 4500
	l.OnFlowDone(1)
	r := l.Flow(1)
	if r.GapPkts != 1 || r.DupPkts != 0 || r.RecvPrefix != 4500 {
		t.Fatalf("dup/gap accounting: %+v", r)
	}
	// The first copy of frame 1500 never terminated -> in-flight 1 frame.
	if probs := l.Problems(false); len(probs) != 0 {
		t.Fatalf("undrained: %v", probs)
	}
	l.OnWREDDrop(1, 1500) // its true fate arrives
	if probs := l.Problems(true); len(probs) != 0 {
		t.Fatalf("drained after fate: %v", probs)
	}
}

func TestMidRunViolationsPanic(t *testing.T) {
	t.Run("inject beyond size", func(t *testing.T) {
		l := New()
		l.OnFlowStart(1, 1000)
		wantViolation(t, "beyond size", func() { l.OnInject(1, 0, 1500) })
	})
	t.Run("deliver never injected", func(t *testing.T) {
		l := New()
		l.OnFlowStart(1, 3000)
		wantViolation(t, "never injected", func() { l.OnDeliver(1, 0, 1500) })
	})
	t.Run("ack backward", func(t *testing.T) {
		l := New()
		l.OnFlowStart(1, 3000)
		l.OnInject(1, 0, 1500)
		l.OnDeliver(1, 0, 1500)
		l.OnAckAdvance(1, 0, 1500)
		wantViolation(t, "desync", func() { l.OnAckAdvance(1, 0, 1500) })
	})
	t.Run("ack beyond receiver prefix", func(t *testing.T) {
		l := New()
		l.OnFlowStart(1, 3000)
		l.OnInject(1, 0, 1500)
		wantViolation(t, "receiver prefix", func() { l.OnAckAdvance(1, 0, 1500) })
	})
	t.Run("done twice", func(t *testing.T) {
		l := New()
		l.OnFlowStart(1, 1500)
		l.OnInject(1, 0, 1500)
		l.OnDeliver(1, 0, 1500)
		l.OnFlowDone(1)
		wantViolation(t, "done twice", func() { l.OnFlowDone(1) })
	})
	t.Run("MustCheck", func(t *testing.T) {
		l := New()
		l.OnFlowStart(1, 1500)
		l.OnInject(1, 0, 1500)
		wantViolation(t, "conservation violations", func() { l.MustCheck(true) })
	})
}

func TestNilLedgerIsInert(t *testing.T) {
	var l *Ledger
	pool := pkt.NewPool()
	l.OnFlowStart(1, 100)
	l.OnInject(1, 0, 100)
	l.OnDeliver(1, 0, 100)
	l.OnAckAdvance(1, 0, 100)
	l.OnFlowDone(1)
	l.OnFlowAbort(1)
	l.OnWREDDrop(1, 100)
	p := pool.NewControl(pkt.Ack, 1, 1, 2)
	l.OnFaultDrop(p, false)
	pool.Put(p)
	l.AddLink("x", nil, nil)
	l.SetRecorder(nil)
	l.MustCheck(true)
	if l.Enabled() || l.Problems(true) != nil || l.Flows() != nil || l.Flow(1) != nil {
		t.Fatal("nil ledger not inert")
	}
	if l.Summary() != "audit: off" {
		t.Fatalf("nil summary: %s", l.Summary())
	}
}

// TestPartialShardLedgersMerge models a cross-DC flow in a sharded run: the
// sender's hooks land in one shard-local ledger, the receiver's in another.
// Each partial ledger must tolerate seeing only its half (deliveries it never
// saw injected, acks beyond its zero receiver prefix), and Merged must
// recombine the halves into closed books.
func TestPartialShardLedgersMerge(t *testing.T) {
	sender, receiver := New(), New()
	sender.SetPartial(true)
	receiver.SetPartial(true)

	sender.OnFlowStart(7, 2000)
	sender.OnInject(7, 0, 1000)
	sender.OnInject(7, 1000, 1000)
	// On a full ledger these deliveries would trip the never-injected check.
	receiver.OnDeliver(7, 0, 1000)
	receiver.OnDeliver(7, 1000, 1000)
	receiver.OnFlowDone(7)
	// On a full ledger this ack would trip the receiver-prefix check.
	sender.OnAckAdvance(7, 0, 2000)

	m := Merged(sender, receiver)
	if probs := m.Problems(true); len(probs) != 0 {
		t.Fatalf("merged books dirty: %v", probs)
	}
	r := m.Flow(7)
	if r == nil || !r.Started || !r.Done {
		t.Fatalf("merged flow record incomplete: %+v", r)
	}
	if r.Size != 2000 || r.AckedMax != 2000 || r.RecvPrefix != 2000 {
		t.Fatalf("merged prefixes wrong: size=%d acked=%d recv=%d", r.Size, r.AckedMax, r.RecvPrefix)
	}
	if r.InjectedPkts != 2 || r.DeliveredPkts != 2 {
		t.Fatalf("merged counters wrong: injected=%d delivered=%d", r.InjectedPkts, r.DeliveredPkts)
	}

	// The same one-sided books on a single partial ledger must NOT balance:
	// partial mode defers, it does not forgive.
	if probs := receiver.Problems(true); len(probs) == 0 {
		t.Fatal("one-sided receiver ledger reported clean books")
	}
}

// TestPartialSkipsOnlyCrossSideChecks pins that partial mode still enforces
// every single-sided invariant mid-run.
func TestPartialSkipsOnlyCrossSideChecks(t *testing.T) {
	l := New()
	l.SetPartial(true)
	l.OnFlowStart(1, 1000)
	wantViolation(t, "beyond size", func() { l.OnInject(1, 500, 1000) })

	l2 := New()
	l2.SetPartial(true)
	l2.OnFlowStart(2, 1000)
	l2.OnInject(2, 0, 1000)
	wantViolation(t, "moved backward", func() { l2.OnAckAdvance(2, 0, 0) })
}
