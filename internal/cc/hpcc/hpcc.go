// Package hpcc implements HPCC (Li et al., SIGCOMM 2019): per-ACK INT-driven
// window control targeting η link utilization. The heavy lifting — the
// MeasureInflight estimator and the ComputeWind reference-window state
// machine — lives in internal/cc's UtilEstimator/WindowController, which MLCC
// reuses for its segment-local loops; this package binds them end-to-end.
package hpcc

import (
	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Params holds HPCC knobs; defaults are the paper's recommended values.
type Params struct {
	Eta      float64 // target utilization η
	MaxStage int     // additive-increase stages per MI
}

// DefaultParams returns η=0.95, maxStage=5.
func DefaultParams() Params { return Params{Eta: 0.95, MaxStage: 5} }

// New returns a SenderFactory running HPCC with params p.
func New(p Params) cc.SenderFactory {
	return func(f cc.FlowInfo) cc.Sender {
		return &sender{
			ctl: cc.NewWindowController(f.BaseRTT, f.LinkRate, f.MTU, p.Eta, p.MaxStage),
		}
	}
}

type sender struct {
	ctl   *cc.WindowController
	acked int64
}

// Rate implements cc.Sender: the HPCC window paced over the base RTT.
func (s *sender) Rate() sim.Rate { return s.ctl.Rate() }

// OnAck feeds the ACK's INT stack to the window controller.
func (s *sender) OnAck(now sim.Time, ack *pkt.Packet) {
	if ack.Seq > s.acked {
		s.acked = ack.Seq
	}
	s.ctl.OnFeedback(ack.Hops, s.acked)
}

// OnCNP is a no-op: HPCC ignores ECN.
func (s *sender) OnCNP(now sim.Time) {}

// OnSwitchINT is a no-op for plain HPCC.
func (s *sender) OnSwitchINT(now sim.Time, p *pkt.Packet) {}
