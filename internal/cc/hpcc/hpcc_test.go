package hpcc

import (
	"testing"

	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

func flowInfo() cc.FlowInfo {
	return cc.FlowInfo{
		ID: 1, LinkRate: 25 * sim.Gbps, MTU: 1000,
		BaseRTT: 25 * sim.Microsecond,
	}
}

// ackWithHop builds an ACK carrying a single INT hop.
func ackWithHop(seq int64, h pkt.INTHop) *pkt.Packet {
	return &pkt.Packet{Kind: pkt.Ack, Seq: seq, Hops: []pkt.INTHop{h}}
}

func TestStartsAtLineRate(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	if r := s.Rate(); r < 23*sim.Gbps || r > 25*sim.Gbps {
		t.Fatalf("initial rate = %v", r)
	}
}

func TestBacksOffOnCongestedINT(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	T := 25 * sim.Microsecond
	band := 100 * sim.Gbps
	bdp := sim.BDPBytes(band, T)
	hop := pkt.INTHop{Node: 7, QLen: 2 * bdp, TxBytes: 0, TS: 0, Band: band}
	s.OnAck(0, ackWithHop(0, hop))
	seq := int64(0)
	for i := 1; i <= 100; i++ {
		hop.TS += T / 4
		hop.TxBytes += int64(float64(band) / 8 * (T / 4).Seconds())
		seq += 1000
		s.OnAck(hop.TS, ackWithHop(seq, hop))
	}
	if r := s.Rate(); r > 12*sim.Gbps {
		t.Fatalf("no back-off under U≈3: %v", r)
	}
}

func TestRecoversOnIdleLink(t *testing.T) {
	s := New(DefaultParams())(flowInfo()).(*sender)
	T := 25 * sim.Microsecond
	band := 100 * sim.Gbps
	hop := pkt.INTHop{Node: 7, QLen: 0, TxBytes: 0, TS: 0, Band: band}
	s.OnAck(0, ackWithHop(0, hop))
	seq := int64(0)
	for i := 1; i <= 500; i++ {
		hop.TS += T / 4
		hop.TxBytes += int64(0.05 * float64(band) / 8 * (T / 4).Seconds())
		seq += 1000
		s.OnAck(hop.TS, ackWithHop(seq, hop))
	}
	if r := s.Rate(); r < 15*sim.Gbps {
		t.Fatalf("no recovery on idle link: %v", r)
	}
}

func TestIgnoresCNPAndSwitchINT(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	r := s.Rate()
	s.OnCNP(0)
	s.OnSwitchINT(0, &pkt.Packet{Hops: []pkt.INTHop{{Node: 1}}})
	if s.Rate() != r {
		t.Fatal("HPCC must ignore CNP/SwitchINT")
	}
}

func TestEmptyINTNoop(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	r := s.Rate()
	s.OnAck(0, &pkt.Packet{Kind: pkt.Ack})
	if s.Rate() != r {
		t.Fatal("rate moved without INT")
	}
}
