package cc

import (
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// UtilEstimator implements HPCC's MeasureInflight: an EWMA of the maximum
// per-hop normalized inflight U = qlen/(B·T) + txRate/B over the hops
// reported in successive INT stacks. It is shared by HPCC, by MLCC's
// near-source loop (T = near RTT) and by MLCC's receiver-side credit loop
// (T = intra-DC RTT).
//
// Hops are matched positionally; when the path (hop count or node ids)
// changes, stale state is discarded.
type UtilEstimator struct {
	T        sim.Time // base RTT of the controlled segment
	last     []pkt.INTHop
	u        float64 // smoothed utilization
	init     bool
	rejected int64 // samples discarded by the corruption guards
}

// NewUtilEstimator returns an estimator for a control segment with base RTT t.
func NewUtilEstimator(t sim.Time) *UtilEstimator {
	return &UtilEstimator{T: t}
}

// U returns the current smoothed utilization estimate.
func (e *UtilEstimator) U() float64 { return e.u }

// Rejected reports how many samples the corruption guards discarded.
func (e *UtilEstimator) Rejected() int64 { return e.rejected }

// Reset discards all hop state.
func (e *UtilEstimator) Reset() {
	e.last = e.last[:0]
	e.init = false
	e.u = 0
}

// sameHops reports whether the remembered hop list matches hops by node id.
func (e *UtilEstimator) sameHops(hops []pkt.INTHop) bool {
	if len(e.last) != len(hops) {
		return false
	}
	for i := range hops {
		if e.last[i].Node != hops[i].Node {
			return false
		}
	}
	return true
}

// Update folds a new INT stack into the estimate and returns the smoothed U.
// Returns (u, false) when this sample only primed the estimator or was
// rejected by the corruption guards.
//
// Guards: a structurally invalid stack (ValidINTStack) or one with a
// regressed per-hop TS or TxBytes relative to the remembered baseline is
// rejected WITHOUT overwriting e.last — a corrupted sample folded into the
// baseline would make the NEXT honest sample read wrong (a regressed TS
// yields a huge dt, a regressed TxBytes a huge txRate), which is worse than
// the corrupt sample itself. A stack with no hop advancing in time (an exact
// duplicate, e.g. a reordered copy) likewise leaves both the EWMA and the
// baseline untouched.
func (e *UtilEstimator) Update(hops []pkt.INTHop) (float64, bool) {
	if len(hops) == 0 {
		return e.u, false
	}
	if !ValidINTStack(hops) {
		e.rejected++
		return e.u, false
	}
	if !e.init || !e.sameHops(hops) {
		e.last = append(e.last[:0], hops...)
		e.init = true
		return e.u, false
	}
	for i := range hops {
		cur, prev := &hops[i], &e.last[i]
		if cur.TS < prev.TS || cur.TxBytes < prev.TxBytes {
			e.rejected++
			return e.u, false
		}
	}
	u := 0.0
	tau := e.T
	sawDT := false
	for i := range hops {
		cur, prev := &hops[i], &e.last[i]
		dt := cur.TS - prev.TS
		if dt <= 0 {
			continue
		}
		sawDT = true
		txRate := float64(cur.TxBytes-prev.TxBytes) * 8 / dt.Seconds()
		band := float64(cur.Band)
		qlen := cur.QLen
		if prev.QLen < qlen {
			// HPCC uses min(q(t0), q(t1)) to filter transient bursts.
			qlen = prev.QLen
		}
		ui := float64(qlen)*8/(band*e.T.Seconds()) + txRate/band
		if ui > u {
			u = ui
			tau = dt
		}
	}
	if !sawDT {
		// No hop advanced in time: an exact duplicate carries no new
		// information, so it must not zero the EWMA or touch the baseline.
		return e.u, false
	}
	if tau > e.T {
		tau = e.T
	}
	frac := float64(tau) / float64(e.T)
	e.u = (1-frac)*e.u + frac*u
	e.last = append(e.last[:0], hops...)
	return e.u, true
}

// WindowController implements HPCC's ComputeWind/UpdateWindow state machine
// on top of a UtilEstimator, yielding a pacing rate. It is parameterized so
// MLCC's loops can reuse it with segment-specific RTTs.
type WindowController struct {
	Est      *UtilEstimator
	Eta      float64  // target utilization (HPCC η, default 0.95)
	MaxStage int      // additive-increase stages per MI window
	WAI      float64  // additive increase in bytes per update
	MaxRate  sim.Rate // line rate ceiling

	wc       float64 // reference window (bytes)
	w        float64 // current window (bytes)
	incStage int
	lastSeq  int64 // per-RTT Wc update tracking
}

// NewWindowController builds a controller starting at line rate.
func NewWindowController(t sim.Time, maxRate sim.Rate, mtu int, eta float64, maxStage int) *WindowController {
	bdp := float64(sim.BDPBytes(maxRate, t))
	wai := bdp * (1 - eta) / float64(maxStage)
	if wai < float64(mtu)/8 {
		wai = float64(mtu) / 8
	}
	return &WindowController{
		Est:      NewUtilEstimator(t),
		Eta:      eta,
		MaxStage: maxStage,
		WAI:      wai,
		MaxRate:  maxRate,
		wc:       bdp,
		w:        bdp,
	}
}

// Window returns the current window in bytes.
func (c *WindowController) Window() float64 { return c.w }

// Rate converts the current window to a pacing rate over the segment RTT.
func (c *WindowController) Rate() sim.Rate {
	r := sim.Rate(c.w * 8 / c.Est.T.Seconds())
	return sim.ClampRate(r, MinRate, c.MaxRate)
}

// OnFeedback folds an INT stack into the window. ackSeq drives the per-RTT
// reference-window update (pass a monotone per-flow byte count).
func (c *WindowController) OnFeedback(hops []pkt.INTHop, ackSeq int64) {
	u, ok := c.Est.Update(hops)
	if !ok {
		return
	}
	updateWc := ackSeq > c.lastSeq
	if u >= c.Eta || c.incStage >= c.MaxStage {
		c.w = c.wc/(u/c.Eta) + c.WAI
		if updateWc {
			c.incStage = 0
			c.wc = c.w
		}
	} else {
		c.w = c.wc + c.WAI
		if updateWc {
			c.incStage++
			c.wc = c.w
		}
	}
	maxW := float64(sim.BDPBytes(c.MaxRate, c.Est.T))
	if c.w > maxW {
		c.w = maxW
	}
	minW := float64(sim.BDPBytes(MinRate, c.Est.T))
	if c.w < minW {
		c.w = minW
	}
	if updateWc {
		// Next window reference update happens one segment-RTT of bytes
		// later: approximate with current window worth of bytes.
		c.lastSeq = ackSeq + int64(c.w)
	}
}
