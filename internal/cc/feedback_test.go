package cc

import (
	"math"
	"testing"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

func TestValidINTStack(t *testing.T) {
	good := []pkt.INTHop{
		{Node: 1, QLen: 0, TxBytes: 100, TS: 5, Band: 100 * sim.Gbps},
		{Node: 2, QLen: 42, TxBytes: 0, TS: 0, Band: 25 * sim.Gbps},
	}
	if !ValidINTStack(nil) || !ValidINTStack(good) {
		t.Fatal("valid stacks rejected")
	}
	cases := map[string]func(h *pkt.INTHop){
		"zero band":        func(h *pkt.INTHop) { h.Band = 0 },
		"negative band":    func(h *pkt.INTHop) { h.Band = -h.Band },
		"negative qlen":    func(h *pkt.INTHop) { h.QLen = -1 },
		"negative txbytes": func(h *pkt.INTHop) { h.TxBytes = -5 },
		"negative ts":      func(h *pkt.INTHop) { h.TS = -sim.Nanosecond },
	}
	for name, corrupt := range cases {
		hops := append([]pkt.INTHop(nil), good...)
		corrupt(&hops[1])
		if ValidINTStack(hops) {
			t.Errorf("%s accepted", name)
		}
	}
	over := make([]pkt.INTHop, pkt.MaxINTHops+1)
	for i := range over {
		over[i] = pkt.INTHop{Node: pkt.NodeID(i), Band: sim.Gbps}
	}
	if ValidINTStack(over) {
		t.Error("oversize stack accepted")
	}
}

// TestUtilEstimatorRejectsRegressedTS pins the corruption guard: a sample
// whose timestamp runs backwards must be discarded WITHOUT becoming the new
// baseline — otherwise the next honest sample computes its delta against the
// corrupt one and reads a bogus (huge-dt) rate.
func TestUtilEstimatorRejectsRegressedTS(t *testing.T) {
	T := 25 * sim.Microsecond
	e := NewUtilEstimator(T)
	a, b := mkHops(0, T, 0.80, 0)
	e.Update(a)
	u1, ok := e.Update(b)
	if !ok {
		t.Fatal("honest sample rejected")
	}

	// Corrupt: TS regressed below the remembered baseline.
	bad := append([]pkt.INTHop(nil), b...)
	bad[0].TS = b[0].TS - T/2
	bad[0].TxBytes += 1000
	if _, ok := e.Update(bad); ok {
		t.Fatal("regressed-TS sample updated the estimate")
	}
	if e.U() != u1 {
		t.Fatalf("rejected sample moved U: %v -> %v", u1, e.U())
	}
	if e.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", e.Rejected())
	}

	// The next honest sample must still read ~80% against the PRE-corruption
	// baseline. If the corrupt sample had poisoned e.last, dt would span from
	// the regressed TS and the rate would come out wrong.
	c := append([]pkt.INTHop(nil), b...)
	c[0].TS += T
	c[0].TxBytes += b[0].TxBytes // another 80%-utilization interval
	u2, ok := e.Update(c)
	if !ok {
		t.Fatal("post-corruption honest sample rejected")
	}
	if math.Abs(u2-0.80) > 0.01 {
		t.Fatalf("U after corruption = %v, want ≈0.80 (baseline was poisoned)", u2)
	}
}

// TestUtilEstimatorRejectsRegressedTxBytes: a regressed hop counter would
// yield a negative txRate and drag U below zero; the guard discards it.
func TestUtilEstimatorRejectsRegressedTxBytes(t *testing.T) {
	T := 25 * sim.Microsecond
	e := NewUtilEstimator(T)
	a, b := mkHops(0, T, 0.50, 0)
	e.Update(a)
	e.Update(b)
	u1 := e.U()

	bad := append([]pkt.INTHop(nil), b...)
	bad[0].TS += T
	bad[0].TxBytes = b[0].TxBytes / 2 // counter ran backwards
	if _, ok := e.Update(bad); ok {
		t.Fatal("regressed-TxBytes sample updated the estimate")
	}
	if e.U() != u1 || e.U() < 0 {
		t.Fatalf("U corrupted: %v (was %v)", e.U(), u1)
	}
	if e.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", e.Rejected())
	}
}

// TestUtilEstimatorDuplicateStackNoOp: an exact duplicate (a reordered copy
// of feedback already folded in) advances no hop clock. It must neither zero
// the EWMA through a tau=0 sample nor perturb the baseline.
func TestUtilEstimatorDuplicateStackNoOp(t *testing.T) {
	T := 25 * sim.Microsecond
	e := NewUtilEstimator(T)
	a, b := mkHops(0, T, 0.80, 0)
	e.Update(a)
	u1, _ := e.Update(b)
	if u1 <= 0 {
		t.Fatalf("setup: U = %v", u1)
	}
	for i := 0; i < 3; i++ {
		if _, ok := e.Update(b); ok {
			t.Fatal("duplicate stack reported an update")
		}
	}
	if e.U() != u1 {
		t.Fatalf("duplicates moved U: %v -> %v", u1, e.U())
	}
	// Duplicates are informationless, not corrupt: they don't count as
	// rejected.
	if e.Rejected() != 0 {
		t.Fatalf("Rejected() = %d, want 0", e.Rejected())
	}
}

// TestWindowControllerReorderedAckSeq drives the controller with advancing
// feedback interleaved with reordered deliveries (duplicate INT stacks,
// regressed ack sequence numbers). The reference window and increase stage
// must never move backwards on stale input, and U must stay finite and
// non-negative throughout.
func TestWindowControllerReorderedAckSeq(t *testing.T) {
	T := 25 * sim.Microsecond
	c := NewWindowController(T, 25*sim.Gbps, 1000, 0.95, 5)
	band := 100 * sim.Gbps
	prev := pkt.INTHop{Node: 1, QLen: 0, TxBytes: 0, TS: 0, Band: band}
	c.OnFeedback([]pkt.INTHop{prev}, 0)
	acked := int64(0)
	for i := 1; i <= 40; i++ {
		cur := prev
		cur.TxBytes += int64(0.30 * float64(band) / 8 * T.Seconds())
		cur.TS += T
		acked += 25000
		c.OnFeedback([]pkt.INTHop{cur}, acked)
		prev = cur

		wc, stage, seq := c.wc, c.incStage, c.lastSeq
		// Reordered copies: same stack again, with ack numbers from the past.
		c.OnFeedback([]pkt.INTHop{cur}, acked-30000)
		c.OnFeedback([]pkt.INTHop{cur}, 0)
		if c.wc != wc || c.incStage != stage || c.lastSeq != seq {
			t.Fatalf("iter %d: stale delivery moved controller state: wc %v->%v stage %d->%d seq %d->%d",
				i, wc, c.wc, stage, c.incStage, seq, c.lastSeq)
		}
		if u := c.Est.U(); u < 0 || math.IsNaN(u) || math.IsInf(u, 0) {
			t.Fatalf("iter %d: U = %v", i, u)
		}
		if r := c.Rate(); r < MinRate || r > 25*sim.Gbps {
			t.Fatalf("iter %d: rate %v outside [MinRate, line rate]", i, r)
		}
	}
	// Advancing hops with a regressed ackSeq still update w (fresh congestion
	// signal) but must not advance the per-RTT reference state.
	cur := prev
	cur.TxBytes += int64(0.30 * float64(band) / 8 * T.Seconds())
	cur.TS += T
	stage, seq := c.incStage, c.lastSeq
	c.OnFeedback([]pkt.INTHop{cur}, acked-30000)
	if c.incStage < stage || c.lastSeq != seq {
		t.Fatalf("regressed ackSeq advanced reference state: stage %d->%d seq %d->%d",
			stage, c.incStage, seq, c.lastSeq)
	}
}
