// Package dcqcn implements DCQCN (Zhu et al., SIGCOMM 2015), the ECN-based
// congestion control used by production RoCE deployments. The receiver
// echoes CE marks as CNPs (rate-limited to one per CNPInterval per flow, in
// internal/host); the sender runs the α-based rate decrease and the fast
// recovery / additive / hyper increase state machine, driven by the standard
// 55 µs timer and a byte counter.
package dcqcn

import (
	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Params holds DCQCN knobs. Defaults follow the HPCC paper's suggested
// DCQCN configuration for 25/100G fabrics.
type Params struct {
	G           float64  // α gain (1/256)
	AlphaTimer  sim.Time // α decay timer (55 µs)
	RateTimer   sim.Time // rate-increase timer (55 µs)
	ByteCounter int64    // rate-increase byte counter (10 MB)
	F           int      // fast-recovery stages (5)
	RAI         sim.Rate // additive increase (40 Mbps)
	RHAI        sim.Rate // hyper increase (200 Mbps)
	CNPInterval sim.Time // receiver-side CNP pacing (50 µs), used by host
}

// DefaultParams returns the standard DCQCN configuration.
func DefaultParams() Params {
	return Params{
		G:           1.0 / 256,
		AlphaTimer:  55 * sim.Microsecond,
		RateTimer:   55 * sim.Microsecond,
		ByteCounter: 10 << 20,
		F:           5,
		RAI:         40 * sim.Mbps,
		RHAI:        200 * sim.Mbps,
		CNPInterval: 50 * sim.Microsecond,
	}
}

// New returns a SenderFactory running DCQCN with params p.
func New(eng *sim.Engine, p Params) cc.SenderFactory {
	return func(f cc.FlowInfo) cc.Sender {
		s := &sender{eng: eng, p: p, flow: f,
			rc: f.LinkRate, rt: f.LinkRate, alpha: 1,
		}
		// Bind the tick callbacks once: both timers re-arm on every period
		// (and the rate timer restarts on every CNP), so per-arm method
		// values would allocate on the per-packet path.
		s.alphaFn = s.alphaTick
		s.rateFn = s.rateTick
		s.alphaEv = eng.After(p.AlphaTimer, s.alphaFn)
		s.rateEv = eng.After(p.RateTimer, s.rateFn)
		return s
	}
}

type sender struct {
	eng  *sim.Engine
	p    Params
	flow cc.FlowInfo

	rc    sim.Rate // current rate
	rt    sim.Rate // target rate
	alpha float64

	timerStage int
	byteStage  int
	bytesAcked int64 // since last byte-counter stage
	cnpSeen    bool  // CNP within the current α window

	alphaEv sim.Timer
	rateEv  sim.Timer
	alphaFn func()
	rateFn  func()
	closed  bool
}

// Rate implements cc.Sender.
func (s *sender) Rate() sim.Rate { return s.rc }

// OnCNP applies the multiplicative decrease and restarts the increase state
// machine, per the DCQCN rate-decrease rules.
func (s *sender) OnCNP(now sim.Time) {
	if s.closed {
		return
	}
	s.rt = s.rc
	s.rc = sim.Rate(float64(s.rc) * (1 - s.alpha/2))
	s.rc = sim.ClampRate(s.rc, cc.MinRate, s.flow.LinkRate)
	s.alpha = (1-s.p.G)*s.alpha + s.p.G
	s.cnpSeen = true
	s.timerStage = 0
	s.byteStage = 0
	s.bytesAcked = 0
	// Restart the rate timer so the first recovery step is a full period
	// after the decrease.
	s.rateEv.Cancel()
	s.rateEv = s.eng.After(s.p.RateTimer, s.rateFn)
}

// OnAck advances the byte counter; DCQCN ignores INT and RTT signals.
func (s *sender) OnAck(now sim.Time, ack *pkt.Packet) {
	if s.closed {
		return
	}
	s.bytesAcked += int64(s.flow.MTU)
	if s.bytesAcked >= s.p.ByteCounter {
		s.bytesAcked = 0
		s.byteStage++
		s.increase()
	}
}

// OnSwitchINT is a no-op: DCQCN does not use near-source feedback.
func (s *sender) OnSwitchINT(now sim.Time, p *pkt.Packet) {}

// Close stops the timers. The host calls it at flow completion.
func (s *sender) Close() {
	s.closed = true
	s.alphaEv.Cancel()
	s.rateEv.Cancel()
}

func (s *sender) alphaTick() {
	if s.closed {
		return
	}
	if !s.cnpSeen {
		s.alpha = (1 - s.p.G) * s.alpha
	}
	s.cnpSeen = false
	s.alphaEv = s.eng.After(s.p.AlphaTimer, s.alphaFn)
}

func (s *sender) rateTick() {
	if s.closed {
		return
	}
	s.timerStage++
	s.increase()
	s.rateEv = s.eng.After(s.p.RateTimer, s.rateFn)
}

// increase runs one step of the DCQCN increase state machine.
func (s *sender) increase() {
	switch {
	case s.timerStage < s.p.F && s.byteStage < s.p.F:
		// Fast recovery: climb halfway back to the target.
	case s.timerStage > s.p.F && s.byteStage > s.p.F:
		// Hyper increase.
		s.rt += sim.Rate(s.p.RHAI)
	default:
		// Additive increase.
		s.rt += sim.Rate(s.p.RAI)
	}
	if s.rt > s.flow.LinkRate {
		s.rt = s.flow.LinkRate
	}
	s.rc = (s.rc + s.rt) / 2
	s.rc = sim.ClampRate(s.rc, cc.MinRate, s.flow.LinkRate)
}
