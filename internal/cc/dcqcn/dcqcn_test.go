package dcqcn

import (
	"testing"

	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

func flowInfo() cc.FlowInfo {
	return cc.FlowInfo{
		ID: 1, LinkRate: 25 * sim.Gbps, MTU: 1000,
		BaseRTT: 25 * sim.Microsecond,
	}
}

func newSender(eng *sim.Engine) cc.Sender {
	return New(eng, DefaultParams())(flowInfo())
}

func TestStartsAtLineRate(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng)
	if s.Rate() != 25*sim.Gbps {
		t.Fatalf("initial rate = %v", s.Rate())
	}
}

func TestCNPDecrease(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng)
	s.OnCNP(0)
	// α = 1 initially → rate halves.
	if got := s.Rate(); got != 12500*sim.Mbps {
		t.Fatalf("rate after first CNP = %v, want 12.5Gbps", got)
	}
	s.OnCNP(0)
	if got := s.Rate(); got >= 12500*sim.Mbps {
		t.Fatalf("rate did not keep decreasing: %v", got)
	}
}

func TestRepeatedCNPsHitFloor(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng)
	for i := 0; i < 200; i++ {
		s.OnCNP(0)
	}
	if got := s.Rate(); got != cc.MinRate {
		t.Fatalf("rate = %v, want floor %v", got, cc.MinRate)
	}
}

func TestFastRecoveryClimbsToTarget(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng)
	s.OnCNP(0) // rt = 25G, rc = 12.5G
	// Run several rate-timer periods: fast recovery converges rc toward rt.
	eng.RunUntil(sim.Millisecond)
	got := s.Rate()
	if got < 20*sim.Gbps {
		t.Fatalf("rate after recovery = %v, want near 25Gbps", got)
	}
	if got > 25*sim.Gbps {
		t.Fatalf("rate exceeded line rate: %v", got)
	}
}

func TestAlphaDecaysWithoutCNP(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng).(*sender)
	s.OnCNP(0)
	alpha0 := s.alpha
	eng.RunUntil(2 * sim.Millisecond)
	if s.alpha >= alpha0 {
		t.Fatalf("alpha did not decay: %v -> %v", alpha0, s.alpha)
	}
}

func TestByteCounterIncrease(t *testing.T) {
	eng := sim.NewEngine()
	p := DefaultParams()
	p.ByteCounter = 10_000 // 10 data packets
	s := New(eng, p)(flowInfo()).(*sender)
	s.OnCNP(0)
	r0 := s.Rate()
	ack := &pkt.Packet{Kind: pkt.Ack}
	for i := 0; i < 30; i++ {
		s.OnAck(0, ack)
	}
	if s.Rate() <= r0 {
		t.Fatalf("byte counter did not drive increase: %v -> %v", r0, s.Rate())
	}
}

func TestHyperIncreaseAfterManyStages(t *testing.T) {
	eng := sim.NewEngine()
	p := DefaultParams()
	p.ByteCounter = 1000
	s := New(eng, p)(flowInfo()).(*sender)
	s.OnCNP(0)
	s.rc = cc.MinRate
	s.rt = cc.MinRate
	ack := &pkt.Packet{Kind: pkt.Ack}
	// Push both stages beyond F: hyper increase adds RHAI per event.
	for i := 0; i < 100; i++ {
		s.OnAck(0, ack)
		s.timerStage = p.F + 1 // pretend the timer has also advanced
	}
	if s.Rate() < 500*sim.Mbps {
		t.Fatalf("hyper increase too slow: %v", s.Rate())
	}
}

func TestCloseStopsTimers(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng).(*sender)
	s.Close()
	eng.Run() // must terminate: no timer should re-arm
	if eng.Pending() != 0 {
		t.Fatalf("pending events after Close: %d", eng.Pending())
	}
	// Callbacks after Close are no-ops.
	s.OnCNP(0)
	s.OnAck(0, &pkt.Packet{})
}

func TestRateNeverExceedsLine(t *testing.T) {
	eng := sim.NewEngine()
	s := newSender(eng)
	eng.RunUntil(10 * sim.Millisecond)
	if s.Rate() > 25*sim.Gbps {
		t.Fatalf("rate %v above line rate", s.Rate())
	}
}
