package timely

import (
	"testing"

	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

func flowInfo() cc.FlowInfo {
	return cc.FlowInfo{
		ID: 1, LinkRate: 25 * sim.Gbps, MTU: 1000,
		BaseRTT: 25 * sim.Microsecond,
	}
}

// ackAt feeds an ACK whose echoed timestamp implies the given RTT at `now`.
func ackAt(s cc.Sender, now, rtt sim.Time) {
	s.OnAck(now, &pkt.Packet{Kind: pkt.Ack, EchoTS: now - rtt})
}

func TestStartsAtLineRate(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	if s.Rate() != 25*sim.Gbps {
		t.Fatalf("initial rate = %v", s.Rate())
	}
}

func TestLowRTTAdditiveIncrease(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	s.(*sender).rate = sim.Gbps
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now += 30 * sim.Microsecond
		ackAt(s, now, 20*sim.Microsecond) // below Tlow=50us
	}
	if s.Rate() <= sim.Gbps {
		t.Fatalf("no additive increase below Tlow: %v", s.Rate())
	}
}

func TestHighRTTMultiplicativeDecrease(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now += 30 * sim.Microsecond
		ackAt(s, now, 2*sim.Millisecond) // far above Thigh=500us
	}
	if s.Rate() > 5*sim.Gbps {
		t.Fatalf("no decrease above Thigh: %v", s.Rate())
	}
	if s.Rate() < cc.MinRate {
		t.Fatalf("rate below floor: %v", s.Rate())
	}
}

func TestPositiveGradientDecreases(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	now := sim.Time(0)
	rtt := 100 * sim.Microsecond
	for i := 0; i < 60; i++ {
		now += 30 * sim.Microsecond
		rtt += 4 * sim.Microsecond // steadily rising RTT in the guard band
		ackAt(s, now, rtt)
	}
	if s.Rate() >= 25*sim.Gbps {
		t.Fatalf("rising gradient did not reduce rate: %v", s.Rate())
	}
}

func TestNegativeGradientIncreasesWithHAI(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	st := s.(*sender)
	st.rate = sim.Gbps
	now := sim.Time(0)
	rtt := 400 * sim.Microsecond
	var last sim.Rate = st.rate
	increments := []sim.Rate{}
	for i := 0; i < 30; i++ {
		now += 30 * sim.Microsecond
		if rtt > 100*sim.Microsecond {
			rtt -= 4 * sim.Microsecond
		}
		ackAt(s, now, rtt)
		increments = append(increments, s.Rate()-last)
		last = s.Rate()
	}
	if s.Rate() <= sim.Gbps {
		t.Fatalf("falling gradient did not increase rate: %v", s.Rate())
	}
	// HAI: later increments should exceed the first ones.
	if increments[len(increments)-1] <= increments[1] {
		t.Fatalf("no hyperactive increase: first %v last %v", increments[1], increments[len(increments)-1])
	}
}

func TestIgnoresAcksWithoutTimestamp(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	r0 := s.Rate()
	s.OnAck(sim.Millisecond, &pkt.Packet{Kind: pkt.Ack})
	if s.Rate() != r0 {
		t.Fatal("rate moved on timestamp-less ACK")
	}
}

func TestUpdateGatedPerRTT(t *testing.T) {
	s := New(DefaultParams())(flowInfo()).(*sender)
	s.rate = sim.Gbps
	// Two ACKs within one minRTT: only the first decision applies.
	ackAt(s, 10*sim.Microsecond, 20*sim.Microsecond)
	ackAt(s, 12*sim.Microsecond, 20*sim.Microsecond)
	r1 := s.Rate()
	ackAt(s, 13*sim.Microsecond, 20*sim.Microsecond)
	if s.Rate() != r1 {
		t.Fatal("updates not gated to one per RTT")
	}
}

func TestNoopHandlers(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	r := s.Rate()
	s.OnCNP(0)
	s.OnSwitchINT(0, &pkt.Packet{})
	if s.Rate() != r {
		t.Fatal("CNP/SwitchINT must not affect TIMELY")
	}
}
