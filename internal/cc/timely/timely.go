// Package timely implements TIMELY (Mittal et al., SIGCOMM 2015): RTT-
// gradient congestion control. The sender measures per-ACK RTTs from echoed
// timestamps, smooths the RTT difference with an EWMA, and adjusts its rate
// additively when the gradient is non-positive (with hyperactive increase
// after N consecutive decreases of RTT) and multiplicatively when positive,
// bounded by the Tlow/Thigh guard bands.
package timely

import (
	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Params holds TIMELY knobs, defaulting to the paper's recommendations.
type Params struct {
	TLow     sim.Time // below this RTT: pure additive increase
	THigh    sim.Time // above this RTT: multiplicative decrease regardless of gradient
	MinRTT   sim.Time // gradient normalization base; 0 = use flow BaseRTT
	EWMA     float64  // α for the RTT-diff EWMA
	AddStep  sim.Rate // δ additive increment
	Beta     float64  // multiplicative decrease factor
	HAIAfter int      // consecutive gradient<=0 samples before hyperactive increase
	HAIMax   int      // max HAI multiplier
}

// DefaultParams returns the native recommended configuration.
func DefaultParams() Params {
	return Params{
		TLow:     50 * sim.Microsecond,
		THigh:    500 * sim.Microsecond,
		EWMA:     0.875,
		AddStep:  50 * sim.Mbps,
		Beta:     0.8,
		HAIAfter: 5,
		HAIMax:   5,
	}
}

// New returns a SenderFactory running TIMELY with params p.
func New(p Params) cc.SenderFactory {
	return func(f cc.FlowInfo) cc.Sender {
		minRTT := p.MinRTT
		if minRTT == 0 {
			minRTT = f.BaseRTT
		}
		return &sender{p: p, flow: f, minRTT: minRTT, rate: f.LinkRate}
	}
}

type sender struct {
	p      Params
	flow   cc.FlowInfo
	minRTT sim.Time

	rate     sim.Rate
	prevRTT  sim.Time
	rttDiff  float64 // smoothed RTT difference, seconds
	haveRTT  bool
	negCount int
	lastUpd  sim.Time
	lastEcho sim.Time // newest echoed send timestamp seen
	haveEcho bool
}

// Rate implements cc.Sender.
func (s *sender) Rate() sim.Rate { return s.rate }

// OnCNP is a no-op: TIMELY is purely delay-based.
func (s *sender) OnCNP(now sim.Time) {}

// OnSwitchINT is a no-op.
func (s *sender) OnSwitchINT(now sim.Time, p *pkt.Packet) {}

// OnAck folds one RTT sample into the gradient engine. Updates are gated to
// one per minRTT so a burst of ACKs counts as one decision, as in the paper's
// completion-event formulation.
func (s *sender) OnAck(now sim.Time, ack *pkt.Packet) {
	if ack.EchoTS == 0 {
		return
	}
	rtt := now - ack.EchoTS
	if rtt <= 0 {
		return
	}
	if s.haveEcho && ack.EchoTS < s.lastEcho {
		// Reordered ACK: it echoes an older send than one already folded in,
		// so its delivery delay is not this path's current RTT — a burst of
		// such stale samples would read as a spurious positive gradient.
		return
	}
	s.lastEcho = ack.EchoTS
	s.haveEcho = true
	if !s.haveRTT {
		s.prevRTT = rtt
		s.haveRTT = true
		return
	}
	newDiff := (rtt - s.prevRTT).Seconds()
	s.prevRTT = rtt
	s.rttDiff = (1-s.p.EWMA)*s.rttDiff + s.p.EWMA*newDiff
	if now-s.lastUpd < s.minRTT {
		return
	}
	s.lastUpd = now
	gradient := s.rttDiff / s.minRTT.Seconds()

	switch {
	case rtt < s.p.TLow:
		s.negCount = 0
		s.rate += s.p.AddStep
	case rtt > s.p.THigh:
		s.negCount = 0
		// Decrease proportionally to how far beyond Thigh the RTT sits.
		factor := 1 - s.p.Beta*(1-float64(s.p.THigh)/float64(rtt))
		s.rate = sim.Rate(float64(s.rate) * factor)
	case gradient <= 0:
		s.negCount++
		n := 1
		if s.negCount >= s.p.HAIAfter {
			n = s.negCount - s.p.HAIAfter + 2
			if n > s.p.HAIMax {
				n = s.p.HAIMax
			}
		}
		s.rate += sim.Rate(n) * s.p.AddStep
	default:
		s.negCount = 0
		factor := 1 - s.p.Beta*gradient
		if factor < 0.5 {
			factor = 0.5
		}
		s.rate = sim.Rate(float64(s.rate) * factor)
	}
	s.rate = sim.ClampRate(s.rate, cc.MinRate, s.flow.LinkRate)
}
