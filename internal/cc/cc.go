// Package cc defines the congestion-control plug-in interface shared by all
// algorithms (DCQCN, Timely, HPCC, PowerTCP and MLCC) and the INT-based
// utilization estimator reused by the INT-driven algorithms.
//
// A Sender is a per-flow rate controller living at the sending host: the NIC
// consults Rate() before emitting every packet and feeds back ACKs, CNPs and
// (for MLCC) Switch-INT near-source frames. A Receiver, when an algorithm
// installs one, runs at the receiving host and may stamp fields onto
// outgoing ACKs (MLCC's credit-driven algorithm).
package cc

import (
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// FlowInfo is the static description handed to algorithm factories when a
// flow starts.
type FlowInfo struct {
	ID   pkt.FlowID
	Src  pkt.NodeID
	Dst  pkt.NodeID
	Size int64 // payload bytes

	LinkRate sim.Rate // sending host NIC line rate (rate ceiling)
	MTU      int
	BaseRTT  sim.Time // end-to-end base (unloaded) RTT
	NearRTT  sim.Time // sender ↔ sender-side DCI base RTT (MLCC near-source loop)
	FarRTT   sim.Time // receiver ↔ receiver-side DCI base RTT (MLCC receiver-driven loop)
	CrossDC  bool
}

// Sender is the per-flow rate controller at the sending host.
type Sender interface {
	// OnAck processes an acknowledgement, including its INT stack, ECE bit
	// and MLCC rate fields.
	OnAck(now sim.Time, ack *pkt.Packet)
	// OnCNP processes a DCQCN congestion-notification packet.
	OnCNP(now sim.Time)
	// OnSwitchINT processes MLCC near-source feedback from the sender-side
	// DCI switch.
	OnSwitchINT(now sim.Time, p *pkt.Packet)
	// Rate returns the current pacing rate; the NIC reads it before every
	// packet emission.
	Rate() sim.Rate
}

// Receiver is optional per-flow logic at the receiving host. OnData runs for
// every arriving data packet just before the ACK is emitted and may write
// credit/rate fields onto the ACK.
type Receiver interface {
	OnData(now sim.Time, data *pkt.Packet, ack *pkt.Packet)
}

// SenderFactory builds a Sender for a new flow.
type SenderFactory func(f FlowInfo) Sender

// ReceiverFactory builds a Receiver for a new incoming flow; may be nil for
// algorithms with passive receivers.
type ReceiverFactory func(f FlowInfo) Receiver

// Algorithm bundles the factories an experiment needs to deploy a CC scheme.
type Algorithm struct {
	Name        string
	NewSender   SenderFactory
	NewReceiver ReceiverFactory // nil = plain echo receiver
	// UseMLCCDCI reports whether DCI switches must run MLCC behaviours
	// (near-source INT reflection, PFQ, DQM).
	UseMLCCDCI bool
}

// MinRate is the floor pacing rate: flows never stall entirely, matching the
// minimum-rate guards in DCQCN/HPCC implementations.
const MinRate = 10 * sim.Mbps
