package cc

import (
	"encoding/binary"
	"math"
	"testing"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// FuzzINTFeedback hammers the INT feedback consumers with arbitrary hop
// stacks: whatever the reverse path delivers — truncated stacks, regressed
// timestamps and counters, garbage queue lengths and bandwidths, oversize
// stacks — validation plus the estimator's corruption guards must keep the
// control loop sane. Nothing may panic, U must stay finite and non-negative,
// and the pacing rate must stay inside [MinRate, line rate].
//
// The input bytes encode a sequence of stacks: one hop-count byte, then 33
// bytes per hop (node id + QLen/TxBytes/TS/Band as little-endian int64s).
// seqA/seqB perturb the ack sequence numbers fed alongside, covering
// reordered and duplicate ack deliveries.
func FuzzINTFeedback(f *testing.F) {
	const hopBytes = 1 + 4*8
	enc := func(stacks ...[]pkt.INTHop) []byte {
		var out []byte
		for _, hops := range stacks {
			out = append(out, byte(len(hops)))
			for _, h := range hops {
				var b [hopBytes]byte
				b[0] = byte(h.Node)
				binary.LittleEndian.PutUint64(b[1:], uint64(h.QLen))
				binary.LittleEndian.PutUint64(b[9:], uint64(h.TxBytes))
				binary.LittleEndian.PutUint64(b[17:], uint64(h.TS))
				binary.LittleEndian.PutUint64(b[25:], uint64(h.Band))
				out = append(out, b[:]...)
			}
		}
		return out
	}
	band := 100 * sim.Gbps
	honest := func(ts sim.Time, tx int64) []pkt.INTHop {
		return []pkt.INTHop{{Node: 1, QLen: 1000, TxBytes: tx, TS: ts, Band: band}}
	}
	f.Add(enc(honest(0, 0), honest(25*sim.Microsecond, 31250)), int64(0), int64(25000))
	// Regressed TS and TxBytes after an honest prime.
	f.Add(enc(honest(25*sim.Microsecond, 31250), honest(10*sim.Microsecond, 100)), int64(5000), int64(-1))
	// Garbage fields: negative QLen/Band.
	f.Add(enc([]pkt.INTHop{{Node: 2, QLen: -5, TxBytes: 1, TS: 1, Band: -band}}), int64(0), int64(0))
	// Truncated/oversize stack length byte with short payload.
	f.Add([]byte{7, 1, 2, 3}, int64(1), int64(2))

	f.Fuzz(func(t *testing.T, data []byte, seqA, seqB int64) {
		T := 25 * sim.Microsecond
		e := NewUtilEstimator(T)
		c := NewWindowController(T, 25*sim.Gbps, 1000, 0.95, 5)
		seqs := [2]int64{seqA, seqB}
		for step := 0; len(data) > 0 && step < 64; step++ {
			n := int(data[0])
			data = data[1:]
			if n > pkt.MaxINTHops+2 {
				n = pkt.MaxINTHops + 2 // bound work, keep oversize stacks reachable
			}
			var hops []pkt.INTHop
			for j := 0; j < n && len(data) >= hopBytes; j++ {
				hops = append(hops, pkt.INTHop{
					Node:    pkt.NodeID(data[0]),
					QLen:    int64(binary.LittleEndian.Uint64(data[1:9])),
					TxBytes: int64(binary.LittleEndian.Uint64(data[9:17])),
					TS:      sim.Time(binary.LittleEndian.Uint64(data[17:25])),
					Band:    sim.Rate(binary.LittleEndian.Uint64(data[25:33])),
				})
				data = data[hopBytes:]
			}
			u, ok := e.Update(hops)
			if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 {
				t.Fatalf("step %d: estimator U = %v (ok=%v) for %+v", step, u, ok, hops)
			}
			if ok && len(hops) > 0 && !ValidINTStack(hops) {
				t.Fatalf("step %d: invalid stack updated the estimator: %+v", step, hops)
			}
			c.OnFeedback(hops, seqs[step%2]+int64(step)*1000)
			if cu := c.Est.U(); math.IsNaN(cu) || math.IsInf(cu, 0) || cu < 0 {
				t.Fatalf("step %d: controller U = %v", step, cu)
			}
			if r := c.Rate(); r < MinRate || r > 25*sim.Gbps {
				t.Fatalf("step %d: rate %v escaped [MinRate, line rate]", step, r)
			}
		}
	})
}
