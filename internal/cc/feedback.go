package cc

import "mlcc/internal/pkt"

// ValidINTStack reports whether an INT hop stack is structurally sane:
// bounded depth, positive link bandwidth and non-negative queue length,
// transmit counter and timestamp on every hop. It is the ingress gate hosts
// apply to arriving feedback before any estimator sees the stack — a frame
// that fails here was corrupted in flight (or forged) and must be discarded
// and counted, never folded into control state.
//
// Cross-sample properties (per-hop monotone TS, non-decreasing TxBytes) need
// a previous stack and are enforced inside UtilEstimator.Update and the
// algorithms' own delta loops.
func ValidINTStack(hops []pkt.INTHop) bool {
	if len(hops) > pkt.MaxINTHops {
		return false
	}
	for i := range hops {
		h := &hops[i]
		if h.Band <= 0 || h.QLen < 0 || h.TxBytes < 0 || h.TS < 0 {
			return false
		}
	}
	return true
}
