package cc

import (
	"math"
	"testing"
	"testing/quick"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// mkHops builds an INT stack with the given queue lengths and a tx counter
// advancing at the given utilization of a 100G link over dt.
func mkHops(t0 sim.Time, dt sim.Time, util float64, qlens ...int64) ([]pkt.INTHop, []pkt.INTHop) {
	band := 100 * sim.Gbps
	bytesMoved := int64(util * float64(band) / 8 * dt.Seconds())
	var a, b []pkt.INTHop
	for i, q := range qlens {
		a = append(a, pkt.INTHop{Node: pkt.NodeID(i), QLen: q, TxBytes: 0, TS: t0, Band: band})
		b = append(b, pkt.INTHop{Node: pkt.NodeID(i), QLen: q, TxBytes: bytesMoved, TS: t0 + dt, Band: band})
	}
	return a, b
}

func TestUtilEstimatorPrimesOnFirstSample(t *testing.T) {
	e := NewUtilEstimator(25 * sim.Microsecond)
	a, _ := mkHops(0, 10*sim.Microsecond, 0.5, 0)
	if _, ok := e.Update(a); ok {
		t.Fatal("first sample should only prime")
	}
	if _, ok := e.Update(nil); ok {
		t.Fatal("empty hops should not update")
	}
}

func TestUtilEstimatorMeasuresTxRate(t *testing.T) {
	T := 25 * sim.Microsecond
	e := NewUtilEstimator(T)
	a, b := mkHops(0, T, 0.80, 0)
	e.Update(a)
	u, ok := e.Update(b)
	if !ok {
		t.Fatal("second sample did not update")
	}
	// Zero queue, 80% txRate, tau == T so EWMA weight is 1.
	if math.Abs(u-0.80) > 0.01 {
		t.Fatalf("U = %v, want 0.80", u)
	}
}

func TestUtilEstimatorIncludesQueueTerm(t *testing.T) {
	T := 25 * sim.Microsecond
	e := NewUtilEstimator(T)
	// Queue of one BDP at 100G/25us = 312500 bytes should add 1.0.
	bdp := sim.BDPBytes(100*sim.Gbps, T)
	a, b := mkHops(0, T, 0.5, bdp)
	e.Update(a)
	u, _ := e.Update(b)
	if math.Abs(u-1.5) > 0.02 {
		t.Fatalf("U = %v, want ≈1.5 (0.5 rate + 1.0 queue)", u)
	}
}

func TestUtilEstimatorTakesMaxHop(t *testing.T) {
	T := 25 * sim.Microsecond
	e := NewUtilEstimator(T)
	bdp := sim.BDPBytes(100*sim.Gbps, T)
	a, b := mkHops(0, T, 0.5, 0, 2*bdp, 0)
	e.Update(a)
	u, _ := e.Update(b)
	if u < 2.0 {
		t.Fatalf("U = %v, want ≥ 2.0 from the congested middle hop", u)
	}
}

func TestUtilEstimatorResetsOnPathChange(t *testing.T) {
	e := NewUtilEstimator(25 * sim.Microsecond)
	a, b := mkHops(0, 25*sim.Microsecond, 0.9, 0)
	e.Update(a)
	// Different node id: must re-prime, not update.
	b[0].Node = 99
	if _, ok := e.Update(b); ok {
		t.Fatal("path change treated as continuation")
	}
}

func TestUtilEstimatorEWMA(t *testing.T) {
	T := 100 * sim.Microsecond
	e := NewUtilEstimator(T)
	// dt = T/10 → EWMA weight 0.1 per sample.
	dt := T / 10
	band := 100 * sim.Gbps
	moved := int64(float64(band) / 8 * dt.Seconds()) // 100% util
	prev := pkt.INTHop{Node: 1, QLen: 0, TxBytes: 0, TS: 0, Band: band}
	e.Update([]pkt.INTHop{prev})
	u := 0.0
	for i := 1; i <= 30; i++ {
		cur := prev
		cur.TxBytes += moved
		cur.TS += dt
		u, _ = e.Update([]pkt.INTHop{cur})
		prev = cur
	}
	// After 30 samples of weight 0.1, U ≈ 1-(0.9)^30 ≈ 0.96.
	if u < 0.9 || u > 1.01 {
		t.Fatalf("EWMA U = %v, want ≈0.96", u)
	}
}

func TestWindowControllerStartsAtLineRate(t *testing.T) {
	c := NewWindowController(25*sim.Microsecond, 25*sim.Gbps, 1000, 0.95, 5)
	r := c.Rate()
	if r < 24*sim.Gbps || r > 25*sim.Gbps {
		t.Fatalf("initial rate = %v", r)
	}
}

func TestWindowControllerBacksOffWhenOverUtilized(t *testing.T) {
	T := 25 * sim.Microsecond
	c := NewWindowController(T, 25*sim.Gbps, 1000, 0.95, 5)
	band := 100 * sim.Gbps
	bdp := sim.BDPBytes(band, T)
	prev := pkt.INTHop{Node: 1, QLen: 2 * bdp, TxBytes: 0, TS: 0, Band: band}
	c.OnFeedback([]pkt.INTHop{prev}, 0)
	acked := int64(0)
	for i := 1; i <= 50; i++ {
		cur := prev
		cur.TxBytes += int64(float64(band) / 8 * T.Seconds()) // 100% tx
		cur.TS += T
		acked += 25000
		c.OnFeedback([]pkt.INTHop{cur}, acked)
		prev = cur
	}
	// U ≈ 3 (1.0 rate + 2.0 queue): window must shrink well below BDP.
	if r := c.Rate(); r > 12*sim.Gbps {
		t.Fatalf("rate = %v, want strong back-off", r)
	}
}

func TestWindowControllerGrowsWhenIdle(t *testing.T) {
	T := 25 * sim.Microsecond
	c := NewWindowController(T, 25*sim.Gbps, 1000, 0.95, 5)
	// Force it down first.
	c.w = c.w / 10
	c.wc = c.w
	band := 100 * sim.Gbps
	prev := pkt.INTHop{Node: 1, QLen: 0, TxBytes: 0, TS: 0, Band: band}
	c.OnFeedback([]pkt.INTHop{prev}, 0)
	acked := int64(0)
	for i := 1; i <= 400; i++ {
		cur := prev
		cur.TxBytes += int64(0.10 * float64(band) / 8 * T.Seconds()) // 10% util
		cur.TS += T
		acked += 25000
		c.OnFeedback([]pkt.INTHop{cur}, acked)
		prev = cur
	}
	if r := c.Rate(); r < 10*sim.Gbps {
		t.Fatalf("rate = %v, want recovery toward line rate", r)
	}
}

func TestWindowControllerRateClamped(t *testing.T) {
	c := NewWindowController(25*sim.Microsecond, 25*sim.Gbps, 1000, 0.95, 5)
	f := func(w float64) bool {
		c.w = math.Abs(w)
		r := c.Rate()
		return r >= MinRate && r <= 25*sim.Gbps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: U is always non-negative and finite for arbitrary INT pairs.
func TestUtilEstimatorRobustProperty(t *testing.T) {
	f := func(q1, q2 uint32, txd uint32, dtUS uint16) bool {
		T := 25 * sim.Microsecond
		e := NewUtilEstimator(T)
		band := 100 * sim.Gbps
		a := pkt.INTHop{Node: 1, QLen: int64(q1), TxBytes: 0, TS: 0, Band: band}
		b := pkt.INTHop{Node: 1, QLen: int64(q2), TxBytes: int64(txd), TS: sim.Time(dtUS) * sim.Microsecond, Band: band}
		e.Update([]pkt.INTHop{a})
		u, _ := e.Update([]pkt.INTHop{b})
		return u >= 0 && !math.IsNaN(u) && !math.IsInf(u, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
