// Package powertcp implements PowerTCP (Addanki, Michel, Schmid, NSDI 2022),
// the INT-based θ-PowerTCP variant: each ACK's telemetry yields a normalized
// "power" per hop — current (arrival rate, including the queue-growth term)
// times voltage (queue backlog plus BDP) over the base power C²τ — and the
// window is γ-smoothed toward w/Γ + β.
//
// Approximation notes (documented per DESIGN.md): we normalize against the
// bottleneck hop's own capacity and use the flow's base RTT as τ for every
// hop, which matches the single-bottleneck deployments evaluated in both the
// PowerTCP and MLCC papers.
package powertcp

import (
	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Params holds PowerTCP knobs; defaults follow the paper.
type Params struct {
	Gamma float64 // EWMA smoothing for the window update
	Beta  float64 // additive increase in MTUs (β = beta·MTU bytes)
}

// DefaultParams returns γ=0.9, β=1 MTU.
func DefaultParams() Params { return Params{Gamma: 0.9, Beta: 1} }

// New returns a SenderFactory running PowerTCP with params p.
func New(p Params) cc.SenderFactory {
	return func(f cc.FlowInfo) cc.Sender {
		bdp := float64(sim.BDPBytes(f.LinkRate, f.BaseRTT))
		return &sender{
			p: p, flow: f,
			w:    bdp,
			maxW: bdp,
			minW: float64(sim.BDPBytes(cc.MinRate, f.BaseRTT)),
			beta: p.Beta * float64(f.MTU),
		}
	}
}

type sender struct {
	p    Params
	flow cc.FlowInfo

	w          float64 // window, bytes
	maxW, minW float64
	beta       float64
	last       []pkt.INTHop
	init       bool
}

// Rate implements cc.Sender.
func (s *sender) Rate() sim.Rate {
	r := sim.Rate(s.w * 8 / s.flow.BaseRTT.Seconds())
	return sim.ClampRate(r, cc.MinRate, s.flow.LinkRate)
}

// OnCNP is a no-op.
func (s *sender) OnCNP(now sim.Time) {}

// OnSwitchINT is a no-op for plain PowerTCP.
func (s *sender) OnSwitchINT(now sim.Time, p *pkt.Packet) {}

// OnAck computes the normalized power Γ across hops and applies the
// γ-smoothed window update w ← γ(w/Γ + β) + (1−γ)w.
//
// Corruption guards mirror cc.UtilEstimator.Update: a structurally invalid
// stack, or one whose per-hop TS or TxBytes regressed against the remembered
// baseline, is rejected WITHOUT overwriting s.last — folding it in would make
// the next honest sample compute garbage deltas.
func (s *sender) OnAck(now sim.Time, ack *pkt.Packet) {
	hops := ack.Hops
	if len(hops) == 0 || !cc.ValidINTStack(hops) {
		return
	}
	if !s.init || !sameHops(s.last, hops) {
		s.last = append(s.last[:0], hops...)
		s.init = true
		return
	}
	for i := range hops {
		cur, prev := &hops[i], &s.last[i]
		if cur.TS < prev.TS || cur.TxBytes < prev.TxBytes {
			return
		}
	}
	tau := s.flow.BaseRTT.Seconds()
	gamma := 0.0 // normalized power Γ
	for i := range hops {
		cur, prev := &hops[i], &s.last[i]
		dt := (cur.TS - prev.TS).Seconds()
		if dt <= 0 {
			continue
		}
		c := float64(cur.Band) // bits/s
		txRate := float64(cur.TxBytes-prev.TxBytes) * 8 / dt
		qGrad := float64(cur.QLen-prev.QLen) * 8 / dt
		current := txRate + qGrad // λ: arrival rate at the hop, bits/s
		if current < 0 {
			current = 0
		}
		voltage := float64(cur.QLen)*8 + c*tau // bits
		power := current * voltage
		base := c * c * tau
		if p := power / base; p > gamma {
			gamma = p
		}
	}
	s.last = append(s.last[:0], hops...)
	if gamma <= 0 {
		return
	}
	s.w = s.p.Gamma*(s.w/gamma+s.beta) + (1-s.p.Gamma)*s.w
	if s.w > s.maxW {
		s.w = s.maxW
	}
	if s.w < s.minW {
		s.w = s.minW
	}
}

func sameHops(a, b []pkt.INTHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node {
			return false
		}
	}
	return true
}
