package powertcp

import (
	"math"
	"testing"

	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

func flowInfo() cc.FlowInfo {
	return cc.FlowInfo{
		ID: 1, LinkRate: 25 * sim.Gbps, MTU: 1000,
		BaseRTT: 25 * sim.Microsecond,
	}
}

func ackWithHop(h pkt.INTHop) *pkt.Packet {
	return &pkt.Packet{Kind: pkt.Ack, Hops: []pkt.INTHop{h}}
}

// drive feeds n INT samples with the hop running at util fraction of
// capacity and queue qlen, spaced dt apart.
func drive(s cc.Sender, n int, util float64, qlen int64, dt sim.Time) {
	band := 100 * sim.Gbps
	hop := pkt.INTHop{Node: 3, QLen: qlen, TxBytes: 0, TS: 0, Band: band}
	s.OnAck(0, ackWithHop(hop))
	for i := 0; i < n; i++ {
		hop.TS += dt
		hop.TxBytes += int64(util * float64(band) / 8 * dt.Seconds())
		s.OnAck(hop.TS, ackWithHop(hop))
	}
}

func TestStartsAtLineRate(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	if r := s.Rate(); r != 25*sim.Gbps {
		t.Fatalf("initial rate = %v", r)
	}
}

func TestEquilibriumAtFullUtilizationZeroQueue(t *testing.T) {
	// normPower = 1 at λ=C, q=0: window should stay near its value.
	s := New(DefaultParams())(flowInfo())
	st := s.(*sender)
	w0 := st.w
	drive(s, 200, 1.0, 0, 6*sim.Microsecond)
	if math.Abs(st.w-w0)/w0 > 0.3 {
		t.Fatalf("window drifted at equilibrium: %v -> %v", w0, st.w)
	}
}

func TestBacksOffOnStandingQueue(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	T := 25 * sim.Microsecond
	bdp := sim.BDPBytes(100*sim.Gbps, T)
	drive(s, 200, 1.0, 3*bdp, 6*sim.Microsecond)
	if r := s.Rate(); r > 12*sim.Gbps {
		t.Fatalf("no back-off with standing queue: %v", r)
	}
}

func TestGrowsOnIdleLink(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	st := s.(*sender)
	st.w = st.w / 20
	drive(s, 400, 0.05, 0, 6*sim.Microsecond)
	if r := s.Rate(); r < 5*sim.Gbps {
		t.Fatalf("no growth on idle link: %v", r)
	}
}

func TestWindowBounded(t *testing.T) {
	s := New(DefaultParams())(flowInfo()).(*sender)
	drive(s, 500, 0.0, 0, 6*sim.Microsecond) // zero current → no division blowup
	if s.w > s.maxW || s.w < s.minW {
		t.Fatalf("window out of bounds: %v not in [%v, %v]", s.w, s.minW, s.maxW)
	}
}

func TestPathChangeReprimes(t *testing.T) {
	s := New(DefaultParams())(flowInfo()).(*sender)
	h1 := pkt.INTHop{Node: 1, TS: 0, Band: 100 * sim.Gbps}
	h2 := pkt.INTHop{Node: 2, TS: sim.Microsecond, Band: 100 * sim.Gbps}
	s.OnAck(0, ackWithHop(h1))
	w0 := s.w
	s.OnAck(sim.Microsecond, ackWithHop(h2)) // different node: prime only
	if s.w != w0 {
		t.Fatal("window moved on path change sample")
	}
}

func TestIgnoresCNP(t *testing.T) {
	s := New(DefaultParams())(flowInfo())
	r := s.Rate()
	s.OnCNP(0)
	s.OnSwitchINT(0, &pkt.Packet{})
	if s.Rate() != r {
		t.Fatal("PowerTCP must ignore CNP/SwitchINT")
	}
}
