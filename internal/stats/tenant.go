package stats

import (
	"fmt"
	"strings"

	"mlcc/internal/sim"
)

// TenantSet partitions FCT samples by tenant (workload-component tag) and
// summarizes each partition independently: per-tenant FCT percentiles,
// completed-byte throughput and a Jain fairness index across tenants. A
// tenant here is any named traffic source sharing the fabric — a
// multi-tenant workload.Spec, a collective, an incast — so a blackout that
// aborts one tenant's flows can never leak into another tenant's
// distribution: aborted samples stay in their own tenant's collector and are
// excluded from FCT statistics and byte counts by construction.
//
// Fill it post-run in flow-ID order (the shard-safe collection pattern every
// harness uses); TenantSet itself is not goroutine-safe.
type TenantSet struct {
	order  []string
	byName map[string]*FCTCollector
}

// NewTenantSet returns an empty set.
func NewTenantSet() *TenantSet {
	return &TenantSet{byName: make(map[string]*FCTCollector)}
}

// Add records one sample under the tenant's name. Unnamed samples ("") are
// kept under the pseudo-tenant "untagged" so nothing is silently dropped.
func (ts *TenantSet) Add(tenant string, s FCTSample) {
	if tenant == "" {
		tenant = "untagged"
	}
	col, ok := ts.byName[tenant]
	if !ok {
		col = NewFCTCollector()
		ts.byName[tenant] = col
		ts.order = append(ts.order, tenant)
	}
	col.Add(s)
}

// Names lists tenants in first-add order — deterministic when samples are
// added in flow-ID order.
func (ts *TenantSet) Names() []string {
	return append([]string(nil), ts.order...)
}

// Collector returns the tenant's collector, or an empty one for unknown
// names (so lookups compose with Avg/Percentile without nil checks).
func (ts *TenantSet) Collector(tenant string) *FCTCollector {
	if col, ok := ts.byName[tenant]; ok {
		return col
	}
	return NewFCTCollector()
}

// CompletedBytes sums the sizes of the tenant's completed (non-aborted)
// flows.
func (ts *TenantSet) CompletedBytes(tenant string) int64 {
	var b int64
	for _, s := range ts.Collector(tenant).samples {
		if !s.Aborted {
			b += s.Size
		}
	}
	return b
}

// Aborted counts the tenant's aborted flows.
func (ts *TenantSet) Aborted(tenant string) int {
	return ts.Collector(tenant).Count(AbortedFlows)
}

// Completed counts the tenant's completed flows.
func (ts *TenantSet) Completed(tenant string) int {
	return ts.Collector(tenant).Count(Completed)
}

// Percentile returns the tenant's p-quantile FCT over completed flows only:
// aborted samples carry a meaningless zero FCT and must never deflate a
// tenant's distribution.
func (ts *TenantSet) Percentile(tenant string, p float64) (sim.Time, bool) {
	return ts.Collector(tenant).Percentile(Completed, p)
}

// AvgFCT returns the tenant's mean FCT over completed flows only.
func (ts *TenantSet) AvgFCT(tenant string) (sim.Time, bool) {
	return ts.Collector(tenant).Avg(Completed)
}

// Throughput returns the tenant's completed-byte goodput in bits per second
// over the given wall of simulated time.
func (ts *TenantSet) Throughput(tenant string, dur sim.Time) sim.Rate {
	if dur <= 0 {
		return 0
	}
	return sim.Rate(float64(ts.CompletedBytes(tenant)) * 8 / dur.Seconds())
}

// Fairness returns Jain's index over the tenants' completed-byte totals
// (duration-invariant: a common window divides out of the index). One tenant
// — or zero completed bytes everywhere — yields the degenerate values
// JainIndex defines (1 and 0 respectively).
func (ts *TenantSet) Fairness() float64 {
	rates := make([]float64, 0, len(ts.order))
	for _, name := range ts.order {
		rates = append(rates, float64(ts.CompletedBytes(name)))
	}
	return JainIndex(rates)
}

// String renders a one-line-per-tenant summary.
func (ts *TenantSet) String() string {
	var b strings.Builder
	for i, name := range ts.order {
		if i > 0 {
			b.WriteByte(' ')
		}
		avg, _ := ts.AvgFCT(name)
		fmt.Fprintf(&b, "%s{done=%d aborted=%d bytes=%d avg=%v}",
			name, ts.Completed(name), ts.Aborted(name), ts.CompletedBytes(name), avg)
	}
	return b.String()
}
