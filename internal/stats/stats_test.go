package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mlcc/internal/sim"
)

func sample(size int64, fct sim.Time, cross bool) FCTSample {
	return FCTSample{Size: size, FCT: fct, Cross: cross}
}

func TestAvgAndFilters(t *testing.T) {
	c := NewFCTCollector()
	c.Add(sample(1000, 10*sim.Microsecond, false))
	c.Add(sample(1000, 20*sim.Microsecond, false))
	c.Add(sample(1000, 90*sim.Microsecond, true))

	if avg, ok := c.Avg(Intra); !ok || avg != 15*sim.Microsecond {
		t.Fatalf("intra avg = %v ok=%v", avg, ok)
	}
	if avg, ok := c.Avg(Cross); !ok || avg != 90*sim.Microsecond {
		t.Fatalf("cross avg = %v ok=%v", avg, ok)
	}
	if avg, ok := c.Avg(nil); !ok || avg != 40*sim.Microsecond {
		t.Fatalf("overall avg = %v", avg)
	}
	if _, ok := c.Avg(SizeRange(1<<20, 2<<20)); ok {
		t.Fatal("empty selection reported ok")
	}
	if c.Count(And(Intra, SizeRange(0, 2000))) != 2 {
		t.Fatal("And filter broken")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	c := NewFCTCollector()
	for i := 1; i <= 100; i++ {
		c.Add(sample(100, sim.Time(i)*sim.Microsecond, false))
	}
	if p, _ := c.Percentile(nil, 0.5); p != 50*sim.Microsecond {
		t.Fatalf("p50 = %v", p)
	}
	if p, _ := c.Percentile(nil, 0.999); p != 100*sim.Microsecond {
		t.Fatalf("p99.9 = %v", p)
	}
	if p, _ := c.Percentile(nil, 0.01); p != sim.Microsecond {
		t.Fatalf("p1 = %v", p)
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(raw []uint32, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := (float64(pRaw%100) + 1) / 100
		c := NewFCTCollector()
		var vals []int64
		for _, v := range raw {
			c.Add(sample(1, sim.Time(v), false))
			vals = append(vals, int64(v))
		}
		got, ok := c.Percentile(nil, p)
		if !ok {
			return false
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		// Nearest-rank: value at ceil(p*n)-1.
		idx := int(math.Ceil(p*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		return int64(got) == vals[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileDomain pins Percentile's input validation: the documented
// domain is 0 < p <= 1, and anything else — including NaN, which slides
// through ordering comparisons — must return ok=false rather than silently
// clamping to the nearest rank.
func TestPercentileDomain(t *testing.T) {
	c := NewFCTCollector()
	for i := 1; i <= 10; i++ {
		c.Add(sample(1, sim.Time(i)*sim.Microsecond, false))
	}
	for _, p := range []float64{0, -0.1, 1.0000001, 2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if v, ok := c.Percentile(nil, p); ok {
			t.Errorf("Percentile(%v) = %v, ok=true; want ok=false", p, v)
		}
	}
	// Boundaries of the valid domain.
	if v, ok := c.Percentile(nil, 1); !ok || v != 10*sim.Microsecond {
		t.Errorf("Percentile(1) = %v, %v; want max sample", v, ok)
	}
	if v, ok := c.Percentile(nil, math.SmallestNonzeroFloat64); !ok || v != sim.Microsecond {
		t.Errorf("Percentile(ε) = %v, %v; want min sample", v, ok)
	}
	// An empty collector stays ok=false even for valid p.
	if _, ok := NewFCTCollector().Percentile(nil, 0.5); ok {
		t.Error("Percentile on empty collector returned ok=true")
	}
}

func TestSlowdown(t *testing.T) {
	s := sample(25000, 16*sim.Microsecond, false)
	// Ideal at 25 Gbps: 25000*8/25e9 = 8 µs → slowdown 2.
	if got := s.Slowdown(25 * sim.Gbps); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slowdown = %v", got)
	}
	c := NewFCTCollector()
	c.Add(s)
	if sd, ok := c.AvgSlowdown(nil, 25*sim.Gbps); !ok || math.Abs(sd-2) > 1e-9 {
		t.Fatalf("avg slowdown = %v", sd)
	}
}

func TestByBucket(t *testing.T) {
	c := NewFCTCollector()
	c.Add(sample(5<<10, 10*sim.Microsecond, true))
	c.Add(sample(50<<10, 100*sim.Microsecond, true))
	c.Add(sample(10<<20, 10*sim.Millisecond, true))
	rows := c.ByBucket(Cross, DefaultBuckets())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Count != 1 || rows[1].Count != 1 || rows[4].Count != 1 {
		t.Fatalf("bucket counts: %+v", rows)
	}
	if rows[2].Count != 0 || rows[3].Count != 0 {
		t.Fatal("phantom samples in empty buckets")
	}
	if rows[4].Avg != 10*sim.Millisecond {
		t.Fatalf("big-bucket avg = %v", rows[4].Avg)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{10, 10, 10, 10}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal rates: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog: %v", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all zero: %v", got)
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		rates := make([]float64, len(raw))
		nonzero := false
		for i, v := range raw {
			rates[i] = float64(v)
			if v != 0 {
				nonzero = true
			}
		}
		got := JainIndex(rates)
		if !nonzero {
			return got == 0
		}
		return got >= 1/float64(len(rates))-1e-12 && got <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesSummaries(t *testing.T) {
	var s Series
	s.Name = "q"
	s.Add(sim.Millisecond, 10)
	s.Add(2*sim.Millisecond, 30)
	s.Add(3*sim.Millisecond, 20)
	if s.Max() != 30 || s.Last() != 20 || s.Len() != 3 {
		t.Fatalf("summaries: max=%v last=%v len=%d", s.Max(), s.Last(), s.Len())
	}
	if got := s.AvgAfter(2 * sim.Millisecond); got != 25 {
		t.Fatalf("AvgAfter = %v", got)
	}
	if got := s.MaxAfter(3 * sim.Millisecond); got != 20 {
		t.Fatalf("MaxAfter = %v", got)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "# q\n") || !strings.Contains(csv, "1.0000,10.0000") {
		t.Fatalf("csv = %q", csv)
	}
}

// TestSeriesMaxAllNegative pins the fix for Max/MaxAfter on all-negative
// series: both must report the true (negative) maximum instead of a spurious
// zero from a zero-initialized accumulator.
func TestSeriesMaxAllNegative(t *testing.T) {
	var s Series
	s.Add(sim.Millisecond, -30)
	s.Add(2*sim.Millisecond, -10)
	s.Add(3*sim.Millisecond, -20)
	if got := s.Max(); got != -10 {
		t.Errorf("Max = %v, want -10", got)
	}
	if got := s.MaxAfter(3 * sim.Millisecond); got != -20 {
		t.Errorf("MaxAfter(3ms) = %v, want -20", got)
	}
	if got := s.MaxAfter(10 * sim.Millisecond); got != 0 {
		t.Errorf("MaxAfter past end = %v, want 0", got)
	}
	var empty Series
	if empty.Max() != 0 || empty.MaxAfter(0) != 0 {
		t.Error("empty series must report 0")
	}
}

func TestSamplerTicks(t *testing.T) {
	eng := sim.NewEngine()
	sampler := NewSampler(eng, sim.Millisecond, 10*sim.Millisecond)
	var gauge Series
	v := 0.0
	sampler.TrackGauge(&gauge, func() float64 { v++; return v })

	var rate Series
	bytes := int64(0)
	sampler.TrackRate(&rate, func() int64 { return bytes })
	eng.At(0, func() {}) // ensure engine has an initial event
	sampler.Start()
	// Grow the counter by 1 MB per ms → 8 Gbps.
	for i := 1; i <= 10; i++ {
		eng.At(sim.Time(i)*sim.Millisecond-sim.Nanosecond, func() { bytes += 1 << 20 })
	}
	eng.Run()
	if gauge.Len() != 10 {
		t.Fatalf("gauge samples = %d", gauge.Len())
	}
	// The first tick is one interval in; the last falls exactly on the stop
	// boundary (stop is a multiple of the interval), not one interval short.
	if gauge.T[0] != sim.Millisecond || gauge.T[9] != 10*sim.Millisecond {
		t.Fatalf("tick times: first=%v last=%v", gauge.T[0], gauge.T[9])
	}
	if rate.Len() != 10 {
		t.Fatalf("rate samples = %d", rate.Len())
	}
	want := float64(1<<20) * 8 / 0.001
	for i, r := range rate.V {
		if math.Abs(r-want)/want > 0.01 {
			t.Fatalf("rate[%d] = %v, want %v", i, r, want)
		}
	}
}

func TestSamplerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(sim.NewEngine(), 0, sim.Second)
}

func TestCollectorString(t *testing.T) {
	c := NewFCTCollector()
	c.Add(sample(1000, 10*sim.Microsecond, false))
	if got := c.String(); !strings.Contains(got, "flows=1") {
		t.Fatalf("String = %q", got)
	}
}

func TestFilterRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewFCTCollector()
	nIntra, nCross := 0, 0
	for i := 0; i < 1000; i++ {
		cross := rng.Intn(2) == 0
		if cross {
			nCross++
		} else {
			nIntra++
		}
		c.Add(sample(int64(rng.Intn(1<<20)+1), sim.Time(rng.Intn(1000)+1), cross))
	}
	if c.Count(Intra) != nIntra || c.Count(Cross) != nCross {
		t.Fatal("filter counts mismatch")
	}
	if c.Count(Intra)+c.Count(Cross) != c.Len() {
		t.Fatal("partition broken")
	}
}
