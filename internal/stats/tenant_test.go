package stats

import (
	"math"
	"testing"

	"mlcc/internal/sim"
)

func tsample(size int64, fct sim.Time) FCTSample {
	return FCTSample{Size: size, FCT: fct}
}

func TestTenantSetOrderAndLookup(t *testing.T) {
	ts := NewTenantSet()
	ts.Add("b", tsample(100, sim.Microsecond))
	ts.Add("a", tsample(100, sim.Microsecond))
	ts.Add("b", tsample(100, sim.Microsecond))
	ts.Add("", tsample(100, sim.Microsecond))

	got := ts.Names()
	want := []string{"b", "a", "untagged"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (first-add order)", got, want)
		}
	}
	if n := ts.Collector("b").Len(); n != 2 {
		t.Errorf("tenant b has %d samples, want 2", n)
	}
	// Unknown tenants resolve to an empty collector, not nil.
	if n := ts.Collector("ghost").Len(); n != 0 {
		t.Errorf("unknown tenant collector has %d samples", n)
	}
	if _, ok := ts.AvgFCT("ghost"); ok {
		t.Error("unknown tenant reported an average")
	}
}

// TestTenantSetAsymmetricMix is the two-tenant mix the scenario harness
// produces: a latency-sensitive tenant with many small fast flows next to a
// bulk tenant with few large slow ones. Summaries must stay per-tenant —
// pooled percentiles would let the bulk tail pollute the small tenant.
func TestTenantSetAsymmetricMix(t *testing.T) {
	ts := NewTenantSet()
	for i := 0; i < 99; i++ {
		ts.Add("small", tsample(1_000, 10*sim.Microsecond))
	}
	ts.Add("small", tsample(1_000, 20*sim.Microsecond)) // the p100 straggler
	for i := 0; i < 10; i++ {
		ts.Add("bulk", tsample(10_000_000, 5*sim.Millisecond))
	}

	if p99, ok := ts.Percentile("small", 0.99); !ok || p99 != 10*sim.Microsecond {
		t.Errorf("small p99 = %v ok=%v, want 10µs", p99, ok)
	}
	if p100, ok := ts.Percentile("small", 1.0); !ok || p100 != 20*sim.Microsecond {
		t.Errorf("small p100 = %v ok=%v, want 20µs", p100, ok)
	}
	if avg, ok := ts.AvgFCT("bulk"); !ok || avg != 5*sim.Millisecond {
		t.Errorf("bulk avg = %v ok=%v, want 5ms", avg, ok)
	}
	if got, want := ts.CompletedBytes("small"), int64(100*1_000); got != want {
		t.Errorf("small bytes = %d, want %d", got, want)
	}
	if got, want := ts.CompletedBytes("bulk"), int64(10*10_000_000); got != want {
		t.Errorf("bulk bytes = %d, want %d", got, want)
	}

	// Goodput over a 10 ms window: small moved 100 kB -> 80 Mbps.
	thr := ts.Throughput("small", 10*sim.Millisecond)
	if math.Abs(float64(thr)-80e6) > 1 {
		t.Errorf("small throughput = %v, want 80 Mbps", thr)
	}
	if ts.Throughput("small", 0) != 0 {
		t.Error("zero-duration throughput must be 0")
	}

	// Byte-share Jain index for (1e5, 1e8): heavily unfair, near 1/2 floor.
	fair := ts.Fairness()
	wantFair := JainIndex([]float64{100 * 1_000, 10 * 10_000_000})
	if math.Abs(fair-wantFair) > 1e-12 {
		t.Errorf("Fairness() = %v, want %v", fair, wantFair)
	}
	if fair > 0.51 {
		t.Errorf("Fairness() = %v for a 1000x byte skew, expected near 0.5", fair)
	}
}

func TestTenantSetFairnessEqualShares(t *testing.T) {
	ts := NewTenantSet()
	for _, name := range []string{"t0", "t1", "t2"} {
		ts.Add(name, tsample(5_000, sim.Microsecond))
	}
	if fair := ts.Fairness(); math.Abs(fair-1) > 1e-12 {
		t.Errorf("equal shares Fairness() = %v, want 1", fair)
	}
	// Degenerate cases defined by JainIndex.
	if fair := NewTenantSet().Fairness(); fair != 0 {
		t.Errorf("empty set Fairness() = %v, want 0", fair)
	}
	solo := NewTenantSet()
	solo.Add("only", tsample(1, sim.Microsecond))
	if fair := solo.Fairness(); fair != 1 {
		t.Errorf("single tenant Fairness() = %v, want 1", fair)
	}
}

// TestTenantSetAbortIsolation is the blackout scenario in miniature: one
// tenant's flows are aborted while a neighbor completes cleanly. The victim's
// aborts must not leak into the neighbor's distribution, and the victim's own
// FCT summary must exclude the aborted zero-FCT samples instead of deflating
// toward zero.
func TestTenantSetAbortIsolation(t *testing.T) {
	ts := NewTenantSet()
	for i := 0; i < 4; i++ {
		ts.Add("victim", FCTSample{Size: 2_000, Aborted: true})
	}
	ts.Add("victim", tsample(2_000, 50*sim.Microsecond))
	for i := 0; i < 3; i++ {
		ts.Add("neighbor", tsample(3_000, 15*sim.Microsecond))
	}

	if got := ts.Aborted("victim"); got != 4 {
		t.Errorf("victim aborts = %d, want 4", got)
	}
	if got := ts.Completed("victim"); got != 1 {
		t.Errorf("victim completed = %d, want 1", got)
	}
	if got := ts.Aborted("neighbor"); got != 0 {
		t.Errorf("neighbor aborts = %d, want 0 (abort leaked across tenants)", got)
	}
	// Victim's FCT stats cover only the one completed flow.
	if avg, ok := ts.AvgFCT("victim"); !ok || avg != 50*sim.Microsecond {
		t.Errorf("victim avg = %v ok=%v, want 50µs over completed flows only", avg, ok)
	}
	if p, ok := ts.Percentile("victim", 0.5); !ok || p != 50*sim.Microsecond {
		t.Errorf("victim p50 = %v ok=%v, want 50µs", p, ok)
	}
	// Aborted bytes never count toward goodput.
	if got, want := ts.CompletedBytes("victim"), int64(2_000); got != want {
		t.Errorf("victim completed bytes = %d, want %d", got, want)
	}
	if got, want := ts.CompletedBytes("neighbor"), int64(9_000); got != want {
		t.Errorf("neighbor bytes = %d, want %d", got, want)
	}
	// All-aborted tenant: no FCT, no bytes, still listed.
	dead := NewTenantSet()
	dead.Add("dead", FCTSample{Size: 1_000, Aborted: true})
	if _, ok := dead.AvgFCT("dead"); ok {
		t.Error("all-aborted tenant reported an FCT average")
	}
	if b := dead.CompletedBytes("dead"); b != 0 {
		t.Errorf("all-aborted tenant bytes = %d, want 0", b)
	}
}

func TestTenantSetString(t *testing.T) {
	ts := NewTenantSet()
	ts.Add("a", tsample(10, sim.Microsecond))
	ts.Add("b", FCTSample{Size: 20, Aborted: true})
	s := ts.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"a{done=1", "b{done=0 aborted=1"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
