// Package stats collects and summarizes simulation results: flow completion
// times (averages, percentiles, per-size buckets, slowdowns), periodic time
// series (throughput, queue length) and fairness indices — everything the
// figure-regeneration harness in internal/exp prints.
package stats

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"mlcc/internal/sim"
)

// FCTSample is one finished flow — completed, or aborted by the sender
// after its retransmission budget (Aborted set, FCT meaningless).
type FCTSample struct {
	Size    int64
	FCT     sim.Time
	Cross   bool
	Aborted bool
	Start   sim.Time
}

// Slowdown is the FCT normalized by the ideal transmission time at rate.
func (s FCTSample) Slowdown(rate sim.Rate) float64 {
	ideal := sim.TxTime(int(s.Size), rate)
	if ideal <= 0 {
		return 1
	}
	return float64(s.FCT) / float64(ideal)
}

// FCTCollector accumulates completed flows.
type FCTCollector struct {
	samples []FCTSample
}

// NewFCTCollector returns an empty collector.
func NewFCTCollector() *FCTCollector { return &FCTCollector{} }

// Add records one completed flow.
func (c *FCTCollector) Add(s FCTSample) { c.samples = append(c.samples, s) }

// Len reports recorded samples.
func (c *FCTCollector) Len() int { return len(c.samples) }

// Clone returns an independent copy: appending to either collector leaves
// the other untouched. Samples are plain values, so a slice copy suffices.
func (c *FCTCollector) Clone() *FCTCollector {
	return &FCTCollector{samples: append([]FCTSample(nil), c.samples...)}
}

// Filter selects samples; nil keeps everything.
type Filter func(FCTSample) bool

// Intra keeps intra-datacenter flows.
func Intra(s FCTSample) bool { return !s.Cross }

// Cross keeps cross-datacenter flows.
func Cross(s FCTSample) bool { return s.Cross }

// Completed keeps flows that actually finished (not aborted).
func Completed(s FCTSample) bool { return !s.Aborted }

// AbortedFlows keeps flows the sender gave up on.
func AbortedFlows(s FCTSample) bool { return s.Aborted }

// SizeRange returns a filter keeping flows with lo <= Size < hi.
func SizeRange(lo, hi int64) Filter {
	return func(s FCTSample) bool { return s.Size >= lo && s.Size < hi }
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(s FCTSample) bool {
		for _, f := range fs {
			if f != nil && !f(s) {
				return false
			}
		}
		return true
	}
}

// Select returns the FCTs passing the filter, unsorted.
func (c *FCTCollector) Select(f Filter) []sim.Time {
	var out []sim.Time
	for _, s := range c.samples {
		if f == nil || f(s) {
			out = append(out, s.FCT)
		}
	}
	return out
}

// Count reports samples passing the filter.
func (c *FCTCollector) Count(f Filter) int { return len(c.Select(f)) }

// Avg returns the mean FCT over the filter, or 0 with ok=false when empty.
func (c *FCTCollector) Avg(f Filter) (sim.Time, bool) {
	sel := c.Select(f)
	if len(sel) == 0 {
		return 0, false
	}
	var sum int64
	for _, v := range sel {
		sum += int64(v)
	}
	return sim.Time(sum / int64(len(sel))), true
}

// Percentile returns the p-quantile (0 < p <= 1) FCT over the filter using
// the nearest-rank method, or 0 with ok=false when the selection is empty or
// p is outside the domain. The negated comparison rejects NaN too — NaN
// passes every ordering test, and silently clamping it to a rank would
// report a quantile that was never asked for.
func (c *FCTCollector) Percentile(f Filter, p float64) (sim.Time, bool) {
	if !(p > 0 && p <= 1) {
		return 0, false
	}
	sel := c.Select(f)
	if len(sel) == 0 {
		return 0, false
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i] < sel[j] })
	idx := int(math.Ceil(p*float64(len(sel)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sel) {
		idx = len(sel) - 1
	}
	return sel[idx], true
}

// AvgSlowdown returns the mean slowdown normalized at rate.
func (c *FCTCollector) AvgSlowdown(f Filter, rate sim.Rate) (float64, bool) {
	var sum float64
	n := 0
	for _, s := range c.samples {
		if f == nil || f(s) {
			sum += s.Slowdown(rate)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Bucket is a half-open flow-size interval [Lo, Hi).
type Bucket struct {
	Lo, Hi int64
	Label  string
}

// DefaultBuckets mirror the size axis of the paper's Fig. 13/14 tail-FCT
// plots: the interesting boundary is 5 MB, where MLCC's cross-DC behaviour
// crosses over.
func DefaultBuckets() []Bucket {
	return []Bucket{
		{0, 10 << 10, "<10KB"},
		{10 << 10, 100 << 10, "10K-100K"},
		{100 << 10, 1 << 20, "100K-1M"},
		{1 << 20, 5 << 20, "1M-5M"},
		{5 << 20, 1 << 62, ">5M"},
	}
}

// BucketRow is one per-bucket summary line.
type BucketRow struct {
	Bucket Bucket
	Count  int
	Avg    sim.Time
	P999   sim.Time
}

// ByBucket summarizes FCT per size bucket under an extra filter.
func (c *FCTCollector) ByBucket(extra Filter, buckets []Bucket) []BucketRow {
	rows := make([]BucketRow, 0, len(buckets))
	for _, b := range buckets {
		f := And(extra, SizeRange(b.Lo, b.Hi))
		row := BucketRow{Bucket: b, Count: c.Count(f)}
		if row.Count > 0 {
			row.Avg, _ = c.Avg(f)
			row.P999, _ = c.Percentile(f, 0.999)
		}
		rows = append(rows, row)
	}
	return rows
}

// String renders a compact human-readable summary.
func (c *FCTCollector) String() string {
	avgI, _ := c.Avg(Intra)
	avgC, _ := c.Avg(Cross)
	return fmt.Sprintf("flows=%d intraAvg=%v crossAvg=%v", c.Len(), avgI, avgC)
}

// JainIndex computes Jain's fairness index over per-entity rates: 1.0 means
// perfectly fair, 1/n means one entity hogs everything.
func JainIndex(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, r := range rates {
		sum += r
		sumsq += r * r
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sumsq)
}

// WriteCSV dumps every sample as CSV:
// size_bytes,fct_us,cross,start_us,aborted.
func (c *FCTCollector) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "size_bytes,fct_us,cross,start_us,aborted"); err != nil {
		return err
	}
	for _, s := range c.samples {
		cross, aborted := 0, 0
		if s.Cross {
			cross = 1
		}
		if s.Aborted {
			aborted = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,%.3f,%d,%.3f,%d\n", s.Size, s.FCT.Micros(), cross, s.Start.Micros(), aborted); err != nil {
			return err
		}
	}
	return bw.Flush()
}
