package stats

import (
	"fmt"
	"strings"

	"mlcc/internal/sim"
)

// Series is a sampled time series (queue length in bytes, throughput in
// bits/s, …).
type Series struct {
	Name string
	T    []sim.Time
	V    []float64
}

// Add appends one point.
func (s *Series) Add(t sim.Time, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.T) }

// Max returns the maximum value, or 0 when empty. The maximum is taken over
// the actual values (initialized from the first element), so all-negative
// series report their true maximum rather than 0.
func (s *Series) Max() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Last returns the final value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// AvgAfter averages values with timestamps >= t (steady-state summaries).
func (s *Series) AvgAfter(t sim.Time) float64 {
	var sum float64
	n := 0
	for i, ts := range s.T {
		if ts >= t {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxAfter returns the maximum value with timestamps >= t, or 0 when no
// sample qualifies. Like Max it is initialized from the first qualifying
// element, so all-negative tails are reported correctly.
func (s *Series) MaxAfter(t sim.Time) float64 {
	m, found := 0.0, false
	for i, ts := range s.T {
		if ts < t {
			continue
		}
		if !found || s.V[i] > m {
			m = s.V[i]
			found = true
		}
	}
	return m
}

// CSV renders "time_ms,value" lines for external plotting.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i := range s.T {
		fmt.Fprintf(&b, "%.4f,%.4f\n", s.T[i].Millis(), s.V[i])
	}
	return b.String()
}

// Sampler drives periodic sampling callbacks on a simulation engine.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time
	stop     sim.Time
	fns      []func(now sim.Time)
}

// NewSampler creates a sampler ticking every interval until stop.
func NewSampler(eng *sim.Engine, interval, stop sim.Time) *Sampler {
	if interval <= 0 {
		panic("stats: sampler interval must be positive")
	}
	return &Sampler{eng: eng, interval: interval, stop: stop}
}

// Observe registers a callback run on every tick.
func (s *Sampler) Observe(fn func(now sim.Time)) { s.fns = append(s.fns, fn) }

// TrackRate samples a monotone byte counter as a rate (bits/s) into series.
func (s *Sampler) TrackRate(series *Series, counter func() int64) {
	last := counter()
	s.Observe(func(now sim.Time) {
		cur := counter()
		rate := float64(cur-last) * 8 / s.interval.Seconds()
		last = cur
		series.Add(now, rate)
	})
}

// TrackGauge samples an instantaneous value into series.
func (s *Sampler) TrackGauge(series *Series, gauge func() float64) {
	s.Observe(func(now sim.Time) { series.Add(now, gauge()) })
}

// Start begins ticking (call after all Observe/Track registrations).
func (s *Sampler) Start() {
	var tick func()
	tick = func() {
		now := s.eng.Now()
		for _, fn := range s.fns {
			fn(now)
		}
		if now+s.interval <= s.stop {
			s.eng.After(s.interval, tick)
		}
	}
	s.eng.After(s.interval, tick)
}
