package core

import (
	"mlcc/internal/cc"
	"mlcc/internal/sim"
)

// DQMParams parameterizes the DCI-switch Queue Management algorithm
// (§3.3.1, Algorithm 2).
type DQMParams struct {
	Theta sim.Time // θ: time to transform the queuing delay from D_pre to D_t
	Dt    sim.Time // D_t: target queuing delay at the receiver-side DCI switch
	M     int      // m: R_credit smoothing history length
	Alpha float64  // α: token-bucket gain

	RTTc sim.Time // cross-datacenter base RTT (RTT_C)
	RTTd sim.Time // intra-datacenter base RTT (RTT_D)

	MTU     int      // bytes
	MaxRate sim.Rate // ceiling for R̄_DQM (receiver NIC line rate)
}

// DefaultDQMParams returns the paper's evaluation settings: θ=18 ms,
// D_t=1 ms, m=5, α=0.5. RTTc/RTTd/MTU/MaxRate are topology-dependent and
// filled in by the deployment (internal/dci via internal/topo).
func DefaultDQMParams() DQMParams {
	return DQMParams{
		Theta: 18 * sim.Millisecond,
		Dt:    sim.Millisecond,
		M:     5,
		Alpha: 0.5,
	}
}

// DQM implements the per-PFQ queue-management algorithm run by the
// receiver-side DCI switch. One instance manages one flow's virtual queue.
//
// Per credit round (one RTT_D, signalled by a fresh R_credit on an ACK) it
// predicts the enqueue rate over the next RTT_C from the R_DQM rates it
// previously advertised (Eq. 2), predicts the queue length (Eq. 3) and the
// queuing delay (Eq. 4), and derives the raw end-to-end rate R_DQM_i
// (Eq. 5). Per dequeued data packet it advances the token bucket (Eq. 6–7)
// and the dynamic window dw (Eq. 8). The advertised rate is the smoothed
// R̄_DQM = R_credit + dw·MTU/RTT_C (Eq. 9).
type DQM struct {
	p DQMParams
	n int // RTT_C / RTT_D (Eq. 1): R_DQM history length

	rdqmHist    []sim.Rate // ring of the last n R_DQM_i values
	rdqmIdx     int
	rcreditHist []sim.Rate // ring of the last m R_credit values
	rcredIdx    int

	rdqm    sim.Rate // latest raw R_DQM_i
	rcredit sim.Rate // latest R_credit
	token   float64
	dw      float64

	// Diagnostics.
	Rounds int64
}

// NewDQM builds a DQM controller; initRate seeds the histories (the PFQ
// initial rate, i.e. the sender's line rate).
func NewDQM(p DQMParams, initRate sim.Rate) *DQM {
	if p.RTTd <= 0 || p.RTTc <= 0 {
		panic("core: DQM requires positive RTTc and RTTd")
	}
	n := int(p.RTTc / p.RTTd)
	if n < 1 {
		n = 1
	}
	if p.M < 1 {
		p.M = 1
	}
	d := &DQM{
		p:           p,
		n:           n,
		rdqmHist:    make([]sim.Rate, n),
		rcreditHist: make([]sim.Rate, p.M),
		rdqm:        initRate,
		rcredit:     initRate,
	}
	for i := range d.rdqmHist {
		d.rdqmHist[i] = initRate
	}
	for i := range d.rcreditHist {
		d.rcreditHist[i] = initRate
	}
	return d
}

// N returns the pipe length n = RTT_C / RTT_D (Eq. 1).
func (d *DQM) N() int { return d.n }

// DW returns the current dynamic window (for tests).
func (d *DQM) DW() float64 { return d.dw }

// PredictedEnqueueRate returns R_pre_eq (Eq. 2): the average of the last n
// advertised R_DQM values, which become the enqueue rate one RTT_C later.
func (d *DQM) PredictedEnqueueRate() sim.Rate {
	var sum int64
	for _, r := range d.rdqmHist {
		sum += int64(r)
	}
	return sim.Rate(sum / int64(len(d.rdqmHist)))
}

// avgRCredit smooths the dequeue rate over the last m values (Eq. 4's
// denominator).
func (d *DQM) avgRCredit() sim.Rate {
	var sum int64
	for _, r := range d.rcreditHist {
		sum += int64(r)
	}
	return sim.Rate(sum / int64(len(d.rcreditHist)))
}

// OnCreditRound runs one DQM decision (Algorithm 2 lines 1–10): rcredit is
// the fresh dequeue rate published by the receiver; qlen is the current PFQ
// backlog Q_c in bytes. It returns the raw R_DQM_i.
func (d *DQM) OnCreditRound(rcredit sim.Rate, qlen int64) sim.Rate {
	d.Rounds++
	d.rcredit = rcredit
	d.rcreditHist[d.rcredIdx] = rcredit
	d.rcredIdx = (d.rcredIdx + 1) % len(d.rcreditHist)

	// Eq. 3: predicted queue after one RTT_C at current dequeue rate.
	preEq := d.PredictedEnqueueRate()
	qPre := float64(preEq-rcredit)/8*d.p.RTTc.Seconds() + float64(qlen)
	if qPre < 0 {
		qPre = 0
	}
	// Eq. 4: predicted queuing delay at the smoothed dequeue rate.
	avg := d.avgRCredit()
	if avg < cc.MinRate {
		avg = cc.MinRate
	}
	dPre := qPre * 8 / float64(avg) // seconds

	// Eq. 5: close the delay gap over θ.
	adjust := 1 - (dPre-d.p.Dt.Seconds())/d.p.Theta.Seconds()
	if adjust < 0 {
		adjust = 0
	}
	rdqm := sim.Rate(float64(rcredit) * adjust)
	rdqm = sim.ClampRate(rdqm, cc.MinRate, d.p.MaxRate)
	d.rdqm = rdqm
	d.rdqmHist[d.rdqmIdx] = rdqm
	d.rdqmIdx = (d.rdqmIdx + 1) % len(d.rdqmHist)
	return rdqm
}

// OnPacketOut advances the token bucket and dynamic window for one dequeued
// data packet (Eq. 6–8).
func (d *DQM) OnPacketOut() {
	ratio := 1.0
	if d.rcredit > 0 {
		ratio = float64(d.rdqm) / float64(d.rcredit)
	}
	inc := d.p.Alpha * ratio
	if inc > 1 {
		inc = 1
	}
	d.token += inc
	if d.token >= 1 {
		d.token -= 1
		d.dw++
	} else {
		d.dw--
	}
	// Anti-windup: dw walks R̄_DQM gradually from R_credit toward the raw
	// target R_DQM_i, never beyond it. Without this bound the per-packet
	// ±1 integration saturates at Gbps packet rates and R̄_DQM pegs at its
	// clamp regardless of θ, destroying Eq. 5's proportional control.
	step := float64(d.p.MTU) * 8 / d.p.RTTc.Seconds() // bits/s per dw unit
	gap := (float64(d.rdqm) - float64(d.rcredit)) / step
	lo, hi := gap, 0.0
	if gap > 0 {
		lo, hi = 0, gap
	}
	if d.dw < lo {
		d.dw = lo
	}
	if d.dw > hi {
		d.dw = hi
	}
}

// Smoothed returns R̄_DQM (Eq. 9), the rate stamped onto ACKs.
func (d *DQM) Smoothed() sim.Rate {
	step := float64(d.p.MTU) * 8 / d.p.RTTc.Seconds()
	r := sim.Rate(float64(d.rcredit) + d.dw*step)
	return sim.ClampRate(r, cc.MinRate, d.p.MaxRate)
}
