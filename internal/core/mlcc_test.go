package core

import (
	"testing"

	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

func crossFlow() cc.FlowInfo {
	return cc.FlowInfo{
		ID: 1, LinkRate: 25 * sim.Gbps, MTU: 1000,
		BaseRTT: 6 * sim.Millisecond,
		NearRTT: 23 * sim.Microsecond,
		FarRTT:  23 * sim.Microsecond,
		CrossDC: true,
	}
}

func intraFlow() cc.FlowInfo {
	f := crossFlow()
	f.BaseRTT = 25 * sim.Microsecond
	f.CrossDC = false
	return f
}

func TestSenderStartsAtLineRate(t *testing.T) {
	s := NewSender(DefaultParams())(crossFlow())
	if r := s.Rate(); r < 23*sim.Gbps || r > 25*sim.Gbps {
		t.Fatalf("initial rate = %v", r)
	}
}

func TestSenderEq10MinFusion(t *testing.T) {
	s := NewSender(DefaultParams())(crossFlow()).(*Sender)
	// R̄_DQM arrives via ACK and is below R_NS: it must bind.
	ack := &pkt.Packet{Kind: pkt.Ack, RDQM: 5 * sim.Gbps}
	s.OnAck(0, ack)
	if got := s.Rate(); got != 5*sim.Gbps {
		t.Fatalf("Rate = %v, want min(R_NS, R̄_DQM) = 5Gbps", got)
	}
	if s.DQMRate() != 5*sim.Gbps {
		t.Fatalf("DQMRate = %v", s.DQMRate())
	}
	// A zero RDQM field must not reset the stored value.
	s.OnAck(0, &pkt.Packet{Kind: pkt.Ack})
	if got := s.Rate(); got != 5*sim.Gbps {
		t.Fatalf("unset RDQM overwrote state: %v", got)
	}
}

func TestSenderNearSourceThrottles(t *testing.T) {
	s := NewSender(DefaultParams())(crossFlow()).(*Sender)
	T := 23 * sim.Microsecond
	band := 100 * sim.Gbps
	bdp := sim.BDPBytes(band, T)
	hop := pkt.INTHop{Node: 9, QLen: 2 * bdp, TxBytes: 0, TS: 0, Band: band}
	s.OnSwitchINT(0, &pkt.Packet{Kind: pkt.SwitchINT, Hops: []pkt.INTHop{hop}})
	for i := 1; i <= 100; i++ {
		hop.TS += T / 2
		hop.TxBytes += int64(float64(band) / 8 * (T / 2).Seconds())
		s.OnSwitchINT(hop.TS, &pkt.Packet{Kind: pkt.SwitchINT, Hops: []pkt.INTHop{hop}})
	}
	if r := s.NS(); r > 12*sim.Gbps {
		t.Fatalf("near-source loop did not throttle: R_NS = %v", r)
	}
	if s.Rate() != s.NS() {
		t.Fatalf("Rate %v != binding R_NS %v", s.Rate(), s.NS())
	}
}

func TestSenderIntraUsesAckINT(t *testing.T) {
	s := NewSender(DefaultParams())(intraFlow()).(*Sender)
	T := 25 * sim.Microsecond
	band := 25 * sim.Gbps
	bdp := sim.BDPBytes(band, T)
	hop := pkt.INTHop{Node: 3, QLen: 3 * bdp, TxBytes: 0, TS: 0, Band: band}
	seq := int64(0)
	s.OnAck(0, &pkt.Packet{Kind: pkt.Ack, Seq: seq, Hops: []pkt.INTHop{hop}})
	for i := 1; i <= 100; i++ {
		hop.TS += T / 2
		hop.TxBytes += int64(float64(band) / 8 * (T / 2).Seconds())
		seq += 1000
		s.OnAck(hop.TS, &pkt.Packet{Kind: pkt.Ack, Seq: seq, Hops: []pkt.INTHop{hop}})
	}
	if r := s.Rate(); r > 12*sim.Gbps {
		t.Fatalf("intra MLCC flow did not react to end-to-end INT: %v", r)
	}
	// Intra flows must ignore RDQM entirely.
	s.OnAck(0, &pkt.Packet{Kind: pkt.Ack, RDQM: sim.Gbps})
	if s.DQMRate() != 25*sim.Gbps {
		t.Fatal("intra flow consumed RDQM")
	}
}

func TestSenderCNPIsNoop(t *testing.T) {
	s := NewSender(DefaultParams())(crossFlow())
	r := s.Rate()
	s.OnCNP(0)
	if s.Rate() != r {
		t.Fatal("MLCC reacted to CNP")
	}
}

func TestReceiverNilForIntraFlows(t *testing.T) {
	r := NewReceiver(DefaultParams())(intraFlow())
	if r != nil {
		t.Fatal("intra flows need no receiver logic")
	}
}

func TestReceiverCreditAlgorithm(t *testing.T) {
	r := NewReceiver(DefaultParams())(crossFlow()).(*Receiver)
	mk := func(cd uint32) (*pkt.Packet, *pkt.Packet) {
		data := &pkt.Packet{Kind: pkt.Data, Size: 1000, CD: cd,
			Hops: []pkt.INTHop{
				{Node: 300, QLen: 0, Band: 100 * sim.Gbps},        // DCI PFQ hop
				{Node: 201, QLen: 0, TS: 0, Band: 100 * sim.Gbps}, // spine
				{Node: 101, QLen: 0, TS: 0, Band: 25 * sim.Gbps},  // leaf
			}}
		ack := &pkt.Packet{Kind: pkt.Ack}
		return data, ack
	}

	// First packet: CD=0 matches CR=0 → round completes, CR becomes 1.
	data, ack := mk(0)
	r.OnData(0, data, ack)
	if ack.CR != 1 {
		t.Fatalf("CR = %d, want 1", ack.CR)
	}
	if ack.RCredit == 0 {
		t.Fatal("round completion did not publish R_credit")
	}
	if r.Rounds() != 1 {
		t.Fatalf("rounds = %d", r.Rounds())
	}

	// Stale CD (still 0): no new round, CR echoed, no fresh R_credit.
	data, ack = mk(0)
	r.OnData(0, data, ack)
	if ack.CR != 1 || ack.RCredit != 0 {
		t.Fatalf("stale credit advanced the round: CR=%d RCredit=%v", ack.CR, ack.RCredit)
	}

	// DCI echoes CR=1 into CD: next match advances to 2.
	data, ack = mk(1)
	r.OnData(0, data, ack)
	if ack.CR != 2 || r.Rounds() != 2 {
		t.Fatalf("second round failed: CR=%d rounds=%d", ack.CR, r.Rounds())
	}
}

func TestReceiverExcludesDCIHopFromCredit(t *testing.T) {
	// A massive queue at the DCI hop (hops[0]) must NOT reduce R_credit:
	// the DCI queue is DQM's job; R_credit tracks the receiver-side DC.
	r := NewReceiver(DefaultParams())(crossFlow()).(*Receiver)
	T := 23 * sim.Microsecond
	mkData := func(ts sim.Time, tx int64, cd uint32) *pkt.Packet {
		return &pkt.Packet{Kind: pkt.Data, Size: 1000, CD: cd, Hops: []pkt.INTHop{
			{Node: 300, QLen: 100 << 20, TxBytes: tx, TS: ts, Band: 100 * sim.Gbps},
			{Node: 101, QLen: 0, TxBytes: tx / 2, TS: ts, Band: 25 * sim.Gbps},
		}}
	}
	cr := uint32(0)
	ts := sim.Time(0)
	tx := int64(0)
	for i := 0; i < 100; i++ {
		ack := &pkt.Packet{Kind: pkt.Ack}
		r.OnData(ts, mkData(ts, tx, cr), ack)
		cr = ack.CR
		ts += T / 2
		tx += int64(float64(25*sim.Gbps) / 8 * (T / 2).Seconds() / 2) // leaf at 50%
	}
	if got := r.RCredit(); got < 12*sim.Gbps {
		t.Fatalf("R_credit = %v: the DCI hop leaked into the credit loop", got)
	}
}
