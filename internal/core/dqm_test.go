package core

import (
	"math"
	"testing"
	"testing/quick"

	"mlcc/internal/cc"
	"mlcc/internal/sim"
)

func dqmParams() DQMParams {
	p := DefaultDQMParams()
	p.RTTc = 6 * sim.Millisecond
	p.RTTd = 24 * sim.Microsecond
	p.MTU = 1000
	p.MaxRate = 25 * sim.Gbps
	return p
}

func TestDQMPipeLength(t *testing.T) {
	d := NewDQM(dqmParams(), 25*sim.Gbps)
	// Eq. 1: n = RTT_C / RTT_D = 6ms / 24µs = 250.
	if d.N() != 250 {
		t.Fatalf("n = %d, want 250", d.N())
	}
}

func TestDQMRequiresRTTs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without RTTs")
		}
	}()
	NewDQM(DQMParams{MTU: 1000, MaxRate: sim.Gbps}, sim.Gbps)
}

func TestDQMPredictedEnqueueSeededAtInitRate(t *testing.T) {
	d := NewDQM(dqmParams(), 25*sim.Gbps)
	// Eq. 2 over a history seeded with the initial rate.
	if got := d.PredictedEnqueueRate(); got != 25*sim.Gbps {
		t.Fatalf("R_pre_eq = %v, want 25Gbps", got)
	}
}

func TestDQMReducesRateWhenDelayAboveTarget(t *testing.T) {
	d := NewDQM(dqmParams(), 25*sim.Gbps)
	// 12.5 Gbps dequeue, 15 MB backlog → delay ≈ 6.7 ms (paper Fig. 9
	// startup regime). Eq. 5 must cut well below R_credit.
	r := d.OnCreditRound(12500*sim.Mbps, 15<<20)
	if r >= 12500*sim.Mbps {
		t.Fatalf("R_DQM = %v, want < R_credit", r)
	}
	if r < cc.MinRate {
		t.Fatalf("R_DQM = %v below floor", r)
	}
}

func TestDQMKeepsRateWhenQueueEmpty(t *testing.T) {
	p := dqmParams()
	d := NewDQM(p, 12500*sim.Mbps)
	// Warm the history at the dequeue rate so R_pre_eq == R_credit.
	var r sim.Rate
	for i := 0; i < d.N()+5; i++ {
		r = d.OnCreditRound(12500*sim.Mbps, 0)
	}
	// Empty queue, delay 0 < D_t → Eq. 5 allows a slight increase.
	if r < 12500*sim.Mbps {
		t.Fatalf("R_DQM = %v, want >= R_credit with empty queue", r)
	}
	if r > p.MaxRate {
		t.Fatalf("R_DQM = %v above ceiling", r)
	}
}

func TestDQMEquilibriumNearTargetDelay(t *testing.T) {
	// Closed-loop toy model: sender rate = Smoothed(), PFQ drains at
	// R_credit; queue must settle near R_credit × D_t.
	p := dqmParams()
	d := NewDQM(p, 25*sim.Gbps)
	rcredit := 12500 * sim.Mbps
	queue := 20 << 20 // start far above target
	dt := p.RTTd.Seconds()
	sendRate := 25 * sim.Gbps
	// Senders react one RTT_C late: keep a delay line of advertised rates.
	lag := make([]sim.Rate, d.N())
	for i := range lag {
		lag[i] = sendRate
	}
	for round := 0; round < 40000; round++ {
		arrive := lag[round%len(lag)]
		queue += int(float64(arrive) / 8 * dt)
		drain := int(float64(rcredit) / 8 * dt)
		if drain > queue {
			drain = queue
		}
		queue -= drain
		d.OnCreditRound(rcredit, int64(queue))
		for k := 0; k < 12; k++ { // ≈ packets per RTT_D at 12.5G
			d.OnPacketOut()
		}
		lag[round%len(lag)] = d.Smoothed()
	}
	target := float64(rcredit) / 8 * p.Dt.Seconds() // bytes at D_t
	if float64(queue) > 3*target || float64(queue) < target/8 {
		t.Fatalf("steady queue %d bytes, want near R·D_t = %.0f", queue, target)
	}
}

func TestDQMTokenBucketBalancedAtParity(t *testing.T) {
	d := NewDQM(dqmParams(), 12500*sim.Mbps)
	// Warm history so rdqm == rcredit at zero queue... then check dw stays
	// bounded near zero at parity (ratio 1, α=0.5 → alternating pattern).
	for i := 0; i < 10; i++ {
		d.OnCreditRound(12500*sim.Mbps, 0)
	}
	for i := 0; i < 1000; i++ {
		d.OnPacketOut()
	}
	if math.Abs(d.DW()) > 100 {
		t.Fatalf("dw = %v drifted at parity", d.DW())
	}
}

func TestDQMSmoothedApproachesTarget(t *testing.T) {
	d := NewDQM(dqmParams(), 25*sim.Gbps)
	// Large queue → raw target well below R_credit.
	raw := d.OnCreditRound(12500*sim.Mbps, 40<<20)
	for i := 0; i < 100000; i++ {
		d.OnPacketOut()
	}
	got := d.Smoothed()
	// After many packets the smoothed rate must have walked down to raw.
	if diff := math.Abs(float64(got-raw)) / float64(raw); diff > 0.05 {
		t.Fatalf("Smoothed = %v, raw R_DQM = %v", got, raw)
	}
}

func TestDQMSmoothedNeverOvershootsTarget(t *testing.T) {
	f := func(qMB uint8, rG uint8) bool {
		d := NewDQM(dqmParams(), 25*sim.Gbps)
		rcredit := sim.Rate(int64(rG%25)+1) * sim.Gbps
		raw := d.OnCreditRound(rcredit, int64(qMB)<<20)
		for i := 0; i < 5000; i++ {
			d.OnPacketOut()
		}
		sm := d.Smoothed()
		lo, hi := raw, rcredit
		if lo > hi {
			lo, hi = hi, lo
		}
		return sm >= lo-sim.Rate(1) && sm <= hi+25*sim.Gbps/100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDQMHistoryRing(t *testing.T) {
	p := dqmParams()
	p.RTTc = 100 * sim.Microsecond
	p.RTTd = 25 * sim.Microsecond // n = 4
	d := NewDQM(p, 8*sim.Gbps)
	if d.N() != 4 {
		t.Fatalf("n = %d", d.N())
	}
	// Push 4 rounds at 4 Gbps with empty queue: prediction converges to
	// the advertised rates, not the init rate.
	for i := 0; i < 8; i++ {
		d.OnCreditRound(4*sim.Gbps, 0)
	}
	pre := d.PredictedEnqueueRate()
	if pre > 5*sim.Gbps || pre < 3*sim.Gbps {
		t.Fatalf("R_pre_eq = %v, want ≈4Gbps after ring wraps", pre)
	}
}

func TestDQMRoundsCounter(t *testing.T) {
	d := NewDQM(dqmParams(), sim.Gbps)
	for i := 0; i < 7; i++ {
		d.OnCreditRound(sim.Gbps, 0)
	}
	if d.Rounds != 7 {
		t.Fatalf("Rounds = %d", d.Rounds)
	}
}
