// Package core implements MLCC — Micro Loop Congestion Control — the
// contribution of "Efficient Cross-Datacenter Congestion Control with Fast
// Control Loops" (ICPP 2025).
//
// MLCC splits the long cross-datacenter control loop into three loops:
//
//   - Near-source loop (§3.2.1): the sender-side DCI switch reflects the INT
//     records accumulated inside the sender-side datacenter back to the
//     sender as Switch-INT frames; the sender derives a fair sender-side
//     rate R_NS from them (this package's Sender).
//   - Receiver-driven loop (§3.2.2, Algorithm 1): the receiver runs the
//     credit-driven algorithm against the per-flow queues (PFQ) at the
//     receiver-side DCI switch and publishes the PFQ dequeue rate R_credit
//     on ACKs (this package's Receiver).
//   - End-to-end loop (§3.3, Algorithm 2): the receiver-side DCI switch runs
//     the DQM queue-management algorithm and stamps the smoothed end-to-end
//     rate R̄_DQM onto ACKs (this package's DQM, wired up by internal/dci).
//
// The sender's final pacing rate is R_MLCC = min(R_NS, R̄_DQM) (Eq. 10).
// Intra-datacenter MLCC flows use the same INT fair-rate controller
// end-to-end — their RTT is already one datacenter RTT, so the loop is
// inherently "micro".
package core

import (
	"mlcc/internal/cc"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Params holds MLCC knobs. The control loops reuse the HPCC-style
// utilization estimator (η target, additive stages); the DQM knobs follow
// Table 1 and §4.1 of the paper.
type Params struct {
	Eta      float64 // target utilization of the micro-loop controllers
	MaxStage int     // additive-increase stages per controller update window

	DQM DQMParams

	// Ablation switches (not part of the paper's design; used by the
	// "ablation" experiment to quantify each loop's contribution).
	DisableNearSource bool // ignore Switch-INT: R_NS stays at line rate
	DisableDQM        bool // ignore R̄_DQM from ACKs
}

// DefaultParams returns the evaluation configuration from the paper
// (η=0.95, maxStage=5; θ=18 ms, D_t=1 ms, m=5, α=0.5).
func DefaultParams() Params {
	return Params{
		Eta:      0.95,
		MaxStage: 5,
		DQM:      DefaultDQMParams(),
	}
}

// NewSender returns the sender-side MLCC factory.
func NewSender(p Params) cc.SenderFactory {
	return func(f cc.FlowInfo) cc.Sender {
		s := &Sender{flow: f, rDQM: f.LinkRate, p: p}
		if f.CrossDC {
			t := f.NearRTT
			if t <= 0 {
				t = f.BaseRTT
			}
			s.ns = cc.NewWindowController(t, f.LinkRate, f.MTU, p.Eta, p.MaxStage)
		} else {
			s.ns = cc.NewWindowController(f.BaseRTT, f.LinkRate, f.MTU, p.Eta, p.MaxStage)
		}
		return s
	}
}

// Sender is the per-flow MLCC rate controller at the sending host.
type Sender struct {
	flow cc.FlowInfo
	p    Params

	ns      *cc.WindowController // near-source loop (cross) or end-to-end (intra)
	nsBytes int64                // monotone feedback byte counter for the controller

	rDQM sim.Rate // latest R̄_DQM from ACKs (cross-DC only)
}

// Rate implements cc.Sender: Eq. 10, R_MLCC = min(R_NS, R̄_DQM).
func (s *Sender) Rate() sim.Rate {
	r := s.ns.Rate()
	if s.flow.CrossDC && s.rDQM < r {
		r = s.rDQM
	}
	return sim.ClampRate(r, cc.MinRate, s.flow.LinkRate)
}

// NS returns the near-source component R_NS (for tests and tracing).
func (s *Sender) NS() sim.Rate { return s.ns.Rate() }

// DQMRate returns the latest end-to-end component R̄_DQM.
func (s *Sender) DQMRate() sim.Rate { return s.rDQM }

// OnSwitchINT feeds near-source INT (sender-side datacenter hops) reflected
// by the sender-side DCI switch into the R_NS controller.
func (s *Sender) OnSwitchINT(now sim.Time, p *pkt.Packet) {
	if s.p.DisableNearSource {
		return
	}
	s.nsBytes += int64(s.flow.MTU)
	s.ns.OnFeedback(p.Hops, s.nsBytes)
}

// OnAck consumes R̄_DQM for cross-DC flows; for intra-DC flows the echoed
// INT drives the end-to-end micro loop.
func (s *Sender) OnAck(now sim.Time, ack *pkt.Packet) {
	if s.flow.CrossDC {
		if ack.RDQM > 0 && !s.p.DisableDQM {
			s.rDQM = sim.ClampRate(ack.RDQM, cc.MinRate, s.flow.LinkRate)
		}
		return
	}
	if ack.Seq > s.nsBytes {
		s.nsBytes = ack.Seq
	}
	s.ns.OnFeedback(ack.Hops, s.nsBytes)
}

// OnCNP is a no-op: MLCC does not rely on ECN.
func (s *Sender) OnCNP(now sim.Time) {}

// NewReceiver returns the receiver-side factory implementing the
// credit-driven algorithm (Algorithm 1).
func NewReceiver(p Params) cc.ReceiverFactory {
	return func(f cc.FlowInfo) cc.Receiver {
		if !f.CrossDC {
			return nil // intra-DC flows need no receiver logic
		}
		t := f.FarRTT
		if t <= 0 {
			t = f.NearRTT
		}
		if t <= 0 {
			t = f.BaseRTT
		}
		return &Receiver{
			ctl: cc.NewWindowController(t, f.LinkRate, f.MTU, p.Eta, p.MaxStage),
		}
	}
}

// Receiver implements Algorithm 1 (credit-driven algorithm) at the receiving
// host. It tracks the credit C_R, matches it against the C_D stamped into
// data packets by the receiver-side DCI switch, and on every credit round
// (one intra-DC RTT) publishes a fresh PFQ dequeue rate R_credit computed
// from the receiver-side datacenter's INT records.
type Receiver struct {
	ctl *cc.WindowController

	cr      uint32
	acked   int64
	rounds  int64 // completed credit rounds (for tests)
	rcredit sim.Rate
}

// Rounds reports how many credit rounds have completed.
func (r *Receiver) Rounds() int64 { return r.rounds }

// RCredit reports the last published dequeue rate.
func (r *Receiver) RCredit() sim.Rate { return r.rcredit }

// OnData implements cc.Receiver. data.Hops[0] is the receiver-side DCI
// switch's own PFQ record (managed by DQM, excluded here); the remaining
// hops are the receiver-side datacenter switches whose congestion the credit
// loop controls.
func (r *Receiver) OnData(now sim.Time, data *pkt.Packet, ack *pkt.Packet) {
	r.acked += int64(data.Size)
	if len(data.Hops) > 1 {
		r.ctl.OnFeedback(data.Hops[1:], r.acked)
	}
	if data.CD == r.cr {
		// One datacenter RTT has elapsed since the DCI switch saw our last
		// credit: advance the credit and publish a fresh dequeue rate.
		r.cr++
		r.rounds++
		r.rcredit = r.ctl.Rate()
		ack.RCredit = r.rcredit
	}
	ack.CR = r.cr
}
