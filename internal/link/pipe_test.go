package link

import (
	"math/rand"
	"testing"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// TestPipeOrderingMixedSizes pushes many frames of random sizes through a
// long-delay link and checks in-order delivery with exact arrival spacing.
func TestPipeOrderingMixedSizes(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 3*sim.Millisecond)
	rng := rand.New(rand.NewSource(9))
	var sizes []int
	for i := 0; i < 500; i++ {
		size := 64 + rng.Intn(1400)
		sizes = append(sizes, size)
		src.push(a.Pool.NewData(1, 0, 1, int64(i), size))
	}
	a.Kick()
	eng.Run()
	if len(rx.got) != 500 {
		t.Fatalf("delivered %d", len(rx.got))
	}
	// In order, and arrival gap equals the serialization time of the NEXT
	// frame (store-and-forward at the sender).
	var expect sim.Time = 3 * sim.Millisecond
	for i, p := range rx.got {
		if p.Seq != int64(i) {
			t.Fatalf("out of order at %d: seq %d", i, p.Seq)
		}
		expect += sim.TxTime(sizes[i], 100*sim.Gbps)
		if rx.times[i] != expect {
			t.Fatalf("frame %d at %v, want %v", i, rx.times[i], expect)
		}
	}
}

// TestPipeHoldsBDP verifies that a long-haul link can hold far more than one
// frame in flight and the engine heap stays small (one event per port).
func TestPipeHoldsBDP(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 3*sim.Millisecond)
	// 3 ms at 100G = 37.5 MB in flight = 37500 MTU frames.
	const n = 37500
	for i := 0; i < n; i++ {
		src.push(a.Pool.NewData(1, 0, 1, int64(i), 1000))
	}
	a.Kick()
	// After 3 ms simulated, almost everything is airborne; the pending
	// event count must be O(1), not O(n).
	eng.RunUntil(3 * sim.Millisecond)
	if pending := eng.Pending(); pending > 64 {
		t.Fatalf("pending events = %d; pipe is not coalescing", pending)
	}
	eng.Run()
	if len(rx.got) != n {
		t.Fatalf("delivered %d of %d", len(rx.got), n)
	}
}

// TestPauseDoesNotOvertakeData: a PFC frame sent while data is in flight
// must not arrive before data already on the wire.
func TestPauseDoesNotOvertakeData(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, sim.Millisecond)
	b := a.Peer()
	_ = src
	// b sends data toward a...
	bsrc := &fifoSource{}
	b.SetSource(bsrc)
	for i := 0; i < 10; i++ {
		bsrc.push(b.Pool.NewData(1, 1, 0, int64(i), 1000))
	}
	b.Kick()
	// ...and then a pause: it must take effect only after those frames
	// landed (the wire is FIFO).
	eng.RunUntil(100 * sim.Microsecond)
	b.SendPause(pkt.ClassData, true)
	eng.Run()
	// All ten data frames must have landed at a's owner before the pause
	// takes effect at a (FIFO wire: the pause was sent last).
	aSink := a.Owner.(*sink)
	if len(aSink.got) != 10 {
		t.Fatalf("a received %d data frames", len(aSink.got))
	}
	if !a.Paused(pkt.ClassData) {
		t.Fatal("pause lost")
	}
	_ = rx
}

// TestPipeCompaction exercises the head-compaction path with a sustained
// stream much longer than the compaction threshold.
func TestPipeCompaction(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 10*sim.Microsecond)
	const n = 20000
	for i := 0; i < n; i++ {
		src.push(a.Pool.NewData(1, 0, 1, int64(i), 300))
	}
	a.Kick()
	eng.Run()
	if len(rx.got) != n {
		t.Fatalf("delivered %d", len(rx.got))
	}
	for i, p := range rx.got {
		if p.Seq != int64(i) {
			t.Fatalf("out of order after compaction at %d", i)
		}
	}
}
