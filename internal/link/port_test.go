package link

import (
	"math/rand"
	"testing"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// fifoSource is a minimal two-class source for tests: control first.
type fifoSource struct {
	q [pkt.NumClasses][]*pkt.Packet
}

func (s *fifoSource) push(p *pkt.Packet) { s.q[p.Pri] = append(s.q[p.Pri], p) }

func (s *fifoSource) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	for class := pkt.NumClasses - 1; class >= 0; class-- {
		if paused[class] || len(s.q[class]) == 0 {
			continue
		}
		p := s.q[class][0]
		s.q[class] = s.q[class][1:]
		return p
	}
	return nil
}

// sink records deliveries.
type sink struct {
	got   []*pkt.Packet
	times []sim.Time
	eng   *sim.Engine
}

func (s *sink) Receive(p *pkt.Packet, on *Port) {
	s.got = append(s.got, p)
	s.times = append(s.times, s.eng.Now())
}

func newPair(t *testing.T, eng *sim.Engine, rate sim.Rate, delay sim.Time) (*Port, *fifoSource, *sink) {
	t.Helper()
	pool := pkt.NewPool()
	rx := &sink{eng: eng}
	src := &fifoSource{}
	a := NewPort(eng, &sink{eng: eng}, 0, rate, delay, pool)
	b := NewPort(eng, rx, 0, rate, delay, pool)
	Connect(a, b)
	a.SetSource(src)
	b.SetSource(&fifoSource{})
	return a, src, rx
}

func TestPortDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 5*sim.Microsecond)
	pool := a.Pool
	src.push(pool.NewData(1, 0, 1, 0, 1000))
	a.Kick()
	eng.Run()
	if len(rx.got) != 1 {
		t.Fatalf("delivered %d", len(rx.got))
	}
	// 80ns serialization + 5us propagation.
	want := 80*sim.Nanosecond + 5*sim.Microsecond
	if rx.times[0] != want {
		t.Fatalf("arrival at %v, want %v", rx.times[0], want)
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 0)
	for i := 0; i < 3; i++ {
		src.push(a.Pool.NewData(1, 0, 1, int64(i)*1000, 1000))
	}
	a.Kick()
	eng.Run()
	if len(rx.got) != 3 {
		t.Fatalf("delivered %d", len(rx.got))
	}
	for i, ts := range rx.times {
		want := sim.Time(i+1) * 80 * sim.Nanosecond
		if ts != want {
			t.Fatalf("packet %d at %v, want %v", i, ts, want)
		}
	}
	if a.TxBytes != 3000 || a.TxPackets != 3 {
		t.Fatalf("tx counters: %d bytes %d pkts", a.TxBytes, a.TxPackets)
	}
}

func TestPortControlPriority(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 0)
	src.push(a.Pool.NewData(1, 0, 1, 0, 1000))
	src.push(a.Pool.NewData(1, 0, 1, 1000, 1000))
	src.push(a.Pool.NewControl(pkt.Ack, 1, 1, 0))
	a.Kick()
	eng.Run()
	if len(rx.got) != 3 {
		t.Fatalf("delivered %d", len(rx.got))
	}
	// First pull happens before the ACK is queued? No: all pushed before
	// Kick, so the control frame must be serialized first.
	if rx.got[0].Kind != pkt.Ack {
		t.Fatalf("first delivery = %v, want ACK", rx.got[0].Kind)
	}
}

func TestPortPauseResume(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, sim.Microsecond)
	b := a.Peer()

	src.push(a.Pool.NewData(1, 0, 1, 0, 1000))
	src.push(a.Pool.NewData(1, 0, 1, 1000, 1000))
	// Pause a's data class at t=0 via a PFC frame from b.
	b.SendPause(pkt.ClassData, true)
	eng.RunUntil(10 * sim.Microsecond)
	a.Kick()
	eng.RunUntil(20 * sim.Microsecond)
	if len(rx.got) != 0 {
		t.Fatalf("data flowed while paused: %d", len(rx.got))
	}
	if !a.Paused(pkt.ClassData) {
		t.Fatal("a not paused")
	}
	if a.PauseRx != 1 {
		t.Fatalf("PauseRx = %d", a.PauseRx)
	}
	// Control class still flows while data is paused.
	src.push(a.Pool.NewControl(pkt.Ack, 1, 1, 0))
	a.Kick()
	eng.RunUntil(30 * sim.Microsecond)
	if len(rx.got) != 1 || rx.got[0].Kind != pkt.Ack {
		t.Fatalf("control did not bypass pause: %v", rx.got)
	}
	// Resume releases the queue.
	b.SendPause(pkt.ClassData, false)
	eng.Run()
	if len(rx.got) != 3 {
		t.Fatalf("after resume delivered %d, want 3", len(rx.got))
	}
	if a.PausedTotal <= 0 {
		t.Fatal("PausedTotal not accumulated")
	}
}

func TestPortMidFrameNotInterrupted(t *testing.T) {
	eng := sim.NewEngine()
	// Slow link so the frame takes 8us to serialize.
	a, src, rx := newPair(t, eng, sim.Gbps, 0)
	b := a.Peer()
	src.push(a.Pool.NewData(1, 0, 1, 0, 1000))
	a.Kick()
	// Pause arrives mid-frame: the in-flight frame must still complete.
	eng.RunUntil(sim.Microsecond)
	b.SendPause(pkt.ClassData, true)
	eng.RunUntil(100 * sim.Microsecond)
	if len(rx.got) != 1 {
		t.Fatalf("in-flight frame dropped by pause: %d", len(rx.got))
	}
}

func TestPortRateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-rate port")
		}
	}()
	NewPort(sim.NewEngine(), nil, 0, 0, 0, pkt.NewPool())
}

func TestPortKickWhileUnconnected(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, nil, 0, sim.Gbps, 0, pkt.NewPool())
	p.Kick() // no source, no peer: must not panic
	p.SendPause(pkt.ClassData, true)
	eng.Run()
}

func TestPortSetDownFlushesWire(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 5*sim.Microsecond)
	b := a.Peer()
	for i := 0; i < 3; i++ {
		src.push(a.Pool.NewData(1, 0, 1, int64(i)*1000, 1000))
	}
	a.Kick()
	// At 200ns frames 0,1 are on the wire (serialized at 80/160ns), frame 2
	// is mid-serialization (completes at 240ns).
	eng.RunUntil(200 * sim.Nanosecond)
	a.SetDown(true)
	if !a.Down() {
		t.Fatal("port not down")
	}
	// Cut-at-delivery: the wire is not purged at the cut — the in-flight
	// frames keep their arrival events and are destroyed at the receiving
	// port when they land with a stale epoch. This keeps the event
	// schedule identical between single-engine and sharded builds.
	if a.FaultDrops != 0 || b.CutDrops != 0 {
		t.Fatalf("cut destroyed frames early: FaultDrops=%d CutDrops=%d", a.FaultDrops, b.CutDrops)
	}
	// The mid-serialization frame dies at the transmitter when its
	// serialization completes; the two wire frames die on arrival at b.
	eng.RunUntil(10 * sim.Microsecond)
	if a.FaultDrops != 1 {
		t.Fatalf("mid-serialization frame not cut: FaultDrops = %d, want 1", a.FaultDrops)
	}
	if b.CutDrops != 2 {
		t.Fatalf("in-flight frames not destroyed at delivery: CutDrops = %d, want 2", b.CutDrops)
	}
	if len(rx.got) != 0 {
		t.Fatalf("frames crossed a down link: %d", len(rx.got))
	}
	// MAC-injected PFC offered to a down port is destroyed, not queued.
	a.SendPause(pkt.ClassData, true)
	if a.FaultDrops != 2 {
		t.Fatalf("PFC frame survived the down port: FaultDrops = %d, want 2", a.FaultDrops)
	}
	// Link-up kicks the transmitter and traffic resumes.
	src.push(a.Pool.NewData(1, 0, 1, 3000, 1000))
	a.SetDown(false)
	eng.Run()
	if len(rx.got) != 1 {
		t.Fatalf("after link-up delivered %d, want 1", len(rx.got))
	}
}

func TestPortSetDownClearsPauseState(t *testing.T) {
	eng := sim.NewEngine()
	a, _, _ := newPair(t, eng, 100*sim.Gbps, 0)
	b := a.Peer()
	b.SendPause(pkt.ClassData, true)
	eng.RunUntil(10 * sim.Microsecond)
	if !a.Paused(pkt.ClassData) {
		t.Fatal("pause frame did not arrive")
	}
	open := a.PausedTotalAt(eng.Now())
	if open <= 0 {
		t.Fatal("open pause interval not visible in PausedTotalAt")
	}
	if a.PausedTotal != 0 {
		t.Fatalf("PausedTotal = %v before any resume, want 0", a.PausedTotal)
	}
	// Downing the link reinitializes the MAC: pause state clears and the
	// open interval folds into PausedTotal so no paused time is lost.
	a.SetDown(true)
	if a.Paused(pkt.ClassData) {
		t.Fatal("pause state survived link-down")
	}
	if a.PausedTotal != open {
		t.Fatalf("open pause interval lost at shutdown: PausedTotal = %v, want %v", a.PausedTotal, open)
	}
	if a.PausedTotalAt(eng.Now()) != open {
		t.Fatalf("PausedTotalAt double-counts after fold: %v", a.PausedTotalAt(eng.Now()))
	}
}

func TestPortPausedTotalAtOpenInterval(t *testing.T) {
	eng := sim.NewEngine()
	a, _, _ := newPair(t, eng, 100*sim.Gbps, 0)
	b := a.Peer()
	b.SendPause(pkt.ClassData, true)
	eng.RunUntil(2 * sim.Microsecond)
	since := a.PausedSince
	// Pause still open at "simulation end": PausedTotal alone misses it.
	if got, want := a.PausedTotalAt(eng.Now()), eng.Now()-since; got != want {
		t.Fatalf("PausedTotalAt = %v, want %v", got, want)
	}
	b.SendPause(pkt.ClassData, false)
	eng.Run()
	// After resume the two agree.
	if a.PausedTotalAt(eng.Now()) != a.PausedTotal {
		t.Fatalf("closed interval: PausedTotalAt %v != PausedTotal %v",
			a.PausedTotalAt(eng.Now()), a.PausedTotal)
	}
}

func TestPortImpairmentRateAndDelay(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 0)
	// Half rate + 1us extra propagation: 1000B now takes 160ns to serialize
	// and lands 1us later.
	a.SetImpairment(0.5, sim.Microsecond, 0, nil)
	src.push(a.Pool.NewData(1, 0, 1, 0, 1000))
	a.Kick()
	eng.Run()
	if len(rx.got) != 1 {
		t.Fatalf("delivered %d", len(rx.got))
	}
	want := 160*sim.Nanosecond + sim.Microsecond
	if rx.times[0] != want {
		t.Fatalf("degraded arrival at %v, want %v", rx.times[0], want)
	}
	// Restore: nominal timing again.
	a.SetImpairment(1, 0, 0, nil)
	src.push(a.Pool.NewData(1, 0, 1, 1000, 1000))
	t0 := eng.Now()
	a.Kick()
	eng.Run()
	if got, want := rx.times[1]-t0, 80*sim.Nanosecond; got != want {
		t.Fatalf("restored arrival after %v, want %v", got, want)
	}
}

func TestPortImpairmentJitterMonotone(t *testing.T) {
	eng := sim.NewEngine()
	a, src, rx := newPair(t, eng, 100*sim.Gbps, 0)
	a.SetImpairment(1, 0, 200*sim.Nanosecond, rand.New(rand.NewSource(3)))
	for i := 0; i < 50; i++ {
		src.push(a.Pool.NewData(1, 0, 1, int64(i)*1000, 1000))
	}
	a.Kick()
	eng.Run()
	if len(rx.got) != 50 {
		t.Fatalf("delivered %d, want 50", len(rx.got))
	}
	for i := 1; i < len(rx.times); i++ {
		if rx.times[i] < rx.times[i-1] {
			t.Fatalf("jitter reordered the wire: arrival %d at %v after %v",
				i, rx.times[i], rx.times[i-1])
		}
	}
	for i, seq := int64(0), int64(0); i < 50; i++ {
		if rx.got[i].Seq != seq {
			t.Fatalf("delivery order broken at %d: seq %d", i, rx.got[i].Seq)
		}
		seq += 1000
	}
}

func TestPortImpairmentValidation(t *testing.T) {
	eng := sim.NewEngine()
	a, _, _ := newPair(t, eng, 100*sim.Gbps, 0)
	for name, fn := range map[string]func(){
		"zero factor":        func() { a.SetImpairment(0, 0, 0, nil) },
		"factor above one":   func() { a.SetImpairment(1.5, 0, 0, nil) },
		"negative delay":     func() { a.SetImpairment(1, -sim.Microsecond, 0, nil) },
		"jitter without rng": func() { a.SetImpairment(1, 0, sim.Microsecond, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
