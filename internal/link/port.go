// Package link models full-duplex network links as pairs of ports. Each
// port serializes frames at line rate, delivers them after the link's
// propagation delay, and honours per-class PFC pause state.
//
// Ports use a pull model: a device registers a Source, and the port asks it
// for the next frame whenever the transmitter goes idle. Devices call Kick
// when new work arrives. This lets hosts (rate-paced QPs), switches (shared
// buffer queues) and DCI switches (per-flow queues with credit-controlled
// drain rates) share one transmission path.
package link

import (
	"fmt"
	"math/rand"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Endpoint consumes frames delivered by a port.
type Endpoint interface {
	// Receive is invoked when a frame fully arrives on port on.
	// The endpoint takes ownership of the packet.
	Receive(p *pkt.Packet, on *Port)
}

// Source supplies frames to transmit. Next must return nil when nothing is
// eligible; classes marked true in paused must not be dequeued.
type Source interface {
	Next(paused *[pkt.NumClasses]bool) *pkt.Packet
}

// Port is one direction-pair endpoint of a full-duplex link.
type Port struct {
	Eng   *sim.Engine
	Owner Endpoint
	Index int // port number within the owning device
	Rate  sim.Rate
	Delay sim.Time // propagation delay to the peer
	Pool  *pkt.Pool

	peer   *Port
	src    Source
	busy   bool
	paused [pkt.NumClasses]bool

	// txFrame is the frame currently serializing; txDone is its completion
	// callback, bound once at construction so transmitting a frame does not
	// allocate a closure per packet.
	txFrame *pkt.Packet
	txDone  func()

	// In-flight frames on the wire toward the peer. Arrival times are
	// monotone (serialization completes in order, propagation is constant),
	// so the pipe is a FIFO drained by a single scheduled event — keeping
	// the engine heap small even when megabytes are in flight on a
	// long-haul link. pipeArmed covers both a pending drain event and a
	// drain in progress, so launches from within the drain never double-arm.
	// drain is the bound drainPipe callback (one closure per port, not per
	// arm).
	pipe      []flight
	pipeHd    int
	pipeArmed bool
	drain     func()

	// Cross-shard mode (ConnectCross): the two ends of this link live on
	// different engines, so the sender must not schedule delivery events on
	// the peer's engine. Instead launch stages frames in the pipe (which
	// doubles as the outbound mailbox — same monotone FIFO, same lastAt
	// clamp, same SendPause tail semantics) without arming the drain, and
	// FlushCross moves them into the peer's inbox at each shard barrier. The
	// inbox is the receiving half: a monotone FIFO of inbound frames drained
	// by a single event on the receiver's own engine, firing at each frame's
	// exact arrival time — one firing per distinct arrival time, exactly as
	// the single-engine drain, so event counts (and digests) match.
	cross      bool
	inbox      []flight
	inboxHd    int
	inboxArmed bool
	inboxDrain func()

	// Fault-injection state, driven by internal/fault (see DESIGN.md,
	// "Fault model"). All of it covers the transmit direction only; taking
	// a full-duplex link down means calling SetDown on both ports. effRate
	// is the current line rate — Rate stays nominal because INT stamping
	// advertises configured, not degraded, capacity.
	down    bool
	effRate sim.Rate
	xDelay  sim.Time   // extra propagation delay while degraded
	jitter  sim.Time   // max uniform random extra delay per frame
	jrng    *rand.Rand // jitter stream (required when jitter > 0)
	lastAt  sim.Time   // last wire arrival time; keeps arrivals monotone under jitter
	faults  *FaultHooks

	// cutEpoch is bumped on every down-transition of this transmit
	// direction. Frames are stamped with the sender's epoch at launch and
	// checked at delivery: a stale stamp means the wire was cut while the
	// frame was in flight, so it is destroyed at the exact instant it would
	// have arrived. Destroying cut frames at their arrival times — instead
	// of purging the pipe at the cut — keeps the event schedule identical
	// between single-engine and sharded builds, where the receiving half of
	// a cross-shard wire drains on its own engine.
	cutEpoch uint32

	// auditDrop, when set, observes every frame the fault layer destroys on
	// this port just before it returns to the pool; corrupt distinguishes
	// Bernoulli corruption from admin-down discards. It is a separate slot
	// from FaultHooks.OnDrop so the conservation audit (internal/audit) can
	// watch every port while the fault injector owns only the managed ones.
	auditDrop func(p *pkt.Packet, corrupt bool)

	// Counters (exported for INT stamping and statistics).
	TxBytes     int64 // cumulative bytes fully serialized
	TxPackets   int64
	MacTx       int64 // MAC-injected frames (PFC pause/resume) put on the wire, bypassing TxPackets
	RxBytes     int64
	RxPackets   int64
	PauseRx     int64 // pause frames received (this port was throttled)
	PauseTx     int64 // pause frames sent from this port
	PausedSince sim.Time
	PausedTotal sim.Time // cumulative paused time on the data class
	FaultDrops  int64    // frames destroyed by the fault layer at this transmitter
	CutDrops    int64    // in-flight frames destroyed at arrival because the wire was cut (receiver side)
}

// DropReason classifies a frame destruction by the fault layer.
type DropReason uint8

// Drop reasons.
const (
	// DropCorrupt is a Bernoulli corruption at wire entry (checksum failure
	// modelled at the transmitter).
	DropCorrupt DropReason = iota
	// DropDown is a frame offered to — or completing serialization on — an
	// admin-down transmitter.
	DropDown
	// DropCut is a frame that was in flight when the wire was cut,
	// destroyed on the receiving port at the instant it would have arrived.
	DropCut
)

// FaultHooks let the fault layer (internal/fault) observe and perturb a
// port's transmit direction without the port knowing about plans or PRNGs.
type FaultHooks struct {
	// Corrupt, if set, is consulted for every data frame entering the wire;
	// returning true destroys the frame (modelling a checksum failure at
	// the receiver). Control and PFC frames are never offered: they are
	// assumed FEC-protected, which keeps lossy links from wedging PFC
	// state (see DESIGN.md, "Fault model").
	Corrupt func(*pkt.Packet) bool
	// OnDrop observes every frame the fault layer destroys on this port —
	// corruption, down-link discards and in-flight cuts alike — just before
	// it returns to the pool. DropCut fires on the receiving port; the
	// other reasons fire on the transmitter.
	OnDrop func(*pkt.Packet, DropReason)
}

// NewPort constructs an unconnected port. Call SetSource before any traffic
// can flow, and Connect to join two ports into a link.
func NewPort(eng *sim.Engine, owner Endpoint, index int, rate sim.Rate, delay sim.Time, pool *pkt.Pool) *Port {
	if rate <= 0 {
		panic(fmt.Sprintf("link: port %d with rate %v", index, rate))
	}
	p := &Port{Eng: eng, Owner: owner, Index: index, Rate: rate, Delay: delay, Pool: pool}
	p.effRate = rate
	p.txDone = p.finishTx
	p.drain = p.drainPipe
	return p
}

// SetFaultHooks attaches fault callbacks (nil detaches).
func (p *Port) SetFaultHooks(h *FaultHooks) { p.faults = h }

// SetAuditDrop attaches the conservation-audit drop observer (nil detaches).
func (p *Port) SetAuditDrop(fn func(p *pkt.Packet, corrupt bool)) { p.auditDrop = fn }

// InFlightFrames reports frames currently on the wire toward the peer
// (launched, not yet delivered) — the in-flight term of the per-link
// conservation equation. On a cross-shard link this spans both halves of the
// wire: frames staged in this port's outbound pipe awaiting a barrier flush
// plus frames parked in the peer's inbox awaiting their arrival time.
func (p *Port) InFlightFrames() int {
	n := len(p.pipe) - p.pipeHd
	if p.cross && p.peer != nil {
		n += len(p.peer.inbox) - p.peer.inboxHd
	}
	return n
}

// Down reports whether the transmit direction is administratively down.
func (p *Port) Down() bool { return p.down }

// SetDown administratively downs or restores the transmit direction.
// Downing cuts the wire: frames already in flight never reach the peer
// (they are destroyed on the receiving port at the instant they would have
// arrived — see cutEpoch), a frame mid-serialization is destroyed when it
// completes, and frames offered while down are silently discarded. PFC
// pause state is cleared (the MAC reinitializes on link-up) after folding
// any open pause interval into PausedTotal. Restoring kicks the
// transmitter.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if !down {
		p.Kick()
		return
	}
	if p.paused[pkt.ClassData] {
		p.PausedTotal += p.Eng.Now() - p.PausedSince
	}
	p.paused = [pkt.NumClasses]bool{}
	// Cut the wire: frames launched before this instant carry the old
	// epoch and die at delivery time. The pipe and its drain events are
	// untouched, so single-engine and sharded builds fire the exact same
	// event schedule through a cut.
	p.cutEpoch++
}

// SetImpairment degrades (or restores) the transmit direction at runtime:
// the line rate becomes rateFactor × Rate and every frame picks up
// extraDelay of propagation plus uniform random jitter in [0, jitter]
// drawn from rng. SetImpairment(1, 0, 0, nil) restores the nominal link.
// Jittered arrivals are clamped to stay monotone: links never reorder.
func (p *Port) SetImpairment(rateFactor float64, extraDelay, jitter sim.Time, rng *rand.Rand) {
	if rateFactor <= 0 || rateFactor > 1 {
		panic(fmt.Sprintf("link: impairment rate factor %v outside (0, 1]", rateFactor))
	}
	if extraDelay < 0 || jitter < 0 {
		panic(fmt.Sprintf("link: negative impairment delay (%v, %v)", extraDelay, jitter))
	}
	if jitter > 0 && rng == nil {
		panic("link: jitter impairment without an rng")
	}
	p.effRate = sim.Rate(float64(p.Rate) * rateFactor)
	if p.effRate <= 0 {
		p.effRate = 1
	}
	p.xDelay = extraDelay
	p.jitter = jitter
	p.jrng = rng
}

// faultDiscard destroys a frame at the transmitter on behalf of the fault
// layer: counted in FaultDrops, reported to the OnDrop and audit hooks, and
// returned to the pool.
func (p *Port) faultDiscard(frame *pkt.Packet, reason DropReason) {
	p.FaultDrops++
	if p.faults != nil && p.faults.OnDrop != nil {
		p.faults.OnDrop(frame, reason)
	}
	if p.auditDrop != nil {
		p.auditDrop(frame, reason == DropCorrupt)
	}
	p.Pool.Put(frame)
}

// cutDiscard destroys a frame arriving on a wire that was cut after its
// launch: counted in the receiving port's CutDrops (a separate counter from
// the transmitter-side FaultDrops, so each direction's conservation equation
// keeps its own terms), reported to this port's hooks, and returned to the
// pool.
func (p *Port) cutDiscard(frame *pkt.Packet) {
	p.CutDrops++
	if p.faults != nil && p.faults.OnDrop != nil {
		p.faults.OnDrop(frame, DropCut)
	}
	if p.auditDrop != nil {
		p.auditDrop(frame, false)
	}
	p.Pool.Put(frame)
}

// SetSource registers the frame supplier for this port.
func (p *Port) SetSource(s Source) { p.src = s }

// Connect joins a and b as the two ends of one link.
func Connect(a, b *Port) {
	a.peer = b
	b.peer = a
}

// ConnectCross joins a and b as the two ends of a cross-shard link: the
// ports live on different engines, launched frames are staged instead of
// scheduled, and FlushCross moves them to the receiving side at each shard
// barrier. Cross links support the full fault layer (admin-down, loss,
// impairment) provided the injector drives both directions at the same
// absolute times, which keeps each port's local cutEpoch a faithful mirror
// of its remote transmitter's (see internal/fault and DESIGN.md, "Sharded
// faults").
func ConnectCross(a, b *Port) {
	Connect(a, b)
	a.cross = true
	b.cross = true
	a.inboxDrain = a.drainInbox
	b.inboxDrain = b.drainInbox
}

// FlushCross moves every frame staged in this port's outbound pipe into the
// peer's inbox and arms the peer's inbox drain. Called at a shard barrier
// with both engines quiescent; every staged arrival time is strictly after
// the barrier (arrival ≥ launch + propagation > barrier − lookahead +
// lookahead), so the drain is always armed in the peer's future.
func (p *Port) FlushCross() {
	if !p.cross {
		return
	}
	if p.pipeHd == len(p.pipe) {
		p.pipe = p.pipe[:0]
		p.pipeHd = 0
		return
	}
	q := p.peer
	for i := p.pipeHd; i < len(p.pipe); i++ {
		q.inbox = append(q.inbox, p.pipe[i])
		p.pipe[i] = flight{}
	}
	p.pipe = p.pipe[:0]
	p.pipeHd = 0
	if !q.inboxArmed {
		q.inboxArmed = true
		q.Eng.At(q.inbox[q.inboxHd].at, q.inboxDrain)
	}
}

// drainInbox delivers every inbox frame whose arrival time has come and
// re-arms the single pending event for the next head — the receiving-side
// mirror of drainPipe.
func (p *Port) drainInbox() {
	now := p.Eng.Now()
	for p.inboxHd < len(p.inbox) && p.inbox[p.inboxHd].at <= now {
		f := p.inbox[p.inboxHd]
		p.inbox[p.inboxHd] = flight{}
		p.inboxHd++
		p.deliver(f)
	}
	if p.inboxHd == len(p.inbox) {
		p.inbox = p.inbox[:0]
		p.inboxHd = 0
		p.inboxArmed = false
		return
	}
	p.Eng.At(p.inbox[p.inboxHd].at, p.inboxDrain)
}

// Peer returns the other end of the link, or nil if unconnected.
func (p *Port) Peer() *Port { return p.peer }

// Cross reports whether this port is one end of a cross-shard link (the peer
// lives on another engine). Node-fault resolution uses this to decide which
// engine must own each end's state changes.
func (p *Port) Cross() bool { return p.cross }

// Busy reports whether the transmitter is mid-frame.
func (p *Port) Busy() bool { return p.busy }

// Paused reports whether the given class is PFC-paused.
func (p *Port) Paused(class int) bool { return p.paused[class] }

// Kick prompts the port to pull from its source if idle. Safe to call at any
// time, including re-entrantly from Source.Next via event callbacks.
func (p *Port) Kick() {
	if !p.busy {
		p.pullNext()
	}
}

func (p *Port) pullNext() {
	if p.src == nil || p.peer == nil || p.down {
		return
	}
	frame := p.src.Next(&p.paused)
	if frame == nil {
		return
	}
	p.busy = true
	p.txFrame = frame
	tx := sim.TxTime(frame.Size, p.effRate)
	p.TxBytes += int64(frame.Size)
	p.TxPackets++
	p.Eng.After(tx, p.txDone)
}

// finishTx completes the serialization of txFrame: the frame leaves the
// transmitter onto the wire and the port pulls its next frame. If the link
// went down mid-serialization the frame was cut on the wire.
func (p *Port) finishTx() {
	frame := p.txFrame
	p.txFrame = nil
	p.busy = false
	if p.down {
		p.faultDiscard(frame, DropDown)
		return
	}
	p.launch(frame, p.Eng.Now()+p.Delay)
	p.pullNext()
}

// flight is one frame in flight on the wire. epoch is the transmitter's
// cutEpoch at launch; a mismatch at delivery means the wire was cut while
// the frame was on it.
type flight struct {
	at    sim.Time
	p     *pkt.Packet
	epoch uint32
}

// launch places a frame on the wire, arriving at the peer at time at.
// Arrival times must be monotone, which serialization order guarantees on
// healthy links and the lastAt clamp enforces under jitter. The fault layer
// intercepts here: a down port discards everything offered (covering
// MAC-injected PFC frames too), and the corruption hook may destroy data
// frames entering the wire.
func (p *Port) launch(frame *pkt.Packet, at sim.Time) {
	if p.down {
		p.faultDiscard(frame, DropDown)
		return
	}
	if p.faults != nil && p.faults.Corrupt != nil && frame.Kind == pkt.Data && p.faults.Corrupt(frame) {
		p.faultDiscard(frame, DropCorrupt)
		return
	}
	if p.xDelay > 0 {
		at += p.xDelay
	}
	if p.jitter > 0 {
		at += sim.Time(p.jrng.Int63n(int64(p.jitter) + 1))
	}
	if at < p.lastAt {
		at = p.lastAt
	}
	p.lastAt = at
	p.pipe = append(p.pipe, flight{at: at, p: frame, epoch: p.cutEpoch})
	// Cross-shard links never arm the sender-side drain: the staged pipe is
	// the outbound mailbox, flushed to the peer's inbox at the next barrier.
	if !p.pipeArmed && !p.cross {
		p.pipeArmed = true
		p.Eng.At(at, p.drain)
	}
}

// drainPipe delivers every frame whose arrival time has come and re-arms the
// single pending event for the next head.
func (p *Port) drainPipe() {
	now := p.Eng.Now()
	for p.pipeHd < len(p.pipe) && p.pipe[p.pipeHd].at <= now {
		f := p.pipe[p.pipeHd]
		p.pipe[p.pipeHd] = flight{}
		p.pipeHd++
		p.peer.deliver(f)
	}
	if p.pipeHd == len(p.pipe) {
		p.pipe = p.pipe[:0]
		p.pipeHd = 0
		p.pipeArmed = false
		return
	}
	if p.pipeHd > 4096 && p.pipeHd*2 > len(p.pipe) {
		n := copy(p.pipe, p.pipe[p.pipeHd:])
		p.pipe = p.pipe[:n]
		p.pipeHd = 0
	}
	p.Eng.At(p.pipe[p.pipeHd].at, p.drain)
}

// wireEpoch returns the cut epoch governing frames arriving on this port.
// On a local link that is the peer transmitter's epoch directly. On a
// cross-shard link the peer lives on another engine, so the local epoch is
// read instead — a faithful mirror because the injector downs both
// directions of a managed link at identical absolute times, and scripted
// events (scheduled at build time, minimal insertion seq) order before any
// runtime-armed drain at the same timestamp on every engine.
func (p *Port) wireEpoch() uint32 {
	if p.cross {
		return p.cutEpoch
	}
	return p.peer.cutEpoch
}

// deliver hands an arriving frame to the owner, intercepting PFC frames:
// a Pause received on a port throttles that port's own transmitter, exactly
// as IEEE 802.1Qbb pauses the sender at the far end of the link. A frame
// whose launch epoch predates a wire cut is destroyed here, at its exact
// arrival time.
func (p *Port) deliver(f flight) {
	if f.epoch != p.wireEpoch() {
		p.cutDiscard(f.p)
		return
	}
	frame := f.p
	p.RxBytes += int64(frame.Size)
	p.RxPackets++
	switch frame.Kind {
	case pkt.Pause:
		p.PauseRx++
		p.setPaused(frame.PauseClass, true)
		p.Pool.Put(frame)
		return
	case pkt.Resume:
		p.setPaused(frame.PauseClass, false)
		p.Pool.Put(frame)
		return
	}
	p.Owner.Receive(frame, p)
}

func (p *Port) setPaused(class int, paused bool) {
	if class < 0 || class >= pkt.NumClasses {
		return
	}
	was := p.paused[class]
	p.paused[class] = paused
	if class == pkt.ClassData {
		if paused && !was {
			p.PausedSince = p.Eng.Now()
		} else if !paused && was {
			p.PausedTotal += p.Eng.Now() - p.PausedSince
		}
	}
	if !paused && was {
		p.Kick()
	}
}

// PausedTotalAt reports the cumulative data-class paused time as of now,
// folding in a still-open pause interval — PausedTotal alone misses a pause
// outstanding at simulation end (or at port shutdown).
func (p *Port) PausedTotalAt(now sim.Time) sim.Time {
	t := p.PausedTotal
	if p.paused[pkt.ClassData] {
		t += now - p.PausedSince
	}
	return t
}

// SendPause emits a PFC pause (or resume) frame for class on this port's
// reverse direction. The frame is injected directly at the transmitter —
// PFC frames are generated by the MAC and do not queue behind data.
func (p *Port) SendPause(class int, pause bool) {
	if p.peer == nil {
		return
	}
	kind := pkt.Resume
	if pause {
		kind = pkt.Pause
		p.PauseTx++
	}
	f := p.Pool.NewControl(kind, 0, 0, 0)
	f.PauseClass = class
	// Model MAC-level injection: serialization of the 64B frame at line
	// rate, then propagation. The frame shares the FIFO pipe, so it cannot
	// overtake frames already on the wire (links never reorder).
	tx := sim.TxTime(f.Size, p.effRate)
	at := p.Eng.Now() + tx + p.Delay
	if n := len(p.pipe); n > p.pipeHd && p.pipe[n-1].at > at {
		at = p.pipe[n-1].at
	}
	p.MacTx++ // bypasses TxPackets; the conservation audit counts it separately
	p.launch(f, at)
}
