// Package link models full-duplex network links as pairs of ports. Each
// port serializes frames at line rate, delivers them after the link's
// propagation delay, and honours per-class PFC pause state.
//
// Ports use a pull model: a device registers a Source, and the port asks it
// for the next frame whenever the transmitter goes idle. Devices call Kick
// when new work arrives. This lets hosts (rate-paced QPs), switches (shared
// buffer queues) and DCI switches (per-flow queues with credit-controlled
// drain rates) share one transmission path.
package link

import (
	"fmt"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Endpoint consumes frames delivered by a port.
type Endpoint interface {
	// Receive is invoked when a frame fully arrives on port on.
	// The endpoint takes ownership of the packet.
	Receive(p *pkt.Packet, on *Port)
}

// Source supplies frames to transmit. Next must return nil when nothing is
// eligible; classes marked true in paused must not be dequeued.
type Source interface {
	Next(paused *[pkt.NumClasses]bool) *pkt.Packet
}

// Port is one direction-pair endpoint of a full-duplex link.
type Port struct {
	Eng   *sim.Engine
	Owner Endpoint
	Index int // port number within the owning device
	Rate  sim.Rate
	Delay sim.Time // propagation delay to the peer
	Pool  *pkt.Pool

	peer   *Port
	src    Source
	busy   bool
	paused [pkt.NumClasses]bool

	// txFrame is the frame currently serializing; txDone is its completion
	// callback, bound once at construction so transmitting a frame does not
	// allocate a closure per packet.
	txFrame *pkt.Packet
	txDone  func()

	// In-flight frames on the wire toward the peer. Arrival times are
	// monotone (serialization completes in order, propagation is constant),
	// so the pipe is a FIFO drained by a single scheduled event — keeping
	// the engine heap small even when megabytes are in flight on a
	// long-haul link. pipeArmed covers both a pending drain event and a
	// drain in progress, so launches from within the drain never double-arm.
	// drain is the bound drainPipe callback (one closure per port, not per
	// arm).
	pipe      []flight
	pipeHd    int
	pipeArmed bool
	drain     func()

	// Counters (exported for INT stamping and statistics).
	TxBytes     int64 // cumulative bytes fully serialized
	TxPackets   int64
	RxBytes     int64
	RxPackets   int64
	PauseRx     int64 // pause frames received (this port was throttled)
	PauseTx     int64 // pause frames sent from this port
	PausedSince sim.Time
	PausedTotal sim.Time // cumulative paused time on the data class
}

// NewPort constructs an unconnected port. Call SetSource before any traffic
// can flow, and Connect to join two ports into a link.
func NewPort(eng *sim.Engine, owner Endpoint, index int, rate sim.Rate, delay sim.Time, pool *pkt.Pool) *Port {
	if rate <= 0 {
		panic(fmt.Sprintf("link: port %d with rate %v", index, rate))
	}
	p := &Port{Eng: eng, Owner: owner, Index: index, Rate: rate, Delay: delay, Pool: pool}
	p.txDone = p.finishTx
	p.drain = p.drainPipe
	return p
}

// SetSource registers the frame supplier for this port.
func (p *Port) SetSource(s Source) { p.src = s }

// Connect joins a and b as the two ends of one link.
func Connect(a, b *Port) {
	a.peer = b
	b.peer = a
}

// Peer returns the other end of the link, or nil if unconnected.
func (p *Port) Peer() *Port { return p.peer }

// Busy reports whether the transmitter is mid-frame.
func (p *Port) Busy() bool { return p.busy }

// Paused reports whether the given class is PFC-paused.
func (p *Port) Paused(class int) bool { return p.paused[class] }

// Kick prompts the port to pull from its source if idle. Safe to call at any
// time, including re-entrantly from Source.Next via event callbacks.
func (p *Port) Kick() {
	if !p.busy {
		p.pullNext()
	}
}

func (p *Port) pullNext() {
	if p.src == nil || p.peer == nil {
		return
	}
	frame := p.src.Next(&p.paused)
	if frame == nil {
		return
	}
	p.busy = true
	p.txFrame = frame
	tx := sim.TxTime(frame.Size, p.Rate)
	p.TxBytes += int64(frame.Size)
	p.TxPackets++
	p.Eng.After(tx, p.txDone)
}

// finishTx completes the serialization of txFrame: the frame leaves the
// transmitter onto the wire and the port pulls its next frame.
func (p *Port) finishTx() {
	frame := p.txFrame
	p.txFrame = nil
	p.busy = false
	p.launch(frame, p.Eng.Now()+p.Delay)
	p.pullNext()
}

// flight is one frame in flight on the wire.
type flight struct {
	at sim.Time
	p  *pkt.Packet
}

// launch places a frame on the wire, arriving at the peer at time at.
// Arrival times must be monotone, which serialization order guarantees.
func (p *Port) launch(frame *pkt.Packet, at sim.Time) {
	p.pipe = append(p.pipe, flight{at: at, p: frame})
	if !p.pipeArmed {
		p.pipeArmed = true
		p.Eng.At(at, p.drain)
	}
}

// drainPipe delivers every frame whose arrival time has come and re-arms the
// single pending event for the next head.
func (p *Port) drainPipe() {
	now := p.Eng.Now()
	for p.pipeHd < len(p.pipe) && p.pipe[p.pipeHd].at <= now {
		f := p.pipe[p.pipeHd]
		p.pipe[p.pipeHd] = flight{}
		p.pipeHd++
		p.peer.deliver(f.p)
	}
	if p.pipeHd == len(p.pipe) {
		p.pipe = p.pipe[:0]
		p.pipeHd = 0
		p.pipeArmed = false
		return
	}
	if p.pipeHd > 4096 && p.pipeHd*2 > len(p.pipe) {
		n := copy(p.pipe, p.pipe[p.pipeHd:])
		p.pipe = p.pipe[:n]
		p.pipeHd = 0
	}
	p.Eng.At(p.pipe[p.pipeHd].at, p.drain)
}

// deliver hands an arriving frame to the owner, intercepting PFC frames:
// a Pause received on a port throttles that port's own transmitter, exactly
// as IEEE 802.1Qbb pauses the sender at the far end of the link.
func (p *Port) deliver(frame *pkt.Packet) {
	p.RxBytes += int64(frame.Size)
	p.RxPackets++
	switch frame.Kind {
	case pkt.Pause:
		p.PauseRx++
		p.setPaused(frame.PauseClass, true)
		p.Pool.Put(frame)
		return
	case pkt.Resume:
		p.setPaused(frame.PauseClass, false)
		p.Pool.Put(frame)
		return
	}
	p.Owner.Receive(frame, p)
}

func (p *Port) setPaused(class int, paused bool) {
	if class < 0 || class >= pkt.NumClasses {
		return
	}
	was := p.paused[class]
	p.paused[class] = paused
	if class == pkt.ClassData {
		if paused && !was {
			p.PausedSince = p.Eng.Now()
		} else if !paused && was {
			p.PausedTotal += p.Eng.Now() - p.PausedSince
		}
	}
	if !paused && was {
		p.Kick()
	}
}

// SendPause emits a PFC pause (or resume) frame for class on this port's
// reverse direction. The frame is injected directly at the transmitter —
// PFC frames are generated by the MAC and do not queue behind data.
func (p *Port) SendPause(class int, pause bool) {
	if p.peer == nil {
		return
	}
	kind := pkt.Resume
	if pause {
		kind = pkt.Pause
		p.PauseTx++
	}
	f := p.Pool.NewControl(kind, 0, 0, 0)
	f.PauseClass = class
	// Model MAC-level injection: serialization of the 64B frame at line
	// rate, then propagation. The frame shares the FIFO pipe, so it cannot
	// overtake frames already on the wire (links never reorder).
	tx := sim.TxTime(f.Size, p.Rate)
	at := p.Eng.Now() + tx + p.Delay
	if n := len(p.pipe); n > p.pipeHd && p.pipe[n-1].at > at {
		at = p.pipe[n-1].at
	}
	p.launch(f, at)
}
