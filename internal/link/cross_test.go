package link

import (
	"testing"

	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// crossPair builds a cross-shard link: port a on ea, port b on eb, each with
// its own pool, mirroring newPair's wiring for the sharded case.
func crossPair(t *testing.T, ea, eb *sim.Engine, rate sim.Rate, delay sim.Time) (a, b *Port, srcA, srcB *fifoSource, rxA, rxB *sink) {
	t.Helper()
	rxA = &sink{eng: ea}
	rxB = &sink{eng: eb}
	srcA = &fifoSource{}
	srcB = &fifoSource{}
	a = NewPort(ea, rxA, 0, rate, delay, pkt.NewPool())
	b = NewPort(eb, rxB, 0, rate, delay, pkt.NewPool())
	ConnectCross(a, b)
	a.SetSource(srcA)
	b.SetSource(srcB)
	return
}

// TestCrossDeliveryMatchesSingleEngine is the core equivalence check for the
// mailbox machinery: the same frame schedule over a cross-shard link delivers
// at exactly the same times — and with exactly the same total event count —
// as over a plain single-engine link. Digest parity between shards=1 and
// shards=N rests on both properties.
func TestCrossDeliveryMatchesSingleEngine(t *testing.T) {
	const (
		rate  = 100 * sim.Gbps
		delay = 5 * sim.Microsecond
	)
	sizes := []int{1000, 64, 1500, 9000, 256, 700, 4096, 64}

	// Reference: both ends on one engine.
	ref := sim.NewEngine()
	a1, src1, rx1 := newPair(t, ref, rate, delay)
	for i, s := range sizes {
		src1.push(a1.Pool.NewData(1, 0, 1, int64(i), s))
	}
	a1.Kick()
	ref.Run()
	if len(rx1.got) != len(sizes) {
		t.Fatalf("reference delivered %d frames, want %d", len(rx1.got), len(sizes))
	}

	// Cross: ends on two engines, lookahead = the link delay, flush at every
	// barrier in fixed a→b order.
	ea, eb := sim.NewEngine(), sim.NewEngine()
	a2, b2, src2, _, _, rx2 := crossPair(t, ea, eb, rate, delay)
	for i, s := range sizes {
		src2.push(a2.Pool.NewData(1, 0, 1, int64(i), s))
	}
	a2.Kick()
	g := sim.NewShardGroup([]*sim.Engine{ea, eb}, delay, func(sim.Time) {
		a2.FlushCross()
		b2.FlushCross()
	})
	g.RunUntil(ref.Now() + 2*delay)

	if len(rx2.got) != len(rx1.got) {
		t.Fatalf("cross delivered %d frames, want %d", len(rx2.got), len(rx1.got))
	}
	for i := range rx1.times {
		if rx2.times[i] != rx1.times[i] {
			t.Fatalf("frame %d arrived at %v cross vs %v single-engine", i, rx2.times[i], rx1.times[i])
		}
		if rx2.got[i].Size != rx1.got[i].Size {
			t.Fatalf("frame %d size %d cross vs %d single-engine", i, rx2.got[i].Size, rx1.got[i].Size)
		}
	}
	// Event-count parity: the sender-side tx events match one-for-one, and
	// the inbox drain fires once per distinct arrival time exactly as the
	// single-engine pipe drain does.
	if got := ea.Fired() + eb.Fired(); got != ref.Fired() {
		t.Fatalf("cross run fired %d events, single-engine fired %d", got, ref.Fired())
	}
}

// TestCrossInFlightAccounting checks InFlightFrames spans the whole wire:
// staged in the sender's outbound pipe before the flush, parked in the
// receiver's inbox after it, and gone once delivered. The conservation
// audit's per-link balance depends on this.
func TestCrossInFlightAccounting(t *testing.T) {
	const (
		rate  = 100 * sim.Gbps
		delay = 10 * sim.Microsecond
	)
	ea, eb := sim.NewEngine(), sim.NewEngine()
	a, _, src, _, _, rxB := crossPair(t, ea, eb, rate, delay)
	src.push(a.Pool.NewData(1, 0, 1, 0, 1000))
	a.Kick()

	// Window 1 on the sender: tx completes at 80ns, the frame is staged.
	ea.RunUntil(delay)
	if got := a.InFlightFrames(); got != 1 {
		t.Fatalf("staged frame: InFlightFrames = %d, want 1", got)
	}
	a.FlushCross()
	if got := a.InFlightFrames(); got != 1 {
		t.Fatalf("flushed frame: InFlightFrames = %d, want 1", got)
	}
	// Arrival is 80ns + 10µs, just past the first barrier.
	eb.RunUntil(delay)
	if got := a.InFlightFrames(); got != 1 {
		t.Fatalf("frame still in flight: InFlightFrames = %d, want 1", got)
	}
	if len(rxB.got) != 0 {
		t.Fatal("frame delivered before its arrival time")
	}
	eb.RunUntil(2 * delay)
	if len(rxB.got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(rxB.got))
	}
	want := 80*sim.Nanosecond + delay
	if rxB.times[0] != want {
		t.Fatalf("arrival at %v, want %v", rxB.times[0], want)
	}
	if got := a.InFlightFrames(); got != 0 {
		t.Fatalf("delivered frame still counted: InFlightFrames = %d, want 0", got)
	}
	// Conservation across pools: the frame was drawn from a's pool and the
	// sink still holds it, so the sender pool has exactly one outstanding.
	if out := a.Pool.Outstanding(); out != 1 {
		t.Fatalf("sender pool outstanding %d, want 1", out)
	}
}

// TestCrossSendPause checks PFC crosses the shard boundary: a pause emitted
// on one end pauses the far transmitter after flush + propagation, and the
// matching resume restarts it.
func TestCrossSendPause(t *testing.T) {
	const (
		rate  = 100 * sim.Gbps
		delay = 10 * sim.Microsecond
	)
	ea, eb := sim.NewEngine(), sim.NewEngine()
	a, b, srcA, _, _, rxB := crossPair(t, ea, eb, rate, delay)

	// b pauses a's data class at t=0.
	b.SendPause(pkt.ClassData, true)
	b.FlushCross()
	ea.RunUntil(2 * delay)
	eb.RunUntil(2 * delay)
	if !a.Paused(pkt.ClassData) {
		t.Fatal("pause frame did not pause the cross peer")
	}
	if a.PauseRx != 1 {
		t.Fatalf("PauseRx = %d, want 1", a.PauseRx)
	}

	// A data frame offered while paused must not transmit.
	srcA.push(a.Pool.NewData(1, 0, 1, 0, 1000))
	a.Kick()
	ea.RunUntil(3 * delay)
	a.FlushCross()
	eb.RunUntil(3 * delay)
	if a.TxPackets != 0 {
		t.Fatalf("paused port transmitted %d data frames", a.TxPackets)
	}

	// Resume releases it; the frame flows after the next flush.
	b.SendPause(pkt.ClassData, false)
	b.FlushCross()
	ea.RunUntil(5 * delay)
	a.FlushCross()
	eb.RunUntil(7 * delay)
	if a.TxPackets != 1 {
		t.Fatalf("resumed port transmitted %d data frames, want 1", a.TxPackets)
	}
	if len(rxB.got) != 1 {
		t.Fatalf("delivered %d data frames after resume, want 1", len(rxB.got))
	}
}
