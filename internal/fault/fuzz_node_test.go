package fault

import (
	"bytes"
	"fmt"
	"testing"

	"mlcc/internal/sim"
)

// FuzzNodeFaultPlan drives node-event plans end to end: parse → Apply against
// a synthetic two-node topology → run the engine, and check the injector's
// contract on whatever the fuzzer concocts. Apply must reject (never panic
// on) unknown nodes and kind-mismatched actions; an accepted plan must fire
// every hook in non-decreasing time order and report per-action counters that
// match the plan exactly.
func FuzzNodeFaultPlan(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"at_us":1000,"node":"host0","action":"crash"},{"at_us":2000,"node":"host0","action":"restart"}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":500,"node":"sw0","action":"fail"},{"at_us":900,"node":"sw0","action":"recover"}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":3,"node":"host0","action":"fail"}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":3,"node":"ghost","action":"crash"}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":0,"node":"host0","action":"crash"},{"at_us":0,"node":"sw0","action":"recover"},{"at_us":0,"node":"host0","action":"crash"}]}`))
	f.Add([]byte(`{"seed":11,"nodes":[{"at_us":9.3e18,"node":"sw0","action":"fail"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(p.Events) > 0 || len(p.Loss) > 0 || len(p.Feedback) > 0 {
			return // this target owns the node surface; link/feedback plans have their own
		}
		eng := sim.NewEngine()
		type fire struct {
			at  sim.Time
			act NodeAction
		}
		var fired []fire
		resolver := func(name string) (*NodeHooks, error) {
			kind := NodeSwitch
			if name == "host0" {
				kind = NodeHost
			} else if name != "sw0" {
				return nil, fmt.Errorf("unknown node %q", name)
			}
			return &NodeHooks{
				ID:   1,
				Kind: kind,
				Engs: []*sim.Engine{eng},
				Apply: []func(NodeAction){func(act NodeAction) {
					fired = append(fired, fire{eng.Now(), act})
				}},
			}, nil
		}
		badLink := func(name string) (Link, error) { return Link{}, fmt.Errorf("no links here") }
		inj, err := Apply(p, badLink, resolver, []*sim.Engine{eng}, nil)
		if err != nil {
			return // unknown node or kind-mismatched action: rejected, not panicked
		}
		eng.Run()
		if len(fired) != len(p.Nodes) {
			t.Fatalf("%d hooks fired for %d plan events", len(fired), len(p.Nodes))
		}
		var want [4]int64
		for _, ev := range p.Nodes {
			want[ev.Action]++
		}
		got := [4]int64{
			HostCrash:     inj.NodeCrashes(),
			HostRestart:   inj.NodeRestarts(),
			SwitchFail:    inj.SwitchFails(),
			SwitchRecover: inj.SwitchRecovers(),
		}
		if got != want {
			t.Fatalf("injector counters %v do not match plan %v", got, want)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				t.Fatalf("hooks fired out of time order: %v after %v", fired[i].at, fired[i-1].at)
			}
		}
	})
}
