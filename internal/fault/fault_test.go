package fault

import (
	"strings"
	"sync"
	"testing"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// rig is a minimal one-link network: two connected ports with a pushable
// source on A and a delivery-recording sink on B.
type rig struct {
	eng  *sim.Engine
	pool *pkt.Pool
	a, b *link.Port
	src  *pushSource
	rx   *recSink
}

type pushSource struct{ q []*pkt.Packet }

func (s *pushSource) push(p *pkt.Packet) { s.q = append(s.q, p) }

func (s *pushSource) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	for i, p := range s.q {
		if paused[p.Pri] {
			continue
		}
		s.q = append(s.q[:i], s.q[i+1:]...)
		return p
	}
	return nil
}

type recSink struct {
	pool *pkt.Pool
	seqs []int64
	ctl  int
}

func (s *recSink) Receive(p *pkt.Packet, on *link.Port) {
	if p.Kind == pkt.Data {
		s.seqs = append(s.seqs, p.Seq)
	} else {
		s.ctl++
	}
	s.pool.Put(p)
}

func newRig(t *testing.T) *rig { return newRigDelay(t, 0) }

func newRigDelay(t *testing.T, delay sim.Time) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), pool: pkt.NewPool(), src: &pushSource{}}
	r.rx = &recSink{pool: r.pool}
	r.a = link.NewPort(r.eng, &recSink{pool: r.pool}, 0, 100*sim.Gbps, delay, r.pool)
	r.b = link.NewPort(r.eng, r.rx, 0, 100*sim.Gbps, delay, r.pool)
	link.Connect(r.a, r.b)
	r.a.SetSource(r.src)
	r.b.SetSource(&pushSource{})
	return r
}

func (r *rig) resolve(name string) (Link, error) {
	return Link{Name: name, A: r.a, B: r.b}, nil
}

// sendAt schedules n data frames (1000 B, consecutive seqs from seq0) at t.
func (r *rig) sendAt(t sim.Time, seq0 int64, n int) {
	r.eng.At(t, func() {
		for i := 0; i < n; i++ {
			r.src.push(r.pool.NewData(1, 0, 1, seq0+int64(i)*1000, 1000))
		}
		r.a.Kick()
	})
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := map[string]*Plan{
		"empty link in event":  {Events: []Event{{At: 1, Action: LinkDown}}},
		"negative event time":  {Events: []Event{{At: -1, Link: "l", Action: LinkDown}}},
		"unknown action":       {Events: []Event{{At: 1, Link: "l", Action: numActions}}},
		"rate factor above 1":  {Events: []Event{{At: 1, Link: "l", Action: Degrade, RateFactor: 1.5}}},
		"negative jitter":      {Events: []Event{{At: 1, Link: "l", Action: Degrade, Jitter: -1}}},
		"empty link in rule":   {Loss: []LossRule{{Prob: 0.1}}},
		"probability one":      {Loss: []LossRule{{Link: "l", Prob: 1}}},
		"negative probability": {Loss: []LossRule{{Link: "l", Prob: -0.1}}},
		"inverted window":      {Loss: []LossRule{{Link: "l", Prob: 0.1, Start: 2, End: 1}}},
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
	good := &Plan{
		Events: []Event{
			{At: 0, Link: "l", Action: LinkDown},
			{At: 1, Link: "l", Action: Degrade, RateFactor: 0.5, Jitter: 3},
		},
		Loss: []LossRule{{Link: "l", Prob: 0.5, Start: 1, End: 0}}, // End 0 = forever
	}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected a good plan: %v", err)
	}
}

func TestApplyEmptyPlanInstallsNothing(t *testing.T) {
	r := newRig(t)
	resolved := false
	spy := func(name string) (Link, error) { resolved = true; return r.resolve(name) }
	for _, plan := range []*Plan{nil, {}, {Seed: 9}} {
		inj, err := Apply(plan, spy, nil, []*sim.Engine{r.eng}, nil)
		if err != nil || inj != nil {
			t.Fatalf("Apply(%+v) = (%v, %v), want (nil, nil)", plan, inj, err)
		}
	}
	if resolved {
		t.Error("empty plan resolved a link")
	}
	// Nil injector accessors must be safe.
	var inj *Injector
	if inj.TotalDrops() != 0 || inj.DataDropped() != 0 || inj.Down("l") {
		t.Error("nil injector accessors not zero")
	}
}

func TestBernoulliLossWindow(t *testing.T) {
	r := newRig(t)
	const n = 1000
	plan := &Plan{
		Seed: 11,
		Loss: []LossRule{{Link: "wan", Prob: 0.5, Start: 100 * sim.Microsecond, End: sim.Second}},
	}
	inj, err := Apply(plan, r.resolve, nil, []*sim.Engine{r.eng}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.sendAt(0, 0, 200)                     // before the window: all survive
	r.sendAt(100*sim.Microsecond, 1<<20, n) // inside: ~half die
	r.eng.Run()

	if got := len(r.rx.seqs); got < 200 {
		t.Fatalf("pre-window frames dropped: delivered %d of first 200", got)
	}
	for _, s := range r.rx.seqs[:200] {
		if s >= 1<<20 {
			t.Fatalf("pre-window sequence %d out of order", s)
		}
	}
	delivered := len(r.rx.seqs) - 200
	if delivered+int(inj.LossDrops()) != n {
		t.Fatalf("in-window frames unaccounted: %d delivered + %d dropped != %d",
			delivered, inj.LossDrops(), n)
	}
	// 1000 Bernoulli(0.5) draws: [300, 700] is > 20 sigma.
	if inj.LossDrops() < 300 || inj.LossDrops() > 700 {
		t.Fatalf("LossDrops = %d, want ~500", inj.LossDrops())
	}
	if inj.DataDrops() != inj.LossDrops() {
		t.Fatalf("DataDrops = %d != LossDrops = %d (only data was offered)", inj.DataDrops(), inj.LossDrops())
	}
	if got := r.a.FaultDrops; got != inj.LossDrops() {
		t.Fatalf("port FaultDrops = %d, want %d", got, inj.LossDrops())
	}
	if out := r.pool.Outstanding(); out != 0 {
		t.Fatalf("pool leak: %d outstanding", out)
	}
}

func TestCorruptionSparesControlFrames(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Seed: 1, Loss: []LossRule{{Link: "wan", Prob: 0.999}}}
	if _, err := Apply(plan, r.resolve, nil, []*sim.Engine{r.eng}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.src.push(r.pool.NewControl(pkt.Ack, 1, 0, 1))
	}
	r.a.Kick()
	r.eng.Run()
	if r.rx.ctl != 100 {
		t.Fatalf("lossy link destroyed control frames: %d of 100 arrived", r.rx.ctl)
	}
}

func TestLossStreamDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		r := newRig(t)
		plan := &Plan{Seed: seed, Loss: []LossRule{{Link: "wan", Prob: 0.5}}}
		if _, err := Apply(plan, r.resolve, nil, []*sim.Engine{r.eng}, nil); err != nil {
			t.Fatal(err)
		}
		r.sendAt(0, 0, 1000)
		r.eng.Run()
		return r.rx.seqs
	}
	a, b := run(21), run(21)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d frames", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(22)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different plan seeds produced an identical 1000-draw loss pattern")
	}
}

func TestScriptedEventsAndTelemetry(t *testing.T) {
	// 100 µs propagation: frames serialized at 5 µs are still on the wire
	// when the link is cut at 10 µs, so they are destroyed on arrival at
	// the receiving port (cut-at-delivery).
	r := newRigDelay(t, 100*sim.Microsecond)
	tel := metrics.New(metrics.Options{Metrics: true, FlightRecorderSize: 4096})
	plan := &Plan{
		Seed: 3,
		Events: []Event{
			{At: 10 * sim.Microsecond, Link: "wan", Action: LinkDown},
			{At: 30 * sim.Microsecond, Link: "wan", Action: LinkUp},
			{At: 50 * sim.Microsecond, Link: "wan", Action: Degrade, RateFactor: 0.5},
			{At: 60 * sim.Microsecond, Link: "wan", Action: Restore},
		},
	}
	inj, err := Apply(plan, r.resolve, nil, []*sim.Engine{r.eng}, tel)
	if err != nil {
		t.Fatal(err)
	}
	r.sendAt(5*sim.Microsecond, 0, 10) // in flight at the cut: all destroyed at arrival
	r.sendAt(35*sim.Microsecond, 1<<20, 10)
	r.eng.At(20*sim.Microsecond, func() {
		if !inj.Down("wan") {
			t.Error("Down(wan) false during the outage")
		}
	})
	r.eng.Run()

	if len(r.rx.seqs) != 10 {
		t.Fatalf("delivered %d frames, want exactly the 10 post-up ones", len(r.rx.seqs))
	}
	if inj.DownDrops() != 10 {
		t.Fatalf("DownDrops = %d, want 10", inj.DownDrops())
	}
	if inj.DownEvents() != 1 || inj.DegradeEvents() != 1 {
		t.Fatalf("event counters: down=%d degrade=%d", inj.DownEvents(), inj.DegradeEvents())
	}
	if inj.TotalDrops() != 10 || inj.DataDropped() != 10 {
		t.Fatalf("TotalDrops=%d DataDropped=%d, want 10/10", inj.TotalDrops(), inj.DataDropped())
	}
	// Cut-at-delivery attribution: the receiving port destroyed the frames;
	// the transmitter never discarded anything.
	if r.b.CutDrops != 10 || r.a.FaultDrops != 0 {
		t.Fatalf("rx CutDrops=%d tx FaultDrops=%d, want 10/0", r.b.CutDrops, r.a.FaultDrops)
	}

	// Flight recorder saw both the state changes and the drops, all under
	// the fault layer's negative node namespace (never a real node id).
	var states, drops int
	for _, e := range tel.Recorder().Events() {
		switch e.Kind {
		case metrics.EvLinkState:
			states++
		case metrics.EvFaultDrop:
			drops++
		default:
			continue
		}
		if e.Node != FaultNodeID(0) {
			t.Fatalf("fault event Node = %d, want %d (dedicated namespace)", e.Node, FaultNodeID(0))
		}
	}
	if states != 4 || drops != 10 {
		t.Fatalf("recorder: %d link_state + %d fault_drop events, want 4 + 10", states, drops)
	}
	// Counters registered under fault.*.
	if v, ok := tel.Registry().Value("fault.down_drops"); !ok || v != 10 {
		t.Errorf("fault.down_drops counter = (%v, %v), want (10, true)", v, ok)
	}
	if v, ok := tel.Registry().Value("fault.link.wan.drops"); !ok || v != 10 {
		t.Errorf("fault.link.wan.drops counter = (%v, %v), want (10, true)", v, ok)
	}
}

func TestApplyUnknownLink(t *testing.T) {
	r := newRig(t)
	bad := func(name string) (Link, error) {
		return Link{}, &unknownLinkError{name}
	}
	plan := &Plan{Events: []Event{{At: 1, Link: "nope", Action: LinkDown}}}
	if _, err := Apply(plan, bad, nil, []*sim.Engine{r.eng}, nil); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Apply with unknown link: err = %v", err)
	}
}

type unknownLinkError struct{ name string }

func (e *unknownLinkError) Error() string { return "unknown link " + e.name }

// TestPerShardCounterAggregationRace exercises the injector's shard-safety
// contract under the race detector: two engines, each owning one managed
// link, run concurrently on their own goroutines while scripted events fire
// and loss rules draw on both. Down() and the aggregate accessors are read
// only with both engines parked — mid-run at a simulated quiescent barrier
// (both engines stopped at the same RunUntil horizon) and again after the
// run — mirroring how topo's quiescent pumps and post-run snapshots read
// them. The aggregates must equal the per-port ground truth.
func TestPerShardCounterAggregationRace(t *testing.T) {
	r0 := newRigDelay(t, 50*sim.Microsecond)
	r1 := newRigDelay(t, 50*sim.Microsecond)
	rigs := []*rig{r0, r1}
	resolve := func(name string) (Link, error) {
		switch name {
		case "l0":
			return Link{Name: name, A: r0.a, B: r0.b}, nil
		case "l1":
			return Link{Name: name, A: r1.a, B: r1.b}, nil
		}
		return Link{}, &unknownLinkError{name}
	}
	plan := &Plan{
		Seed: 17,
		Events: []Event{
			{At: 20 * sim.Microsecond, Link: "l0", Action: LinkDown},
			{At: 40 * sim.Microsecond, Link: "l0", Action: LinkUp},
			{At: 20 * sim.Microsecond, Link: "l1", Action: LinkDown},
			{At: 40 * sim.Microsecond, Link: "l1", Action: LinkUp},
		},
		Loss: []LossRule{
			{Link: "l0", Prob: 0.5, Start: 100 * sim.Microsecond},
			{Link: "l1", Prob: 0.5, Start: 100 * sim.Microsecond},
		},
	}
	inj, err := Apply(plan, resolve, nil, []*sim.Engine{r0.eng, r1.eng}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const inFlight, lossy = 20, 500
	for _, r := range rigs {
		r.sendAt(10*sim.Microsecond, 0, inFlight)   // on the wire at the cut
		r.sendAt(110*sim.Microsecond, 1<<20, lossy) // through the loss window
	}
	// step runs both engines concurrently to the same horizon and joins:
	// afterwards both are parked, which is the quiescent safe point for
	// cross-shard reads.
	step := func(until sim.Time) {
		var wg sync.WaitGroup
		for _, r := range rigs {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				if until == 0 {
					r.eng.Run()
				} else {
					r.eng.RunUntil(until)
				}
			}()
		}
		wg.Wait()
	}
	step(30 * sim.Microsecond) // mid-outage barrier
	if !inj.Down("l0") || !inj.Down("l1") {
		t.Fatal("Down() false during the scripted outage")
	}
	if inj.DownEvents() != 2 {
		t.Fatalf("mid-run DownEvents = %d, want 2", inj.DownEvents())
	}
	step(0) // run to completion
	if inj.Down("l0") || inj.Down("l1") {
		t.Error("Down() true after link-up")
	}
	var portDrops, delivered int64
	for _, r := range rigs {
		portDrops += r.a.FaultDrops + r.b.FaultDrops + r.a.CutDrops + r.b.CutDrops
		delivered += int64(len(r.rx.seqs))
	}
	if got := inj.TotalDrops(); got != portDrops {
		t.Errorf("TotalDrops = %d, want port ground truth %d", got, portDrops)
	}
	if inj.LossDrops() == 0 || inj.DownDrops() == 0 {
		t.Errorf("aggregates missing a shard: loss=%d down=%d", inj.LossDrops(), inj.DownDrops())
	}
	if got := inj.LossDrops() + inj.DownDrops(); got != inj.TotalDrops() {
		t.Errorf("loss %d + down %d != total %d", inj.LossDrops(), inj.DownDrops(), inj.TotalDrops())
	}
	// Every offered frame was data: conservation across both shards.
	if inj.DataDrops() != inj.TotalDrops() {
		t.Errorf("DataDrops = %d != TotalDrops = %d", inj.DataDrops(), inj.TotalDrops())
	}
	if want := int64(2 * (inFlight + lossy)); delivered+inj.DataDrops() != want {
		t.Errorf("delivered %d + dropped %d != offered %d", delivered, inj.DataDrops(), want)
	}
}

// TestShardStreamIndependence pins the per-direction RNG layout: the frames
// a loss rule destroys in direction A must not depend on how much traffic
// direction B carries, because each direction draws from its own stream.
// This is the property that makes sharded runs byte-identical to
// single-engine runs — a shard never consumes another shard's randomness.
func TestShardStreamIndependence(t *testing.T) {
	run := func(reverse int) []int64 {
		r := newRig(t)
		plan := &Plan{Seed: 33, Loss: []LossRule{{Link: "wan", Prob: 0.5}}}
		if _, err := Apply(plan, r.resolve, nil, []*sim.Engine{r.eng}, nil); err != nil {
			t.Fatal(err)
		}
		// Reverse-direction traffic interleaved with the forward sends.
		rsrc := &pushSource{}
		r.b.SetSource(rsrc)
		r.eng.At(0, func() {
			for i := 0; i < reverse; i++ {
				rsrc.push(r.pool.NewData(2, 1, 0, int64(i)*1000, 1000))
			}
			r.b.Kick()
		})
		r.sendAt(0, 1<<20, 400)
		r.eng.Run()
		return r.rx.seqs
	}
	quiet, busy := run(0), run(300)
	if len(quiet) != len(busy) {
		t.Fatalf("reverse traffic changed forward loss pattern: %d vs %d delivered", len(quiet), len(busy))
	}
	for i := range quiet {
		if quiet[i] != busy[i] {
			t.Fatalf("forward stream perturbed by reverse draws at delivery %d", i)
		}
	}
}

func TestStableHashIsStable(t *testing.T) {
	// Pinned value: stream seeding must never drift between versions, or
	// recorded plans replay differently.
	if got := stableHash("longhaul"); got != int64(5908586381303742777) {
		t.Errorf("stableHash(longhaul) = %d changed; loss streams will not replay", got)
	}
	if stableHash("a") == stableHash("b") {
		t.Error("trivial hash collision")
	}
}
