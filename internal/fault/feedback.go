package fault

import (
	"fmt"
	"math/rand"

	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// FeedbackFilter inspects one feedback frame (ACK/CNP/Switch-INT) at a
// sender's feedback ingress and returns its fate: destroyed, or delivered
// after an extra delay (0 = immediately). The filter may mutate the frame's
// INT stack in place (corruption). Hosts call it from the engine goroutine.
type FeedbackFilter func(now sim.Time, p *pkt.Packet) (drop bool, delay sim.Time)

// fbApplied is one feedback rule bound to one host, with its own PRNG stream
// so rules and hosts stay decorrelated and a run is bit-reproducible.
type fbApplied struct {
	rule  *FeedbackRule
	rng   *rand.Rand
	kinds FBKind
	modes []CorruptMode // enabled modes in declaration order, for Intn picks
}

// fbKindOf maps a packet kind to its FBKind bit (0 for non-feedback frames).
func fbKindOf(k pkt.Kind) FBKind {
	switch k {
	case pkt.Ack:
		return FBAck
	case pkt.CNP:
		return FBCNP
	case pkt.SwitchINT:
		return FBSwitchINT
	default:
		return 0
	}
}

// FeedbackFilterFor binds the plan's feedback rules matching the named host
// (topology vocabulary: "host<i>") and returns the filter the host should
// install, or nil when no rule matches. node is the host's id, used for
// flight-recorder attribution; eng is the engine the host runs on, so the
// filter counts into (and records into) that shard's state only. Each
// (rule, host) pair gets its own seeded PRNG stream — per host, not per
// shard, so sharded runs replay the exact same draws as single-engine
// runs; a vacuous rule (no drop, no corruption, no delay) binds without
// one and draws nothing, so it cannot perturb the run.
func (inj *Injector) FeedbackFilterFor(name string, node pkt.NodeID, eng *sim.Engine) FeedbackFilter {
	if inj == nil || inj.plan == nil {
		return nil
	}
	sc, ok := inj.byEng[eng]
	if !ok {
		panic(fmt.Sprintf("fault: FeedbackFilterFor(%q) with an engine outside the build", name))
	}
	var applied []*fbApplied
	for i := range inj.plan.Feedback {
		r := &inj.plan.Feedback[i]
		if r.Host != "" && r.Host != "*" && r.Host != name {
			continue
		}
		inj.fbMatched[i] = true
		a := &fbApplied{rule: r, kinds: r.Kinds}
		if a.kinds == 0 {
			a.kinds = FBAllKinds
		}
		if !r.vacuous() {
			a.rng = rand.New(rand.NewSource(inj.plan.Seed ^ stableHash("fb/"+name) ^ int64(i+1)<<32))
		}
		modes := r.Modes
		if modes == 0 {
			modes = CorruptAllModes
		}
		for _, m := range []CorruptMode{CorruptTruncate, CorruptStaleTS, CorruptGarbage} {
			if modes&m != 0 {
				a.modes = append(a.modes, m)
			}
		}
		applied = append(applied, a)
	}
	if len(applied) == 0 {
		return nil
	}
	id := int32(node)
	return func(now sim.Time, p *pkt.Packet) (bool, sim.Time) {
		return inj.filterFeedback(sc, applied, id, now, p)
	}
}

// FeedbackResolved returns an error naming any host-specific feedback rule
// that bound to no host — a typo'd selector silently doing nothing is the
// same class of bug as an unresolvable link name.
func (inj *Injector) FeedbackResolved() error {
	if inj == nil {
		return nil
	}
	for i, matched := range inj.fbMatched {
		if !matched {
			return fmt.Errorf("fault: feedback rule %d: host %q matched no host", i, inj.plan.Feedback[i].Host)
		}
	}
	return nil
}

// filterFeedback runs every bound rule over one frame. Draw order per rule is
// fixed (drop, then corrupt, then delay) so a plan replays identically; a
// closed window or vacuous rule draws nothing.
func (inj *Injector) filterFeedback(sc *shardState, rules []*fbApplied, node int32, now sim.Time, p *pkt.Packet) (bool, sim.Time) {
	kind := fbKindOf(p.Kind)
	if kind == 0 {
		return false, 0
	}
	var delay sim.Time
	for _, a := range rules {
		r := a.rule
		if a.rng == nil || a.kinds&kind == 0 || now < r.Start || (r.End != 0 && now >= r.End) {
			continue
		}
		if r.Drop > 0 && a.rng.Float64() < r.Drop {
			sc.fbDrops++
			if sc.fr.Wants(metrics.EvFBDrop) {
				sc.fr.Record(metrics.Event{T: now, Kind: metrics.EvFBDrop,
					Node: node, Port: -1, Flow: int32(p.Flow), Val: int64(p.Kind)})
			}
			return true, 0
		}
		if r.Corrupt > 0 && len(p.Hops) > 0 && a.rng.Float64() < r.Corrupt {
			inj.corruptINT(sc, a, node, now, p)
		}
		if r.Delay > 0 || r.Jitter > 0 {
			d := r.Delay
			if r.Jitter > 0 {
				d += sim.Time(a.rng.Int63n(int64(r.Jitter) + 1))
			}
			if d > 0 {
				delay += d
			}
		}
	}
	if delay > 0 {
		sc.fbDelays++
		if sc.fr.Wants(metrics.EvFBDelay) {
			sc.fr.Record(metrics.Event{T: now, Kind: metrics.EvFBDelay,
				Node: node, Port: -1, Flow: int32(p.Flow), Val: int64(delay)})
		}
	}
	return false, delay
}

// corruptINT damages the frame's INT stack in one of the rule's enabled
// modes. The damage models real telemetry corruption classes: a transit
// device stripping records (truncation), a hop echoing a stale register
// (regressed timestamp), and bit rot in the metadata fields (garbage).
// Hardened consumers must survive all three without folding them in.
func (inj *Injector) corruptINT(sc *shardState, a *fbApplied, node int32, now sim.Time, p *pkt.Packet) {
	mode := a.modes[a.rng.Intn(len(a.modes))]
	switch mode {
	case CorruptTruncate:
		cut := 1 + a.rng.Intn(len(p.Hops))
		p.Hops = p.Hops[:len(p.Hops)-cut]
	case CorruptStaleTS:
		i := a.rng.Intn(len(p.Hops))
		p.Hops[i].TS -= sim.Time(1 + a.rng.Int63n(int64(10*sim.Millisecond)))
	case CorruptGarbage:
		i := a.rng.Intn(len(p.Hops))
		switch a.rng.Intn(3) {
		case 0:
			p.Hops[i].QLen = -1 - a.rng.Int63n(1<<40)
		case 1:
			p.Hops[i].TxBytes -= 1 + a.rng.Int63n(1<<40)
		case 2:
			p.Hops[i].Band = -p.Hops[i].Band // zero stays zero: still invalid
		}
	}
	sc.fbCorrupts++
	if sc.fr.Wants(metrics.EvFBCorrupt) {
		sc.fr.Record(metrics.Event{T: now, Kind: metrics.EvFBCorrupt,
			Node: node, Port: -1, Flow: int32(p.Flow), Val: int64(mode)})
	}
}
