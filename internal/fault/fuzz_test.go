package fault

import (
	"bytes"
	"testing"

	"mlcc/internal/sim"
)

// FuzzFaultPlanJSON hammers ReadPlan with arbitrary bytes: it must reject or
// accept, never panic — and every plan it accepts must satisfy Validate and
// survive WritePlan→ReadPlan with all fields intact (times within the float64
// microsecond precision the JSON schema carries). The interesting inputs are
// the ones that used to slip through: NaN rate factors and probabilities,
// and at_us values whose float→int64 conversion is implementation-defined.
func FuzzFaultPlanJSON(f *testing.F) {
	f.Add([]byte(`{"seed":7,"events":[{"at_us":8000,"link":"longhaul","action":"down"},{"at_us":10000,"link":"longhaul","action":"up"}]}`))
	f.Add([]byte(`{"events":[{"at_us":20000,"link":"longhaul","action":"degrade","rate_factor":0.5,"extra_delay_us":500,"jitter_us":20}]}`))
	f.Add([]byte(`{"loss":[{"link":"longhaul","prob":0.001,"start_us":0,"end_us":0}]}`))
	f.Add([]byte(`{"events":[{"at_us":9.3e18,"link":"l","action":"down"}]}`))
	f.Add([]byte(`{"loss":[{"link":"l","prob":"NaN"}]}`))
	f.Add([]byte(`{"feedback":[{"host":"*","kinds":["ack","cnp"],"drop":0.3,"delay_us":100,"jitter_us":50,"corrupt":0.1,"modes":["truncate","stale_ts"],"start_us":5000,"end_us":10000}]}`))
	f.Add([]byte(`{"feedback":[{"host":"host0","drop":1}]}`))
	f.Add([]byte(`{"feedback":[{"host":"hostX","drop":0.5}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":3000,"node":"host0","action":"crash"},{"at_us":6000,"node":"host0","action":"restart"}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":8000,"node":"dci0","action":"fail"},{"at_us":9000,"node":"dci0","action":"recover"}]}`))
	f.Add([]byte(`{"nodes":[{"at_us":1,"node":"leaf3","action":"reboot"}]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadPlan accepted a plan Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := WritePlan(&buf, p); err != nil {
			t.Fatalf("WritePlan: %v", err)
		}
		p2, err := ReadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, buf.Bytes())
		}
		if p2.Seed != p.Seed || len(p2.Events) != len(p.Events) || len(p2.Loss) != len(p.Loss) ||
			len(p2.Feedback) != len(p.Feedback) || len(p2.Nodes) != len(p.Nodes) {
			t.Fatalf("round trip changed shape: %+v vs %+v", p, p2)
		}
		// Microsecond fields pass through float64: exact below ~2^51 ps,
		// a bounded rounding error near the int64 clock's rim.
		timeClose := func(a, b sim.Time) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= sim.Nanosecond+a/(1<<40)
		}
		for i := range p.Events {
			a, b := p.Events[i], p2.Events[i]
			if a.Link != b.Link || a.Action != b.Action || a.RateFactor != b.RateFactor {
				t.Fatalf("event %d changed in round trip: %+v vs %+v", i, a, b)
			}
			if !timeClose(a.At, b.At) || !timeClose(a.ExtraDelay, b.ExtraDelay) || !timeClose(a.Jitter, b.Jitter) {
				t.Fatalf("event %d times drifted: %+v vs %+v", i, a, b)
			}
		}
		for i := range p.Loss {
			a, b := p.Loss[i], p2.Loss[i]
			if a.Link != b.Link || a.Prob != b.Prob {
				t.Fatalf("loss rule %d changed in round trip: %+v vs %+v", i, a, b)
			}
			if !timeClose(a.Start, b.Start) || !timeClose(a.End, b.End) {
				t.Fatalf("loss rule %d window drifted: %+v vs %+v", i, a, b)
			}
		}
		for i := range p.Nodes {
			a, b := p.Nodes[i], p2.Nodes[i]
			if a.Node != b.Node || a.Action != b.Action {
				t.Fatalf("node event %d changed in round trip: %+v vs %+v", i, a, b)
			}
			if !timeClose(a.At, b.At) {
				t.Fatalf("node event %d time drifted: %+v vs %+v", i, a, b)
			}
		}
		for i := range p.Feedback {
			a, b := p.Feedback[i], p2.Feedback[i]
			if a.Host != b.Host || a.Drop != b.Drop || a.Corrupt != b.Corrupt ||
				a.Kinds != b.Kinds || a.Modes != b.Modes {
				t.Fatalf("feedback rule %d changed in round trip: %+v vs %+v", i, a, b)
			}
			if !timeClose(a.Delay, b.Delay) || !timeClose(a.Jitter, b.Jitter) ||
				!timeClose(a.Start, b.Start) || !timeClose(a.End, b.End) {
				t.Fatalf("feedback rule %d times drifted: %+v vs %+v", i, a, b)
			}
		}
	})
}
