package fault

import (
	"fmt"
	"math/rand"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Link names the two port-ends of one full-duplex link. A and B are the two
// transmit directions; fault actions always apply to the pair.
type Link struct {
	Name string
	A, B *link.Port
}

// Resolver maps a plan's symbolic link names onto built ports; topologies
// provide one (topo.Network.LinkByName).
type Resolver func(name string) (Link, error)

// Injector is an applied Plan: scripted events are scheduled on the engine
// and loss rules are installed as port fault hooks. All state is owned by
// the single engine goroutine.
type Injector struct {
	eng  *sim.Engine
	fr   *metrics.FlightRecorder
	plan *Plan

	links  []*linkState // resolution order — plan order, never map order
	byName map[string]*linkState

	// fbMatched[i] records whether feedback rule i bound to at least one
	// host (see FeedbackFilterFor / FeedbackResolved).
	fbMatched []bool

	// Counters (registered as fault.* when telemetry is attached).
	LossDrops     int64 // frames destroyed by Bernoulli loss rules
	DownDrops     int64 // frames destroyed because their link was down
	DataDrops     int64 // data-frame subset of all fault drops (conservation checks)
	DownEvents    int64
	DegradeEvents int64

	// Feedback-plane counters (registered as fault.fb.*).
	FBDrops    int64 // feedback frames destroyed at host ingress
	FBDelays   int64 // feedback frames deferred
	FBCorrupts int64 // INT stacks corrupted
}

type linkState struct {
	Link
	idx            int
	rules          []*ruleState
	jrngA, jrngB   *rand.Rand
	down           bool
	hooksA, hooksB link.FaultHooks
}

type ruleState struct {
	LossRule
	rng   *rand.Rand
	drops int64
}

// Apply validates plan, resolves its links and installs it: events are
// scheduled at their absolute times and loss rules become per-port fault
// hooks. tel may be nil. Applying an empty plan returns (nil, nil) and
// leaves the network untouched.
func Apply(eng *sim.Engine, plan *Plan, resolve Resolver, tel *metrics.Telemetry) (*Injector, error) {
	if plan.Empty() {
		return nil, nil
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{eng: eng, fr: tel.Recorder(), plan: plan,
		byName:    map[string]*linkState{},
		fbMatched: make([]bool, len(plan.Feedback)),
	}

	// Resolve links in plan order (events, then loss rules) so stream
	// seeding and counter layout never depend on map iteration.
	get := func(name string) (*linkState, error) {
		if ls, ok := inj.byName[name]; ok {
			return ls, nil
		}
		l, err := resolve(name)
		if err != nil {
			return nil, err
		}
		if l.A == nil || l.B == nil {
			return nil, fmt.Errorf("fault: link %q resolved without both ports", name)
		}
		ls := &linkState{Link: l, idx: len(inj.links)}
		ls.jrngA = rand.New(rand.NewSource(plan.Seed ^ stableHash(name) ^ 0x6a177a61))
		ls.jrngB = rand.New(rand.NewSource(plan.Seed ^ stableHash(name) ^ 0x6a177a62))
		inj.links = append(inj.links, ls)
		inj.byName[name] = ls
		return ls, nil
	}
	for i := range plan.Events {
		ev := plan.Events[i]
		ls, err := get(ev.Link)
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
		eng.At(ev.At, func() { inj.fire(ls, ev) })
	}
	for i := range plan.Loss {
		r := plan.Loss[i]
		ls, err := get(r.Link)
		if err != nil {
			return nil, fmt.Errorf("fault: loss rule %d: %w", i, err)
		}
		rs := &ruleState{LossRule: r}
		rs.rng = rand.New(rand.NewSource(plan.Seed ^ stableHash(r.Link) ^ int64(i+1)<<32))
		ls.rules = append(ls.rules, rs)
	}

	// Hook every managed port so corruption rules run and every fault
	// discard — including down-link flushes — is counted and recorded.
	for _, ls := range inj.links {
		ls := ls
		ls.hooksA = link.FaultHooks{
			Corrupt: func(p *pkt.Packet) bool { return inj.corrupt(ls, p) },
			OnDrop:  func(p *pkt.Packet) { inj.onDrop(ls, 0, p) },
		}
		ls.hooksB = link.FaultHooks{
			Corrupt: func(p *pkt.Packet) bool { return inj.corrupt(ls, p) },
			OnDrop:  func(p *pkt.Packet) { inj.onDrop(ls, 1, p) },
		}
		ls.A.SetFaultHooks(&ls.hooksA)
		ls.B.SetFaultHooks(&ls.hooksB)
	}
	inj.register(tel.Registry())
	return inj, nil
}

// fire executes one scripted event on both directions of a link.
func (inj *Injector) fire(ls *linkState, ev Event) {
	switch ev.Action {
	case LinkDown:
		ls.down = true // before SetDown, so flushed frames count as DownDrops
		inj.DownEvents++
		ls.A.SetDown(true)
		ls.B.SetDown(true)
	case LinkUp:
		ls.down = false
		ls.A.SetDown(false)
		ls.B.SetDown(false)
	case Degrade:
		f := ev.RateFactor
		if f == 0 {
			f = 1 // delay-only degradation
		}
		inj.DegradeEvents++
		ls.A.SetImpairment(f, ev.ExtraDelay, ev.Jitter, ls.jrngA)
		ls.B.SetImpairment(f, ev.ExtraDelay, ev.Jitter, ls.jrngB)
	case Restore:
		ls.A.SetImpairment(1, 0, 0, nil)
		ls.B.SetImpairment(1, 0, 0, nil)
	}
	if inj.fr.Wants(metrics.EvLinkState) {
		inj.fr.Record(metrics.Event{T: inj.eng.Now(), Kind: metrics.EvLinkState,
			Node: int32(ls.idx), Port: -1, Val: int64(ev.Action)})
	}
}

// corrupt implements the Bernoulli droppers: one draw per open rule per
// data frame. Rules with a closed window or zero probability draw nothing,
// so vacuous rules cannot perturb the run.
func (inj *Injector) corrupt(ls *linkState, p *pkt.Packet) bool {
	now := inj.eng.Now()
	for _, r := range ls.rules {
		if r.Prob <= 0 || now < r.Start || (r.End != 0 && now >= r.End) {
			continue
		}
		if r.rng.Float64() < r.Prob {
			r.drops++
			inj.LossDrops++
			return true
		}
	}
	return false
}

// onDrop observes every frame a managed port destroys (the port already
// counted it in FaultDrops and will return it to the pool).
func (inj *Injector) onDrop(ls *linkState, dir int32, p *pkt.Packet) {
	if ls.down {
		inj.DownDrops++
	}
	if p.Kind == pkt.Data {
		inj.DataDrops++
	}
	if inj.fr.Wants(metrics.EvFaultDrop) {
		inj.fr.Record(metrics.Event{T: inj.eng.Now(), Kind: metrics.EvFaultDrop,
			Node: int32(ls.idx), Port: dir, Flow: int32(p.Flow), Val: int64(p.Size)})
	}
}

func (inj *Injector) register(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("fault.loss_drops", func() int64 { return inj.LossDrops })
	reg.CounterFunc("fault.down_drops", func() int64 { return inj.DownDrops })
	reg.CounterFunc("fault.data_drops", func() int64 { return inj.DataDrops })
	reg.CounterFunc("fault.link_down_events", func() int64 { return inj.DownEvents })
	reg.CounterFunc("fault.degrade_events", func() int64 { return inj.DegradeEvents })
	if len(inj.plan.Feedback) > 0 {
		reg.CounterFunc("fault.fb.drops", func() int64 { return inj.FBDrops })
		reg.CounterFunc("fault.fb.delays", func() int64 { return inj.FBDelays })
		reg.CounterFunc("fault.fb.corrupts", func() int64 { return inj.FBCorrupts })
	}
	for _, ls := range inj.links {
		ls := ls
		reg.CounterFunc("fault.link."+ls.Name+".drops",
			func() int64 { return ls.A.FaultDrops + ls.B.FaultDrops })
	}
}

// TotalDrops reports every frame the fault layer destroyed, summed over the
// managed ports. Nil-safe: a nil injector (empty plan) reports zero.
func (inj *Injector) TotalDrops() int64 {
	if inj == nil {
		return 0
	}
	var sum int64
	for _, ls := range inj.links {
		sum += ls.A.FaultDrops + ls.B.FaultDrops
	}
	return sum
}

// DataDropped reports the data-frame subset of TotalDrops. Nil-safe.
func (inj *Injector) DataDropped() int64 {
	if inj == nil {
		return 0
	}
	return inj.DataDrops
}

// FeedbackDropped reports feedback frames destroyed at host ingress by
// feedback rules. Nil-safe.
func (inj *Injector) FeedbackDropped() int64 {
	if inj == nil {
		return 0
	}
	return inj.FBDrops
}

// FeedbackCorrupted reports INT stacks corrupted by feedback rules. Nil-safe.
func (inj *Injector) FeedbackCorrupted() int64 {
	if inj == nil {
		return 0
	}
	return inj.FBCorrupts
}

// Down reports whether the named link is currently admin-down. Nil-safe.
func (inj *Injector) Down(name string) bool {
	if inj == nil {
		return false
	}
	ls, ok := inj.byName[name]
	return ok && ls.down
}
