package fault

import (
	"fmt"
	"math/rand"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Link names the two port-ends of one full-duplex link. A and B are the two
// transmit directions; fault actions always apply to the pair.
type Link struct {
	Name string
	A, B *link.Port
}

// Resolver maps a plan's symbolic link names onto built ports; topologies
// provide one (topo.Network.LinkByName).
type Resolver func(name string) (Link, error)

// FaultNodeID maps a managed link's resolution index to the flight-recorder
// node id used for its fault events. The ids are negative — a dedicated
// namespace that can never collide with real topology node ids (hosts are
// 1+index, switches sit at positive per-tier bases) in merged traces.
// topo.Network.NodeName renders them as "fault:<linkname>".
func FaultNodeID(idx int) int32 { return int32(-1 - idx) }

// Injector is an applied Plan: scripted events are scheduled on the engine
// owning each port and loss rules are installed as per-direction port fault
// hooks. All mutable state is partitioned per shard (one shardState per
// engine), so each engine goroutine touches only its own counters and PRNG
// streams; the exported accessors aggregate across shards and must only be
// called with the engines quiescent (between Run windows, from quiescent
// hooks, or after the run).
type Injector struct {
	plan *Plan

	links  []*linkState // resolution order — plan order, never map order
	byName map[string]*linkState
	nodes  map[string]*NodeHooks

	shards []*shardState
	byEng  map[*sim.Engine]*shardState

	// fbMatched[i] records whether feedback rule i bound to at least one
	// host (see FeedbackFilterFor / FeedbackResolved).
	fbMatched []bool
}

// shardState holds one engine's slice of the injector: its flight recorder
// ring and every counter its ports and feedback filters increment. Keeping
// these per shard makes the hot-path increments single-goroutine.
type shardState struct {
	eng *sim.Engine
	fr  *metrics.FlightRecorder

	lossDrops     int64 // frames destroyed by Bernoulli loss rules
	downDrops     int64 // frames destroyed because their link was down (cut or offered)
	dataDrops     int64 // data-frame subset of all fault drops (conservation checks)
	downEvents    int64
	degradeEvents int64

	// Feedback-plane counters (registered as fault.fb.*).
	fbDrops    int64 // feedback frames destroyed at host ingress
	fbDelays   int64 // feedback frames deferred
	fbCorrupts int64 // INT stacks corrupted

	// Node-plane counters (registered as fault.node.*).
	nodeCrashes    int64
	nodeRestarts   int64
	switchFails    int64
	switchRecovers int64
}

// linkState is one managed link; dirs[0] transmits from port A, dirs[1]
// from port B.
type linkState struct {
	Link
	idx  int
	dirs [2]dirState
}

// dirState is one transmit direction of a managed link: its port, the shard
// that owns the port's engine, the direction's own loss-rule and jitter
// PRNG streams, and the fault hooks installed on the port. Per-direction
// streams are what make sharded runs byte-identical to single-engine runs:
// each direction draws independently regardless of which engine hosts it.
type dirState struct {
	port  *link.Port
	sc    *shardState
	rules []*ruleState
	jrng  *rand.Rand
	down  bool
	hooks link.FaultHooks
}

type ruleState struct {
	LossRule
	rng   *rand.Rand
	drops int64
}

// Apply validates plan, resolves its links and nodes and installs it: every
// scripted link event is scheduled per direction on the engine owning that
// direction's port (a long-haul event fires on both shards at the same
// absolute time), node events are scheduled per engine slice the node
// resolver reports, and loss rules become per-direction port fault hooks.
// engines lists the build's engines (length 1 on single-engine builds); every
// resolved port must live on one of them. resolveNode may be nil when the
// plan has no node events; tel may be nil. Applying an empty plan returns
// (nil, nil) and leaves the network untouched.
func Apply(plan *Plan, resolve Resolver, resolveNode NodeResolver, engines []*sim.Engine, tel *metrics.Telemetry) (*Injector, error) {
	if plan.Empty() {
		return nil, nil
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(engines) == 0 {
		return nil, fmt.Errorf("fault: Apply with no engines")
	}
	inj := &Injector{plan: plan,
		byName:    map[string]*linkState{},
		nodes:     map[string]*NodeHooks{},
		byEng:     map[*sim.Engine]*shardState{},
		fbMatched: make([]bool, len(plan.Feedback)),
	}
	frs := tel.ShardRecorders(len(engines))
	for i, eng := range engines {
		sc := &shardState{eng: eng}
		if frs != nil {
			sc.fr = frs[i]
		}
		inj.shards = append(inj.shards, sc)
		inj.byEng[eng] = sc
	}

	// Resolve links in plan order (events, then loss rules) so stream
	// seeding and counter layout never depend on map iteration. The two
	// jitter streams keep their historical seeds (direction A and B).
	get := func(name string) (*linkState, error) {
		if ls, ok := inj.byName[name]; ok {
			return ls, nil
		}
		l, err := resolve(name)
		if err != nil {
			return nil, err
		}
		if l.A == nil || l.B == nil {
			return nil, fmt.Errorf("fault: link %q resolved without both ports", name)
		}
		ls := &linkState{Link: l, idx: len(inj.links)}
		for d, port := range [2]*link.Port{l.A, l.B} {
			sc, ok := inj.byEng[port.Eng]
			if !ok {
				return nil, fmt.Errorf("fault: link %q direction %d is on an engine outside the build", name, d)
			}
			ls.dirs[d].port = port
			ls.dirs[d].sc = sc
			ls.dirs[d].jrng = rand.New(rand.NewSource(plan.Seed ^ stableHash(name) ^ (0x6a177a61 + int64(d))))
		}
		inj.links = append(inj.links, ls)
		inj.byName[name] = ls
		return ls, nil
	}
	for i := range plan.Events {
		ev := plan.Events[i]
		ls, err := get(ev.Link)
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
		// One scheduled event per direction, on the engine owning that
		// direction's port, at the same absolute time. Build-time
		// scheduling gives these minimal insertion sequence numbers, so at
		// equal timestamps they order before any runtime-armed event on
		// every engine — in single-engine and sharded builds alike.
		for d := 0; d < 2; d++ {
			d := d
			ls.dirs[d].port.Eng.At(ev.At, func() { inj.fire(ls, d, ev) })
		}
	}
	if err := inj.applyNodes(resolveNode); err != nil {
		return nil, err
	}
	for i := range plan.Loss {
		r := plan.Loss[i]
		ls, err := get(r.Link)
		if err != nil {
			return nil, fmt.Errorf("fault: loss rule %d: %w", i, err)
		}
		// Per-direction streams: direction A keeps the historical rule
		// seed, direction B folds in the direction bit. Each direction
		// draws only for its own frames, so a shard never consumes another
		// shard's randomness.
		for d := 0; d < 2; d++ {
			rs := &ruleState{LossRule: r}
			rs.rng = rand.New(rand.NewSource(plan.Seed ^ stableHash(r.Link) ^ int64(i+1)<<32 ^ int64(d)))
			ls.dirs[d].rules = append(ls.dirs[d].rules, rs)
		}
	}

	// Hook every managed port so corruption rules run and every fault
	// discard — transmitter-side and cut-at-arrival alike — is counted and
	// recorded on the shard that observed it.
	for _, ls := range inj.links {
		ls := ls
		for d := range ls.dirs {
			d := d
			ls.dirs[d].hooks = link.FaultHooks{
				Corrupt: func(p *pkt.Packet) bool { return inj.corrupt(ls, d, p) },
				OnDrop:  func(p *pkt.Packet, reason link.DropReason) { inj.onDrop(ls, d, p, reason) },
			}
			ls.dirs[d].port.SetFaultHooks(&ls.dirs[d].hooks)
		}
	}
	inj.register(tel.Registry())
	return inj, nil
}

// fire executes one scripted event on one direction of a link, on the
// engine that owns it. Direction 0 carries the link-level bookkeeping
// (event counters, flight-recorder state events) so a both-direction event
// is counted once.
func (inj *Injector) fire(ls *linkState, d int, ev Event) {
	ds := &ls.dirs[d]
	switch ev.Action {
	case LinkDown:
		ds.down = true
		if d == 0 {
			ds.sc.downEvents++
		}
		ds.port.SetDown(true)
	case LinkUp:
		ds.down = false
		ds.port.SetDown(false)
	case Degrade:
		f := ev.RateFactor
		if f == 0 {
			f = 1 // delay-only degradation
		}
		if d == 0 {
			ds.sc.degradeEvents++
		}
		ds.port.SetImpairment(f, ev.ExtraDelay, ev.Jitter, ds.jrng)
	case Restore:
		ds.port.SetImpairment(1, 0, 0, nil)
	}
	if d == 0 && ds.sc.fr.Wants(metrics.EvLinkState) {
		ds.sc.fr.Record(metrics.Event{T: ds.sc.eng.Now(), Kind: metrics.EvLinkState,
			Node: FaultNodeID(ls.idx), Port: -1, Val: int64(ev.Action)})
	}
}

// corrupt implements the Bernoulli droppers for one direction: one draw per
// open rule per data frame, from that direction's own stream. Rules with a
// closed window or zero probability draw nothing, so vacuous rules cannot
// perturb the run.
func (inj *Injector) corrupt(ls *linkState, d int, p *pkt.Packet) bool {
	ds := &ls.dirs[d]
	now := ds.sc.eng.Now()
	for _, r := range ds.rules {
		if r.Prob <= 0 || now < r.Start || (r.End != 0 && now >= r.End) {
			continue
		}
		if r.rng.Float64() < r.Prob {
			r.drops++
			ds.sc.lossDrops++
			return true
		}
	}
	return false
}

// onDrop observes every frame the fault layer destroys on a managed port
// (the port already counted it and will return it to the pool). d is the
// direction of the port the hook fired on; for a cut the frame was
// destroyed at its receiver, so the transmit direction that carried it is
// the opposite one — recorded events keep Port = transmit direction either
// way.
func (inj *Injector) onDrop(ls *linkState, d int, p *pkt.Packet, reason link.DropReason) {
	ds := &ls.dirs[d]
	txDir := int32(d)
	if reason == link.DropCut {
		txDir = int32(1 - d)
	}
	if reason != link.DropCorrupt {
		ds.sc.downDrops++
	}
	if p.Kind == pkt.Data {
		ds.sc.dataDrops++
	}
	if ds.sc.fr.Wants(metrics.EvFaultDrop) {
		ds.sc.fr.Record(metrics.Event{T: ds.sc.eng.Now(), Kind: metrics.EvFaultDrop,
			Node: FaultNodeID(ls.idx), Port: txDir, Flow: int32(p.Flow), Val: int64(p.Size)})
	}
}

// sum aggregates one counter across every shard. Quiescent-read only.
func (inj *Injector) sum(f func(*shardState) int64) int64 {
	var t int64
	for _, sc := range inj.shards {
		t += f(sc)
	}
	return t
}

func (inj *Injector) register(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	// CounterFuncs are evaluated only at quiescent pumps and post-run
	// snapshots, the safe points for cross-shard aggregation.
	reg.CounterFunc("fault.loss_drops", func() int64 { return inj.LossDrops() })
	reg.CounterFunc("fault.down_drops", func() int64 { return inj.DownDrops() })
	reg.CounterFunc("fault.data_drops", func() int64 { return inj.DataDrops() })
	reg.CounterFunc("fault.link_down_events", func() int64 { return inj.DownEvents() })
	reg.CounterFunc("fault.degrade_events", func() int64 { return inj.DegradeEvents() })
	if len(inj.plan.Feedback) > 0 {
		reg.CounterFunc("fault.fb.drops", func() int64 { return inj.FeedbackDropped() })
		reg.CounterFunc("fault.fb.delays", func() int64 { return inj.FeedbackDelayed() })
		reg.CounterFunc("fault.fb.corrupts", func() int64 { return inj.FeedbackCorrupted() })
	}
	if len(inj.plan.Nodes) > 0 {
		reg.CounterFunc("fault.node.crashes", func() int64 { return inj.NodeCrashes() })
		reg.CounterFunc("fault.node.restarts", func() int64 { return inj.NodeRestarts() })
		reg.CounterFunc("fault.node.switch_fails", func() int64 { return inj.SwitchFails() })
		reg.CounterFunc("fault.node.switch_recovers", func() int64 { return inj.SwitchRecovers() })
	}
	for _, ls := range inj.links {
		ls := ls
		reg.CounterFunc("fault.link."+ls.Name+".drops",
			func() int64 { return ls.drops() })
	}
}

// drops totals every frame the fault layer destroyed on this link:
// transmitter-side discards (FaultDrops) plus in-flight cuts destroyed at
// the receiving ports (CutDrops).
func (ls *linkState) drops() int64 {
	return ls.A.FaultDrops + ls.B.FaultDrops + ls.A.CutDrops + ls.B.CutDrops
}

// LossDrops reports frames destroyed by Bernoulli loss rules, aggregated
// across shards. Nil-safe; quiescent-read only.
func (inj *Injector) LossDrops() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.lossDrops })
}

// DownDrops reports frames destroyed because their link was down — offered
// or serialized while down, or cut in flight. Nil-safe; quiescent-read only.
func (inj *Injector) DownDrops() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.downDrops })
}

// DataDrops reports the data-frame subset of all fault drops. Nil-safe;
// quiescent-read only.
func (inj *Injector) DataDrops() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.dataDrops })
}

// DownEvents reports scripted link-down events fired. Nil-safe;
// quiescent-read only.
func (inj *Injector) DownEvents() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.downEvents })
}

// DegradeEvents reports scripted degrade events fired. Nil-safe;
// quiescent-read only.
func (inj *Injector) DegradeEvents() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.degradeEvents })
}

// TotalDrops reports every frame the fault layer destroyed, summed over the
// managed ports (transmitter discards plus in-flight cuts). Nil-safe: a nil
// injector (empty plan) reports zero. Quiescent-read only.
func (inj *Injector) TotalDrops() int64 {
	if inj == nil {
		return 0
	}
	var sum int64
	for _, ls := range inj.links {
		sum += ls.drops()
	}
	return sum
}

// DataDropped reports the data-frame subset of TotalDrops. Nil-safe;
// quiescent-read only.
func (inj *Injector) DataDropped() int64 { return inj.DataDrops() }

// FeedbackDropped reports feedback frames destroyed at host ingress by
// feedback rules. Nil-safe; quiescent-read only.
func (inj *Injector) FeedbackDropped() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.fbDrops })
}

// FeedbackDelayed reports feedback frames deferred by feedback rules.
// Nil-safe; quiescent-read only.
func (inj *Injector) FeedbackDelayed() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.fbDelays })
}

// FeedbackCorrupted reports INT stacks corrupted by feedback rules.
// Nil-safe; quiescent-read only.
func (inj *Injector) FeedbackCorrupted() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.fbCorrupts })
}

// Down reports whether the named link is currently admin-down. Nil-safe;
// quiescent-read only (the flag is owned by the engine of direction A).
func (inj *Injector) Down(name string) bool {
	if inj == nil {
		return false
	}
	ls, ok := inj.byName[name]
	return ok && ls.dirs[0].down
}

// LinkNameAt returns the name of the i-th managed link (the inverse of
// FaultNodeID's index), or "" when out of range. Nil-safe.
func (inj *Injector) LinkNameAt(i int) string {
	if inj == nil || i < 0 || i >= len(inj.links) {
		return ""
	}
	return inj.links[i].Name
}
