package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mlcc/internal/sim"
)

func TestReadPlanParsesSchema(t *testing.T) {
	const doc = `{
	  "seed": 7,
	  "events": [
	    {"at_us": 8000, "link": "longhaul", "action": "down"},
	    {"at_us": 10000, "link": "longhaul", "action": "up"},
	    {"at_us": 20000, "link": "longhaul", "action": "degrade",
	     "rate_factor": 0.5, "extra_delay_us": 500, "jitter_us": 20},
	    {"at_us": 26000, "link": "longhaul", "action": "restore"}
	  ],
	  "loss": [
	    {"link": "longhaul", "prob": 0.001, "start_us": 1000}
	  ]
	}`
	p, err := ReadPlan(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Seed: 7,
		Events: []Event{
			{At: 8 * sim.Millisecond, Link: "longhaul", Action: LinkDown},
			{At: 10 * sim.Millisecond, Link: "longhaul", Action: LinkUp},
			{At: 20 * sim.Millisecond, Link: "longhaul", Action: Degrade,
				RateFactor: 0.5, ExtraDelay: 500 * sim.Microsecond, Jitter: 20 * sim.Microsecond},
			{At: 26 * sim.Millisecond, Link: "longhaul", Action: Restore},
		},
		Loss: []LossRule{{Link: "longhaul", Prob: 0.001, Start: sim.Millisecond}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed plan:\n%+v\nwant:\n%+v", p, want)
	}
}

func TestPlanJSONRoundtrip(t *testing.T) {
	orig := &Plan{
		Seed: 42,
		Events: []Event{
			{At: 1500 * sim.Microsecond, Link: "host0", Action: LinkDown},
			{At: 2 * sim.Millisecond, Link: "host0", Action: LinkUp},
			{At: 3 * sim.Millisecond, Link: "leaf0:2", Action: Degrade,
				RateFactor: 0.25, ExtraDelay: 30 * sim.Microsecond, Jitter: 5 * sim.Microsecond},
		},
		Loss: []LossRule{
			{Link: "longhaul", Prob: 0.02, Start: sim.Millisecond, End: 4 * sim.Millisecond},
		},
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatalf("re-reading written plan: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(back, orig) {
		t.Fatalf("roundtrip drifted:\nwrote %+v\nread  %+v", orig, back)
	}
}

func TestReadPlanRejectsBadInput(t *testing.T) {
	bad := map[string]string{
		"garbage":        `{`,
		"unknown action": `{"events": [{"at_us": 1, "link": "l", "action": "flaky"}]}`,
		"unknown field":  `{"events": [{"at_us": 1, "link": "l", "action": "down", "color": "red"}]}`,
		"invalid rule":   `{"loss": [{"link": "l", "prob": 1.5}]}`,
	}
	for name, doc := range bad {
		if _, err := ReadPlan(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadPlan accepted %s", name, doc)
		}
	}
}
