package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mlcc/internal/sim"
)

// The JSON plan schema uses microseconds and plain fractions so plans are
// easy to write by hand:
//
//	{
//	  "seed": 7,
//	  "events": [
//	    {"at_us": 8000, "link": "longhaul", "action": "down"},
//	    {"at_us": 10000, "link": "longhaul", "action": "up"},
//	    {"at_us": 20000, "link": "longhaul", "action": "degrade",
//	     "rate_factor": 0.5, "extra_delay_us": 500, "jitter_us": 20},
//	    {"at_us": 26000, "link": "longhaul", "action": "restore"}
//	  ],
//	  "loss": [
//	    {"link": "longhaul", "prob": 0.001, "start_us": 0, "end_us": 0}
//	  ],
//	  "feedback": [
//	    {"host": "*", "kinds": ["ack", "cnp"], "drop": 0.3,
//	     "delay_us": 100, "jitter_us": 50, "corrupt": 0.1,
//	     "modes": ["truncate", "stale_ts", "garbage"],
//	     "start_us": 5000, "end_us": 10000}
//	  ],
//	  "nodes": [
//	    {"at_us": 12000, "node": "host1", "action": "crash"},
//	    {"at_us": 18000, "node": "host1", "action": "restart"},
//	    {"at_us": 24000, "node": "dci0", "action": "fail"},
//	    {"at_us": 30000, "node": "dci0", "action": "recover"}
//	  ]
//	}
//
// Link names are resolved by the topology (topo.Network.LinkByName):
// "longhaul", "host<i>", "leaf<i>:<p>", "spine<i>:<p>", "dci<i>:<p>".
// Feedback rules select hosts ("*" or "host<i>"); empty "kinds"/"modes"
// means all. Node names resolve whole devices ("host<i>", "leaf<i>",
// "spine<i>", "dci<i>"); crash/restart apply to hosts, fail/recover to
// switches.
type jsonPlan struct {
	Seed     int64          `json:"seed,omitempty"`
	Events   []jsonEvent    `json:"events,omitempty"`
	Loss     []jsonLoss     `json:"loss,omitempty"`
	Feedback []jsonFeedback `json:"feedback,omitempty"`
	Nodes    []jsonNode     `json:"nodes,omitempty"`
}

type jsonNode struct {
	AtUS   float64 `json:"at_us"`
	Node   string  `json:"node"`
	Action string  `json:"action"`
}

type jsonEvent struct {
	AtUS         float64 `json:"at_us"`
	Link         string  `json:"link"`
	Action       string  `json:"action"`
	RateFactor   float64 `json:"rate_factor,omitempty"`
	ExtraDelayUS float64 `json:"extra_delay_us,omitempty"`
	JitterUS     float64 `json:"jitter_us,omitempty"`
}

type jsonLoss struct {
	Link    string  `json:"link"`
	Prob    float64 `json:"prob"`
	StartUS float64 `json:"start_us,omitempty"`
	EndUS   float64 `json:"end_us,omitempty"`
}

type jsonFeedback struct {
	Host     string   `json:"host,omitempty"`
	Kinds    []string `json:"kinds,omitempty"`
	Drop     float64  `json:"drop,omitempty"`
	DelayUS  float64  `json:"delay_us,omitempty"`
	JitterUS float64  `json:"jitter_us,omitempty"`
	Corrupt  float64  `json:"corrupt,omitempty"`
	Modes    []string `json:"modes,omitempty"`
	StartUS  float64  `json:"start_us,omitempty"`
	EndUS    float64  `json:"end_us,omitempty"`
}

// fbKindNames / fbModeNames are the JSON vocabularies, in bit order.
var fbKindNames = []struct {
	bit  FBKind
	name string
}{
	{FBAck, "ack"},
	{FBCNP, "cnp"},
	{FBSwitchINT, "sint"},
}

var fbModeNames = []struct {
	bit  CorruptMode
	name string
}{
	{CorruptTruncate, "truncate"},
	{CorruptStaleTS, "stale_ts"},
	{CorruptGarbage, "garbage"},
}

// maxPlanUS bounds every microsecond field of a JSON plan: the int64
// picosecond clock's range (~9.2e12 µs). Validating BEFORE the float→int64
// conversion matters — converting NaN or out-of-range floats is
// implementation-defined in Go, so a converted-then-checked value can look
// plausible (even negative) while meaning nothing.
const maxPlanUS = float64(1<<63-1) / 1e6

// usTime converts a validated microsecond count to simulation time, rounding
// to the picosecond grid.
func usTime(us float64) sim.Time {
	return sim.Time(math.Round(us * float64(sim.Microsecond)))
}

// checkUS validates a microsecond field's domain before conversion.
func checkUS(what string, i int, us float64) error {
	if !(us >= 0 && us <= maxPlanUS) {
		return fmt.Errorf("fault: %s %d: time %v µs outside [0, %g]", what, i, us, maxPlanUS)
	}
	return nil
}

// ReadPlan parses a JSON fault plan and validates it.
func ReadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jp jsonPlan
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	p := &Plan{Seed: jp.Seed}
	for i, je := range jp.Events {
		if err := checkUS("event", i, je.AtUS); err != nil {
			return nil, err
		}
		if err := checkUS("event", i, je.ExtraDelayUS); err != nil {
			return nil, err
		}
		if err := checkUS("event", i, je.JitterUS); err != nil {
			return nil, err
		}
		ev := Event{
			At:         usTime(je.AtUS),
			Link:       je.Link,
			RateFactor: je.RateFactor,
			ExtraDelay: usTime(je.ExtraDelayUS),
			Jitter:     usTime(je.JitterUS),
		}
		switch je.Action {
		case "down":
			ev.Action = LinkDown
		case "up":
			ev.Action = LinkUp
		case "degrade":
			ev.Action = Degrade
		case "restore":
			ev.Action = Restore
		default:
			return nil, fmt.Errorf("fault: event %d: unknown action %q (want down|up|degrade|restore)", i, je.Action)
		}
		p.Events = append(p.Events, ev)
	}
	for i, jl := range jp.Loss {
		if err := checkUS("loss rule", i, jl.StartUS); err != nil {
			return nil, err
		}
		if err := checkUS("loss rule", i, jl.EndUS); err != nil {
			return nil, err
		}
		p.Loss = append(p.Loss, LossRule{
			Link:  jl.Link,
			Prob:  jl.Prob,
			Start: usTime(jl.StartUS),
			End:   usTime(jl.EndUS),
		})
	}
	for i, jf := range jp.Feedback {
		for _, f := range []struct {
			what string
			us   float64
		}{{"delay", jf.DelayUS}, {"jitter", jf.JitterUS}, {"start", jf.StartUS}, {"end", jf.EndUS}} {
			if err := checkUS("feedback rule "+f.what, i, f.us); err != nil {
				return nil, err
			}
		}
		r := FeedbackRule{
			Host:    jf.Host,
			Drop:    jf.Drop,
			Delay:   usTime(jf.DelayUS),
			Jitter:  usTime(jf.JitterUS),
			Corrupt: jf.Corrupt,
			Start:   usTime(jf.StartUS),
			End:     usTime(jf.EndUS),
		}
		for _, name := range jf.Kinds {
			bit := FBKind(0)
			for _, k := range fbKindNames {
				if k.name == name {
					bit = k.bit
					break
				}
			}
			if bit == 0 {
				return nil, fmt.Errorf("fault: feedback rule %d: unknown kind %q (want ack|cnp|sint)", i, name)
			}
			r.Kinds |= bit
		}
		for _, name := range jf.Modes {
			bit := CorruptMode(0)
			for _, m := range fbModeNames {
				if m.name == name {
					bit = m.bit
					break
				}
			}
			if bit == 0 {
				return nil, fmt.Errorf("fault: feedback rule %d: unknown corrupt mode %q (want truncate|stale_ts|garbage)", i, name)
			}
			r.Modes |= bit
		}
		p.Feedback = append(p.Feedback, r)
	}
	for i, jn := range jp.Nodes {
		if err := checkUS("node event", i, jn.AtUS); err != nil {
			return nil, err
		}
		ev := NodeEvent{At: usTime(jn.AtUS), Node: jn.Node}
		switch jn.Action {
		case "crash":
			ev.Action = HostCrash
		case "restart":
			ev.Action = HostRestart
		case "fail":
			ev.Action = SwitchFail
		case "recover":
			ev.Action = SwitchRecover
		default:
			return nil, fmt.Errorf("fault: node event %d: unknown action %q (want crash|restart|fail|recover)", i, jn.Action)
		}
		p.Nodes = append(p.Nodes, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WritePlan emits the plan in the JSON schema ReadPlan accepts.
func WritePlan(w io.Writer, p *Plan) error {
	jp := jsonPlan{Seed: p.Seed}
	for _, ev := range p.Events {
		jp.Events = append(jp.Events, jsonEvent{
			AtUS:         ev.At.Micros(),
			Link:         ev.Link,
			Action:       ev.Action.String(),
			RateFactor:   ev.RateFactor,
			ExtraDelayUS: ev.ExtraDelay.Micros(),
			JitterUS:     ev.Jitter.Micros(),
		})
	}
	for _, r := range p.Loss {
		jp.Loss = append(jp.Loss, jsonLoss{
			Link:    r.Link,
			Prob:    r.Prob,
			StartUS: r.Start.Micros(),
			EndUS:   r.End.Micros(),
		})
	}
	for _, r := range p.Feedback {
		jf := jsonFeedback{
			Host:     r.Host,
			Drop:     r.Drop,
			DelayUS:  r.Delay.Micros(),
			JitterUS: r.Jitter.Micros(),
			Corrupt:  r.Corrupt,
			StartUS:  r.Start.Micros(),
			EndUS:    r.End.Micros(),
		}
		// A zero bit set means "all" and round-trips as an absent list.
		for _, k := range fbKindNames {
			if r.Kinds&k.bit != 0 {
				jf.Kinds = append(jf.Kinds, k.name)
			}
		}
		for _, m := range fbModeNames {
			if r.Modes&m.bit != 0 {
				jf.Modes = append(jf.Modes, m.name)
			}
		}
		jp.Feedback = append(jp.Feedback, jf)
	}
	for _, ev := range p.Nodes {
		jp.Nodes = append(jp.Nodes, jsonNode{
			AtUS:   ev.At.Micros(),
			Node:   ev.Node,
			Action: ev.Action.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}
