package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mlcc/internal/sim"
)

// The JSON plan schema uses microseconds and plain fractions so plans are
// easy to write by hand:
//
//	{
//	  "seed": 7,
//	  "events": [
//	    {"at_us": 8000, "link": "longhaul", "action": "down"},
//	    {"at_us": 10000, "link": "longhaul", "action": "up"},
//	    {"at_us": 20000, "link": "longhaul", "action": "degrade",
//	     "rate_factor": 0.5, "extra_delay_us": 500, "jitter_us": 20},
//	    {"at_us": 26000, "link": "longhaul", "action": "restore"}
//	  ],
//	  "loss": [
//	    {"link": "longhaul", "prob": 0.001, "start_us": 0, "end_us": 0}
//	  ]
//	}
//
// Link names are resolved by the topology (topo.Network.LinkByName):
// "longhaul", "host<i>", "leaf<i>:<p>", "spine<i>:<p>", "dci<i>:<p>".
type jsonPlan struct {
	Seed   int64       `json:"seed,omitempty"`
	Events []jsonEvent `json:"events,omitempty"`
	Loss   []jsonLoss  `json:"loss,omitempty"`
}

type jsonEvent struct {
	AtUS         float64 `json:"at_us"`
	Link         string  `json:"link"`
	Action       string  `json:"action"`
	RateFactor   float64 `json:"rate_factor,omitempty"`
	ExtraDelayUS float64 `json:"extra_delay_us,omitempty"`
	JitterUS     float64 `json:"jitter_us,omitempty"`
}

type jsonLoss struct {
	Link    string  `json:"link"`
	Prob    float64 `json:"prob"`
	StartUS float64 `json:"start_us,omitempty"`
	EndUS   float64 `json:"end_us,omitempty"`
}

// maxPlanUS bounds every microsecond field of a JSON plan: the int64
// picosecond clock's range (~9.2e12 µs). Validating BEFORE the float→int64
// conversion matters — converting NaN or out-of-range floats is
// implementation-defined in Go, so a converted-then-checked value can look
// plausible (even negative) while meaning nothing.
const maxPlanUS = float64(1<<63-1) / 1e6

// usTime converts a validated microsecond count to simulation time, rounding
// to the picosecond grid.
func usTime(us float64) sim.Time {
	return sim.Time(math.Round(us * float64(sim.Microsecond)))
}

// checkUS validates a microsecond field's domain before conversion.
func checkUS(what string, i int, us float64) error {
	if !(us >= 0 && us <= maxPlanUS) {
		return fmt.Errorf("fault: %s %d: time %v µs outside [0, %g]", what, i, us, maxPlanUS)
	}
	return nil
}

// ReadPlan parses a JSON fault plan and validates it.
func ReadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jp jsonPlan
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	p := &Plan{Seed: jp.Seed}
	for i, je := range jp.Events {
		if err := checkUS("event", i, je.AtUS); err != nil {
			return nil, err
		}
		if err := checkUS("event", i, je.ExtraDelayUS); err != nil {
			return nil, err
		}
		if err := checkUS("event", i, je.JitterUS); err != nil {
			return nil, err
		}
		ev := Event{
			At:         usTime(je.AtUS),
			Link:       je.Link,
			RateFactor: je.RateFactor,
			ExtraDelay: usTime(je.ExtraDelayUS),
			Jitter:     usTime(je.JitterUS),
		}
		switch je.Action {
		case "down":
			ev.Action = LinkDown
		case "up":
			ev.Action = LinkUp
		case "degrade":
			ev.Action = Degrade
		case "restore":
			ev.Action = Restore
		default:
			return nil, fmt.Errorf("fault: event %d: unknown action %q (want down|up|degrade|restore)", i, je.Action)
		}
		p.Events = append(p.Events, ev)
	}
	for i, jl := range jp.Loss {
		if err := checkUS("loss rule", i, jl.StartUS); err != nil {
			return nil, err
		}
		if err := checkUS("loss rule", i, jl.EndUS); err != nil {
			return nil, err
		}
		p.Loss = append(p.Loss, LossRule{
			Link:  jl.Link,
			Prob:  jl.Prob,
			Start: usTime(jl.StartUS),
			End:   usTime(jl.EndUS),
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WritePlan emits the plan in the JSON schema ReadPlan accepts.
func WritePlan(w io.Writer, p *Plan) error {
	jp := jsonPlan{Seed: p.Seed}
	for _, ev := range p.Events {
		jp.Events = append(jp.Events, jsonEvent{
			AtUS:         ev.At.Micros(),
			Link:         ev.Link,
			Action:       ev.Action.String(),
			RateFactor:   ev.RateFactor,
			ExtraDelayUS: ev.ExtraDelay.Micros(),
			JitterUS:     ev.Jitter.Micros(),
		})
	}
	for _, r := range p.Loss {
		jp.Loss = append(jp.Loss, jsonLoss{
			Link:    r.Link,
			Prob:    r.Prob,
			StartUS: r.Start.Micros(),
			EndUS:   r.End.Micros(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}
