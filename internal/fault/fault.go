// Package fault injects deterministic failures into a built network: admin
// link down/up (flaps), runtime degradation (rate reduction, extra delay,
// jitter) and Bernoulli packet loss on designated links.
//
// Faults come from a scripted Plan of absolute-time events plus loss rules.
// Every random process draws from its own seeded PRNG stream — one per loss
// rule and one per jittered port direction, seeded from the plan seed and a
// stable hash of the link name — so a run with a fixed simulation seed and a
// fixed plan is bit-reproducible, and an empty plan leaves the simulation
// byte-identical to a build with no fault layer at all (the digest tests in
// internal/exp enforce both properties).
//
// Only data frames are subject to Bernoulli corruption: ACKs, CNPs, INT
// reflections and PFC frames are assumed FEC-protected. An admin-down link,
// by contrast, destroys everything on and entering the wire — that is a cut
// fiber, not a noisy one. See DESIGN.md, "Fault model".
package fault

import (
	"fmt"
	"math"
	"strings"

	"mlcc/internal/sim"
)

// Action is the kind of one scripted fault event.
type Action uint8

// Actions.
const (
	LinkDown Action = iota // admin down: flush the wire, discard offered frames
	LinkUp                 // admin up: resume pulling from sources
	Degrade                // reduce the line rate and/or add delay+jitter
	Restore                // undo Degrade: nominal rate, no extra delay
	numActions
)

// String names the action using the JSON plan vocabulary.
func (a Action) String() string {
	switch a {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	case Degrade:
		return "degrade"
	case Restore:
		return "restore"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Event is one scripted fault at an absolute simulation time.
type Event struct {
	At     sim.Time
	Link   string // symbolic link name, resolved by the topology
	Action Action

	// Degrade parameters (ignored for other actions). RateFactor is the
	// fraction of the nominal line rate kept, in (0, 1]; zero means "rate
	// unchanged" so delay-only degradations read naturally.
	RateFactor float64
	ExtraDelay sim.Time // added propagation delay per frame
	Jitter     sim.Time // max uniform random extra delay per frame
}

// LossRule drops each data frame entering the named link with probability
// Prob while the rule's window [Start, End) is open. End 0 means "until the
// end of the run". The dropper only draws randomness inside the window, so
// a rule that never activates consumes none.
type LossRule struct {
	Link  string
	Prob  float64 // [0, 1)
	Start sim.Time
	End   sim.Time
}

// FBKind is a bit set selecting which feedback frame kinds a FeedbackRule
// applies to. Zero means all kinds.
type FBKind uint8

// Feedback frame kinds.
const (
	FBAck       FBKind = 1 << iota // cumulative ACKs (and their INT stacks)
	FBCNP                          // DCQCN congestion notifications
	FBSwitchINT                    // MLCC near-source Switch-INT reflections
	FBAllKinds  = FBAck | FBCNP | FBSwitchINT
)

// String names the kind set using the JSON plan vocabulary.
func (k FBKind) String() string {
	if k == 0 || k == FBAllKinds {
		return "all"
	}
	s := ""
	add := func(bit FBKind, name string) {
		if k&bit != 0 {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(FBAck, "ack")
	add(FBCNP, "cnp")
	add(FBSwitchINT, "sint")
	return s
}

// CorruptMode is a bit set selecting how INT telemetry is corrupted. Zero
// means all modes.
type CorruptMode uint8

// INT corruption modes.
const (
	CorruptTruncate CorruptMode = 1 << iota // drop records off the stack tail
	CorruptStaleTS                          // regress one hop's timestamp
	CorruptGarbage                          // garbage QLen/TxBytes/Band on one hop
	CorruptAllModes = CorruptTruncate | CorruptStaleTS | CorruptGarbage
)

// FeedbackRule impairs the reverse path: feedback frames (ACKs, CNPs,
// Switch-INT reflections) arriving at the matched sending hosts are dropped,
// delayed (with bounded reordering via jitter) or have their INT telemetry
// corrupted, each with independent probability, while the rule's window
// [Start, End) is open. Faults apply at the host's feedback ingress — after
// the NIC port counted the frame as received — so link-level conservation
// books are untouched and the drop is attributed to the feedback plane.
//
// Unlike data-path LossRule, Drop may be exactly 1: a total feedback
// blackout (the watchdog experiment) is a meaningful configuration, whereas
// a data link at 100% loss is just a down link.
type FeedbackRule struct {
	Host    string      // "" or "*" = every host; "host<i>" = one sender
	Kinds   FBKind      // frame kinds affected; 0 = all
	Drop    float64     // P(destroy frame), [0, 1]
	Delay   sim.Time    // fixed extra delivery delay per frame
	Jitter  sim.Time    // max uniform random extra delay (bounded reordering)
	Corrupt float64     // P(corrupt the frame's INT stack), [0, 1]
	Modes   CorruptMode // corruption modes drawn from; 0 = all
	Start   sim.Time
	End     sim.Time // 0 = until the end of the run
}

// vacuous reports whether the rule can never alter a frame.
func (r *FeedbackRule) vacuous() bool {
	return r.Drop <= 0 && r.Corrupt <= 0 && r.Delay <= 0 && r.Jitter <= 0
}

// NodeAction is the kind of one scripted node-level fault event.
type NodeAction uint8

// Node actions. Crash/Restart apply to hosts; Fail/Recover to switches —
// the resolver rejects a mismatched pairing at apply time, the same place an
// unresolvable name surfaces.
const (
	HostCrash     NodeAction = iota // NIC link cut, go-back-N state torn down, flows park
	HostRestart                     // NIC link restored, parked flows rebuilt and resumed
	SwitchFail                      // every attached port cut, queued frames destroyed, PFC folded
	SwitchRecover                   // every attached port restored
	numNodeActions
)

// String names the node action using the JSON plan vocabulary.
func (a NodeAction) String() string {
	switch a {
	case HostCrash:
		return "crash"
	case HostRestart:
		return "restart"
	case SwitchFail:
		return "fail"
	case SwitchRecover:
		return "recover"
	default:
		return fmt.Sprintf("node-action(%d)", uint8(a))
	}
}

// NodeEvent is one scripted node-level fault at an absolute simulation time.
// Node names use the topology vocabulary: "host<i>", "leaf<i>", "spine<i>",
// "dci<i>".
type NodeEvent struct {
	At     sim.Time
	Node   string
	Action NodeAction
}

// Plan is a complete fault schedule. The zero value (and nil) is the empty
// plan: applying it installs nothing and perturbs nothing.
type Plan struct {
	// Seed decorrelates the plan's PRNG streams from the simulation seed;
	// streams are further decorrelated per link name and per rule index.
	Seed     int64
	Events   []Event
	Loss     []LossRule
	Feedback []FeedbackRule
	Nodes    []NodeEvent
}

// Empty reports whether the plan (possibly nil) schedules nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Events) == 0 && len(p.Loss) == 0 &&
		len(p.Feedback) == 0 && len(p.Nodes) == 0)
}

// HasNodes reports whether the plan (possibly nil) carries node-level events.
func (p *Plan) HasNodes() bool {
	return p != nil && len(p.Nodes) > 0
}

// HasFeedback reports whether the plan (possibly nil) carries feedback-plane
// rules.
func (p *Plan) HasFeedback() bool {
	return p != nil && len(p.Feedback) > 0
}

// Validate checks the plan's parameters (not link names, which only the
// topology can resolve).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		if ev.Link == "" {
			return fmt.Errorf("fault: event %d: empty link name", i)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s %s): negative time %v", i, ev.Link, ev.Action, ev.At)
		}
		if ev.Action >= numActions {
			return fmt.Errorf("fault: event %d (%s): unknown action %d", i, ev.Link, ev.Action)
		}
		if ev.Action == Degrade {
			// NaN slips through ordering comparisons (always false), so it
			// must be rejected explicitly or it reaches the link layer.
			if math.IsNaN(ev.RateFactor) || ev.RateFactor < 0 || ev.RateFactor > 1 {
				return fmt.Errorf("fault: event %d (%s): rate factor %v outside (0, 1]", i, ev.Link, ev.RateFactor)
			}
			if ev.ExtraDelay < 0 || ev.Jitter < 0 {
				return fmt.Errorf("fault: event %d (%s): negative delay/jitter", i, ev.Link)
			}
		}
	}
	for i, r := range p.Loss {
		if r.Link == "" {
			return fmt.Errorf("fault: loss rule %d: empty link name", i)
		}
		if math.IsNaN(r.Prob) || r.Prob < 0 || r.Prob >= 1 {
			return fmt.Errorf("fault: loss rule %d (%s): probability %v outside [0, 1)", i, r.Link, r.Prob)
		}
		if r.Start < 0 || (r.End != 0 && r.End <= r.Start) {
			return fmt.Errorf("fault: loss rule %d (%s): bad window [%v, %v)", i, r.Link, r.Start, r.End)
		}
	}
	for i, r := range p.Feedback {
		if err := checkHostName(r.Host); err != nil {
			return fmt.Errorf("fault: feedback rule %d: %w", i, err)
		}
		if math.IsNaN(r.Drop) || r.Drop < 0 || r.Drop > 1 {
			return fmt.Errorf("fault: feedback rule %d (%s): drop probability %v outside [0, 1]", i, r.Host, r.Drop)
		}
		if math.IsNaN(r.Corrupt) || r.Corrupt < 0 || r.Corrupt > 1 {
			return fmt.Errorf("fault: feedback rule %d (%s): corrupt probability %v outside [0, 1]", i, r.Host, r.Corrupt)
		}
		if r.Delay < 0 || r.Jitter < 0 {
			return fmt.Errorf("fault: feedback rule %d (%s): negative delay/jitter", i, r.Host)
		}
		if r.Kinds&^FBAllKinds != 0 {
			return fmt.Errorf("fault: feedback rule %d (%s): unknown kind bits %#x", i, r.Host, r.Kinds&^FBAllKinds)
		}
		if r.Modes&^CorruptAllModes != 0 {
			return fmt.Errorf("fault: feedback rule %d (%s): unknown corrupt-mode bits %#x", i, r.Host, r.Modes&^CorruptAllModes)
		}
		if r.Start < 0 || (r.End != 0 && r.End <= r.Start) {
			return fmt.Errorf("fault: feedback rule %d (%s): bad window [%v, %v)", i, r.Host, r.Start, r.End)
		}
	}
	for i, ev := range p.Nodes {
		if ev.Node == "" {
			return fmt.Errorf("fault: node event %d: empty node name", i)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: node event %d (%s %s): negative time %v", i, ev.Node, ev.Action, ev.At)
		}
		if ev.Action >= numNodeActions {
			return fmt.Errorf("fault: node event %d (%s): unknown action %d", i, ev.Node, ev.Action)
		}
	}
	return nil
}

// checkHostName validates a feedback rule's host selector: "", "*" (every
// host) or "host<i>".
func checkHostName(name string) error {
	if name == "" || name == "*" {
		return nil
	}
	rest, ok := strings.CutPrefix(name, "host")
	if !ok || rest == "" {
		return fmt.Errorf("bad host %q (want \"\", \"*\" or \"host<i>\")", name)
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return fmt.Errorf("bad host %q (want \"\", \"*\" or \"host<i>\")", name)
		}
	}
	return nil
}

// stableHash is FNV-1a over s: a process-independent way to give each link
// its own PRNG stream regardless of resolution order.
func stableHash(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return int64(h)
}
