package fault

import (
	"fmt"

	"mlcc/internal/metrics"
	"mlcc/internal/sim"
)

// NodeKind classifies a resolved node for action/type checking: crash/restart
// apply to hosts, fail/recover to switches.
type NodeKind uint8

// Node kinds.
const (
	NodeHost NodeKind = iota
	NodeSwitch
)

// String names the kind for diagnostics.
func (k NodeKind) String() string {
	if k == NodeHost {
		return "host"
	}
	return "switch"
}

// NodeHooks is one resolvable node's fault surface. Apply[i] runs on engine
// Engs[i] at each of the node's event times; index 0 is the node's home
// engine and carries the counters and the EvNodeState flight-recorder event.
// A node whose failure must be observed by a peer engine (a DCI switch whose
// long-haul cable crosses the shard boundary) lists that engine too, with an
// Apply closure that cuts/restores the remote cable end at the same absolute
// time — the same per-direction ownership scheme scripted link events use.
// Resolvers must report the same hook count on every shard layout (extra
// hooks degenerate to idempotent no-ops on a single engine): the digest folds
// the fired-event count, so the schedule has to be layout-invariant.
type NodeHooks struct {
	ID    int32 // topology node id, for flight-recorder attribution
	Kind  NodeKind
	Engs  []*sim.Engine
	Apply []func(act NodeAction)
}

// NodeResolver maps a plan's symbolic node names ("host<i>", "leaf<i>",
// "spine<i>", "dci<i>") onto built devices; topologies provide one
// (topo.Network.NodeHooksByName).
type NodeResolver func(name string) (*NodeHooks, error)

// applyNodes resolves and schedules the plan's node events. Resolution is
// memoized in plan order so scheduling never depends on map iteration;
// build-time scheduling gives the events minimal insertion sequence numbers
// on every engine, the property the shard-digest tests rely on.
func (inj *Injector) applyNodes(resolveNode NodeResolver) error {
	if len(inj.plan.Nodes) == 0 {
		return nil
	}
	if resolveNode == nil {
		return fmt.Errorf("fault: plan has node events but no node resolver")
	}
	for i := range inj.plan.Nodes {
		ev := inj.plan.Nodes[i]
		nh, ok := inj.nodes[ev.Node]
		if !ok {
			var err error
			nh, err = resolveNode(ev.Node)
			if err != nil {
				return fmt.Errorf("fault: node event %d: %w", i, err)
			}
			if len(nh.Engs) == 0 || len(nh.Engs) != len(nh.Apply) {
				return fmt.Errorf("fault: node %q resolved with mismatched engine/apply lists", ev.Node)
			}
			inj.nodes[ev.Node] = nh
		}
		hostAct := ev.Action == HostCrash || ev.Action == HostRestart
		if hostAct != (nh.Kind == NodeHost) {
			return fmt.Errorf("fault: node event %d: action %q does not apply to %s %q",
				i, ev.Action, nh.Kind, ev.Node)
		}
		for e := range nh.Engs {
			sc, ok := inj.byEng[nh.Engs[e]]
			if !ok {
				return fmt.Errorf("fault: node %q engine %d is outside the build", ev.Node, e)
			}
			e := e
			ev := ev
			nh.Engs[e].At(ev.At, func() { inj.fireNode(sc, nh, e, ev) })
		}
	}
	return nil
}

// fireNode executes one node event's slice on one engine. The home engine
// (index 0) carries the counters and the flight-recorder record so a
// multi-engine event is counted once.
func (inj *Injector) fireNode(sc *shardState, nh *NodeHooks, e int, ev NodeEvent) {
	nh.Apply[e](ev.Action)
	if e != 0 {
		return
	}
	switch ev.Action {
	case HostCrash:
		sc.nodeCrashes++
	case HostRestart:
		sc.nodeRestarts++
	case SwitchFail:
		sc.switchFails++
	case SwitchRecover:
		sc.switchRecovers++
	}
	if sc.fr.Wants(metrics.EvNodeState) {
		sc.fr.Record(metrics.Event{T: sc.eng.Now(), Kind: metrics.EvNodeState,
			Node: nh.ID, Port: -1, Val: int64(ev.Action)})
	}
}

// NodeCrashes reports scripted host-crash events fired. Nil-safe;
// quiescent-read only.
func (inj *Injector) NodeCrashes() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.nodeCrashes })
}

// NodeRestarts reports scripted host-restart events fired. Nil-safe;
// quiescent-read only.
func (inj *Injector) NodeRestarts() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.nodeRestarts })
}

// SwitchFails reports scripted switch-failure events fired. Nil-safe;
// quiescent-read only.
func (inj *Injector) SwitchFails() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.switchFails })
}

// SwitchRecovers reports scripted switch-recovery events fired. Nil-safe;
// quiescent-read only.
func (inj *Injector) SwitchRecovers() int64 {
	if inj == nil {
		return 0
	}
	return inj.sum(func(sc *shardState) int64 { return sc.switchRecovers })
}
