package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mlcc/internal/sim"
)

// FlowSpec is one generated transfer, ready to be registered with a network.
// Tag names the workload component (tenant, collective, incast wave) the flow
// belongs to; "" for untagged single-workload traffic. Tags ride through
// scenario composition into the per-tenant stats collectors but are not part
// of the on-wire trace format.
type FlowSpec struct {
	Src, Dst int // host indices
	Size     int64
	Start    sim.Time
	Cross    bool
	Tag      string
}

// Spec configures traffic generation for the two-DC topology.
type Spec struct {
	CDF *CDF

	// IntraLoad is the fraction of each server's line rate consumed by
	// intra-DC traffic. CrossLoad is the fraction of the long-haul (DCI)
	// link capacity consumed by cross-DC traffic per direction — the
	// natural reading of the paper's "cross-DC traffic at 20% load", since
	// per-host cross load at paper scale would oversubscribe the single
	// 100 Gbps inter-DC fiber several times over.
	IntraLoad float64
	CrossLoad float64

	HostRate sim.Rate
	// IntraRate is the per-host capacity IntraLoad is measured against. In
	// oversubscribed fabrics the evaluation convention (as in HPCC) loads
	// the network relative to its bisection: IntraRate = per-host share of
	// leaf uplink capacity, capped at the NIC rate. 0 = HostRate.
	IntraRate sim.Rate
	CrossRate sim.Rate // long-haul link capacity (per direction)
	Hosts     int      // total hosts (even; first half = DC 0)
	Duration  sim.Time
	Seed      int64

	// Tag, when non-empty, stamps every generated FlowSpec (multi-tenant
	// scenario composition uses one Spec per tenant).
	Tag string
}

// Validate checks that the spec can drive generation at all. It rejects the
// degenerate inputs Generate used to swallow silently: negative or non-finite
// rates and loads (negative λ made gen produce zero flows with no signal) and
// odd host counts (the first-half-is-DC0 split assigns the odd host to no
// valid cross-DC peer set).
func (spec Spec) Validate() error {
	if spec.CDF == nil {
		return fmt.Errorf("workload: spec has no CDF")
	}
	if !(spec.CDF.Mean() > 0) {
		return fmt.Errorf("workload: CDF %q has non-positive mean size", spec.CDF.Name)
	}
	if spec.Hosts < 2 {
		return fmt.Errorf("workload: %d hosts (need at least 2)", spec.Hosts)
	}
	if spec.Hosts%2 != 0 {
		return fmt.Errorf("workload: odd host count %d (first half = DC 0 needs an even split)", spec.Hosts)
	}
	if spec.Duration <= 0 {
		return fmt.Errorf("workload: non-positive duration %v", spec.Duration)
	}
	if spec.HostRate <= 0 {
		return fmt.Errorf("workload: non-positive host rate %v", spec.HostRate)
	}
	if spec.IntraRate < 0 {
		return fmt.Errorf("workload: negative intra rate %v", spec.IntraRate)
	}
	if spec.CrossRate < 0 {
		return fmt.Errorf("workload: negative cross rate %v", spec.CrossRate)
	}
	for _, l := range []struct {
		name string
		v    float64
	}{{"intra", spec.IntraLoad}, {"cross", spec.CrossLoad}} {
		if math.IsNaN(l.v) || math.IsInf(l.v, 0) || l.v < 0 {
			return fmt.Errorf("workload: %s load %v (want a finite fraction >= 0)", l.name, l.v)
		}
	}
	return nil
}

// Generate produces the open-loop flow arrivals for spec: every host runs
// two independent Poisson processes (intra and cross), flow sizes are i.i.d.
// from the CDF, intra destinations are uniform among other same-DC hosts and
// cross destinations uniform in the other DC. Flows are returned in the
// canonical deterministic order of SortFlows — globally sorted by (Start,
// Src, Dst, Size, Tag) — so independently generated lists merge into one
// schedule without any ordering surprises. Invalid specs return an error
// (they used to yield an empty list indistinguishable from zero load); both
// loads zero is valid and produces no flows.
func Generate(spec Spec) ([]FlowSpec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed*0x9e3779b9 + 1))
	mean := spec.CDF.Mean() // bytes
	perDC := spec.Hosts / 2
	var out []FlowSpec

	crossRate, intraRate := spec.rates()
	for h := 0; h < spec.Hosts; h++ {
		// flows/sec so that mean bytes * arrival rate = load * capacity/8.
		gen := func(load float64, cross bool) {
			if load <= 0 {
				return
			}
			if !cross && perDC < 2 {
				// A single-host DC has no intra destination: the uniform
				// draw over other same-DC hosts would retry forever.
				return
			}
			var lambda float64 // flows per second
			if cross {
				// Each DC's senders collectively fill load×crossRate.
				lambda = load * float64(crossRate) / 8 / mean / float64(perDC)
			} else {
				lambda = load * float64(intraRate) / 8 / mean
			}
			if !(lambda > 0) || math.IsInf(lambda, 0) {
				return
			}
			t := sim.Time(0)
			for {
				// Exponential inter-arrival.
				gap := -math.Log(1-rng.Float64()) / lambda
				t += sim.FromSeconds(gap)
				if t >= spec.Duration {
					return
				}
				dst := h
				if cross {
					if h < perDC {
						dst = perDC + rng.Intn(perDC)
					} else {
						dst = rng.Intn(perDC)
					}
				} else {
					base := 0
					if h >= perDC {
						base = perDC
					}
					for dst == h {
						dst = base + rng.Intn(perDC)
					}
				}
				out = append(out, FlowSpec{
					Src:   h,
					Dst:   dst,
					Size:  spec.CDF.Sample(rng),
					Start: t,
					Cross: cross,
					Tag:   spec.Tag,
				})
			}
		}
		gen(spec.IntraLoad, false)
		gen(spec.CrossLoad, true)
	}
	SortFlows(out)
	return out, nil
}

// SortFlows puts flows into the canonical deterministic schedule order:
// stable-sorted by (Start, Src, Dst, Size, Tag). Registering flows in this
// order is what makes flow-ID assignment — and therefore ECMP routing and
// determinism digests — a pure function of the flow set, independent of how
// many generated lists were concatenated to produce it.
func SortFlows(flows []FlowSpec) {
	sort.SliceStable(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		return a.Tag < b.Tag
	})
}

// MergeFlows concatenates several flow lists into one schedule in the
// canonical SortFlows order, leaving the inputs untouched.
func MergeFlows(lists ...[]FlowSpec) []FlowSpec {
	var total int
	for _, l := range lists {
		total += len(l)
	}
	out := make([]FlowSpec, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	SortFlows(out)
	return out
}

// rates resolves the capacities loads are measured against, applying the
// same defaults Generate uses: CrossRate 0 falls back to the NIC rate, and
// IntraRate is capped at the NIC rate (a host cannot offer more than it can
// serialize).
func (spec Spec) rates() (crossRate, intraRate sim.Rate) {
	crossRate = spec.CrossRate
	if crossRate == 0 {
		crossRate = spec.HostRate
	}
	intraRate = spec.IntraRate
	if intraRate == 0 || intraRate > spec.HostRate {
		intraRate = spec.HostRate
	}
	return crossRate, intraRate
}

// OfferedLoads reports the realized intra- and cross-DC offered loads of
// flows, each as a fraction of the capacity its Spec load knob is measured
// against: intra bytes against Hosts × IntraRate × Duration, cross bytes
// against the long-haul capacity in both directions, 2 × CrossRate ×
// Duration — the denominators Generate sizes its Poisson processes for.
// Normalizing cross traffic by Hosts × HostRate (as a single aggregate
// diagnostic once did) understates the realized cross load by the ratio of
// host to long-haul capacity.
//
// A spec whose capacities or duration cannot normalize anything returns an
// error instead of (0, 0): "no flows arrived" and "the denominator was
// meaningless" are different findings, and acceptance tests asserting on
// realized load must not pass vacuously on the latter.
func OfferedLoads(flows []FlowSpec, spec Spec) (intra, cross float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, 0, err
	}
	var intraBytes, crossBytes int64
	for _, f := range flows {
		if f.Cross {
			crossBytes += f.Size
		} else {
			intraBytes += f.Size
		}
	}
	crossRate, intraRate := spec.rates()
	dur := spec.Duration.Seconds()
	intraCap := float64(spec.Hosts) * float64(intraRate) / 8 * dur
	crossCap := 2 * float64(crossRate) / 8 * dur
	if !(intraCap > 0) || !(crossCap > 0) {
		return 0, 0, fmt.Errorf("workload: degenerate capacities (intra %g B, cross %g B over %v)", intraCap, crossCap, spec.Duration)
	}
	return float64(intraBytes) / intraCap, float64(crossBytes) / crossCap, nil
}
