package workload

import (
	"math"
	"math/rand"

	"mlcc/internal/sim"
)

// FlowSpec is one generated transfer, ready to be registered with a network.
type FlowSpec struct {
	Src, Dst int // host indices
	Size     int64
	Start    sim.Time
	Cross    bool
}

// Spec configures traffic generation for the two-DC topology.
type Spec struct {
	CDF *CDF

	// IntraLoad is the fraction of each server's line rate consumed by
	// intra-DC traffic. CrossLoad is the fraction of the long-haul (DCI)
	// link capacity consumed by cross-DC traffic per direction — the
	// natural reading of the paper's "cross-DC traffic at 20% load", since
	// per-host cross load at paper scale would oversubscribe the single
	// 100 Gbps inter-DC fiber several times over.
	IntraLoad float64
	CrossLoad float64

	HostRate sim.Rate
	// IntraRate is the per-host capacity IntraLoad is measured against. In
	// oversubscribed fabrics the evaluation convention (as in HPCC) loads
	// the network relative to its bisection: IntraRate = per-host share of
	// leaf uplink capacity, capped at the NIC rate. 0 = HostRate.
	IntraRate sim.Rate
	CrossRate sim.Rate // long-haul link capacity (per direction)
	Hosts     int      // total hosts (even; first half = DC 0)
	Duration  sim.Time
	Seed      int64
}

// Generate produces the open-loop flow arrivals for spec: every host runs
// two independent Poisson processes (intra and cross), flow sizes are i.i.d.
// from the CDF, intra destinations are uniform among other same-DC hosts and
// cross destinations uniform in the other DC. Flows are returned sorted by
// construction (per-host merge happens naturally at schedule time; callers
// just register them all).
func Generate(spec Spec) []FlowSpec {
	if spec.CDF == nil || spec.Hosts < 2 || spec.Duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(spec.Seed*0x9e3779b9 + 1))
	mean := spec.CDF.Mean() // bytes
	if !(mean > 0) {        // non-positive or NaN: arrival rate is meaningless
		return nil
	}
	perDC := spec.Hosts / 2
	var out []FlowSpec

	crossRate, intraRate := spec.rates()
	for h := 0; h < spec.Hosts; h++ {
		// flows/sec so that mean bytes * arrival rate = load * capacity/8.
		gen := func(load float64, cross bool) {
			if load <= 0 {
				return
			}
			if !cross && perDC < 2 {
				// A single-host DC has no intra destination: the uniform
				// draw over other same-DC hosts would retry forever.
				return
			}
			var lambda float64 // flows per second
			if cross {
				// Each DC's senders collectively fill load×crossRate.
				lambda = load * float64(crossRate) / 8 / mean / float64(perDC)
			} else {
				lambda = load * float64(intraRate) / 8 / mean
			}
			if !(lambda > 0) || math.IsInf(lambda, 0) {
				return
			}
			t := sim.Time(0)
			for {
				// Exponential inter-arrival.
				gap := -math.Log(1-rng.Float64()) / lambda
				t += sim.FromSeconds(gap)
				if t >= spec.Duration {
					return
				}
				dst := h
				if cross {
					if h < perDC {
						dst = perDC + rng.Intn(perDC)
					} else {
						dst = rng.Intn(perDC)
					}
				} else {
					base := 0
					if h >= perDC {
						base = perDC
					}
					for dst == h {
						dst = base + rng.Intn(perDC)
					}
				}
				out = append(out, FlowSpec{
					Src:   h,
					Dst:   dst,
					Size:  spec.CDF.Sample(rng),
					Start: t,
					Cross: cross,
				})
			}
		}
		gen(spec.IntraLoad, false)
		gen(spec.CrossLoad, true)
	}
	return out
}

// rates resolves the capacities loads are measured against, applying the
// same defaults Generate uses: CrossRate 0 falls back to the NIC rate, and
// IntraRate is capped at the NIC rate (a host cannot offer more than it can
// serialize).
func (spec Spec) rates() (crossRate, intraRate sim.Rate) {
	crossRate = spec.CrossRate
	if crossRate == 0 {
		crossRate = spec.HostRate
	}
	intraRate = spec.IntraRate
	if intraRate == 0 || intraRate > spec.HostRate {
		intraRate = spec.HostRate
	}
	return crossRate, intraRate
}

// OfferedLoads reports the realized intra- and cross-DC offered loads of
// flows, each as a fraction of the capacity its Spec load knob is measured
// against: intra bytes against Hosts × IntraRate × Duration, cross bytes
// against the long-haul capacity in both directions, 2 × CrossRate ×
// Duration — the denominators Generate sizes its Poisson processes for.
// Normalizing cross traffic by Hosts × HostRate (as a single aggregate
// diagnostic once did) understates the realized cross load by the ratio of
// host to long-haul capacity.
func OfferedLoads(flows []FlowSpec, spec Spec) (intra, cross float64) {
	var intraBytes, crossBytes int64
	for _, f := range flows {
		if f.Cross {
			crossBytes += f.Size
		} else {
			intraBytes += f.Size
		}
	}
	crossRate, intraRate := spec.rates()
	dur := spec.Duration.Seconds()
	intraCap := float64(spec.Hosts) * float64(intraRate) / 8 * dur
	crossCap := 2 * float64(crossRate) / 8 * dur
	if intraCap > 0 {
		intra = float64(intraBytes) / intraCap
	}
	if crossCap > 0 {
		cross = float64(crossBytes) / crossCap
	}
	return intra, cross
}
