package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mlcc/internal/sim"
)

func TestCDFValidate(t *testing.T) {
	bad := &CDF{Name: "bad", Sizes: []int64{10, 5}, Probs: []float64{0.5, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-monotone sizes accepted")
	}
	bad2 := &CDF{Name: "bad2", Sizes: []int64{1, 10}, Probs: []float64{0, 0.9}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("CDF not ending at 1 accepted")
	}
	short := &CDF{Name: "s", Sizes: []int64{1}, Probs: []float64{1}}
	if err := short.Validate(); err == nil {
		t.Fatal("single-point CDF accepted")
	}
	nan := &CDF{Name: "nan", Sizes: []int64{1, 10}, Probs: []float64{math.NaN(), 1}}
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN probability accepted (NaN passes every ordering comparison)")
	}
	over := &CDF{Name: "over", Sizes: []int64{1, 10}, Probs: []float64{0, 1.5}}
	if err := over.Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	zeroSize := &CDF{Name: "z", Sizes: []int64{0, 10}, Probs: []float64{0, 1}}
	if err := zeroSize.Validate(); err == nil {
		t.Fatal("zero-byte smallest size accepted (Sample could return 0)")
	}
	if err := Websearch().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Hadoop().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"websearch", "hadoop"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range []*CDF{Websearch(), Hadoop()} {
		lo, hi := c.Sizes[0], c.Sizes[len(c.Sizes)-1]
		for i := 0; i < 10000; i++ {
			s := c.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", c.Name, s, lo, hi)
			}
		}
	}
}

func TestEmpiricalMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []*CDF{Websearch(), Hadoop()} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(rng))
		}
		emp := sum / n
		want := c.Mean()
		if math.Abs(emp-want)/want > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name, emp, want)
		}
	}
}

func TestHadoopIsMostlySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Hadoop()
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if c.Sample(rng) <= 10000 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.6 {
		t.Errorf("hadoop small-flow fraction = %.2f, want >= 0.6", frac)
	}
}

func TestWebsearchHasHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Websearch()
	var big int
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Sample(rng) >= 1_000_000 {
			big++
		}
	}
	frac := float64(big) / n
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("websearch >=1MB fraction = %.2f, want ~0.30", frac)
	}
}

func testSpec(intra, cross float64) Spec {
	return Spec{
		CDF:       Websearch(),
		IntraLoad: intra,
		CrossLoad: cross,
		HostRate:  25 * sim.Gbps,
		CrossRate: 100 * sim.Gbps,
		Hosts:     32,
		Duration:  20 * sim.Millisecond,
		Seed:      3,
	}
}

// mustGenerate fails the test on a generation error; for specs that are
// valid by construction.
func mustGenerate(t *testing.T, spec Spec) []FlowSpec {
	t.Helper()
	flows, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", spec, err)
	}
	return flows
}

func TestGenerateLoad(t *testing.T) {
	spec := testSpec(0.5, 0.2)
	flows := mustGenerate(t, spec)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	// Expected bytes: intra 0.5×32 hosts×25G; cross 0.2×100G per direction.
	capIntra := 0.5 * 32 * 25e9 / 8 * spec.Duration.Seconds()
	capCross := 2 * 0.2 * 100e9 / 8 * spec.Duration.Seconds()
	var intra, cross float64
	for _, f := range flows {
		if f.Cross {
			cross += float64(f.Size)
		} else {
			intra += float64(f.Size)
		}
	}
	if math.Abs(intra-capIntra)/capIntra > 0.25 {
		t.Errorf("intra bytes %.3g, want ≈ %.3g", intra, capIntra)
	}
	if math.Abs(cross-capCross)/capCross > 0.35 {
		t.Errorf("cross bytes %.3g, want ≈ %.3g", cross, capCross)
	}
}

func TestGenerateDestinations(t *testing.T) {
	flows := mustGenerate(t, testSpec(0.3, 0.1))
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		sameDC := (f.Src < 16) == (f.Dst < 16)
		if f.Cross == sameDC {
			t.Fatalf("flow %+v: cross flag inconsistent", f)
		}
		if f.Start < 0 || f.Start >= 20*sim.Millisecond {
			t.Fatalf("start %v outside window", f.Start)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, testSpec(0.5, 0.2))
	b := mustGenerate(t, testSpec(0.5, 0.2))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("empty spec accepted (used to yield a silent empty list)")
	}
	spec := testSpec(0, 0)
	if flows := mustGenerate(t, spec); len(flows) != 0 {
		t.Fatalf("zero load produced %d flows", len(flows))
	}
}

// TestGenerateRejectsDegenerateSpecs is the silent-empty-output regression:
// negative rates made λ negative, which the inner generator silently dropped,
// and odd host counts broke the first-half-is-DC0 split. All of these must
// surface as errors now.
func TestGenerateRejectsDegenerateSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"negative host rate", func(s *Spec) { s.HostRate = -25 * sim.Gbps }},
		{"zero host rate", func(s *Spec) { s.HostRate = 0 }},
		{"negative intra rate", func(s *Spec) { s.IntraRate = -sim.Gbps }},
		{"negative cross rate", func(s *Spec) { s.CrossRate = -sim.Gbps }},
		{"odd hosts", func(s *Spec) { s.Hosts = 33 }},
		{"one host", func(s *Spec) { s.Hosts = 1 }},
		{"zero duration", func(s *Spec) { s.Duration = 0 }},
		{"negative intra load", func(s *Spec) { s.IntraLoad = -0.1 }},
		{"NaN cross load", func(s *Spec) { s.CrossLoad = math.NaN() }},
		{"infinite intra load", func(s *Spec) { s.IntraLoad = math.Inf(1) }},
		{"nil CDF", func(s *Spec) { s.CDF = nil }},
	}
	for _, tc := range cases {
		spec := testSpec(0.5, 0.2)
		tc.mutate(&spec)
		if _, err := Generate(spec); err == nil {
			t.Errorf("%s: accepted (want an error, not silent empty output)", tc.name)
		}
	}
}

// TestGenerateSorted is the sort-contract regression: the doc used to claim
// "sorted by construction" while the output was per-host interleaved. The
// contract now is the canonical (Start, Src, Dst, Size, Tag) order, which
// composition relies on when merging independently generated lists.
func TestGenerateSorted(t *testing.T) {
	flows := mustGenerate(t, testSpec(0.5, 0.2))
	if len(flows) < 2 {
		t.Fatal("workload too small to exercise ordering")
	}
	for i := 1; i < len(flows); i++ {
		a, b := flows[i-1], flows[i]
		less := a.Start < b.Start ||
			(a.Start == b.Start && (a.Src < b.Src ||
				(a.Src == b.Src && (a.Dst < b.Dst ||
					(a.Dst == b.Dst && (a.Size < b.Size ||
						(a.Size == b.Size && a.Tag <= b.Tag)))))))
		if !less {
			t.Fatalf("flows %d/%d out of canonical order: %+v then %+v", i-1, i, a, b)
		}
	}
	// Sorting must be idempotent: re-sorting the output changes nothing.
	resorted := append([]FlowSpec(nil), flows...)
	SortFlows(resorted)
	for i := range flows {
		if flows[i] != resorted[i] {
			t.Fatalf("flow %d moved under re-sort: %+v vs %+v", i, flows[i], resorted[i])
		}
	}
}

// TestMergeFlows pins the deterministic-merge helper: merging per-tenant
// lists must equal sorting the concatenation, regardless of list order.
func TestMergeFlows(t *testing.T) {
	specA := testSpec(0.3, 0.1)
	specA.Tag = "a"
	specB := testSpec(0.2, 0.2)
	specB.Tag = "b"
	specB.Seed = 9
	a := mustGenerate(t, specA)
	b := mustGenerate(t, specB)
	ab := MergeFlows(a, b)
	ba := MergeFlows(b, a)
	if len(ab) != len(a)+len(b) || len(ab) != len(ba) {
		t.Fatalf("merge lengths: ab=%d ba=%d a=%d b=%d", len(ab), len(ba), len(a), len(b))
	}
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("merge order depends on input order at %d: %+v vs %+v", i, ab[i], ba[i])
		}
	}
	for _, f := range ab {
		if f.Tag != "a" && f.Tag != "b" {
			t.Fatalf("flow lost its tag: %+v", f)
		}
	}
}

// TestGenerateSingleHostPerDC is the livelock regression: with Hosts=2 each
// DC has exactly one host, so the intra-DC destination draw ("uniform among
// OTHER same-DC hosts") has an empty support and the retry loop `for dst == h`
// used to spin forever. Generate must now skip intra generation for
// single-host DCs — and still produce the cross traffic. The goroutine +
// deadline guard keeps a regression from hanging the whole test binary.
func TestGenerateSingleHostPerDC(t *testing.T) {
	done := make(chan []FlowSpec, 1)
	go func() {
		spec := testSpec(0.5, 0.2)
		spec.Hosts = 2
		flows, err := Generate(spec)
		if err != nil {
			t.Error(err)
		}
		done <- flows
	}()
	select {
	case flows := <-done:
		for _, f := range flows {
			if !f.Cross {
				t.Fatalf("intra flow %+v generated with one host per DC", f)
			}
			if f.Src == f.Dst {
				t.Fatalf("self flow %+v", f)
			}
		}
		if len(flows) == 0 {
			t.Fatal("cross traffic missing: intra skip must not suppress cross generation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Generate livelocked with perDC == 1 and IntraLoad > 0")
	}
}

// TestOfferedLoadsPinned pins the split diagnostics against the spec's own
// load knobs: the realized intra fraction is measured against Hosts ×
// IntraRate and the cross fraction against both directions of the long haul
// (2 × CrossRate) — NOT against Hosts × HostRate, which would understate
// cross load by HostRate/CrossRate (the old aggregate diagnostic's bug).
func TestOfferedLoadsPinned(t *testing.T) {
	spec := testSpec(0.5, 0.2)
	flows := mustGenerate(t, spec)
	intra, cross, err := OfferedLoads(flows, spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(intra-0.5)/0.5 > 0.25 {
		t.Errorf("realized intra load %.3f, want ≈ 0.5", intra)
	}
	if math.Abs(cross-0.2)/0.2 > 0.35 {
		t.Errorf("realized cross load %.3f, want ≈ 0.2", cross)
	}

	// Construct a trace where the wrong denominator is unmistakable: one
	// cross flow filling exactly 10% of both long-haul directions for the
	// window. Hosts × HostRate is 4× the two-way long-haul capacity here, so
	// the old normalization would report 0.025.
	sized := []FlowSpec{{Src: 0, Dst: 16, Size: int64(2 * 100e9 / 8 * 0.020 * 0.10), Cross: true}}
	intraOnly, crossOnly, err := OfferedLoads(sized, spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(crossOnly-0.10) > 1e-9 {
		t.Errorf("pinned cross load = %.6f, want 0.10 exactly", crossOnly)
	}
	if intraOnly != 0 {
		t.Errorf("cross-only trace reported intra load %v", intraOnly)
	}
}

// TestOfferedLoadsRejectsVacuousSpec pins the ok/error contract: a spec whose
// denominators are meaningless must error, not report (0, 0) — an acceptance
// test comparing realized to requested load would otherwise pass vacuously.
func TestOfferedLoadsRejectsVacuousSpec(t *testing.T) {
	flows := []FlowSpec{{Src: 0, Dst: 16, Size: 1 << 20, Cross: true}}
	zeroDur := testSpec(0.5, 0.2)
	zeroDur.Duration = 0
	if _, _, err := OfferedLoads(flows, zeroDur); err == nil {
		t.Error("zero-duration spec accepted")
	}
	zeroCap := testSpec(0.5, 0.2)
	zeroCap.HostRate = 0
	if _, _, err := OfferedLoads(flows, zeroCap); err == nil {
		t.Error("zero-capacity spec accepted")
	}
	negCap := testSpec(0.5, 0.2)
	negCap.CrossRate = -sim.Gbps
	if _, _, err := OfferedLoads(flows, negCap); err == nil {
		t.Error("negative-capacity spec accepted")
	}
	// No flows over a valid spec is NOT an error: zero realized load is a
	// real measurement.
	intra, cross, err := OfferedLoads(nil, testSpec(0.5, 0.2))
	if err != nil || intra != 0 || cross != 0 {
		t.Errorf("empty trace over a valid spec: got (%v, %v, %v), want (0, 0, nil)", intra, cross, err)
	}
}

// TestOfferedLoadsMatchSpecProperty checks across seeds that the realized
// offered load tracks the requested IntraLoad/CrossLoad. Per-seed noise is
// real — websearch's heavy tail gives aggregate bytes a ~25-35% relative
// std at this window — so each seed gets a loose bound and the seed-averaged
// loads get a tight one (estimator consistency, not luck).
func TestOfferedLoadsMatchSpecProperty(t *testing.T) {
	const seeds = 8
	var sumIntra, sumCross float64
	for seed := int64(1); seed <= seeds; seed++ {
		spec := testSpec(0.5, 0.2)
		spec.Seed = seed
		intra, cross, err := OfferedLoads(mustGenerate(t, spec), spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(intra-0.5)/0.5 > 0.6 {
			t.Errorf("seed %d: realized intra load %.3f implausibly far from 0.5", seed, intra)
		}
		if math.Abs(cross-0.2)/0.2 > 0.9 {
			t.Errorf("seed %d: realized cross load %.3f implausibly far from 0.2", seed, cross)
		}
		sumIntra += intra
		sumCross += cross
	}
	avgIntra, avgCross := sumIntra/seeds, sumCross/seeds
	if math.Abs(avgIntra-0.5)/0.5 > 0.15 {
		t.Errorf("seed-averaged intra load %.3f, want ≈ 0.5 within 15%%", avgIntra)
	}
	if math.Abs(avgCross-0.2)/0.2 > 0.25 {
		t.Errorf("seed-averaged cross load %.3f, want ≈ 0.2 within 25%%", avgCross)
	}
}

// TestMeanIncludesPointMass pins the Mean fix: probability mass sitting at
// the first size (Probs[0] > 0) is part of the expectation. The built-in
// tables have Probs[0] = 0, so this fix cannot move their generated loads.
func TestMeanIncludesPointMass(t *testing.T) {
	c := &CDF{Name: "pm", Sizes: []int64{100, 200}, Probs: []float64{0.5, 1}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// E = 0.5×100 (point mass) + 0.5×(100+200)/2 (linear segment) = 125.
	if got := c.Mean(); math.Abs(got-125) > 1e-9 {
		t.Errorf("Mean = %v, want 125", got)
	}
	for _, b := range []*CDF{Websearch(), Hadoop()} {
		if b.Probs[0] != 0 {
			t.Errorf("%s: Probs[0] = %v — point-mass fix would change its mean", b.Name, b.Probs[0])
		}
	}
}

// Property: sampling is monotone in the uniform draw — more probability mass
// maps to larger sizes.
func TestSampleMonotoneProperty(t *testing.T) {
	c := Websearch()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Invert manually at two ordered points.
		u1, u2 := rng.Float64(), rng.Float64()
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		s1 := sampleAt(c, u1)
		s2 := sampleAt(c, u2)
		return s1 <= s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sampleAt exposes the inverse transform at a fixed u via a stub RNG.
func sampleAt(c *CDF, u float64) int64 {
	rng := rand.New(&fixedSource{u: u})
	return c.Sample(rng)
}

// fixedSource makes rng.Float64 return approximately u once.
type fixedSource struct{ u float64 }

func (f *fixedSource) Int63() int64 {
	v := int64(f.u * (1 << 63))
	if v >= 1<<63-1 {
		v = 1<<63 - 1
	}
	return v
}
func (f *fixedSource) Seed(int64) {}
