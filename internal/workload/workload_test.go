package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlcc/internal/sim"
)

func TestCDFValidate(t *testing.T) {
	bad := &CDF{Name: "bad", Sizes: []int64{10, 5}, Probs: []float64{0.5, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-monotone sizes accepted")
	}
	bad2 := &CDF{Name: "bad2", Sizes: []int64{1, 10}, Probs: []float64{0, 0.9}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("CDF not ending at 1 accepted")
	}
	short := &CDF{Name: "s", Sizes: []int64{1}, Probs: []float64{1}}
	if err := short.Validate(); err == nil {
		t.Fatal("single-point CDF accepted")
	}
	if err := Websearch().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Hadoop().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"websearch", "hadoop"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range []*CDF{Websearch(), Hadoop()} {
		lo, hi := c.Sizes[0], c.Sizes[len(c.Sizes)-1]
		for i := 0; i < 10000; i++ {
			s := c.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", c.Name, s, lo, hi)
			}
		}
	}
}

func TestEmpiricalMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []*CDF{Websearch(), Hadoop()} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(rng))
		}
		emp := sum / n
		want := c.Mean()
		if math.Abs(emp-want)/want > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name, emp, want)
		}
	}
}

func TestHadoopIsMostlySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Hadoop()
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if c.Sample(rng) <= 10000 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.6 {
		t.Errorf("hadoop small-flow fraction = %.2f, want >= 0.6", frac)
	}
}

func TestWebsearchHasHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Websearch()
	var big int
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Sample(rng) >= 1_000_000 {
			big++
		}
	}
	frac := float64(big) / n
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("websearch >=1MB fraction = %.2f, want ~0.30", frac)
	}
}

func testSpec(intra, cross float64) Spec {
	return Spec{
		CDF:       Websearch(),
		IntraLoad: intra,
		CrossLoad: cross,
		HostRate:  25 * sim.Gbps,
		CrossRate: 100 * sim.Gbps,
		Hosts:     32,
		Duration:  20 * sim.Millisecond,
		Seed:      3,
	}
}

func TestGenerateLoad(t *testing.T) {
	spec := testSpec(0.5, 0.2)
	flows := Generate(spec)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	// Expected bytes: intra 0.5×32 hosts×25G; cross 0.2×100G per direction.
	capIntra := 0.5 * 32 * 25e9 / 8 * spec.Duration.Seconds()
	capCross := 2 * 0.2 * 100e9 / 8 * spec.Duration.Seconds()
	var intra, cross float64
	for _, f := range flows {
		if f.Cross {
			cross += float64(f.Size)
		} else {
			intra += float64(f.Size)
		}
	}
	if math.Abs(intra-capIntra)/capIntra > 0.25 {
		t.Errorf("intra bytes %.3g, want ≈ %.3g", intra, capIntra)
	}
	if math.Abs(cross-capCross)/capCross > 0.35 {
		t.Errorf("cross bytes %.3g, want ≈ %.3g", cross, capCross)
	}
}

func TestGenerateDestinations(t *testing.T) {
	flows := Generate(testSpec(0.3, 0.1))
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		sameDC := (f.Src < 16) == (f.Dst < 16)
		if f.Cross == sameDC {
			t.Fatalf("flow %+v: cross flag inconsistent", f)
		}
		if f.Start < 0 || f.Start >= 20*sim.Millisecond {
			t.Fatalf("start %v outside window", f.Start)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec(0.5, 0.2))
	b := Generate(testSpec(0.5, 0.2))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if Generate(Spec{}) != nil {
		t.Fatal("empty spec should produce nil")
	}
	spec := testSpec(0, 0)
	if flows := Generate(spec); len(flows) != 0 {
		t.Fatalf("zero load produced %d flows", len(flows))
	}
}

// Property: sampling is monotone in the uniform draw — more probability mass
// maps to larger sizes.
func TestSampleMonotoneProperty(t *testing.T) {
	c := Websearch()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Invert manually at two ordered points.
		u1, u2 := rng.Float64(), rng.Float64()
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		s1 := sampleAt(c, u1)
		s2 := sampleAt(c, u2)
		return s1 <= s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sampleAt exposes the inverse transform at a fixed u via a stub RNG.
func sampleAt(c *CDF, u float64) int64 {
	rng := rand.New(&fixedSource{u: u})
	return c.Sample(rng)
}

// fixedSource makes rng.Float64 return approximately u once.
type fixedSource struct{ u float64 }

func (f *fixedSource) Int63() int64 {
	v := int64(f.u * (1 << 63))
	if v >= 1<<63-1 {
		v = 1<<63 - 1
	}
	return v
}
func (f *fixedSource) Seed(int64) {}
