package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mlcc/internal/sim"
)

// Flow trace files let workloads be replayed across runs and tools (and
// imported from external generators). The format is CSV with a header:
//
//	src,dst,size_bytes,start_us
//	0,16,125000,43.125
//
// Hosts are global indices (first half = DC 0); Cross is derived by the
// loader from the host count.

// WriteFlows emits flows as a trace file.
func WriteFlows(w io.Writer, flows []FlowSpec) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "src,dst,size_bytes,start_us"); err != nil {
		return err
	}
	for _, f := range flows {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%.6f\n", f.Src, f.Dst, f.Size, f.Start.Micros()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFlows parses a trace file. hosts is the total host count of the
// target topology, used to validate indices and derive the Cross flag.
func ReadFlows(r io.Reader, hosts int) ([]FlowSpec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []FlowSpec
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "src,") {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: want 4 fields, got %d", line, len(parts))
		}
		src, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: src: %v", line, err)
		}
		dst, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: dst: %v", line, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: size: %v", line, err)
		}
		us, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: start: %v", line, err)
		}
		if src < 0 || src >= hosts || dst < 0 || dst >= hosts {
			return nil, fmt.Errorf("workload: trace line %d: host out of range [0,%d)", line, hosts)
		}
		if src == dst {
			return nil, fmt.Errorf("workload: trace line %d: self flow", line)
		}
		if size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: non-positive size", line)
		}
		// Validate the start BEFORE converting: float→int64 conversion of
		// NaN or out-of-range values is implementation-defined in Go, so a
		// post-conversion check could pass garbage. The bound is the int64
		// picosecond clock's range (~9.2e12 µs ≈ 106 simulated days).
		const maxStartUS = float64(1<<63-1) / 1e6
		if !(us >= 0 && us <= maxStartUS) {
			return nil, fmt.Errorf("workload: trace line %d: start %v outside [0, %g] µs", line, us, maxStartUS)
		}
		perDC := hosts / 2
		out = append(out, FlowSpec{
			Src:   src,
			Dst:   dst,
			Size:  size,
			Start: sim.FromSeconds(us / 1e6),
			Cross: (src < perDC) != (dst < perDC),
		})
	}
	return out, sc.Err()
}
