// Package workload generates the evaluation traffic: flow sizes drawn from
// the published Websearch (DCTCP) and Hadoop (Facebook) distributions and
// open-loop Poisson arrivals that hit a configured fraction of each server's
// line rate, split between intra- and cross-datacenter destinations.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CDF is a piecewise-linear flow-size distribution: P(size <= Sizes[i]) =
// Probs[i]. Sampling uses inverse-transform with linear interpolation
// between points, the same scheme as the HPCC/ns-3 traffic generators.
type CDF struct {
	Name  string
	Sizes []int64   // bytes, ascending
	Probs []float64 // cumulative probability, ascending, ending at 1
}

// Validate checks monotonicity and domains; builders panic on malformed
// tables. A valid table guarantees Sample stays inside [Sizes[0], Sizes[n-1]]
// and Mean is finite and positive. NaN probabilities are rejected explicitly:
// they slide through ordering comparisons (every comparison with NaN is
// false), which is exactly the kind of silent miscount fuzzing flushed out.
func (c *CDF) Validate() error {
	if len(c.Sizes) != len(c.Probs) || len(c.Sizes) < 2 {
		return fmt.Errorf("workload: CDF %q needs matching sizes/probs (≥2 points)", c.Name)
	}
	if c.Sizes[0] < 1 {
		return fmt.Errorf("workload: CDF %q smallest size %d < 1 byte", c.Name, c.Sizes[0])
	}
	for i, p := range c.Probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("workload: CDF %q probability %v at %d outside [0, 1]", c.Name, p, i)
		}
	}
	for i := 1; i < len(c.Sizes); i++ {
		if c.Sizes[i] < c.Sizes[i-1] || c.Probs[i] < c.Probs[i-1] {
			return fmt.Errorf("workload: CDF %q not monotone at %d", c.Name, i)
		}
	}
	if c.Probs[len(c.Probs)-1] != 1 {
		return fmt.Errorf("workload: CDF %q does not end at probability 1", c.Name)
	}
	return nil
}

// Sample draws one flow size.
func (c *CDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(c.Probs, u)
	if i == 0 {
		return c.Sizes[0]
	}
	if i >= len(c.Probs) {
		return c.Sizes[len(c.Sizes)-1]
	}
	p0, p1 := c.Probs[i-1], c.Probs[i]
	s0, s1 := c.Sizes[i-1], c.Sizes[i]
	if p1 == p0 {
		return s1
	}
	frac := (u - p0) / (p1 - p0)
	// Bound the offset BEFORE converting: for spans beyond 2^53 bytes the
	// float64 rounding of s1-s0 can push frac*span past the segment end, and
	// converting an out-of-range float64 to int64 is implementation-defined.
	off := frac * float64(s1-s0)
	if !(off < float64(s1-s0)) {
		return s1
	}
	size := s0 + int64(off)
	if size < s0 {
		size = s0
	}
	if size > s1 {
		size = s1
	}
	return size
}

// Mean returns the distribution's expected flow size in bytes: the point
// mass at the first size (Probs[0], zero in the built-in tables) plus the
// integral over the piecewise-linear segments.
func (c *CDF) Mean() float64 {
	mean := c.Probs[0] * float64(c.Sizes[0])
	for i := 1; i < len(c.Sizes); i++ {
		dp := c.Probs[i] - c.Probs[i-1]
		// Convert each size separately: the int64 sum overflows for sizes
		// near MaxInt64, which are legal in a validated table.
		mean += dp * (float64(c.Sizes[i-1]) + float64(c.Sizes[i])) / 2
	}
	return mean
}

// Websearch returns the DCTCP web-search flow-size distribution
// (Alizadeh et al., SIGCOMM 2010), as distributed with the HPCC simulator.
func Websearch() *CDF {
	c := &CDF{
		Name:  "websearch",
		Sizes: []int64{1, 10_000, 20_000, 30_000, 50_000, 80_000, 200_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000},
		Probs: []float64{0, 0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 1},
	}
	mustValid(c)
	return c
}

// Hadoop returns the Facebook Hadoop flow-size distribution
// (Roy et al., SIGCOMM 2015), as distributed with the HPCC simulator:
// dominated by sub-4KB flows with a heavy tail to 10 MB.
func Hadoop() *CDF {
	c := &CDF{
		Name:  "hadoop",
		Sizes: []int64{1, 180, 216, 560, 900, 1_100, 1_870, 3_160, 10_000, 30_000, 100_000, 1_000_000, 10_000_000},
		Probs: []float64{0, 0.10, 0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.95, 1},
	}
	mustValid(c)
	return c
}

// ByName returns a distribution by name ("websearch" or "hadoop").
func ByName(name string) (*CDF, error) {
	switch name {
	case "websearch":
		return Websearch(), nil
	case "hadoop":
		return Hadoop(), nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", name)
	}
}

func mustValid(c *CDF) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
}
