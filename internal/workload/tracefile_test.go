package workload

import (
	"strings"
	"testing"

	"mlcc/internal/sim"
)

func TestFlowTraceRoundTrip(t *testing.T) {
	spec := testSpec(0.4, 0.15)
	flows := mustGenerate(t, spec)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	var b strings.Builder
	if err := WriteFlows(&b, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlows(strings.NewReader(b.String()), spec.Hosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("round trip %d -> %d flows", len(flows), len(got))
	}
	for i := range flows {
		f, g := flows[i], got[i]
		if f.Src != g.Src || f.Dst != g.Dst || f.Size != g.Size || f.Cross != g.Cross {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, f, g)
		}
		// Start survives to sub-microsecond precision.
		d := f.Start - g.Start
		if d < 0 {
			d = -d
		}
		if d > sim.Microsecond {
			t.Fatalf("flow %d start drift %v", i, d)
		}
	}
}

func TestReadFlowsValidation(t *testing.T) {
	cases := map[string]string{
		"field count": "src,dst,size_bytes,start_us\n1,2,3\n",
		"bad src":     "x,2,1000,0\n",
		"bad dst":     "1,y,1000,0\n",
		"bad size":    "1,2,z,0\n",
		"bad start":   "1,2,1000,q\n",
		"range":       "1,99,1000,0\n",
		"self":        "3,3,1000,0\n",
		"neg size":    "1,2,-5,0\n",
		"neg start":   "1,2,1000,-1\n",
	}
	for name, in := range cases {
		if _, err := ReadFlows(strings.NewReader(in), 32); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadFlowsSkipsCommentsAndBlanks(t *testing.T) {
	in := "src,dst,size_bytes,start_us\n# comment\n\n0,16,5000,12.5\n"
	flows, err := ReadFlows(strings.NewReader(in), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if !f.Cross || f.Size != 5000 || f.Start != 12500*sim.Nanosecond {
		t.Fatalf("parsed %+v", f)
	}
}

func TestReadFlowsNoHeader(t *testing.T) {
	// A file without the canonical header still parses (first line data).
	flows, err := ReadFlows(strings.NewReader("0,1,1000,0\n"), 4)
	if err != nil || len(flows) != 1 {
		t.Fatalf("flows=%v err=%v", flows, err)
	}
	if flows[0].Cross {
		t.Fatal("same-DC flow marked cross")
	}
}
