package workload

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"mlcc/internal/sim"
)

// encodeCDF packs a CDF table into the 16-bytes-per-point wire form FuzzCDF
// decodes, so the built-in distributions can seed the corpus.
func encodeCDF(c *CDF) []byte {
	buf := make([]byte, 0, 16*len(c.Sizes))
	for i := range c.Sizes {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(c.Sizes[i]))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(c.Probs[i]))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// FuzzCDF decodes arbitrary bytes into a CDF table and checks the contract
// Validate promises: every table it accepts yields Sample values inside
// [Sizes[0], Sizes[n-1]] and a finite positive Mean. The raw-bits decoding
// deliberately reaches NaN, ±Inf, negative and near-MaxInt64 values — the
// inputs that flushed out the NaN-probability hole and the int64 overflow in
// Mean's segment midpoints.
func FuzzCDF(f *testing.F) {
	f.Add(encodeCDF(Websearch()), int64(1))
	f.Add(encodeCDF(Hadoop()), int64(7))
	f.Add(encodeCDF(&CDF{Sizes: []int64{1, math.MaxInt64}, Probs: []float64{0, 1}}), int64(3))
	f.Add([]byte("not a table"), int64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		const rec = 16
		n := len(data) / rec
		if n > 64 {
			n = 64
		}
		c := &CDF{Name: "fuzz"}
		for i := 0; i < n; i++ {
			c.Sizes = append(c.Sizes, int64(binary.LittleEndian.Uint64(data[i*rec:])))
			c.Probs = append(c.Probs, math.Float64frombits(binary.LittleEndian.Uint64(data[i*rec+8:])))
		}
		if err := c.Validate(); err != nil {
			return
		}
		lo, hi := c.Sizes[0], c.Sizes[len(c.Sizes)-1]
		m := c.Mean()
		if !(m > 0) || math.IsInf(m, 0) {
			t.Fatalf("validated CDF has mean %v (sizes %v probs %v)", m, c.Sizes, c.Probs)
		}
		if m > float64(hi)*(1+1e-9) {
			t.Fatalf("mean %v above largest size %d", m, hi)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if s := c.Sample(rng); s < lo || s > hi {
				t.Fatalf("Sample = %d outside support [%d, %d]", s, lo, hi)
			}
		}
	})
}

// FuzzTracefile feeds arbitrary text to ReadFlows. Whatever it accepts must
// honor the documented invariants (host range, no self flows, positive size,
// non-negative start) and survive a Write→Read round trip with every field
// preserved — Start within the float64 precision the CSV format carries.
func FuzzTracefile(f *testing.F) {
	f.Add([]byte("src,dst,size_bytes,start_us\n0,16,125000,43.125\n"), 32)
	f.Add([]byte("# comment\n\n1,0,1,0\n"), 2)
	f.Add([]byte("0,1,100,9e18\n"), 4)
	f.Add([]byte("0,1,100,NaN\n"), 4)
	f.Fuzz(func(t *testing.T, data []byte, hosts int) {
		if hosts < 0 {
			hosts = -hosts
		}
		hosts = hosts%1024 + 2
		flows, err := ReadFlows(bytes.NewReader(data), hosts)
		if err != nil {
			return
		}
		perDC := hosts / 2
		for i, fl := range flows {
			if fl.Src < 0 || fl.Src >= hosts || fl.Dst < 0 || fl.Dst >= hosts || fl.Src == fl.Dst {
				t.Fatalf("flow %d: bad endpoints %d→%d (hosts=%d)", i, fl.Src, fl.Dst, hosts)
			}
			if fl.Size <= 0 || fl.Start < 0 {
				t.Fatalf("flow %d: size=%d start=%v", i, fl.Size, fl.Start)
			}
			if fl.Cross != ((fl.Src < perDC) != (fl.Dst < perDC)) {
				t.Fatalf("flow %d: Cross flag wrong for %d→%d", i, fl.Src, fl.Dst)
			}
		}
		var buf bytes.Buffer
		if err := WriteFlows(&buf, flows); err != nil {
			t.Fatalf("WriteFlows: %v", err)
		}
		back, err := ReadFlows(&buf, hosts)
		if err != nil {
			t.Fatalf("round trip rejected its own output: %v", err)
		}
		if len(back) != len(flows) {
			t.Fatalf("round trip: %d flows became %d", len(flows), len(back))
		}
		for i := range flows {
			a, b := flows[i], back[i]
			if a.Src != b.Src || a.Dst != b.Dst || a.Size != b.Size || a.Cross != b.Cross {
				t.Fatalf("flow %d changed in round trip: %+v vs %+v", i, a, b)
			}
			// Start passes through a float64 microsecond column: exact below
			// ~2^51 ps, up to a few µs of rounding at the int64 clock's rim.
			d := a.Start - b.Start
			if d < 0 {
				d = -d
			}
			if tol := sim.Nanosecond + a.Start/(1<<40); d > tol {
				t.Fatalf("flow %d: start %v became %v (Δ%v)", i, a.Start, b.Start, d)
			}
		}
	})
}
