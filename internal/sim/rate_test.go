package sim

import (
	"math/big"
	"math/rand"
	"testing"
)

// exactRatio computes a*b/div with arbitrary precision, the reference for
// the integer fast paths in rate.go.
func exactRatio(a, b, div int64) int64 {
	v := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	v.Div(v, big.NewInt(div))
	return v.Int64()
}

// The old float64 implementation of RateOf truncated one bit low or high on
// perfectly ordinary inputs; these are recorded regressions.
func TestRateOfExactRegressions(t *testing.T) {
	cases := []struct {
		bytes int64
		d     Time
	}{
		{2125000, 1000 * Picosecond},
		{2125000, 3 * Nanosecond},
		{2450000, 9 * Nanosecond},
		{3425000, 3 * Nanosecond},
	}
	for _, c := range cases {
		want := Rate(exactRatio(c.bytes*8, int64(Second), int64(c.d)))
		if got := RateOf(c.bytes, c.d); got != want {
			t.Errorf("RateOf(%d, %v) = %d, want exact %d", c.bytes, c.d, got, want)
		}
	}
}

// Property: BytesOver, RateOf, BDPBytes and TxTime are exact integer
// arithmetic for every input whose result fits int64.
func TestRateMathExactProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200_000; i++ {
		r := rng.Int63n(400*int64(Gbps)) + 1
		d := Time(rng.Int63n(int64(100 * Millisecond)))
		if got, want := BytesOver(Rate(r), d), exactRatio(r, int64(d), 8*int64(Second)); got != want {
			t.Fatalf("BytesOver(%d, %d) = %d, want %d", r, d, got, want)
		}
		if got, want := BDPBytes(Rate(r), d), exactRatio(r, int64(d), 8*int64(Second)); got != want {
			t.Fatalf("BDPBytes(%d, %d) = %d, want %d", r, d, got, want)
		}
		bytes := rng.Int63n(1 << 40)
		if d > 0 {
			exact := new(big.Int).Mul(big.NewInt(bytes*8), big.NewInt(int64(Second)))
			exact.Div(exact, big.NewInt(int64(d)))
			if exact.IsInt64() {
				if got, want := RateOf(bytes, d), Rate(exact.Int64()); got != want {
					t.Fatalf("RateOf(%d, %d) = %d, want %d", bytes, d, got, want)
				}
			} else if got := RateOf(bytes, d); got <= 0 {
				t.Fatalf("RateOf(%d, %d) = %d, want saturated positive", bytes, d, got)
			}
		}
		size := int(rng.Int63n(64 << 10))
		if got, want := TxTime(size, Rate(r)), Time(exactRatio(int64(size)*8, int64(Second), r)); got != want {
			t.Fatalf("TxTime(%d, %d) = %d, want %d", size, r, got, want)
		}
	}
}

// The float fallback still engages when the exact quotient overflows int64.
func TestRateMathOverflowFallback(t *testing.T) {
	// ~9.2e18 bytes over 1 ps is far beyond int64 bits/sec; just require no
	// panic and a positive saturating answer.
	if got := RateOf(1<<62, Picosecond); got <= 0 {
		t.Fatalf("RateOf overflow fallback = %d, want positive", got)
	}
	if got := TxTime(1<<40, 1); got <= 0 {
		t.Fatalf("TxTime(huge, 1bps) = %d, want positive", got)
	}
}

func TestBytesOverZeroAndNegative(t *testing.T) {
	if got := BytesOver(Gbps, 0); got != 0 {
		t.Fatalf("BytesOver(_, 0) = %d", got)
	}
	if got := BytesOver(Gbps, -Millisecond); got != 0 {
		t.Fatalf("BytesOver(_, <0) = %d", got)
	}
	if got := BytesOver(0, Millisecond); got != 0 {
		t.Fatalf("BytesOver(0, _) = %d", got)
	}
	if got := RateOf(0, Millisecond); got != 0 {
		t.Fatalf("RateOf(0, _) = %d", got)
	}
	if got := RateOf(100, 0); got != 0 {
		t.Fatalf("RateOf(_, 0) = %d", got)
	}
}
