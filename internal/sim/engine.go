package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback owned by an Engine. Events are pooled: once
// an event fires, is compacted away, or is popped after cancellation, its
// struct is recycled for a future At/After call. User code therefore never
// holds an *Event; it holds a Timer handle whose generation check makes
// stale handles inert (see the "Performance model" section of DESIGN.md).
type Event struct {
	at       Time
	seq      uint64 // tie-break so equal-time events fire in schedule order
	gen      uint32 // bumped on recycle; stale Timer handles no-op
	canceled bool
	fn       func()
	eng      *Engine
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// inert: Cancel is a no-op, Active and Canceled report false. Timers are
// small values and stay safe after the underlying event fires and its struct
// is recycled — the generation check rejects stale handles, so cancelling a
// long-gone timer can never disturb an unrelated event that reuses the same
// storage.
type Timer struct {
	ev       *Event
	gen      uint32
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired,
// already-cancelled or zero Timer is a no-op. Cancel is O(1) amortized: the
// event stays in the heap and is discarded when popped, unless cancelled
// events come to dominate the heap, in which case they are compacted out in
// one O(n) pass (so cancel-heavy pacing workloads keep the heap proportional
// to the number of live timers).
func (t *Timer) Cancel() {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.canceled {
		return
	}
	t.canceled = true
	ev.canceled = true
	ev.fn = nil // release captured state early
	e := ev.eng
	e.live--
	e.canceledN++
	if e.canceledN >= compactMin && e.canceledN*2 > len(e.heap) {
		e.compact()
	}
}

// Canceled reports whether Cancel was called through this handle.
func (t *Timer) Canceled() bool { return t.canceled }

// Active reports whether the event is still scheduled and uncancelled.
func (t *Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled
}

// compactMin is the minimum number of cancelled events before a compaction
// pass is considered; below it the lazy pop-time discard is cheaper.
const compactMin = 64

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any) {
	*h = append(*h, x.(*Event))
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// maxTime is the sentinel deadline used by Run: beyond any schedulable time.
const maxTime = Time(1)<<62 - 1

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use: all scheduling must happen from the engine goroutine
// (i.e. from within event callbacks or before Run).
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool
	fired   uint64

	live      int // scheduled and not cancelled
	canceledN int // cancelled but still in the heap

	free     []*Event // recycled event structs
	allocs   uint64   // events allocated from the Go heap
	recycles uint64   // events served from the free list
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed, for diagnostics and tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of live events: scheduled and not cancelled.
func (e *Engine) Pending() int { return e.live }

// PendingRaw reports the scheduler heap size, including cancelled-but-
// unpopped events — the quantity that bounds heap memory and pop cost.
func (e *Engine) PendingRaw() int { return len(e.heap) }

// EventAllocs reports how many Event structs were heap-allocated (vs served
// from the free list), for allocation tests and diagnostics.
func (e *Engine) EventAllocs() uint64 { return e.allocs }

// EventRecycles reports how many schedules reused a recycled Event struct.
func (e *Engine) EventRecycles() uint64 { return e.recycles }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// causality violations are always bugs in the caller.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.recycles++
	} else {
		ev = &Event{eng: e}
		e.allocs++
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.heap, ev)
	e.live++
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule after negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run/RunUntil return after the currently executing event. A Stop
// issued while no run is in progress is honored by the next Run/RunUntil,
// which returns immediately (consuming the stop) without executing events.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called.
func (e *Engine) Run() {
	e.RunUntil(maxTime)
}

// RunUntil executes events with timestamps <= deadline. Where Now() lands on
// return is part of the contract — callers that alternate RunUntil barriers
// (the shard scheduler in shard.go) depend on it:
//
//   - drained: the queue emptied at or before the deadline. Now() == deadline
//     for any finite deadline; a Run() (deadline = sentinel max) leaves the
//     clock at the last fired event.
//   - deadline: events remain beyond the deadline. Now() == deadline.
//   - stopped: Stop was called from a callback. Now() stays at that event's
//     timestamp — NOT the deadline — so a resumed RunUntil continues from the
//     stopping point without skipping the remaining window.
//   - pre-stopped: a Stop issued before the call is consumed and RunUntil
//     returns immediately with the clock (and queue) untouched.
//   - past deadline: a deadline at or before Now() executes nothing and
//     leaves the clock unchanged (events cannot be scheduled in the past, so
//     none can be due).
//
// Each Run/RunUntil return consumes at most one Stop, so a stopped run can
// be resumed by calling Run/RunUntil again. TestRunUntilClockContract pins
// every path above.
func (e *Engine) RunUntil(deadline Time) {
	if e.stopped {
		e.stopped = false
		return
	}
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.heap)
		if next.canceled {
			e.canceledN--
			e.recycle(next)
			continue
		}
		e.now = next.at
		fn := next.fn
		e.live--
		// Recycle before calling fn: the callback may schedule new events,
		// which can then reuse this struct immediately. The generation bump
		// inside recycle makes any handle to the firing event stale first.
		e.recycle(next)
		e.fired++
		fn()
		if e.stopped {
			e.stopped = false
			return
		}
	}
	if e.now < deadline && deadline < maxTime {
		e.now = deadline
	}
}

// recycle returns an event struct to the free list. The generation bump
// invalidates every outstanding Timer handle to it.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// compact removes cancelled events from the heap in one pass and restores
// the heap invariant. Relative order of survivors is preserved because the
// (at, seq) comparison is untouched.
func (e *Engine) compact() {
	dst := e.heap[:0]
	for _, ev := range e.heap {
		if ev.canceled {
			e.recycle(ev)
		} else {
			dst = append(dst, ev)
		}
	}
	for i := len(dst); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = dst
	heap.Init(&e.heap)
	e.canceledN = 0
}
