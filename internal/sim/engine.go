package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Engine.At/After and
// may be cancelled before they fire.
type Event struct {
	at       Time
	seq      uint64 // tie-break so equal-time events fire in schedule order
	fn       func()
	index    int // heap index, -1 once popped
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel is O(1): the event stays in the
// heap and is discarded when popped.
func (ev *Event) Cancel() {
	if ev != nil {
		ev.canceled = true
		ev.fn = nil // release captured state early
	}
}

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev != nil && ev.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use: all scheduling must happen from the engine goroutine
// (i.e. from within event callbacks or before Run).
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed, for diagnostics and tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still scheduled (including
// cancelled-but-unpopped events).
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// causality violations are always bugs in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: schedule after negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run/RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called.
func (e *Engine) Run() {
	e.RunUntil(Time(1)<<62 - 1)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if the queue drained earlier). It returns early if Stop
// is called.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.heap)
		if next.canceled {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
	}
	if !e.stopped && e.now < deadline && deadline < Time(1)<<62-1 {
		e.now = deadline
	}
}
