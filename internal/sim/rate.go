package sim

import "fmt"

// Rate is a transmission or drain rate in bits per second.
type Rate int64

// Convenient rate units.
const (
	Bps  Rate = 1
	Kbps Rate = 1000 * Bps
	Mbps Rate = 1000 * Kbps
	Gbps Rate = 1000 * Mbps
)

// String formats r with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.3gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.3gMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.3gKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// TxTime is the serialization delay of size bytes at rate r.
// TxTime panics if r is not positive: transmitting at zero rate never
// completes and indicates a configuration bug.
func TxTime(size int, r Rate) Time {
	if r <= 0 {
		panic(fmt.Sprintf("sim: TxTime with non-positive rate %d", r))
	}
	bits := int64(size) * 8
	// Exact integer math while bits*Second fits int64 (covers every real
	// frame); fall back to float64 for large aggregate transfers, where
	// picosecond exactness no longer matters.
	const maxExactBits = int64(^uint64(0)>>1) / int64(Second)
	if bits <= maxExactBits {
		return Time(bits * int64(Second) / int64(r))
	}
	return Time(float64(bits) * float64(Second) / float64(r))
}

// BytesOver reports how many whole bytes rate r delivers during d.
func BytesOver(r Rate, d Time) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	// bytes = r/8 * seconds. Compute as (r * d) / (8 * Second) using
	// float64 to avoid int64 overflow for long windows; exactness does not
	// matter for measurement windows.
	return int64(float64(r) * d.Seconds() / 8)
}

// RateOf reports the average rate that moves bytes in d, in bits per second.
func RateOf(bytes int64, d Time) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(bytes) * 8 / d.Seconds())
}

// BDPBytes is the bandwidth-delay product of rate r over round-trip rtt,
// in bytes.
func BDPBytes(r Rate, rtt Time) int64 {
	return int64(float64(r) / 8 * rtt.Seconds())
}

// ClampRate bounds r to [lo, hi].
func ClampRate(r, lo, hi Rate) Rate {
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}
