package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Rate is a transmission or drain rate in bits per second.
type Rate int64

// Convenient rate units.
const (
	Bps  Rate = 1
	Kbps Rate = 1000 * Bps
	Mbps Rate = 1000 * Kbps
	Gbps Rate = 1000 * Mbps
)

// String formats r with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.3gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.3gMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.3gKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// mulDiv computes a*b/div exactly through a 128-bit intermediate product.
// Inputs must be non-negative and div positive. ok is false when the
// quotient does not fit in int64; callers fall back to float64 then (the
// result is astronomically large, so picosecond/byte exactness is moot).
func mulDiv(a, b, div int64) (v int64, ok bool) {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(div) {
		return 0, false // quotient would overflow uint64
	}
	q, _ := bits.Div64(hi, lo, uint64(div))
	if q > math.MaxInt64 {
		return 0, false
	}
	return int64(q), true
}

// satInt64 converts a non-negative float to int64, saturating at MaxInt64
// instead of the platform-dependent wrap of an overflowing conversion.
func satInt64(f float64) int64 {
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(f)
}

// TxTime is the serialization delay of size bytes at rate r.
// TxTime panics if r is not positive: transmitting at zero rate never
// completes and indicates a configuration bug.
func TxTime(size int, r Rate) Time {
	if r <= 0 {
		panic(fmt.Sprintf("sim: TxTime with non-positive rate %d", r))
	}
	// Exact integer math (128-bit intermediate) covers every real transfer;
	// the float fallback only triggers when the delay itself overflows Time.
	if v, ok := mulDiv(int64(size)*8, int64(Second), int64(r)); ok {
		return Time(v)
	}
	return Time(satInt64(float64(size) * 8 * float64(Second) / float64(r)))
}

// BytesOver reports how many whole bytes rate r delivers during d:
// r/8 bits per second over d, computed as r*d / (8*Second) with exact
// integer math so token buckets and INT utilization estimates never see
// float truncation off-by-ones.
func BytesOver(r Rate, d Time) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	if v, ok := mulDiv(int64(r), int64(d), 8*int64(Second)); ok {
		return v
	}
	return satInt64(float64(r) * d.Seconds() / 8)
}

// RateOf reports the average rate that moves bytes in d, in bits per second.
func RateOf(bytes int64, d Time) Rate {
	if d <= 0 || bytes <= 0 {
		return 0
	}
	if bytes <= math.MaxInt64/8 {
		if v, ok := mulDiv(bytes*8, int64(Second), int64(d)); ok {
			return Rate(v)
		}
	}
	return Rate(satInt64(float64(bytes) * 8 / d.Seconds()))
}

// BDPBytes is the bandwidth-delay product of rate r over round-trip rtt,
// in bytes.
func BDPBytes(r Rate, rtt Time) int64 {
	return BytesOver(r, rtt)
}

// ClampRate bounds r to [lo, hi].
func ClampRate(r, lo, hi Rate) Rate {
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}
