package sim

import (
	"sort"
	"testing"
)

// FuzzEngineSchedule drives the pooled-event engine with a fuzz-decoded op
// sequence — schedule (At/After), cancel through Timer handles (including
// stale handles to fired events), and partial RunUntil advances — and checks
// the fired sequence against a reference model: a plain list stable-sorted by
// (at, insertion order) with cancelled entries removed. This is the oracle
// for the invariants the pooling makes subtle: recycling must never let a
// stale Timer cancel an unrelated event that reuses its struct, and the
// (at, seq) tie-break must hold across compaction passes.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 3, 20, 0, 5, 2, 0, 3, 255})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 1, 2, 1, 3, 0})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 2, 7, 2, 6, 2, 5, 2, 4, 3, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		eng := NewEngine()
		type ref struct {
			at       Time
			id       int
			canceled bool
		}
		var model []ref
		var timers []Timer
		var fired []int
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for pos < len(data) {
			switch next() % 4 {
			case 0, 1: // At / After with a bounded delta — identical semantics here
				d := Time(next()) * Microsecond
				id := len(model)
				model = append(model, ref{at: eng.Now() + d, id: id})
				timers = append(timers, eng.At(eng.Now()+d, func() { fired = append(fired, id) }))
			case 2: // cancel an arbitrary handle, possibly stale or already cancelled
				if len(timers) == 0 {
					continue
				}
				i := int(next()) % len(timers)
				// Only a live handle removes the event; cancelling a fired or
				// already-cancelled timer must be inert, so the model entry
				// flips only when the engine agrees the event is still live.
				if timers[i].Active() {
					model[i].canceled = true
				}
				timers[i].Cancel()
			case 3: // partial drain
				eng.RunUntil(eng.Now() + Time(next())*Microsecond)
			}
		}
		eng.Run()

		var want []int
		for _, r := range model {
			if !r.canceled {
				want = append(want, r.id)
			}
		}
		// Engine order is (at, schedule seq); schedule seq is insertion order,
		// so a stable sort of the surviving model entries by time is the oracle.
		sort.SliceStable(want, func(i, j int) bool { return model[want[i]].at < model[want[j]].at })

		if len(fired) != len(want) {
			t.Fatalf("fired %d events, model expects %d", len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("firing order diverged at %d: got event %d (at %v), want %d (at %v)",
					i, fired[i], model[fired[i]].at, want[i], model[want[i]].at)
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("%d events still pending after Run", eng.Pending())
		}
		if eng.Fired() != uint64(len(fired)) {
			t.Fatalf("Fired() = %d, callbacks ran %d times", eng.Fired(), len(fired))
		}
	})
}
