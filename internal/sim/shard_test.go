package sim

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestRunUntilClockContract pins where Now() lands on every RunUntil exit
// path; the shard scheduler's barrier invariant depends on each of these.
func TestRunUntilClockContract(t *testing.T) {
	t.Run("drained", func(t *testing.T) {
		e := NewEngine()
		e.At(5, func() {})
		e.RunUntil(10)
		if e.Now() != 10 {
			t.Fatalf("drained exit: Now() = %v, want deadline 10", e.Now())
		}
	})
	t.Run("drained-empty-queue", func(t *testing.T) {
		e := NewEngine()
		e.RunUntil(7)
		if e.Now() != 7 {
			t.Fatalf("empty-queue exit: Now() = %v, want deadline 7", e.Now())
		}
	})
	t.Run("deadline-with-pending", func(t *testing.T) {
		e := NewEngine()
		e.At(5, func() {})
		e.At(15, func() {})
		e.RunUntil(10)
		if e.Now() != 10 {
			t.Fatalf("deadline exit: Now() = %v, want deadline 10", e.Now())
		}
		if e.Pending() != 1 {
			t.Fatalf("deadline exit: %d pending events, want 1", e.Pending())
		}
	})
	t.Run("event-at-deadline", func(t *testing.T) {
		e := NewEngine()
		fired := false
		e.At(10, func() { fired = true })
		e.RunUntil(10)
		if !fired {
			t.Fatal("event at the deadline did not fire")
		}
		if e.Now() != 10 {
			t.Fatalf("Now() = %v, want 10", e.Now())
		}
	})
	t.Run("run-drains-to-last-event", func(t *testing.T) {
		e := NewEngine()
		e.At(5, func() {})
		e.At(9, func() {})
		e.Run()
		if e.Now() != 9 {
			t.Fatalf("Run() exit: Now() = %v, want last event time 9", e.Now())
		}
	})
	t.Run("stopped", func(t *testing.T) {
		e := NewEngine()
		e.At(5, func() { e.Stop() })
		later := false
		e.At(8, func() { later = true })
		e.RunUntil(10)
		if e.Now() != 5 {
			t.Fatalf("stopped exit: Now() = %v, want stopping event time 5", e.Now())
		}
		if later {
			t.Fatal("event past the stop point fired")
		}
		// The stop is consumed: resuming finishes the window and pins the
		// deadline.
		e.RunUntil(10)
		if !later || e.Now() != 10 {
			t.Fatalf("resume: later=%v Now()=%v, want true/10", later, e.Now())
		}
	})
	t.Run("pre-stopped", func(t *testing.T) {
		e := NewEngine()
		e.At(5, func() {})
		e.Stop()
		e.RunUntil(10)
		if e.Now() != 0 {
			t.Fatalf("pre-stopped exit: Now() = %v, want untouched 0", e.Now())
		}
		if e.Pending() != 1 {
			t.Fatalf("pre-stopped exit consumed events: %d pending, want 1", e.Pending())
		}
	})
	t.Run("past-deadline", func(t *testing.T) {
		e := NewEngine()
		e.At(5, func() {})
		e.RunUntil(10)
		e.At(20, func() {})
		e.RunUntil(3)
		if e.Now() != 10 {
			t.Fatalf("past-deadline exit: Now() = %v, want unchanged 10", e.Now())
		}
		if e.Pending() != 1 {
			t.Fatalf("past-deadline exit fired events: %d pending, want 1", e.Pending())
		}
	})
}

// TestShardGroupBarriers checks the lockstep schedule: every engine reaches
// every barrier, the exchange runs at each one in order, and events fire in
// their own windows at their exact times.
func TestShardGroupBarriers(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var barriers []Time
	g := NewShardGroup([]*Engine{a, b}, 10, func(bar Time) {
		if a.Now() != bar || b.Now() != bar {
			t.Fatalf("exchange at %v with engines at %v/%v", bar, a.Now(), b.Now())
		}
		barriers = append(barriers, bar)
	})

	var fired []Time
	a.At(3, func() { fired = append(fired, a.Now()) })
	b.At(17, func() { fired = append(fired, b.Now()) })
	a.At(25, func() { fired = append(fired, a.Now()) })

	g.RunUntil(25)
	if g.Now() != 25 {
		t.Fatalf("group Now() = %v, want 25", g.Now())
	}
	wantBarriers := []Time{10, 20, 25}
	if len(barriers) != len(wantBarriers) {
		t.Fatalf("barriers %v, want %v", barriers, wantBarriers)
	}
	for i, w := range wantBarriers {
		if barriers[i] != w {
			t.Fatalf("barriers %v, want %v", barriers, wantBarriers)
		}
	}
	// Single-shard windows cannot interleave across engines, so with one
	// event per window the firing order is by time.
	want := []Time{3, 17, 25}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i, w := range want {
		if fired[i] != w {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if got := g.Fired(); got != 3 {
		t.Fatalf("group Fired() = %d, want 3", got)
	}
}

// TestShardGroupExchangeInjects models the mailbox pattern: the exchange
// schedules a cross-shard event on the destination engine at its exact
// arrival time in the next window.
func TestShardGroupExchangeInjects(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	const lookahead = 10
	type msg struct{ at Time }
	var outbox []msg
	var deliveredAt Time
	g := NewShardGroup([]*Engine{a, b}, lookahead, func(bar Time) {
		for _, m := range outbox {
			m := m
			b.At(m.at, func() { deliveredAt = b.Now() })
		}
		outbox = nil
	})
	// Shard a "launches" at t=4 with propagation = lookahead: arrival 14,
	// strictly inside the next window.
	a.At(4, func() { outbox = append(outbox, msg{at: 4 + lookahead}) })
	g.RunUntil(30)
	if deliveredAt != 14 {
		t.Fatalf("cross-shard delivery at %v, want 14", deliveredAt)
	}
}

// TestShardGroupParallelWindows proves windows really run concurrently and
// race-free: both engines burn many events per window touching their own
// state, under -race.
func TestShardGroupParallelWindows(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var na, nb atomic.Int64
	var tick func(e *Engine, n *atomic.Int64, step Time)
	tick = func(e *Engine, n *atomic.Int64, step Time) {
		n.Add(1)
		if e.Now() < 1000 {
			e.After(step, func() { tick(e, n, step) })
		}
	}
	a.At(0, func() { tick(a, &na, 1) })
	b.At(0, func() { tick(b, &nb, 3) })
	g := NewShardGroup([]*Engine{a, b}, 50, nil)
	g.RunUntil(1200)
	if na.Load() != 1001 || nb.Load() != 335 {
		t.Fatalf("ticks %d/%d, want 1001/335", na.Load(), nb.Load())
	}
}

// TestShardGroupStopPanics pins the contract that Stop inside a sharded run
// is a programming error, not silent desynchronization.
func TestShardGroupStopPanics(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	a.At(5, func() { a.Stop() })
	g := NewShardGroup([]*Engine{a, b}, 10, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sharded run with a Stop did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "short of the") {
			t.Fatalf("panic %v, want barrier-desync message", r)
		}
	}()
	g.RunUntil(20)
}

// TestShardGroupPanicContext checks a panic inside a shard window is
// re-raised on the caller with the shard index attached.
func TestShardGroupPanicContext(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	b.At(5, func() { panic("boom") })
	g := NewShardGroup([]*Engine{a, b}, 10, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic was swallowed")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "shard 1 panicked") || !strings.Contains(s, "boom") {
			t.Fatalf("panic %q, want shard index and cause", r)
		}
	}()
	g.RunUntil(20)
}
