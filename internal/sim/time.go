// Package sim provides the deterministic discrete-event simulation core used
// by every other package in this repository: an integer picosecond clock, a
// cancellable event scheduler backed by a binary heap, and bandwidth/
// serialization arithmetic.
//
// The engine is single-goroutine by design: determinism (bit-identical runs
// for a given seed) is a hard requirement for reproducing the paper's
// figures. Parallelism lives one level up, in internal/exp, which runs many
// independent engines concurrently.
package sim

import "fmt"

// Time is a simulation timestamp or duration in integer picoseconds.
//
// Picoseconds keep all serialization delays exact: a 1000-byte frame on a
// 100 Gbps link takes exactly 80 ns = 80_000 ps. int64 picoseconds cover
// about 106 days of simulated time, far beyond any experiment here.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats t with an adaptive unit for logs and test output.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	}
}

// FromSeconds builds a Time from floating-point seconds, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Time {
	if s >= 0 {
		return Time(s*float64(Second) + 0.5)
	}
	return Time(s*float64(Second) - 0.5)
}
