package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12 {
		t.Fatalf("Second = %d, want 1e12", int64(Second))
	}
	if Millisecond*1000 != Second || Microsecond*1000 != Millisecond || Nanosecond*1000 != Microsecond {
		t.Fatal("unit ladder broken")
	}
	if got := (3 * Millisecond).Seconds(); got != 0.003 {
		t.Fatalf("Seconds() = %v, want 0.003", got)
	}
	if got := (250 * Microsecond).Millis(); got != 0.25 {
		t.Fatalf("Millis() = %v, want 0.25", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{3 * Millisecond, "3.000ms"},
		{5 * Microsecond, "5.000us"},
		{80 * Nanosecond, "80.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(0.003); got != 3*Millisecond {
		t.Fatalf("FromSeconds(0.003) = %v", got)
	}
	if got := FromSeconds(-1e-6); got != -Microsecond {
		t.Fatalf("FromSeconds(-1e-6) = %v", got)
	}
}

func TestTxTimeExact(t *testing.T) {
	// 1000 B at 100 Gbps is exactly 80 ns.
	if got := TxTime(1000, 100*Gbps); got != 80*Nanosecond {
		t.Fatalf("TxTime(1000, 100G) = %v, want 80ns", got)
	}
	// 1000 B at 25 Gbps is exactly 320 ns.
	if got := TxTime(1000, 25*Gbps); got != 320*Nanosecond {
		t.Fatalf("TxTime(1000, 25G) = %v, want 320ns", got)
	}
	// 64 B at 100 Gbps is 5.12 ns.
	if got := TxTime(64, 100*Gbps); got != Time(5120) {
		t.Fatalf("TxTime(64, 100G) = %v ps, want 5120 ps", int64(got))
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TxTime(100, 0)
}

func TestRateHelpers(t *testing.T) {
	if got := BDPBytes(100*Gbps, 6*Millisecond); got != 75_000_000 {
		t.Fatalf("BDP(100G, 6ms) = %d, want 75e6", got)
	}
	if got := RateOf(12_500_000, Millisecond); got != 100*Gbps {
		t.Fatalf("RateOf = %v, want 100Gbps", got)
	}
	if got := BytesOver(8*Gbps, Millisecond); got != 1_000_000 {
		t.Fatalf("BytesOver = %d, want 1e6", got)
	}
	if got := ClampRate(5*Gbps, 10*Gbps, 20*Gbps); got != 10*Gbps {
		t.Fatalf("ClampRate low = %v", got)
	}
	if got := ClampRate(50*Gbps, 10*Gbps, 20*Gbps); got != 20*Gbps {
		t.Fatalf("ClampRate high = %v", got)
	}
	if got := ClampRate(15*Gbps, 10*Gbps, 20*Gbps); got != 15*Gbps {
		t.Fatalf("ClampRate mid = %v", got)
	}
}

func TestRateString(t *testing.T) {
	if got := (25 * Gbps).String(); got != "25Gbps" {
		t.Fatalf("got %q", got)
	}
	if got := (5 * Mbps).String(); got != "5Mbps" {
		t.Fatalf("got %q", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	e.At(Microsecond, func() {
		hits++
		e.After(Microsecond, func() {
			hits++
			e.After(Microsecond, func() { hits++ })
		})
	})
	e.Run()
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	if e.Now() != 3*Microsecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(Microsecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false")
	}
	// Cancelling again (and cancelling nil) must be safe.
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{Microsecond, 2 * Microsecond, 3 * Microsecond} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	e.RunUntil(2 * Microsecond)
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if e.Now() != 2*Microsecond {
		t.Fatalf("Now = %v, want 2us", e.Now())
	}
	e.RunUntil(10 * Microsecond)
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
	// Clock advances to the deadline even after the queue drains.
	if e.Now() != 10*Microsecond {
		t.Fatalf("Now = %v, want 10us", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Microsecond, func() { count++; e.Stop() })
	e.At(2*Microsecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	// Resuming picks up the remaining event.
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

// Property: events always fire in nondecreasing timestamp order, regardless
// of insertion order.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d) * Nanosecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving cancels preserves ordering of survivors and never
// fires a cancelled event.
func TestEngineCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		type rec struct {
			ev       *Event
			at       Time
			canceled bool
		}
		n := 1 + rng.Intn(100)
		recs := make([]*rec, n)
		var fired []Time
		for i := range recs {
			r := &rec{at: Time(rng.Intn(1000)) * Nanosecond}
			r.ev = e.At(r.at, func() { fired = append(fired, r.at) })
			recs[i] = r
		}
		want := 0
		for _, r := range recs {
			if rng.Intn(2) == 0 {
				r.ev.Cancel()
				r.canceled = true
			} else {
				want++
			}
		}
		e.Run()
		if len(fired) != want {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), want)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: out of order: %v", trial, fired)
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Nanosecond, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
