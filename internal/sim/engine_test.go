package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12 {
		t.Fatalf("Second = %d, want 1e12", int64(Second))
	}
	if Millisecond*1000 != Second || Microsecond*1000 != Millisecond || Nanosecond*1000 != Microsecond {
		t.Fatal("unit ladder broken")
	}
	if got := (3 * Millisecond).Seconds(); got != 0.003 {
		t.Fatalf("Seconds() = %v, want 0.003", got)
	}
	if got := (250 * Microsecond).Millis(); got != 0.25 {
		t.Fatalf("Millis() = %v, want 0.25", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{3 * Millisecond, "3.000ms"},
		{5 * Microsecond, "5.000us"},
		{80 * Nanosecond, "80.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(0.003); got != 3*Millisecond {
		t.Fatalf("FromSeconds(0.003) = %v", got)
	}
	if got := FromSeconds(-1e-6); got != -Microsecond {
		t.Fatalf("FromSeconds(-1e-6) = %v", got)
	}
}

func TestTxTimeExact(t *testing.T) {
	// 1000 B at 100 Gbps is exactly 80 ns.
	if got := TxTime(1000, 100*Gbps); got != 80*Nanosecond {
		t.Fatalf("TxTime(1000, 100G) = %v, want 80ns", got)
	}
	// 1000 B at 25 Gbps is exactly 320 ns.
	if got := TxTime(1000, 25*Gbps); got != 320*Nanosecond {
		t.Fatalf("TxTime(1000, 25G) = %v, want 320ns", got)
	}
	// 64 B at 100 Gbps is 5.12 ns.
	if got := TxTime(64, 100*Gbps); got != Time(5120) {
		t.Fatalf("TxTime(64, 100G) = %v ps, want 5120 ps", int64(got))
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TxTime(100, 0)
}

func TestRateHelpers(t *testing.T) {
	if got := BDPBytes(100*Gbps, 6*Millisecond); got != 75_000_000 {
		t.Fatalf("BDP(100G, 6ms) = %d, want 75e6", got)
	}
	if got := RateOf(12_500_000, Millisecond); got != 100*Gbps {
		t.Fatalf("RateOf = %v, want 100Gbps", got)
	}
	if got := BytesOver(8*Gbps, Millisecond); got != 1_000_000 {
		t.Fatalf("BytesOver = %d, want 1e6", got)
	}
	if got := ClampRate(5*Gbps, 10*Gbps, 20*Gbps); got != 10*Gbps {
		t.Fatalf("ClampRate low = %v", got)
	}
	if got := ClampRate(50*Gbps, 10*Gbps, 20*Gbps); got != 20*Gbps {
		t.Fatalf("ClampRate high = %v", got)
	}
	if got := ClampRate(15*Gbps, 10*Gbps, 20*Gbps); got != 15*Gbps {
		t.Fatalf("ClampRate mid = %v", got)
	}
}

func TestRateString(t *testing.T) {
	if got := (25 * Gbps).String(); got != "25Gbps" {
		t.Fatalf("got %q", got)
	}
	if got := (5 * Mbps).String(); got != "5Mbps" {
		t.Fatalf("got %q", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	e.At(Microsecond, func() {
		hits++
		e.After(Microsecond, func() {
			hits++
			e.After(Microsecond, func() { hits++ })
		})
	})
	e.Run()
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	if e.Now() != 3*Microsecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(Microsecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false")
	}
	// Cancelling again (and cancelling a zero Timer) must be safe.
	ev.Cancel()
	var zero Timer
	zero.Cancel()
	if zero.Active() || zero.Canceled() {
		t.Fatal("zero Timer must be inert")
	}
}

// A Timer handle must go inert once its event fires: cancelling it afterwards
// may not disturb an unrelated event that recycled the same Event struct.
func TestEngineStaleTimerIsInert(t *testing.T) {
	e := NewEngine()
	var fired int
	ev := e.At(Microsecond, func() { fired++ })
	e.Run()
	if ev.Active() {
		t.Fatal("fired timer still active")
	}
	// Schedule a new event; with a recycled struct this would be corrupted
	// by a stale Cancel if generations were not checked.
	e.At(2*Microsecond, func() { fired++ })
	ev.Cancel()
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (stale Cancel must not kill the new event)", fired)
	}
	if ev.Canceled() {
		t.Fatal("stale Cancel must not report Canceled")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{Microsecond, 2 * Microsecond, 3 * Microsecond} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	e.RunUntil(2 * Microsecond)
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if e.Now() != 2*Microsecond {
		t.Fatalf("Now = %v, want 2us", e.Now())
	}
	e.RunUntil(10 * Microsecond)
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
	// Clock advances to the deadline even after the queue drains.
	if e.Now() != 10*Microsecond {
		t.Fatalf("Now = %v, want 10us", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Microsecond, func() { count++; e.Stop() })
	e.At(2*Microsecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	// Resuming picks up the remaining event.
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

// Property: events always fire in nondecreasing timestamp order, regardless
// of insertion order.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d) * Nanosecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving cancels preserves ordering of survivors and never
// fires a cancelled event.
func TestEngineCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		type rec struct {
			ev       Timer
			at       Time
			canceled bool
		}
		n := 1 + rng.Intn(100)
		recs := make([]*rec, n)
		var fired []Time
		for i := range recs {
			r := &rec{at: Time(rng.Intn(1000)) * Nanosecond}
			r.ev = e.At(r.at, func() { fired = append(fired, r.at) })
			recs[i] = r
		}
		want := 0
		for _, r := range recs {
			if rng.Intn(2) == 0 {
				r.ev.Cancel()
				r.canceled = true
			} else {
				want++
			}
		}
		e.Run()
		if len(fired) != want {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), want)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: out of order: %v", trial, fired)
		}
	}
}

func TestEngineStopBeforeRunIsHonored(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Microsecond, func() { count++ })
	// A Stop issued before the run starts (e.g. setup code aborting) must
	// make the next run return immediately instead of being swallowed.
	e.Stop()
	e.RunUntil(10 * Microsecond)
	if count != 0 {
		t.Fatalf("count = %d, want 0: pre-set Stop was swallowed", count)
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0 (stopped run must not advance the clock)", e.Now())
	}
	// The stop is consumed: the next run executes normally.
	e.RunUntil(10 * Microsecond)
	if count != 1 {
		t.Fatalf("count = %d, want 1 after resuming", count)
	}
	if e.Now() != 10*Microsecond {
		t.Fatalf("Now = %v, want 10us", e.Now())
	}
}

func TestEnginePendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = e.At(Microsecond, func() {})
	}
	if e.Pending() != 10 || e.PendingRaw() != 10 {
		t.Fatalf("Pending = %d, PendingRaw = %d, want 10, 10", e.Pending(), e.PendingRaw())
	}
	for i := 0; i < 4; i++ {
		timers[i].Cancel()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6 (cancelled events must not count)", e.Pending())
	}
	if e.PendingRaw() != 10 {
		t.Fatalf("PendingRaw = %d, want 10 (heap still holds cancelled events)", e.PendingRaw())
	}
	e.Run()
	if e.Pending() != 0 || e.PendingRaw() != 0 {
		t.Fatalf("after Run: Pending = %d, PendingRaw = %d, want 0, 0", e.Pending(), e.PendingRaw())
	}
}

// Cancel-heavy pacing workloads (one cancel+reschedule per packet) must not
// grow the heap with cancelled corpses, and the engine must serve the churn
// from its free list rather than the Go heap.
func TestEngineCancelHeavyHeapBounded(t *testing.T) {
	e := NewEngine()
	const n = 1_000_000
	var live Timer
	peakRaw := 0
	for i := 0; i < n; i++ {
		live.Cancel()
		live = e.After(Time(i%100+1)*Nanosecond, func() {})
		if raw := e.PendingRaw(); raw > peakRaw {
			peakRaw = raw
		}
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// Compaction keeps the heap proportional to live timers (1 here), far
	// below the 1e6 cancelled events pushed through it.
	if peakRaw > 4*compactMin {
		t.Fatalf("peak heap size %d: compaction failed to bound cancelled events", peakRaw)
	}
	if e.EventAllocs() > uint64(4*compactMin) {
		t.Fatalf("%d event allocations for %d schedules: free list not reused", e.EventAllocs(), n)
	}
	if e.EventRecycles() < n/2 {
		t.Fatalf("only %d recycles for %d schedules", e.EventRecycles(), n)
	}
	e.Run()
}

// Two identical cancel-heavy runs must produce bit-identical engine state:
// compaction and recycling may not perturb firing order.
func TestEngineCancelHeavyDeterminism(t *testing.T) {
	run := func() (uint64, Time, uint64) {
		e := NewEngine()
		var digest uint64 = 14695981039346656037
		mix := func(v uint64) {
			const prime = 1099511628211
			for i := 0; i < 8; i++ {
				digest = (digest ^ (v & 0xff)) * prime
				v >>= 8
			}
		}
		rng := rand.New(rand.NewSource(42))
		var pacers [8]Timer
		for i := 0; i < 200_000; i++ {
			i := i
			slot := rng.Intn(len(pacers))
			pacers[slot].Cancel()
			pacers[slot] = e.After(Time(rng.Intn(500)+1)*Nanosecond, func() {
				mix(uint64(i))
				mix(uint64(e.Now()))
			})
			if i%17 == 0 {
				e.RunUntil(e.Now() + 100*Nanosecond)
			}
		}
		e.Run()
		return e.Fired(), e.Now(), digest
	}
	f1, n1, d1 := run()
	f2, n2, d2 := run()
	if f1 != f2 || n1 != n2 || d1 != d2 {
		t.Fatalf("nondeterministic: run1=(%d,%v,%#x) run2=(%d,%v,%#x)", f1, n1, d1, f2, n2, d2)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Nanosecond, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
