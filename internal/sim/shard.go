package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// ShardGroup runs several engines in conservative lockstep: every engine
// advances independently to a shared barrier, then a caller-supplied exchange
// step runs with all engines quiescent, then the next window begins. The
// barrier spacing (the lookahead) must not exceed the minimum cross-shard
// propagation delay, so that no event executed inside a window can require a
// delivery into another shard's past: a frame launched in window k arrives
// strictly after barrier k, i.e. in window k+1 or later, and the exchange at
// barrier k can schedule it at its exact arrival time.
//
// Windows execute in parallel (one goroutine per engine beyond the first,
// which runs on the caller's goroutine), but each engine is only ever touched
// by one goroutine at a time and the exchange step runs single-threaded
// between windows, so the per-engine single-goroutine contract of Engine
// holds throughout. Determinism is preserved because the exchange runs in a
// fixed shard→shard order at every barrier and the engines themselves are
// deterministic.
//
// Stop is not supported inside a sharded run: an engine that returns from its
// window before the barrier would desynchronize the group, so RunUntil
// panics if any engine's clock is short of the barrier after a window.
type ShardGroup struct {
	engines   []*Engine
	lookahead Time
	exchange  func(barrier Time)
	now       Time
}

// NewShardGroup builds a group over the given engines (all with clocks at
// zero) with the given lookahead between barriers. exchange, if non-nil, is
// called at every barrier — including the final one at the RunUntil deadline
// — with all engines quiescent and their clocks equal to the barrier time.
func NewShardGroup(engines []*Engine, lookahead Time, exchange func(barrier Time)) *ShardGroup {
	if len(engines) == 0 {
		panic("sim: shard group needs at least one engine")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard group lookahead %v must be positive", lookahead))
	}
	for i, e := range engines {
		if e == nil {
			panic(fmt.Sprintf("sim: shard group engine %d is nil", i))
		}
	}
	return &ShardGroup{engines: engines, lookahead: lookahead, exchange: exchange}
}

// Now returns the group clock: the last barrier reached.
func (g *ShardGroup) Now() Time { return g.now }

// Fired reports the total events executed across all engines.
func (g *ShardGroup) Fired() uint64 {
	var t uint64
	for _, e := range g.engines {
		t += e.Fired()
	}
	return t
}

// Pending reports the total live events across all engines.
func (g *ShardGroup) Pending() int {
	var t int
	for _, e := range g.engines {
		t += e.Pending()
	}
	return t
}

// Engines returns the group's engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// RunUntil advances every engine to deadline in lookahead-bounded windows,
// running the exchange step at each barrier. On return every engine's clock
// is exactly deadline (RunUntil pins finite-deadline exits to the deadline;
// see Engine.RunUntil). Deadlines at or before the group clock are no-ops.
func (g *ShardGroup) RunUntil(deadline Time) {
	for g.now < deadline {
		next := g.now + g.lookahead
		if next > deadline {
			next = deadline
		}
		g.runWindow(next)
		g.now = next
		if g.exchange != nil {
			g.exchange(next)
		}
	}
}

// runWindow advances every engine to the barrier in parallel and re-raises
// the first panic (with its shard index and stack) on the caller's goroutine
// after all shards have settled, so a violation inside a shard does not die
// with a bare goroutine stack.
func (g *ShardGroup) runWindow(barrier Time) {
	if len(g.engines) > 1 {
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			failed  bool
			shard   int
			reason  any
			stack   []byte
			capture = func(i int, e *Engine) {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if !failed {
							failed, shard, reason, stack = true, i, r, debug.Stack()
						}
						mu.Unlock()
					}
				}()
				e.RunUntil(barrier)
			}
		)
		for i, e := range g.engines[1:] {
			wg.Add(1)
			go func(i int, e *Engine) {
				defer wg.Done()
				capture(i, e)
			}(i+1, e)
		}
		capture(0, g.engines[0])
		wg.Wait()
		if failed {
			panic(fmt.Sprintf("sim: shard %d panicked in window ending %v: %v\n%s", shard, barrier, reason, stack))
		}
	} else {
		g.engines[0].RunUntil(barrier)
	}
	for i, e := range g.engines {
		if e.Now() != barrier {
			panic(fmt.Sprintf("sim: shard %d stopped at %v short of the %v barrier (Stop is unsupported in sharded runs)", i, e.Now(), barrier))
		}
	}
}
