package topo

import (
	"fmt"

	"mlcc/internal/host"
	"mlcc/internal/metrics"
)

// applyTelemetry wires a built network into its telemetry layer: every
// component registers its instruments under the hierarchical naming scheme
// (sim.*, host.h<idx>.*, switch.{leaf,spine}<idx>.*, dci.dci<idx>.*) and
// receives its shard's flight recorder — one ring per shard, so hot-path
// recording stays lock-free under parallel execution and the rings merge
// time-ordered at export. Time-series sampling registers a quiescent pump
// hook on Run instead of scheduling engine events, keeping sampled runs
// event-for-event identical to passive ones on any shard count. A nil
// Telemetry (the default) makes this a no-op, so telemetry-off builds are
// untouched.
func (n *Network) applyTelemetry() {
	tel := n.P.Telemetry
	if tel == nil {
		return
	}
	reg := tel.Registry()
	tel.NodeNamer = n.NodeName
	frs := tel.ShardRecorders(n.shards)
	frOf := func(dc int) *metrics.FlightRecorder {
		if frs == nil {
			return nil
		}
		return frs[n.shardOf(dc)]
	}
	if iv := tel.SampleInterval(); iv > 0 {
		n.OnQuiescent(iv, tel.Pump)
	}

	if reg != nil {
		// Shard-wide aggregates; on a single-engine build these reduce to
		// the engine's own counters. The closures read across engines, which
		// is safe because registry instruments are only evaluated with the
		// simulation quiescent (post-run dump or between Run windows).
		reg.CounterFunc("sim.events_fired", func() int64 { return int64(n.Fired()) })
		reg.GaugeFunc("sim.events_pending", func() float64 { return float64(n.PendingEvents()) })
		reg.GaugeFunc("sim.now_ms", func() float64 { return n.Now().Millis() })
	}
	alg := n.Alg.Name
	for i, h := range n.Hosts {
		h.SetRecorder(frOf(n.DC(i)))
		h.RegisterMetrics(reg, fmt.Sprintf("host.h%d", i), alg, tel.PerFlow())
	}
	if reg != nil {
		// Fleet-wide feedback-plane aggregates (the per-host host.h<i>.fb_*
		// counters are the breakdown). Registered once here — the registry
		// rejects duplicate instrument names.
		hosts := n.Hosts
		sum := func(f func(h *host.Host) int64) func() int64 {
			return func() int64 {
				var t int64
				for _, h := range hosts {
					t += f(h)
				}
				return t
			}
		}
		reg.CounterFunc("cc.fb.dropped", sum(func(h *host.Host) int64 { return h.FBDropped }))
		reg.CounterFunc("cc.fb.delayed", sum(func(h *host.Host) int64 { return h.FBDelayed }))
		reg.CounterFunc("cc.fb.invalid_int", sum(func(h *host.Host) int64 { return h.InvalidINT }))
		reg.CounterFunc("cc.fb.watchdog_decays", sum(func(h *host.Host) int64 { return h.WatchdogDecays }))
		reg.CounterFunc("cc.fb.watchdog_recovers", sum(func(h *host.Host) int64 { return h.WatchdogRecovers }))
	}
	for i, sw := range n.Leaves {
		sw.SetRecorder(frOf(n.leafDC(i)))
		sw.RegisterMetrics(reg, fmt.Sprintf("switch.leaf%d", i))
	}
	for i, sw := range n.Spines {
		sw.SetRecorder(frOf(n.spineDC(i)))
		sw.RegisterMetrics(reg, fmt.Sprintf("switch.spine%d", i))
	}
	for i, d := range n.DCIs {
		d.SetRecorder(frOf(i))
		d.RegisterMetrics(reg, fmt.Sprintf("dci.dci%d", i))
	}
}

// Telemetry returns the network's telemetry layer (possibly nil).
func (n *Network) Telemetry() *metrics.Telemetry { return n.P.Telemetry }
