package topo

import (
	"mlcc/internal/cc"
	"mlcc/internal/dci"
	"mlcc/internal/fabric"
	"mlcc/internal/host"
	"mlcc/internal/link"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Node id blocks: hosts get 1+index, switches live in high ranges so a
// trace is easy to read.
const (
	leafIDBase  = 100
	spineIDBase = 200
	dciIDBase   = 300
)

// TwoDC builds the paper's two-datacenter spine-leaf network (Fig. 1).
func TwoDC(p Params) *Network {
	n := newNetwork(p, 2*p.LeavesPerDC*p.HostsPerLeaf, false)

	leavesTotal := 2 * p.LeavesPerDC
	spinesTotal := 2 * p.SpinesPerDC

	// Create switches, each on its DC's engine and pool.
	for i := 0; i < leavesTotal; i++ {
		d := n.leafDC(i)
		n.Leaves = append(n.Leaves, fabric.New(n.engOf(d), n.poolOf(d), n.dcSwitchCfg(pkt.NodeID(leafIDBase+i))))
	}
	for i := 0; i < spinesTotal; i++ {
		d := n.spineDC(i)
		n.Spines = append(n.Spines, fabric.New(n.engOf(d), n.poolOf(d), n.dcSwitchCfg(pkt.NodeID(spineIDBase+i))))
	}
	for d := 0; d < 2; d++ {
		n.DCIs = append(n.DCIs, dci.New(n.engOf(d), n.poolOf(d), n.dciCfg(pkt.NodeID(dciIDBase+d), p.SpinesPerDC)))
	}

	// Create hosts and host↔leaf links.
	for h := 0; h < n.NumHosts(); h++ {
		hh := n.newHost(h, p.HostLinkDelay)
		leaf := n.Leaves[n.Rack(h)]
		lp := leaf.AddPort(p.HostRate, p.HostLinkDelay)
		link.Connect(hh.Port(), lp)
	}

	// Leaf↔spine links (full mesh within each DC). Leaf ports
	// [HostsPerLeaf, HostsPerLeaf+SpinesPerDC) are the uplinks; spine ports
	// [0, LeavesPerDC) are the downlinks, in leaf order.
	for d := 0; d < 2; d++ {
		for li := 0; li < p.LeavesPerDC; li++ {
			leaf := n.Leaves[d*p.LeavesPerDC+li]
			for si := 0; si < p.SpinesPerDC; si++ {
				spine := n.Spines[d*p.SpinesPerDC+si]
				up := leaf.AddPort(p.FabricRate, p.FabricDelay)
				down := spine.AddPort(p.FabricRate, p.FabricDelay)
				link.Connect(up, down)
			}
		}
	}

	// Spine↔DCI links: spine port LeavesPerDC; DCI ports [0, SpinesPerDC).
	for d := 0; d < 2; d++ {
		for si := 0; si < p.SpinesPerDC; si++ {
			spine := n.Spines[d*p.SpinesPerDC+si]
			up := spine.AddPort(p.FabricRate, p.FabricDelay)
			down := n.DCIs[d].AddPort(p.FabricRate, p.FabricDelay)
			link.Connect(up, down)
		}
	}

	// Long-haul link: DCI port SpinesPerDC on each side.
	lh0 := n.DCIs[0].AddPort(p.FabricRate, p.LongHaulDelay)
	lh1 := n.DCIs[1].AddPort(p.FabricRate, p.LongHaulDelay)
	n.connectLongHaul(lh0, lh1)

	// Routes.
	for h := 0; h < n.NumHosts(); h++ {
		id := n.HostID(h)
		hd := n.DC(h)
		rack := n.Rack(h)
		localRack := rack % p.LeavesPerDC

		for d := 0; d < 2; d++ {
			for li := 0; li < p.LeavesPerDC; li++ {
				leaf := n.Leaves[d*p.LeavesPerDC+li]
				if d == hd && li == localRack {
					leaf.AddRoute(id, h%p.HostsPerLeaf)
				} else {
					for si := 0; si < p.SpinesPerDC; si++ {
						leaf.AddRoute(id, p.HostsPerLeaf+si)
					}
				}
			}
			for si := 0; si < p.SpinesPerDC; si++ {
				spine := n.Spines[d*p.SpinesPerDC+si]
				if d == hd {
					spine.AddRoute(id, localRack)
				} else {
					spine.AddRoute(id, p.LeavesPerDC)
				}
			}
			dciSw := n.DCIs[d]
			if d == hd {
				for si := 0; si < p.SpinesPerDC; si++ {
					dciSw.AddRoute(id, si)
				}
			} else {
				dciSw.AddRoute(id, p.SpinesPerDC)
			}
		}
	}

	for _, d := range n.DCIs {
		d.Finalize()
	}
	n.finishShards()
	n.applyTelemetry()
	n.applyFaults()
	n.applyAudit()
	n.applyGuard()
	return n
}

// Dumbbell builds the §4.6 testbed shape: two servers per ToR, one ToR per
// DC, DCI switches joined by the long-haul link. Host indices 0,1 are DC 0.
func Dumbbell(p Params) *Network {
	if p.HostsPerLeaf < 2 {
		p.HostsPerLeaf = 2
	}
	p.LeavesPerDC = 1
	p.SpinesPerDC = 0
	n := newNetwork(p, 2*p.HostsPerLeaf, true)

	for i := 0; i < 2; i++ {
		n.Leaves = append(n.Leaves, fabric.New(n.engOf(i), n.poolOf(i), n.dcSwitchCfg(pkt.NodeID(leafIDBase+i))))
		n.DCIs = append(n.DCIs, dci.New(n.engOf(i), n.poolOf(i), n.dciCfg(pkt.NodeID(dciIDBase+i), 1)))
	}

	for h := 0; h < n.NumHosts(); h++ {
		hh := n.newHost(h, p.HostLinkDelay)
		tor := n.Leaves[n.DC(h)]
		tp := tor.AddPort(p.HostRate, p.HostLinkDelay)
		link.Connect(hh.Port(), tp)
	}

	for d := 0; d < 2; d++ {
		up := n.Leaves[d].AddPort(p.FabricRate, p.FabricDelay)
		down := n.DCIs[d].AddPort(p.FabricRate, p.FabricDelay)
		link.Connect(up, down)
	}
	lh0 := n.DCIs[0].AddPort(p.FabricRate, p.LongHaulDelay)
	lh1 := n.DCIs[1].AddPort(p.FabricRate, p.LongHaulDelay)
	n.connectLongHaul(lh0, lh1)

	for h := 0; h < n.NumHosts(); h++ {
		id := n.HostID(h)
		hd := n.DC(h)
		for d := 0; d < 2; d++ {
			if d == hd {
				n.Leaves[d].AddRoute(id, h%p.HostsPerLeaf)
				n.DCIs[d].AddRoute(id, 0)
			} else {
				n.Leaves[d].AddRoute(id, p.HostsPerLeaf)
				n.DCIs[d].AddRoute(id, 1)
			}
		}
	}

	for _, d := range n.DCIs {
		d.Finalize()
	}
	n.finishShards()
	n.applyTelemetry()
	n.applyFaults()
	n.applyAudit()
	n.applyGuard()
	return n
}

func newNetwork(p Params, numHosts int, dumbbell bool) *Network {
	shards := p.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > 2 {
		shards = 2 // one shard per DC; both topologies have two
	}
	if shards > 1 && p.ShardFallback() != "" {
		shards = 1
	}
	engines := make([]*sim.Engine, shards)
	pools := make([]*pkt.Pool, shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
		pools[i] = pkt.NewPool()
	}
	n := &Network{
		P:          p,
		Eng:        engines[0],
		Pool:       pools[0],
		Engines:    engines,
		Pools:      pools,
		Table:      host.NewTable(),
		HostsPerDC: numHosts / 2,
		Dumbbell:   dumbbell,
		numHosts:   numHosts,
		shards:     shards,
	}
	if p.Alg == nil {
		panic("topo: Params.Alg is required")
	}
	// One CC bundle per shard: algorithms with timers (DCQCN) bind the
	// engine, so each shard's hosts must draw senders from their own bundle.
	n.algs = make([]cc.Algorithm, shards)
	for i := range n.algs {
		n.algs[i] = p.Alg(engines[i])
	}
	n.Alg = n.algs[0]
	// Fill topology-dependent DQM parameters.
	n.P.DQM.RTTc = n.CrossRTT()
	n.P.DQM.RTTd = n.FarRTT(0)
	n.P.DQM.MTU = p.MTU
	n.P.DQM.MaxRate = p.HostRate
	return n
}

// connectLongHaul joins the two DCI long-haul ports: a plain link on a
// single-engine build, a cross-shard mailbox link on a sharded one.
func (n *Network) connectLongHaul(lh0, lh1 *link.Port) {
	if n.shards > 1 {
		link.ConnectCross(lh0, lh1)
		n.crossA, n.crossB = lh0, lh1
		return
	}
	link.Connect(lh0, lh1)
}

// finishShards arms the conservative barrier scheduler over the per-DC
// engines. The lookahead is the long-haul propagation delay — the minimum
// delay of any cross-shard link — so every frame launched inside a window
// arrives strictly after the window's barrier and can be scheduled at its
// exact arrival time by the exchange. The exchange flushes the two mailbox
// directions in fixed DC0→DC1 order at every barrier, keeping sharded runs
// bit-deterministic (see DESIGN.md, "Parallel engine").
func (n *Network) finishShards() {
	if n.shards == 1 {
		return
	}
	n.group = sim.NewShardGroup(n.Engines, n.P.LongHaulDelay, func(sim.Time) {
		n.crossA.FlushCross()
		n.crossB.FlushCross()
	})
}

func (n *Network) newHost(h int, delay sim.Time) *host.Host {
	cfg := host.Config{
		ID:          n.HostID(h),
		Rate:        n.P.HostRate,
		MTU:         n.P.MTU,
		CNPInterval: n.P.CNPInterval,
		RTOMin:      n.P.RTOMin,
		RTOMax:      n.P.RTOMax,
		MaxRetrans:  n.P.MaxRetrans,
		FBWatchdogK: n.P.FBWatchdogK,
	}
	dc := n.DC(h)
	alg := n.algOf(dc)
	hh := host.New(n.engOf(dc), n.poolOf(dc), cfg, n.Table, alg.NewSender, alg.NewReceiver, delay)
	n.Hosts = append(n.Hosts, hh)
	return hh
}

func (n *Network) dcSwitchCfg(id pkt.NodeID) fabric.Config {
	return fabric.Config{
		ID:          id,
		BufferBytes: n.P.DCBuffer,
		ECNKmin:     n.P.DCKmin,
		ECNKmax:     n.P.DCKmax,
		ECNPmax:     n.P.ECNPmax,
		PFCEnabled:  n.P.PFCEnabled,
		PFCXoff:     n.P.DCXoff,
		PFCXon:      n.P.DCXon,
		INTEnabled:  n.P.INTEnabled,
		Seed:        n.P.Seed,
	}
}

func (n *Network) dciCfg(id pkt.NodeID, spines int) dci.Config {
	mlcc := n.Alg.UseMLCCDCI
	return dci.Config{
		Fabric: fabric.Config{
			ID:          id,
			BufferBytes: n.P.DCIBuffer,
			ECNKmin:     n.P.DCIKmin,
			ECNKmax:     n.P.DCIKmax,
			ECNPmax:     n.P.ECNPmax,
			PFCEnabled:  n.P.PFCEnabled,
			PFCXoff:     n.P.DCIXoff,
			PFCXon:      n.P.DCIXon,
			// Under MLCC the DCI clears/reinserts INT itself.
			INTEnabled: n.P.INTEnabled && !mlcc,
			Seed:       n.P.Seed,
		},
		LongHaulPort: spines,
		MLCC:         mlcc,
		DQM:          n.P.DQM,
		InitRate:     n.P.HostRate,
	}
}
