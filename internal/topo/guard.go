package topo

import (
	"fmt"

	"mlcc/internal/guard"
	"mlcc/internal/link"
	"mlcc/internal/metrics"
)

// applyGuard arms P.Guard on the built network: every device becomes a
// wait-for-graph node (its ports monitored for pause storms), every host a
// progress probe, and the plane ticks as a quiescent hook — reading across
// shards with all engines parked, exactly like telemetry sampling. The
// plane's counters register under "guard.*" when telemetry is wired, its
// dumps merge the per-shard flight-recorder rings, and its stall supervisor
// requests a graceful Run halt. Defaults scale with the cross-DC RTT, the
// topology's largest base RTT.
func (n *Network) applyGuard() {
	if n.P.Guard == nil {
		return
	}
	var nodes []*guard.Node
	for i, h := range n.Hosts {
		nodes = append(nodes, &guard.Node{
			ID:    int32(n.HostID(i)),
			Name:  fmt.Sprintf("host%d", i),
			Ports: []*link.Port{h.Port()},
		})
	}
	swNode := func(id int32, name string, numPorts int, port func(int) *link.Port) {
		nd := &guard.Node{ID: id, Name: name}
		for p := 0; p < numPorts; p++ {
			nd.Ports = append(nd.Ports, port(p))
		}
		nodes = append(nodes, nd)
	}
	for i, sw := range n.Leaves {
		swNode(int32(leafIDBase+i), fmt.Sprintf("leaf%d", i), sw.NumPorts(), sw.Port)
	}
	for i, sw := range n.Spines {
		swNode(int32(spineIDBase+i), fmt.Sprintf("spine%d", i), sw.NumPorts(), sw.Port)
	}
	for i, d := range n.DCIs {
		swNode(int32(dciIDBase+i), fmt.Sprintf("dci%d", i), d.NumPorts(), d.Port)
	}
	probes := make([]guard.Progress, len(n.Hosts))
	for i, h := range n.Hosts {
		probes[i] = h
	}
	var frs []*metrics.FlightRecorder
	if tel := n.P.Telemetry; tel != nil {
		frs = tel.ShardRecorders(n.shards)
	}
	n.Guard = guard.New(*n.P.Guard, n.CrossRTT(), nodes, probes, frs, n.RequestHalt)
	if tel := n.P.Telemetry; tel != nil {
		n.Guard.RegisterMetrics(tel.Registry(), "guard")
	}
	n.OnQuiescent(n.Guard.Every(), n.Guard.Tick)
}
