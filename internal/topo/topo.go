// Package topo builds the simulated networks of the paper's evaluation: the
// two-datacenter spine-leaf topology of Fig. 1 (2 spines + 4 leaves + 4
// servers/leaf per DC, 4:1 oversubscription, DCI switches joined by a
// long-haul fiber) and the dumbbell testbed of §4.6. It owns all wiring:
// ports, links, static ECMP routes, per-algorithm switch features (ECN, INT,
// PFC, MLCC DCI behaviours) and base-RTT bookkeeping.
package topo

import (
	"fmt"

	"mlcc/internal/audit"
	"mlcc/internal/cc"
	"mlcc/internal/core"
	"mlcc/internal/dci"
	"mlcc/internal/fabric"
	"mlcc/internal/fault"
	"mlcc/internal/guard"
	"mlcc/internal/host"
	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// AlgFactory builds the congestion-control bundle for a network; it receives
// the engine because some algorithms (DCQCN) run timers.
type AlgFactory func(eng *sim.Engine) cc.Algorithm

// Params describes a network build.
type Params struct {
	// Shape (defaults follow §4.1).
	SpinesPerDC  int
	LeavesPerDC  int
	HostsPerLeaf int

	// Link speeds and delays.
	HostRate      sim.Rate // server NIC / server-leaf links
	FabricRate    sim.Rate // switch-switch links
	HostLinkDelay sim.Time
	FabricDelay   sim.Time
	LongHaulDelay sim.Time

	// Buffers.
	DCBuffer  int64
	DCIBuffer int64

	// PFC thresholds.
	PFCEnabled bool
	DCXoff     int64
	DCXon      int64
	DCIXoff    int64
	DCIXon     int64

	// ECN (WRED) marking; zero Kmax disables.
	DCKmin, DCKmax   int64
	DCIKmin, DCIKmax int64
	ECNPmax          float64

	// Telemetry.
	INTEnabled bool

	MTU         int
	CNPInterval sim.Time // host CNP pacing (DCQCN); 0 disables CNP generation

	// Host loss-recovery knobs (zero = host defaults; see host.Config).
	RTOMin     sim.Time
	RTOMax     sim.Time
	MaxRetrans int

	// FBWatchdogK is the feedback-silence watchdog threshold in base RTTs
	// (see host.Config.FBWatchdogK). Zero — the default — leaves it off:
	// the watchdog cannot distinguish a severed reverse path from a long
	// congestion pause (PFC storms silence feedback for many RTTs on
	// µs-RTT intra-DC flows), so arming is an explicit choice made where
	// feedback faults are configured (mlccsim arms host.DefaultWatchdogK
	// whenever a feedback-fault flag is given; fb-resilience sets its own).
	FBWatchdogK int

	// Congestion control.
	Alg AlgFactory

	// MLCC DQM parameters (credit/queue management at receiver-side DCIs).
	DQM core.DQMParams

	// Telemetry, when non-nil, is wired through every component at build
	// time: instruments register in its registry and each component receives
	// its shard's flight recorder (one lock-free ring per shard, merged at
	// export). Sampling, when enabled, is pumped by Run at quiescent
	// boundaries. Nil (the default) costs nothing.
	Telemetry *metrics.Telemetry

	// Fault, when non-empty, is applied to the built network: scripted
	// link flaps and degradation plus Bernoulli loss rules, all on seeded
	// PRNG streams (see internal/fault). Nil or empty perturbs nothing.
	Fault *fault.Plan

	// Guard, when non-nil, arms the runtime-invariant plane: a PFC
	// pause-storm watchdog, a pause-cycle deadlock detector and a global
	// progress supervisor, all ticking at quiescent points (see
	// internal/guard). Zero fields in the config take defaults scaled by the
	// topology's cross-DC RTT. The plane is read-only: an armed but
	// untriggered guard leaves the run bit-identical, digests included. A
	// progress stall requests a graceful halt — Run returns early and
	// Halted() reports why.
	Guard *guard.Config

	// Audit, when non-nil, is wired through every component at build time:
	// hosts and switches report packet fates into the conservation ledger
	// and every cable is registered for per-link accounting (see
	// internal/audit). Nil (the default) costs nothing and leaves the run
	// bit-identical.
	Audit *audit.Ledger

	// Shards selects conservative parallel execution: the topology is
	// partitioned per DC, each partition owns its own engine and packet
	// pool, and the partitions run in lookahead-bounded lockstep with the
	// long-haul frames exchanged through mailboxes at every barrier (the
	// lookahead is LongHaulDelay; see sim.ShardGroup and DESIGN.md,
	// "Parallel engine"). 0 or 1 runs everything on one engine —
	// bit-identical to historical builds; values above the DC count clamp
	// to it. The only remaining fallback is a topology without a positive
	// long-haul delay; see ShardFallback. Sharded runs stay
	// bit-deterministic and produce the same determinism digests as
	// shards=1 — fault plans included (see DESIGN.md, "Sharded faults").
	Shards int

	Seed int64
}

// ShardFallback reports why a multi-shard request must fall back to a single
// engine under this parameter set, or "" when sharding is usable. Only a
// topology without a positive long-haul delay pins the build (no lookahead
// to bound the barriers). Every other plane is shard-safe: telemetry
// records into per-shard flight-recorder rings merged at export, sampling
// is pump-driven at quiescent barriers, the registry serializes mid-run
// registration behind a mutex — and fault plans schedule their scripted
// events per direction on the engine owning each port, with per-direction
// PRNG streams, so a scripted long-haul blackout fires on both shards at
// the same absolute time (see DESIGN.md, "Sharded faults").
func (p Params) ShardFallback() string {
	if p.LongHaulDelay <= 0 {
		return "no positive long-haul delay to bound the shard lookahead"
	}
	return ""
}

// DefaultParams returns the paper's simulation setup (§4.1) without an
// algorithm bound; callers must set Alg.
func DefaultParams() Params {
	return Params{
		SpinesPerDC:   2,
		LeavesPerDC:   4,
		HostsPerLeaf:  4,
		HostRate:      25 * sim.Gbps,
		FabricRate:    100 * sim.Gbps,
		HostLinkDelay: sim.Microsecond,
		FabricDelay:   5 * sim.Microsecond,
		LongHaulDelay: 3 * sim.Millisecond,
		DCBuffer:      22 << 20,
		DCIBuffer:     128 << 20,
		PFCEnabled:    true,
		DCXoff:        512 << 10,
		DCXon:         256 << 10,
		DCIXoff:       32 << 20,
		DCIXon:        16 << 20,
		ECNPmax:       0.2,
		INTEnabled:    true,
		MTU:           pkt.DefaultMTU,
		DQM:           core.DefaultDQMParams(),
	}
}

// Network is a built simulation: engine(s), hosts, switches and metadata.
type Network struct {
	P    Params
	Eng  *sim.Engine
	Pool *pkt.Pool

	// Engines and Pools hold the per-shard engines and packet pools in
	// shard (= DC) order. Engines[0] == Eng and Pools[0] == Pool always, so
	// single-engine code paths are untouched; both have length 1 unless the
	// build is sharded.
	Engines []*sim.Engine
	Pools   []*pkt.Pool

	Table *host.Table
	Alg   cc.Algorithm

	Hosts  []*host.Host // global index; [0, HostsPerDC) = DC 0
	Leaves []*fabric.Switch
	Spines []*fabric.Switch
	DCIs   []*dci.Switch

	// Faults is the applied fault plan's injector (nil when P.Fault is
	// empty).
	Faults *fault.Injector

	// Guard is the armed runtime-invariant plane (nil when P.Guard is nil).
	Guard *guard.Plane

	HostsPerDC int
	Dumbbell   bool

	numHosts int
	shards   int

	algs  []cc.Algorithm  // per-shard CC bundles; algs[0] == Alg
	group *sim.ShardGroup // barrier scheduler; nil on single-engine builds
	auds  []*audit.Ledger // per-shard partial ledgers (len > 1 only when sharded)

	qhooks []*quiescentHook // periodic quiescent callbacks driven by Run

	// crossA/crossB are the long-haul cross-shard mailbox ports, flushed in
	// fixed A→B order at every barrier (nil on single-engine builds).
	crossA, crossB *link.Port

	// halted/haltReason record a graceful diagnostic abort requested by the
	// guard plane (or any quiescent hook): Run stops at the next quiescent
	// boundary instead of advancing to its deadline.
	halted     bool
	haltReason string
}

// NumHosts reports the total host count.
func (n *Network) NumHosts() int { return n.numHosts }

// ShardCount reports how many engines the build actually runs on: P.Shards
// clamped to the DC count, or 1 when a feature forced the single-engine
// fallback (see Params.ShardFallback).
func (n *Network) ShardCount() int { return n.shards }

// shardOf maps a DC index to its shard: identity on sharded builds, 0
// otherwise.
func (n *Network) shardOf(dc int) int {
	if n.shards > 1 {
		return dc
	}
	return 0
}

func (n *Network) engOf(dc int) *sim.Engine  { return n.Engines[n.shardOf(dc)] }
func (n *Network) poolOf(dc int) *pkt.Pool   { return n.Pools[n.shardOf(dc)] }
func (n *Network) algOf(dc int) cc.Algorithm { return n.algs[n.shardOf(dc)] }

// leafDC returns the DC index of leaf switch i (LeavesPerDC is 1 on the
// dumbbell, so the identity mapping falls out).
func (n *Network) leafDC(i int) int { return i / n.P.LeavesPerDC }

// spineDC returns the DC index of spine switch i.
func (n *Network) spineDC(i int) int { return i / n.P.SpinesPerDC }

// Now returns the current simulation time: the group clock on sharded
// builds (every engine's clock equals it between runs), the engine clock
// otherwise.
func (n *Network) Now() sim.Time {
	if n.group != nil {
		return n.group.Now()
	}
	return n.Eng.Now()
}

// Fired reports the total events executed across all shards.
func (n *Network) Fired() uint64 {
	var t uint64
	for _, e := range n.Engines {
		t += e.Fired()
	}
	return t
}

// PendingEvents reports the total live events across all shards.
func (n *Network) PendingEvents() int {
	var t int
	for _, e := range n.Engines {
		t += e.Pending()
	}
	return t
}

// Drained reports whether every packet has returned to a pool. Summing
// across shards is exact even though long-haul frames are freed into the
// receiving shard's pool: each Get is +1 on its pool and each Put −1 on
// whichever pool receives the frame, so the sum counts packets in flight.
func (n *Network) Drained() bool {
	var t int64
	for _, pl := range n.Pools {
		t += pl.Outstanding()
	}
	return t == 0
}

// DC returns the datacenter index (0 or 1) of host h.
func (n *Network) DC(h int) int { return h / n.HostsPerDC }

// Rack returns the global rack (leaf) index of host h, numbered from 0.
// The paper numbers racks from 1; rack "1" is index 0, rack "5" is index 4.
func (n *Network) Rack(h int) int { return h / n.P.HostsPerLeaf }

// HostID converts a host index to its NodeID.
func (n *Network) HostID(h int) pkt.NodeID { return pkt.NodeID(1 + h) }

// HostIndex converts a NodeID back to a host index.
func (n *Network) HostIndex(id pkt.NodeID) int { return int(id) - 1 }

// RackHost returns the host index of server i (0-based) in paper rack r
// (1-based), e.g. RackHost(5, 0) is the first server of Rack 5.
func (n *Network) RackHost(r, i int) int { return (r-1)*n.P.HostsPerLeaf + i }

// CrossDC reports whether a src→dst host pair crosses datacenters.
func (n *Network) CrossDC(src, dst int) bool { return n.DC(src) != n.DC(dst) }

// mtuSer is the serialization time of one MTU at rate r.
func (n *Network) mtuSer(r sim.Rate) sim.Time { return sim.TxTime(n.P.MTU, r) }

// BaseRTT returns the unloaded RTT between two hosts: twice the propagation
// plus one MTU serialization per forward hop (ACK serialization is
// negligible and folded in as one control frame per hop).
func (n *Network) BaseRTT(src, dst int) sim.Time {
	ctl := func(hops int) sim.Time {
		return sim.Time(hops) * sim.TxTime(pkt.ControlSize, n.P.FabricRate)
	}
	hostSer := n.mtuSer(n.P.HostRate)
	fabSer := n.mtuSer(n.P.FabricRate)
	if n.Dumbbell {
		// host→ToR→DCI→DCI→ToR→host
		prop := n.P.HostLinkDelay + n.P.FabricDelay + n.P.LongHaulDelay + n.P.FabricDelay + n.P.HostLinkDelay
		ser := hostSer + 3*fabSer + hostSer
		return 2*prop + ser + ctl(5)
	}
	switch {
	case src == dst:
		return 0
	case n.Rack(src) == n.Rack(dst):
		prop := 2 * n.P.HostLinkDelay
		return 2*prop + 2*hostSer + ctl(2)
	case n.DC(src) == n.DC(dst):
		prop := 2*n.P.HostLinkDelay + 2*n.P.FabricDelay
		return 2*prop + 2*hostSer + 2*fabSer + ctl(4)
	default:
		prop := 2*n.P.HostLinkDelay + 4*n.P.FabricDelay + n.P.LongHaulDelay
		return 2*prop + 2*hostSer + 5*fabSer + ctl(7)
	}
}

// NearRTT returns the sender ↔ sender-side DCI loop RTT for host h.
func (n *Network) NearRTT(h int) sim.Time {
	if n.Dumbbell {
		prop := n.P.HostLinkDelay + n.P.FabricDelay
		return 2*prop + n.mtuSer(n.P.HostRate) + n.mtuSer(n.P.FabricRate) +
			2*sim.TxTime(pkt.ControlSize, n.P.FabricRate)
	}
	prop := n.P.HostLinkDelay + 2*n.P.FabricDelay
	return 2*prop + n.mtuSer(n.P.HostRate) + 2*n.mtuSer(n.P.FabricRate) +
		3*sim.TxTime(pkt.ControlSize, n.P.FabricRate)
}

// FarRTT returns the receiver ↔ receiver-side DCI loop RTT for host h (the
// credit loop's RTT_D). Symmetric topology makes it equal to NearRTT.
func (n *Network) FarRTT(h int) sim.Time { return n.NearRTT(h) }

// IntraRTT returns the representative intra-DC RTT (different racks).
func (n *Network) IntraRTT() sim.Time {
	if n.Dumbbell {
		return n.NearRTT(0)
	}
	return n.BaseRTT(0, n.P.HostsPerLeaf) // hosts in racks 0 and 1
}

// PerHostBisection returns each host's share of its leaf's uplink capacity,
// capped at the NIC rate — the capacity the evaluation's intra-DC "load"
// percentages are measured against in oversubscribed fabrics.
func (n *Network) PerHostBisection() sim.Rate {
	if n.Dumbbell || n.P.HostsPerLeaf == 0 {
		return n.P.HostRate
	}
	share := sim.Rate(int64(n.P.FabricRate) * int64(n.P.SpinesPerDC) / int64(n.P.HostsPerLeaf))
	if share > n.P.HostRate {
		share = n.P.HostRate
	}
	return share
}

// CrossRTT returns the representative cross-DC RTT.
func (n *Network) CrossRTT() sim.Time { return n.BaseRTT(0, n.HostsPerDC) }

// FlowInfo assembles the cc.FlowInfo for a src→dst transfer.
func (n *Network) FlowInfo(src, dst int, size int64) cc.FlowInfo {
	if src == dst {
		panic(fmt.Sprintf("topo: flow to self (host %d)", src))
	}
	return cc.FlowInfo{
		Src:      n.HostID(src),
		Dst:      n.HostID(dst),
		Size:     size,
		LinkRate: n.P.HostRate,
		MTU:      n.P.MTU,
		BaseRTT:  n.BaseRTT(src, dst),
		NearRTT:  n.NearRTT(src),
		FarRTT:   n.FarRTT(dst),
		CrossDC:  n.CrossDC(src, dst),
	}
}

// AddFlow registers a flow starting at time start and schedules its launch
// on the source host's engine. On sharded builds AddFlow may only be called
// with every engine parked — before Run, or on the driving goroutine inside a
// quiescent hook (the scenario barrier poll launches collective phases this
// way) — since scheduling into a foreign shard mid-run would break the
// single-goroutine engine contract.
func (n *Network) AddFlow(src, dst int, size int64, start sim.Time) *host.Flow {
	f := n.Table.Add(n.FlowInfo(src, dst, size), start)
	h := n.Hosts[src]
	n.engOf(n.DC(src)).At(start, func() { h.StartFlow(f) })
	return f
}

// quiescentHook is a callback Run fires with every engine parked at a
// multiple of its interval — the mechanism behind pump-driven telemetry
// sampling, live observability snapshots and the scenario barrier poll.
// Passive hooks (telemetry, obs) schedule no engine events, so a run with
// them executes the exact same event sequence as one without (RunUntil
// partitioning is behaviour-neutral: the heap orders by (time, insertion seq)
// and boundary events still fire at their boundary). Hooks that do schedule —
// the scenario poll registers next-phase flows via AddFlow — stay
// deterministic because boundaries are exact multiples independent of shard
// layout and the hook runs with all engines parked.
type quiescentHook struct {
	every sim.Time
	next  sim.Time
	fn    func(now sim.Time)
}

// OnQuiescent registers fn to be called at every multiple of every (starting
// at Now()+every) during subsequent Run calls, with the simulation quiescent
// and the clock exactly at the boundary. Callbacks run on the driving
// goroutine with no engine goroutine active, so they may read any simulation
// state — across shards — without synchronization. Hooks registered with the
// same boundary fire in registration order.
func (n *Network) OnQuiescent(every sim.Time, fn func(now sim.Time)) {
	if every <= 0 {
		panic("topo: OnQuiescent interval must be positive")
	}
	n.qhooks = append(n.qhooks, &quiescentHook{every: every, next: n.Now() + every, fn: fn})
}

// runTo advances to t — through the conservative barrier scheduler on
// sharded builds, directly on the engine otherwise.
func (n *Network) runTo(t sim.Time) {
	if n.group != nil {
		n.group.RunUntil(t)
		return
	}
	n.Eng.RunUntil(t)
}

// Run advances the simulation to the given time, pausing at every quiescent
// hook boundary on the way (see OnQuiescent). Without hooks this is a single
// uninterrupted advance. A halt requested by a hook (the guard plane's
// progress supervisor) stops the advance at that boundary; further Run calls
// are no-ops.
func (n *Network) Run(until sim.Time) {
	if n.halted {
		return
	}
	if len(n.qhooks) == 0 {
		n.runTo(until)
		return
	}
	for {
		now := n.Now()
		next := until
		for _, h := range n.qhooks {
			if h.next > now && h.next < next {
				next = h.next
			}
		}
		n.runTo(next)
		for _, h := range n.qhooks {
			if h.next == next {
				h.fn(next)
				h.next += h.every
			}
		}
		if n.halted || next >= until {
			return
		}
	}
}

// RequestHalt asks Run to stop at the current quiescent boundary with a
// diagnostic reason — the guard plane's graceful abort path. First reason
// wins; later requests are ignored.
func (n *Network) RequestHalt(reason string) {
	if n.halted {
		return
	}
	n.halted = true
	n.haltReason = reason
}

// Halted reports whether a graceful diagnostic abort was requested, and why.
func (n *Network) Halted() (bool, string) { return n.halted, n.haltReason }

// NodeName maps a flight-recorder node id to its topology name ("host3",
// "leaf0", "spine1", "dci0"), following the NodeID layout the builder uses:
// hosts are 1+index, switches sit at fixed per-tier bases, and negative ids
// are the fault layer's dedicated namespace (fault.FaultNodeID) naming the
// injected link, so merged traces never alias a fault event to a real node.
func (n *Network) NodeName(id int32) string {
	switch {
	case id >= dciIDBase:
		return fmt.Sprintf("dci%d", id-dciIDBase)
	case id >= spineIDBase:
		return fmt.Sprintf("spine%d", id-spineIDBase)
	case id >= leafIDBase:
		return fmt.Sprintf("leaf%d", id-leafIDBase)
	case id >= 1:
		return fmt.Sprintf("host%d", id-1)
	case id < 0:
		if name := n.Faults.LinkNameAt(int(-1 - id)); name != "" {
			return "fault:" + name
		}
	}
	return fmt.Sprintf("node%d", id)
}
