package topo

import (
	"fmt"

	"mlcc/internal/audit"
	"mlcc/internal/link"
)

// applyAudit wires a built network into its conservation ledger: every host
// and switch reports flow-level events, every port reports fault-layer drops,
// and every cable is registered for per-link frame conservation. A nil
// Audit (the default) makes this a no-op, preserving the unaudited build
// bit-for-bit (TestDigestAuditInvariant pins this).
//
// Link names mirror LinkByName so an audit violation and a fault plan speak
// the same vocabulary: "host<i>" for NIC cables, "leaf<i>:<p>" /
// "spine<i>:<p>" / "dci<i>:<p>" for the first-visited end of a fabric cable,
// and "longhaul" for the DCI↔DCI fiber.
func (n *Network) applyAudit() {
	aud := n.P.Audit
	if aud == nil {
		return
	}
	if tel := n.P.Telemetry; tel != nil {
		aud.SetRecorder(tel.Recorder())
	}
	for _, h := range n.Hosts {
		h.SetAudit(aud)
	}
	for _, sw := range n.Leaves {
		sw.SetAudit(aud)
	}
	for _, sw := range n.Spines {
		sw.SetAudit(aud)
	}
	for _, d := range n.DCIs {
		d.SetAudit(aud)
	}

	// Walk every port once: install the fault-drop observer and register each
	// cable the first time one of its ends is visited. Walk order (hosts,
	// leaves, spines, DCIs) is deterministic, so link names are too.
	seen := make(map[*link.Port]bool)
	visit := func(name string, p *link.Port) {
		if p == nil {
			return
		}
		p.SetAuditDrop(aud.OnFaultDrop)
		if peer := p.Peer(); peer != nil && !seen[p] && !seen[peer] {
			aud.AddLink(name, p, peer)
		}
		seen[p] = true
	}
	for i, h := range n.Hosts {
		visit(fmt.Sprintf("host%d", i), h.Port())
	}
	walk := func(prefix string, i int, sw interface {
		NumPorts() int
		Port(int) *link.Port
	}) {
		for p := 0; p < sw.NumPorts(); p++ {
			visit(fmt.Sprintf("%s%d:%d", prefix, i, p), sw.Port(p))
		}
	}
	for i, sw := range n.Leaves {
		walk("leaf", i, sw)
	}
	for i, sw := range n.Spines {
		walk("spine", i, sw)
	}
	lh := n.P.SpinesPerDC
	if n.Dumbbell {
		lh = 1
	}
	for i, d := range n.DCIs {
		for p := 0; p < d.NumPorts(); p++ {
			name := fmt.Sprintf("dci%d:%d", i, p)
			if p == lh {
				name = "longhaul"
			}
			visit(name, d.Port(p))
		}
	}
}

// Audit returns the network's conservation ledger (possibly nil).
func (n *Network) Audit() *audit.Ledger { return n.P.Audit }

// AuditProblems runs the ledger's end-of-run checks, telling it whether the
// packet pool has fully drained; nil without a ledger or when clean.
func (n *Network) AuditProblems() []string {
	return n.P.Audit.Problems(n.Pool.Outstanding() == 0)
}

// MustAudit panics (via metrics.Violation, flight-recorder dump included)
// on any conservation violation. A nil ledger checks nothing.
func (n *Network) MustAudit() {
	n.P.Audit.MustCheck(n.Pool.Outstanding() == 0)
}
