package topo

import (
	"fmt"

	"mlcc/internal/audit"
	"mlcc/internal/link"
)

// applyAudit wires a built network into its conservation ledger: every host
// and switch reports flow-level events, every port reports fault-layer drops,
// and every cable is registered for per-link frame conservation. A nil
// Audit (the default) makes this a no-op, preserving the unaudited build
// bit-for-bit (TestDigestAuditInvariant pins this).
//
// Link names mirror LinkByName so an audit violation and a fault plan speak
// the same vocabulary: "host<i>" for NIC cables, "leaf<i>:<p>" /
// "spine<i>:<p>" / "dci<i>:<p>" for the first-visited end of a fabric cable,
// and "longhaul" for the DCI↔DCI fiber.
// On a sharded build the caller's ledger becomes shard 0's and a fresh
// partial ledger is created per further shard: every component reports into
// its own shard's ledger only (no cross-engine writes mid-run), and the
// end-of-run accessors recombine the halves with audit.Merged so the books
// still close across the shard boundary.
func (n *Network) applyAudit() {
	aud := n.P.Audit
	if aud == nil {
		return
	}
	n.auds = []*audit.Ledger{aud}
	if n.shards > 1 {
		aud.SetPartial(true)
		for i := 1; i < n.shards; i++ {
			a := audit.New()
			a.SetPartial(true)
			n.auds = append(n.auds, a)
		}
	}
	// Each shard's ledger dumps into that shard's flight-recorder ring, so a
	// violation's context never crosses an engine boundary mid-run.
	if frs := n.P.Telemetry.ShardRecorders(n.shards); frs != nil {
		for i, a := range n.auds {
			a.SetRecorder(frs[i])
		}
	}
	audOf := func(dc int) *audit.Ledger { return n.auds[n.shardOf(dc)] }
	for i, h := range n.Hosts {
		h.SetAudit(audOf(n.DC(i)))
	}
	for i, sw := range n.Leaves {
		sw.SetAudit(audOf(n.leafDC(i)))
	}
	for i, sw := range n.Spines {
		sw.SetAudit(audOf(n.spineDC(i)))
	}
	for d, sw := range n.DCIs {
		sw.SetAudit(audOf(d))
	}

	// Walk every port once: install the fault-drop observer (reporting into
	// the owning device's shard ledger) and register each cable the first
	// time one of its ends is visited. Walk order (hosts, leaves, spines,
	// DCIs) is deterministic, so link names are too. The long-haul cable is
	// registered in the first-visited end's ledger; its per-link equation
	// reads both ports' counters, which is safe because Problems only runs
	// with all shards quiescent.
	seen := make(map[*link.Port]bool)
	visit := func(led *audit.Ledger, name string, p *link.Port) {
		if p == nil {
			return
		}
		p.SetAuditDrop(led.OnFaultDrop)
		if peer := p.Peer(); peer != nil && !seen[p] && !seen[peer] {
			led.AddLink(name, p, peer)
		}
		seen[p] = true
	}
	for i, h := range n.Hosts {
		visit(audOf(n.DC(i)), fmt.Sprintf("host%d", i), h.Port())
	}
	walk := func(led *audit.Ledger, prefix string, i int, sw interface {
		NumPorts() int
		Port(int) *link.Port
	}) {
		for p := 0; p < sw.NumPorts(); p++ {
			visit(led, fmt.Sprintf("%s%d:%d", prefix, i, p), sw.Port(p))
		}
	}
	for i, sw := range n.Leaves {
		walk(audOf(n.leafDC(i)), "leaf", i, sw)
	}
	for i, sw := range n.Spines {
		walk(audOf(n.spineDC(i)), "spine", i, sw)
	}
	lh := n.P.SpinesPerDC
	if n.Dumbbell {
		lh = 1
	}
	for i, d := range n.DCIs {
		for p := 0; p < d.NumPorts(); p++ {
			name := fmt.Sprintf("dci%d:%d", i, p)
			if p == lh {
				name = "longhaul"
			}
			visit(audOf(i), name, d.Port(p))
		}
	}
}

// ledger returns the ledger end-of-run checks should use: the caller's on a
// single-engine build, the merge of every shard's on a sharded one. Merging
// is cheap (per-flow record combination) relative to a run, and re-merging
// per call keeps the partial ledgers live for further simulation.
func (n *Network) ledger() *audit.Ledger {
	if len(n.auds) > 1 {
		return audit.Merged(n.auds...)
	}
	return n.P.Audit
}

// Audit returns the network's conservation ledger (possibly nil). On a
// sharded build this is a merged snapshot of the per-shard ledgers.
func (n *Network) Audit() *audit.Ledger { return n.ledger() }

// AuditProblems runs the ledger's end-of-run checks, telling it whether the
// packet pools have fully drained; nil without a ledger or when clean.
func (n *Network) AuditProblems() []string {
	return n.ledger().Problems(n.Drained())
}

// MustAudit panics (via metrics.Violation, flight-recorder dump included)
// on any conservation violation. A nil ledger checks nothing.
func (n *Network) MustAudit() {
	n.ledger().MustCheck(n.Drained())
}
