package topo

import (
	"fmt"
	"strconv"
	"strings"

	"mlcc/internal/fabric"
	"mlcc/internal/fault"
	"mlcc/internal/link"
	"mlcc/internal/sim"
)

// LinkByName resolves a fault-plan link name to its two ports. Names:
//
//	longhaul      the DCI↔DCI long-haul fiber
//	host<i>       host i's NIC link to its leaf/ToR, e.g. "host0"
//	leaf<i>:<p>   port p of leaf switch i, e.g. "leaf0:4" (an uplink)
//	spine<i>:<p>  port p of spine switch i
//	dci<i>:<p>    port p of DCI switch i
//
// Switch-relative names exist so a plan can target any individual cable; the
// common cases are "longhaul" and "host<i>". A and B are the two endpoint
// ports; faults applied through the injector hit both directions.
func (n *Network) LinkByName(name string) (fault.Link, error) {
	bad := func() (fault.Link, error) {
		return fault.Link{}, fmt.Errorf("topo: unknown link %q", name)
	}
	pair := func(a *link.Port) (fault.Link, error) {
		if a == nil || a.Peer() == nil {
			return bad()
		}
		return fault.Link{Name: name, A: a, B: a.Peer()}, nil
	}

	if name == "longhaul" {
		lh := n.P.SpinesPerDC
		if n.Dumbbell {
			lh = 1
		}
		return pair(n.DCIs[0].Port(lh))
	}
	if rest, ok := strings.CutPrefix(name, "host"); ok && !strings.Contains(rest, ":") {
		i, err := strconv.Atoi(rest)
		if err != nil || i < 0 || i >= n.NumHosts() {
			return bad()
		}
		return pair(n.Hosts[i].Port())
	}
	sw, rest, ok := strings.Cut(name, ":")
	if !ok {
		return bad()
	}
	p, err := strconv.Atoi(rest)
	if err != nil || p < 0 {
		return bad()
	}
	port := func(idx string, count int, get func(i int) *link.Port) (fault.Link, error) {
		i, err := strconv.Atoi(idx)
		if err != nil || i < 0 || i >= count {
			return bad()
		}
		return pair(get(i))
	}
	switch {
	case strings.HasPrefix(sw, "leaf"):
		return port(sw[len("leaf"):], len(n.Leaves), func(i int) *link.Port {
			if p >= n.Leaves[i].NumPorts() {
				return nil
			}
			return n.Leaves[i].Port(p)
		})
	case strings.HasPrefix(sw, "spine"):
		return port(sw[len("spine"):], len(n.Spines), func(i int) *link.Port {
			if p >= n.Spines[i].NumPorts() {
				return nil
			}
			return n.Spines[i].Port(p)
		})
	case strings.HasPrefix(sw, "dci"):
		return port(sw[len("dci"):], len(n.DCIs), func(i int) *link.Port {
			if p >= n.DCIs[i].NumPorts() {
				return nil
			}
			return n.DCIs[i].Port(p)
		})
	}
	return bad()
}

// NodeHooksByName resolves a fault-plan node name to its fault surface.
// Names select whole devices: "host<i>", "leaf<i>", "spine<i>", "dci<i>".
// Hosts and intra-DC switches resolve to a single hook on their home engine —
// every cable they touch stays inside one shard, so Crash/Fail can cut both
// ends directly. A DCI switch on a sharded build gains a second hook on the
// peer shard's engine that cuts/restores the remote end of the long-haul
// cable at the same absolute time, mirroring the per-direction ownership
// scheme scripted link events use (cut-at-delivery epochs stay faithful
// because both directions transition at identical times).
func (n *Network) NodeHooksByName(name string) (*fault.NodeHooks, error) {
	bad := func() (*fault.NodeHooks, error) {
		return nil, fmt.Errorf("topo: unknown node %q", name)
	}
	idx := func(rest string, count int) (int, bool) {
		i, err := strconv.Atoi(rest)
		return i, err == nil && i >= 0 && i < count
	}
	if rest, ok := strings.CutPrefix(name, "host"); ok {
		i, ok := idx(rest, n.NumHosts())
		if !ok {
			return bad()
		}
		h := n.Hosts[i]
		return &fault.NodeHooks{
			ID:   int32(n.HostID(i)),
			Kind: fault.NodeHost,
			Engs: []*sim.Engine{n.engOf(n.DC(i))},
			Apply: []func(fault.NodeAction){func(act fault.NodeAction) {
				if act == fault.HostCrash {
					h.Crash()
				} else {
					h.Restart()
				}
			}},
		}, nil
	}
	swHooks := func(sw *fabric.Switch, id int32) *fault.NodeHooks {
		return &fault.NodeHooks{
			ID:   id,
			Kind: fault.NodeSwitch,
			Engs: []*sim.Engine{sw.Eng},
			Apply: []func(fault.NodeAction){func(act fault.NodeAction) {
				if act == fault.SwitchFail {
					sw.Fail()
				} else {
					sw.Recover()
				}
			}},
		}
	}
	switch {
	case strings.HasPrefix(name, "leaf"):
		i, ok := idx(name[len("leaf"):], len(n.Leaves))
		if !ok {
			return bad()
		}
		return swHooks(n.Leaves[i], int32(leafIDBase+i)), nil
	case strings.HasPrefix(name, "spine"):
		i, ok := idx(name[len("spine"):], len(n.Spines))
		if !ok {
			return bad()
		}
		return swHooks(n.Spines[i], int32(spineIDBase+i)), nil
	case strings.HasPrefix(name, "dci"):
		i, ok := idx(name[len("dci"):], len(n.DCIs))
		if !ok {
			return bad()
		}
		d := n.DCIs[i]
		nh := swHooks(d.Switch, int32(dciIDBase+i))
		lhIdx := n.P.SpinesPerDC
		if n.Dumbbell {
			lhIdx = 1
		}
		// The long-haul peer hook is scheduled on EVERY layout, not just
		// sharded ones: the digest folds the fired-event count, so the event
		// schedule must be layout-invariant (exactly as scripted link events
		// schedule one event per direction everywhere). On a single-engine
		// build Fail/Recover already cut/restore the peer end inline (the
		// link is not cross), so the hook fires as an idempotent no-op; on a
		// sharded build Fail skips the cross peer and this hook performs the
		// transition on the engine that owns it, at the same absolute time.
		if lh := d.Port(lhIdx); lh.Peer() != nil {
			peer := lh.Peer()
			nh.Engs = append(nh.Engs, peer.Eng)
			nh.Apply = append(nh.Apply, func(act fault.NodeAction) {
				peer.SetDown(act == fault.SwitchFail)
			})
		}
		return nh, nil
	}
	return bad()
}

// applyFaults installs P.Fault on the built network. A broken plan (unknown
// link, invalid rule) is a programming error on par with a routing hole, so
// it panics rather than limping along with a partially applied plan.
func (n *Network) applyFaults() {
	inj, err := fault.Apply(n.P.Fault, n.LinkByName, n.NodeHooksByName, n.Engines, n.P.Telemetry)
	if err != nil {
		panic(fmt.Sprintf("topo: bad fault plan: %v", err))
	}
	n.Faults = inj
	if inj == nil {
		return
	}
	// Reverse-path rules bind at host feedback ingress; a rule that selects
	// no host is as broken as an unknown link name. Each filter is bound to
	// the engine of the shard its host runs on.
	for i, h := range n.Hosts {
		if f := inj.FeedbackFilterFor(fmt.Sprintf("host%d", i), h.ID(), n.engOf(n.DC(i))); f != nil {
			h.SetFeedbackFilter(f)
		}
	}
	if err := inj.FeedbackResolved(); err != nil {
		panic(fmt.Sprintf("topo: bad fault plan: %v", err))
	}
}
