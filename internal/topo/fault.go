package topo

import (
	"fmt"
	"strconv"
	"strings"

	"mlcc/internal/fault"
	"mlcc/internal/link"
)

// LinkByName resolves a fault-plan link name to its two ports. Names:
//
//	longhaul      the DCI↔DCI long-haul fiber
//	host<i>       host i's NIC link to its leaf/ToR, e.g. "host0"
//	leaf<i>:<p>   port p of leaf switch i, e.g. "leaf0:4" (an uplink)
//	spine<i>:<p>  port p of spine switch i
//	dci<i>:<p>    port p of DCI switch i
//
// Switch-relative names exist so a plan can target any individual cable; the
// common cases are "longhaul" and "host<i>". A and B are the two endpoint
// ports; faults applied through the injector hit both directions.
func (n *Network) LinkByName(name string) (fault.Link, error) {
	bad := func() (fault.Link, error) {
		return fault.Link{}, fmt.Errorf("topo: unknown link %q", name)
	}
	pair := func(a *link.Port) (fault.Link, error) {
		if a == nil || a.Peer() == nil {
			return bad()
		}
		return fault.Link{Name: name, A: a, B: a.Peer()}, nil
	}

	if name == "longhaul" {
		lh := n.P.SpinesPerDC
		if n.Dumbbell {
			lh = 1
		}
		return pair(n.DCIs[0].Port(lh))
	}
	if rest, ok := strings.CutPrefix(name, "host"); ok && !strings.Contains(rest, ":") {
		i, err := strconv.Atoi(rest)
		if err != nil || i < 0 || i >= n.NumHosts() {
			return bad()
		}
		return pair(n.Hosts[i].Port())
	}
	sw, rest, ok := strings.Cut(name, ":")
	if !ok {
		return bad()
	}
	p, err := strconv.Atoi(rest)
	if err != nil || p < 0 {
		return bad()
	}
	port := func(idx string, count int, get func(i int) *link.Port) (fault.Link, error) {
		i, err := strconv.Atoi(idx)
		if err != nil || i < 0 || i >= count {
			return bad()
		}
		return pair(get(i))
	}
	switch {
	case strings.HasPrefix(sw, "leaf"):
		return port(sw[len("leaf"):], len(n.Leaves), func(i int) *link.Port {
			if p >= n.Leaves[i].NumPorts() {
				return nil
			}
			return n.Leaves[i].Port(p)
		})
	case strings.HasPrefix(sw, "spine"):
		return port(sw[len("spine"):], len(n.Spines), func(i int) *link.Port {
			if p >= n.Spines[i].NumPorts() {
				return nil
			}
			return n.Spines[i].Port(p)
		})
	case strings.HasPrefix(sw, "dci"):
		return port(sw[len("dci"):], len(n.DCIs), func(i int) *link.Port {
			if p >= n.DCIs[i].NumPorts() {
				return nil
			}
			return n.DCIs[i].Port(p)
		})
	}
	return bad()
}

// applyFaults installs P.Fault on the built network. A broken plan (unknown
// link, invalid rule) is a programming error on par with a routing hole, so
// it panics rather than limping along with a partially applied plan.
func (n *Network) applyFaults() {
	inj, err := fault.Apply(n.P.Fault, n.LinkByName, n.Engines, n.P.Telemetry)
	if err != nil {
		panic(fmt.Sprintf("topo: bad fault plan: %v", err))
	}
	n.Faults = inj
	if inj == nil {
		return
	}
	// Reverse-path rules bind at host feedback ingress; a rule that selects
	// no host is as broken as an unknown link name. Each filter is bound to
	// the engine of the shard its host runs on.
	for i, h := range n.Hosts {
		if f := inj.FeedbackFilterFor(fmt.Sprintf("host%d", i), h.ID(), n.engOf(n.DC(i))); f != nil {
			h.SetFeedbackFilter(f)
		}
	}
	if err := inj.FeedbackResolved(); err != nil {
		panic(fmt.Sprintf("topo: bad fault plan: %v", err))
	}
}
