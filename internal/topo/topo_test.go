package topo

import (
	"testing"

	"mlcc/internal/fault"
	"mlcc/internal/sim"
)

func testParams(alg string) Params {
	return DefaultParams().WithAlgorithm(alg)
}

func TestRTTFormulas(t *testing.T) {
	n := TwoDC(testParams(AlgMLCC))
	// Same rack: ~4.7 µs.
	rtt := n.BaseRTT(0, 1)
	if rtt < 4*sim.Microsecond || rtt > 6*sim.Microsecond {
		t.Errorf("same-rack RTT = %v", rtt)
	}
	// Different rack, same DC: ~25 µs.
	rtt = n.BaseRTT(0, 4)
	if rtt < 24*sim.Microsecond || rtt > 27*sim.Microsecond {
		t.Errorf("intra-DC RTT = %v", rtt)
	}
	// Cross DC: ~6.05 ms.
	rtt = n.CrossRTT()
	if rtt < 6*sim.Millisecond || rtt > 6200*sim.Microsecond {
		t.Errorf("cross-DC RTT = %v", rtt)
	}
	// Near-source loop: ~23 µs.
	if nr := n.NearRTT(0); nr < 20*sim.Microsecond || nr > 26*sim.Microsecond {
		t.Errorf("near RTT = %v", nr)
	}
}

// TestNodeNameFaultNamespace pins the negative node-ID convention: flight-
// recorder events emitted by the fault layer carry fault.FaultNodeID(idx)
// (the -1-idx namespace) and render as "fault:<link>", never aliasing a real
// host or switch; ids outside any injected link's range keep the generic
// fallback.
func TestNodeNameFaultNamespace(t *testing.T) {
	p := testParams(AlgMLCC)
	p.Fault = &fault.Plan{
		Seed: 1,
		Loss: []fault.LossRule{{Link: "longhaul", Prob: 0.5}},
	}
	n := TwoDC(p)
	if got := n.NodeName(fault.FaultNodeID(0)); got != "fault:longhaul" {
		t.Errorf("NodeName(FaultNodeID(0)) = %q, want %q", got, "fault:longhaul")
	}
	if got := n.NodeName(fault.FaultNodeID(5)); got != "node-6" {
		t.Errorf("NodeName(FaultNodeID(5)) = %q, want generic fallback %q", got, "node-6")
	}
	if got := n.NodeName(1); got != "host0" {
		t.Errorf("NodeName(1) = %q, want %q (positive ids untouched)", got, "host0")
	}
	// Without a plan there is no injector; negative ids must still be safe.
	bare := TwoDC(testParams(AlgMLCC))
	if got := bare.NodeName(-1); got != "node-1" {
		t.Errorf("NodeName(-1) without faults = %q, want %q", got, "node-1")
	}
}

func TestTopologyShape(t *testing.T) {
	n := TwoDC(testParams(AlgMLCC))
	if n.NumHosts() != 32 || n.HostsPerDC != 16 {
		t.Fatalf("hosts = %d/%d", n.NumHosts(), n.HostsPerDC)
	}
	if len(n.Leaves) != 8 || len(n.Spines) != 4 || len(n.DCIs) != 2 {
		t.Fatalf("switches = %d leaves %d spines %d DCIs", len(n.Leaves), len(n.Spines), len(n.DCIs))
	}
	if n.Rack(n.RackHost(5, 0)) != 4 {
		t.Fatal("rack numbering broken")
	}
	if !n.CrossDC(0, 16) || n.CrossDC(0, 15) {
		t.Fatal("DC split broken")
	}
	if n.P.DQM.RTTc != n.CrossRTT() || n.P.DQM.RTTd != n.FarRTT(0) {
		t.Fatal("DQM RTTs not filled from topology")
	}
}

// runSingleFlow transfers size bytes between two hosts and returns the FCT.
func runSingleFlow(t *testing.T, alg string, src, dst int, size int64) sim.Time {
	t.Helper()
	n := TwoDC(testParams(alg))
	f := n.AddFlow(src, dst, size, sim.Millisecond)
	n.Run(200 * sim.Millisecond)
	if !f.Done {
		t.Fatalf("%s: flow %d->%d (%dB) did not complete; rx=%d/%d",
			alg, src, dst, size, n.Hosts[dst].ReceivedBytes(f.Info.ID), size)
	}
	return f.FCT()
}

func TestSingleIntraFlowAllAlgorithms(t *testing.T) {
	const size = 1 << 20 // 1 MB
	ideal := sim.TxTime(size, 25*sim.Gbps)
	for _, alg := range Algorithms() {
		fct := runSingleFlow(t, alg, 0, 4, size)
		if fct < ideal {
			t.Errorf("%s: FCT %v below ideal %v", alg, fct, ideal)
		}
		if fct > 3*ideal {
			t.Errorf("%s: FCT %v exceeds 3x ideal %v — uncongested flow throttled", alg, fct, ideal)
		}
	}
}

func TestSingleCrossFlowAllAlgorithms(t *testing.T) {
	const size = 4 << 20                   // 4 MB
	ideal := sim.TxTime(size, 25*sim.Gbps) // 1.34 ms
	for _, alg := range Algorithms() {
		fct := runSingleFlow(t, alg, 0, 16, size)
		// Cross flows pay at least ~1 RTT_C of latency on top.
		if fct < ideal {
			t.Errorf("%s: cross FCT %v below ideal %v", alg, fct, ideal)
		}
		if fct > ideal+30*sim.Millisecond {
			t.Errorf("%s: cross FCT %v way beyond ideal %v", alg, fct, ideal)
		}
	}
}

func TestSameRackFlow(t *testing.T) {
	fct := runSingleFlow(t, AlgMLCC, 8, 9, 100<<10)
	if fct > sim.Millisecond {
		t.Errorf("same-rack 100KB FCT = %v", fct)
	}
}

func TestAllPairsReachability(t *testing.T) {
	// Small flows between representative pairs, all must complete.
	n := TwoDC(testParams(AlgMLCC))
	pairs := [][2]int{{0, 1}, {0, 5}, {0, 31}, {31, 0}, {16, 20}, {15, 16}, {7, 29}, {12, 3}}
	var flows []int
	for i, pr := range pairs {
		f := n.AddFlow(pr[0], pr[1], 20<<10, sim.Time(i)*100*sim.Microsecond)
		flows = append(flows, i)
		_ = f
	}
	n.Run(100 * sim.Millisecond)
	for _, f := range n.Table.All() {
		if !f.Done {
			t.Errorf("flow %d (%d->%d) incomplete", f.Info.ID, f.Info.Src, f.Info.Dst)
		}
	}
	_ = flows
}

func TestTwoFlowsShareHostLink(t *testing.T) {
	// Two senders to the same destination host: the 25G host link is the
	// bottleneck; both flows should finish in roughly 2x the solo time.
	n := TwoDC(testParams(AlgMLCC))
	const size = 2 << 20
	f1 := n.AddFlow(0, 4, size, sim.Millisecond)
	f2 := n.AddFlow(1, 4, size, sim.Millisecond)
	n.Run(100 * sim.Millisecond)
	if !f1.Done || !f2.Done {
		t.Fatal("flows incomplete")
	}
	solo := sim.TxTime(size, 25*sim.Gbps)
	for _, f := range []any{f1, f2} {
		_ = f
	}
	if f1.FCT() < solo || f2.FCT() < solo {
		t.Errorf("FCTs %v/%v below solo %v despite sharing", f1.FCT(), f2.FCT(), solo)
	}
	if f1.FCT() > 4*solo || f2.FCT() > 4*solo {
		t.Errorf("FCTs %v/%v too slow (solo %v)", f1.FCT(), f2.FCT(), solo)
	}
}

func TestDumbbellAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms() {
		p := DefaultParams().WithAlgorithm(alg)
		p.HostRate = 100 * sim.Gbps
		p.HostsPerLeaf = 2
		n := Dumbbell(p)
		if n.NumHosts() != 4 {
			t.Fatalf("dumbbell hosts = %d", n.NumHosts())
		}
		f := n.AddFlow(0, 2, 1<<20, sim.Millisecond)
		fl := n.AddFlow(1, 3, 1<<20, sim.Millisecond)
		n.Run(100 * sim.Millisecond)
		if !f.Done || !fl.Done {
			t.Errorf("%s: dumbbell flows incomplete (done=%v,%v)", alg, f.Done, fl.Done)
		}
	}
}

func TestMLCCCrossFlowUsesDCIMachinery(t *testing.T) {
	n := TwoDC(testParams(AlgMLCC))
	f := n.AddFlow(0, 16, 4<<20, sim.Millisecond)
	n.Run(100 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	if n.DCIs[0].SwitchINTSent == 0 {
		t.Error("sender-side DCI sent no Switch-INT feedback")
	}
	if n.DCIs[1].PFQFlows == 0 {
		t.Error("receiver-side DCI allocated no PFQ")
	}
	if n.DCIs[1].DQMUpdates == 0 {
		t.Error("DQM never updated")
	}
	if n.DCIs[1].ActivePFQs() != 0 {
		t.Errorf("PFQ not garbage-collected: %d live", n.DCIs[1].ActivePFQs())
	}
}

func TestMLCCIntraFlowSkipsDCI(t *testing.T) {
	n := TwoDC(testParams(AlgMLCC))
	f := n.AddFlow(0, 4, 1<<20, sim.Millisecond)
	n.Run(50 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	if n.DCIs[0].SwitchINTSent != 0 || n.DCIs[1].PFQFlows != 0 {
		t.Error("intra-DC flow touched DCI machinery")
	}
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultParams().WithAlgorithm("bogus")
}

func TestAblationVariantsRun(t *testing.T) {
	for _, alg := range AblationAlgorithms() {
		n := TwoDC(DefaultParams().WithAlgorithm(alg))
		f := n.AddFlow(0, 16, 2<<20, sim.Millisecond)
		n.Run(100 * sim.Millisecond)
		if !f.Done {
			t.Errorf("%s: cross flow incomplete", alg)
		}
		// Ablations still use the MLCC DCI machinery.
		if n.DCIs[1].PFQFlows == 0 {
			t.Errorf("%s: PFQ not used", alg)
		}
	}
}

func TestLongHaulDelayOverride(t *testing.T) {
	p := testParams(AlgMLCC)
	p.LongHaulDelay = sim.Millisecond
	n := TwoDC(p)
	rtt := n.CrossRTT()
	if rtt < 2*sim.Millisecond || rtt > 2100*sim.Microsecond {
		t.Fatalf("cross RTT with 1ms haul = %v", rtt)
	}
	if n.P.DQM.RTTc != rtt {
		t.Fatal("DQM RTTc not updated for the override")
	}
}

func TestPerHostBisection(t *testing.T) {
	p := testParams(AlgMLCC)
	n := TwoDC(p)
	// 4 hosts/leaf, 2×100G uplinks: share is 50G, capped at the 25G NIC.
	if got := n.PerHostBisection(); got != 25*sim.Gbps {
		t.Fatalf("bisection share = %v", got)
	}
	p.HostsPerLeaf = 32
	n2 := TwoDC(p)
	// 32 hosts/leaf: 200G/32 = 6.25G per host.
	if got := n2.PerHostBisection(); got != 6250*sim.Mbps {
		t.Fatalf("bisection share at 4:1 = %v", got)
	}
}

func TestMLCCDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		n := TwoDC(testParams(AlgMLCC))
		f := n.AddFlow(0, 20, 3<<20, sim.Millisecond)
		g := n.AddFlow(1, 20, 3<<20, sim.Millisecond)
		n.Run(120 * sim.Millisecond)
		if !f.Done || !g.Done {
			t.Fatal("flows incomplete")
		}
		return f.FCT() + g.FCT()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic FCTs: %v vs %v", a, b)
	}
}
