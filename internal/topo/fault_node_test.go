package topo

import (
	"bytes"
	"strings"
	"testing"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/guard"
	"mlcc/internal/host"
	"mlcc/internal/sim"
)

// nodeTestParams is the shared geometry for the node-fault tests: a small
// dumbbell (hosts 0,1 = DC 0; hosts 2,3 = DC 1) with a short long haul so
// RTO and guard windows stay in the low milliseconds.
func nodeTestParams(alg string) Params {
	p := DefaultParams().WithAlgorithm(alg)
	p.Seed = 1
	p.HostsPerLeaf = 2
	p.LongHaulDelay = 100 * sim.Microsecond
	return p
}

// TestHostCrashRestartResumes pins the go-back-N restart semantics: a host
// crashed mid-window parks its flow on the acked prefix and, after restart,
// rebuilds the send state from that checkpoint and finishes the transfer —
// no abort, no duplicate ledger entries, books closed.
func TestHostCrashRestartResumes(t *testing.T) {
	p := nodeTestParams(AlgMLCC)
	p.Audit = audit.New()
	p.Fault = &fault.Plan{Seed: 1, Nodes: []fault.NodeEvent{
		{At: sim.Millisecond, Node: "host0", Action: fault.HostCrash},
		{At: 2 * sim.Millisecond, Node: "host0", Action: fault.HostRestart},
	}}
	n := Dumbbell(p)
	f := n.AddFlow(0, 1, 8<<20, 500*sim.Microsecond)
	n.Run(60 * sim.Millisecond)

	h := n.Hosts[0]
	if h.Crashes != 1 || h.Restarts != 1 {
		t.Fatalf("host0 crash/restart counters = %d/%d, want 1/1", h.Crashes, h.Restarts)
	}
	if h.Crashed() || h.ParkedFlows() != 0 {
		t.Fatalf("host0 still crashed=%v with %d parked flows after restart", h.Crashed(), h.ParkedFlows())
	}
	if !f.Done || f.Aborted {
		t.Fatalf("flow done=%v aborted=%v after crash+restart, want resumed to completion", f.Done, f.Aborted)
	}
	if f.FinishAt <= 2*sim.Millisecond {
		t.Errorf("flow finished at %v, before the restart at 2ms — crash never bit", f.FinishAt)
	}
	if got := n.Hosts[1].ReceivedBytes(f.Info.ID); got != f.Info.Size {
		t.Errorf("receiver got %d/%d bytes", got, f.Info.Size)
	}
	if inj := n.Faults; inj.NodeCrashes() != 1 || inj.NodeRestarts() != 1 {
		t.Errorf("injector node counters = %d/%d, want 1/1", inj.NodeCrashes(), inj.NodeRestarts())
	}
	if probs := n.AuditProblems(); len(probs) != 0 {
		t.Errorf("conservation problems after crash+restart: %v", probs)
	}
}

// TestHostCrashParkedNoStall pins the progress-clock contract: a parked
// (crashed) flow contributes no outstanding bytes, so a blackout many times
// longer than the stall window must NOT trip the progress supervisor — the
// clock restarts when the rebuilt window reopens, and the transfer still
// completes.
func TestHostCrashParkedNoStall(t *testing.T) {
	p := nodeTestParams(AlgMLCC)
	p.Guard = &guard.Config{StallK: 4} // stall window ≈ 4×CrossRTT ≈ 0.9 ms
	p.Fault = &fault.Plan{Seed: 1, Nodes: []fault.NodeEvent{
		{At: sim.Millisecond, Node: "host0", Action: fault.HostCrash},
		{At: 21 * sim.Millisecond, Node: "host0", Action: fault.HostRestart},
	}}
	n := Dumbbell(p)
	n.Guard.SetOutput(new(bytes.Buffer))
	f := n.AddFlow(0, 1, 4<<20, 500*sim.Microsecond)
	n.Run(60 * sim.Millisecond)

	if n.Guard.Stalls != 0 {
		t.Errorf("guard counted %d stalls across a 20 ms parked blackout, want 0", n.Guard.Stalls)
	}
	if halted, reason := n.Halted(); halted {
		t.Errorf("run halted during a survivable crash: %s", reason)
	}
	if !f.Done || f.Aborted {
		t.Errorf("flow done=%v aborted=%v, want completed after restart", f.Done, f.Aborted)
	}
}

// TestSwitchFailRecoverAuditClean pins the switch-failure path end to end: the
// DCI drains its buffered frames into the ledger at Fail (so the books still
// close), go-back-N rides the blackout on RTO retransmissions, and the flow
// completes after Recover.
func TestSwitchFailRecoverAuditClean(t *testing.T) {
	// A Clos build under DCQCN: two 100G spine feeds funnel into the 100G
	// long haul and the rate controller is still ramping at 1.5 ms, so dci0
	// carries a multi-megabyte standing queue when the blackout lands and
	// Fail has real frames to fold into the ledger. (The dumbbell can never
	// queue at the DCI — one 100G in, one 100G out — and MLCC's near-source
	// loop would keep it drained anyway, which is the paper's point.)
	p := nodeTestParams(AlgDCQCN)
	p.Audit = audit.New()
	p.SpinesPerDC = 2
	p.LeavesPerDC = 2
	p.HostsPerLeaf = 4
	p.Fault = &fault.Plan{Seed: 1, Nodes: []fault.NodeEvent{
		{At: 1500 * sim.Microsecond, Node: "dci0", Action: fault.SwitchFail},
		{At: 5 * sim.Millisecond, Node: "dci0", Action: fault.SwitchRecover},
	}}
	n := TwoDC(p)
	half := n.NumHosts() / 2
	var crosses []*host.Flow
	for i := 0; i < 6; i++ {
		crosses = append(crosses, n.AddFlow(i, half+i, 4<<20,
			500*sim.Microsecond+sim.Time(i)*10*sim.Microsecond))
	}
	intra := n.AddFlow(half+6, half+7, 1<<20, sim.Millisecond)
	n.Run(100 * sim.Millisecond)

	d := n.DCIs[0]
	if d.Fails != 1 || d.Recovers != 1 || d.Failed() {
		t.Fatalf("dci0 fails/recovers/failed = %d/%d/%v, want 1/1/false", d.Fails, d.Recovers, d.Failed())
	}
	if d.Drained == 0 {
		t.Error("dci0 drained no frames at Fail — the blackout hit an empty switch, scenario too weak")
	}
	if inj := n.Faults; inj.SwitchFails() != 1 || inj.SwitchRecovers() != 1 {
		t.Errorf("injector switch counters = %d/%d, want 1/1", inj.SwitchFails(), inj.SwitchRecovers())
	}
	for i, c := range crosses {
		if !c.Done || c.Aborted {
			t.Errorf("cross flow %d done=%v aborted=%v, want ridden through on RTO", i, c.Done, c.Aborted)
		}
	}
	if !intra.Done {
		t.Errorf("DC-1 intra flow did not complete — a dci0 failure must not strand the far DC")
	}
	if n.Hosts[0].Retransmits == 0 {
		t.Error("no retransmissions across a 3 ms switch blackout — go-back-N never engaged")
	}
	if probs := n.AuditProblems(); len(probs) != 0 {
		t.Errorf("conservation problems after fail+drain+recover: %v", probs)
	}
}

// TestGuardStallHaltsRun pins the progress supervisor's teeth in-sim: a
// permanent DCI blackout with an unbounded retransmission budget freezes
// acked bytes while the window stays open, so the guard must dump, count one
// stall and halt the run long before its deadline.
func TestGuardStallHaltsRun(t *testing.T) {
	p := nodeTestParams(AlgMLCC)
	p.MaxRetrans = -1 // retry forever: nothing aborts, the run just goes nowhere
	p.RTOMin = 50 * sim.Millisecond
	p.RTOMax = 50 * sim.Millisecond // first rewind far beyond the stall window
	p.Guard = &guard.Config{StallK: 16} // ≈ 3.5 ms of silence at this geometry
	p.Fault = &fault.Plan{Seed: 1, Nodes: []fault.NodeEvent{
		{At: 2 * sim.Millisecond, Node: "dci0", Action: fault.SwitchFail},
	}}
	n := Dumbbell(p)
	n.Guard.SetOutput(new(bytes.Buffer))
	n.AddFlow(0, 2, 4<<20, 500*sim.Microsecond)
	n.Run(200 * sim.Millisecond)

	halted, reason := n.Halted()
	if !halted {
		t.Fatalf("run idled to its deadline (now=%v) instead of halting on the stall", n.Now())
	}
	if !strings.Contains(reason, "progress stalled") {
		t.Errorf("halt reason %q does not describe the stall", reason)
	}
	if n.Guard.Stalls != 1 {
		t.Errorf("guard counted %d stalls, want exactly 1", n.Guard.Stalls)
	}
	if n.Now() >= 50*sim.Millisecond {
		t.Errorf("halt landed at %v — after the first RTO rewind, not on the guard's clock", n.Now())
	}
}
