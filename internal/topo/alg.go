package topo

import (
	"fmt"
	"sort"

	"mlcc/internal/cc"
	"mlcc/internal/cc/dcqcn"
	"mlcc/internal/cc/hpcc"
	"mlcc/internal/cc/powertcp"
	"mlcc/internal/cc/timely"
	"mlcc/internal/core"
	"mlcc/internal/sim"
)

// Algorithm names accepted by WithAlgorithm.
const (
	AlgMLCC     = "mlcc"
	AlgDCQCN    = "dcqcn"
	AlgTimely   = "timely"
	AlgHPCC     = "hpcc"
	AlgPowerTCP = "powertcp"

	// MLCC ablations: each removes one of the paper's control loops so the
	// "ablation" experiment can attribute behaviour to individual loops.
	AlgMLCCNoNS  = "mlcc-nons"  // near-source loop disabled
	AlgMLCCNoDQM = "mlcc-nodqm" // DQM end-to-end rate ignored
)

// Algorithms lists the supported algorithm names, sorted.
func Algorithms() []string {
	names := []string{AlgMLCC, AlgDCQCN, AlgTimely, AlgHPCC, AlgPowerTCP}
	sort.Strings(names)
	return names
}

// AblationAlgorithms lists the MLCC ablation variants.
func AblationAlgorithms() []string {
	return []string{AlgMLCCNoNS, AlgMLCCNoDQM}
}

// WithAlgorithm returns a copy of p wired for the named congestion-control
// algorithm, including the per-algorithm switch features the paper assumes:
// WRED ECN marking for DCQCN, INT stamping for the INT-driven schemes, and
// the MLCC DCI behaviours (near-source reflection, PFQ, DQM) for MLCC.
func (p Params) WithAlgorithm(name string) Params {
	switch name {
	case AlgDCQCN:
		dp := dcqcn.DefaultParams()
		p.INTEnabled = false
		p.DCKmin, p.DCKmax = 100<<10, 400<<10
		p.DCIKmin, p.DCIKmax = 5<<20, 25<<20
		p.ECNPmax = 0.05 // gentle WRED slope, as in production DCQCN configs
		p.CNPInterval = dp.CNPInterval
		p.Alg = func(eng *sim.Engine) cc.Algorithm {
			return cc.Algorithm{Name: name, NewSender: dcqcn.New(eng, dp)}
		}
	case AlgTimely:
		p.INTEnabled = false
		p.DCKmax, p.DCIKmax = 0, 0
		p.CNPInterval = 0
		p.Alg = func(eng *sim.Engine) cc.Algorithm {
			return cc.Algorithm{Name: name, NewSender: timely.New(timely.DefaultParams())}
		}
	case AlgHPCC:
		p.INTEnabled = true
		p.DCKmax, p.DCIKmax = 0, 0
		p.CNPInterval = 0
		p.Alg = func(eng *sim.Engine) cc.Algorithm {
			return cc.Algorithm{Name: name, NewSender: hpcc.New(hpcc.DefaultParams())}
		}
	case AlgPowerTCP:
		p.INTEnabled = true
		p.DCKmax, p.DCIKmax = 0, 0
		p.CNPInterval = 0
		p.Alg = func(eng *sim.Engine) cc.Algorithm {
			return cc.Algorithm{Name: name, NewSender: powertcp.New(powertcp.DefaultParams())}
		}
	case AlgMLCC, AlgMLCCNoNS, AlgMLCCNoDQM:
		p.INTEnabled = true
		p.DCKmax, p.DCIKmax = 0, 0
		p.CNPInterval = 0
		mp := core.DefaultParams()
		mp.DQM = p.DQM
		mp.DisableNearSource = name == AlgMLCCNoNS
		mp.DisableDQM = name == AlgMLCCNoDQM
		p.Alg = func(eng *sim.Engine) cc.Algorithm {
			return cc.Algorithm{
				Name:        name,
				NewSender:   core.NewSender(mp),
				NewReceiver: core.NewReceiver(mp),
				UseMLCCDCI:  true,
			}
		}
	default:
		panic(fmt.Sprintf("topo: unknown algorithm %q (have %v)", name, Algorithms()))
	}
	return p
}
