// Package trace records simulation events for offline analysis: per-flow
// rate/progress samples and per-queue occupancy samples, exportable as CSV
// for plotting the paper's time-series figures. Tracing is opt-in and adds
// no overhead when unused.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"mlcc/internal/sim"
)

// Kind labels a traced sample stream.
type Kind uint8

// Trace kinds.
const (
	FlowRate  Kind = iota // bits/s
	FlowBytes             // cumulative payload bytes received
	QueueLen              // bytes
	RateLimit             // bits/s (e.g. R_credit, R̄_DQM)
	Counter               // unitless cumulative counter (PFC pauses, drops)
	Gauge                 // generic instantaneous value (metrics registry gauges)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FlowRate:
		return "flow_rate"
	case FlowBytes:
		return "flow_bytes"
	case QueueLen:
		return "queue_len"
	case RateLimit:
		return "rate_limit"
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Sample is one traced point.
type Sample struct {
	T sim.Time
	V float64
}

// Stream is one named series of samples.
type Stream struct {
	Name    string
	Kind    Kind
	Samples []Sample
}

// Add appends one point. Timestamps must be non-decreasing; appending out of
// order panics, because At's binary search and the CSV export both rely on
// sample order, and a time-travelling sample is always a bug in the caller
// (the same stance the engine takes on scheduling into the past).
func (s *Stream) Add(t sim.Time, v float64) {
	if n := len(s.Samples); n > 0 && t < s.Samples[n-1].T {
		panic(fmt.Sprintf("trace: stream %q: sample at %v before last sample %v", s.Name, t, s.Samples[n-1].T))
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
}

// Len reports the number of samples.
func (s *Stream) Len() int { return len(s.Samples) }

// At returns the most recent value at or before t (step interpolation), or
// 0 when no sample precedes t.
func (s *Stream) At(t sim.Time) float64 {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Samples[i-1].V
}

// Tracer collects streams for one simulation. It is safe for use from a
// single engine goroutine; Export may be called after the run from anywhere.
type Tracer struct {
	mu      sync.Mutex
	streams map[string]*Stream
	order   []string
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{streams: make(map[string]*Stream)}
}

// Stream returns (creating if needed) the named stream.
func (tr *Tracer) Stream(name string, kind Kind) *Stream {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if s, ok := tr.streams[name]; ok {
		return s
	}
	s := &Stream{Name: name, Kind: kind}
	tr.streams[name] = s
	tr.order = append(tr.order, name)
	return s
}

// Get returns the named stream, or nil.
func (tr *Tracer) Get(name string) *Stream {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.streams[name]
}

// Names lists stream names in creation order.
func (tr *Tracer) Names() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.order...)
}

// WriteCSV emits all streams in long form: stream,kind,time_ms,value.
func (tr *Tracer) WriteCSV(w io.Writer) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, err := fmt.Fprintln(w, "stream,kind,time_ms,value"); err != nil {
		return err
	}
	for _, name := range tr.order {
		s := tr.streams[name]
		for _, smp := range s.Samples {
			if _, err := fmt.Fprintf(w, "%s,%s,%.6f,%.6f\n", csvEscape(name), s.Kind, smp.T.Millis(), smp.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvEscape guards stream names containing commas or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
