package trace

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mlcc/internal/sim"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		FlowRate: "flow_rate", FlowBytes: "flow_bytes", QueueLen: "queue_len",
		RateLimit: "rate_limit", Counter: "counter", Gauge: "gauge", Kind(42): "kind(42)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d) = %q, want %q", k, got, s)
		}
	}
}

func TestStreamIdentity(t *testing.T) {
	tr := New()
	a := tr.Stream("q", QueueLen)
	b := tr.Stream("q", QueueLen)
	if a != b {
		t.Fatal("duplicate stream created")
	}
	if tr.Get("q") != a || tr.Get("missing") != nil {
		t.Fatal("Get broken")
	}
	tr.Stream("r", FlowRate)
	if names := tr.Names(); len(names) != 2 || names[0] != "q" || names[1] != "r" {
		t.Fatalf("Names = %v", names)
	}
}

func TestStreamAt(t *testing.T) {
	s := &Stream{Name: "x"}
	s.Add(sim.Millisecond, 10)
	s.Add(2*sim.Millisecond, 20)
	s.Add(3*sim.Millisecond, 30)
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 0},
		{sim.Millisecond, 10},
		{1500 * sim.Microsecond, 10},
		{2 * sim.Millisecond, 20},
		{10 * sim.Millisecond, 30},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	q := tr.Stream("dci,1", QueueLen) // comma needs escaping
	q.Add(sim.Millisecond, 1024)
	r := tr.Stream("flow1", FlowRate)
	r.Add(2*sim.Millisecond, 1e9)
	quoted := tr.Stream(`say "hi"`, Gauge) // quotes double inside quoted field
	quoted.Add(sim.Millisecond, 1)
	nl := tr.Stream("line\nbreak", Gauge) // newline forces quoting too
	nl.Add(sim.Millisecond, 2)

	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "stream,kind,time_ms,value\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, `"dci,1",queue_len,1.000000,1024.000000`) {
		t.Fatalf("escaped row missing: %q", out)
	}
	if !strings.Contains(out, "flow1,flow_rate,2.000000,1000000000.000000") {
		t.Fatalf("rate row missing: %q", out)
	}
	if !strings.Contains(out, `"say ""hi""",gauge`) {
		t.Fatalf("quote-escaped row missing: %q", out)
	}
	if !strings.Contains(out, "\"line\nbreak\",gauge") {
		t.Fatalf("newline-escaped row missing: %q", out)
	}
}

// TestStreamAddOrdering pins Add's contract: equal timestamps are fine,
// going backwards panics.
func TestStreamAddOrdering(t *testing.T) {
	s := &Stream{Name: "x"}
	s.Add(sim.Millisecond, 1)
	s.Add(sim.Millisecond, 2) // same timestamp allowed
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-order Add did not panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, `stream "x"`) {
			t.Fatalf("panic message = %v", r)
		}
	}()
	s.Add(sim.Millisecond-sim.Nanosecond, 3)
}

// Property: At is consistent with a linear scan for sorted inputs.
func TestStreamAtProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		ts := append([]uint16(nil), raw...)
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		s := &Stream{Name: "p"}
		for i, v := range ts {
			s.Add(sim.Time(v)*sim.Microsecond, float64(i))
		}
		at := sim.Time(probe) * sim.Microsecond
		got := s.At(at)
		want := 0.0
		for i, v := range ts {
			if sim.Time(v)*sim.Microsecond <= at {
				want = float64(i)
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
