// Package obs is the live observability server: an HTTP endpoint set served
// over an immutable-snapshot scheme so that readers never race the
// simulation. The simulator publishes a *Snapshot at quiescent points (shard
// barriers, sample boundaries, end of run); HTTP handlers load the latest
// snapshot with one atomic pointer read and serve entirely from it. Nothing
// the handlers touch is ever mutated after publish, so the server needs no
// locks and adds no cost to the hot path — an unattached or idle server is
// just a parked goroutine.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition of the registry snapshot
//	/manifest       run manifest(s) as JSON
//	/flight?last=N  flight-recorder tail in flight.log format
//	/trace?flow=K   Chrome trace_event JSON (flow 0 = all flows)
//	/healthz        liveness + snapshot epoch
//	/debug/pprof/*  standard net/http/pprof profiles of the simulator itself
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

// Snapshot is one immutable view of a simulation, published whole. Handlers
// treat every field as read-only; Publish hands ownership of the slices to
// the server, so callers must not retain or mutate them afterwards.
type Snapshot struct {
	// Epoch increments on every publish — /healthz exposes it so a poller
	// can tell a live run from a stalled one.
	Epoch uint64

	Now     sim.Time
	Fired   uint64
	Pending int
	Running bool
	Shards  int

	// Stalled and StallReason surface a guard-plane halt: the run stopped
	// making progress and was gracefully aborted (see internal/guard).
	// /healthz exposes the flag so a poller distinguishes "idle between
	// publishes" from "diagnosed stall".
	Stalled     bool
	StallReason string

	// Points is the registry snapshot backing /metrics.
	Points []metrics.Point

	// Events, FlightTotal and FlightCap back /flight and /trace: the
	// shard-merged flight-recorder stream plus its accounting.
	Events      []metrics.Event
	FlightTotal uint64
	FlightCap   int

	// Manifests back /manifest (one per completed run; figure tools
	// accumulate several).
	Manifests []*metrics.Manifest

	// Namer maps flight-recorder node ids to topology names in /trace.
	Namer func(node int32) string
}

// Server serves observability endpoints from the latest published Snapshot.
// The zero value is not usable; call NewServer.
type Server struct {
	mux   *http.ServeMux
	snap  atomic.Pointer[Snapshot]
	epoch atomic.Uint64

	srv *http.Server
	ln  net.Listener
}

// NewServer returns a server with all endpoints registered but no snapshot
// yet: data endpoints answer 503 until the first Publish.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/manifest", s.handleManifest)
	s.mux.HandleFunc("/flight", s.handleFlight)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the endpoint mux (for httptest or embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Publish installs snap as the served view, stamping its epoch. The caller
// must not touch snap or anything it references afterwards.
func (s *Server) Publish(snap *Snapshot) {
	if s == nil {
		return
	}
	snap.Epoch = s.epoch.Add(1)
	s.snap.Store(snap)
}

// PublishNetwork snapshots a built network and publishes it. It reads the
// telemetry planes and the network clock, so it must only run with the
// simulation quiescent — between Run calls, or from an OnQuiescent hook
// (which is exactly what Attach arranges). Nil-safe on s and on a network
// without telemetry.
func (s *Server) PublishNetwork(n *topo.Network, running bool) {
	if s == nil {
		return
	}
	tel := n.P.Telemetry
	halted, reason := n.Halted()
	snap := &Snapshot{
		Now:         n.Now(),
		Fired:       n.Fired(),
		Pending:     n.PendingEvents(),
		Running:     running,
		Shards:      n.ShardCount(),
		Stalled:     halted,
		StallReason: reason,
		Points:      tel.Registry().Snapshot(),
		Events:      tel.FlightEvents(),
		FlightTotal: tel.FlightRecorded(),
		FlightCap:   tel.Recorder().Cap(),
		Namer:       n.NodeName,
	}
	if tel != nil && tel.Manifest != nil {
		snap.Manifests = []*metrics.Manifest{tel.Manifest.Clone()}
	}
	s.Publish(snap)
}

// Attach arranges for the server to republish the network every sim-time
// interval while n.Run executes, plus the natural publishes the caller makes
// around the run. The hook fires at quiescent boundaries only, so readers
// and engines never share a moment. Nil-safe on s.
func (s *Server) Attach(n *topo.Network, every sim.Time) {
	if s == nil {
		return
	}
	n.OnQuiescent(every, func(sim.Time) { s.PublishNetwork(n, true) })
}

// AddManifest appends a completed run's manifest to the served set
// (copy-on-write over the current snapshot). Figure tools use it to expose
// each run as it finishes without owning a network.
func (s *Server) AddManifest(m *metrics.Manifest) {
	if s == nil || m == nil {
		return
	}
	next := &Snapshot{}
	if cur := s.snap.Load(); cur != nil {
		*next = *cur
	}
	mans := make([]*metrics.Manifest, 0, len(next.Manifests)+1)
	mans = append(mans, next.Manifests...)
	next.Manifests = append(mans, m.Clone())
	s.Publish(next)
}

// Serve starts listening on addr (":0" picks a free port) and serves in a
// background goroutine. It returns the bound address. Nil-safe: a nil server
// returns an error.
func (s *Server) Serve(addr string) (string, error) {
	if s == nil {
		return "", fmt.Errorf("obs: Serve on nil server")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close is expected
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Serve).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers. No-op before Serve.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// load returns the current snapshot, or (nil, false) after writing a 503
// when nothing has been published yet.
func (s *Server) load(w http.ResponseWriter) (*Snapshot, bool) {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return nil, false
	}
	return snap, true
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "mlcc observability server\n\n"+
		"/metrics        Prometheus text metrics\n"+
		"/manifest       run manifest(s), JSON\n"+
		"/flight?last=N  flight-recorder tail\n"+
		"/trace?flow=K   Chrome trace_event JSON (omit or 0 = all flows)\n"+
		"/healthz        liveness + snapshot epoch\n"+
		"/debug/pprof/   simulator profiles\n")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		fmt.Fprintln(w, "ok epoch=0")
		return
	}
	fmt.Fprintf(w, "ok epoch=%d sim_ms=%.3f events=%d running=%v shards=%d stalled=%v\n",
		snap.Epoch, snap.Now.Millis(), snap.Fired, snap.Running, snap.Shards, snap.Stalled)
}

// promName maps a dotted registry name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; every other byte becomes '_'.
func promName(name string) string {
	b := []byte(name)
	for i, c := range b {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.load(w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	meta := []metrics.Point{
		{Name: "mlcc_sim_now_seconds", Value: snap.Now.Seconds(), Kind: metrics.PointGauge},
		{Name: "mlcc_sim_events_fired", Value: float64(snap.Fired), Kind: metrics.PointCounter},
		{Name: "mlcc_sim_events_pending", Value: float64(snap.Pending), Kind: metrics.PointGauge},
		{Name: "mlcc_sim_running", Value: boolVal(snap.Running), Kind: metrics.PointGauge},
		{Name: "mlcc_sim_shards", Value: float64(snap.Shards), Kind: metrics.PointGauge},
		{Name: "mlcc_sim_stalled", Value: boolVal(snap.Stalled), Kind: metrics.PointGauge},
		{Name: "mlcc_flight_recorded_total", Value: float64(snap.FlightTotal), Kind: metrics.PointCounter},
		{Name: "mlcc_obs_snapshot_epoch", Value: float64(snap.Epoch), Kind: metrics.PointCounter},
	}
	for _, p := range append(meta, snap.Points...) {
		name := promName(p.Name)
		fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
			name, p.Kind, name, strconv.FormatFloat(p.Value, 'g', -1, 64))
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.load(w)
	if !ok {
		return
	}
	if len(snap.Manifests) == 0 {
		http.Error(w, "no manifest in snapshot", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(snap.Manifests) == 1 {
		snap.Manifests[0].WriteJSON(w) //nolint:errcheck // best-effort HTTP write
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap.Manifests) //nolint:errcheck // best-effort HTTP write
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.load(w)
	if !ok {
		return
	}
	events := snap.Events
	if q := r.URL.Query().Get("last"); q != "" {
		last, err := strconv.Atoi(q)
		if err != nil || last < 0 {
			http.Error(w, "last must be a non-negative integer", http.StatusBadRequest)
			return
		}
		if last < len(events) {
			events = events[len(events)-last:]
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	metrics.DumpEvents(w, events, snap.FlightTotal, snap.FlightCap) //nolint:errcheck
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.load(w)
	if !ok {
		return
	}
	var flow int64
	if q := r.URL.Query().Get("flow"); q != "" {
		var err error
		flow, err = strconv.ParseInt(q, 10, 32)
		if err != nil || flow < 0 {
			http.Error(w, "flow must be a non-negative integer", http.StatusBadRequest)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	metrics.WriteTraceJSON(w, snap.Events, int32(flow), snap.Namer) //nolint:errcheck
}
