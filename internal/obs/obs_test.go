package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mlcc/internal/exp"
	"mlcc/internal/metrics"
	"mlcc/internal/obs"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// liveNetwork builds a sharded dumbbell with every telemetry plane on and a
// small websearch workload scheduled, ready to Run.
func liveNetwork(t *testing.T, shards int) (*topo.Network, *metrics.Telemetry) {
	t.Helper()
	tel := metrics.New(metrics.Options{
		Metrics:            true,
		FlightRecorderSize: 2048,
		SampleInterval:     100 * sim.Microsecond,
		SampleAll:          true,
		PerFlow:            true,
	})
	tel.Manifest = metrics.NewManifest("obs_test")
	p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
	p.Seed = 1
	p.HostsPerLeaf = 2
	p.Shards = shards
	p.Telemetry = tel
	n := topo.Dumbbell(p)
	if got := n.ShardCount(); got != shards {
		t.Fatalf("ShardCount = %d, want %d (fallback: %v)", got, shards, p.ShardFallback())
	}
	flows, err := workload.Generate(workload.Spec{
		CDF:       workload.Websearch(),
		IntraLoad: 0.4,
		CrossLoad: 0.2,
		HostRate:  n.P.HostRate,
		IntraRate: n.PerHostBisection(),
		CrossRate: n.P.FabricRate,
		Hosts:     n.NumHosts(),
		Duration:  sim.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range flows {
		n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
	}
	return n, tel
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestEndpointsLiveRun drives every endpoint against a sharded simulation:
// mid-run through quiescent-hook publishes, then again after the final
// publish. The mid-run reads happen from inside an OnQuiescent hook — the
// exact context Attach serves from — so a data race here is a real one.
func TestEndpointsLiveRun(t *testing.T) {
	n, tel := liveNetwork(t, 2)
	s := obs.NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any publish: data endpoints must refuse, liveness must not.
	if code, _ := get(t, ts, "/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("pre-publish /metrics = %d, want 503", code)
	}
	if code, body := get(t, ts, "/healthz"); code != http.StatusOK || !strings.Contains(body, "epoch=0") {
		t.Errorf("pre-publish /healthz = %d %q, want 200 epoch=0", code, body)
	}

	s.Attach(n, 200*sim.Microsecond)
	midChecks := 0
	n.OnQuiescent(200*sim.Microsecond, func(sim.Time) {
		// Registered after Attach, so a fresh snapshot is already published.
		code, body := get(t, ts, "/metrics")
		if code != http.StatusOK || !strings.Contains(body, "mlcc_sim_running 1") {
			t.Fatalf("mid-run /metrics = %d %q", code, body)
		}
		if code, _ := get(t, ts, "/flight?last=5"); code != http.StatusOK {
			t.Fatalf("mid-run /flight = %d", code)
		}
		midChecks++
	})

	tel.StartSampling(4 * sim.Millisecond)
	n.Run(4 * sim.Millisecond)
	s.PublishNetwork(n, false)

	if midChecks == 0 {
		t.Fatal("no mid-run endpoint checks ran")
	}

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "running=false") || !strings.Contains(body, "shards=2") {
		t.Errorf("/healthz = %d %q, want running=false shards=2", code, body)
	}

	code, body = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE mlcc_sim_events_fired counter",
		"mlcc_sim_running 0",
		"# TYPE host_h0_tx_bytes counter", // dotted name sanitized
		"mlcc_flight_recorded_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "host.h0") {
		t.Error("/metrics leaked unsanitized dotted name")
	}

	code, body = get(t, ts, "/manifest")
	if code != http.StatusOK {
		t.Fatalf("/manifest = %d", code)
	}
	var man map[string]any
	if err := json.Unmarshal([]byte(body), &man); err != nil {
		t.Fatalf("/manifest not JSON: %v", err)
	}
	if man["tool"] != "obs_test" {
		t.Errorf("/manifest tool = %v, want obs_test", man["tool"])
	}

	code, body = get(t, ts, "/flight?last=10")
	if code != http.StatusOK {
		t.Fatalf("/flight = %d", code)
	}
	if lines := strings.Count(body, "\n"); lines > 12 {
		t.Errorf("/flight?last=10 returned %d lines, want tail only", lines)
	}
	if !strings.Contains(body, "flight recorder:") {
		t.Errorf("/flight missing header: %q", body)
	}

	// Pick a flow still present in the ring from the unfiltered trace, then
	// check the filtered trace keeps it and drops everything else.
	code, body = get(t, ts, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	flow := 0.0
	for _, ev := range tr.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok && ev["ph"] != "M" && pid > 0 {
			flow = pid
			break
		}
	}
	if flow == 0 {
		t.Fatal("/trace has no flow events")
	}
	code, body = get(t, ts, fmt.Sprintf("/trace?flow=%.0f", flow))
	if code != http.StatusOK {
		t.Fatalf("/trace?flow=%.0f = %d", flow, code)
	}
	tr.TraceEvents = nil
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace?flow not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Errorf("/trace?flow=%.0f has no events", flow)
	}
	for _, ev := range tr.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok && ev["ph"] != "M" && pid != flow {
			t.Errorf("/trace?flow=%.0f leaked flow %v", flow, pid)
		}
	}

	if code, _ := get(t, ts, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, body := get(t, ts, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}

	// Parameter validation.
	if code, _ := get(t, ts, "/flight?last=x"); code != http.StatusBadRequest {
		t.Errorf("/flight?last=x = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/trace?flow=-1"); code != http.StatusBadRequest {
		t.Errorf("/trace?flow=-1 = %d, want 400", code)
	}
	if code, _ := get(t, ts, "/nosuch"); code != http.StatusNotFound {
		t.Errorf("/nosuch = %d, want 404", code)
	}
}

// TestServeClose exercises the real listener path: Serve on a free port,
// fetch /healthz over TCP, Close, and confirm the port is released.
func TestServeClose(t *testing.T) {
	s := obs.NewServer()
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := s.Addr(); got != addr {
		t.Errorf("Addr = %q, want %q", got, addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("GET after Close succeeded, want connection error")
	}
}

// TestAddManifest checks the copy-on-write manifest accumulation mlccfig
// uses: one manifest serves as a JSON object, several as a JSON array.
func TestAddManifest(t *testing.T) {
	s := obs.NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.Publish(&obs.Snapshot{})
	if code, _ := get(t, ts, "/manifest"); code != http.StatusNotFound {
		t.Errorf("empty /manifest = %d, want 404", code)
	}

	m1 := metrics.NewManifest("fig1")
	s.AddManifest(m1)
	m1.Tool = "mutated-after-publish" // must not affect the served clone
	code, body := get(t, ts, "/manifest")
	if code != http.StatusOK {
		t.Fatalf("/manifest = %d", code)
	}
	var one map[string]any
	if err := json.Unmarshal([]byte(body), &one); err != nil || one["tool"] != "fig1" {
		t.Errorf("/manifest = %q err=%v, want single object tool=fig1", body, err)
	}

	s.AddManifest(metrics.NewManifest("fig2"))
	code, body = get(t, ts, "/manifest")
	if code != http.StatusOK {
		t.Fatalf("/manifest = %d", code)
	}
	var many []map[string]any
	if err := json.Unmarshal([]byte(body), &many); err != nil || len(many) != 2 {
		t.Errorf("/manifest = %q err=%v, want array of 2", body, err)
	}
}

// TestPublishRace hammers Publish against concurrent handler reads; run
// under -race this pins the snapshot-swap scheme (it is the `make check`
// race gate for this package).
func TestPublishRace(t *testing.T) {
	s := obs.NewServer()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Publish(&obs.Snapshot{
				Fired:  uint64(i),
				Points: []metrics.Point{{Name: "sim.x", Value: float64(i), Kind: metrics.PointCounter}},
			})
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				rec = httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
			}
		}()
	}
	wg.Wait()
}

// TestDigestObsInvariant pins the tentpole guarantee end to end: attaching
// the observability server — with every telemetry plane active, publishing
// every 200 µs, at shards=1 and shards=2 — leaves the determinism digest
// byte-identical to a bare telemetry-off single-engine run.
func TestDigestObsInvariant(t *testing.T) {
	algs := []string{"mlcc"}
	if !testing.Short() {
		algs = append(algs, "dcqcn")
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			bare := exp.DeterminismDigest(alg, 1)
			for _, shards := range []int{1, 2} {
				tel := metrics.New(metrics.Options{
					Metrics:            true,
					FlightRecorderSize: 4096,
					SampleInterval:     100 * sim.Microsecond,
					SampleAll:          true,
					PerFlow:            true,
				})
				s := obs.NewServer()
				got := exp.DeterminismDigestPrep(alg, 1, shards, false, tel, func(n *topo.Network) {
					s.Attach(n, 200*sim.Microsecond)
					s.PublishNetwork(n, true)
				})
				if got != bare {
					t.Errorf("digest(%s, shards=%d, obs attached) = %#016x, want bare %#016x",
						alg, shards, got, bare)
				}
			}
		})
	}
}
