// Package chaos turns the fault plane into a soak harness: a seeded random
// generator produces valid-by-construction fault plans over a topology's
// named links and hosts, and a soak runner sweeps (algorithm × topology ×
// shards ∈ {1, 2} × plan seeds), gating every cell on the invariants the
// simulator promises under arbitrary faults — clean conservation books,
// non-negative injector counters, abort/watchdog bookkeeping that adds up,
// and byte-identical results between single-engine and sharded execution.
//
// Determinism is the point: a cell is fully named by (algorithm, topology,
// seed), so any failure the soak finds is reproduced by re-running that one
// cell, and the harness prints the exact seed plus the generated plan's JSON
// (feedable to mlccsim -fault-plan) on every failure.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mlcc/internal/fault"
	"mlcc/internal/sim"
)

// Topo names a topology the generator can target and enumerates the fault
// surface a plan may touch: resolvable link names (Links[0] is always the
// long-haul fiber) and the host count bounding "host<i>" feedback selectors.
// The soak runner builds the matching network from the same descriptor, so a
// generated plan always resolves.
// Nodes enumerates the whole-device fault surface: names resolvable by
// topo.NodeHooksByName ("host<i>" crash/restart targets, "leaf<i>" /
// "spine<i>" / "dci<i>" failure/recovery targets).
type Topo struct {
	Name     string
	Dumbbell bool
	Hosts    int
	Links    []string
	Nodes    []string
}

// DumbbellTopo describes the §4.6 testbed dumbbell at soak scale: two hosts
// per side, so four host links, one ToR uplink per side (port index ==
// HostsPerLeaf) and the long-haul fiber.
func DumbbellTopo() Topo {
	return Topo{
		Name:     "dumbbell",
		Dumbbell: true,
		Hosts:    4,
		Links: []string{
			"longhaul",
			"host0", "host1", "host2", "host3",
			"leaf0:2", "leaf1:2",
		},
		Nodes: []string{
			"host0", "host1", "host2", "host3",
			"leaf0", "leaf1", "dci0", "dci1",
		},
	}
}

// TwoDCTopo describes a scaled-down spine-leaf two-DC fabric (2 spines, 2
// leaves, 2 hosts per leaf per DC → 8 hosts). Leaf uplink ports occupy
// [HostsPerLeaf, HostsPerLeaf+SpinesPerDC), i.e. ports 2 and 3.
func TwoDCTopo() Topo {
	t := Topo{
		Name:  "twodc",
		Hosts: 8,
		Links: []string{"longhaul"},
	}
	for i := 0; i < t.Hosts; i++ {
		t.Links = append(t.Links, fmt.Sprintf("host%d", i))
		t.Nodes = append(t.Nodes, fmt.Sprintf("host%d", i))
	}
	for leaf := 0; leaf < 4; leaf++ {
		for port := 2; port < 4; port++ {
			t.Links = append(t.Links, fmt.Sprintf("leaf%d:%d", leaf, port))
		}
		t.Nodes = append(t.Nodes, fmt.Sprintf("leaf%d", leaf))
	}
	for spine := 0; spine < 4; spine++ {
		t.Nodes = append(t.Nodes, fmt.Sprintf("spine%d", spine))
	}
	t.Nodes = append(t.Nodes, "dci0", "dci1")
	return t
}

// Topos returns the soak topology set.
func Topos() []Topo { return []Topo{DumbbellTopo(), TwoDCTopo()} }

// nameSalt decorrelates plans for the same seed across topologies.
func nameSalt(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h
}

// us converts a whole microsecond count to simulation time. The generator
// works exclusively on the microsecond grid so plans survive the JSON
// round-trip (whose schema is microseconds) bit for bit.
func us(x int64) sim.Time { return sim.Time(x) * sim.Microsecond }

// GeneratePlan derives a fault plan from (topology, seed, horizon),
// deterministically: the same inputs always yield the same plan. Plans are
// valid by construction — every link name resolves on tp's network, every
// host selector is in range, windows are well-formed, and per-link event
// sequences alternate sensibly (a blackout is always paired with a recovery,
// a degradation with a restore) so the network is healthy again before the
// run's drain. Event times are biased toward the long-haul fiber and the
// first two thirds of the horizon; loss and feedback windows always close
// before the horizon so every cell can finish its flows.
func GeneratePlan(tp Topo, seed int64, horizon sim.Time) *fault.Plan {
	if horizon < sim.Millisecond {
		horizon = sim.Millisecond
	}
	H := int64(horizon / sim.Microsecond) // whole µs, ≥ 1000
	rng := rand.New(rand.NewSource(seed ^ nameSalt(tp.Name)))
	p := &fault.Plan{Seed: seed}

	pick := func() string {
		if rng.Float64() < 0.6 {
			return tp.Links[0] // long-haul bias: the interesting failure domain
		}
		return tp.Links[rng.Intn(len(tp.Links))]
	}

	// Scripted event groups. A per-link cursor serializes groups that land
	// on the same link, so its schedule alternates properly (down→up,
	// degrade→restore) instead of, say, downing a link twice.
	cursor := map[string]int64{}
	for g, groups := 0, 1+rng.Intn(3); g < groups; g++ {
		link := pick()
		at := cursor[link] + H/10 + rng.Int63n(H/2)
		hold := 1 + rng.Int63n(H/8)
		switch rng.Intn(3) {
		case 0: // blackout + recovery
			p.Events = append(p.Events,
				fault.Event{At: us(at), Link: link, Action: fault.LinkDown},
				fault.Event{At: us(at + hold), Link: link, Action: fault.LinkUp})
		case 1: // degradation + restore
			p.Events = append(p.Events,
				fault.Event{
					At: us(at), Link: link, Action: fault.Degrade,
					RateFactor: 0.25 + 0.7*rng.Float64(),
					ExtraDelay: us(rng.Int63n(201)),
					Jitter:     us(rng.Int63n(21)),
				},
				fault.Event{At: us(at + hold), Link: link, Action: fault.Restore})
		default: // flap burst: two short outages back to back
			half := (hold + 1) / 2
			p.Events = append(p.Events,
				fault.Event{At: us(at), Link: link, Action: fault.LinkDown},
				fault.Event{At: us(at + half), Link: link, Action: fault.LinkUp},
				fault.Event{At: us(at + 2*half), Link: link, Action: fault.LinkDown},
				fault.Event{At: us(at + 3*half), Link: link, Action: fault.LinkUp})
			hold = 3 * half
		}
		cursor[link] = at + hold + 1
	}

	// Node-fault groups: whole-device outages, always paired with recovery
	// inside the horizon so the drain starts on a healthy topology (the soak
	// pins "no node still down" as an invariant). Hosts crash and restart —
	// in-flight transfers park on the acked prefix and resume — and switches
	// fail and recover, draining their buffers to the ledger. A per-node
	// cursor serializes groups landing on the same device.
	ncursor := map[string]int64{}
	for g, groups := 0, rng.Intn(3); g < groups && len(tp.Nodes) > 0; g++ {
		node := tp.Nodes[rng.Intn(len(tp.Nodes))]
		at := ncursor[node] + H/10 + rng.Int63n(H/2)
		hold := 1 + rng.Int63n(H/8)
		down, up := fault.SwitchFail, fault.SwitchRecover
		if strings.HasPrefix(node, "host") {
			down, up = fault.HostCrash, fault.HostRestart
		}
		p.Nodes = append(p.Nodes,
			fault.NodeEvent{At: us(at), Node: node, Action: down},
			fault.NodeEvent{At: us(at + hold), Node: node, Action: up})
		ncursor[node] = at + hold + 1
	}

	// Bernoulli loss rules: small probabilities (heavy loss is what the
	// scripted blackouts are for), windowed inside the horizon.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		start := rng.Int63n(H / 2)
		p.Loss = append(p.Loss, fault.LossRule{
			Link:  pick(),
			Prob:  math.Pow(10, -1-3*rng.Float64()), // 1e-4 .. 1e-1
			Start: us(start),
			End:   us(start + 1 + rng.Int63n(H-start)),
		})
	}

	// Feedback-plane rules: thinning, delay/jitter and INT corruption on
	// "*" or a single in-range host; occasionally a short total blackout
	// (Drop == 1), the watchdog's scenario.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		r := fault.FeedbackRule{
			Host:    "*",
			Kinds:   fault.FBKind(rng.Intn(int(fault.FBAllKinds) + 1)),
			Drop:    0.5 * rng.Float64(),
			Corrupt: 0.5 * rng.Float64(),
			Delay:   us(rng.Int63n(51)),
			Jitter:  us(rng.Int63n(21)),
			Modes:   fault.CorruptMode(rng.Intn(int(fault.CorruptAllModes) + 1)),
		}
		if rng.Float64() < 0.5 {
			r.Host = fmt.Sprintf("host%d", rng.Intn(tp.Hosts))
		}
		start := rng.Int63n(H / 2)
		r.Start = us(start)
		r.End = us(start + 1 + rng.Int63n(H-start))
		if rng.Float64() < 0.25 {
			r.Drop = 1 // total blackout — keep it short enough to recover from
			r.End = us(start + 1 + rng.Int63n(H/8))
		}
		p.Feedback = append(p.Feedback, r)
	}
	return p
}
