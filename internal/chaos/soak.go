package chaos

import (
	"fmt"
	"strings"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/host"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

// Soak cell geometry. The plan horizon bounds where generated faults land;
// the run window leaves ample drain time after the last fault heals.
const (
	planHorizon = 20 * sim.Millisecond
	runWindow   = 300 * sim.Millisecond
)

// Cell names one soak run completely: the congestion-control algorithm, the
// topology descriptor, and the plan seed. RunCell(c) is a pure function of
// the cell, so a failing cell reported by the soak reproduces by itself.
type Cell struct {
	Alg  string
	Topo Topo
	Seed int64
}

func (c Cell) String() string {
	return fmt.Sprintf("alg=%s topo=%s seed=%d", c.Alg, c.Topo.Name, c.Seed)
}

// Result carries one cell's verdict. Problems is empty when every invariant
// held; Digests records the (shards=1, shards=2) run fingerprints, whose
// equality is itself one of the invariants.
type Result struct {
	Plan     *fault.Plan
	Digests  [2]uint64
	Problems []string
}

// Repro renders the failure reproduction recipe: the cell coordinates and
// the generated plan's JSON, directly feedable to mlccsim -fault-plan.
func (r *Result) Repro(c Cell) string {
	return fmt.Sprintf("repro: %s plan:\n%s", c, PlanJSON(r.Plan))
}

// PlanJSON renders a plan via the canonical JSON encoder.
func PlanJSON(p *fault.Plan) string {
	var b strings.Builder
	if err := fault.WritePlan(&b, p); err != nil {
		return fmt.Sprintf("<plan unencodable: %v>", err)
	}
	return b.String()
}

// runOutcome is the digestible state of one build+run at a fixed shard count.
type runOutcome struct {
	digest   uint64
	problems []string
}

// RunCell generates the cell's plan, runs it at shards=1 and shards=2, and
// checks every soak invariant:
//
//   - the sharded build actually runs on two engines (no silent fallback),
//   - the conservation audit closes clean,
//   - injector counters are non-negative and internally consistent,
//   - flow/host abort and watchdog bookkeeping adds up,
//   - and the two runs produce byte-identical digests.
func RunCell(c Cell) *Result {
	plan := GeneratePlan(c.Topo, c.Seed, planHorizon)
	r := &Result{Plan: plan}
	for i, shards := range []int{1, 2} {
		o := runCellShards(c, plan, shards)
		r.Digests[i] = o.digest
		for _, p := range o.problems {
			r.Problems = append(r.Problems, fmt.Sprintf("[shards=%d] %s", shards, p))
		}
	}
	if r.Digests[0] != r.Digests[1] {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"shard divergence: digest %#016x (shards=1) != %#016x (shards=2)",
			r.Digests[0], r.Digests[1]))
	}
	return r
}

func runCellShards(c Cell, plan *fault.Plan, shards int) runOutcome {
	p := topo.DefaultParams().WithAlgorithm(c.Alg)
	p.Seed = 1
	p.LongHaulDelay = 500 * sim.Microsecond
	p.HostsPerLeaf = 2
	p.Shards = shards
	p.Audit = audit.New()
	p.Fault = plan
	if plan.HasFeedback() {
		// Feedback attacks without the watchdog silently starve; arm the
		// default exactly as mlccsim does for -fb-* flags.
		p.FBWatchdogK = host.DefaultWatchdogK
	}
	var n *topo.Network
	if c.Topo.Dumbbell {
		n = topo.Dumbbell(p)
	} else {
		p.SpinesPerDC = 2
		p.LeavesPerDC = 2
		n = topo.TwoDC(p)
	}
	addFlows(n)
	n.Run(runWindow)

	var probs []string
	bad := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	if shards > 1 && n.ShardCount() != shards {
		bad("requested %d shards but ran on %d (silent fallback)", shards, n.ShardCount())
	}
	for _, p := range n.AuditProblems() {
		bad("conservation violation: %s", p)
	}

	inj := n.Faults
	counters := []struct {
		name string
		v    int64
	}{
		{"loss drops", inj.LossDrops()},
		{"down drops", inj.DownDrops()},
		{"data drops", inj.DataDrops()},
		{"down events", inj.DownEvents()},
		{"degrade events", inj.DegradeEvents()},
		{"total drops", inj.TotalDrops()},
		{"feedback drops", inj.FeedbackDropped()},
		{"feedback delays", inj.FeedbackDelayed()},
		{"feedback corruptions", inj.FeedbackCorrupted()},
		{"node crashes", inj.NodeCrashes()},
		{"node restarts", inj.NodeRestarts()},
		{"switch fails", inj.SwitchFails()},
		{"switch recovers", inj.SwitchRecovers()},
	}
	for _, ctr := range counters {
		if ctr.v < 0 {
			bad("negative injector counter: %s = %d", ctr.name, ctr.v)
		}
	}
	if got, want := inj.TotalDrops(), inj.LossDrops()+inj.DownDrops(); got != want {
		bad("total drops %d != loss %d + down %d", got, inj.LossDrops(), inj.DownDrops())
	}
	if inj.DataDropped() > inj.TotalDrops() {
		bad("data drops %d exceed total drops %d", inj.DataDropped(), inj.TotalDrops())
	}
	for _, ls := range plan.Events {
		if ls.Action == fault.LinkDown || ls.Action == fault.LinkUp {
			if inj.Down(ls.Link) {
				bad("link %q still down after its recovery event", ls.Link)
			}
		}
	}

	// Node faults: every scheduled event fired (the horizon ends well before
	// the drain), and — because the generator pairs every outage with a
	// recovery — no device is still down at run end.
	var planCrash, planRestart, planFail, planRecover int64
	for _, ne := range plan.Nodes {
		switch ne.Action {
		case fault.HostCrash:
			planCrash++
		case fault.HostRestart:
			planRestart++
		case fault.SwitchFail:
			planFail++
		case fault.SwitchRecover:
			planRecover++
		}
	}
	if inj.NodeCrashes() != planCrash || inj.NodeRestarts() != planRestart ||
		inj.SwitchFails() != planFail || inj.SwitchRecovers() != planRecover {
		bad("node-fault counters (%d,%d,%d,%d) != plan (%d,%d,%d,%d)",
			inj.NodeCrashes(), inj.NodeRestarts(), inj.SwitchFails(), inj.SwitchRecovers(),
			planCrash, planRestart, planFail, planRecover)
	}
	for i, h := range n.Hosts {
		if h.Crashed() {
			bad("host%d still crashed after its restart event", i)
		}
		if h.ParkedFlows() != 0 {
			bad("host%d still has %d parked flows after restart", i, h.ParkedFlows())
		}
	}
	for i, sw := range n.Leaves {
		if sw.Failed() {
			bad("leaf%d still failed after its recovery event", i)
		}
	}
	for i, sw := range n.Spines {
		if sw.Failed() {
			bad("spine%d still failed after its recovery event", i)
		}
	}
	for i, d := range n.DCIs {
		if d.Failed() {
			bad("dci%d still failed after its recovery event", i)
		}
	}

	var aborted int64
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		if f.Done && f.Aborted {
			bad("flow %d both done and aborted", id)
		}
		if f.Done && f.RxBytes < f.Info.Size {
			bad("flow %d done with %d/%d bytes received", id, f.RxBytes, f.Info.Size)
		}
		if f.Aborted {
			aborted++
		}
	}
	var hostAborts, wdDecays, wdRecovers int64
	for _, h := range n.Hosts {
		hostAborts += h.Aborted
		wdDecays += h.WatchdogDecays
		wdRecovers += h.WatchdogRecovers
	}
	if hostAborts != aborted {
		bad("host abort counters %d != aborted flows %d", hostAborts, aborted)
	}
	if wdRecovers > wdDecays {
		bad("watchdog recovered %d halvings but only %d were applied", wdRecovers, wdDecays)
	}

	return runOutcome{digest: cellDigest(n), problems: probs}
}

// addFlows installs the fixed soak workload: two long cross-DC transfers in
// opposite directions, short intra-DC company, and (at two-DC scale) an extra
// cross flow plus a rack-crossing intra flow. Flow geometry is a pure
// function of the host count so both shard layouts schedule identical work.
func addFlows(n *topo.Network) {
	half := n.NumHosts() / 2
	n.AddFlow(0, half, 4<<20, sim.Millisecond)
	n.AddFlow(half+1, 1, 4<<20, sim.Millisecond)
	n.AddFlow(0, 1, 1<<20, sim.Millisecond)
	n.AddFlow(half, half+1, 1<<20, sim.Millisecond)
	if n.NumHosts() >= 8 {
		n.AddFlow(2, half+2, 2<<20, 2*sim.Millisecond)
		n.AddFlow(1, 3, 1<<20, 2*sim.Millisecond)
	}
}

// cellDigest is the run fingerprint the shard-equality gate compares: an
// FNV-1a fold of the event count, the final clock, every flow's terminal
// state in flow-ID order, and the injector's aggregate counters. Identical
// digests mean the sharded run executed the same simulation.
func cellDigest(n *topo.Network) uint64 {
	d := newDigest()
	d.add(n.Fired())
	d.add(uint64(n.Now()))
	d.add(uint64(n.Table.Len()))
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		d.add(uint64(f.Info.ID))
		var bits uint64
		if f.Done {
			bits |= 1
		}
		if f.Aborted {
			bits |= 2
		}
		d.add(bits)
		d.add(uint64(f.FinishAt))
		d.add(uint64(f.RxBytes))
	}
	inj := n.Faults
	d.add(uint64(inj.LossDrops()))
	d.add(uint64(inj.DownDrops()))
	d.add(uint64(inj.DataDrops()))
	d.add(uint64(inj.DownEvents()))
	d.add(uint64(inj.DegradeEvents()))
	d.add(uint64(inj.FeedbackDropped()))
	d.add(uint64(inj.FeedbackDelayed()))
	d.add(uint64(inj.FeedbackCorrupted()))
	d.add(uint64(inj.NodeCrashes()))
	d.add(uint64(inj.NodeRestarts()))
	d.add(uint64(inj.SwitchFails()))
	d.add(uint64(inj.SwitchRecovers()))
	return d.sum()
}

// digest is an incremental FNV-1a hash over uint64 words (the same fold
// internal/exp uses for determinism digests, kept local so the soak harness
// has no dependency on the experiment layer).
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: 14695981039346656037} }

func (d *digest) add(v uint64) {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		d.h = (d.h ^ (v & 0xff)) * prime
		v >>= 8
	}
}

func (d *digest) sum() uint64 { return d.h }
