package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"mlcc/internal/audit"
	"mlcc/internal/host"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

// soakAlgs is the full algorithm matrix the nightly soak sweeps; the smoke
// tier keeps to the two fastest-converging algorithms so `make check` stays
// bounded.
var soakAlgs = []string{"mlcc", "dcqcn", "timely", "hpcc", "powertcp"}

func checkCell(t *testing.T, c Cell) {
	t.Helper()
	r := RunCell(c)
	if len(r.Problems) == 0 {
		return
	}
	for _, p := range r.Problems {
		t.Errorf("%s: %s", c, p)
	}
	t.Error(r.Repro(c))
}

// TestChaosSmoke is the bounded chaos tier wired into `make check`: 8 seeded
// cells ({mlcc, dcqcn} × {dumbbell, twodc} × 2 plan seeds), each run at
// shards=1 and shards=2 and gated on every soak invariant. A failing cell
// prints its exact seed and the generated plan's JSON, so any failure here
// reproduces with a one-line `go test -run` plus `mlccsim -fault-plan`.
func TestChaosSmoke(t *testing.T) {
	for _, alg := range []string{"mlcc", "dcqcn"} {
		for _, tp := range Topos() {
			for seed := int64(1); seed <= 2; seed++ {
				c := Cell{Alg: alg, Topo: tp, Seed: seed}
				t.Run(fmt.Sprintf("%s/%s/seed%d", alg, tp.Name, seed), func(t *testing.T) {
					t.Parallel()
					checkCell(t, c)
				})
			}
		}
	}
}

// TestChaosSoak is the long tier: every algorithm × both topologies × N plan
// seeds (MLCC_SOAK_PLANS, default 20). It only runs when MLCC_SOAK=1 —
// `make soak` sets it — because the full matrix is minutes, not seconds.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("MLCC_SOAK") == "" {
		t.Skip("set MLCC_SOAK=1 (or run `make soak`) to run the full chaos matrix")
	}
	plans := 20
	if s := os.Getenv("MLCC_SOAK_PLANS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MLCC_SOAK_PLANS=%q: want a positive integer", s)
		}
		plans = n
	}
	for _, alg := range soakAlgs {
		for _, tp := range Topos() {
			for seed := int64(1); seed <= int64(plans); seed++ {
				c := Cell{Alg: alg, Topo: tp, Seed: seed}
				t.Run(fmt.Sprintf("%s/%s/seed%d", alg, tp.Name, seed), func(t *testing.T) {
					t.Parallel()
					checkCell(t, c)
				})
			}
		}
	}
}

// TestChaosPlanDeterminism pins the generator contract RunCell's
// reproducibility rests on: the same (topology, seed, horizon) always yields
// the same plan, and different seeds actually explore different plans.
func TestChaosPlanDeterminism(t *testing.T) {
	for _, tp := range Topos() {
		a := GeneratePlan(tp, 7, planHorizon)
		b := GeneratePlan(tp, 7, planHorizon)
		if PlanJSON(a) != PlanJSON(b) {
			t.Errorf("%s: same seed produced different plans:\n%s\nvs\n%s", tp.Name, PlanJSON(a), PlanJSON(b))
		}
		if PlanJSON(a) == PlanJSON(GeneratePlan(tp, 8, planHorizon)) {
			t.Errorf("%s: seeds 7 and 8 produced identical plans", tp.Name)
		}
		if a.Empty() {
			t.Errorf("%s: generated plan is empty", tp.Name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: generated plan invalid: %v", tp.Name, err)
		}
	}
}

// TestChaosQuiescentReads drives a sharded chaos cell with a periodic
// OnQuiescent hook reading the injector's cross-shard aggregates and link
// state mid-run — the documented safe point for such reads. Under `go test
// -race` (the make-check race sweep includes this package) this proves the
// quiescent-read contract: no engine goroutine races the aggregation. The
// test also pins that the aggregates are monotone non-decreasing across
// quiescent samples.
func TestChaosQuiescentReads(t *testing.T) {
	tp := DumbbellTopo()
	plan := GeneratePlan(tp, 3, planHorizon)
	p := topo.DefaultParams().WithAlgorithm("mlcc")
	p.Seed = 1
	p.LongHaulDelay = 500 * sim.Microsecond
	p.HostsPerLeaf = 2
	p.Shards = 2
	p.Audit = audit.New()
	p.Fault = plan
	if plan.HasFeedback() {
		p.FBWatchdogK = host.DefaultWatchdogK
	}
	n := topo.Dumbbell(p)
	if n.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", n.ShardCount())
	}
	addFlows(n)

	var samples int
	var lastTotal, lastFB int64
	n.OnQuiescent(2*sim.Millisecond, func(now sim.Time) {
		samples++
		inj := n.Faults
		if tot := inj.TotalDrops(); tot < lastTotal {
			t.Errorf("t=%v: TotalDrops went backwards: %d -> %d", now, lastTotal, tot)
		} else {
			lastTotal = tot
		}
		fb := inj.FeedbackDropped() + inj.FeedbackDelayed() + inj.FeedbackCorrupted()
		if fb < lastFB {
			t.Errorf("t=%v: feedback aggregates went backwards: %d -> %d", now, lastFB, fb)
		} else {
			lastFB = fb
		}
		_ = inj.Down("longhaul") // link state is quiescent-readable too
		for _, h := range n.Hosts {
			if h.Aborted < 0 || h.WatchdogDecays < 0 {
				t.Errorf("t=%v: negative host counter", now)
			}
		}
	})
	n.Run(runWindow)
	if samples == 0 {
		t.Fatal("quiescent hook never fired")
	}
	for _, p := range n.AuditProblems() {
		t.Errorf("conservation violation: %s", p)
	}
}
