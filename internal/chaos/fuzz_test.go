package chaos

import (
	"bytes"
	"testing"

	"mlcc/internal/fault"
	"mlcc/internal/sim"
)

// FuzzChaosPlan hammers the generator across arbitrary (seed, topology,
// horizon) inputs and holds it to the valid-by-construction contract:
//
//   - every generated plan passes fault.Validate and is non-empty,
//   - the plan survives the JSON round-trip byte for byte (the generator
//     works on the microsecond grid precisely so re-encoding loses nothing),
//   - and generation is deterministic — the same inputs give the same bytes,
//     which is what makes a soak failure's printed seed a complete repro.
//
// The seed corpus in testdata/fuzz/FuzzChaosPlan covers both topologies, a
// zero horizon (clamped internally), and a multi-second one; `make check`
// runs a short fuzz pass over it.
func FuzzChaosPlan(f *testing.F) {
	f.Add(int64(1), true, uint32(30_000))
	f.Add(int64(2), false, uint32(20_000))
	f.Add(int64(99), true, uint32(0))
	f.Add(int64(-7), false, uint32(4_000_000))
	f.Fuzz(func(t *testing.T, seed int64, dumbbell bool, horizonUS uint32) {
		tp := TwoDCTopo()
		if dumbbell {
			tp = DumbbellTopo()
		}
		horizon := sim.Time(horizonUS) * sim.Microsecond
		p := GeneratePlan(tp, seed, horizon)
		if err := p.Validate(); err != nil {
			t.Fatalf("generated plan invalid: %v\n%s", err, PlanJSON(p))
		}
		if p.Empty() {
			t.Fatal("generated plan is empty: the generator always emits at least one event group")
		}
		var b1 bytes.Buffer
		if err := fault.WritePlan(&b1, p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		p2, err := fault.ReadPlan(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode: %v\n%s", err, b1.String())
		}
		var b2 bytes.Buffer
		if err := fault.WritePlan(&b2, p2); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("JSON round-trip not byte-stable:\n%s\nvs\n%s", b1.String(), b2.String())
		}
		if again := PlanJSON(GeneratePlan(tp, seed, horizon)); again != b1.String() {
			t.Fatalf("generator not deterministic:\n%s\nvs\n%s", b1.String(), again)
		}
	})
}
