package exp

import (
	"fmt"
	"sync"

	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// fctKey identifies one FCT simulation for memoization: the avg-FCT and
// tail-FCT figures (11↔13, 12↔14) share the same underlying runs. The shard
// count is part of the key even though digests are shard-invariant — a
// cached result must say how it was produced so manifests stay honest.
type fctKey struct {
	alg      string
	cdf      string
	intra    float64
	cross    float64
	longHaul sim.Time
	dumbbell bool
	scale    Scale
	seed     int64
	shards   int
}

// fctResult is the outcome of one workload simulation.
type fctResult struct {
	Col        *stats.FCTCollector
	Flows      int
	Unfinished int
	PFCPauses  int64
	Drops      int64
	Manifest   *metrics.Manifest

	// Warning is the shard-fallback warning for this run ("" when none);
	// figures surface it through Report.AddWarning.
	Warning string
}

// clone returns a deep-enough copy for handing to callers: the collector
// and manifest are the two mutable components, and both support Clone.
func (r *fctResult) clone() *fctResult {
	c := *r
	c.Col = r.Col.Clone()
	c.Manifest = r.Manifest.Clone()
	return &c
}

var fctCache sync.Map // fctKey -> *fctResult (canonical; callers get clones)

// scaleTopo returns the base topology parameters for a scale.
func scaleTopo(s Scale) topo.Params {
	p := topo.DefaultParams()
	if s == Full {
		p.HostsPerLeaf = 32 // 32×25G vs 2×100G uplinks = 4:1, per §4.1
	} else {
		p.HostsPerLeaf = 8
	}
	return p
}

// windows returns the (arrival window, drain deadline) for a scale.
func windows(s Scale) (sim.Time, sim.Time) {
	if s == Full {
		return 20 * sim.Millisecond, 250 * sim.Millisecond
	}
	return 5 * sim.Millisecond, 120 * sim.Millisecond
}

// runFCT runs (or recalls) one workload simulation. Both hits and misses
// return a clone of the cached canonical result: two figures sharing a run
// (11↔13, 12↔14) must never alias one collector or manifest, or a consumer
// that sorts samples in place or stamps the manifest corrupts its sibling.
func runFCT(k fctKey) (*fctResult, error) {
	if v, ok := fctCache.Load(k); ok {
		return v.(*fctResult).clone(), nil
	}
	cdf, err := workload.ByName(k.cdf)
	if err != nil {
		return nil, err
	}
	window, deadline := windows(k.scale)

	var n *topo.Network
	p := scaleTopo(k.scale)
	if k.longHaul != 0 {
		p.LongHaulDelay = k.longHaul
	}
	p.Seed = k.seed
	p.Shards = k.shards
	pa := p.WithAlgorithm(k.alg)
	// Passive telemetry: registry only, no sampling, so the run's event
	// sequence — and thus its determinism digest — is unchanged.
	tel := metrics.New(metrics.Options{Metrics: true})
	pa.Telemetry = tel
	if k.dumbbell {
		pa.HostsPerLeaf = 2
		pa.HostRate = 100 * sim.Gbps
		n = topo.Dumbbell(pa)
	} else {
		n = topo.TwoDC(pa)
	}

	flows, err := workload.Generate(workload.Spec{
		CDF:       cdf,
		IntraLoad: k.intra,
		CrossLoad: k.cross,
		HostRate:  n.P.HostRate,
		IntraRate: n.PerHostBisection(),
		CrossRate: n.P.FabricRate,
		Hosts:     n.NumHosts(),
		Duration:  window,
		Seed:      k.seed,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: workload %v: %w", k, err)
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("exp: workload %v generated no flows", k)
	}

	for _, fs := range flows {
		n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
	}
	n.Run(deadline)

	// Collect completions post-run in flow-ID order rather than via
	// OnFlowDone closures: on a sharded build the closures would write one
	// collector from two engines' goroutines, and even single-engine the
	// completion-order walk made sample order depend on event timing.
	// Flow-ID order is identical for shards=1 and shards=N (the digest
	// test proves the Table states match), so the collections are too.
	col := stats.NewFCTCollector()
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		if !f.Done {
			continue
		}
		col.Add(stats.FCTSample{
			Size:  f.Info.Size,
			FCT:   f.FCT(),
			Cross: f.Info.CrossDC,
			Start: f.Start,
		})
	}

	man := metrics.NewManifest("mlccfig")
	man.Algorithm = k.alg
	man.Workload = k.cdf
	man.Seed = k.seed
	man.Flows = len(flows)
	man.Config = map[string]any{
		"intra_load":  k.intra,
		"cross_load":  k.cross,
		"longhaul_ms": p.LongHaulDelay.Millis(),
		"dumbbell":    k.dumbbell,
		"full_scale":  k.scale == Full,
		"shards":      n.ShardCount(),
	}
	man.FillSim(n.Now(), n.Fired())
	man.AddCounters(tel.Registry())

	res := &fctResult{Col: col, Flows: len(flows), Manifest: man, Warning: shardWarning(pa)}
	for _, f := range n.Table.All() {
		if !f.Done {
			res.Unfinished++
		}
	}
	for _, sw := range n.Leaves {
		res.PFCPauses += sw.PFCPauses
		res.Drops += sw.Drops
	}
	for _, sw := range n.Spines {
		res.PFCPauses += sw.PFCPauses
		res.Drops += sw.Drops
	}
	fctCache.Store(k, res)
	return res.clone(), nil
}

// ClearCache drops memoized simulations (tests use it to force reruns).
func ClearCache() {
	fctCache.Range(func(k, _ any) bool {
		fctCache.Delete(k)
		return true
	})
}

// fctForAlgs runs the workload for every algorithm concurrently.
func fctForAlgs(cfg Config, algs []string, cdf string, intra, cross float64, longHaul sim.Time, dumbbell bool) (map[string]*fctResult, error) {
	out := make(map[string]*fctResult, len(algs))
	errs := make(map[string]error, len(algs))
	var mu sync.Mutex
	jobs := make([]func(), 0, len(algs))
	for _, alg := range algs {
		alg := alg
		jobs = append(jobs, func() {
			res, err := runFCT(fctKey{
				alg: alg, cdf: cdf, intra: intra, cross: cross,
				longHaul: longHaul, dumbbell: dumbbell,
				scale: cfg.Scale, seed: cfg.Seed, shards: cfg.Shards,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[alg] = err
				return
			}
			out[alg] = res
		})
	}
	parallel(cfg.Workers, jobs)
	for _, err := range errs {
		return nil, err
	}
	return out, nil
}
