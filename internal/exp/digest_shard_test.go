package exp

import (
	"fmt"
	"testing"

	"mlcc/internal/fault"
	"mlcc/internal/sim"
)

// shardTestAlgs returns the algorithms the shard-parity tests sweep: the
// full register under the normal loop, mlcc+dcqcn under -short (matching
// the golden-digest test's policy).
func shardTestAlgs(t *testing.T) []string {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	return algs
}

// TestShardDigestEquality is the tentpole property test: for every
// algorithm, a sharded run (one engine per DC, conservative barriers at the
// long-haul delay, fixed DC0→DC1 mailbox flush order) must produce a
// byte-identical determinism digest to the single-engine run — on both the
// §4.6 dumbbell and the full two-DC spine-leaf fabric. The digest hashes the
// fired-event count, the final clock, and every flow's completion record, so
// equality means the sharded engine delivered every cross-DC frame at the
// exact time a single engine would have, and fired the same number of events
// doing it.
func TestShardDigestEquality(t *testing.T) {
	for _, alg := range shardTestAlgs(t) {
		for _, dumbbell := range []bool{true, false} {
			alg, dumbbell := alg, dumbbell
			name := fmt.Sprintf("%s/twodc", alg)
			if dumbbell {
				name = fmt.Sprintf("%s/dumbbell", alg)
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				single := DeterminismDigestShards(alg, 1, 1, dumbbell)
				sharded := DeterminismDigestShards(alg, 1, 2, dumbbell)
				if single != sharded {
					t.Errorf("shards=2 digest %#016x != shards=1 digest %#016x", sharded, single)
				}
				if !dumbbell {
					// The TwoDC single-engine digest is itself pinned: a
					// sharded build with shards=1 must go through the exact
					// single-engine code path the goldens were recorded on.
					if want := goldenDigests[alg]; single != want {
						t.Errorf("shards=1 digest %#016x != golden %#016x", single, want)
					}
				}
			})
		}
	}
}

// shardFaultPlans returns the active plans the shard-parity fault test
// sweeps: a data-plane plan (long-haul blackout + recovery, a degrade with
// jitter, and a Bernoulli loss window — every scripted action and both RNG
// stream families exercised) and a feedback-plane plan (drop + corrupt +
// jittered delay on every host). Both are active well inside the 60 ms
// digest horizon so they genuinely perturb the run.
func shardFaultPlans() map[string]*fault.Plan {
	return map[string]*fault.Plan{
		"data": {
			Seed: 77,
			Events: []fault.Event{
				{At: 3 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown},
				{At: 4 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
				{At: 6 * sim.Millisecond, Link: "longhaul", Action: fault.Degrade,
					RateFactor: 0.5, ExtraDelay: 50 * sim.Microsecond, Jitter: 10 * sim.Microsecond},
				{At: 8 * sim.Millisecond, Link: "longhaul", Action: fault.Restore},
			},
			Loss: []fault.LossRule{
				{Link: "longhaul", Prob: 1e-3, Start: 5 * sim.Millisecond, End: 12 * sim.Millisecond},
			},
		},
		"feedback": {
			Seed: 78,
			Feedback: []fault.FeedbackRule{
				{Host: "*", Drop: 0.1, Corrupt: 0.2,
					Delay: 20 * sim.Microsecond, Jitter: 10 * sim.Microsecond,
					Start: 2 * sim.Millisecond, End: 12 * sim.Millisecond},
			},
		},
	}
}

// TestShardDigestFaultPlans extends the shard-parity property to active
// fault plans — the feature that used to pin builds to a single engine. A
// sharded run under a live data-plane plan (long-haul blackout, degrade,
// Bernoulli loss) or feedback-plane plan (drop/corrupt/delay at host
// ingress) must stay byte-identical to the single-engine run: scripted
// events fire per direction on the engine owning each port at the same
// absolute time, loss rules draw from per-direction PRNG streams, and
// feedback filters keep per-host streams regardless of which shard hosts
// them. The data plan must also move the TwoDC digest off the fault-free
// golden, proving it actually fired.
func TestShardDigestFaultPlans(t *testing.T) {
	for planName, plan := range shardFaultPlans() {
		for _, alg := range shardTestAlgs(t) {
			for _, dumbbell := range []bool{true, false} {
				planName, plan, alg, dumbbell := planName, plan, alg, dumbbell
				topoName := "twodc"
				if dumbbell {
					topoName = "dumbbell"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", planName, alg, topoName), func(t *testing.T) {
					t.Parallel()
					single := DeterminismDigestPlanShards(alg, 1, plan, 1, dumbbell)
					sharded := DeterminismDigestPlanShards(alg, 1, plan, 2, dumbbell)
					if single != sharded {
						t.Errorf("%s plan: shards=2 digest %#016x != shards=1 digest %#016x",
							planName, sharded, single)
					}
					if planName == "data" && !dumbbell {
						if single == goldenDigests[alg] {
							t.Errorf("active data plan left the digest at the fault-free golden %#016x", single)
						}
					}
				})
			}
		}
	}
}

// TestShardDigestNodeFaults extends shard parity to node-level faults: a plan
// that crashes and restarts a host mid-run and fails/recovers the sender-side
// DCI switch must produce byte-identical digests at shards=1 and shards=2 for
// every algorithm, on both topologies. The DCI failure is the interesting
// case — on a sharded build its long-haul port's remote end lives on the peer
// engine, so the cut and the restore fire through a second hook at the same
// absolute times the single-engine build uses. The plan must also move the
// TwoDC digest off the fault-free golden, proving the node events fired.
func TestShardDigestNodeFaults(t *testing.T) {
	plan := &fault.Plan{
		Seed: 79,
		Nodes: []fault.NodeEvent{
			{At: 3 * sim.Millisecond, Node: "host0", Action: fault.HostCrash},
			{At: 6 * sim.Millisecond, Node: "host0", Action: fault.HostRestart},
			{At: 8 * sim.Millisecond, Node: "dci0", Action: fault.SwitchFail},
			{At: 9 * sim.Millisecond, Node: "dci0", Action: fault.SwitchRecover},
		},
	}
	for _, alg := range shardTestAlgs(t) {
		for _, dumbbell := range []bool{true, false} {
			alg, dumbbell := alg, dumbbell
			topoName := "twodc"
			if dumbbell {
				topoName = "dumbbell"
			}
			t.Run(fmt.Sprintf("%s/%s", alg, topoName), func(t *testing.T) {
				t.Parallel()
				single := DeterminismDigestPlanShards(alg, 1, plan, 1, dumbbell)
				sharded := DeterminismDigestPlanShards(alg, 1, plan, 2, dumbbell)
				if single != sharded {
					t.Errorf("node-fault plan: shards=2 digest %#016x != shards=1 digest %#016x",
						sharded, single)
				}
				if !dumbbell && single == goldenDigests[alg] {
					t.Errorf("active node-fault plan left the digest at the fault-free golden %#016x", single)
				}
			})
		}
	}
}

// TestShardDigestTelemetry proves every telemetry plane survives sharding:
// with the flight recorder, time-series sampling (SampleAll) and per-flow
// gauges all active, (a) the sharded digest must stay byte-identical to the
// shards=1 run — telemetry schedules no events on any shard count because
// sampling is pump-driven at quiescent barriers and each shard records into
// its own ring — (b) the sampled series must fold to the same hash for both
// shard layouts, and (c) the TwoDC base digest must still equal the
// telemetry-off golden, pinning that the planes are passive, not merely
// consistently active. Unlike the bare equality test this sweeps only
// mlcc+dcqcn: the property under test is the telemetry machinery, which is
// algorithm-independent, and SampleAll runs are expensive enough that the
// full register would blow the race-enabled `make check` time budget.
func TestShardDigestTelemetry(t *testing.T) {
	for _, alg := range []string{"mlcc", "dcqcn"} {
		for _, dumbbell := range []bool{true, false} {
			alg, dumbbell := alg, dumbbell
			name := fmt.Sprintf("%s/twodc", alg)
			if dumbbell {
				name = fmt.Sprintf("%s/dumbbell", alg)
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				base1, series1 := DeterminismDigestShardsTel(alg, 1, 1, dumbbell)
				base2, series2 := DeterminismDigestShardsTel(alg, 1, 2, dumbbell)
				if base1 != base2 {
					t.Errorf("telemetry-on shards=2 digest %#016x != shards=1 digest %#016x", base2, base1)
				}
				if series1 != series2 {
					t.Errorf("sampled series fold differs: shards=2 %#016x != shards=1 %#016x", series2, series1)
				}
				if !dumbbell {
					if want := goldenDigests[alg]; base1 != want {
						t.Errorf("telemetry-on digest %#016x != telemetry-off golden %#016x", base1, want)
					}
				}
			})
		}
	}
}

// TestShardDigestAudit proves the conservation plane survives sharding: with
// per-shard partial ledgers merging to one set of books, (a) attaching the
// audit must leave the sharded digest byte-identical — the ledger is
// passive in each shard exactly as it is on one engine — and (b) the merged
// books must close with zero problems, meaning every frame that crossed the
// shard boundary was debited from its sender-side ledger and credited to the
// receiver-side one.
func TestShardDigestAudit(t *testing.T) {
	for _, alg := range shardTestAlgs(t) {
		for _, dumbbell := range []bool{true, false} {
			alg, dumbbell := alg, dumbbell
			name := fmt.Sprintf("%s/twodc", alg)
			if dumbbell {
				name = fmt.Sprintf("%s/dumbbell", alg)
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				bare := DeterminismDigestShards(alg, 1, 2, dumbbell)
				audited, probs := DeterminismDigestAuditShards(alg, 1, 2, dumbbell)
				if audited != bare {
					t.Errorf("audited sharded digest %#016x != unaudited %#016x", audited, bare)
				}
				if len(probs) != 0 {
					t.Errorf("merged shard ledgers report problems: %v", probs)
				}
			})
		}
	}
}
