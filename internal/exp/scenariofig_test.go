package exp

import (
	"fmt"
	"testing"

	scen "mlcc/internal/scenario"
)

// TestShardDigestScenario extends shard parity to closed-loop scenarios: for
// every canonical kind, a sharded run must produce a byte-identical digest —
// per-flow completion records AND collective barrier outcomes — to the
// single-engine run, with clean conservation books on both layouts. This is
// the acceptance gate for the scenario subsystem's shard-safety story: the
// barrier poll decides and launches phases only at quiescent boundaries, so
// phase launch times and flow IDs must be pure functions of the plan.
func TestShardDigestScenario(t *testing.T) {
	for _, kind := range scen.Kinds() {
		for _, alg := range shardTestAlgs(t) {
			kind, alg := kind, alg
			t.Run(fmt.Sprintf("%s/%s", kind, alg), func(t *testing.T) {
				t.Parallel()
				single, probs1, err := ScenarioDigest(kind, alg, 1, 1)
				if err != nil {
					t.Fatal(err)
				}
				sharded, probs2, err := ScenarioDigest(kind, alg, 1, 2)
				if err != nil {
					t.Fatal(err)
				}
				if single != sharded {
					t.Errorf("shards=2 digest %#016x != shards=1 digest %#016x", sharded, single)
				}
				if len(probs1) != 0 || len(probs2) != 0 {
					t.Errorf("audit problems: shards=1 %v, shards=2 %v", probs1, probs2)
				}
			})
		}
	}
}

// TestScenarioFigure runs the full matrix at Quick scale and pins the
// acceptance shape of every kind's table.
func TestScenarioFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4-kind × 5-algorithm sweep")
	}
	e, ok := Lookup("scenario")
	if !ok {
		t.Fatal("scenario experiment not registered")
	}
	rep, err := e.Run(Config{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("tables = %d, want 4", len(rep.Tables))
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("warnings (audit problems or shard fallbacks): %v", rep.Warnings)
	}
	if len(rep.Manifests) != 4*len(resilAlgs) {
		t.Errorf("manifests = %d, want %d", len(rep.Manifests), 4*len(resilAlgs))
	}

	collTbl, incastTbl, tenantTbl, spaceTbl := rep.Tables[0], rep.Tables[1], rep.Tables[2], rep.Tables[3]
	for _, alg := range resilAlgs {
		// Every algorithm must carry the ring through all 4 barrier phases.
		if v, ok := collTbl.Get(alg, "phasesDone"); !ok || v != 4 {
			t.Errorf("%s: collective phasesDone = %v", alg, v)
		}
		if v, _ := collTbl.Get(alg, "aborted"); v != 0 {
			t.Errorf("%s: collective aborted = %v", alg, v)
		}
		if v, _ := collTbl.Get(alg, "finishMs"); v <= 0 || v > 100 {
			t.Errorf("%s: collective finishMs = %v", alg, v)
		}
		// Incast and tenant mixes are fault-free: everything completes.
		if v, _ := incastTbl.Get(alg, "done"); v <= 0 {
			t.Errorf("%s: incast done = %v", alg, v)
		}
		if v, _ := incastTbl.Get(alg, "burstP99us"); v <= 0 {
			t.Errorf("%s: burst p99 = %v", alg, v)
		}
		if v, _ := tenantTbl.Get(alg, "fairness"); v <= 0 || v > 1 {
			t.Errorf("%s: fairness = %v outside (0,1]", alg, v)
		}
		if v, _ := tenantTbl.Get(alg, "aborted"); v != 0 {
			t.Errorf("%s: tenant aborted = %v", alg, v)
		}
		// The space-DC relay ring must survive the 3 ms outage and finish
		// both phases; its bulk tenant rides a 100 ms haul, so cross FCTs
		// cannot beat the one-way latency.
		if v, ok := spaceTbl.Get(alg, "phasesDone"); !ok || v != 2 {
			t.Errorf("%s: spacedc phasesDone = %v", alg, v)
		}
		if v, _ := spaceTbl.Get(alg, "bulkAvgMs"); v <= 100 {
			t.Errorf("%s: spacedc bulk avg %v ms beat the 100 ms haul", alg, v)
		}
	}
}

// TestScenarioDigestDeterminism pins that the digest is a pure function of
// (kind, alg, seed) — two identical invocations must agree bit for bit.
func TestScenarioDigestDeterminism(t *testing.T) {
	a, _, err := ScenarioDigest("collective", "mlcc", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ScenarioDigest("collective", "mlcc", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("digest not deterministic: %#016x vs %#016x", a, b)
	}
	c, _, err := ScenarioDigest("collective", "mlcc", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("seed does not enter the digest")
	}
}
