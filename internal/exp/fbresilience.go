package exp

import (
	"sync"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/host"
	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{
		ID:    "fb-resilience",
		Title: "Feedback-plane resilience: ACK/CNP loss, INT corruption and feedback blackouts",
		Run:   runFBResilience,
	})
}

// Feedback-fault phase timeline (dumbbell, 100 µs long haul, BaseRTT ≈
// 230 µs — inside Timely's THigh=500µs operating band; on a longer haul
// Timely floors at MinRate even fault-free and nothing would complete).
// Loss and corruption phases attack most of the transfer; the blackout
// severs ALL feedback for 4 ms mid-flow — many silent RTTs for the armed
// watchdog (K = 2 RTTs) to decay through, while the go-back-N RTO
// (max(4·RTT, RTOMin) ≈ 0.93 ms) fires only a handful of times against a
// budget of 16, so nothing aborts.
const (
	fbWindow     = 40 * sim.Millisecond
	fbFaultStart = sim.Millisecond
	fbFaultEnd   = 20 * sim.Millisecond
	fbBlackStart = 6 * sim.Millisecond
	fbBlackEnd   = 10 * sim.Millisecond
	fbWatchdogK  = 2
)

// fbPhases are the attacks, each a one-rule plan against every host.
var fbPhases = []struct {
	name string
	plan func(seed int64) *fault.Plan
}{
	{"ack-loss", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Feedback: []fault.FeedbackRule{
			{Host: "*", Kinds: fault.FBAck, Drop: 0.3, Start: fbFaultStart, End: fbFaultEnd},
		}}
	}},
	{"cnp-loss", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Feedback: []fault.FeedbackRule{
			{Host: "*", Kinds: fault.FBCNP, Drop: 0.9, Start: fbFaultStart, End: fbFaultEnd},
		}}
	}},
	{"int-corrupt", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Feedback: []fault.FeedbackRule{
			{Host: "*", Kinds: fault.FBAck | fault.FBSwitchINT, Corrupt: 0.5,
				Start: fbFaultStart, End: fbFaultEnd},
		}}
	}},
	{"blackout", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Feedback: []fault.FeedbackRule{
			{Host: "*", Drop: 1, Start: fbBlackStart, End: fbBlackEnd},
		}}
	}},
}

// fbOutcome is one (algorithm, phase) run's scoreboard.
type fbOutcome struct {
	done, aborted         float64
	fbDrops, fbCorrupts   float64
	invalidINT            float64
	wdDecays, wdRecovers  float64
	retransmits           float64
	crossGbps, crossFCTms float64
	auditProblems         float64
	series                *stats.Series
	man                   *metrics.Manifest
}

// runFBResilience compares all five algorithms under each feedback-plane
// attack on the dumbbell: do flows still complete, do the books balance with
// feedback destroyed at ingress, and does the watchdog decay and then recover
// across the blackout?
func runFBResilience(cfg Config) (*Report, error) {
	rep := &Report{ID: "fb-resilience", Title: "Feedback-plane resilience (dumbbell, all algorithms)"}

	type key struct{ alg, phase string }
	var mu sync.Mutex
	results := map[key]*fbOutcome{}

	jobs := make([]func(), 0, len(resilAlgs)*len(fbPhases))
	for _, alg := range resilAlgs {
		for _, ph := range fbPhases {
			alg, ph := alg, ph
			jobs = append(jobs, func() {
				o := fbResilienceRun(alg, ph.name, ph.plan(cfg.Seed), cfg.Seed, cfg.Shards)
				mu.Lock()
				results[key{alg, ph.name}] = o
				mu.Unlock()
			})
		}
	}
	parallel(cfg.Workers, jobs)

	for _, ph := range fbPhases {
		tbl := NewTable("Feedback fault: "+ph.name, "",
			"done", "aborted", "fbDrops", "fbCorrupts", "invalidINT",
			"wdDecays", "wdRecovers", "retrans", "crossGbps", "crossFCTms", "auditProblems")
		for _, alg := range resilAlgs {
			o := results[key{alg, ph.name}]
			tbl.AddRow(alg, o.done, o.aborted, o.fbDrops, o.fbCorrupts, o.invalidINT,
				o.wdDecays, o.wdRecovers, o.retransmits, o.crossGbps, o.crossFCTms, o.auditProblems)
			if o.series != nil {
				rep.Series = append(rep.Series, o.series)
			}
			rep.Manifests = append(rep.Manifests, o.man)
		}
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.AddNote("attacks: ack-loss 30%%, cnp-loss 90%% and int-corrupt 50%% over %v-%v; blackout drops ALL feedback %v-%v",
		fbFaultStart, fbFaultEnd, fbBlackStart, fbBlackEnd)
	rep.AddNote("watchdog armed at K=%d RTTs: wdDecays>0 then wdRecovers>0 in the blackout row shows graceful decay and multiplicative recovery", fbWatchdogK)
	rep.AddNote("expected shape: every flow completes (done=4, aborted=0) and auditProblems=0 in every cell — dropped feedback never unbalances the conservation books")
	return rep, nil
}

// fbResilienceRun executes one algorithm under one feedback-fault plan:
// two long cross flows that straddle every fault window plus two short intra
// flows, with the watchdog armed and the conservation audit attached.
func fbResilienceRun(alg, phase string, plan *fault.Plan, seed int64, shards int) *fbOutcome {
	p := topo.DefaultParams().WithAlgorithm(alg)
	p.Seed = seed
	p.HostsPerLeaf = 2 // hosts 0,1 = DC 0; hosts 2,3 = DC 1
	p.LongHaulDelay = 100 * sim.Microsecond
	p.Shards = shards
	p.FBWatchdogK = fbWatchdogK
	p.Fault = plan
	p.Audit = audit.New()
	sc := newScenarioIn(topo.Dumbbell, p, fbWindow, 100*sim.Microsecond)

	// 24 MB at 25 Gbps is ≈8 ms of wire time: both cross flows are
	// mid-transfer through the loss windows and the blackout.
	group := "fb:" + alg + ":" + phase
	flows := []*host.Flow{
		sc.addGroupFlow(group, 0, 2, 24<<20, 500*sim.Microsecond),
		sc.addGroupFlow(group, 3, 1, 24<<20, 500*sim.Microsecond),
		sc.n.AddFlow(0, 1, 4<<20, sim.Millisecond),
		sc.n.AddFlow(2, 3, 4<<20, sim.Millisecond),
	}
	cross := flows[:2]
	o := &fbOutcome{}
	if phase == "blackout" {
		o.series = sc.trackGroupRate(group)
	}
	sc.run(fbWindow)

	for _, f := range flows {
		if f.Done {
			o.done++
		}
		if f.Aborted {
			o.aborted++
		}
	}
	var crossBytes int64
	var crossTime sim.Time
	for _, f := range cross {
		crossBytes += f.RxBytes
		if fct := f.FCT(); fct > crossTime {
			crossTime = fct
		}
	}
	if crossTime > 0 {
		o.crossGbps = float64(crossBytes) * 8 / crossTime.Seconds() / 1e9
		o.crossFCTms = crossTime.Millis()
	}
	for _, h := range sc.n.Hosts {
		o.fbDrops += float64(h.FBDropped)
		o.invalidINT += float64(h.InvalidINT)
		o.wdDecays += float64(h.WatchdogDecays)
		o.wdRecovers += float64(h.WatchdogRecovers)
		o.retransmits += float64(h.Retransmits)
	}
	o.fbCorrupts = float64(sc.n.Faults.FeedbackCorrupted())
	o.auditProblems = float64(len(sc.n.AuditProblems()))
	o.man = sc.manifest()
	return o
}
