package exp

import (
	"fmt"
	"sync"

	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{
		ID:    "loadsweep",
		Title: "Extension: avg FCT vs intra-DC load (MLCC vs DCQCN vs HPCC)",
		Run:   runLoadSweep,
	})
}

// runLoadSweep extends the evaluation with the load-response curve the paper
// omits: average FCT as the intra-DC load grows with cross-DC load fixed at
// 20%. The interesting property is where each algorithm's curve knees.
func runLoadSweep(cfg Config) (*Report, error) {
	rep := &Report{ID: "loadsweep", Title: "Extension: avg FCT vs intra-DC load"}
	algs := []string{topo.AlgMLCC, topo.AlgDCQCN, topo.AlgHPCC}
	loads := []float64{0.3, 0.5, 0.7, 0.9}

	type key struct {
		alg  string
		load float64
	}
	results := map[key]*fctResult{}
	errs := map[key]error{}
	var mu sync.Mutex
	var jobs []func()
	for _, alg := range algs {
		for _, load := range loads {
			alg, load := alg, load
			jobs = append(jobs, func() {
				res, err := runFCT(fctKey{
					alg: alg, cdf: "websearch", intra: load, cross: 0.2,
					scale: cfg.Scale, seed: cfg.Seed, shards: cfg.Shards,
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					errs[key{alg, load}] = err
					return
				}
				results[key{alg, load}] = res
			})
		}
	}
	parallel(cfg.Workers, jobs)
	for _, err := range errs {
		return nil, err
	}

	cols := make([]string, len(loads))
	for i, l := range loads {
		cols[i] = fmt.Sprintf("%.0f%%", l*100)
	}
	intra := NewTable("Avg intra-DC FCT vs load (websearch, cross 20%)", "ms", cols...)
	unfinished := NewTable("Unfinished flows at deadline", "count", cols...)
	for _, alg := range algs {
		vi := make([]float64, len(loads))
		vu := make([]float64, len(loads))
		for i, load := range loads {
			r := results[key{alg, load}]
			a, _ := r.Col.Avg(stats.Intra)
			vi[i] = msOf(a)
			vu[i] = float64(r.Unfinished)
		}
		intra.AddRow(alg, vi...)
		unfinished.AddRow(alg, vu...)
		for _, load := range loads {
			rep.Manifests = append(rep.Manifests, results[key{alg, load}].Manifest)
			rep.AddWarning("%s", results[key{alg, load}].Warning)
		}
	}
	rep.Tables = append(rep.Tables, intra, unfinished)
	rep.AddNote("expected shape: all curves rise with load; MLCC/HPCC knee later than DCQCN")
	return rep, nil
}
