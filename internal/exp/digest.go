package exp

import (
	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// DeterminismDigest runs a fixed-seed medium two-DC workload under the named
// algorithm and returns an FNV-1a hash over (fired event count, final clock,
// per-flow completion records in flow-ID order). The digest pins the exact
// event ordering of the simulator: any change to scheduling, packet pooling
// or queue mechanics that alters behaviour — even a one-event reorder —
// changes the hash. Performance rewrites of the hot path must keep it
// bit-identical (see the "Performance model" section of DESIGN.md).
func DeterminismDigest(alg string, seed int64) uint64 {
	return determinismDigest(alg, seed, nil, nil, nil)
}

// DeterminismDigestTel is DeterminismDigest with a telemetry layer attached
// to the build. Passive telemetry (registry + flight recorder, no time-series
// sampling) schedules no events and draws no randomness, so the digest must
// be byte-identical to the telemetry-off run; the digest test enforces this.
// Sampling intentionally adds engine tick events, so it is excluded here.
func DeterminismDigestTel(alg string, seed int64, tel *metrics.Telemetry) uint64 {
	return determinismDigest(alg, seed, tel, nil, nil)
}

// DeterminismDigestPlan is DeterminismDigest with a fault plan applied at
// build time. An empty (or vacuous: zero-probability loss, events beyond the
// horizon) plan must leave the digest byte-identical to the plan-free run —
// the fault layer's PRNG streams are drawn only when a fault can actually
// occur. An active plan must yield the same digest for the same seed.
func DeterminismDigestPlan(alg string, seed int64, plan *fault.Plan) uint64 {
	return determinismDigest(alg, seed, nil, plan, nil)
}

// DeterminismDigestAudit is DeterminismDigest with the conservation ledger
// attached to the build. The ledger is strictly passive (no events, no
// randomness), so the digest must be byte-identical to the audit-off run;
// it also returns the ledger's end-of-run problem list, which must be empty.
func DeterminismDigestAudit(alg string, seed int64) (uint64, []string) {
	aud := audit.New()
	var probs []string
	d := determinismDigest(alg, seed, nil, nil, &hooks{
		audit: aud,
		after: func(n *topo.Network) { probs = n.AuditProblems() },
	})
	return d, probs
}

// DeterminismDigestShards is DeterminismDigest built with the given shard
// count, on the dumbbell (§4.6 testbed) or the two-DC fabric. The shard
// property the engine guarantees — and the digest test enforces — is that
// sharded runs are byte-identical to shards=1 for the same configuration:
// the conservative barrier schedule delivers every cross-DC frame at the
// exact time a single engine would have.
func DeterminismDigestShards(alg string, seed int64, shards int, dumbbell bool) uint64 {
	return determinismDigest(alg, seed, nil, nil, &hooks{shards: shards, dumbbell: dumbbell})
}

// DeterminismDigestAuditShards is DeterminismDigestShards with the
// conservation ledger attached: the per-shard partial ledgers must merge to
// closed books, and attaching them must leave the digest untouched.
func DeterminismDigestAuditShards(alg string, seed int64, shards int, dumbbell bool) (uint64, []string) {
	aud := audit.New()
	var probs []string
	d := determinismDigest(alg, seed, nil, nil, &hooks{
		audit:    aud,
		shards:   shards,
		dumbbell: dumbbell,
		after:    func(n *topo.Network) { probs = n.AuditProblems() },
	})
	return d, probs
}

// hooks threads optional audit/shard wiring through determinismDigest
// without growing its signature for every caller.
type hooks struct {
	audit    *audit.Ledger
	shards   int
	dumbbell bool
	after    func(n *topo.Network)
}

func determinismDigest(alg string, seed int64, tel *metrics.Telemetry, plan *fault.Plan, hk *hooks) uint64 {
	p := scaleTopo(Quick)
	p.Seed = seed
	p.Telemetry = tel
	p.Fault = plan
	dumbbell := false
	if hk != nil {
		p.Audit = hk.audit
		p.Shards = hk.shards
		dumbbell = hk.dumbbell
	}
	var n *topo.Network
	if dumbbell {
		n = topo.Dumbbell(p.WithAlgorithm(alg))
	} else {
		n = topo.TwoDC(p.WithAlgorithm(alg))
	}

	flows := workload.Generate(workload.Spec{
		CDF:       workload.Websearch(),
		IntraLoad: 0.5,
		CrossLoad: 0.2,
		HostRate:  n.P.HostRate,
		IntraRate: n.PerHostBisection(),
		CrossRate: n.P.FabricRate,
		Hosts:     n.NumHosts(),
		Duration:  2 * sim.Millisecond,
		Seed:      seed,
	})
	for _, fs := range flows {
		n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
	}
	n.Run(60 * sim.Millisecond)
	if hk != nil && hk.after != nil {
		hk.after(n)
	}

	d := NewDigest()
	d.Add(n.Fired())
	d.Add(uint64(n.Now()))
	d.Add(uint64(n.Table.Len()))
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		d.Add(uint64(f.Info.ID))
		if f.Done {
			d.Add(1)
		} else {
			d.Add(0)
		}
		d.Add(uint64(f.FinishAt))
		d.Add(uint64(f.RxBytes))
	}
	return d.Sum()
}

// Digest is an incremental FNV-1a hash over a sequence of uint64 words.
type Digest struct{ h uint64 }

// NewDigest returns a Digest at the FNV-1a offset basis.
func NewDigest() *Digest { return &Digest{h: 14695981039346656037} }

// Add mixes one word into the digest, little-endian byte by byte.
func (d *Digest) Add(v uint64) {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		d.h = (d.h ^ (v & 0xff)) * prime
		v >>= 8
	}
}

// Sum returns the current hash value.
func (d *Digest) Sum() uint64 { return d.h }
