package exp

import (
	"math"
	"sort"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/guard"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// DeterminismDigest runs a fixed-seed medium two-DC workload under the named
// algorithm and returns an FNV-1a hash over (fired event count, final clock,
// per-flow completion records in flow-ID order). The digest pins the exact
// event ordering of the simulator: any change to scheduling, packet pooling
// or queue mechanics that alters behaviour — even a one-event reorder —
// changes the hash. Performance rewrites of the hot path must keep it
// bit-identical (see the "Performance model" section of DESIGN.md).
func DeterminismDigest(alg string, seed int64) uint64 {
	return determinismDigest(alg, seed, nil, nil, nil)
}

// DeterminismDigestTel is DeterminismDigest with a telemetry layer attached
// to the build. Telemetry never schedules events or draws randomness — the
// registry and flight recorder are passive, and time-series sampling is
// pump-driven with the engines quiescent — so the digest must be
// byte-identical to the telemetry-off run; the digest tests enforce this for
// every plane.
func DeterminismDigestTel(alg string, seed int64, tel *metrics.Telemetry) uint64 {
	return determinismDigest(alg, seed, tel, nil, nil)
}

// DeterminismDigestPlan is DeterminismDigest with a fault plan applied at
// build time. An empty (or vacuous: zero-probability loss, events beyond the
// horizon) plan must leave the digest byte-identical to the plan-free run —
// the fault layer's PRNG streams are drawn only when a fault can actually
// occur. An active plan must yield the same digest for the same seed.
func DeterminismDigestPlan(alg string, seed int64, plan *fault.Plan) uint64 {
	return determinismDigest(alg, seed, nil, plan, nil)
}

// DeterminismDigestPlanShards is DeterminismDigestPlan built with the given
// shard count, on the dumbbell or the two-DC fabric. Fault plans are fully
// shard-safe: scripted events fire per direction on the engine owning each
// port, at the same absolute time as a single-engine build, and loss rules
// draw from per-direction PRNG streams — so the digest must be
// byte-identical across shard counts even with an active plan.
func DeterminismDigestPlanShards(alg string, seed int64, plan *fault.Plan, shards int, dumbbell bool) uint64 {
	return determinismDigest(alg, seed, nil, plan, &hooks{shards: shards, dumbbell: dumbbell})
}

// DeterminismDigestAudit is DeterminismDigest with the conservation ledger
// attached to the build. The ledger is strictly passive (no events, no
// randomness), so the digest must be byte-identical to the audit-off run;
// it also returns the ledger's end-of-run problem list, which must be empty.
func DeterminismDigestAudit(alg string, seed int64) (uint64, []string) {
	aud := audit.New()
	var probs []string
	d := determinismDigest(alg, seed, nil, nil, &hooks{
		audit: aud,
		after: func(n *topo.Network) { probs = n.AuditProblems() },
	})
	return d, probs
}

// DeterminismDigestGuard is DeterminismDigest built with the guard plane
// armed at the given configuration and shard count. The guard is strictly
// read-only and ticks only at quiescent points, so an armed-but-untriggered
// plane — and even a triggered storm or deadlock detector, which merely
// records and reports — must leave the digest byte-identical to the unguarded
// run (only a stall's requested halt legitimately changes the outcome).
func DeterminismDigestGuard(alg string, seed int64, gc *guard.Config, shards int, dumbbell bool) uint64 {
	return determinismDigest(alg, seed, nil, nil, &hooks{guard: gc, shards: shards, dumbbell: dumbbell})
}

// DeterminismDigestShards is DeterminismDigest built with the given shard
// count, on the dumbbell (§4.6 testbed) or the two-DC fabric. The shard
// property the engine guarantees — and the digest test enforces — is that
// sharded runs are byte-identical to shards=1 for the same configuration:
// the conservative barrier schedule delivers every cross-DC frame at the
// exact time a single engine would have.
func DeterminismDigestShards(alg string, seed int64, shards int, dumbbell bool) uint64 {
	return determinismDigest(alg, seed, nil, nil, &hooks{shards: shards, dumbbell: dumbbell})
}

// DeterminismDigestAuditShards is DeterminismDigestShards with the
// conservation ledger attached: the per-shard partial ledgers must merge to
// closed books, and attaching them must leave the digest untouched.
func DeterminismDigestAuditShards(alg string, seed int64, shards int, dumbbell bool) (uint64, []string) {
	aud := audit.New()
	var probs []string
	d := determinismDigest(alg, seed, nil, nil, &hooks{
		audit:    aud,
		shards:   shards,
		dumbbell: dumbbell,
		after:    func(n *topo.Network) { probs = n.AuditProblems() },
	})
	return d, probs
}

// DeterminismDigestShardsTel is DeterminismDigestShards with every telemetry
// plane active — flight recorder, time-series sampling with SampleAll, and
// per-flow gauges. It returns the base digest, which must equal the plane-off
// run's (telemetry schedules nothing), plus a separate fold of the sampled
// time series, which must be shard-count invariant (every series is read at
// quiescent boundaries where all shards agree on simulation state).
func DeterminismDigestShardsTel(alg string, seed int64, shards int, dumbbell bool) (uint64, uint64) {
	tel := metrics.New(metrics.Options{
		Metrics:            true,
		FlightRecorderSize: 4096,
		SampleInterval:     100 * sim.Microsecond,
		SampleAll:          true,
		PerFlow:            true,
	})
	base := determinismDigest(alg, seed, tel, nil, &hooks{shards: shards, dumbbell: dumbbell})
	return base, foldSeries(tel)
}

// DeterminismDigestPrep is DeterminismDigestShards with a telemetry layer
// attached and a prep hook called on the built network — flows scheduled,
// clock still at zero — before the run. internal/obs uses it to pin that
// attaching the live observability server leaves the digest untouched.
func DeterminismDigestPrep(alg string, seed int64, shards int, dumbbell bool, tel *metrics.Telemetry, prep func(n *topo.Network)) uint64 {
	return determinismDigest(alg, seed, tel, nil, &hooks{shards: shards, dumbbell: dumbbell, prep: prep})
}

// foldSeries hashes every sampled time series, name-sorted, sample by sample.
// sim.events_pending is excluded: staged cross-shard mailbox frames are not
// engine events until their drain is armed, so the pending count legitimately
// differs mid-run between shard layouts while all physical state agrees.
func foldSeries(tel *metrics.Telemetry) uint64 {
	names := tel.Tracer.Names()
	sort.Strings(names)
	d := NewDigest()
	for _, name := range names {
		if name == "sim.events_pending" {
			continue
		}
		ts, vs := tel.Series(name)
		d.Add(uint64(len(ts)))
		for i := range ts {
			d.Add(uint64(ts[i]))
			d.Add(math.Float64bits(vs[i]))
		}
	}
	return d.Sum()
}

// hooks threads optional audit/shard wiring through determinismDigest
// without growing its signature for every caller.
type hooks struct {
	audit    *audit.Ledger
	guard    *guard.Config
	shards   int
	dumbbell bool
	resort   bool // explicitly re-sort the generated flows before registering
	prep     func(n *topo.Network)
	after    func(n *topo.Network)
}

// determinismDigestResorted is DeterminismDigest with an explicit SortFlows
// pass over Generate's output before registration — the sort-idempotence
// probe behind TestDigestSortInvariant.
func determinismDigestResorted(alg string, seed int64) uint64 {
	return determinismDigest(alg, seed, nil, nil, &hooks{resort: true})
}

func determinismDigest(alg string, seed int64, tel *metrics.Telemetry, plan *fault.Plan, hk *hooks) uint64 {
	p := scaleTopo(Quick)
	p.Seed = seed
	p.Telemetry = tel
	p.Fault = plan
	dumbbell := false
	if hk != nil {
		p.Audit = hk.audit
		p.Guard = hk.guard
		p.Shards = hk.shards
		dumbbell = hk.dumbbell
	}
	var n *topo.Network
	if dumbbell {
		n = topo.Dumbbell(p.WithAlgorithm(alg))
	} else {
		n = topo.TwoDC(p.WithAlgorithm(alg))
	}

	flows, err := workload.Generate(workload.Spec{
		CDF:       workload.Websearch(),
		IntraLoad: 0.5,
		CrossLoad: 0.2,
		HostRate:  n.P.HostRate,
		IntraRate: n.PerHostBisection(),
		CrossRate: n.P.FabricRate,
		Hosts:     n.NumHosts(),
		Duration:  2 * sim.Millisecond,
		Seed:      seed,
	})
	if err != nil {
		panic(err) // fixed valid spec; unreachable
	}
	if hk != nil && hk.resort {
		workload.SortFlows(flows)
	}
	for _, fs := range flows {
		n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
	}
	tel.StartSampling(60 * sim.Millisecond)
	if hk != nil && hk.prep != nil {
		hk.prep(n)
	}
	n.Run(60 * sim.Millisecond)
	if hk != nil && hk.after != nil {
		hk.after(n)
	}

	d := NewDigest()
	d.Add(n.Fired())
	d.Add(uint64(n.Now()))
	d.Add(uint64(n.Table.Len()))
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		d.Add(uint64(f.Info.ID))
		if f.Done {
			d.Add(1)
		} else {
			d.Add(0)
		}
		d.Add(uint64(f.FinishAt))
		d.Add(uint64(f.RxBytes))
	}
	return d.Sum()
}

// Digest is an incremental FNV-1a hash over a sequence of uint64 words.
type Digest struct{ h uint64 }

// NewDigest returns a Digest at the FNV-1a offset basis.
func NewDigest() *Digest { return &Digest{h: 14695981039346656037} }

// Add mixes one word into the digest, little-endian byte by byte.
func (d *Digest) Add(v uint64) {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		d.h = (d.h ^ (v & 0xff)) * prime
		v >>= 8
	}
}

// Sum returns the current hash value.
func (d *Digest) Sum() uint64 { return d.h }
