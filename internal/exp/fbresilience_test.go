package exp

import (
	"testing"
)

// TestFBResilienceAcceptance runs the full fb-resilience matrix (5 algorithms
// × 4 feedback attacks) and asserts the experiment's contract: every flow
// completes cleanly under every attack, the conservation books balance with
// feedback destroyed at host ingress, each attack demonstrably engages, and
// the blackout makes the watchdog decay and then fully recover. The matrix
// runs sharded (one engine per DC), exactly as `mlccfig -fig fb-resilience`
// does by default — feedback-fault plans are fully shard-safe.
func TestFBResilienceAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("20 dumbbell runs")
	}
	for _, ph := range fbPhases {
		for _, alg := range resilAlgs {
			ph, alg := ph, alg
			t.Run(ph.name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				o := fbResilienceRun(alg, ph.name, ph.plan(1), 1, 2)
				if o.done != 4 || o.aborted != 0 {
					t.Errorf("done=%v aborted=%v, want every flow completing cleanly", o.done, o.aborted)
				}
				if o.auditProblems != 0 {
					t.Errorf("auditProblems=%v: feedback drops unbalanced the conservation books", o.auditProblems)
				}
				switch ph.name {
				case "ack-loss", "blackout":
					if o.fbDrops == 0 {
						t.Error("no feedback frames dropped: attack did not engage")
					}
				case "cnp-loss":
					// Only DCQCN paces CNPs; for the rest this phase is a
					// clean-run control and fbDrops is legitimately zero.
					if alg == "dcqcn" && o.fbDrops == 0 {
						t.Error("no CNPs dropped for dcqcn: attack did not engage")
					}
				case "int-corrupt":
					// Only the INT-consuming algorithms carry hop stacks.
					if alg == "mlcc" || alg == "hpcc" || alg == "powertcp" {
						if o.fbCorrupts == 0 || o.invalidINT == 0 {
							t.Errorf("fbCorrupts=%v invalidINT=%v: corruption did not engage or ingress validation missed it",
								o.fbCorrupts, o.invalidINT)
						}
					}
				}
				if ph.name == "blackout" {
					if o.wdDecays == 0 || o.wdRecovers == 0 {
						t.Errorf("wdDecays=%v wdRecovers=%v: watchdog did not decay and recover across the blackout",
							o.wdDecays, o.wdRecovers)
					}
					if o.wdRecovers != o.wdDecays {
						t.Errorf("wdRecovers=%v != wdDecays=%v: decay not fully unwound after feedback resumed",
							o.wdRecovers, o.wdDecays)
					}
				} else if o.wdDecays != 0 {
					// Thinned-but-present feedback must never trip the
					// watchdog: silence, not loss rate, is the trigger.
					t.Errorf("wdDecays=%v under %s: watchdog fired without a feedback blackout", o.wdDecays, ph.name)
				}
			})
		}
	}
}
