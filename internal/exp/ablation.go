package exp

import (
	"sync"

	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{
		ID:    "ablation",
		Title: "MLCC ablation: contribution of the near-source and DQM loops",
		Run:   runAblation,
	})
}

// runAblation quantifies the design choices DESIGN.md calls out, by removing
// one loop at a time:
//
//   - Sender-side scenario (fig7 shape): without the near-source loop the
//     sender only learns about sender-side congestion when it inflates the
//     DCI queue; convergence degrades and the queue grows.
//   - Receiver-side scenario (fig9 shape): without DQM nothing drains the
//     receiver-side DCI queue below "whatever accumulated during the first
//     RTT_C"; the standing queue stays large.
func runAblation(cfg Config) (*Report, error) {
	rep := &Report{ID: "ablation", Title: "MLCC ablation: contribution of the near-source and DQM loops"}
	variants := []string{topo.AlgMLCC, topo.AlgMLCCNoNS, topo.AlgMLCCNoDQM}

	window := 50 * sim.Millisecond
	steady := 35 * sim.Millisecond
	if cfg.Scale == Quick {
		window, steady = 36*sim.Millisecond, 24*sim.Millisecond
	}

	type out struct {
		jainSend, meanSend float64 // sender-side scenario
		qRecvMB            float64 // receiver-side scenario steady queue
		jainRecv           float64
		mans               []*metrics.Manifest
	}
	results := map[string]*out{}
	var mu sync.Mutex
	jobs := make([]func(), 0, 2*len(variants))
	for _, alg := range variants {
		alg := alg
		jobs = append(jobs, func() {
			// Sender-side bottleneck: 8×25G into one 100G uplink.
			p := topo.DefaultParams().WithAlgorithm(alg)
			p.Seed = cfg.Seed
			p.SpinesPerDC = 1
			p.HostsPerLeaf = 8
			var pairs [][2]int
			n := topo.TwoDC(p)
			for i := 0; i < 8; i++ {
				pairs = append(pairs, [2]int{n.RackHost(1, i), n.RackHost(5, i)})
			}
			starts := make([]sim.Time, len(pairs))
			for i := range starts {
				starts[i] = sim.Millisecond
			}
			res := runConvergence(cfg, p, pairs, starts, window, steady)
			_, _, mean := summarize(res.rates)
			mu.Lock()
			o := results[alg]
			if o == nil {
				o = &out{}
				results[alg] = o
			}
			o.jainSend = res.jain
			o.meanSend = mean / 1e9
			o.mans = append(o.mans, res.man)
			mu.Unlock()
		})
		jobs = append(jobs, func() {
			// Receiver-side bottleneck: 4 flows into two 25G servers.
			p := topo.DefaultParams().WithAlgorithm(alg)
			p.Seed = cfg.Seed
			var pairs [][2]int
			n := topo.TwoDC(p)
			for i := 0; i < 4; i++ {
				pairs = append(pairs, [2]int{n.RackHost(1, i), n.RackHost(5, i/2)})
			}
			starts := make([]sim.Time, len(pairs))
			for i := range starts {
				starts[i] = sim.Millisecond
			}
			res := runConvergence(cfg, p, pairs, starts, window, steady)
			mu.Lock()
			o := results[alg]
			if o == nil {
				o = &out{}
				results[alg] = o
			}
			o.qRecvMB = res.dciQ.AvgAfter(steady) / (1 << 20)
			o.jainRecv = res.jain
			o.mans = append(o.mans, res.man)
			mu.Unlock()
		})
	}
	parallel(cfg.Workers, jobs)

	tbl := NewTable("Loop contributions", "", "sendJain", "sendMeanGbps", "recvJain", "recvDciQMB")
	for _, alg := range variants {
		o := results[alg]
		tbl.AddRow(alg, o.jainSend, o.meanSend, o.jainRecv, o.qRecvMB)
		rep.Manifests = append(rep.Manifests, o.mans...)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("mlcc-nons must show degraded sender-side convergence; mlcc-nodqm must show a much larger standing receiver-side DCI queue")
	return rep, nil
}
