package exp

import (
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

// evalAlgs is the comparison set of the paper's large-scale evaluation.
var evalAlgs = []string{topo.AlgMLCC, topo.AlgDCQCN, topo.AlgTimely, topo.AlgHPCC, topo.AlgPowerTCP}

// avgFCTReport builds a Fig. 11/12/15-style report: average FCT of intra-
// and cross-DC traffic per algorithm, one table per traffic pattern.
func avgFCTReport(id, title string, cfg Config, intra, cross float64, longHaul sim.Time) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	for _, cdf := range []string{"websearch", "hadoop"} {
		res, err := fctForAlgs(cfg, evalAlgs, cdf, intra, cross, longHaul, false)
		if err != nil {
			return nil, err
		}
		tbl := NewTable("Avg FCT, "+cdf+" traffic", "ms", "intra", "cross", "overall")
		for _, alg := range evalAlgs {
			r := res[alg]
			ai, _ := r.Col.Avg(stats.Intra)
			ac, _ := r.Col.Avg(stats.Cross)
			ao, _ := r.Col.Avg(nil)
			tbl.AddRow(alg, msOf(ai), msOf(ac), msOf(ao))
			if r.Unfinished > 0 {
				rep.AddNote("%s/%s: %d of %d flows unfinished at deadline", alg, cdf, r.Unfinished, r.Flows)
			}
			rep.Manifests = append(rep.Manifests, r.Manifest)
			rep.AddWarning("%s", r.Warning)
		}
		rep.Tables = append(rep.Tables, tbl)
		// The paper reports MLCC's reduction vs each baseline.
		red := NewTable("MLCC avg-FCT reduction vs baseline, "+cdf, "%", "intra", "cross")
		mi, _ := res[topo.AlgMLCC].Col.Avg(stats.Intra)
		mc, _ := res[topo.AlgMLCC].Col.Avg(stats.Cross)
		for _, alg := range evalAlgs[1:] {
			bi, _ := res[alg].Col.Avg(stats.Intra)
			bc, _ := res[alg].Col.Avg(stats.Cross)
			red.AddRow(alg, pctReduction(mi, bi), pctReduction(mc, bc))
		}
		rep.Tables = append(rep.Tables, red)
	}
	return rep, nil
}

// pctReduction returns how much smaller mlcc is than base, in percent.
func pctReduction(mlcc, base sim.Time) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (1 - float64(mlcc)/float64(base))
}

// tailFCTReport builds a Fig. 13/14-style report: 99.9th-percentile FCT per
// flow-size bucket, intra and cross tables per traffic pattern.
func tailFCTReport(id, title string, cfg Config, intra, cross float64) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	buckets := stats.DefaultBuckets()
	cols := make([]string, len(buckets))
	for i, b := range buckets {
		cols[i] = b.Label
	}
	for _, cdf := range []string{"websearch", "hadoop"} {
		res, err := fctForAlgs(cfg, evalAlgs, cdf, intra, cross, 0, false)
		if err != nil {
			return nil, err
		}
		for _, scope := range []struct {
			name   string
			filter stats.Filter
		}{{"intra", stats.Intra}, {"cross", stats.Cross}} {
			tbl := NewTable("99.9% FCT, "+cdf+" "+scope.name, "ms", cols...)
			for _, alg := range evalAlgs {
				rows := res[alg].Col.ByBucket(scope.filter, buckets)
				vals := make([]float64, len(rows))
				for i, r := range rows {
					vals[i] = msOf(r.P999)
				}
				tbl.AddRow(alg, vals...)
			}
			rep.Tables = append(rep.Tables, tbl)
		}
		for _, alg := range evalAlgs {
			rep.Manifests = append(rep.Manifests, res[alg].Manifest)
			rep.AddWarning("%s", res[alg].Warning)
		}
	}
	return rep, nil
}

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Avg FCT, heavy load (intra 50% + cross 20%)",
		Run: func(cfg Config) (*Report, error) {
			return avgFCTReport("fig11", "Avg FCT, heavy load (intra 50% + cross 20%)", cfg, 0.5, 0.2, 0)
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Avg FCT, light load (intra 30% + cross 10%)",
		Run: func(cfg Config) (*Report, error) {
			return avgFCTReport("fig12", "Avg FCT, light load (intra 30% + cross 10%)", cfg, 0.3, 0.1, 0)
		},
	})
	register(Experiment{
		ID:    "fig13",
		Title: "99.9% FCT by flow size, heavy load",
		Run: func(cfg Config) (*Report, error) {
			return tailFCTReport("fig13", "99.9% FCT by flow size, heavy load", cfg, 0.5, 0.2)
		},
	})
	register(Experiment{
		ID:    "fig14",
		Title: "99.9% FCT by flow size, light load",
		Run: func(cfg Config) (*Report, error) {
			return tailFCTReport("fig14", "99.9% FCT by flow size, light load", cfg, 0.3, 0.1)
		},
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Avg FCT, heavy load, 1 ms cross-DC link delay",
		Run: func(cfg Config) (*Report, error) {
			return avgFCTReport("fig15", "Avg FCT, heavy load, 1 ms cross-DC link delay", cfg, 0.5, 0.2, sim.Millisecond)
		},
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Testbed dumbbell, Hadoop traffic: DCQCN vs MLCC",
		Run:   runFig16,
	})
}

// runFig16 reproduces the §4.6 testbed comparison on the simulated dumbbell.
func runFig16(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig16", Title: "Testbed dumbbell, Hadoop traffic: DCQCN vs MLCC"}
	algs := []string{topo.AlgMLCC, topo.AlgDCQCN}
	// The 4-server dumbbell needs substantial load before queues form;
	// the paper's testbed runs its Hadoop mix near saturation.
	res, err := fctForAlgs(cfg, algs, "hadoop", 0.7, 0.5, 0, true)
	if err != nil {
		return nil, err
	}
	tbl := NewTable("Avg FCT, dumbbell testbed (hadoop)", "ms", "intra", "cross", "overall")
	for _, alg := range algs {
		ai, _ := res[alg].Col.Avg(stats.Intra)
		ac, _ := res[alg].Col.Avg(stats.Cross)
		ao, _ := res[alg].Col.Avg(nil)
		tbl.AddRow(alg, msOf(ai), msOf(ac), msOf(ao))
		rep.Manifests = append(rep.Manifests, res[alg].Manifest)
		rep.AddWarning("%s", res[alg].Warning)
	}
	rep.Tables = append(rep.Tables, tbl)
	mo, _ := res[topo.AlgMLCC].Col.Avg(nil)
	do, _ := res[topo.AlgDCQCN].Col.Avg(nil)
	rep.AddNote("MLCC improves overall avg FCT by %.1f%% vs DCQCN (paper: 19.3%%)", pctReduction(mo, do))
	return rep, nil
}
