package exp

import (
	"testing"

	"mlcc/internal/fault"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

// accountPackets checks the data-frame conservation equation on a drained
// network: every data frame a host ever transmitted was delivered to a host,
// dropped at switch admission, or destroyed by the fault layer — and every
// pooled packet is back in the pool. A leak in any fault path (pipe flush,
// mid-serialization cut, corruption discard, abort teardown) fails here.
func accountPackets(t *testing.T, n *topo.Network) {
	t.Helper()
	var sent, recv int64
	for _, h := range n.Hosts {
		sent += h.SentData
		recv += h.RecvData
	}
	var swDrops int64
	for _, sw := range n.Leaves {
		swDrops += sw.Drops
	}
	for _, sw := range n.Spines {
		swDrops += sw.Drops
	}
	for _, sw := range n.DCIs {
		swDrops += sw.Drops
	}
	faultData := n.Faults.DataDropped()
	if sent != recv+swDrops+faultData {
		t.Errorf("data frames unaccounted: sent=%d != recv=%d + switchDrops=%d + faultDrops=%d (missing %d)",
			sent, recv, swDrops, faultData, sent-recv-swDrops-faultData)
	}
	if out := n.Pool.Outstanding(); out != 0 {
		t.Errorf("packet pool leak: %d packets still checked out at quiescence", out)
	}
}

// TestFaultConservationFlap cuts the dumbbell long haul mid-run, restores
// it, and runs a lossy window — then drains to quiescence and audits packet
// conservation. Flows must complete (via go-back-N) despite the faults.
func TestFaultConservationFlap(t *testing.T) {
	for _, alg := range []string{topo.AlgMLCC, topo.AlgDCQCN} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			p := topo.DefaultParams().WithAlgorithm(alg)
			p.Seed = 1
			p.HostsPerLeaf = 2
			p.LongHaulDelay = 500 * sim.Microsecond
			p.Fault = &fault.Plan{
				Seed: 42,
				Events: []fault.Event{
					{At: 2 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown},
					{At: 3 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
					{At: 5 * sim.Millisecond, Link: "longhaul", Action: fault.Degrade,
						RateFactor: 0.25, ExtraDelay: 200 * sim.Microsecond, Jitter: 20 * sim.Microsecond},
					{At: 8 * sim.Millisecond, Link: "longhaul", Action: fault.Restore},
				},
				Loss: []fault.LossRule{
					{Link: "longhaul", Prob: 5e-4, Start: 9 * sim.Millisecond, End: 14 * sim.Millisecond},
				},
			}
			n := topo.Dumbbell(p)
			flows := []int64{8 << 20, 8 << 20, 2 << 20}
			n.AddFlow(0, 2, flows[0], sim.Millisecond)
			n.AddFlow(3, 1, flows[1], sim.Millisecond)
			n.AddFlow(0, 1, flows[2], sim.Millisecond)
			n.Run(300 * sim.Millisecond)

			for id := 1; id <= n.Table.Len(); id++ {
				f := n.Table.Get(pkt.FlowID(id))
				if !f.Done || f.Aborted {
					t.Errorf("flow %d: done=%v aborted=%v — should complete despite flap",
						id, f.Done, f.Aborted)
				}
			}
			if n.Faults.TotalDrops() == 0 {
				t.Error("flap destroyed no frames: fault plan did not engage")
			}
			var retrans int64
			for _, h := range n.Hosts {
				retrans += h.Retransmits
			}
			if retrans == 0 {
				t.Error("no retransmissions despite a 1 ms blackout of the long haul")
			}
			accountPackets(t, n)
		})
	}
}

// TestFaultConservationAbort blackholes the long haul past the cross flow's
// retransmission budget, then restores it so the parked queue drains. The
// sender must abort; the stranded frames must still be fully accounted for.
func TestFaultConservationAbort(t *testing.T) {
	p := topo.DefaultParams().WithAlgorithm(topo.AlgDCQCN)
	p.Seed = 1
	p.HostsPerLeaf = 2
	p.LongHaulDelay = 100 * sim.Microsecond
	p.RTOMin = 500 * sim.Microsecond
	p.RTOMax = 2 * sim.Millisecond
	p.MaxRetrans = 3
	p.PFCEnabled = false // lossless backpressure would park the sender instead
	p.Fault = &fault.Plan{
		Seed: 7,
		Events: []fault.Event{
			{At: 2 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown},
			{At: 40 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
		},
	}
	n := topo.Dumbbell(p)
	cross := n.AddFlow(0, 2, 16<<20, sim.Millisecond)
	intra := n.AddFlow(2, 3, 2<<20, sim.Millisecond)
	n.Run(300 * sim.Millisecond)

	if !cross.Aborted {
		t.Errorf("cross flow survived a 38 ms blackout with MaxRetrans=3 (done=%v)", cross.Done)
	}
	if cross.FinishAt <= 2*sim.Millisecond || cross.FinishAt >= 40*sim.Millisecond {
		t.Errorf("abort at %v, want inside the blackout window (2 ms, 40 ms)", cross.FinishAt)
	}
	if !intra.Done || intra.Aborted {
		t.Errorf("intra flow: done=%v aborted=%v — must be untouched by the cut", intra.Done, intra.Aborted)
	}
	if got := n.Hosts[0].Aborted; got != 1 {
		t.Errorf("host 0 aborted-flow counter = %d, want 1", got)
	}
	if n.Hosts[0].ActiveSends() != 0 {
		t.Errorf("aborted flow still in the send list: ActiveSends = %d", n.Hosts[0].ActiveSends())
	}
	accountPackets(t, n)
}
