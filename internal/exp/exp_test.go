package exp

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablation", "loadsweep"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q not registered", w)
		}
	}
	// Numeric ordering: fig2 before fig10.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if pos["fig2"] > pos["fig10"] {
		t.Error("IDs not numerically sorted")
	}
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok || e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := NewTable("demo", "ms", "a", "b")
	tbl.AddRow("x", 1, 2)
	tbl.AddRow("y", 3) // short row: missing cell is zero
	if v, ok := tbl.Get("x", "b"); !ok || v != 2 {
		t.Fatalf("Get(x,b) = %v, %v", v, ok)
	}
	if v, ok := tbl.Get("y", "b"); !ok || v != 0 {
		t.Fatalf("Get(y,b) = %v, %v", v, ok)
	}
	if _, ok := tbl.Get("z", "a"); ok {
		t.Fatal("Get on missing row succeeded")
	}
	if _, ok := tbl.Get("x", "c"); ok {
		t.Fatal("Get on missing col succeeded")
	}
	if rows := tbl.Rows(); len(rows) != 2 || rows[0] != "x" {
		t.Fatalf("Rows = %v", rows)
	}
	s := tbl.String()
	if !strings.Contains(s, "demo (ms)") || !strings.Contains(s, "x") {
		t.Fatalf("String = %q", s)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "r", Title: "T"}
	rep.Tables = append(rep.Tables, NewTable("t", "", "c"))
	rep.AddNote("hello %d", 7)
	s := rep.String()
	if !strings.Contains(s, "== r: T ==") || !strings.Contains(s, "hello 7") {
		t.Fatalf("report string %q", s)
	}
}

func TestParallelRunsAllJobs(t *testing.T) {
	var n atomic.Int64
	jobs := make([]func(), 50)
	for i := range jobs {
		jobs[i] = func() { n.Add(1) }
	}
	parallel(4, jobs)
	if n.Load() != 50 {
		t.Fatalf("ran %d jobs", n.Load())
	}
	// Serial path.
	n.Store(0)
	parallel(1, jobs[:3])
	if n.Load() != 3 {
		t.Fatalf("serial ran %d", n.Load())
	}
	// Degenerate inputs.
	parallel(0, nil)
	parallel(100, jobs[:2])
}

func TestFigNumParsing(t *testing.T) {
	if figNum("fig13") != 13 || figNum("fig2") != 2 || figNum("ablation") != 0 {
		t.Fatal("figNum broken")
	}
}

// TestFig10EndToEnd is the cheapest full experiment: DQM sequential burst.
func TestFig10EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Lookup("fig10")
	rep, err := e.Run(Config{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	peak, ok := rep.Tables[0].Get("theta=18ms", "peak")
	if !ok || peak <= 1 {
		t.Fatalf("peak queue = %v MB, expected a burst of several MB", peak)
	}
	final, _ := rep.Tables[0].Get("theta=18ms", "final")
	if final > peak/2 {
		t.Fatalf("queue did not drain: peak %v, final %v", peak, final)
	}
	if len(rep.Series) == 0 || rep.Series[0].Len() == 0 {
		t.Fatal("no series recorded")
	}
}

// TestFig16EndToEnd checks the dumbbell comparison: MLCC must not lose to
// DCQCN overall on the testbed scenario.
func TestFig16EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Lookup("fig16")
	rep, err := e.Run(Config{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, ok1 := rep.Tables[0].Get("mlcc", "overall")
	d, ok2 := rep.Tables[0].Get("dcqcn", "overall")
	if !ok1 || !ok2 {
		t.Fatal("missing rows")
	}
	if m <= 0 || d <= 0 {
		t.Fatalf("degenerate FCTs: mlcc=%v dcqcn=%v", m, d)
	}
	if m > d*1.05 {
		t.Fatalf("MLCC overall FCT %v worse than DCQCN %v", m, d)
	}
}

// TestFCTCacheReuse verifies the memoization that lets fig11 and fig13 share
// simulations. Reuse is observed through the cache itself (the canonical
// entry survives the second call); the results handed out must be clones,
// never the same pointer (see TestFCTCacheHitsDoNotAlias).
func TestFCTCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ClearCache()
	k := fctKey{alg: "mlcc", cdf: "hadoop", intra: 0.1, cross: 0.05, dumbbell: true, scale: Quick, seed: 1}
	r1, err := runFCT(k)
	if err != nil {
		t.Fatal(err)
	}
	canon, ok := fctCache.Load(k)
	if !ok {
		t.Fatal("run was not memoized")
	}
	r2, err := runFCT(k)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fctCache.Load(k); got != canon {
		t.Fatal("cache hit replaced the canonical entry instead of reusing it")
	}
	if r1 == r2 {
		t.Fatal("cache handed out aliased results")
	}
	if a1, _ := r1.Col.Avg(nil); func() bool { a2, _ := r2.Col.Avg(nil); return a1 != a2 }() {
		t.Fatal("clone of cached run diverged from original")
	}
	ClearCache()
	r3, err := runFCT(k)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fctCache.Load(k); got == canon {
		t.Fatal("ClearCache did not drop the entry")
	}
	// Determinism: same seed, same results.
	a1, _ := r1.Col.Avg(nil)
	a3, _ := r3.Col.Avg(nil)
	if a1 != a3 {
		t.Fatalf("non-deterministic rerun: %v vs %v", a1, a3)
	}
}

func TestRunFCTUnknownWorkload(t *testing.T) {
	if _, err := runFCT(fctKey{alg: "mlcc", cdf: "nope", scale: Quick}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
