package exp

import (
	"sync"

	"mlcc/internal/fault"
	"mlcc/internal/host"
	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

// resilAlgs are the algorithms compared under faults.
var resilAlgs = []string{topo.AlgMLCC, topo.AlgDCQCN, topo.AlgTimely, topo.AlgHPCC, topo.AlgPowerTCP}

func init() {
	register(Experiment{
		ID:    "resilience",
		Title: "Resilience: long-haul flap, degradation and WAN loss (recovery time, aborts, tail FCT)",
		Run:   runResilience,
	})
}

// Flap-phase timeline (dumbbell, 500 µs long haul). The long-lived cross
// flows see, in order: a clean baseline, a 2 ms blackout, a half-rate +100 µs
// degraded stretch, and a 1e-3 Bernoulli loss window; probes measure tail
// latency throughout.
const (
	resilFlapWindow  = 40 * sim.Millisecond
	resilDownAt      = 8 * sim.Millisecond
	resilUpAt        = 10 * sim.Millisecond
	resilDegradeAt   = 16 * sim.Millisecond
	resilRestoreAt   = 22 * sim.Millisecond
	resilLossStart   = 26 * sim.Millisecond
	resilLossEnd     = 32 * sim.Millisecond
	resilLossProb    = 1e-3
	resilSteadyAfter = 34 * sim.Millisecond
)

func resilFlapPlan(seed int64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Events: []fault.Event{
			{At: resilDownAt, Link: "longhaul", Action: fault.LinkDown},
			{At: resilUpAt, Link: "longhaul", Action: fault.LinkUp},
			{At: resilDegradeAt, Link: "longhaul", Action: fault.Degrade,
				RateFactor: 0.5, ExtraDelay: 100 * sim.Microsecond},
			{At: resilRestoreAt, Link: "longhaul", Action: fault.Restore},
		},
		Loss: []fault.LossRule{
			{Link: "longhaul", Prob: resilLossProb, Start: resilLossStart, End: resilLossEnd},
		},
	}
}

// runResilience drives two dumbbell phases per algorithm: a flap phase (down,
// up, degrade, lossy — does cross-DC goodput come back, and how fast?) and a
// blackout phase (long haul down for good — do senders abort cleanly while
// intra-DC traffic is untouched?).
func runResilience(cfg Config) (*Report, error) {
	rep := &Report{ID: "resilience", Title: "Resilience under long-haul faults (dumbbell)"}

	flapTbl := NewTable("Flap + degrade + loss (cross-DC goodput)", "",
		"preGbps", "recoveryMs", "steadyGbps", "probeP99ms", "faultDrops")
	blackTbl := NewTable("Permanent blackout (sender give-up)", "",
		"abortedFlows", "intraDone", "crossDone", "faultDrops")

	type out struct {
		pre, recMs, steady, p99 float64
		flapDrops               float64
		aborted, intraDone      float64
		crossDone, blackDrops   float64
		crossS                  *stats.Series
		mans                    []*metrics.Manifest
	}
	var mu sync.Mutex
	results := map[string]*out{}

	jobs := make([]func(), 0, len(resilAlgs))
	for _, alg := range resilAlgs {
		alg := alg
		jobs = append(jobs, func() {
			o := &out{}
			o.pre, o.recMs, o.steady, o.p99, o.flapDrops, o.crossS, o.mans =
				resilFlapRun(alg, cfg.Seed, cfg.Shards, o.mans)
			o.aborted, o.intraDone, o.crossDone, o.blackDrops, o.mans =
				resilBlackoutRun(alg, cfg.Seed, cfg.Shards, o.mans)
			mu.Lock()
			results[alg] = o
			mu.Unlock()
		})
	}
	parallel(cfg.Workers, jobs)

	for _, alg := range resilAlgs {
		o := results[alg]
		flapTbl.AddRow(alg, o.pre, o.recMs, o.steady, o.p99, o.flapDrops)
		blackTbl.AddRow(alg, o.aborted, o.intraDone, o.crossDone, o.blackDrops)
		rep.Series = append(rep.Series, o.crossS)
		rep.Manifests = append(rep.Manifests, o.mans...)
	}
	rep.Tables = append(rep.Tables, flapTbl, blackTbl)
	rep.AddNote("flap timeline: down %v, up %v, degrade(0.5x,+100us) %v-%v, loss %.0e %v-%v",
		resilDownAt, resilUpAt, resilDegradeAt, resilRestoreAt, resilLossProb, resilLossStart, resilLossEnd)
	rep.AddNote("recoveryMs is time from link-up until cross goodput first regains 90%% of its pre-fault average")
	rep.AddNote("expected shape: every algorithm recovers after the flap; blackout aborts exactly the cross flows and leaves intra-DC traffic untouched")
	rep.AddNote("blackout runs drop-mode (PFC off): lossless backpressure from a blackholed port parks senders with nothing outstanding, which by design never spends retransmission budget")
	return rep, nil
}

// resilFlapRun executes the flap phase for one algorithm and returns
// (pre-fault Gbps, recovery ms, post-fault steady Gbps, probe p99 ms, fault
// drops, cross goodput series, manifests).
func resilFlapRun(alg string, seed int64, shards int, mans []*metrics.Manifest) (pre, recMs, steady, p99, drops float64, crossS *stats.Series, outMans []*metrics.Manifest) {
	p := topo.DefaultParams().WithAlgorithm(alg)
	p.Seed = seed
	p.HostsPerLeaf = 2 // hosts 0,1 = DC 0; hosts 2,3 = DC 1
	p.LongHaulDelay = 500 * sim.Microsecond
	p.Shards = shards
	p.Fault = resilFlapPlan(seed)
	sc := newScenarioIn(topo.Dumbbell, p, resilFlapWindow, 100*sim.Microsecond)

	// Long-lived cross flows in both directions (hosts 0,1 are DC 0).
	sc.addGroupFlow("cross-"+alg, 0, 2, 1<<30, 500*sim.Microsecond)
	sc.addGroupFlow("cross-"+alg, 3, 1, 1<<30, 500*sim.Microsecond)
	crossS = sc.trackGroupRate("cross-" + alg)

	// Short cross probes, one per millisecond, sampling tail latency across
	// every fault regime.
	var probes []*host.Flow
	for t := sim.Millisecond; t < resilFlapWindow-4*sim.Millisecond; t += sim.Millisecond {
		probes = append(probes, sc.n.AddFlow(1, 3, 64<<10, t))
	}
	sc.run(resilFlapWindow)

	pre = avgBetween(crossS, 3*sim.Millisecond, resilDownAt) / 1e9
	if at, ok := firstAtOrAbove(crossS, resilUpAt, 0.9*pre*1e9); ok {
		recMs = (at - resilUpAt).Millis()
	} else {
		recMs = -1 // never recovered inside the window
	}
	steady = avgBetween(crossS, resilSteadyAfter, resilFlapWindow) / 1e9

	col := stats.NewFCTCollector()
	for _, f := range probes {
		if f.Done {
			col.Add(stats.FCTSample{Size: f.Info.Size, FCT: f.FCT(), Cross: true, Start: f.Start})
		}
	}
	if v, ok := col.Percentile(nil, 0.99); ok {
		p99 = v.Millis()
	}
	drops = float64(sc.n.Faults.TotalDrops())
	return pre, recMs, steady, p99, drops, crossS, append(mans, sc.manifest())
}

// resilBlackoutRun executes the blackout phase for one algorithm: the long
// haul goes down at 5 ms and never returns; cross senders must exhaust their
// retransmission budget and abort while intra-DC flows complete untouched.
func resilBlackoutRun(alg string, seed int64, shards int, mans []*metrics.Manifest) (aborted, intraDone, crossDone, drops float64, outMans []*metrics.Manifest) {
	const window = 30 * sim.Millisecond
	p := topo.DefaultParams().WithAlgorithm(alg)
	p.Seed = seed
	p.HostsPerLeaf = 2 // hosts 0,1 = DC 0; hosts 2,3 = DC 1
	p.LongHaulDelay = 100 * sim.Microsecond
	p.Shards = shards
	p.RTOMin = 500 * sim.Microsecond
	p.RTOMax = 2 * sim.Millisecond
	p.MaxRetrans = 4
	// Lossless mode blackholes differently: retransmissions pile up behind
	// the dead DCI port, PFC backpressure reaches the hosts, and a parked
	// sender (nothing outstanding) intentionally spends no retransmission
	// budget — flows stall forever instead of aborting. Drop-mode isolates
	// the give-up machinery itself.
	p.PFCEnabled = false
	p.Fault = &fault.Plan{
		Seed:   seed,
		Events: []fault.Event{{At: 4 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown}},
	}
	tel := metrics.New(metrics.Options{Metrics: true})
	p.Telemetry = tel
	n := topo.Dumbbell(p)

	intra := []*host.Flow{
		n.AddFlow(0, 1, 2<<20, sim.Millisecond),
		n.AddFlow(2, 3, 2<<20, sim.Millisecond),
	}
	// 16 MB at 25 Gbps needs ~5.4 ms of wire time: both cross flows are
	// mid-transfer when the long haul is cut at 4 ms.
	cross := []*host.Flow{
		n.AddFlow(0, 2, 16<<20, 1500*sim.Microsecond),
		n.AddFlow(1, 3, 16<<20, 1500*sim.Microsecond),
	}
	n.Run(window)

	for _, h := range n.Hosts {
		aborted += float64(h.Aborted)
	}
	for _, f := range intra {
		if f.Done {
			intraDone++
		}
	}
	for _, f := range cross {
		if f.Done {
			crossDone++
		}
	}
	drops = float64(n.Faults.TotalDrops())

	m := metrics.NewManifest("mlccfig")
	m.Algorithm = n.Alg.Name
	m.Seed = seed
	m.FillSim(n.Now(), n.Fired())
	m.AddCounters(tel.Registry())
	return aborted, intraDone, crossDone, drops, append(mans, m)
}

// avgBetween averages series values with timestamps in [lo, hi).
func avgBetween(s *stats.Series, lo, hi sim.Time) float64 {
	var sum float64
	n := 0
	for i, t := range s.T {
		if t >= lo && t < hi {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// firstAtOrAbove returns the first sample time >= from whose value reaches v.
func firstAtOrAbove(s *stats.Series, from sim.Time, v float64) (sim.Time, bool) {
	for i, t := range s.T {
		if t >= from && s.V[i] >= v {
			return t, true
		}
	}
	return 0, false
}
