package exp

import (
	"testing"

	"mlcc/internal/stats"
)

// TestFCTCacheHitsDoNotAlias is the regression test for the cache-aliasing
// bug: runFCT used to hand every caller the same *fctResult, so the
// avg-FCT and tail-FCT figures sharing a run could corrupt each other
// through the shared collector and manifest. Now each call — hit or miss —
// must get an independent clone: mutating one result's collector, manifest
// counters, and scalar fields must leave a fresh recall untouched.
func TestFCTCacheHitsDoNotAlias(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	k := fctKey{
		alg: "mlcc", cdf: "websearch", intra: 0.3, cross: 0.1,
		dumbbell: true, scale: Quick, seed: 321,
	}
	a, err := runFCT(k) // miss: runs the simulation
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFCT(k) // hit: recalled from cache
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.Col == b.Col || a.Manifest == b.Manifest {
		t.Fatal("cache returned aliased results")
	}
	wantLen, wantFlows := b.Col.Len(), b.Flows
	wantEvents := b.Manifest.EventsFired

	// Vandalize the first result every way a consumer could.
	a.Col.Add(stats.FCTSample{Size: 1, Aborted: true})
	a.Flows = -1
	a.Manifest.EventsFired = 0
	a.Manifest.Config["shards"] = "corrupted"
	a.Manifest.Counters = map[string]float64{"bogus": 1}

	c, err := runFCT(k) // fresh recall must be pristine
	if err != nil {
		t.Fatal(err)
	}
	if c.Col.Len() != wantLen {
		t.Errorf("recalled collector has %d samples, want %d", c.Col.Len(), wantLen)
	}
	if c.Flows != wantFlows {
		t.Errorf("recalled Flows = %d, want %d", c.Flows, wantFlows)
	}
	if c.Manifest.EventsFired != wantEvents {
		t.Errorf("recalled EventsFired = %d, want %d", c.Manifest.EventsFired, wantEvents)
	}
	if v := c.Manifest.Config["shards"]; v == "corrupted" {
		t.Error("recalled manifest config aliased the mutated map")
	}
	if _, ok := c.Manifest.Counters["bogus"]; ok {
		t.Error("recalled manifest counters aliased the mutated map")
	}
}

// TestFCTKeyCoversShards pins that the shard count participates in
// memoization: a shards=2 run must not be served a shards=1 cache entry
// (the digests match, but the manifest must record how the run was made).
func TestFCTKeyCoversShards(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	base := fctKey{
		alg: "mlcc", cdf: "websearch", intra: 0.3, cross: 0.1,
		dumbbell: true, scale: Quick, seed: 321,
	}
	sharded := base
	sharded.shards = 2
	a, err := runFCT(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFCT(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Manifest.Config["shards"]; got != 1 {
		t.Errorf("shards=0 run recorded shards=%v, want 1", got)
	}
	if got := b.Manifest.Config["shards"]; got != 2 {
		t.Errorf("shards=2 run recorded shards=%v, want 2", got)
	}
	// Same physical scenario: the sharded run must reproduce the flow
	// outcome of the single-engine one.
	if a.Col.Len() != b.Col.Len() || a.Unfinished != b.Unfinished {
		t.Errorf("sharded run diverged: %d/%d samples, %d/%d unfinished",
			b.Col.Len(), a.Col.Len(), b.Unfinished, a.Unfinished)
	}
}
