package exp

import (
	"testing"
)

// TestNodeResilienceAcceptance runs the node-resilience matrix (algorithms ×
// 4 node-fault cells) and pins the experiment's contract: every flow
// completes (crashed transfers resume from the acked prefix, switch blackouts
// ride through on go-back-N), the conservation books close with a failed
// switch draining its buffers into the ledger, the fault injector fires each
// scripted event exactly once, and the guard plane observes without ever
// halting a survivable run. Runs sharded (one engine per DC), exactly as
// `mlccfig -fig node-resilience` does — node-fault plans are shard-safe.
func TestNodeResilienceAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("20 dumbbell runs")
	}
	algs := shardTestAlgs(t)

	for _, ph := range nodePhases {
		if ph.name == "pause-storm" {
			continue // pinned separately below: storm counts are summed across algorithms
		}
		for _, alg := range algs {
			ph, alg := ph, alg
			t.Run(ph.name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				o := nodeResilienceRun(alg, ph.name, ph.plan(1), ph.guard(), 1, 2)
				if o.done != 4 || o.aborted != 0 {
					t.Errorf("done=%v aborted=%v, want all 4 flows resuming to completion", o.done, o.aborted)
				}
				if o.auditProblems != 0 {
					t.Errorf("auditProblems=%v: node fault unbalanced the conservation books", o.auditProblems)
				}
				if o.stalls != 0 || o.deadlocks != 0 {
					t.Errorf("stalls=%v deadlocks=%v: guard tripped on a survivable outage", o.stalls, o.deadlocks)
				}
				switch ph.name {
				case "sender-crash", "receiver-crash":
					if o.crashes != 1 || o.restarts != 1 {
						t.Errorf("crashes=%v restarts=%v, want the scripted pair firing once each", o.crashes, o.restarts)
					}
					if o.swFails != 0 || o.swRecovers != 0 {
						t.Errorf("swFails=%v swRecovers=%v in a crash cell, want 0", o.swFails, o.swRecovers)
					}
				case "switch-failure":
					if o.swFails != 1 || o.swRecovers != 1 {
						t.Errorf("swFails=%v swRecovers=%v, want the scripted pair firing once each", o.swFails, o.swRecovers)
					}
					if o.crashes != 0 || o.restarts != 0 {
						t.Errorf("crashes=%v restarts=%v in the switch cell, want 0", o.crashes, o.restarts)
					}
					if o.retransmits == 0 {
						t.Error("retransmits=0 across a 3 ms switch blackout: go-back-N never engaged")
					}
				}
			})
		}
	}
}

// TestNodeResiliencePauseStorm pins the storm cell: with the long haul
// degraded to 1% for 10 ms, at least one baseline controller must hold its
// upstream pause duty over the detector threshold (MLCC's near-source loop
// legitimately tends to dodge it — that contrast is the figure's point), and
// the detection must stay an observation: all flows still finish, no halt.
func TestNodeResiliencePauseStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm cell runs every algorithm")
	}
	var ph = nodePhases[3]
	if ph.name != "pause-storm" {
		t.Fatalf("nodePhases[3] = %q, want pause-storm", ph.name)
	}
	var storms float64
	for _, alg := range resilAlgs {
		o := nodeResilienceRun(alg, ph.name, ph.plan(1), ph.guard(), 1, 2)
		if o.done != 4 || o.aborted != 0 || o.auditProblems != 0 {
			t.Errorf("%s: done=%v aborted=%v auditProblems=%v, want a clean ride-through", alg, o.done, o.aborted, o.auditProblems)
		}
		if o.stalls != 0 {
			t.Errorf("%s: stalls=%v — the storm cell must detect, not halt", alg, o.stalls)
		}
		if alg != "mlcc" {
			storms += o.storms
		}
	}
	if storms == 0 {
		t.Error("no baseline tripped the storm detector across a 10 ms pause plateau")
	}
}
