package exp

import (
	"testing"

	"mlcc/internal/metrics"
)

// Golden digests for the Quick-scale TwoDC websearch scenario at seed 1.
// These were recorded on the pre-optimization engine (closure-per-event,
// allocation-per-event) and must stay byte-identical under the pooled
// engine and the exact-integer rate math: any drift means the hot-path
// rewrite changed simulation behavior, not just its cost.
var goldenDigests = map[string]uint64{
	"mlcc":     0x09637aee4f197d1d,
	"dcqcn":    0x31c58b9691e02e33,
	"timely":   0xae754158f99ff098,
	"hpcc":     0x340e25fff57fa2f6,
	"powertcp": 0xe0361237786393b0,
}

// TestDeterminismDigestGolden pins the end-to-end simulation outcome per
// algorithm. mlcc and dcqcn always run; the remaining algorithms are
// skipped under -short to keep the quick loop fast.
func TestDeterminismDigestGolden(t *testing.T) {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			if got, want := DeterminismDigest(alg, 1), goldenDigests[alg]; got != want {
				t.Errorf("digest(%s, seed=1) = %#016x, want %#016x", alg, got, want)
			}
		})
	}
}

// TestDeterminismDigestStable runs the same scenario twice in one process:
// identical seeds must give identical digests, or event ordering leaked
// nondeterminism (map iteration, pooled-object aliasing, ...).
func TestDeterminismDigestStable(t *testing.T) {
	a := DeterminismDigest("mlcc", 7)
	b := DeterminismDigest("mlcc", 7)
	if a != b {
		t.Fatalf("same-seed digests differ: %#016x vs %#016x", a, b)
	}
	if c := DeterminismDigest("mlcc", 8); c == a {
		t.Errorf("different seeds collided: %#016x", a)
	}
}

// TestDigestTelemetryInvariant proves passive telemetry is behaviour-free:
// running with the registry and flight recorder attached must reproduce the
// golden digest bit for bit. If a metrics call ever schedules an event,
// draws randomness, or perturbs packet handling, this fails.
func TestDigestTelemetryInvariant(t *testing.T) {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			tel := metrics.New(metrics.Options{Metrics: true, FlightRecorderSize: 1024})
			got := DeterminismDigestTel(alg, 1, tel)
			if want := goldenDigests[alg]; got != want {
				t.Errorf("digest with telemetry = %#016x, want golden %#016x", got, want)
			}
			if tel.Registry().Len() == 0 {
				t.Error("telemetry registry stayed empty: topology did not register instruments")
			}
			if tel.Recorder().Recorded() == 0 {
				t.Error("flight recorder saw no events despite traffic")
			}
		})
	}
}
