package exp

import (
	"testing"

	"mlcc/internal/fault"
	"mlcc/internal/guard"
	"mlcc/internal/metrics"
	"mlcc/internal/sim"
)

// Golden digests for the Quick-scale TwoDC websearch scenario at seed 1.
// Originally recorded on the pre-optimization engine (closure-per-event,
// allocation-per-event); re-recorded once when workload.Generate's output
// order became the canonical (Start, Src, Dst, Size) sort — a deliberate
// workload-semantics change that permutes flow-ID assignment (and with it
// ECMP path choice), not an engine-behavior change. They must otherwise stay
// byte-identical under engine rewrites: any drift means simulation behavior
// changed, not just its cost.
var goldenDigests = map[string]uint64{
	"mlcc":     0xfb4dc940d7a95c6c,
	"dcqcn":    0xb40ae246b82c8a39,
	"timely":   0xb3814b5c1ed641ca,
	"hpcc":     0x44a67a9069212e43,
	"powertcp": 0x69e5bea3b7b8d357,
}

// TestDigestSortInvariant is the satellite's golden-digest check that the
// Generate sort itself is what the figures now run on: registering Generate's
// output re-sorted through SortFlows (an explicit idempotence pass) must not
// move the digest. If Generate ever stops emitting the canonical order, the
// re-sort would permute flow IDs and this diverges from golden.
func TestDigestSortInvariant(t *testing.T) {
	got := determinismDigestResorted("mlcc", 1)
	if want := goldenDigests["mlcc"]; got != want {
		t.Errorf("digest with explicit re-sort = %#016x, want golden %#016x (Generate output is not canonically sorted)", got, want)
	}
}

// TestDeterminismDigestGolden pins the end-to-end simulation outcome per
// algorithm. mlcc and dcqcn always run; the remaining algorithms are
// skipped under -short to keep the quick loop fast.
func TestDeterminismDigestGolden(t *testing.T) {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			if got, want := DeterminismDigest(alg, 1), goldenDigests[alg]; got != want {
				t.Errorf("digest(%s, seed=1) = %#016x, want %#016x", alg, got, want)
			}
		})
	}
}

// TestDeterminismDigestStable runs the same scenario twice in one process:
// identical seeds must give identical digests, or event ordering leaked
// nondeterminism (map iteration, pooled-object aliasing, ...).
func TestDeterminismDigestStable(t *testing.T) {
	a := DeterminismDigest("mlcc", 7)
	b := DeterminismDigest("mlcc", 7)
	if a != b {
		t.Fatalf("same-seed digests differ: %#016x vs %#016x", a, b)
	}
	if c := DeterminismDigest("mlcc", 8); c == a {
		t.Errorf("different seeds collided: %#016x", a)
	}
}

// TestDigestFaultPlanInvariant proves the fault layer is pay-for-what-you-
// break: an empty plan installs nothing, and a vacuous plan (zero-probability
// loss plus an event beyond the run horizon) installs hooks and schedules an
// event yet must still reproduce the golden digest bit for bit, because
// vacuous rules draw no randomness and an unfired event changes neither the
// fired-event count nor the final clock.
func TestDigestFaultPlanInvariant(t *testing.T) {
	plans := map[string]*fault.Plan{
		"empty": {},
		"vacuous": {
			Seed: 99,
			Events: []fault.Event{
				// The digest scenario stops at 60 ms; 10 s never fires.
				{At: 10 * sim.Second, Link: "longhaul", Action: fault.LinkDown},
			},
			Loss: []fault.LossRule{{Link: "longhaul", Prob: 0}},
		},
	}
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for name, plan := range plans {
		for _, alg := range algs {
			name, plan, alg := name, plan, alg
			t.Run(name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				if got, want := DeterminismDigestPlan(alg, 1, plan), goldenDigests[alg]; got != want {
					t.Errorf("digest with %s fault plan = %#016x, want golden %#016x", name, got, want)
				}
			})
		}
	}
}

// TestDigestFaultPlanStable pins the other half of the determinism contract:
// an ACTIVE fault plan must be reproducible (same seed, same plan, same
// digest) and must actually change the outcome relative to the fault-free
// run — otherwise the plan silently failed to apply.
func TestDigestFaultPlanStable(t *testing.T) {
	plan := &fault.Plan{
		Seed: 5,
		Events: []fault.Event{
			{At: 3 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown},
			{At: 4 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
		},
		Loss: []fault.LossRule{{Link: "longhaul", Prob: 1e-3, Start: 5 * sim.Millisecond}},
	}
	a := DeterminismDigestPlan("mlcc", 1, plan)
	b := DeterminismDigestPlan("mlcc", 1, plan)
	if a != b {
		t.Fatalf("same seed+plan digests differ: %#016x vs %#016x", a, b)
	}
	if a == goldenDigests["mlcc"] {
		t.Errorf("active fault plan left the digest at the fault-free golden %#016x", a)
	}
}

// TestDigestFeedbackPlanVacuous proves the reverse-path fault layer is
// pay-for-what-you-break: a plan whose feedback rules can never fire still
// installs ingress filters (and the INT validation behind them) on every
// host, yet must reproduce the golden digests byte for byte. The "zero" rule
// is vacuous (no probability, no delay) and draws no randomness;
// "beyond-horizon" carries a total blackout whose window opens after the
// 60 ms scenario ends. Either drifting means the defenses perturb healthy
// runs — exactly what they must not do. (This is also why the watchdog is
// not auto-armed by feedback plans: armed at 4·RTT it decays through
// genuine PFC-pause silences on µs-RTT flows and moves dcqcn/timely off
// golden.)
func TestDigestFeedbackPlanVacuous(t *testing.T) {
	plans := map[string]*fault.Plan{
		"zero": {Seed: 42, Feedback: []fault.FeedbackRule{{Host: "*"}}},
		"beyond-horizon": {Seed: 42, Feedback: []fault.FeedbackRule{
			{Host: "*", Drop: 1, Start: 10 * sim.Second},
		}},
	}
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for name, plan := range plans {
		for _, alg := range algs {
			name, plan, alg := name, plan, alg
			t.Run(name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				if got, want := DeterminismDigestPlan(alg, 1, plan), goldenDigests[alg]; got != want {
					t.Errorf("digest with %s feedback plan = %#016x, want golden %#016x", name, got, want)
				}
			})
		}
	}
}

// TestDigestFeedbackPlanStable pins the active half: a plan that drops and
// corrupts feedback must be reproducible seed-for-seed and must actually move
// the outcome off the fault-free golden — otherwise it silently failed to
// bind at host ingress.
func TestDigestFeedbackPlanStable(t *testing.T) {
	plan := &fault.Plan{
		Seed: 5,
		Feedback: []fault.FeedbackRule{
			{Host: "*", Drop: 0.2, Corrupt: 0.3, Start: 2 * sim.Millisecond},
		},
	}
	a := DeterminismDigestPlan("hpcc", 1, plan)
	b := DeterminismDigestPlan("hpcc", 1, plan)
	if a != b {
		t.Fatalf("same seed+plan digests differ: %#016x vs %#016x", a, b)
	}
	if a == goldenDigests["hpcc"] {
		t.Errorf("active feedback plan left the digest at the fault-free golden %#016x", a)
	}
}

// TestDigestGuardInvariant proves the guard plane is behaviour-free: running
// with the storm watchdog, deadlock detector and progress supervisor all
// armed (default configuration, scaled by the cross-DC RTT) must reproduce
// the golden digest bit for bit. The plane reads only at quiescent points and
// schedules nothing, so both the guard-off run and the armed-but-untriggered
// run execute the identical event sequence. The aggressive variant arms a
// hair-trigger storm window on top — even a *detected* storm only records
// and reports, so it too must stay golden.
func TestDigestGuardInvariant(t *testing.T) {
	configs := map[string]*guard.Config{
		"defaults": {},
		"aggressive": {
			Every:       50 * sim.Microsecond,
			StormWindow: 500 * sim.Microsecond,
			StormFrac:   0.05,
		},
	}
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for name, gc := range configs {
		for _, alg := range algs {
			name, gc, alg := name, gc, alg
			t.Run(name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				if got, want := DeterminismDigestGuard(alg, 1, gc, 1, false), goldenDigests[alg]; got != want {
					t.Errorf("digest with %s guard = %#016x, want golden %#016x", name, got, want)
				}
			})
		}
	}
}

// TestDigestTelemetryInvariant proves passive telemetry is behaviour-free:
// running with the registry and flight recorder attached must reproduce the
// golden digest bit for bit. If a metrics call ever schedules an event,
// draws randomness, or perturbs packet handling, this fails.
func TestDigestTelemetryInvariant(t *testing.T) {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			tel := metrics.New(metrics.Options{Metrics: true, FlightRecorderSize: 1024})
			got := DeterminismDigestTel(alg, 1, tel)
			if want := goldenDigests[alg]; got != want {
				t.Errorf("digest with telemetry = %#016x, want golden %#016x", got, want)
			}
			if tel.Registry().Len() == 0 {
				t.Error("telemetry registry stayed empty: topology did not register instruments")
			}
			if tel.Recorder().Recorded() == 0 {
				t.Error("flight recorder saw no events despite traffic")
			}
		})
	}
}
