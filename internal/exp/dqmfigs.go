package exp

import (
	"fmt"
	"sync"

	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{ID: "fig9", Title: "DQM θ sweep: receiver-side DCI queue under simultaneous burst", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "DQM: receiver-side DCI queue under sequential burst", Run: runFig10})
}

// dqmScenario drives four cross-DC flows into two Rack-5 receivers (two
// flows per 25G server link ⇒ 12.5 Gbps fair share, the paper's Fig. 9b
// setting). Four 25G senders fit the 100G long-haul exactly, so the burst
// accumulates at the receiver-side DCI PFQs, which DQM must then regulate.
func dqmScenario(cfg Config, theta sim.Time, starts func(i int) sim.Time, size int64, window sim.Time) (*stats.Series, *scenario) {
	p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
	p.Seed = cfg.Seed
	p.Shards = cfg.Shards
	p.DQM.Theta = theta
	sc := newScenario(p, window, 200*sim.Microsecond)
	n := sc.n
	for i := 0; i < 4; i++ {
		src := n.RackHost(1, i)
		dst := n.RackHost(5, i/2)
		sc.addGroupFlow("flows", src, dst, size, starts(i))
	}
	dci1 := n.DCIs[1]
	q := sc.trackGauge(fmt.Sprintf("dciQ[theta=%v]", theta), func() float64 {
		return float64(dci1.BufferUsed())
	})
	sc.run(window)
	return q, sc
}

// runFig9 sweeps θ ∈ {6, 18, 30 ms} with D_t = 1 ms on a simultaneous burst
// and reports peak and steady queue; 9(b)'s per-flow check is the note: at
// 12.5 Gbps fair rate the managed per-flow queue should approach
// R·D_t ≈ 1.5 MB.
func runFig9(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig9", Title: "DQM θ sweep, simultaneous burst"}
	window := 80 * sim.Millisecond
	if cfg.Scale == Quick {
		window = 50 * sim.Millisecond
	}
	thetas := []sim.Time{6 * sim.Millisecond, 18 * sim.Millisecond, 30 * sim.Millisecond}
	tbl := NewTable("Receiver-side DCI queue vs θ (D_t = 1 ms)", "MB", "peak", "steady", "perFlowSteady")

	type out struct {
		theta sim.Time
		q     *stats.Series
		per   float64
		man   *metrics.Manifest
		warn  string
	}
	results := make([]*out, len(thetas))
	var mu sync.Mutex
	jobs := make([]func(), 0, len(thetas))
	for i, th := range thetas {
		i, th := i, th
		jobs = append(jobs, func() {
			q, sc := dqmScenario(cfg, th, func(int) sim.Time { return sim.Millisecond }, 1<<30, window)
			// Per-flow steady backlog: average PFQ backlog per live flow.
			var per float64
			live := 0
			for _, f := range sc.groups["flows"] {
				if b := sc.n.DCIs[1].PFQBacklog(f.Info.ID); b > 0 {
					per += float64(b)
					live++
				}
			}
			if live > 0 {
				per /= float64(live)
			}
			mu.Lock()
			results[i] = &out{theta: th, q: q, per: per / (1 << 20), man: sc.manifest(), warn: sc.warn}
			mu.Unlock()
		})
	}
	parallel(cfg.Workers, jobs)
	for _, o := range results {
		tbl.AddRow(o.theta.String(),
			o.q.Max()/(1<<20),
			o.q.AvgAfter(window-20*sim.Millisecond)/(1<<20),
			o.per)
		rep.Series = append(rep.Series, o.q)
		rep.Manifests = append(rep.Manifests, o.man)
		rep.AddWarning("%s", o.warn)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("expected shape: queue falls from its startup peak to a few MB; θ=6ms is aggressive/jittery, θ=30ms slow, θ=18ms in between")
	rep.AddNote("per-flow steady backlog should approach R·D_t = 12.5Gbps × 1ms ≈ 1.5 MB (paper Fig. 9b)")
	return rep, nil
}

// runFig10 staggers finite flows (sequential burst) at θ=18 ms: the queue is
// regulated while flows are active and drains as they complete.
func runFig10(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "DQM sequential burst, θ = 18 ms"}
	window, size := 100*sim.Millisecond, int64(40<<20)
	if cfg.Scale == Quick {
		window, size = 60*sim.Millisecond, 20<<20
	}
	q, sc := dqmScenario(cfg, 18*sim.Millisecond,
		func(i int) sim.Time { return sim.Millisecond + sim.Time(i)*3*sim.Millisecond },
		size, window)

	tbl := NewTable("Receiver-side DCI queue, sequential burst", "MB", "peak", "mid", "final")
	tbl.AddRow("theta=18ms",
		q.Max()/(1<<20),
		q.AvgAfter(window/2)/(1<<20),
		q.Last()/(1<<20))
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series, q)
	rep.Manifests = append(rep.Manifests, sc.manifest())
	rep.AddWarning("%s", sc.warn)

	done := 0
	for _, f := range sc.groups["flows"] {
		if f.Done {
			done++
		}
	}
	rep.AddNote("%d of 4 finite flows completed; queue must drain toward zero as they finish", done)
	return rep, nil
}
