package exp

import (
	"fmt"
	"sync"

	"mlcc/internal/audit"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	scen "mlcc/internal/scenario"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{
		ID:    "scenario",
		Title: "Scenario matrix: ML collectives, incast, multi-tenant mixes and the high-RTT space-DC profile",
		Run:   runScenarioFig,
	})
}

// scenarioDeadline gives each canonical kind enough room for its closed loop
// to drain: collectives need phases × (cross RTT + barrier poll), and the
// space-DC profile stretches every budget by the ~200 ms RTT plus an RTO-paced
// recovery from its scripted outage.
func scenarioDeadline(kind string) sim.Time {
	switch kind {
	case "spacedc":
		return 2000 * sim.Millisecond
	case "collective":
		return 100 * sim.Millisecond
	default:
		return 60 * sim.Millisecond
	}
}

// scenarioTopo sizes the two-DC fabric for the scenario matrix: Quick keeps
// cells in milliseconds of wall time (8 hosts), Full uses the default 32-host
// fabric so collectives and incasts spread across real racks.
func scenarioTopo(scale Scale, alg string, seed int64, shards int) topo.Params {
	p := topo.DefaultParams().WithAlgorithm(alg)
	if scale == Quick {
		p.SpinesPerDC, p.LeavesPerDC, p.HostsPerLeaf = 2, 2, 2
	}
	p.Seed = seed
	p.Shards = shards
	return p
}

// scenRun is one (kind, algorithm) cell's outcome.
type scenRun struct {
	tenants    *stats.TenantSet
	statuses   []scen.CollectiveStatus
	done       int
	aborted    int
	unfinished int
	pfc, drops int64
	auditProbs []string
	shardWarn  string
	man        *metrics.Manifest
}

// runScenarioCell executes one canonical scenario under one algorithm with
// the conservation audit attached, and collects per-tenant statistics in
// flow-ID order (the shard-safe pattern).
func runScenarioCell(kind, alg string, scale Scale, seed int64, shards int) (*scenRun, error) {
	p := scenarioTopo(scale, alg, seed, shards)
	p.Audit = audit.New()
	tel := metrics.New(metrics.Options{Metrics: true})
	p.Telemetry = tel

	hosts := 2 * p.LeavesPerDC * p.HostsPerLeaf
	plan, err := scen.CanonicalPlan(kind, hosts, seed)
	if err != nil {
		return nil, err
	}
	if plan.Profile != nil && plan.Profile.LongHaul > 0 {
		p.LongHaulDelay = plan.Profile.LongHaul
	}
	p.Fault = plan.FaultPlan(nil)

	n := topo.TwoDC(p)
	r, err := scen.Bind(plan, n)
	if err != nil {
		return nil, err
	}
	n.Run(scenarioDeadline(kind))
	n.MustAudit()

	out := &scenRun{
		tenants:   stats.NewTenantSet(),
		statuses:  r.Statuses(),
		shardWarn: shardWarning(p),
	}
	if p.Audit != nil {
		out.auditProbs = n.AuditProblems()
	}
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		switch {
		case f.Done:
			out.done++
			out.tenants.Add(r.Tag(f.Info.ID), stats.FCTSample{
				Size: f.Info.Size, FCT: f.FCT(), Cross: f.Info.CrossDC, Start: f.Start,
			})
		case f.Aborted:
			out.aborted++
			out.tenants.Add(r.Tag(f.Info.ID), stats.FCTSample{
				Size: f.Info.Size, Cross: f.Info.CrossDC, Start: f.Start, Aborted: true,
			})
		default:
			out.unfinished++
		}
	}
	for _, sw := range n.Leaves {
		out.pfc += sw.PFCPauses
		out.drops += sw.Drops
	}
	for _, sw := range n.Spines {
		out.pfc += sw.PFCPauses
		out.drops += sw.Drops
	}
	for _, sw := range n.DCIs {
		out.pfc += sw.PFCPauses
		out.drops += sw.Drops
	}

	m := metrics.NewManifest("mlccfig")
	m.Algorithm = alg
	m.Workload = "scenario:" + kind
	m.Seed = seed
	m.Flows = n.Table.Len()
	m.FillSim(n.Now(), n.Fired())
	m.AddCounters(tel.Registry())
	out.man = m
	return out, nil
}

// ScenarioDigest folds one canonical scenario run — per-flow completion
// records plus every collective's end state — into a determinism digest, and
// returns the conservation ledger's problem list. The shard-parity tests pin
// digest(shards=1) == digest(shards=2) for every kind: the closed-loop
// barrier machinery must not perturb the event schedule on any shard layout.
func ScenarioDigest(kind, alg string, seed int64, shards int) (uint64, []string, error) {
	p := scenarioTopo(Quick, alg, seed, shards)
	p.Audit = audit.New()
	hosts := 2 * p.LeavesPerDC * p.HostsPerLeaf
	plan, err := scen.CanonicalPlan(kind, hosts, seed)
	if err != nil {
		return 0, nil, err
	}
	if plan.Profile != nil && plan.Profile.LongHaul > 0 {
		p.LongHaulDelay = plan.Profile.LongHaul
	}
	p.Fault = plan.FaultPlan(nil)
	n := topo.TwoDC(p)
	r, err := scen.Bind(plan, n)
	if err != nil {
		return 0, nil, err
	}
	n.Run(scenarioDeadline(kind))
	n.MustAudit()

	d := NewDigest()
	d.Add(n.Fired())
	d.Add(uint64(n.Now()))
	d.Add(uint64(n.Table.Len()))
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		d.Add(uint64(f.Info.ID))
		bits := uint64(0)
		if f.Done {
			bits |= 1
		}
		if f.Aborted {
			bits |= 2
		}
		d.Add(bits)
		d.Add(uint64(f.FinishAt))
		d.Add(uint64(f.RxBytes))
	}
	for _, cs := range r.Statuses() {
		d.Add(uint64(cs.PhasesDone))
		bits := uint64(0)
		if cs.Finished {
			bits |= 1
		}
		if cs.Failed {
			bits |= 2
		}
		d.Add(bits)
		d.Add(uint64(cs.FinishedAt))
	}
	return d.Sum(), n.AuditProblems(), nil
}

// runScenarioFig sweeps the canonical scenario matrix: every kind × every
// algorithm, one acceptance table per kind.
func runScenarioFig(cfg Config) (*Report, error) {
	rep := &Report{ID: "scenario", Title: "Scenario matrix (canonical acceptance plans, audited)"}

	collTbl := NewTable("ML collective: 8-worker cross-DC ring, 4 barrier phases + websearch background", "",
		"phasesDone", "finishMs", "bgAvgUs", "aborted", "done")
	incastTbl := NewTable("Incast + shuffle: near/far N:1 bursts, all-to-all shuffle", "",
		"burstP99us", "farP99ms", "shuffleAvgUs", "drops", "done")
	tenantTbl := NewTable("Multi-tenant: websearch vs hadoop mixes", "",
		"webP99us", "batchP99us", "fairness", "aborted", "done")
	spaceTbl := NewTable("Space DC: 100 ms haul + jitter + 3 ms outage, relay ring + bulk tenant", "",
		"phasesDone", "finishMs", "bulkAvgMs", "aborted", "done")
	tables := map[string]*Table{
		"collective": collTbl, "incast": incastTbl, "tenants": tenantTbl, "spacedc": spaceTbl,
	}

	type key struct{ kind, alg string }
	var mu sync.Mutex
	results := map[key]*scenRun{}
	var firstErr error

	var jobs []func()
	for _, kind := range scen.Kinds() {
		for _, alg := range resilAlgs {
			kind, alg := kind, alg
			jobs = append(jobs, func() {
				out, err := runScenarioCell(kind, alg, cfg.Scale, cfg.Seed, cfg.Shards)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("scenario %s/%s: %w", kind, alg, err)
					}
					return
				}
				results[key{kind, alg}] = out
			})
		}
	}
	parallel(cfg.Workers, jobs)
	if firstErr != nil {
		return nil, firstErr
	}

	cell := func(o *scenRun, kind string) []float64 {
		t := o.tenants
		switch kind {
		case "collective":
			cs := o.statuses[0]
			bg, _ := t.AvgFCT("bg")
			return []float64{float64(cs.PhasesDone), msOf(cs.FinishedAt), usOf(bg),
				float64(o.aborted), float64(o.done)}
		case "incast":
			bp99, _ := t.Percentile("burst", 0.99)
			fp99, _ := t.Percentile("far-burst", 0.99)
			sh, _ := t.AvgFCT("shuffle")
			return []float64{usOf(bp99), msOf(fp99), usOf(sh),
				float64(o.drops), float64(o.done)}
		case "tenants":
			wp99, _ := t.Percentile("web", 0.99)
			bp99, _ := t.Percentile("batch", 0.99)
			return []float64{usOf(wp99), usOf(bp99), t.Fairness(),
				float64(o.aborted), float64(o.done)}
		default: // spacedc
			cs := o.statuses[0]
			bulk, _ := t.AvgFCT("bulk")
			return []float64{float64(cs.PhasesDone), msOf(cs.FinishedAt), msOf(bulk),
				float64(o.aborted), float64(o.done)}
		}
	}
	for _, kind := range scen.Kinds() {
		for _, alg := range resilAlgs {
			o := results[key{kind, alg}]
			tables[kind].AddRow(alg, cell(o, kind)...)
			rep.Manifests = append(rep.Manifests, o.man)
			rep.AddWarning("%s", o.shardWarn)
			for _, prob := range o.auditProbs {
				rep.AddWarning("scenario %s/%s audit: %s", kind, alg, prob)
			}
		}
	}
	rep.Tables = append(rep.Tables, collTbl, incastTbl, tenantTbl, spaceTbl)
	rep.AddNote("every cell runs a canonical scenario plan (internal/scenario.CanonicalPlan) with the conservation audit attached; audit violations surface as warnings")
	rep.AddNote("collective barriers are closed-loop: a phase launches only after every tensor flow of the previous phase completed (quiescent poll, shard-invariant)")
	rep.AddNote("expected shape: all collectives finish their planned phases, no aborts outside the space-DC outage, tenant fairness in (0,1]")
	return rep, nil
}
