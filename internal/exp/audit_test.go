package exp

import (
	"fmt"
	"strings"
	"testing"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

// TestDigestAuditInvariant proves the conservation ledger is behaviour-free:
// running the digest scenario with the audit plane attached must reproduce
// the golden digest bit for bit (the ledger schedules no events and draws no
// randomness) AND report zero conservation violations. mlcc and dcqcn always
// run; the remaining algorithms are skipped under -short.
func TestDigestAuditInvariant(t *testing.T) {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			got, probs := DeterminismDigestAudit(alg, 1)
			if want := goldenDigests[alg]; got != want {
				t.Errorf("digest with audit = %#016x, want golden %#016x", got, want)
			}
			for _, p := range probs {
				t.Errorf("conservation violation: %s", p)
			}
		})
	}
}

// auditedFlapRun is the TestFaultConservationFlap scenario with the
// conservation ledger attached: long-haul blackout, degradation, and a lossy
// window on the dumbbell, then a drain to quiescence. shards picks the
// engine layout (1 = single engine, 2 = one per DC).
func auditedFlapRun(alg string, shards int) *topo.Network {
	p := topo.DefaultParams().WithAlgorithm(alg)
	p.Seed = 1
	p.HostsPerLeaf = 2
	p.LongHaulDelay = 500 * sim.Microsecond
	p.Shards = shards
	p.Audit = audit.New()
	p.Fault = &fault.Plan{
		Seed: 42,
		Events: []fault.Event{
			{At: 2 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown},
			{At: 3 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
			{At: 5 * sim.Millisecond, Link: "longhaul", Action: fault.Degrade,
				RateFactor: 0.25, ExtraDelay: 200 * sim.Microsecond, Jitter: 20 * sim.Microsecond},
			{At: 8 * sim.Millisecond, Link: "longhaul", Action: fault.Restore},
		},
		Loss: []fault.LossRule{
			{Link: "longhaul", Prob: 5e-4, Start: 9 * sim.Millisecond, End: 14 * sim.Millisecond},
		},
	}
	n := topo.Dumbbell(p)
	n.AddFlow(0, 2, 8<<20, sim.Millisecond)
	n.AddFlow(3, 1, 8<<20, sim.Millisecond)
	n.AddFlow(0, 1, 2<<20, sim.Millisecond)
	n.Run(300 * sim.Millisecond)
	return n
}

// TestAuditCleanUnderFaults runs every algorithm through the resilience flap
// scenario with the ledger attached and requires zero conservation
// violations — the acceptance proof that the byte-level accounting survives
// link cuts, degradation, Bernoulli loss and go-back-N recovery, on one
// engine and sharded (one engine per DC with the merged ledgers still
// closing clean).
func TestAuditCleanUnderFaults(t *testing.T) {
	algs := []string{"mlcc", "dcqcn"}
	if !testing.Short() {
		algs = append(algs, "timely", "hpcc", "powertcp")
	}
	for _, alg := range algs {
		for _, shards := range []int{1, 2} {
			alg, shards := alg, shards
			t.Run(fmt.Sprintf("%s/shards%d", alg, shards), func(t *testing.T) {
				t.Parallel()
				n := auditedFlapRun(alg, shards)
				if shards == 2 && n.ShardCount() != 2 {
					t.Fatalf("fault plan forced fallback: ShardCount = %d, want 2", n.ShardCount())
				}
				// The ledger's per-link and prefix checks hold at any instant;
				// AuditProblems only insists on zero in-flight when the pools
				// actually drained. Timely recovers so slowly from the loss
				// window that its 8 MB flows outlive the deadline — legitimate,
				// so full drain is required only of the algorithms that converge.
				drained := n.Drained()
				if !drained && (alg == "mlcc" || alg == "dcqcn") {
					t.Error("pools not drained at quiescence")
				}
				for _, p := range n.AuditProblems() {
					t.Errorf("conservation violation: %s", p)
				}
				aud := n.Audit()
				if n.Faults.TotalDrops() == 0 {
					t.Error("fault plan did not engage: no frames destroyed")
				}
				var injected, delivered, faultData int64
				for _, r := range aud.Flows() {
					injected += r.InjectedPkts
					delivered += r.DeliveredPkts
					faultData += r.CorruptPkts + r.DownPkts
				}
				if injected == 0 || delivered == 0 {
					t.Fatalf("ledger saw no traffic: injected=%d delivered=%d", injected, delivered)
				}
				// Cross-check the ledger against the hosts' own counters.
				var sent, recv int64
				for _, h := range n.Hosts {
					sent += h.SentData
					recv += h.RecvData
				}
				if injected != sent || delivered != recv {
					t.Errorf("ledger disagrees with hosts: injected=%d sent=%d delivered=%d recv=%d",
						injected, sent, delivered, recv)
				}
				if got := n.Faults.DataDropped(); faultData != got {
					t.Errorf("ledger fault-drop buckets %d != injector data drops %d", faultData, got)
				}
				if drained && !strings.Contains(aud.Summary(), "flows=3 done=3") {
					t.Errorf("summary: %s", aud.Summary())
				}
			})
		}
	}
}

// TestAuditCleanUnderAbort attaches the ledger to the blackout-abort
// scenario: the cross flow exhausts its retransmission budget and the
// stranded bytes must land in the abort bucket with the ledger still clean.
func TestAuditCleanUnderAbort(t *testing.T) {
	p := topo.DefaultParams().WithAlgorithm(topo.AlgDCQCN)
	p.Seed = 1
	p.HostsPerLeaf = 2
	p.LongHaulDelay = 100 * sim.Microsecond
	p.RTOMin = 500 * sim.Microsecond
	p.RTOMax = 2 * sim.Millisecond
	p.MaxRetrans = 3
	p.PFCEnabled = false
	p.Audit = audit.New()
	p.Fault = &fault.Plan{
		Seed: 7,
		Events: []fault.Event{
			{At: 2 * sim.Millisecond, Link: "longhaul", Action: fault.LinkDown},
			{At: 40 * sim.Millisecond, Link: "longhaul", Action: fault.LinkUp},
		},
	}
	n := topo.Dumbbell(p)
	cross := n.AddFlow(0, 2, 16<<20, sim.Millisecond)
	n.AddFlow(2, 3, 2<<20, sim.Millisecond)
	n.Run(300 * sim.Millisecond)

	if !cross.Aborted {
		t.Fatalf("cross flow survived the blackout (done=%v)", cross.Done)
	}
	for _, p := range n.AuditProblems() {
		t.Errorf("conservation violation: %s", p)
	}
	r := n.Audit().Flow(pkt.FlowID(cross.Info.ID))
	if r == nil || !r.Aborted {
		t.Fatalf("ledger missed the abort: %+v", r)
	}
	if r.AbortUnacked <= 0 || r.AckedMax+r.AbortUnacked != r.Size {
		t.Errorf("abort bucket: acked=%d + unacked=%d != size=%d", r.AckedMax, r.AbortUnacked, r.Size)
	}
	if r.DownPkts == 0 {
		t.Error("blackout destroyed no frames of the cross flow")
	}
}
