// Package exp is the benchmark harness: one experiment per table/figure of
// the paper's evaluation. Each experiment builds the appropriate network(s),
// drives the workload, and reports the same rows or series the paper plots.
// Independent simulations within an experiment run concurrently on a worker
// pool — the engines themselves are single-threaded for determinism, so
// parallelism comes from running many engines at once.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

// Scale selects the simulation size. Quick keeps benchmark runs in seconds
// (8 hosts/leaf, short windows); Full is the paper's §4.1 setup (4:1
// oversubscription needs 32 hosts/leaf) for offline regeneration via
// cmd/mlccfig -full.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Config controls one experiment invocation.
type Config struct {
	Scale Scale
	Seed  int64
	// Workers bounds concurrent simulations; 0 = GOMAXPROCS.
	Workers int
	// Shards is the per-DC engine count handed to topo.Params.Shards:
	// 0/1 = single engine, 2 = one engine per datacenter running under the
	// conservative barrier scheduler. Digests are identical either way
	// (TestShardDigestEquality), so this is purely a wall-time knob.
	Shards int
}

// Table is an ordered labelled grid of measurements.
type Table struct {
	Title string
	Unit  string
	Cols  []string
	rows  []tableRow
}

type tableRow struct {
	label string
	vals  []float64
}

// NewTable constructs a table with the given columns.
func NewTable(title, unit string, cols ...string) *Table {
	return &Table{Title: title, Unit: unit, Cols: cols}
}

// AddRow appends a labelled row; vals align with Cols (missing = NaN).
func (t *Table) AddRow(label string, vals ...float64) {
	row := tableRow{label: label, vals: make([]float64, len(t.Cols))}
	copy(row.vals, vals)
	t.rows = append(t.rows, row)
}

// Get returns the value at (rowLabel, col).
func (t *Table) Get(rowLabel, col string) (float64, bool) {
	ci := -1
	for i, c := range t.Cols {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.rows {
		if r.label == rowLabel {
			return r.vals[ci], true
		}
	}
	return 0, false
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.label
	}
	return out
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " (%s)", t.Unit)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s", "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-24s", r.label)
		for _, v := range r.vals {
			fmt.Fprintf(&b, "%14.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	Series []*stats.Series
	Notes  []string

	// Manifests records one run manifest (provenance + final counter
	// snapshot) per underlying simulation, in row order.
	Manifests []*metrics.Manifest

	// Warnings lists degradations the harness noticed — e.g. a requested
	// multi-shard build falling back to one engine. cmd/mlccfig prints them
	// to stderr, mirroring mlccsim's behaviour for the same conditions.
	Warnings []string

	// Failures lists hard problems a figure's runs hit — audit books that
	// did not close, guard-plane stall aborts, unexpected flow aborts.
	// Unlike Warnings these fail the invocation: cmd/mlccfig prints each
	// and exits non-zero.
	Failures []string
}

// AddNote appends a free-form observation line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddFailure appends a failure line; any failure makes cmd/mlccfig exit
// non-zero after printing the report.
func (r *Report) AddFailure(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// AddWarning appends a warning line, skipping empties and duplicates (the
// same fallback fires once per parallel simulation otherwise).
func (r *Report) AddWarning(format string, args ...any) {
	w := fmt.Sprintf(format, args...)
	if w == "" {
		return
	}
	for _, have := range r.Warnings {
		if have == w {
			return
		}
	}
	r.Warnings = append(r.Warnings, w)
}

// shardWarning describes a requested-but-refused multi-shard build, or ""
// when the request was honoured (or none was made). The wording matches
// mlccsim's fallback warning so both tools speak the same vocabulary.
func shardWarning(p topo.Params) string {
	if p.Shards <= 1 {
		return ""
	}
	if why := p.ShardFallback(); why != "" {
		return fmt.Sprintf("shards=%d fell back to a single engine: %s", p.Shards, why)
	}
	return ""
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "series: ")
		for i, s := range r.Series {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s[%d]", s.Name, s.Len())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment regenerates one paper figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// fig2 < fig10 numerically.
		return figNum(out[i]) < figNum(out[j])
	})
	return out
}

func figNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// msOf converts simulation time to milliseconds for table cells.
func msOf(t sim.Time) float64 { return t.Millis() }

// usOf converts simulation time to microseconds for table cells.
func usOf(t sim.Time) float64 { return t.Micros() }
