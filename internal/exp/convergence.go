package exp

import (
	"fmt"

	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{ID: "fig7", Title: "MLCC convergence, sender-side bottleneck (simultaneous & sequential starts)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "MLCC convergence, receiver-side bottleneck with DQM re-convergence", Run: runFig8})
}

// snapshot captures each flow's received bytes so steady-state rates can be
// measured over a trailing window.
func (s *scenario) snapshot(group string) []int64 {
	flows := s.groups[group]
	out := make([]int64, len(flows))
	for i, f := range flows {
		out[i] = f.RxBytes
	}
	return out
}

// ratesSince returns per-flow receive rates (bits/s) since a snapshot taken
// at time from.
func (s *scenario) ratesSince(group string, snap []int64, from sim.Time) []float64 {
	flows := s.groups[group]
	elapsed := (s.n.Eng.Now() - from).Seconds()
	rates := make([]float64, len(flows))
	if elapsed <= 0 {
		return rates
	}
	for i, f := range flows {
		rates[i] = float64(f.RxBytes-snap[i]) * 8 / elapsed
	}
	return rates
}

// convergenceRun drives nFlows long-lived MLCC cross-DC flows with the given
// start times and reports steady-state per-flow rates, the Jain index, and
// per-flow throughput series.
type convergenceResult struct {
	rates []float64 // bits/s, steady state
	jain  float64
	dciQ  *stats.Series
	flows []*stats.Series
	man   *metrics.Manifest
}

func runConvergence(cfg Config, p topo.Params, pairs [][2]int, starts []sim.Time, window, steadyFrom sim.Time) *convergenceResult {
	sc := newScenario(p, window, 200*sim.Microsecond)
	for i, pr := range pairs {
		f := sc.addGroupFlow("flows", pr[0], pr[1], 1<<30, starts[i])
		sc.trackRate(fmt.Sprintf("flow%d", i), func() int64 { return f.RxBytes })
	}
	dci1 := sc.n.DCIs[1]
	dciQ := sc.trackGauge("dciQ", func() float64 {
		return float64(dci1.BufferUsed())
	})

	var snap []int64
	sc.n.Eng.At(steadyFrom, func() { snap = sc.snapshot("flows") })
	sc.run(window)

	res := &convergenceResult{dciQ: dciQ, man: sc.manifest()}
	res.rates = sc.ratesSince("flows", snap, steadyFrom)
	res.jain = stats.JainIndex(res.rates)
	for i := range pairs {
		res.flows = append(res.flows, sc.series[fmt.Sprintf("flow%d", i)])
	}
	return res
}

// runFig7 places the bottleneck in the sender-side datacenter: eight
// senders in Rack 1 share that rack's single 100G uplink toward eight
// receivers in Rack 5. Fair share is 12.5 Gbps per flow.
func runFig7(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig7", Title: "MLCC convergence, sender-side bottleneck"}
	p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
	p.Seed = cfg.Seed
	p.SpinesPerDC = 1
	p.HostsPerLeaf = 8

	window, stagger, steady := 50*sim.Millisecond, 2*sim.Millisecond, 35*sim.Millisecond
	if cfg.Scale == Quick {
		window, stagger, steady = 28*sim.Millisecond, 1500*sim.Microsecond, 18*sim.Millisecond
	}
	const nf = 8
	tbl := NewTable("Steady-state per-flow rate", "Gbps", "min", "max", "mean", "jain")

	build := func() ([][2]int, *topo.Network) {
		n := topo.TwoDC(p)
		var pairs [][2]int
		for i := 0; i < nf; i++ {
			pairs = append(pairs, [2]int{n.RackHost(1, i), n.RackHost(5, i)})
		}
		return pairs, n
	}

	for _, mode := range []string{"simultaneous", "sequential"} {
		pairs, _ := build()
		starts := make([]sim.Time, nf)
		for i := range starts {
			starts[i] = sim.Millisecond
			if mode == "sequential" {
				starts[i] = sim.Millisecond + sim.Time(i)*stagger
			}
		}
		res := runConvergence(cfg, p, pairs, starts, window, steady)
		lo, hi, mean := summarize(res.rates)
		tbl.AddRow(mode, lo/1e9, hi/1e9, mean/1e9, res.jain)
		rep.Series = append(rep.Series, res.flows...)
		rep.Manifests = append(rep.Manifests, res.man)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("fair share is 12.5 Gbps (8×25G offered into one 100G uplink); jain≈1 means converged")
	return rep, nil
}

// runFig8 places the bottleneck in the receiver-side datacenter: four
// cross-DC senders target one 25G receiver. Fair share is 6.25 Gbps; the
// receiver-side DCI queue is managed by DQM after convergence.
func runFig8(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig8", Title: "MLCC convergence, receiver-side bottleneck"}
	p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
	p.Seed = cfg.Seed

	window, stagger, steady := 60*sim.Millisecond, 3*sim.Millisecond, 40*sim.Millisecond
	if cfg.Scale == Quick {
		window, stagger, steady = 36*sim.Millisecond, 2*sim.Millisecond, 24*sim.Millisecond
	}
	const nf = 4
	tbl := NewTable("Steady-state per-flow rate", "Gbps", "min", "max", "mean", "jain", "dciQMB")

	for _, mode := range []string{"simultaneous", "sequential"} {
		n := topo.TwoDC(p)
		dst := n.RackHost(5, 0)
		var pairs [][2]int
		for i := 0; i < nf; i++ {
			pairs = append(pairs, [2]int{n.RackHost(1, i), dst})
		}
		starts := make([]sim.Time, nf)
		for i := range starts {
			starts[i] = sim.Millisecond
			if mode == "sequential" {
				starts[i] = sim.Millisecond + sim.Time(i)*stagger
			}
		}
		res := runConvergence(cfg, p, pairs, starts, window, steady)
		lo, hi, mean := summarize(res.rates)
		tbl.AddRow(mode, lo/1e9, hi/1e9, mean/1e9, res.jain, res.dciQ.AvgAfter(steady)/(1<<20))
		rep.Series = append(rep.Series, res.flows...)
		rep.Series = append(rep.Series, res.dciQ)
		rep.Manifests = append(rep.Manifests, res.man)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("fair share is 6.25 Gbps (4 flows into one 25G server link); DQM holds the DCI queue near R·D_t after convergence")
	return rep, nil
}

// summarize returns (min, max, mean) of a rate vector.
func summarize(rates []float64) (lo, hi, mean float64) {
	if len(rates) == 0 {
		return 0, 0, 0
	}
	lo = rates[0]
	for _, r := range rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		mean += r
	}
	mean /= float64(len(rates))
	return lo, hi, mean
}
