package exp

import (
	"fmt"
	"runtime"
	"sync"
)

// parallel runs jobs concurrently on a bounded worker pool and returns when
// all have finished. Jobs must be independent (each owns its own engine).
//
// A panicking job must not deadlock the pool or vanish into a dead
// goroutine: every job runs under recover, the remaining jobs are drained
// normally, and after all workers exit the first captured panic is re-raised
// on the caller's goroutine, wrapped with the index of the job that died.
// Later panics (possible: workers run concurrently) are dropped — one
// failure is enough to kill the experiment, and the first is the one a
// stack-reading human wants.
func parallel(workers int, jobs []func()) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	type caught struct {
		job int
		val any
	}
	var (
		mu    sync.Mutex
		first *caught
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil {
					first = &caught{job: i, val: r}
				}
				mu.Unlock()
			}
		}()
		jobs[i]()
	}

	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				for j := range ch {
					run(j)
				}
			}()
		}
		for i := range jobs {
			ch <- i
		}
		close(ch)
		wg.Wait()
	}
	if first != nil {
		panic(fmt.Sprintf("exp: job %d panicked: %v", first.job, first.val))
	}
}
