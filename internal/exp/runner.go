package exp

import (
	"runtime"
	"sync"
)

// parallel runs jobs concurrently on a bounded worker pool and returns when
// all have finished. Jobs must be independent (each owns its own engine).
func parallel(workers int, jobs []func()) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			j()
		}
		return
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := range ch {
				j()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}
