package exp

import (
	"sync"

	"mlcc/internal/audit"
	"mlcc/internal/fault"
	"mlcc/internal/guard"
	"mlcc/internal/host"
	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
)

func init() {
	register(Experiment{
		ID:    "node-resilience",
		Title: "Node resilience: host crash/restart, switch failure and PFC pause storms under the guard plane",
		Run:   runNodeResilience,
	})
}

// Node-fault phase timeline (dumbbell, 100 µs long haul). The 16 MB cross
// flows need ≈5 ms of wire time at the 25 Gbps haul, so every fault lands
// mid-transfer. Outages are short against the go-back-N budget (RTO ≈ 0.93 ms
// with exponential backoff against MaxRetrans=16), so nothing aborts: crashes
// park and resume from the acked prefix, switch failures ride through on
// retransmission.
const (
	nodeWindow  = 40 * sim.Millisecond
	nodeFaultAt = 4 * sim.Millisecond
	nodeHealAt  = 8 * sim.Millisecond
	nodeSwHeal  = 7 * sim.Millisecond
	stormStart  = 2 * sim.Millisecond
	stormEnd    = 12 * sim.Millisecond
	// stormFactor throttles the long haul to 1% so the DCI ingress buffer
	// saturates and holds its upstream port paused at a duty cycle no
	// congestion controller can dodge from above its minimum rate.
	stormFactor = 0.01
)

// nodePhases are the cells: each pairs a fault plan with the guard
// configuration it runs under. The crash/failure phases use the guard's
// defaults (nothing should trigger); the pause-storm phase tightens the storm
// window so the sustained pause plateau is detected within the run.
var nodePhases = []struct {
	name  string
	plan  func(seed int64) *fault.Plan
	guard func() *guard.Config
}{
	{"sender-crash", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Nodes: []fault.NodeEvent{
			{At: nodeFaultAt, Node: "host0", Action: fault.HostCrash},
			{At: nodeHealAt, Node: "host0", Action: fault.HostRestart},
		}}
	}, func() *guard.Config { return &guard.Config{} }},
	{"receiver-crash", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Nodes: []fault.NodeEvent{
			{At: nodeFaultAt, Node: "host2", Action: fault.HostCrash},
			{At: nodeHealAt, Node: "host2", Action: fault.HostRestart},
		}}
	}, func() *guard.Config { return &guard.Config{} }},
	{"switch-failure", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Nodes: []fault.NodeEvent{
			{At: nodeFaultAt, Node: "dci0", Action: fault.SwitchFail},
			{At: nodeSwHeal, Node: "dci0", Action: fault.SwitchRecover},
		}}
	}, func() *guard.Config { return &guard.Config{} }},
	{"pause-storm", func(seed int64) *fault.Plan {
		return &fault.Plan{Seed: seed, Events: []fault.Event{
			{At: stormStart, Link: "longhaul", Action: fault.Degrade, RateFactor: stormFactor},
			{At: stormEnd, Link: "longhaul", Action: fault.Restore},
		}}
	}, func() *guard.Config {
		return &guard.Config{
			Every:       50 * sim.Microsecond,
			StormWindow: sim.Millisecond,
			StormFrac:   0.6,
		}
	}},
}

// nodeOutcome is one (algorithm, phase) run's scoreboard.
type nodeOutcome struct {
	done, aborted       float64
	crashes, restarts   float64
	swFails, swRecovers float64
	storms, deadlocks   float64
	stalls              float64
	retransmits         float64
	auditProblems       float64
	series              *stats.Series
	man                 *metrics.Manifest
}

// runNodeResilience compares all five algorithms under each node-fault cell
// on the dumbbell with the guard plane armed and the conservation audit
// attached: do parked transfers resume after a crash, do the books close with
// a switch draining its buffers into the ledger mid-run, and does the storm
// watchdog flag the pause plateau without ever perturbing the run?
func runNodeResilience(cfg Config) (*Report, error) {
	rep := &Report{ID: "node-resilience", Title: "Node-fault resilience under the guard plane (dumbbell, all algorithms)"}

	type key struct{ alg, phase string }
	var mu sync.Mutex
	results := map[key]*nodeOutcome{}

	jobs := make([]func(), 0, len(resilAlgs)*len(nodePhases))
	for _, alg := range resilAlgs {
		for _, ph := range nodePhases {
			alg, ph := alg, ph
			jobs = append(jobs, func() {
				o := nodeResilienceRun(alg, ph.name, ph.plan(cfg.Seed), ph.guard(), cfg.Seed, cfg.Shards)
				mu.Lock()
				results[key{alg, ph.name}] = o
				mu.Unlock()
			})
		}
	}
	parallel(cfg.Workers, jobs)

	for _, ph := range nodePhases {
		tbl := NewTable("Node fault: "+ph.name, "",
			"done", "aborted", "crashes", "restarts", "swFails", "swRecovers",
			"storms", "deadlocks", "stalls", "retrans", "auditProblems")
		for _, alg := range resilAlgs {
			o := results[key{alg, ph.name}]
			tbl.AddRow(alg, o.done, o.aborted, o.crashes, o.restarts, o.swFails, o.swRecovers,
				o.storms, o.deadlocks, o.stalls, o.retransmits, o.auditProblems)
			if o.series != nil {
				rep.Series = append(rep.Series, o.series)
			}
			rep.Manifests = append(rep.Manifests, o.man)
			if o.auditProblems > 0 {
				rep.AddFailure("%s/%s: %d conservation problem(s)", alg, ph.name, int(o.auditProblems))
			}
			if o.stalls > 0 {
				rep.AddFailure("%s/%s: guard stall aborted the run", alg, ph.name)
			}
			if o.aborted > 0 {
				rep.AddFailure("%s/%s: %d flow(s) aborted — outages are sized to ride through", alg, ph.name, int(o.aborted))
			}
		}
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.AddNote("crash cells: host dies at %v and restarts at %v — parked transfers resume from the acked prefix, nothing aborts", nodeFaultAt, nodeHealAt)
	rep.AddNote("switch-failure cell: dci0 drains its buffers into the ledger at %v and recovers at %v; go-back-N rides the blackout on RTO backoff", nodeFaultAt, nodeSwHeal)
	rep.AddNote("pause-storm cell: long haul degraded to %.0f%% over %v-%v; storms>0 shows the guard flagging the sustained PFC pause plateau", stormFactor*100, stormStart, stormEnd)
	rep.AddNote("expected shape: done=4, aborted=0, auditProblems=0 and stalls=0 in every cell; the guard plane reads only at quiescent points and never perturbs the schedule")
	rep.AddNote("MLCC's near-source loop throttles cross senders within a few hundred µs of the degrade, so it alone tends to hold the pause duty below the storm threshold")
	return rep, nil
}

// nodeResilienceRun executes one algorithm under one node-fault cell: two
// 16 MB cross flows straddling the fault window plus two short intra flows,
// with the guard plane armed and the conservation audit attached.
func nodeResilienceRun(alg, phase string, plan *fault.Plan, gc *guard.Config, seed int64, shards int) *nodeOutcome {
	p := topo.DefaultParams().WithAlgorithm(alg)
	p.Seed = seed
	p.HostsPerLeaf = 2 // hosts 0,1 = DC 0; hosts 2,3 = DC 1
	p.LongHaulDelay = 100 * sim.Microsecond
	p.Shards = shards
	p.Fault = plan
	p.Guard = gc
	p.Audit = audit.New()
	sc := newScenarioIn(topo.Dumbbell, p, nodeWindow, 100*sim.Microsecond)

	group := "node:" + alg + ":" + phase
	flows := []*host.Flow{
		sc.addGroupFlow(group, 0, 2, 16<<20, 500*sim.Microsecond),
		sc.addGroupFlow(group, 3, 1, 16<<20, 500*sim.Microsecond),
		sc.n.AddFlow(0, 1, 2<<20, sim.Millisecond),
		sc.n.AddFlow(2, 3, 2<<20, sim.Millisecond),
	}
	o := &nodeOutcome{}
	if phase == "sender-crash" || phase == "pause-storm" {
		o.series = sc.trackGroupRate(group)
	}
	sc.run(nodeWindow)

	for _, f := range flows {
		if f.Done {
			o.done++
		}
		if f.Aborted {
			o.aborted++
		}
	}
	for _, h := range sc.n.Hosts {
		o.retransmits += float64(h.Retransmits)
	}
	inj := sc.n.Faults
	o.crashes = float64(inj.NodeCrashes())
	o.restarts = float64(inj.NodeRestarts())
	o.swFails = float64(inj.SwitchFails())
	o.swRecovers = float64(inj.SwitchRecovers())
	if g := sc.n.Guard; g != nil {
		o.storms = float64(g.Storms)
		o.deadlocks = float64(g.Deadlocks)
		o.stalls = float64(g.Stalls)
	}
	o.auditProblems = float64(len(sc.n.AuditProblems()))
	o.man = sc.manifest()
	return o
}
