package exp

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestParallelPanicDrainsAndRethrows is the regression test for the worker-
// pool panic bug: a panicking job used to kill its worker goroutine with the
// feed loop still blocked on an unbuffered channel, deadlocking the whole
// experiment run (or, with spare workers, silently crashing the process from
// a goroutine with no recover). Now the pool must (a) keep running the
// remaining jobs, and (b) re-panic on the caller's goroutine with the dead
// job's index in the message.
func TestParallelPanicDrainsAndRethrows(t *testing.T) {
	for _, workers := range []int{1, 3} {
		workers := workers
		var ran [8]int32
		jobs := make([]func(), len(ran))
		for i := range jobs {
			i := i
			if i == 2 {
				jobs[i] = func() { panic("boom") }
				continue
			}
			jobs[i] = func() { atomic.AddInt32(&ran[i], 1) }
		}

		got := func() (r any) {
			defer func() { r = recover() }()
			parallel(workers, jobs)
			return nil
		}()
		if got == nil {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		msg, ok := got.(string)
		if !ok || !strings.Contains(msg, "job 2") || !strings.Contains(msg, "boom") {
			t.Errorf("workers=%d: panic %q does not name job 2 and the original value", workers, got)
		}
		for i, c := range ran {
			if i == 2 {
				continue
			}
			if c != 1 {
				t.Errorf("workers=%d: job %d ran %d times after peer panic, want 1", workers, i, c)
			}
		}
	}
}
