package exp

import (
	"sync"

	"mlcc/internal/host"
	"mlcc/internal/metrics"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
	"mlcc/internal/trace"
)

// motivAlgs are the algorithms the paper's motivation experiments examine.
var motivAlgs = []string{topo.AlgDCQCN, topo.AlgPowerTCP}

// scenario is a hand-built experiment on long-lived flows: explicit flow
// placement plus periodic sampling of throughput and queue state. Sampling
// runs on the unified telemetry layer (internal/metrics): every tracked
// series registers as an exp.* instrument and is copied back into the
// *stats.Series the figure code consumes after the run, so each scenario
// also yields a run manifest with the full counter snapshot.
type scenario struct {
	n      *topo.Network
	tel    *metrics.Telemetry
	window sim.Time
	groups map[string][]*host.Flow
	series map[string]*stats.Series
	fills  []func()

	// warn is the shard-fallback warning for this build ("" when none);
	// figures surface it through Report.AddWarning.
	warn string
}

// newScenario builds a two-DC network with telemetry sampling every interval.
func newScenario(p topo.Params, window sim.Time, interval sim.Time) *scenario {
	return newScenarioIn(topo.TwoDC, p, window, interval)
}

// newScenarioIn is newScenario with an explicit topology builder (TwoDC or
// Dumbbell).
func newScenarioIn(build func(topo.Params) *topo.Network, p topo.Params, window sim.Time, interval sim.Time) *scenario {
	tel := metrics.New(metrics.Options{Metrics: true, SampleInterval: interval})
	p.Telemetry = tel
	n := build(p)
	return &scenario{
		n:      n,
		tel:    tel,
		window: window,
		groups: map[string][]*host.Flow{},
		series: map[string]*stats.Series{},
		warn:   shardWarning(p),
	}
}

// addGroupFlow adds a long-lived flow to a named group.
func (s *scenario) addGroupFlow(group string, src, dst int, size int64, start sim.Time) *host.Flow {
	f := s.n.AddFlow(src, dst, size, start)
	s.groups[group] = append(s.groups[group], f)
	return f
}

// trackRate samples fn's monotone byte count as a rate (bits/s) into a named
// series, registered in the telemetry registry as exp.<name>.
func (s *scenario) trackRate(name string, fn func() int64) *stats.Series {
	ser := &stats.Series{Name: name}
	s.series[name] = ser
	reg := "exp." + name
	s.tel.SampleCounterRate(reg, 8, fn)
	s.fills = append(s.fills, func() { ser.T, ser.V = s.tel.Series(reg) })
	return ser
}

// trackGroupRate samples the aggregate receive rate of a flow group (bits/s).
func (s *scenario) trackGroupRate(group string) *stats.Series {
	flows := s.groups[group]
	return s.trackRate("rate:"+group, func() int64 {
		var sum int64
		for _, f := range flows {
			sum += f.RxBytes
		}
		return sum
	})
}

// trackGauge samples an arbitrary gauge, registered as exp.<name>.
func (s *scenario) trackGauge(name string, fn func() float64) *stats.Series {
	ser := &stats.Series{Name: name}
	s.series[name] = ser
	reg := "exp." + name
	s.tel.SampleGauge(reg, trace.Gauge, fn)
	s.fills = append(s.fills, func() { ser.T, ser.V = s.tel.Series(reg) })
	return ser
}

// run starts sampling, executes the scenario to its window end, copies the
// sampled streams into the figure-facing series, and fills the run manifest.
func (s *scenario) run(window sim.Time) {
	s.tel.StartSampling(s.window)
	s.n.Run(window)
	for _, fill := range s.fills {
		fill()
	}
	m := metrics.NewManifest("mlccfig")
	m.Algorithm = s.n.Alg.Name
	m.Seed = s.n.P.Seed
	m.FillSim(s.n.Now(), s.n.Fired())
	m.AddCounters(s.tel.Registry())
	s.tel.Manifest = m
}

// manifest returns the run manifest (filled by run).
func (s *scenario) manifest() *metrics.Manifest { return s.tel.Manifest }

// totalPFC sums PFC pause events across all switches.
func (s *scenario) totalPFC() int64 {
	var sum int64
	for _, sw := range s.n.Leaves {
		sum += sw.PFCPauses
	}
	for _, sw := range s.n.Spines {
		sum += sw.PFCPauses
	}
	for _, sw := range s.n.DCIs {
		sum += sw.PFCPauses
	}
	return sum
}

func init() {
	register(Experiment{ID: "fig2", Title: "Motivation: cross-DC burst overwhelms receiver-side DC and triggers PFC", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "Motivation: unfair bandwidth between intra- and cross-DC flows (sender-side congestion)", Run: runFig3})
	register(Experiment{ID: "fig4", Title: "Motivation: cross-DC flows queue heavily at the receiver-side DCI switch", Run: runFig4})
}

// runFig2 reproduces Experiment 1: at 1 ms four Rack5→Rack6 intra flows, at
// 2 ms four Rack1→Rack6 cross flows; the receiver-side leaf's shallow buffer
// fills and PFC fires, throttling the intra flows.
func runFig2(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig2", Title: "Motivation: PFC triggered by cross-DC bursts (receiver-side congestion)"}
	tbl := NewTable("Receiver-side congestion", "", "intraGbps", "crossGbps", "peakLeafQMB", "pfcPauses")
	window, steady := 30*sim.Millisecond, 20*sim.Millisecond
	if cfg.Scale == Quick {
		window, steady = 20*sim.Millisecond, 12*sim.Millisecond
	}

	var mu sync.Mutex
	jobs := make([]func(), 0, len(motivAlgs))
	type out struct {
		alg                   string
		intraG, crossG, qMB   float64
		pfc                   int64
		leafQ, intraS, crossS *stats.Series
		man                   *metrics.Manifest
		warn                  string
	}
	results := map[string]*out{}
	for _, alg := range motivAlgs {
		alg := alg
		jobs = append(jobs, func() {
			p := topo.DefaultParams().WithAlgorithm(alg)
			p.Seed = cfg.Seed
			p.Shards = cfg.Shards
			sc := newScenario(p, window, 100*sim.Microsecond)
			// Rack 5 → Rack 6 (intra DC1), one flow per server pair.
			for i := 0; i < 4; i++ {
				sc.addGroupFlow("intra", sc.n.RackHost(5, i), sc.n.RackHost(6, i), 1<<30, sim.Millisecond)
			}
			// Rack 1 → Rack 6 (cross), starting at 2 ms.
			for i := 0; i < 4; i++ {
				sc.addGroupFlow("cross", sc.n.RackHost(1, i), sc.n.RackHost(6, i), 1<<30, 2*sim.Millisecond)
			}
			intraS := sc.trackGroupRate("intra")
			crossS := sc.trackGroupRate("cross")
			leaf6 := sc.n.Leaves[5] // rack 6 = global leaf index 5
			leafQ := sc.trackGauge("leafQ:"+alg, func() float64 { return float64(leaf6.BufferUsed()) })
			sc.run(window)

			o := &out{
				alg:    alg,
				intraG: intraS.AvgAfter(steady) / 1e9,
				crossG: crossS.AvgAfter(steady) / 1e9,
				qMB:    leafQ.Max() / (1 << 20),
				pfc:    sc.totalPFC(),
				leafQ:  leafQ, intraS: intraS, crossS: crossS,
				man: sc.manifest(), warn: sc.warn,
			}
			mu.Lock()
			results[alg] = o
			mu.Unlock()
		})
	}
	parallel(cfg.Workers, jobs)
	for _, alg := range motivAlgs {
		o := results[alg]
		tbl.AddRow(alg, o.intraG, o.crossG, o.qMB, float64(o.pfc))
		rep.Series = append(rep.Series, o.leafQ, o.intraS, o.crossS)
		rep.Manifests = append(rep.Manifests, o.man)
		rep.AddWarning("%s", o.warn)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("expected shape: cross-DC arrival at ~5 ms spikes the leaf queue and PFC pause count jumps above zero")
	return rep, nil
}

// runFig3 reproduces Experiment 2: intra flows start at 1 ms, cross flows
// join sequentially from 2 ms; with end-to-end feedback the short-RTT intra
// flows back off first and lose bandwidth.
func runFig3(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig3", Title: "Motivation: intra vs cross unfairness at sender-side bottleneck"}
	algs := append([]string{}, motivAlgs...)
	algs = append(algs, topo.AlgMLCC) // contrast: the paper's fix
	tbl := NewTable("Sender-side sharing (steady state)", "", "intraGbps", "crossGbps", "intraShare")
	window, steady := 40*sim.Millisecond, 25*sim.Millisecond
	if cfg.Scale == Quick {
		window, steady = 26*sim.Millisecond, 16*sim.Millisecond
	}

	var mu sync.Mutex
	type out struct {
		alg            string
		intraG, crossG float64
		intraS, crossS *stats.Series
		man            *metrics.Manifest
		warn           string
	}
	results := map[string]*out{}
	jobs := make([]func(), 0, len(algs))
	for _, alg := range algs {
		alg := alg
		jobs = append(jobs, func() {
			p := topo.DefaultParams().WithAlgorithm(alg)
			p.Seed = cfg.Seed
			p.Shards = cfg.Shards
			// One spine and eight hosts per rack: rack 1's single 100G
			// uplink is the shared sender-side bottleneck (8×25G offered).
			p.SpinesPerDC = 1
			p.HostsPerLeaf = 8
			sc := newScenario(p, window, 100*sim.Microsecond)
			for i := 0; i < 4; i++ {
				sc.addGroupFlow("intra", sc.n.RackHost(1, i), sc.n.RackHost(2, i), 1<<30, sim.Millisecond)
			}
			for i := 0; i < 4; i++ {
				start := 2*sim.Millisecond + sim.Time(i)*2*sim.Millisecond
				sc.addGroupFlow("cross", sc.n.RackHost(1, 4+i), sc.n.RackHost(5, i), 1<<30, start)
			}
			intraS := sc.trackGroupRate("intra")
			crossS := sc.trackGroupRate("cross")
			sc.run(window)
			o := &out{alg: alg,
				intraG: intraS.AvgAfter(steady) / 1e9,
				crossG: crossS.AvgAfter(steady) / 1e9,
				intraS: intraS, crossS: crossS, man: sc.manifest(), warn: sc.warn}
			mu.Lock()
			results[alg] = o
			mu.Unlock()
		})
	}
	parallel(cfg.Workers, jobs)
	for _, alg := range algs {
		o := results[alg]
		share := 0.0
		if o.intraG+o.crossG > 0 {
			share = o.intraG / (o.intraG + o.crossG)
		}
		tbl.AddRow(alg, o.intraG, o.crossG, share)
		rep.Series = append(rep.Series, o.intraS, o.crossS)
		rep.Manifests = append(rep.Manifests, o.man)
		rep.AddWarning("%s", o.warn)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("expected shape: baselines give intra flows well under the fair 0.5 share; MLCC's near-source loop restores it")
	return rep, nil
}

// runFig4 reproduces Experiment 3: eight cross-DC flows converge on one
// receiver; with deep DCI buffers and lagging ECN the receiver-side DCI
// queue oscillates at tens of MB.
func runFig4(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig4", Title: "Motivation: receiver-side DCI switch queue under cross-DC incast"}
	tbl := NewTable("Receiver-side DCI queue", "", "peakQMB", "avgQMB", "finalQMB", "rxGbps")
	window, steady := 100*sim.Millisecond, 10*sim.Millisecond
	if cfg.Scale == Quick {
		window = 60 * sim.Millisecond
	}

	var mu sync.Mutex
	type out struct {
		alg              string
		peak, avg, final float64
		rx               float64
		q, rate          *stats.Series
		man              *metrics.Manifest
		warn             string
	}
	results := map[string]*out{}
	algs := motivAlgs
	jobs := make([]func(), 0, len(algs))
	for _, alg := range algs {
		alg := alg
		jobs = append(jobs, func() {
			p := topo.DefaultParams().WithAlgorithm(alg)
			p.Seed = cfg.Seed
			p.Shards = cfg.Shards
			sc := newScenario(p, window, 100*sim.Microsecond)
			dst := sc.n.RackHost(6, 0)
			for i := 0; i < 4; i++ {
				sc.addGroupFlow("all", sc.n.RackHost(1, i), dst, 1<<30, sim.Millisecond)
				sc.addGroupFlow("all", sc.n.RackHost(4, i), dst, 1<<30, sim.Millisecond)
			}
			rate := sc.trackGroupRate("all")
			dci1 := sc.n.DCIs[1]
			q := sc.trackGauge("dciQ:"+alg, func() float64 {
				return float64(dci1.BufferUsed())
			})
			sc.run(window)
			o := &out{alg: alg,
				peak:  q.Max() / (1 << 20),
				avg:   q.AvgAfter(steady) / (1 << 20),
				final: q.Last() / (1 << 20),
				rx:    rate.AvgAfter(steady) / 1e9,
				q:     q, rate: rate, man: sc.manifest(), warn: sc.warn}
			mu.Lock()
			results[alg] = o
			mu.Unlock()
		})
	}
	parallel(cfg.Workers, jobs)
	for _, alg := range algs {
		o := results[alg]
		tbl.AddRow(alg, o.peak, o.avg, o.final, o.rx)
		rep.Series = append(rep.Series, o.q, o.rate)
		rep.Manifests = append(rep.Manifests, o.man)
		rep.AddWarning("%s", o.warn)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddNote("expected shape: deep-buffer DCI queue builds to tens of MB and oscillates under end-to-end feedback")
	return rep, nil
}
