package metrics

import (
	"strings"
	"testing"

	"mlcc/internal/sim"
)

func ev(i int, k EventKind) Event {
	return Event{T: sim.Time(i) * sim.Microsecond, Kind: k, Node: 1, Port: 0, Flow: int32(i), Val: int64(i)}
}

func TestRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(ev(1, EvDrop)) // must not panic
	if fr.Len() != 0 || fr.Cap() != 0 || fr.Recorded() != 0 || fr.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	if fr.Wants(EvDrop) {
		t.Fatal("nil recorder wants events")
	}
}

func TestRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(ev(i, EvEnqueue))
	}
	if fr.Cap() != 4 || fr.Len() != 4 || fr.Recorded() != 10 {
		t.Fatalf("cap=%d len=%d recorded=%d", fr.Cap(), fr.Len(), fr.Recorded())
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// Oldest-first: the last 4 of 10 records are flows 6,7,8,9.
	for i, e := range evs {
		if int(e.Flow) != 6+i {
			t.Fatalf("events[%d].Flow = %d, want %d", i, e.Flow, 6+i)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 3; i++ {
		fr.Record(ev(i, EvAck))
	}
	if fr.Len() != 3 || fr.Recorded() != 3 {
		t.Fatalf("len=%d recorded=%d", fr.Len(), fr.Recorded())
	}
	evs := fr.Events()
	for i, e := range evs {
		if int(e.Flow) != i {
			t.Fatalf("events[%d].Flow = %d", i, e.Flow)
		}
	}
}

func TestRecorderKindFilter(t *testing.T) {
	fr := NewFlightRecorder(16, EvDrop, EvPFCPause)
	if !fr.Wants(EvDrop) || !fr.Wants(EvPFCPause) || fr.Wants(EvEnqueue) {
		t.Fatal("filter mask wrong")
	}
	fr.Record(ev(1, EvEnqueue)) // filtered out
	fr.Record(ev(2, EvDrop))
	fr.Record(ev(3, EvPFCPause))
	fr.Record(ev(4, EvAck)) // filtered out
	if fr.Len() != 2 {
		t.Fatalf("len = %d", fr.Len())
	}
	for _, e := range fr.Events() {
		if e.Kind != EvDrop && e.Kind != EvPFCPause {
			t.Fatalf("unwanted kind recorded: %v", e.Kind)
		}
	}
}

func TestRecorderSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewFlightRecorder(0)
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvEnqueue: "enq", EvDequeue: "deq", EvDrop: "drop",
		EvPFCPause: "pfc_pause", EvPFCResume: "pfc_resume", EvECNMark: "ecn_mark",
		EvCNP: "cnp", EvAck: "ack", EvRateUpdate: "rate", EventKind(99): "kind(99)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("EventKind(%d) = %q, want %q", k, got, s)
		}
	}
	if MaskOf() != AllKinds {
		t.Error("empty MaskOf != AllKinds")
	}
}

func TestDumpFormat(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Record(ev(1, EvDrop))
	var b strings.Builder
	if err := fr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "last 1 of 1 events (capacity 4)") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "drop") || !strings.Contains(out, "flow=1") {
		t.Fatalf("event line missing: %q", out)
	}
}

func TestViolationDumpsAndPanics(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		fr.Record(ev(i, EvDequeue))
	}
	var b strings.Builder
	prev := SetViolationOutput(&b)
	defer SetViolationOutput(prev)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Violation did not panic")
		}
		if msg, _ := r.(string); msg != "buffer underflow" {
			t.Fatalf("panic value = %v", r)
		}
		out := b.String()
		if !strings.Contains(out, "invariant violation: buffer underflow") {
			t.Fatalf("violation header missing: %q", out)
		}
		if !strings.Contains(out, "last 5 of 5 events") {
			t.Fatalf("dump missing: %q", out)
		}
	}()
	Violation(fr, "buffer underflow")
}

func TestViolationNilRecorderStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil-recorder Violation did not panic")
		}
	}()
	Violation(nil, "boom")
}
