package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mlcc/internal/sim"
)

// TestShardRecorders pins the per-shard recorder contract: index 0 is the
// primary recorder, further shards get fresh rings with the same capacity
// and kind filter, repeated calls return the same set, and FlightEvents
// merges the streams time-ordered with shard order breaking ties.
func TestShardRecorders(t *testing.T) {
	tel := New(Options{FlightRecorderSize: 8, FlightKinds: []EventKind{EvDrop, EvAck}})
	frs := tel.ShardRecorders(2)
	if len(frs) != 2 || frs[0] != tel.FR {
		t.Fatalf("ShardRecorders(2) = %v", frs)
	}
	if frs[1].Cap() != 8 || frs[1].Wants(EvEnqueue) || !frs[1].Wants(EvDrop) {
		t.Fatal("shard 1 recorder does not mirror capacity/filter")
	}
	again := tel.ShardRecorders(2)
	if again[1] != frs[1] {
		t.Fatal("repeated ShardRecorders minted new recorders")
	}

	frs[0].Record(Event{T: 10, Kind: EvDrop, Node: 1})
	frs[0].Record(Event{T: 30, Kind: EvDrop, Node: 1})
	frs[1].Record(Event{T: 20, Kind: EvAck, Node: 2})
	frs[1].Record(Event{T: 30, Kind: EvAck, Node: 2})

	evs := tel.FlightEvents()
	if len(evs) != 4 {
		t.Fatalf("merged %d events, want 4", len(evs))
	}
	wantT := []sim.Time{10, 20, 30, 30}
	for i, ev := range evs {
		if ev.T != wantT[i] {
			t.Fatalf("merge order: %v", evs)
		}
	}
	// Stable merge: at T=30 the shard-0 event precedes the shard-1 event.
	if evs[2].Node != 1 || evs[3].Node != 2 {
		t.Fatalf("tie order: %v", evs[2:])
	}
	if tel.FlightRecorded() != 4 {
		t.Fatalf("FlightRecorded = %d", tel.FlightRecorded())
	}
}

// TestShardRecordersRace exercises two shards recording concurrently into
// their own rings — the sharded hot-path pattern — under the race detector,
// with a merge after the writers are quiescent.
func TestShardRecordersRace(t *testing.T) {
	tel := New(Options{FlightRecorderSize: 1024})
	frs := tel.ShardRecorders(2)
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		fr := frs[s]
		node := int32(s + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4096; i++ {
				fr.Record(Event{T: sim.Time(i), Kind: EvEnqueue, Node: node})
			}
		}()
	}
	wg.Wait()
	if got := tel.FlightRecorded(); got != 8192 {
		t.Fatalf("FlightRecorded = %d, want 8192", got)
	}
	if evs := tel.FlightEvents(); len(evs) != 2048 {
		t.Fatalf("merged %d buffered events, want 2048", len(evs))
	}
}

// TestWriteFileAtomic pins the temp-file-plus-rename contract: a failed
// write leaves the previous file byte-identical and no temp litter, a
// successful write replaces it completely.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	err := writeFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writeFile error = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "intact" {
		t.Fatalf("failed write clobbered the file: %q", got)
	}

	if err := writeFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("replaced"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "replaced" {
		t.Fatalf("write result: %q", got)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter in %s: %v", dir, ents)
	}
}

// TestTraceJSON pins the causal-span construction: send/deliver pairs become
// flight spans, enqueue/dequeue pairs become queue-residency spans, odd
// events degrade to instants, and the flow filter drops foreign flows.
func TestTraceJSON(t *testing.T) {
	events := []Event{
		{T: 1000, Kind: EvSend, Node: 1, Flow: 7, Val: 0},
		{T: 2000, Kind: EvEnqueue, Node: 100, Port: 2, Flow: 7, Val: 1500},
		{T: 2500, Kind: EvECNMark, Node: 100, Port: 2, Flow: 7, Val: 9},
		{T: 3000, Kind: EvDequeue, Node: 100, Port: 2, Flow: 7, Val: 1500},
		{T: 5000, Kind: EvDeliver, Node: 2, Flow: 7, Val: 0},
		{T: 6000, Kind: EvSend, Node: 3, Flow: 8, Val: 0}, // filtered out
		{T: 9000, Kind: EvDequeue, Node: 100, Port: 3, Flow: 7, Val: 64}, // unmatched
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, events, 7, func(n int32) string {
		if n == 100 {
			return "leaf0"
		}
		return "host"
	}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, metas int
	for _, te := range tr.TraceEvents {
		switch te.Ph {
		case "X":
			spans++
			if te.Pid != 7 {
				t.Errorf("span pid = %d, want flow 7", te.Pid)
			}
			switch te.Name {
			case "flight seq=0":
				if te.TS != 0.001 || te.Dur != 0.004 { // ps → µs
					t.Errorf("flight span ts=%v dur=%v", te.TS, te.Dur)
				}
			case "q2":
				if te.Tid != 100 || te.Dur != 0.001 {
					t.Errorf("queue span: %+v", te)
				}
			default:
				t.Errorf("unexpected span %q", te.Name)
			}
		case "i":
			instants++
		case "M":
			metas++
		}
		if te.Ph != "M" && te.Pid == 8 {
			t.Errorf("flow filter leaked event %+v", te)
		}
	}
	if spans != 2 {
		t.Errorf("spans = %d, want 2 (flight + queue)", spans)
	}
	if instants != 2 { // ecn_mark + unmatched dequeue
		t.Errorf("instants = %d, want 2", instants)
	}
	if metas == 0 || !strings.Contains(buf.String(), "leaf0") {
		t.Error("missing track metadata / node names")
	}
}
