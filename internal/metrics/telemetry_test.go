package metrics

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlcc/internal/sim"
	"mlcc/internal/trace"
)

func TestNilTelemetry(t *testing.T) {
	var tel *Telemetry
	if tel.Registry() != nil || tel.Recorder() != nil || tel.PerFlow() {
		t.Fatal("nil telemetry not inert")
	}
	tel.SampleGauge("g", trace.Gauge, func() float64 { return 1 })
	tel.SampleCounterRate("c", 8, func() int64 { return 1 })
	tel.StartSampling(sim.Second)
	tel.Pump(sim.Millisecond)
	if tel.SampleInterval() != 0 {
		t.Fatal("nil telemetry has a sample interval")
	}
	if tel.ShardRecorders(2) != nil || tel.FlightEvents() != nil || tel.FlightRecorded() != 0 {
		t.Fatal("nil telemetry produced flight state")
	}
	if ts, vs := tel.Series("g"); ts != nil || vs != nil {
		t.Fatal("nil telemetry produced series")
	}
	if err := tel.WriteDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestNewSelectsPlanes(t *testing.T) {
	tel := New(Options{})
	if tel.Reg != nil || tel.FR != nil || tel.Tracer != nil {
		t.Fatal("zero options enabled planes")
	}
	tel = New(Options{Metrics: true, FlightRecorderSize: 32, SampleInterval: sim.Millisecond})
	if tel.Reg == nil || tel.FR == nil || tel.Tracer == nil {
		t.Fatal("planes missing")
	}
	if tel.FR.Cap() != 32 {
		t.Fatalf("recorder cap = %d", tel.FR.Cap())
	}
}

// pump drives eng to every multiple of interval up to deadline, pumping tel
// at each boundary — the same loop topo.Network.Run runs for built networks.
func pump(eng *sim.Engine, tel *Telemetry, interval, deadline sim.Time) {
	for b := interval; b <= deadline; b += interval {
		eng.RunUntil(b)
		tel.Pump(b)
	}
	eng.RunUntil(deadline)
}

// TestSamplingTicksAndStopBoundary mirrors stats.Sampler semantics: first
// tick at interval, last tick exactly at the stop time when stop is a
// multiple of the interval. Boundaries pumped past the armed stop time are
// ignored.
func TestSamplingTicksAndStopBoundary(t *testing.T) {
	eng := sim.NewEngine()
	tel := New(Options{Metrics: true, SampleInterval: sim.Millisecond})

	calls := 0
	tel.SampleGauge("exp.g", trace.Gauge, func() float64 { calls++; return float64(calls) })
	bytes := int64(0)
	tel.SampleCounterRate("exp.rate", 8, func() int64 { return bytes })

	tel.StartSampling(10 * sim.Millisecond)
	for i := 1; i <= 10; i++ {
		eng.At(sim.Time(i)*sim.Millisecond-sim.Nanosecond, func() { bytes += 1 << 20 })
	}
	pump(eng, tel, sim.Millisecond, 12*sim.Millisecond)

	ts, vs := tel.Series("exp.g")
	if len(ts) != 10 {
		t.Fatalf("gauge samples = %d, want 10 (tick at the stop boundary included)", len(ts))
	}
	if ts[0] != sim.Millisecond || ts[9] != 10*sim.Millisecond {
		t.Fatalf("tick times: first=%v last=%v", ts[0], ts[9])
	}
	if vs[0] != 1 || vs[9] != 10 {
		t.Fatalf("gauge values: %v", vs)
	}
	_, rates := tel.Series("exp.rate")
	want := float64(1<<20) * 8 / 0.001
	for i, r := range rates {
		if r < want*0.99 || r > want*1.01 {
			t.Fatalf("rate[%d] = %v, want ~%v", i, r, want)
		}
	}
}

// TestSampleAll expands every registered counter and gauge into series
// without duplicating explicitly sampled ones.
func TestSampleAll(t *testing.T) {
	eng := sim.NewEngine()
	tel := New(Options{Metrics: true, SampleInterval: sim.Millisecond, SampleAll: true})
	c := tel.Reg.Counter("switch.s0.drops")
	tel.Reg.Gauge("switch.s0.qlen").Set(5)
	tel.SampleGauge("exp.explicit", trace.Gauge, func() float64 { return 1 })

	c.Add(3)
	tel.StartSampling(2 * sim.Millisecond)
	pump(eng, tel, sim.Millisecond, 2*sim.Millisecond)

	for _, name := range []string{"switch.s0.drops", "switch.s0.qlen", "exp.explicit"} {
		if ts, _ := tel.Series(name); len(ts) != 2 {
			t.Errorf("series %q has %d samples, want 2", name, len(ts))
		}
	}
	if got := tel.Tracer.Names(); len(got) != 3 {
		t.Fatalf("streams = %v (explicit series must not duplicate)", got)
	}
	if _, vs := tel.Series("switch.s0.drops"); vs[0] != 3 {
		t.Fatalf("counter sampled by value: %v", vs)
	}
}

func TestWriteDir(t *testing.T) {
	eng := sim.NewEngine()
	tel := New(Options{Metrics: true, FlightRecorderSize: 8, SampleInterval: sim.Millisecond})
	tel.Reg.Counter("sim.test").Add(2)
	tel.SampleGauge("exp.g", trace.Gauge, func() float64 { return 1 })
	tel.FR.Record(Event{T: sim.Microsecond, Kind: EvDrop, Node: 1, Flow: 9, Val: 1000})
	tel.StartSampling(2 * sim.Millisecond)
	pump(eng, tel, sim.Millisecond, 2*sim.Millisecond)

	m := NewManifest("test-tool")
	m.Seed = 42
	m.FillSim(eng.Now(), eng.Fired())
	tel.Manifest = m

	dir := filepath.Join(t.TempDir(), "out")
	if err := tel.WriteDir(dir); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded Manifest
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if decoded.Tool != "test-tool" || decoded.Seed != 42 {
		t.Fatalf("manifest fields: %+v", decoded)
	}
	if decoded.Counters["sim.test"] != 2 {
		t.Fatalf("counter snapshot missing: %v", decoded.Counters)
	}
	if decoded.GoVersion == "" {
		t.Fatal("go_version empty")
	}

	csv, err := os.ReadFile(filepath.Join(dir, "series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "stream,kind,time_ms,value\n") || !strings.Contains(string(csv), "exp.g") {
		t.Fatalf("series.csv: %q", csv)
	}

	fl, err := os.ReadFile(filepath.Join(dir, "flight.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fl), "drop") {
		t.Fatalf("flight.log: %q", fl)
	}

	tj, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tj, &tr); err != nil {
		t.Fatalf("trace.json not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace.json has no events")
	}

	// Nothing the exporter left behind: atomic writes clean up their temps.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
