// Package metrics is the simulator-wide telemetry layer: a typed
// counter/gauge/histogram registry with hierarchical dotted names
// ("switch.dci0.q3.pfc_pause_ns"), a bounded ring-buffer flight recorder of
// structured packet-lifecycle events, and exporters (JSON run manifests,
// CSV time series unified with internal/trace).
//
// The layer follows the same zero-overhead-when-off discipline as the event
// loop (see the "Performance model" section of DESIGN.md): every type is
// nil-safe, so components hold possibly-nil pointers and pay one predictable
// branch — and zero allocations — when telemetry is disabled. Hot-path
// counters stay plain int64 fields on their components; the registry wraps
// them with read-only accessor functions (CounterFunc/GaugeFunc) so that
// enabling the registry adds no per-packet cost either.
package metrics

import (
	"math"
	"sort"
	"sync"
)

// Counter is a registry-owned monotone counter. All methods are nil-safe:
// a nil *Counter is a no-op, which is how disabled telemetry costs nothing.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a registry-owned instantaneous value. Nil-safe like Counter.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is the number of power-of-two histogram buckets. Bucket b
// holds values in (2^(b-1-histShift), 2^(b-histShift)], so the histogram
// spans 2^-16 .. 2^47 — microsecond FCTs through multi-GB byte counts.
const (
	histBuckets = 64
	histShift   = 16
)

// Histogram is a fixed-size log2-bucketed distribution. Observe is
// allocation-free and nil-safe; quantiles are approximate (bucket upper
// bounds), which is enough for run snapshots.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    float64
	max    float64
}

// Observe records one value. Non-positive values land in bucket 0.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[histBucket(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func histBucket(v float64) int {
	if v <= 0 {
		return 0
	}
	_, exp := math.Frexp(v)
	b := exp + histShift
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest observed value.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from the
// bucket boundaries, or 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			ub := math.Ldexp(1, b-histShift) // 2^(b-histShift)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// instrumentKind discriminates registry entries.
type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

// instrument is one registered metric: exactly one of the value fields is
// set. Func-backed instruments read an existing component field at snapshot
// time, so registering them adds no hot-path cost at all.
type instrument struct {
	name string
	kind instrumentKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	cf   func() int64
	gf   func() float64
}

func (in *instrument) value() float64 {
	switch {
	case in.cf != nil:
		return float64(in.cf())
	case in.gf != nil:
		return in.gf()
	case in.c != nil:
		return float64(in.c.Value())
	case in.g != nil:
		return in.g.Value()
	}
	return 0
}

// Registry holds every instrument of one simulation under hierarchical
// dotted names. A nil *Registry is valid and turns all registrations into
// no-ops, so components register unconditionally.
//
// Naming scheme (see the "Observability" section of DESIGN.md):
//
//	sim.*                          engine internals
//	host.h<idx>.*                  per-server NIC/transport counters
//	switch.{leaf,spine}<idx>.*     fabric switches
//	dci.dci<idx>.*                 DCI switches (incl. PFQ/DQM)
//	<node>.q<port>.*               per-port/per-queue instruments
//	cc.<alg>.flow<id>.*            per-flow rate gauges (opt-in)
//	exp.*                          experiment-defined series
type Registry struct {
	mu    sync.Mutex
	by    map[string]*instrument
	order []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

func (r *Registry) add(in *instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.by[in.name]; dup {
		panic("metrics: duplicate instrument " + in.name)
	}
	r.by[in.name] = in
	r.order = append(r.order, in)
}

// Counter registers and returns an owned counter. Nil registry returns nil
// (whose methods are no-ops). Duplicate names panic: a name collision is
// always a wiring bug.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(&instrument{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.add(&instrument{name: name, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns an owned histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{}
	r.add(&instrument{name: name, kind: kindHistogram, h: h})
	return h
}

// CounterFunc registers a read-only counter backed by an existing component
// field; fn is called at snapshot/sample time only.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.add(&instrument{name: name, kind: kindCounter, cf: fn})
}

// GaugeFunc registers a read-only gauge accessor.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.add(&instrument{name: name, kind: kindGauge, gf: fn})
}

// Len reports the number of registered instruments (0 for nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.by)
}

// Value returns the current value of the named instrument (counters and
// gauges; histograms report their count).
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	in, ok := r.by[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	if in.kind == kindHistogram {
		return float64(in.h.Count()), true
	}
	return in.value(), true
}

// Point is one snapshotted metric value. Kind is "counter" or "gauge"
// (histogram-expanded points report ".count" as a counter and the rest as
// gauges), giving exporters — the Prometheus text endpoint in internal/obs —
// the TYPE information a plain name/value pair loses.
type Point struct {
	Name  string
	Value float64
	Kind  string
}

// Point kinds.
const (
	PointCounter = "counter"
	PointGauge   = "gauge"
)

// Snapshot returns every instrument's current value, sorted by name.
// Histograms expand into .count/.sum/.max/.p50/.p99 points.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, len(r.order))
	for _, in := range r.order {
		if in.kind == kindHistogram {
			out = append(out,
				Point{in.name + ".count", float64(in.h.Count()), PointCounter},
				Point{in.name + ".sum", in.h.Sum(), PointGauge},
				Point{in.name + ".max", in.h.Max(), PointGauge},
				Point{in.name + ".p50", in.h.Quantile(0.50), PointGauge},
				Point{in.name + ".p99", in.h.Quantile(0.99), PointGauge},
			)
			continue
		}
		kind := PointGauge
		if in.kind == kindCounter {
			kind = PointCounter
		}
		out = append(out, Point{in.name, in.value(), kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// each calls fn for every non-histogram instrument in registration order
// (used by the sampler; histograms are snapshot-only).
func (r *Registry) each(fn func(name string, isCounter bool, value func() float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ins := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	for _, in := range ins {
		if in.kind == kindHistogram {
			continue
		}
		in := in
		fn(in.name, in.kind == kindCounter, in.value)
	}
}
