package metrics

import (
	"testing"

	"mlcc/internal/sim"
)

// TestDisabledPathAllocFree proves the zero-overhead contract at the
// package level: nil instruments and nil recorders must not allocate, and an
// attached recorder's Record must not allocate either (the ring is
// pre-sized). The simulator-level proof is TestTelemetryDisabledPathAllocFree
// at the repository root.
func TestDisabledPathAllocFree(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		fr *FlightRecorder
	)
	ev := Event{T: sim.Microsecond, Kind: EvEnqueue, Node: 1, Flow: 2, Val: 1500}
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(1)
		fr.Record(ev)
	}); n != 0 {
		t.Fatalf("nil instruments allocated %v/op", n)
	}

	live := NewFlightRecorder(64)
	reg := NewRegistry()
	lc := reg.Counter("c")
	lg := reg.Gauge("g")
	lh := reg.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		lc.Inc()
		lg.Set(2)
		lh.Observe(3)
		live.Record(ev)
	}); n != 0 {
		t.Fatalf("enabled hot path allocated %v/op", n)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	b.ReportAllocs()
	var fr *FlightRecorder
	ev := Event{T: sim.Microsecond, Kind: EvEnqueue, Node: 1, Flow: 2, Val: 1500}
	for i := 0; i < b.N; i++ {
		fr.Record(ev)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	b.ReportAllocs()
	fr := NewFlightRecorder(1024)
	ev := Event{T: sim.Microsecond, Kind: EvEnqueue, Node: 1, Flow: 2, Val: 1500}
	for i := 0; i < b.N; i++ {
		fr.Record(ev)
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	b.ReportAllocs()
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	b.ReportAllocs()
	c := NewRegistry().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	h := NewRegistry().Histogram("h")
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xffff))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 64; i++ {
		reg.Counter(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(reg.Snapshot()) != 64 {
			b.Fatal("snapshot size")
		}
	}
}
