package metrics

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mlcc/internal/sim"
	"mlcc/internal/trace"
)

// Options selects which telemetry planes to enable. The zero value disables
// everything; New with the zero value still returns a usable (all-passive)
// Telemetry, but callers normally pass nil *Telemetry instead.
type Options struct {
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool

	// FlightRecorderSize, when positive, enables a flight recorder keeping
	// the last N packet-lifecycle events.
	FlightRecorderSize int

	// FlightKinds filters recorded event kinds (empty = all).
	FlightKinds []EventKind

	// SampleInterval, when positive, enables periodic sampling of registry
	// instruments into CSV-exportable time series (internal/trace streams).
	SampleInterval sim.Time

	// SampleAll samples every registered counter and gauge; otherwise only
	// series registered through SampleGauge/SampleCounterRate are sampled.
	SampleAll bool

	// PerFlow registers a cc.<alg>.flow<id>.rate_bps gauge per flow. Off by
	// default: large workloads would register tens of thousands of gauges.
	PerFlow bool
}

// Telemetry bundles one simulation's telemetry planes: the instrument
// registry, the flight recorder, the time-series tracer and the run
// manifest. All fields may be nil; accessors are nil-safe so a nil
// *Telemetry means "telemetry off" throughout the simulator.
type Telemetry struct {
	Opts   Options
	Reg    *Registry
	FR     *FlightRecorder
	Tracer *trace.Tracer

	// Manifest, when set, is exported by WriteDir as manifest.json.
	Manifest *Manifest

	specs []*sampleSpec
}

// New builds a Telemetry with the selected planes enabled.
func New(opts Options) *Telemetry {
	t := &Telemetry{Opts: opts}
	if opts.Metrics {
		t.Reg = NewRegistry()
	}
	if opts.FlightRecorderSize > 0 {
		t.FR = NewFlightRecorder(opts.FlightRecorderSize, opts.FlightKinds...)
	}
	if opts.SampleInterval > 0 {
		t.Tracer = trace.New()
	}
	return t
}

// Registry returns the instrument registry (nil when disabled or t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Reg
}

// Recorder returns the flight recorder (nil when disabled or t is nil).
func (t *Telemetry) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.FR
}

// PerFlow reports whether per-flow gauges are requested.
func (t *Telemetry) PerFlow() bool {
	return t != nil && t.Opts.PerFlow && t.Reg != nil
}

// sampleSpec is one sampled time series: either a gauge (value per tick) or
// a counter rate (scaled delta per second over the tick interval).
type sampleSpec struct {
	name    string
	kind    trace.Kind
	gauge   func() float64
	counter func() int64
	scale   float64
	last    int64
	stream  *trace.Stream
}

// SampleGauge registers fn in the registry (when enabled) and samples its
// value into a time-series stream on every tick. No-op on nil t.
func (t *Telemetry) SampleGauge(name string, kind trace.Kind, fn func() float64) {
	if t == nil {
		return
	}
	t.Reg.GaugeFunc(name, fn)
	if t.Tracer != nil {
		t.specs = append(t.specs, &sampleSpec{name: name, kind: kind, gauge: fn})
	}
}

// SampleCounterRate registers fn as a counter (when enabled) and samples its
// per-second rate, scaled by scale (e.g. 8 to convert a byte counter into
// bits/s), into a time-series stream on every tick. The first tick measures
// from the counter's value at registration time.
func (t *Telemetry) SampleCounterRate(name string, scale float64, fn func() int64) {
	if t == nil {
		return
	}
	t.Reg.CounterFunc(name, fn)
	if t.Tracer != nil {
		t.specs = append(t.specs, &sampleSpec{
			name: name, kind: trace.FlowRate, counter: fn, scale: scale, last: fn(),
		})
	}
}

// StartSampling arms periodic sampling on eng: ticks every
// Opts.SampleInterval from interval up to and including stop (matching
// stats.Sampler's boundary behaviour). With Opts.SampleAll, every counter
// and gauge registered so far is sampled by value in addition to the
// explicit SampleGauge/SampleCounterRate series. No-op unless sampling was
// enabled in Options.
func (t *Telemetry) StartSampling(eng *sim.Engine, stop sim.Time) {
	if t == nil || t.Tracer == nil || t.Opts.SampleInterval <= 0 {
		return
	}
	if t.Opts.SampleAll {
		explicit := make(map[string]bool, len(t.specs))
		for _, sp := range t.specs {
			explicit[sp.name] = true
		}
		t.Reg.each(func(name string, isCounter bool, value func() float64) {
			if explicit[name] {
				return
			}
			kind := trace.Gauge
			if isCounter {
				kind = trace.Counter
			}
			t.specs = append(t.specs, &sampleSpec{name: name, kind: kind, gauge: value})
		})
	}
	for _, sp := range t.specs {
		sp.stream = t.Tracer.Stream(sp.name, sp.kind)
	}
	interval := t.Opts.SampleInterval
	var tick func()
	tick = func() {
		now := eng.Now()
		for _, sp := range t.specs {
			if sp.counter != nil {
				cur := sp.counter()
				sp.stream.Add(now, float64(cur-sp.last)*sp.scale/interval.Seconds())
				sp.last = cur
				continue
			}
			sp.stream.Add(now, sp.gauge())
		}
		if now+interval <= stop {
			eng.After(interval, tick)
		}
	}
	eng.After(interval, tick)
}

// Series returns the sampled values of the named time series as parallel
// timestamp/value slices, or nils when the series does not exist.
func (t *Telemetry) Series(name string) ([]sim.Time, []float64) {
	if t == nil || t.Tracer == nil {
		return nil, nil
	}
	st := t.Tracer.Get(name)
	if st == nil {
		return nil, nil
	}
	ts := make([]sim.Time, len(st.Samples))
	vs := make([]float64, len(st.Samples))
	for i, s := range st.Samples {
		ts[i] = s.T
		vs[i] = s.V
	}
	return ts, vs
}

// WriteDir exports everything collected into dir (created if needed):
// manifest.json (run manifest + final counter snapshot), series.csv (all
// sampled time series) and flight.log (the recorder's buffered events).
func (t *Telemetry) WriteDir(dir string) error {
	if t == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if t.Manifest != nil {
		if t.Manifest.Counters == nil {
			t.Manifest.AddCounters(t.Reg)
		}
		if err := writeFile(filepath.Join(dir, "manifest.json"), t.Manifest.WriteJSON); err != nil {
			return err
		}
	}
	if t.Tracer != nil && len(t.Tracer.Names()) > 0 {
		if err := writeFile(filepath.Join(dir, "series.csv"), t.Tracer.WriteCSV); err != nil {
			return err
		}
	}
	if t.FR.Len() > 0 {
		if err := writeFile(filepath.Join(dir, "flight.log"), t.FR.Dump); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
