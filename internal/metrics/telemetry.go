package metrics

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mlcc/internal/sim"
	"mlcc/internal/trace"
)

// Options selects which telemetry planes to enable. The zero value disables
// everything; New with the zero value still returns a usable (all-passive)
// Telemetry, but callers normally pass nil *Telemetry instead.
type Options struct {
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool

	// FlightRecorderSize, when positive, enables a flight recorder keeping
	// the last N packet-lifecycle events.
	FlightRecorderSize int

	// FlightKinds filters recorded event kinds (empty = all).
	FlightKinds []EventKind

	// SampleInterval, when positive, enables periodic sampling of registry
	// instruments into CSV-exportable time series (internal/trace streams).
	SampleInterval sim.Time

	// SampleAll samples every registered counter and gauge; otherwise only
	// series registered through SampleGauge/SampleCounterRate are sampled.
	SampleAll bool

	// PerFlow registers a cc.<alg>.flow<id>.rate_bps gauge per flow. Off by
	// default: large workloads would register tens of thousands of gauges.
	PerFlow bool
}

// Telemetry bundles one simulation's telemetry planes: the instrument
// registry, the flight recorder, the time-series tracer and the run
// manifest. All fields may be nil; accessors are nil-safe so a nil
// *Telemetry means "telemetry off" throughout the simulator.
type Telemetry struct {
	Opts   Options
	Reg    *Registry
	FR     *FlightRecorder
	Tracer *trace.Tracer

	// Manifest, when set, is exported by WriteDir as manifest.json.
	Manifest *Manifest

	// NodeNamer, when set (the topology builder installs it), maps flight-
	// recorder node ids to topology names ("host3", "leaf0", "dci1") for the
	// trace.json export and the observability server.
	NodeNamer func(node int32) string

	specs []*sampleSpec

	// shardFRs are the per-shard flight recorders handed out by
	// ShardRecorders; shardFRs[0] is FR itself. Nil until a sharded build
	// asks for them.
	shardFRs []*FlightRecorder

	// Sampling is pump-driven: StartSampling arms it and the simulation
	// driver calls Pump at every quiescent sample boundary (see
	// topo.Network.Run). sampleStop bounds the armed window.
	sampleArmed bool
	sampleStop  sim.Time
}

// New builds a Telemetry with the selected planes enabled.
func New(opts Options) *Telemetry {
	t := &Telemetry{Opts: opts}
	if opts.Metrics {
		t.Reg = NewRegistry()
	}
	if opts.FlightRecorderSize > 0 {
		t.FR = NewFlightRecorder(opts.FlightRecorderSize, opts.FlightKinds...)
	}
	if opts.SampleInterval > 0 {
		t.Tracer = trace.New()
	}
	return t
}

// Registry returns the instrument registry (nil when disabled or t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Reg
}

// Recorder returns the flight recorder (nil when disabled or t is nil).
func (t *Telemetry) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.FR
}

// PerFlow reports whether per-flow gauges are requested.
func (t *Telemetry) PerFlow() bool {
	return t != nil && t.Opts.PerFlow && t.Reg != nil
}

// ShardRecorders returns k flight recorders for a k-shard build: index 0 is
// the primary recorder (Recorder()), further indices are fresh recorders with
// the same capacity and kind filter, created on first request and remembered
// so repeated calls return the same set. Each shard records into its own ring
// lock-free on the hot path; FlightEvents and WriteDir merge the streams.
// Returns nil when the flight recorder is disabled (or t is nil).
func (t *Telemetry) ShardRecorders(k int) []*FlightRecorder {
	if t == nil || t.FR == nil {
		return nil
	}
	if t.shardFRs == nil {
		t.shardFRs = []*FlightRecorder{t.FR}
	}
	for len(t.shardFRs) < k {
		t.shardFRs = append(t.shardFRs, t.FR.NewLike())
	}
	return t.shardFRs[:k]
}

// FlightEvents returns the recorded packet-lifecycle events of every shard's
// recorder merged into one time-ordered stream (stable across shards, so the
// merge is deterministic). Nil when the flight recorder is disabled.
func (t *Telemetry) FlightEvents() []Event {
	if t == nil || t.FR == nil {
		return nil
	}
	if t.shardFRs == nil {
		return t.FR.Events()
	}
	return MergeEvents(t.shardFRs...)
}

// FlightRecorded reports the total events accepted across every shard's
// recorder (including overwritten ones).
func (t *Telemetry) FlightRecorded() uint64 {
	if t == nil {
		return 0
	}
	if t.shardFRs == nil {
		return t.FR.Recorded()
	}
	var n uint64
	for _, fr := range t.shardFRs {
		n += fr.Recorded()
	}
	return n
}

// sampleSpec is one sampled time series: either a gauge (value per tick) or
// a counter rate (scaled delta per second over the tick interval).
type sampleSpec struct {
	name    string
	kind    trace.Kind
	gauge   func() float64
	counter func() int64
	scale   float64
	last    int64
	stream  *trace.Stream
}

// SampleGauge registers fn in the registry (when enabled) and samples its
// value into a time-series stream on every tick. No-op on nil t.
func (t *Telemetry) SampleGauge(name string, kind trace.Kind, fn func() float64) {
	if t == nil {
		return
	}
	t.Reg.GaugeFunc(name, fn)
	if t.Tracer != nil {
		t.specs = append(t.specs, &sampleSpec{name: name, kind: kind, gauge: fn})
	}
}

// SampleCounterRate registers fn as a counter (when enabled) and samples its
// per-second rate, scaled by scale (e.g. 8 to convert a byte counter into
// bits/s), into a time-series stream on every tick. The first tick measures
// from the counter's value at registration time.
func (t *Telemetry) SampleCounterRate(name string, scale float64, fn func() int64) {
	if t == nil {
		return
	}
	t.Reg.CounterFunc(name, fn)
	if t.Tracer != nil {
		t.specs = append(t.specs, &sampleSpec{
			name: name, kind: trace.FlowRate, counter: fn, scale: scale, last: fn(),
		})
	}
}

// StartSampling arms periodic sampling: the simulation driver then calls
// Pump at every boundary k·Opts.SampleInterval up to and including stop
// (matching stats.Sampler's boundary behaviour — topo.Network.Run does this
// for built networks; manual engine users pump themselves). Sampling is
// deliberately pump-driven rather than engine-tick-driven: taking samples
// only with the simulation quiescent schedules no engine events, so an armed
// sampler leaves the event schedule — and the determinism digests — exactly
// as a passive run, on one engine or many (per-shard engines would each need
// their own tick event otherwise, breaking shards=1 ≡ shards=2).
//
// With Opts.SampleAll, every counter and gauge registered so far is sampled
// by value in addition to the explicit SampleGauge/SampleCounterRate series.
// No-op unless sampling was enabled in Options.
func (t *Telemetry) StartSampling(stop sim.Time) {
	if t == nil || t.Tracer == nil || t.Opts.SampleInterval <= 0 {
		return
	}
	if t.Opts.SampleAll {
		explicit := make(map[string]bool, len(t.specs))
		for _, sp := range t.specs {
			explicit[sp.name] = true
		}
		t.Reg.each(func(name string, isCounter bool, value func() float64) {
			if explicit[name] {
				return
			}
			kind := trace.Gauge
			if isCounter {
				kind = trace.Counter
			}
			t.specs = append(t.specs, &sampleSpec{name: name, kind: kind, gauge: value})
		})
	}
	for _, sp := range t.specs {
		if sp.stream == nil {
			sp.stream = t.Tracer.Stream(sp.name, sp.kind)
		}
	}
	t.sampleArmed = true
	t.sampleStop = stop
}

// SampleInterval returns the armed sampling cadence (0 when sampling is off
// or t is nil) — the boundary spacing drivers pump at.
func (t *Telemetry) SampleInterval() sim.Time {
	if t == nil {
		return 0
	}
	return t.Opts.SampleInterval
}

// Pump takes one sample of every armed series, stamped at now. The caller
// must be quiescent (no simulation goroutine running) with its clock exactly
// at now; boundaries past the armed stop time are ignored, so drivers may
// keep pumping through a drain phase without growing the series.
func (t *Telemetry) Pump(now sim.Time) {
	if t == nil || !t.sampleArmed || now > t.sampleStop {
		return
	}
	interval := t.Opts.SampleInterval
	for _, sp := range t.specs {
		if sp.counter != nil {
			cur := sp.counter()
			sp.stream.Add(now, float64(cur-sp.last)*sp.scale/interval.Seconds())
			sp.last = cur
			continue
		}
		sp.stream.Add(now, sp.gauge())
	}
}

// Series returns the sampled values of the named time series as parallel
// timestamp/value slices, or nils when the series does not exist.
func (t *Telemetry) Series(name string) ([]sim.Time, []float64) {
	if t == nil || t.Tracer == nil {
		return nil, nil
	}
	st := t.Tracer.Get(name)
	if st == nil {
		return nil, nil
	}
	ts := make([]sim.Time, len(st.Samples))
	vs := make([]float64, len(st.Samples))
	for i, s := range st.Samples {
		ts[i] = s.T
		vs[i] = s.V
	}
	return ts, vs
}

// WriteDir exports everything collected into dir (created if needed):
// manifest.json (run manifest + final counter snapshot), series.csv (all
// sampled time series), flight.log (the shard-merged recorder events) and
// trace.json (the same events as Chrome trace_event spans, for
// chrome://tracing / Perfetto). Every file is written to a temp name and
// renamed into place, so an interrupted export never leaves a truncated
// artifact behind.
func (t *Telemetry) WriteDir(dir string) error {
	if t == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if t.Manifest != nil {
		if t.Manifest.Counters == nil {
			t.Manifest.AddCounters(t.Reg)
		}
		if err := writeFile(filepath.Join(dir, "manifest.json"), t.Manifest.WriteJSON); err != nil {
			return err
		}
	}
	if t.Tracer != nil && len(t.Tracer.Names()) > 0 {
		if err := writeFile(filepath.Join(dir, "series.csv"), t.Tracer.WriteCSV); err != nil {
			return err
		}
	}
	if events := t.FlightEvents(); len(events) > 0 {
		dump := func(w io.Writer) error {
			return DumpEvents(w, events, t.FlightRecorded(), t.FR.Cap())
		}
		if err := writeFile(filepath.Join(dir, "flight.log"), dump); err != nil {
			return err
		}
		tr := func(w io.Writer) error {
			return WriteTraceJSON(w, events, 0, t.NodeNamer)
		}
		if err := writeFile(filepath.Join(dir, "trace.json"), tr); err != nil {
			return err
		}
	}
	return nil
}

// writeFile writes via a temp file in the same directory plus an atomic
// rename: readers either see the previous complete file or the new complete
// file, never a truncation, and a crashed export leaves the original intact.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
