package metrics

import (
	"math"
	"sort"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every nil receiver must be a silent no-op: that is the contract the
	// zero-overhead-when-disabled discipline rests on.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z") != nil {
		t.Fatal("nil registry returned instruments")
	}
	r.CounterFunc("cf", func() int64 { return 1 })
	r.GaugeFunc("gf", func() float64 { return 1 })
	if r.Len() != 0 {
		t.Fatal("nil registry Len")
	}
	if _, ok := r.Value("x"); ok {
		t.Fatal("nil registry Value")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry Snapshot")
	}
}

func TestRegistryValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	backing := int64(7)
	r.CounterFunc("a.fn", func() int64 { return backing })
	r.GaugeFunc("a.gfn", func() float64 { return float64(backing) * 2 })

	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	cases := map[string]float64{"a.count": 5, "a.gauge": 2.5, "a.fn": 7, "a.gfn": 14}
	for name, want := range cases {
		got, ok := r.Value(name)
		if !ok || got != want {
			t.Errorf("Value(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	backing = 9 // func-backed instruments read live
	if got, _ := r.Value("a.fn"); got != 9 {
		t.Errorf("live counter func = %v", got)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("missing name resolved")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.Gauge("dup")
}

func TestHistogram(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 110 || h.Max() != 100 {
		t.Fatalf("count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
	// Quantiles are bucket upper bounds: p50 of {1,2,3,4,100} is ≤ 4 but ≥ 2.
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 = %v (capped at max)", q)
	}
	// Non-positive values land in bucket 0 without panicking.
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 7 {
		t.Fatalf("count after non-positive = %d", h.Count())
	}
}

func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for exp := -20; exp <= 50; exp++ {
		b := histBucket(math.Ldexp(1.5, exp))
		if b < prev {
			t.Fatalf("bucket not monotone at 2^%d: %d < %d", exp, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucket out of range: %d", b)
		}
		prev = b
	}
}

func TestSnapshotSortedAndExpanded(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Gauge("a.first").Set(2)
	h := r.Histogram("m.hist")
	h.Observe(10)
	h.Observe(20)

	pts := r.Snapshot()
	names := make([]string, len(pts))
	for i, p := range pts {
		names[i] = p.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	byName := map[string]float64{}
	for _, p := range pts {
		byName[p.Name] = p.Value
	}
	if byName["m.hist.count"] != 2 || byName["m.hist.sum"] != 30 || byName["m.hist.max"] != 20 {
		t.Fatalf("histogram expansion: %v", byName)
	}
	if _, ok := byName["m.hist.p99"]; !ok {
		t.Fatal("p99 missing from snapshot")
	}
}
