package metrics

import (
	"encoding/json"
	"io"
	"maps"
	"runtime"
	"runtime/debug"

	"mlcc/internal/sim"
)

// Manifest is the JSON run record: enough provenance (config, seed, VCS
// revision, wall time) plus the final counter snapshot to reproduce a run
// and sanity-check a figure without rerunning it.
type Manifest struct {
	Tool      string `json:"tool"`
	Algorithm string `json:"algorithm,omitempty"`
	Workload  string `json:"workload,omitempty"`
	Seed      int64  `json:"seed"`

	// Config holds the tool-specific run parameters; json.Marshal sorts map
	// keys, so manifests diff cleanly.
	Config map[string]any `json:"config,omitempty"`

	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision"`
	Modified  bool   `json:"vcs_modified,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`
	SimMillis   float64 `json:"sim_millis"`
	EventsFired uint64  `json:"events_fired"`
	Flows       int     `json:"flows,omitempty"`

	Counters map[string]float64 `json:"counters,omitempty"`
}

// NewManifest returns a manifest stamped with the build's provenance
// (Go version and, when the binary was built from a VCS checkout, its
// revision — the offline stand-in for git-describe).
func NewManifest(tool string) *Manifest {
	m := &Manifest{Tool: tool, GoVersion: runtime.Version(), Revision: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Revision = s.Value
			case "vcs.modified":
				m.Modified = s.Value == "true"
			}
		}
	}
	return m
}

// Clone returns an independent copy: mutating either manifest's maps leaves
// the other untouched. Config values are treated as immutable (the repo only
// stores scalars there), so a one-level map copy suffices.
func (m *Manifest) Clone() *Manifest {
	c := *m
	c.Config = maps.Clone(m.Config)
	c.Counters = maps.Clone(m.Counters)
	return &c
}

// FillSim records the simulation outcome: final clock and fired-event count.
func (m *Manifest) FillSim(now sim.Time, fired uint64) {
	m.SimMillis = now.Millis()
	m.EventsFired = fired
}

// AddCounters snapshots every instrument of reg into the manifest.
func (m *Manifest) AddCounters(reg *Registry) {
	pts := reg.Snapshot()
	if len(pts) == 0 {
		return
	}
	m.Counters = make(map[string]float64, len(pts))
	for _, p := range pts {
		m.Counters[p.Name] = p.Value
	}
}

// WriteJSON emits the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
