package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteTraceJSON exports a flight-recorder event stream as Chrome
// trace_event JSON (the "JSON Array with metadata" form accepted by
// chrome://tracing and Perfetto). Lifecycle pairs become duration ("X")
// spans and everything else becomes an instant event, so one flow's path —
// send → queue residency per hop → deliver, plus the feedback frames that
// close the loop — reads causally on a timeline:
//
//   - EvSend/EvDeliver pairs (matched FIFO per flow and sequence number, so
//     retransmissions pair with their own delivery) become "flight seq=N"
//     spans on the sending node's track.
//   - EvEnqueue/EvDequeue pairs (matched FIFO per node, port and flow — the
//     queues are FIFO per class, so first-in matches first-out) become
//     "q<port>" residency spans on the queueing node's track.
//   - Every other kind (drop, ecn_mark, cnp, ack, rate, fault and feedback
//     events, watchdog) is an instant with its Val attached.
//
// Tracks are organized per flow: the trace "process" id is the flow id and
// the "thread" id is the node, labelled through namer (topology names like
// "host3" or "dci0"; a nil namer falls back to "node<id>"). flow > 0 filters
// the export to that flow; 0 exports everything, with flow-less events
// (PFC, link state) grouped under process 0.
//
// Pair starts whose end lies beyond the recorder's buffer (or vice versa)
// degrade to instants, so a wrapped ring still exports every event it holds.
func WriteTraceJSON(w io.Writer, events []Event, flow int32, namer func(node int32) string) error {
	if namer == nil {
		namer = func(n int32) string { return fmt.Sprintf("node%d", n) }
	}

	// First pass: match lifecycle pairs FIFO. endOf[i] is the index of the
	// event closing the span opened by event i; consumed[j] marks j as a
	// matched end. Working over indices keeps the second pass — and the
	// output — in deterministic event order.
	type qkey struct{ node, port, flow int32 }
	type fkey struct {
		flow int32
		seq  int64
	}
	endOf := make(map[int]int)
	consumed := make(map[int]bool)
	enqFIFO := make(map[qkey][]int)
	sendFIFO := make(map[fkey][]int)
	match := func(i int) {
		ev := events[i]
		switch ev.Kind {
		case EvEnqueue:
			k := qkey{ev.Node, ev.Port, ev.Flow}
			enqFIFO[k] = append(enqFIFO[k], i)
		case EvDequeue:
			k := qkey{ev.Node, ev.Port, ev.Flow}
			if q := enqFIFO[k]; len(q) > 0 {
				endOf[q[0]], consumed[i] = i, true
				enqFIFO[k] = q[1:]
			}
		case EvSend:
			k := fkey{ev.Flow, ev.Val}
			sendFIFO[k] = append(sendFIFO[k], i)
		case EvDeliver:
			k := fkey{ev.Flow, ev.Val}
			if q := sendFIFO[k]; len(q) > 0 {
				endOf[q[0]], consumed[i] = i, true
				sendFIFO[k] = q[1:]
			}
		}
	}
	for i, ev := range events {
		if flow > 0 && ev.Flow != flow {
			continue
		}
		match(i)
	}

	// Second pass: emit spans at their start positions, instants elsewhere.
	type track struct{ pid, tid int32 }
	tracks := make(map[track]bool)
	out := make([]map[string]any, 0, len(events))
	for i, ev := range events {
		if flow > 0 && ev.Flow != flow {
			continue
		}
		if consumed[i] {
			continue
		}
		tracks[track{ev.Flow, ev.Node}] = true
		te := map[string]any{
			"ts":   ev.T.Micros(),
			"pid":  ev.Flow,
			"tid":  ev.Node,
			"args": map[string]any{"val": ev.Val},
		}
		if j, ok := endOf[i]; ok {
			te["ph"] = "X"
			te["dur"] = (events[j].T - ev.T).Micros()
			if ev.Kind == EvSend {
				te["cat"] = "flight"
				te["name"] = fmt.Sprintf("flight seq=%d", ev.Val)
			} else {
				te["cat"] = "queue"
				te["name"] = fmt.Sprintf("q%d", ev.Port)
			}
		} else {
			te["ph"] = "i"
			te["s"] = "t"
			te["cat"] = "event"
			te["name"] = ev.Kind.String()
		}
		out = append(out, te)
	}

	// Track metadata: label each process with its flow and each thread with
	// its topology node name. Iterate in event order for determinism.
	seen := make(map[track]bool)
	for _, ev := range events {
		if flow > 0 && ev.Flow != flow {
			continue
		}
		tr := track{ev.Flow, ev.Node}
		if !tracks[tr] || seen[tr] {
			continue
		}
		seen[tr] = true
		pname := "fabric"
		if tr.pid > 0 {
			pname = fmt.Sprintf("flow %d", tr.pid)
		}
		out = append(out,
			map[string]any{"ph": "M", "name": "process_name", "pid": tr.pid, "tid": tr.tid,
				"args": map[string]any{"name": pname}},
			map[string]any{"ph": "M", "name": "thread_name", "pid": tr.pid, "tid": tr.tid,
				"args": map[string]any{"name": namer(tr.tid)}},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}
