// Package host models RDMA-capable servers: per-flow rate-paced queue pairs
// multiplexed onto one NIC port, per-packet ACK generation with INT echo,
// DCQCN CNP generation, MLCC credit handling via pluggable receiver logic,
// go-back-N loss recovery, and flow-completion-time recording.
package host

import (
	"fmt"

	"mlcc/internal/audit"
	"mlcc/internal/cc"
	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Flow is one transfer plus its life-cycle record. Flows are registered in a
// Table shared by sender and receiver hosts and by the stats collectors.
type Flow struct {
	Info  cc.FlowInfo
	Start sim.Time // scheduled start time

	// Filled in as the simulation progresses. FinishAt records the
	// completion time (Done) or the abort time (Aborted).
	Started  bool
	Done     bool
	Aborted  bool // sender gave up after the retransmission budget
	FinishAt sim.Time
	RxBytes  int64 // payload bytes received (any order), for throughput series
}

// FCT returns the flow completion time, or 0 if unfinished.
func (f *Flow) FCT() sim.Time {
	if !f.Done {
		return 0
	}
	return f.FinishAt - f.Start
}

// Table is the global flow registry for one simulation.
type Table struct {
	flows map[pkt.FlowID]*Flow
	next  pkt.FlowID
}

// NewTable returns an empty registry.
func NewTable() *Table { return &Table{flows: make(map[pkt.FlowID]*Flow)} }

// Add registers a flow, assigning its ID, and returns it.
func (t *Table) Add(info cc.FlowInfo, start sim.Time) *Flow {
	t.next++
	info.ID = t.next
	f := &Flow{Info: info, Start: start}
	t.flows[info.ID] = f
	return f
}

// Get returns the flow with the given id, or nil.
func (t *Table) Get(id pkt.FlowID) *Flow { return t.flows[id] }

// All returns every registered flow (map iteration order; callers sort).
func (t *Table) All() []*Flow {
	out := make([]*Flow, 0, len(t.flows))
	for _, f := range t.flows {
		out = append(out, f)
	}
	return out
}

// Len reports the number of registered flows.
func (t *Table) Len() int { return len(t.flows) }

// Config parameterizes a host.
type Config struct {
	ID          pkt.NodeID
	Rate        sim.Rate
	MTU         int
	CNPInterval sim.Time // min spacing of DCQCN CNPs per flow (0 disables CNPs)
	RTOMin      sim.Time // floor for the go-back-N retransmission timeout
	RTOMax      sim.Time // cap for exponential RTO backoff (default 100 ms)

	// MaxRetrans bounds consecutive timeout retransmissions without
	// cumulative-ack progress; one more timeout aborts the flow instead of
	// retrying forever into a dead path. 0 means the default (16);
	// negative disables aborting.
	MaxRetrans int
}

// Host is one server with a single NIC port.
type Host struct {
	Eng  *sim.Engine
	Pool *pkt.Pool
	Cfg  Config

	port  *link.Port
	table *Table

	newSender   cc.SenderFactory
	newReceiver cc.ReceiverFactory

	// Sender side.
	sending []*sendState
	byFlow  map[pkt.FlowID]*sendState
	rr      int
	ctl     pkt.Ring // outgoing control frames
	wakeEv  sim.Timer
	wakeAt  sim.Time
	kick    func() // bound port.Kick, so pacing wake-ups don't allocate

	// Receiver side.
	recv map[pkt.FlowID]*recvState

	// OnFlowDone, if set, fires when this host (as receiver) sees a flow's
	// last in-order byte.
	OnFlowDone func(f *Flow)

	// OnFlowAbort, if set, fires when this host (as sender) gives up on a
	// flow after exhausting its retransmission budget.
	OnFlowAbort func(f *Flow)

	// Telemetry (all optional; nil means off).
	fr      *metrics.FlightRecorder
	reg     *metrics.Registry
	aud     *audit.Ledger
	algName string
	perFlow bool

	// Counters.
	Retransmits int64
	OutOfOrder  int64
	SentData    int64
	RecvData    int64
	Aborted     int64 // sender-side flows given up after the retransmission budget
}

type sendState struct {
	flow     *Flow
	sender   cc.Sender
	next     int64 // next payload byte to emit
	acked    int64 // cumulative acknowledged
	nextTime sim.Time
	progress sim.Time // last time acked advanced
	rtoEv    sim.Timer
	rtoFn    func() // bound checkRTO closure, one per flow (not per re-arm)
	backoff  uint   // consecutive-timeout RTO exponent; reset on progress
	retrans  int    // consecutive timeout retransmissions without progress
	done     bool
}

type recvState struct {
	flow    *Flow
	rcv     cc.Receiver
	got     int64 // contiguous bytes received
	lastCNP sim.Time
	hasCNP  bool
}

// New constructs a host. Call Port to obtain its NIC port for connecting.
func New(eng *sim.Engine, pool *pkt.Pool, cfg Config, table *Table,
	newSender cc.SenderFactory, newReceiver cc.ReceiverFactory, delay sim.Time) *Host {
	if cfg.MTU <= 0 {
		cfg.MTU = pkt.DefaultMTU
	}
	if cfg.RTOMin <= 0 {
		cfg.RTOMin = 500 * sim.Microsecond
	}
	if cfg.RTOMax <= 0 {
		cfg.RTOMax = 100 * sim.Millisecond
	}
	if cfg.MaxRetrans == 0 {
		cfg.MaxRetrans = 16
	}
	h := &Host{
		Eng: eng, Pool: pool, Cfg: cfg, table: table,
		newSender: newSender, newReceiver: newReceiver,
		byFlow: make(map[pkt.FlowID]*sendState),
		recv:   make(map[pkt.FlowID]*recvState),
	}
	h.port = link.NewPort(eng, h, 0, cfg.Rate, delay, pool)
	h.port.SetSource(h)
	h.kick = h.port.Kick
	return h
}

// Port returns the NIC port for topology wiring.
func (h *Host) Port() *link.Port { return h.port }

// SetRecorder attaches a flight recorder (nil detaches).
func (h *Host) SetRecorder(fr *metrics.FlightRecorder) { h.fr = fr }

// SetAudit attaches the conservation-audit ledger (nil detaches).
func (h *Host) SetAudit(a *audit.Ledger) { h.aud = a }

// RegisterMetrics registers the host's counters under prefix (e.g.
// "host.h0"). alg names the CC algorithm for per-flow rate gauges; perFlow
// opts into one cc.<alg>.flow<id>.rate_bps gauge per sender-side flow.
func (h *Host) RegisterMetrics(reg *metrics.Registry, prefix, alg string, perFlow bool) {
	if reg == nil {
		return
	}
	h.reg = reg
	h.algName = alg
	h.perFlow = perFlow
	reg.CounterFunc(prefix+".sent_data_pkts", func() int64 { return h.SentData })
	reg.CounterFunc(prefix+".recv_data_pkts", func() int64 { return h.RecvData })
	reg.CounterFunc(prefix+".retransmits", func() int64 { return h.Retransmits })
	reg.CounterFunc(prefix+".out_of_order", func() int64 { return h.OutOfOrder })
	reg.CounterFunc(prefix+".aborted_flows", func() int64 { return h.Aborted })
	reg.CounterFunc(prefix+".tx_bytes", func() int64 { return h.port.TxBytes })
}

// ID returns the host's node id.
func (h *Host) ID() pkt.NodeID { return h.Cfg.ID }

// StartFlow begins transmitting flow f (which must have Src == this host).
func (h *Host) StartFlow(f *Flow) {
	if f.Info.Src != h.Cfg.ID {
		panic(fmt.Sprintf("host %d: StartFlow for src %d", h.Cfg.ID, f.Info.Src))
	}
	f.Started = true
	h.aud.OnFlowStart(f.Info.ID, f.Info.Size)
	s := &sendState{
		flow:     f,
		sender:   h.newSender(f.Info),
		nextTime: h.Eng.Now(),
		progress: h.Eng.Now(),
	}
	s.rtoFn = func() { h.checkRTO(s) }
	h.sending = append(h.sending, s)
	h.byFlow[f.Info.ID] = s
	if h.perFlow && h.reg != nil {
		h.reg.GaugeFunc(fmt.Sprintf("cc.%s.flow%d.rate_bps", h.algName, f.Info.ID),
			func() float64 { return float64(s.sender.Rate()) })
	}
	h.armRTO(s)
	h.port.Kick()
}

// ActiveSends reports in-progress sender-side flows (for tests).
func (h *Host) ActiveSends() int { return len(h.sending) }

// FlowRate returns the pacing rate of an active flow, or 0.
func (h *Host) FlowRate(id pkt.FlowID) sim.Rate {
	if s, ok := h.byFlow[id]; ok {
		return s.sender.Rate()
	}
	return 0
}

// Sender exposes the cc.Sender of an active flow (for tests/tracing).
func (h *Host) Sender(id pkt.FlowID) cc.Sender {
	if s, ok := h.byFlow[id]; ok {
		return s.sender
	}
	return nil
}

// Next implements link.Source: control frames first, then round-robin over
// eligible (pacing-permitted) flows.
func (h *Host) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	if !paused[pkt.ClassControl] {
		if p := h.ctl.Pop(); p != nil {
			return p
		}
	}
	if paused[pkt.ClassData] || len(h.sending) == 0 {
		return nil
	}
	now := h.Eng.Now()
	n := len(h.sending)
	var earliest sim.Time = -1
	for i := 0; i < n; i++ {
		idx := (h.rr + i) % n
		s := h.sending[idx]
		if s.done || s.next >= s.flow.Info.Size {
			continue
		}
		if s.nextTime <= now {
			h.rr = (idx + 1) % n
			return h.emit(s, now)
		}
		if earliest < 0 || s.nextTime < earliest {
			earliest = s.nextTime
		}
	}
	if earliest >= 0 {
		h.scheduleWake(earliest)
	}
	return nil
}

func (h *Host) emit(s *sendState, now sim.Time) *pkt.Packet {
	size := s.flow.Info.Size - s.next
	if size > int64(h.Cfg.MTU) {
		size = int64(h.Cfg.MTU)
	}
	p := h.Pool.NewData(s.flow.Info.ID, s.flow.Info.Src, s.flow.Info.Dst, s.next, int(size))
	p.SendTS = now
	h.aud.OnInject(s.flow.Info.ID, p.Seq, int(size))
	if s.next == s.acked {
		// The outstanding window opens with this frame: start the no-progress
		// clock here, not at flow start, so time spent parked with nothing on
		// the wire (e.g. behind a down egress port) never looks like a stall.
		s.progress = now
	}
	s.next += size
	if s.next >= s.flow.Info.Size {
		p.Last = true
	}
	base := s.nextTime
	if now > base {
		base = now
	}
	s.nextTime = base + sim.TxTime(int(size), s.sender.Rate())
	h.SentData++
	return p
}

func (h *Host) scheduleWake(at sim.Time) {
	if h.wakeEv.Active() && h.wakeAt <= at && h.wakeAt > h.Eng.Now() {
		return
	}
	h.wakeEv.Cancel()
	h.wakeAt = at
	h.wakeEv = h.Eng.At(at, h.kick)
}

// Receive implements link.Endpoint.
func (h *Host) Receive(p *pkt.Packet, on *link.Port) {
	switch p.Kind {
	case pkt.Data:
		h.onData(p)
	case pkt.Ack:
		h.onAck(p)
	case pkt.CNP:
		if s, ok := h.byFlow[p.Flow]; ok {
			s.sender.OnCNP(h.Eng.Now())
			h.recordRate(s)
		}
		h.Pool.Put(p)
	case pkt.SwitchINT:
		if s, ok := h.byFlow[p.Flow]; ok {
			s.sender.OnSwitchINT(h.Eng.Now(), p)
			h.recordRate(s)
		}
		h.Pool.Put(p)
	default:
		h.Pool.Put(p)
	}
}

func (h *Host) onData(p *pkt.Packet) {
	now := h.Eng.Now()
	h.RecvData++
	flow := h.table.Get(p.Flow)
	if flow == nil {
		panic(fmt.Sprintf("host %d: data for unknown flow %d", h.Cfg.ID, p.Flow))
	}
	rs := h.recv[p.Flow]
	if rs == nil {
		rs = &recvState{flow: flow}
		if h.newReceiver != nil {
			rs.rcv = h.newReceiver(flow.Info)
		}
		h.recv[p.Flow] = rs
	}
	flow.RxBytes += int64(p.Size)
	h.aud.OnDeliver(p.Flow, p.Seq, p.Size)

	switch {
	case p.Seq == rs.got:
		rs.got += int64(p.Size)
	case p.Seq > rs.got:
		h.OutOfOrder++ // gap: dup-ack below triggers go-back-N at the sender
	default:
		// duplicate of already-received data; ack again
	}

	ack := h.Pool.NewControl(pkt.Ack, p.Flow, h.Cfg.ID, p.Src)
	ack.Seq = rs.got
	ack.EchoTS = p.SendTS
	ack.ECE = p.CE
	ack.Hops = append(ack.Hops, p.Hops...)
	if rs.rcv != nil {
		rs.rcv.OnData(now, p, ack)
	}
	if rs.got >= flow.Info.Size && !flow.Done {
		flow.Done = true
		flow.FinishAt = now
		ack.Last = true
		h.aud.OnFlowDone(p.Flow)
		if h.OnFlowDone != nil {
			h.OnFlowDone(flow)
		}
	}
	h.ctl.Push(ack)

	// DCQCN: echo CE marks as CNPs, paced per flow.
	if p.CE && h.Cfg.CNPInterval > 0 && (!rs.hasCNP || now-rs.lastCNP >= h.Cfg.CNPInterval) {
		rs.lastCNP = now
		rs.hasCNP = true
		cnp := h.Pool.NewControl(pkt.CNP, p.Flow, h.Cfg.ID, p.Src)
		if h.fr != nil {
			h.fr.Record(metrics.Event{T: now, Kind: metrics.EvCNP,
				Node: int32(h.Cfg.ID), Port: 0, Flow: int32(p.Flow)})
		}
		h.ctl.Push(cnp)
	}

	h.Pool.Put(p)
	h.port.Kick()
}

func (h *Host) onAck(p *pkt.Packet) {
	now := h.Eng.Now()
	s, ok := h.byFlow[p.Flow]
	if !ok {
		h.Pool.Put(p)
		return
	}
	if p.Seq > s.acked {
		h.aud.OnAckAdvance(p.Flow, s.acked, p.Seq)
		s.acked = p.Seq
		s.progress = now
		s.backoff = 0 // forward progress resets the backoff and the budget
		s.retrans = 0
	}
	s.sender.OnAck(now, p)
	if h.fr != nil {
		h.fr.Record(metrics.Event{T: now, Kind: metrics.EvAck,
			Node: int32(h.Cfg.ID), Port: 0, Flow: int32(p.Flow), Val: s.acked})
		h.recordRate(s)
	}
	if s.acked >= s.flow.Info.Size && !s.done {
		s.done = true
		h.finishSend(s)
	}
	h.Pool.Put(p)
}

// recordRate flight-records the flow's pacing rate after a CC callback.
func (h *Host) recordRate(s *sendState) {
	if h.fr == nil {
		return
	}
	h.fr.Record(metrics.Event{T: h.Eng.Now(), Kind: metrics.EvRateUpdate,
		Node: int32(h.Cfg.ID), Port: 0, Flow: int32(s.flow.Info.ID), Val: int64(s.sender.Rate())})
}

func (h *Host) finishSend(s *sendState) {
	if closer, ok := s.sender.(interface{ Close() }); ok {
		closer.Close()
	}
	s.rtoEv.Cancel()
	delete(h.byFlow, s.flow.Info.ID)
	for i, x := range h.sending {
		if x == s {
			h.sending = append(h.sending[:i], h.sending[i+1:]...)
			break
		}
	}
	if h.rr >= len(h.sending) {
		h.rr = 0
	}
}

// rto returns the flow's current retransmission timeout: the base (4×RTT,
// floored at RTOMin) shifted left by the consecutive-timeout backoff
// exponent and capped at RTOMax — but never below the base, so a small cap
// cannot make timeouts fire faster than a fresh flow's.
func (h *Host) rto(s *sendState) sim.Time {
	rto := 4 * s.flow.Info.BaseRTT
	if rto < h.Cfg.RTOMin {
		rto = h.Cfg.RTOMin
	}
	if s.backoff > 0 {
		backed := rto << s.backoff
		if backed > h.Cfg.RTOMax {
			backed = h.Cfg.RTOMax
		}
		if backed > rto {
			rto = backed
		}
	}
	return rto
}

func (h *Host) armRTO(s *sendState) {
	s.rtoEv = h.Eng.After(h.rto(s), s.rtoFn)
}

// checkRTO implements go-back-N: if no cumulative-ack progress for one RTO
// while data is outstanding, rewind to the last acked byte. Each
// consecutive timeout doubles the RTO (capped at RTOMax) and spends one
// unit of the retransmission budget; exhausting the budget aborts the flow.
// An idle flow (nothing outstanding — e.g. parked behind a down egress
// port) spends nothing and keeps its timer armed.
func (h *Host) checkRTO(s *sendState) {
	if s.done {
		return
	}
	now := h.Eng.Now()
	if s.next > s.acked && now-s.progress >= h.rto(s) {
		if h.Cfg.MaxRetrans >= 0 && s.retrans >= h.Cfg.MaxRetrans {
			h.abort(s)
			return
		}
		s.retrans++
		if s.backoff < 20 { // 2^20 × base saturates any practical RTOMax
			s.backoff++
		}
		s.next = s.acked
		s.nextTime = now
		s.progress = now
		h.Retransmits++
		h.port.Kick()
	}
	h.armRTO(s)
}

// abort gives up on a flow after its retransmission budget: the flow is
// flagged and counted, then torn down exactly like a completion so its
// sender closes, its RTO timer cancels and its pacing slot frees. Receiver
// state stays; any late data is acked harmlessly and returns to the pool.
func (h *Host) abort(s *sendState) {
	s.done = true
	s.flow.Aborted = true
	s.flow.FinishAt = h.Eng.Now()
	h.aud.OnFlowAbort(s.flow.Info.ID)
	h.Aborted++
	h.finishSend(s)
	if h.OnFlowAbort != nil {
		h.OnFlowAbort(s.flow)
	}
}

// CurrentRTO reports the active retransmission timeout of a flow, backoff
// included (tests/diagnostics); 0 when the flow is not sending.
func (h *Host) CurrentRTO(id pkt.FlowID) sim.Time {
	if s, ok := h.byFlow[id]; ok {
		return h.rto(s)
	}
	return 0
}

// ReceivedBytes reports contiguous bytes received for a flow (tests).
func (h *Host) ReceivedBytes(id pkt.FlowID) int64 {
	if rs, ok := h.recv[id]; ok {
		return rs.got
	}
	return 0
}
