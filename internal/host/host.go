// Package host models RDMA-capable servers: per-flow rate-paced queue pairs
// multiplexed onto one NIC port, per-packet ACK generation with INT echo,
// DCQCN CNP generation, MLCC credit handling via pluggable receiver logic,
// go-back-N loss recovery, and flow-completion-time recording.
package host

import (
	"fmt"

	"mlcc/internal/audit"
	"mlcc/internal/cc"
	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Flow is one transfer plus its life-cycle record. Flows are registered in a
// Table shared by sender and receiver hosts and by the stats collectors.
type Flow struct {
	Info  cc.FlowInfo
	Start sim.Time // scheduled start time

	// Filled in as the simulation progresses. FinishAt records the
	// completion time (Done) or the abort time (Aborted).
	Started  bool
	Done     bool
	Aborted  bool // sender gave up after the retransmission budget
	FinishAt sim.Time
	RxBytes  int64 // payload bytes received (any order), for throughput series
}

// FCT returns the flow completion time, or 0 if unfinished.
func (f *Flow) FCT() sim.Time {
	if !f.Done {
		return 0
	}
	return f.FinishAt - f.Start
}

// Table is the global flow registry for one simulation.
type Table struct {
	flows map[pkt.FlowID]*Flow
	next  pkt.FlowID
}

// NewTable returns an empty registry.
func NewTable() *Table { return &Table{flows: make(map[pkt.FlowID]*Flow)} }

// Add registers a flow, assigning its ID, and returns it.
func (t *Table) Add(info cc.FlowInfo, start sim.Time) *Flow {
	t.next++
	info.ID = t.next
	f := &Flow{Info: info, Start: start}
	t.flows[info.ID] = f
	return f
}

// Get returns the flow with the given id, or nil.
func (t *Table) Get(id pkt.FlowID) *Flow { return t.flows[id] }

// All returns every registered flow (map iteration order; callers sort).
func (t *Table) All() []*Flow {
	out := make([]*Flow, 0, len(t.flows))
	for _, f := range t.flows {
		out = append(out, f)
	}
	return out
}

// Len reports the number of registered flows.
func (t *Table) Len() int { return len(t.flows) }

// Config parameterizes a host.
type Config struct {
	ID          pkt.NodeID
	Rate        sim.Rate
	MTU         int
	CNPInterval sim.Time // min spacing of DCQCN CNPs per flow (0 disables CNPs)
	RTOMin      sim.Time // floor for the go-back-N retransmission timeout
	RTOMax      sim.Time // cap for exponential RTO backoff (default 100 ms)

	// MaxRetrans bounds consecutive timeout retransmissions without
	// cumulative-ack progress; one more timeout aborts the flow instead of
	// retrying forever into a dead path. 0 means the default (16);
	// negative disables aborting.
	MaxRetrans int

	// FBWatchdogK arms the feedback-silence watchdog: with data outstanding
	// and no feedback (ACK, CNP or Switch-INT) for K·BaseRTT, the flow's
	// pacing rate is halved once per further silent RTT (graceful decay
	// toward cc.MinRate), and recovers one halving per feedback frame once
	// the reverse path returns. 0 (the default) disarms the watchdog
	// entirely: pacing reads the CC rate untouched, so clean runs are
	// bit-identical to pre-watchdog builds.
	FBWatchdogK int
}

// DefaultWatchdogK is the silence threshold (in base RTTs) callers arm when
// they configure feedback faults without choosing a K (mlccsim's feedback
// flags use it). 4·RTT matches the go-back-N RTO base: the watchdog starts
// decaying at the same silence scale where loss recovery would suspect a
// dead path. The library default is off — congestion pauses (PFC storms)
// also silence feedback, so arming is a policy decision, not a topology one.
const DefaultWatchdogK = 4

// wdMaxShift caps the watchdog's halving exponent; 2^30 is far below
// cc.MinRate for any real line rate, so deeper decay is unobservable.
const wdMaxShift = 30

// Host is one server with a single NIC port.
type Host struct {
	Eng  *sim.Engine
	Pool *pkt.Pool
	Cfg  Config

	port  *link.Port
	table *Table

	newSender   cc.SenderFactory
	newReceiver cc.ReceiverFactory

	// Sender side.
	sending []*sendState
	byFlow  map[pkt.FlowID]*sendState
	rr      int
	ctl     pkt.Ring // outgoing control frames
	wakeEv  sim.Timer
	wakeAt  sim.Time
	kick    func() // bound port.Kick, so pacing wake-ups don't allocate

	// Receiver side.
	recv map[pkt.FlowID]*recvState

	// Node-fault state: crashed marks the host powered off (NIC cable cut,
	// sender-side state torn down); parked remembers each in-progress flow's
	// acked prefix so Restart can rebuild its go-back-N state and resume.
	crashed bool
	parked  []parkedFlow

	// OnFlowDone, if set, fires when this host (as receiver) sees a flow's
	// last in-order byte.
	OnFlowDone func(f *Flow)

	// OnFlowAbort, if set, fires when this host (as sender) gives up on a
	// flow after exhausting its retransmission budget.
	OnFlowAbort func(f *Flow)

	// Telemetry (all optional; nil means off).
	fr      *metrics.FlightRecorder
	reg     *metrics.Registry
	aud     *audit.Ledger
	algName string
	perFlow bool

	// fbFilter, if set, screens every feedback frame (ACK, CNP, Switch-INT)
	// at ingress — the fault layer's reverse-path hook. It returns whether to
	// destroy the frame and how long to defer it. The signature matches
	// fault.FeedbackFilter structurally so the topology can hand one over
	// without this package importing the fault layer.
	fbFilter func(now sim.Time, p *pkt.Packet) (drop bool, delay sim.Time)

	// Counters.
	Retransmits int64
	OutOfOrder  int64
	SentData    int64
	RecvData    int64
	Aborted     int64 // sender-side flows given up after the retransmission budget

	// Feedback-plane counters.
	FBDropped        int64 // feedback frames destroyed by the fault filter
	FBDelayed        int64 // feedback frames deferred by the fault filter
	InvalidINT       int64 // structurally invalid INT stacks discarded at ingress
	WatchdogDecays   int64 // rate halvings applied by the feedback-silence watchdog
	WatchdogRecovers int64 // halvings unwound after feedback resumed
	wdPeakShift      int   // deepest halving exponent any flow reached

	// Node-fault counters.
	Crashes  int64 // scripted power-loss events applied to this host
	Restarts int64 // scripted restarts applied to this host

	// ackedTotal accumulates cumulative-ack advances across all sender-side
	// flows — monotone, so the guard plane's stall supervisor can use it as
	// this host's progress signal.
	ackedTotal int64
}

type sendState struct {
	flow     *Flow
	sender   cc.Sender
	next     int64 // next payload byte to emit
	acked    int64 // cumulative acknowledged
	nextTime sim.Time
	progress sim.Time // last time acked advanced
	lastFB   sim.Time // last feedback frame seen (watchdog silence clock)
	wdShift  int      // current watchdog halving exponent (0 = no decay)
	rtoEv    sim.Timer
	rtoFn    func() // bound checkRTO closure, one per flow (not per re-arm)
	backoff  uint   // consecutive-timeout RTO exponent; reset on progress
	retrans  int    // consecutive timeout retransmissions without progress
	done     bool
}

type recvState struct {
	flow    *Flow
	rcv     cc.Receiver
	got     int64 // contiguous bytes received
	lastCNP sim.Time
	hasCNP  bool
}

// parkedFlow is a sender-side flow surviving a host crash: the acked prefix
// is the transfer's durable checkpoint, from which Restart rebuilds go-back-N
// state (next = acked) and resumes.
type parkedFlow struct {
	flow  *Flow
	acked int64
}

// New constructs a host. Call Port to obtain its NIC port for connecting.
func New(eng *sim.Engine, pool *pkt.Pool, cfg Config, table *Table,
	newSender cc.SenderFactory, newReceiver cc.ReceiverFactory, delay sim.Time) *Host {
	if cfg.MTU <= 0 {
		cfg.MTU = pkt.DefaultMTU
	}
	if cfg.RTOMin <= 0 {
		cfg.RTOMin = 500 * sim.Microsecond
	}
	if cfg.RTOMax <= 0 {
		cfg.RTOMax = 100 * sim.Millisecond
	}
	if cfg.MaxRetrans == 0 {
		cfg.MaxRetrans = 16
	}
	h := &Host{
		Eng: eng, Pool: pool, Cfg: cfg, table: table,
		newSender: newSender, newReceiver: newReceiver,
		byFlow: make(map[pkt.FlowID]*sendState),
		recv:   make(map[pkt.FlowID]*recvState),
	}
	h.port = link.NewPort(eng, h, 0, cfg.Rate, delay, pool)
	h.port.SetSource(h)
	h.kick = h.port.Kick
	return h
}

// Port returns the NIC port for topology wiring.
func (h *Host) Port() *link.Port { return h.port }

// SetRecorder attaches a flight recorder (nil detaches).
func (h *Host) SetRecorder(fr *metrics.FlightRecorder) { h.fr = fr }

// SetAudit attaches the conservation-audit ledger (nil detaches).
func (h *Host) SetAudit(a *audit.Ledger) { h.aud = a }

// SetFeedbackFilter installs the fault layer's reverse-path filter (nil
// detaches). The parameter is a bare func type so fault.FeedbackFilter
// assigns directly without an import edge from host to fault.
func (h *Host) SetFeedbackFilter(f func(now sim.Time, p *pkt.Packet) (drop bool, delay sim.Time)) {
	h.fbFilter = f
}

// WatchdogShiftMax reports the deepest halving exponent the feedback-silence
// watchdog reached on any of this host's flows (0 = never decayed).
func (h *Host) WatchdogShiftMax() int { return h.wdPeakShift }

// RegisterMetrics registers the host's counters under prefix (e.g.
// "host.h0"). alg names the CC algorithm for per-flow rate gauges; perFlow
// opts into one cc.<alg>.flow<id>.rate_bps gauge per sender-side flow.
func (h *Host) RegisterMetrics(reg *metrics.Registry, prefix, alg string, perFlow bool) {
	if reg == nil {
		return
	}
	h.reg = reg
	h.algName = alg
	h.perFlow = perFlow
	reg.CounterFunc(prefix+".sent_data_pkts", func() int64 { return h.SentData })
	reg.CounterFunc(prefix+".recv_data_pkts", func() int64 { return h.RecvData })
	reg.CounterFunc(prefix+".retransmits", func() int64 { return h.Retransmits })
	reg.CounterFunc(prefix+".out_of_order", func() int64 { return h.OutOfOrder })
	reg.CounterFunc(prefix+".aborted_flows", func() int64 { return h.Aborted })
	reg.CounterFunc(prefix+".tx_bytes", func() int64 { return h.port.TxBytes })
	reg.CounterFunc(prefix+".fb_dropped", func() int64 { return h.FBDropped })
	reg.CounterFunc(prefix+".fb_delayed", func() int64 { return h.FBDelayed })
	reg.CounterFunc(prefix+".fb_invalid_int", func() int64 { return h.InvalidINT })
	reg.CounterFunc(prefix+".watchdog_decays", func() int64 { return h.WatchdogDecays })
	reg.CounterFunc(prefix+".watchdog_recovers", func() int64 { return h.WatchdogRecovers })
	reg.CounterFunc(prefix+".crashes", func() int64 { return h.Crashes })
	reg.CounterFunc(prefix+".restarts", func() int64 { return h.Restarts })
}

// ID returns the host's node id.
func (h *Host) ID() pkt.NodeID { return h.Cfg.ID }

// StartFlow begins transmitting flow f (which must have Src == this host).
func (h *Host) StartFlow(f *Flow) {
	if f.Info.Src != h.Cfg.ID {
		panic(fmt.Sprintf("host %d: StartFlow for src %d", h.Cfg.ID, f.Info.Src))
	}
	f.Started = true
	h.aud.OnFlowStart(f.Info.ID, f.Info.Size)
	s := &sendState{
		flow:     f,
		sender:   h.newSender(f.Info),
		nextTime: h.Eng.Now(),
		progress: h.Eng.Now(),
		lastFB:   h.Eng.Now(),
	}
	s.rtoFn = func() { h.checkRTO(s) }
	h.sending = append(h.sending, s)
	h.byFlow[f.Info.ID] = s
	if h.perFlow && h.reg != nil {
		// The gauge resolves the current sendState by ID rather than capturing
		// s: a host restart rebuilds the flow's go-back-N state, and the
		// registry rejects duplicate names, so the one registration must
		// follow the flow across rebuilds.
		id := f.Info.ID
		h.reg.GaugeFunc(fmt.Sprintf("cc.%s.flow%d.rate_bps", h.algName, id),
			func() float64 {
				if cur, ok := h.byFlow[id]; ok {
					return float64(cur.sender.Rate())
				}
				return 0
			})
	}
	h.armRTO(s)
	h.port.Kick()
}

// ActiveSends reports in-progress sender-side flows (for tests).
func (h *Host) ActiveSends() int { return len(h.sending) }

// FlowRate returns the pacing rate of an active flow, or 0.
func (h *Host) FlowRate(id pkt.FlowID) sim.Rate {
	if s, ok := h.byFlow[id]; ok {
		return s.sender.Rate()
	}
	return 0
}

// Sender exposes the cc.Sender of an active flow (for tests/tracing).
func (h *Host) Sender(id pkt.FlowID) cc.Sender {
	if s, ok := h.byFlow[id]; ok {
		return s.sender
	}
	return nil
}

// Next implements link.Source: control frames first, then round-robin over
// eligible (pacing-permitted) flows.
func (h *Host) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	if !paused[pkt.ClassControl] {
		if p := h.ctl.Pop(); p != nil {
			return p
		}
	}
	if paused[pkt.ClassData] || len(h.sending) == 0 {
		return nil
	}
	now := h.Eng.Now()
	n := len(h.sending)
	var earliest sim.Time = -1
	for i := 0; i < n; i++ {
		idx := (h.rr + i) % n
		s := h.sending[idx]
		if s.done || s.next >= s.flow.Info.Size {
			continue
		}
		if s.nextTime <= now {
			h.rr = (idx + 1) % n
			return h.emit(s, now)
		}
		if earliest < 0 || s.nextTime < earliest {
			earliest = s.nextTime
		}
	}
	if earliest >= 0 {
		h.scheduleWake(earliest)
	}
	return nil
}

func (h *Host) emit(s *sendState, now sim.Time) *pkt.Packet {
	size := s.flow.Info.Size - s.next
	if size > int64(h.Cfg.MTU) {
		size = int64(h.Cfg.MTU)
	}
	p := h.Pool.NewData(s.flow.Info.ID, s.flow.Info.Src, s.flow.Info.Dst, s.next, int(size))
	p.SendTS = now
	h.aud.OnInject(s.flow.Info.ID, p.Seq, int(size))
	if h.fr.Wants(metrics.EvSend) {
		h.fr.Record(metrics.Event{T: now, Kind: metrics.EvSend,
			Node: int32(h.Cfg.ID), Flow: int32(p.Flow), Val: p.Seq})
	}
	if s.next == s.acked {
		// The outstanding window opens with this frame: start the no-progress
		// clock here, not at flow start, so time spent parked with nothing on
		// the wire (e.g. behind a down egress port) never looks like a stall.
		// The watchdog's silence clock restarts for the same reason: no
		// feedback was owed while nothing was outstanding.
		s.progress = now
		s.lastFB = now
	}
	s.next += size
	if s.next >= s.flow.Info.Size {
		p.Last = true
	}
	base := s.nextTime
	if now > base {
		base = now
	}
	s.nextTime = base + sim.TxTime(int(size), h.pacingRate(s, now))
	h.SentData++
	return p
}

func (h *Host) scheduleWake(at sim.Time) {
	if h.wakeEv.Active() && h.wakeAt <= at && h.wakeAt > h.Eng.Now() {
		return
	}
	h.wakeEv.Cancel()
	h.wakeAt = at
	h.wakeEv = h.Eng.At(at, h.kick)
}

// Receive implements link.Endpoint.
func (h *Host) Receive(p *pkt.Packet, on *link.Port) {
	switch p.Kind {
	case pkt.Data:
		h.onData(p)
	case pkt.Ack, pkt.CNP, pkt.SwitchINT:
		h.onFeedback(p)
	default:
		h.Pool.Put(p)
	}
}

// onFeedback screens an incoming feedback frame through the fault filter
// (after the port's Rx accounting, so link conservation books stay balanced),
// then delivers it — immediately, or after the filter's imposed delay.
func (h *Host) onFeedback(p *pkt.Packet) {
	if h.fbFilter != nil {
		drop, delay := h.fbFilter(h.Eng.Now(), p)
		if drop {
			h.FBDropped++
			h.aud.OnFeedbackDrop(p)
			h.Pool.Put(p)
			return
		}
		if delay > 0 {
			h.FBDelayed++
			h.Eng.After(delay, func() { h.deliverFeedback(p) })
			return
		}
	}
	h.deliverFeedback(p)
}

// deliverFeedback validates any carried INT stack and dispatches the frame to
// the flow's CC sender. A structurally invalid stack (corrupted in flight) is
// discarded and counted rather than folded into estimator state; the frame's
// other fields (cumulative ack, ECE) still apply.
func (h *Host) deliverFeedback(p *pkt.Packet) {
	if h.crashed {
		// A frame the fault filter deferred before the host crashed: a dead
		// host processes nothing, so it lands in the void — destroyed and
		// counted like a filter drop, keeping the pool clean.
		h.FBDropped++
		h.aud.OnFeedbackDrop(p)
		h.Pool.Put(p)
		return
	}
	now := h.Eng.Now()
	if len(p.Hops) > 0 && !cc.ValidINTStack(p.Hops) {
		h.InvalidINT++
		if h.fr.Wants(metrics.EvFBInvalid) {
			h.fr.Record(metrics.Event{T: now, Kind: metrics.EvFBInvalid,
				Node: int32(h.Cfg.ID), Port: 0, Flow: int32(p.Flow), Val: int64(len(p.Hops))})
		}
		p.ClearHops()
	}
	switch p.Kind {
	case pkt.Ack:
		h.onAck(p)
	case pkt.CNP:
		if s, ok := h.byFlow[p.Flow]; ok {
			h.noteFeedback(s, now)
			s.sender.OnCNP(now)
			h.recordRate(s)
		}
		h.Pool.Put(p)
	case pkt.SwitchINT:
		if s, ok := h.byFlow[p.Flow]; ok {
			h.noteFeedback(s, now)
			s.sender.OnSwitchINT(now, p)
			h.recordRate(s)
		}
		h.Pool.Put(p)
	default:
		h.Pool.Put(p)
	}
}

func (h *Host) onData(p *pkt.Packet) {
	now := h.Eng.Now()
	h.RecvData++
	flow := h.table.Get(p.Flow)
	if flow == nil {
		panic(fmt.Sprintf("host %d: data for unknown flow %d", h.Cfg.ID, p.Flow))
	}
	rs := h.recv[p.Flow]
	if rs == nil {
		rs = &recvState{flow: flow}
		if h.newReceiver != nil {
			rs.rcv = h.newReceiver(flow.Info)
		}
		h.recv[p.Flow] = rs
	}
	flow.RxBytes += int64(p.Size)
	h.aud.OnDeliver(p.Flow, p.Seq, p.Size)
	if h.fr.Wants(metrics.EvDeliver) {
		h.fr.Record(metrics.Event{T: now, Kind: metrics.EvDeliver,
			Node: int32(h.Cfg.ID), Flow: int32(p.Flow), Val: p.Seq})
	}

	switch {
	case p.Seq == rs.got:
		rs.got += int64(p.Size)
	case p.Seq > rs.got:
		h.OutOfOrder++ // gap: dup-ack below triggers go-back-N at the sender
	default:
		// duplicate of already-received data; ack again
	}

	ack := h.Pool.NewControl(pkt.Ack, p.Flow, h.Cfg.ID, p.Src)
	ack.Seq = rs.got
	ack.EchoTS = p.SendTS
	ack.ECE = p.CE
	ack.Hops = append(ack.Hops, p.Hops...)
	if rs.rcv != nil {
		rs.rcv.OnData(now, p, ack)
	}
	if rs.got >= flow.Info.Size && !flow.Done {
		flow.Done = true
		flow.FinishAt = now
		ack.Last = true
		h.aud.OnFlowDone(p.Flow)
		if h.OnFlowDone != nil {
			h.OnFlowDone(flow)
		}
	}
	h.ctl.Push(ack)

	// DCQCN: echo CE marks as CNPs, paced per flow.
	if p.CE && h.Cfg.CNPInterval > 0 && (!rs.hasCNP || now-rs.lastCNP >= h.Cfg.CNPInterval) {
		rs.lastCNP = now
		rs.hasCNP = true
		cnp := h.Pool.NewControl(pkt.CNP, p.Flow, h.Cfg.ID, p.Src)
		if h.fr != nil {
			h.fr.Record(metrics.Event{T: now, Kind: metrics.EvCNP,
				Node: int32(h.Cfg.ID), Port: 0, Flow: int32(p.Flow)})
		}
		h.ctl.Push(cnp)
	}

	h.Pool.Put(p)
	h.port.Kick()
}

func (h *Host) onAck(p *pkt.Packet) {
	now := h.Eng.Now()
	s, ok := h.byFlow[p.Flow]
	if !ok {
		h.Pool.Put(p)
		return
	}
	if p.Seq > s.acked {
		h.aud.OnAckAdvance(p.Flow, s.acked, p.Seq)
		h.ackedTotal += p.Seq - s.acked
		s.acked = p.Seq
		s.progress = now
		s.backoff = 0 // forward progress resets the backoff and the budget
		s.retrans = 0
	}
	h.noteFeedback(s, now)
	s.sender.OnAck(now, p)
	if h.fr != nil {
		h.fr.Record(metrics.Event{T: now, Kind: metrics.EvAck,
			Node: int32(h.Cfg.ID), Port: 0, Flow: int32(p.Flow), Val: s.acked})
		h.recordRate(s)
	}
	if s.acked >= s.flow.Info.Size && !s.done {
		s.done = true
		h.finishSend(s)
	}
	h.Pool.Put(p)
}

// noteFeedback feeds the watchdog's silence clock: every feedback frame
// stamps lastFB and, if the flow had decayed, unwinds one halving —
// multiplicative recovery paced by the feedback stream itself, so a trickle
// of surviving frames recovers slowly and a healthy stream recovers fast.
func (h *Host) noteFeedback(s *sendState, now sim.Time) {
	if h.Cfg.FBWatchdogK <= 0 {
		return
	}
	s.lastFB = now
	if s.wdShift > 0 {
		s.wdShift--
		h.WatchdogRecovers++
		if h.fr.Wants(metrics.EvWatchdog) {
			h.fr.Record(metrics.Event{T: now, Kind: metrics.EvWatchdog,
				Node: int32(h.Cfg.ID), Port: 0, Flow: int32(s.flow.Info.ID), Val: int64(s.wdShift)})
		}
	}
}

// pacingRate is the effective emission rate: the CC sender's rate, decayed by
// the feedback-silence watchdog when armed. With data outstanding and no
// feedback for K·BaseRTT, the rate halves once per further silent RTT,
// flooring at cc.MinRate — the sender stops trusting a stale rate it can no
// longer confirm. Disarmed (K ≤ 0) this is exactly s.sender.Rate().
func (h *Host) pacingRate(s *sendState, now sim.Time) sim.Rate {
	rate := s.sender.Rate()
	if h.Cfg.FBWatchdogK <= 0 {
		return rate
	}
	rtt := s.flow.Info.BaseRTT
	if rtt > 0 && s.next > s.acked {
		silence := now - s.lastFB
		thresh := sim.Time(h.Cfg.FBWatchdogK) * rtt
		if silence >= thresh {
			shift := 1 + int((silence-thresh)/rtt)
			if shift > wdMaxShift {
				shift = wdMaxShift
			}
			if shift > s.wdShift {
				h.WatchdogDecays += int64(shift - s.wdShift)
				s.wdShift = shift
				if shift > h.wdPeakShift {
					h.wdPeakShift = shift
				}
				if h.fr.Wants(metrics.EvWatchdog) {
					h.fr.Record(metrics.Event{T: now, Kind: metrics.EvWatchdog,
						Node: int32(h.Cfg.ID), Port: 0, Flow: int32(s.flow.Info.ID), Val: int64(shift)})
				}
			}
		}
	}
	if s.wdShift > 0 {
		rate >>= uint(s.wdShift)
		if rate < cc.MinRate {
			rate = cc.MinRate
		}
	}
	return rate
}

// recordRate flight-records the flow's pacing rate after a CC callback.
func (h *Host) recordRate(s *sendState) {
	if h.fr == nil {
		return
	}
	h.fr.Record(metrics.Event{T: h.Eng.Now(), Kind: metrics.EvRateUpdate,
		Node: int32(h.Cfg.ID), Port: 0, Flow: int32(s.flow.Info.ID), Val: int64(s.sender.Rate())})
}

func (h *Host) finishSend(s *sendState) {
	if closer, ok := s.sender.(interface{ Close() }); ok {
		closer.Close()
	}
	s.rtoEv.Cancel()
	delete(h.byFlow, s.flow.Info.ID)
	for i, x := range h.sending {
		if x == s {
			h.sending = append(h.sending[:i], h.sending[i+1:]...)
			break
		}
	}
	if h.rr >= len(h.sending) {
		h.rr = 0
	}
}

// rto returns the flow's current retransmission timeout: the base (4×RTT,
// floored at RTOMin) shifted left by the consecutive-timeout backoff
// exponent and capped at RTOMax — but never below the base, so a small cap
// cannot make timeouts fire faster than a fresh flow's.
func (h *Host) rto(s *sendState) sim.Time {
	rto := 4 * s.flow.Info.BaseRTT
	if rto < h.Cfg.RTOMin {
		rto = h.Cfg.RTOMin
	}
	if s.backoff > 0 {
		backed := rto << s.backoff
		if backed > h.Cfg.RTOMax {
			backed = h.Cfg.RTOMax
		}
		if backed > rto {
			rto = backed
		}
	}
	return rto
}

func (h *Host) armRTO(s *sendState) {
	s.rtoEv = h.Eng.After(h.rto(s), s.rtoFn)
}

// checkRTO implements go-back-N: if no cumulative-ack progress for one RTO
// while data is outstanding, rewind to the last acked byte. Each
// consecutive timeout doubles the RTO (capped at RTOMax) and spends one
// unit of the retransmission budget; exhausting the budget aborts the flow.
// An idle flow (nothing outstanding — e.g. parked behind a down egress
// port) spends nothing and keeps its timer armed.
func (h *Host) checkRTO(s *sendState) {
	if s.done {
		return
	}
	now := h.Eng.Now()
	if s.next > s.acked && now-s.progress >= h.rto(s) {
		if h.Cfg.MaxRetrans >= 0 && s.retrans >= h.Cfg.MaxRetrans {
			h.abort(s)
			return
		}
		s.retrans++
		if s.backoff < 20 { // 2^20 × base saturates any practical RTOMax
			s.backoff++
		}
		s.next = s.acked
		s.nextTime = now
		s.progress = now
		h.Retransmits++
		h.port.Kick()
	}
	h.armRTO(s)
}

// abort gives up on a flow after its retransmission budget: the flow is
// flagged and counted, then torn down exactly like a completion so its
// sender closes, its RTO timer cancels and its pacing slot frees. Receiver
// state stays; any late data is acked harmlessly and returns to the pool.
func (h *Host) abort(s *sendState) {
	s.done = true
	s.flow.Aborted = true
	s.flow.FinishAt = h.Eng.Now()
	h.aud.OnFlowAbort(s.flow.Info.ID)
	h.Aborted++
	h.finishSend(s)
	if h.OnFlowAbort != nil {
		h.OnFlowAbort(s.flow)
	}
}

// CurrentRTO reports the active retransmission timeout of a flow, backoff
// included (tests/diagnostics); 0 when the flow is not sending.
func (h *Host) CurrentRTO(id pkt.FlowID) sim.Time {
	if s, ok := h.byFlow[id]; ok {
		return h.rto(s)
	}
	return 0
}

// ReceivedBytes reports contiguous bytes received for a flow (tests).
func (h *Host) ReceivedBytes(id pkt.FlowID) int64 {
	if rs, ok := h.recv[id]; ok {
		return rs.got
	}
	return 0
}

// Crash models a host power loss. The NIC cable is cut in both directions
// through SetDown — which destroys in-flight frames at their would-be arrival
// times, folds any open PFC pause interval into PausedTotal and clears the
// pause state, so a crash while paused cannot strand PausedTotalAt
// accounting. Sender-side go-back-N state is torn down pool-clean: pacing and
// RTO timers cancel, CC senders close, queued control frames return to the
// pool, and every in-progress flow parks with its acked prefix as the
// checkpoint Restart resumes from. Flows stay un-Done and un-Aborted;
// receiver-side reassembly state is retained (the acked prefix is durable on
// both sides, mirroring the audit ledger's monotone replicas). Idempotent.
func (h *Host) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	h.Crashes++
	h.port.SetDown(true)
	if peer := h.port.Peer(); peer != nil {
		peer.SetDown(true)
	}
	h.wakeEv.Cancel()
	for p := h.ctl.Pop(); p != nil; p = h.ctl.Pop() {
		h.Pool.Put(p)
	}
	for _, s := range h.sending {
		s.rtoEv.Cancel()
		if closer, ok := s.sender.(interface{ Close() }); ok {
			closer.Close()
		}
		h.parked = append(h.parked, parkedFlow{flow: s.flow, acked: s.acked})
		delete(h.byFlow, s.flow.Info.ID)
	}
	h.sending = h.sending[:0]
	h.rr = 0
}

// Restart powers a crashed host back on: the NIC comes up in both directions
// and every parked flow's go-back-N state is rebuilt from its acked
// checkpoint — next = acked, a fresh CC sender, zeroed RTO backoff and
// retransmission budget. The audit ledger is NOT re-told about the flow
// (OnFlowStart twice is a violation); the rebuilt state resumes the same
// transfer. The progress and watchdog clocks restart when the first frame
// reopens the window (see emit), so time spent crashed never reads as a
// stall. A flow the receiver completed while the host was down stays torn
// down. Idempotent.
func (h *Host) Restart() {
	if !h.crashed {
		return
	}
	h.crashed = false
	h.Restarts++
	h.port.SetDown(false)
	if peer := h.port.Peer(); peer != nil {
		peer.SetDown(false)
	}
	now := h.Eng.Now()
	for _, pf := range h.parked {
		f := pf.flow
		if f.Done || f.Aborted {
			continue
		}
		s := &sendState{
			flow:     f,
			sender:   h.newSender(f.Info),
			next:     pf.acked,
			acked:    pf.acked,
			nextTime: now,
			progress: now,
			lastFB:   now,
		}
		s.rtoFn = func() { h.checkRTO(s) }
		h.sending = append(h.sending, s)
		h.byFlow[f.Info.ID] = s
		h.armRTO(s)
	}
	h.parked = nil
	h.port.Kick()
}

// Crashed reports whether the host is currently powered off.
func (h *Host) Crashed() bool { return h.crashed }

// ParkedFlows reports sender-side flows parked by a crash (tests).
func (h *Host) ParkedFlows() int { return len(h.parked) }

// AckedBytes reports cumulative acknowledged payload bytes across all of this
// host's sender-side flows — monotone across crashes and restarts. This is
// the guard plane's progress signal (guard.Progress).
func (h *Host) AckedBytes() int64 { return h.ackedTotal }

// OutstandingBytes reports un-acked bytes inside the go-back-N windows of
// active sender-side flows. Parked (crashed) and finished flows contribute
// nothing. This is the guard plane's "work exists" signal (guard.Progress).
func (h *Host) OutstandingBytes() int64 {
	var sum int64
	for _, s := range h.sending {
		if s.next > s.acked {
			sum += s.next - s.acked
		}
	}
	return sum
}
