package host

import (
	"testing"

	"mlcc/internal/cc"
	"mlcc/internal/fabric"
	"mlcc/internal/link"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// fixedCC paces at a constant rate and records callbacks.
type fixedCC struct {
	rate       sim.Rate
	acks       int
	cnps       int
	switchINTs int
	closed     bool
}

func (f *fixedCC) OnAck(now sim.Time, ack *pkt.Packet) { f.acks++ }
func (f *fixedCC) OnCNP(now sim.Time)                  { f.cnps++ }
func (f *fixedCC) OnSwitchINT(now sim.Time, p *pkt.Packet) {
	f.switchINTs++
}
func (f *fixedCC) Rate() sim.Rate { return f.rate }
func (f *fixedCC) Close()         { f.closed = true }

// echoReceiver stamps a recognizable credit onto ACKs.
type echoReceiver struct{ calls int }

func (e *echoReceiver) OnData(now sim.Time, data, ack *pkt.Packet) {
	e.calls++
	ack.CR = 42
}

// rig: two hosts joined by one switch.
type rig struct {
	eng    *sim.Engine
	pool   *pkt.Pool
	table  *Table
	a, b   *Host
	sw     *fabric.Switch
	ccByID map[pkt.FlowID]*fixedCC
}

func newRig(t *testing.T, swCfg fabric.Config, hostCfg Config) *rig {
	return newRigRates(t, swCfg, hostCfg, nil)
}

// newRigRates lets tests use asymmetric link rates: rates = [2]{a, b}.
func newRigRates(t *testing.T, swCfg fabric.Config, hostCfg Config, rates *[2]sim.Rate) *rig {
	t.Helper()
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	table := NewTable()
	r := &rig{eng: eng, pool: pool, table: table, ccByID: map[pkt.FlowID]*fixedCC{}}

	newSender := func(f cc.FlowInfo) cc.Sender {
		s := &fixedCC{rate: f.LinkRate}
		r.ccByID[f.ID] = s
		return s
	}
	var newReceiver cc.ReceiverFactory
	if hostCfg.MTU == 1234 { // sentinel: install echo receivers
		hostCfg.MTU = 1000
		newReceiver = func(f cc.FlowInfo) cc.Receiver { return &echoReceiver{} }
	}

	mk := func(id pkt.NodeID, rate sim.Rate) *Host {
		cfg := hostCfg
		cfg.ID = id
		cfg.Rate = rate
		return New(eng, pool, cfg, table, newSender, newReceiver, sim.Microsecond)
	}
	rateA, rateB := hostCfg.Rate, hostCfg.Rate
	if rates != nil {
		rateA, rateB = rates[0], rates[1]
	}
	r.a = mk(1, rateA)
	r.b = mk(2, rateB)
	r.sw = fabric.New(eng, pool, swCfg)
	pa := r.sw.AddPort(rateA, sim.Microsecond)
	pb := r.sw.AddPort(rateB, sim.Microsecond)
	link.Connect(r.a.Port(), pa)
	link.Connect(r.b.Port(), pb)
	r.sw.AddRoute(1, 0)
	r.sw.AddRoute(2, 1)
	return r
}

func basicSwitch() fabric.Config {
	return fabric.Config{ID: 100, BufferBytes: 1 << 20, INTEnabled: true}
}

func basicHost() Config {
	return Config{Rate: 25 * sim.Gbps, MTU: 1000}
}

func (r *rig) addFlow(src, dst pkt.NodeID, size int64, start sim.Time) *Flow {
	from := r.a
	if src == 2 {
		from = r.b
	}
	info := cc.FlowInfo{
		Src: src, Dst: dst, Size: size,
		LinkRate: from.Cfg.Rate, MTU: 1000, BaseRTT: 10 * sim.Microsecond,
	}
	f := r.table.Add(info, start)
	r.eng.At(start, func() { from.StartFlow(f) })
	return f
}

func TestFlowCompletes(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.addFlow(1, 2, 100_000, sim.Microsecond)
	r.eng.RunUntil(10 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	// 100 packets at 25G = 32 µs + path latency.
	if fct := f.FCT(); fct < 32*sim.Microsecond || fct > 100*sim.Microsecond {
		t.Fatalf("FCT = %v", fct)
	}
	if got := r.b.ReceivedBytes(f.Info.ID); got != 100_000 {
		t.Fatalf("received %d", got)
	}
	if f.RxBytes != 100_000 {
		t.Fatalf("RxBytes = %d", f.RxBytes)
	}
}

func TestPerPacketAcksReachSender(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.addFlow(1, 2, 10_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	s := r.ccByID[f.Info.ID]
	if s.acks != 10 {
		t.Fatalf("acks = %d, want 10", s.acks)
	}
}

func TestSenderClosedOnCompletion(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.addFlow(1, 2, 10_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	if !r.ccByID[f.Info.ID].closed {
		t.Fatal("sender not closed")
	}
	if r.a.ActiveSends() != 0 {
		t.Fatalf("ActiveSends = %d", r.a.ActiveSends())
	}
	if r.a.FlowRate(f.Info.ID) != 0 || r.a.Sender(f.Info.ID) != nil {
		t.Fatal("finished flow still queryable")
	}
}

func TestOnFlowDoneCallback(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	var done []*Flow
	r.b.OnFlowDone = func(f *Flow) { done = append(done, f) }
	f := r.addFlow(1, 2, 5_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	if len(done) != 1 || done[0] != f {
		t.Fatalf("OnFlowDone fired %d times", len(done))
	}
	if f.FinishAt == 0 || !f.Started {
		t.Fatalf("lifecycle not recorded: %+v", f)
	}
}

func TestPacingHonoursRate(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.addFlow(1, 2, 10_000, sim.Microsecond)
	// Pace at 1 Gbps: 8 µs per packet; nine gaps ≈ 72 µs.
	r.eng.At(0, func() {}) // ensure engine starts at 0
	r.eng.At(sim.Microsecond, func() { r.ccByID[f.Info.ID].rate = sim.Gbps })
	r.eng.RunUntil(10 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	// Packet 1 leaves before the rate change lands; the remaining eight
	// gaps are paced at 8 µs each.
	if fct := f.FCT(); fct < 64*sim.Microsecond {
		t.Fatalf("FCT %v too fast for 1Gbps pacing", fct)
	}
}

func TestRoundRobinSharesNIC(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f1 := r.addFlow(1, 2, 500_000, 0)
	f2 := r.addFlow(1, 2, 500_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	if !f1.Done || !f2.Done {
		t.Fatal("flows incomplete")
	}
	// Both compete for the same 25G NIC: completion times within 30%.
	d1, d2 := float64(f1.FCT()), float64(f2.FCT())
	if d1/d2 > 1.3 || d2/d1 > 1.3 {
		t.Fatalf("unfair NIC sharing: %v vs %v", f1.FCT(), f2.FCT())
	}
}

func TestCNPGeneratedOnCE(t *testing.T) {
	cfg := basicSwitch()
	cfg.ECNKmin = 1 // mark aggressively
	cfg.ECNKmax = 2
	cfg.ECNPmax = 1
	h := basicHost()
	h.CNPInterval = 50 * sim.Microsecond
	// Fast sender into a slow receiver link so the switch queue builds.
	r := newRigRates(t, cfg, h, &[2]sim.Rate{100 * sim.Gbps, 25 * sim.Gbps})
	f := r.addFlow(1, 2, 1_000_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	if r.ccByID[f.Info.ID].cnps == 0 {
		t.Fatal("no CNPs despite CE marks")
	}
	// CNPs must be paced: over ~0.3ms of transfer, at most ~8.
	if got := r.ccByID[f.Info.ID].cnps; got > 20 {
		t.Fatalf("CNPs not paced: %d", got)
	}
}

func TestNoCNPWhenDisabled(t *testing.T) {
	cfg := basicSwitch()
	cfg.ECNKmin = 1
	cfg.ECNKmax = 2
	cfg.ECNPmax = 1
	// Same bottleneck as above, but CNP generation disabled.
	r := newRigRates(t, cfg, basicHost(), &[2]sim.Rate{100 * sim.Gbps, 25 * sim.Gbps})
	f := r.addFlow(1, 2, 100_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	if r.ccByID[f.Info.ID].cnps != 0 {
		t.Fatal("CNP generated while disabled")
	}
}

func TestReceiverLogicStampsAck(t *testing.T) {
	h := basicHost()
	h.MTU = 1234 // sentinel enabling echo receivers
	r := newRig(t, basicSwitch(), h)
	f := r.addFlow(1, 2, 10_000, 0)
	r.eng.RunUntil(10 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	_ = f
}

func TestSwitchINTDispatch(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.addFlow(1, 2, 10_000, 0)
	r.eng.At(sim.Microsecond, func() {
		si := r.pool.NewControl(pkt.SwitchINT, f.Info.ID, 99, 1)
		r.b.Port() // unused
		r.sw.Receive(si, r.sw.Port(1))
	})
	r.eng.RunUntil(10 * sim.Millisecond)
	if r.ccByID[f.Info.ID].switchINTs != 1 {
		t.Fatalf("switchINTs = %d", r.ccByID[f.Info.ID].switchINTs)
	}
}

func TestGoBackNRecoversFromDrop(t *testing.T) {
	h := basicHost()
	h.RTOMin = 200 * sim.Microsecond
	r := newRig(t, basicSwitch(), h)
	// Destroy exactly the 7th data frame on the wire. Unlike provoking a
	// buffer overrun, a forced drop cannot silently fail to occur, so this
	// test always exercises the rewind path.
	var nth int
	r.a.Port().SetFaultHooks(&link.FaultHooks{Corrupt: func(*pkt.Packet) bool {
		nth++
		return nth == 7
	}})
	f := r.addFlow(1, 2, 200_000, 0)
	r.eng.RunUntil(50 * sim.Millisecond)
	if !f.Done {
		t.Fatalf("flow incomplete after a forced drop (retransmits=%d)", r.a.Retransmits)
	}
	if f.Aborted {
		t.Fatal("a single drop exhausted the retransmission budget")
	}
	if r.a.Retransmits == 0 {
		t.Fatal("a frame was destroyed but the sender never retransmitted")
	}
	if got := r.b.ReceivedBytes(f.Info.ID); got != 200_000 {
		t.Fatalf("received %d bytes, want 200000", got)
	}
}

// TestRTOBackoffGrowthCapAndReset blackholes the wire and samples the
// sender's live RTO: it must double per consecutive timeout, clamp at
// RTOMax, never exceed it, and collapse back to the base once an ack makes
// progress after the wire heals.
func TestRTOBackoffGrowthCapAndReset(t *testing.T) {
	h := basicHost()
	h.RTOMin = 100 * sim.Microsecond
	h.RTOMax = 800 * sim.Microsecond
	h.MaxRetrans = -1 // unlimited: this test watches the timer, not the budget
	r := newRig(t, basicSwitch(), h)
	const healAt = 3 * sim.Millisecond
	r.a.Port().SetFaultHooks(&link.FaultHooks{Corrupt: func(*pkt.Packet) bool {
		return r.eng.Now() < healAt
	}})
	f := r.addFlow(1, 2, 200_000, 0)

	seen := map[sim.Time]bool{} // distinct RTO values observed
	var resetAfterHeal, overCap bool
	var tick func()
	tick = func() {
		if rto := r.a.CurrentRTO(f.Info.ID); rto > 0 {
			seen[rto] = true
			if rto > h.RTOMax {
				overCap = true
			}
			if r.eng.Now() > healAt && rto == h.RTOMin {
				resetAfterHeal = true
			}
		}
		r.eng.After(5*sim.Microsecond, tick)
	}
	r.eng.At(0, tick)
	r.eng.RunUntil(20 * sim.Millisecond)

	if !f.Done || f.Aborted {
		t.Fatalf("flow after heal: done=%v aborted=%v", f.Done, f.Aborted)
	}
	if overCap {
		t.Error("RTO exceeded RTOMax")
	}
	// base → 2× → 4× → cap: the full exponential ladder must appear.
	for _, want := range []sim.Time{100, 200, 400, 800} {
		if !seen[want*sim.Microsecond] {
			t.Errorf("RTO value %dµs never observed (saw %v)", want, seen)
		}
	}
	if !resetAfterHeal {
		t.Error("backoff never reset to the base RTO after ack progress resumed")
	}
}

// TestRTOAbortAfterBudget destroys every data frame forever: the sender
// must burn its retransmission budget, abort the flow, fire the abort
// callback, and release every resource it held.
func TestRTOAbortAfterBudget(t *testing.T) {
	h := basicHost()
	h.RTOMin = 100 * sim.Microsecond
	h.RTOMax = 400 * sim.Microsecond
	h.MaxRetrans = 3
	r := newRig(t, basicSwitch(), h)
	r.a.Port().SetFaultHooks(&link.FaultHooks{Corrupt: func(*pkt.Packet) bool { return true }})
	var aborted []*Flow
	r.a.OnFlowAbort = func(f *Flow) { aborted = append(aborted, f) }
	f := r.addFlow(1, 2, 50_000, 0)
	r.eng.RunUntil(50 * sim.Millisecond)

	if !f.Aborted || f.Done {
		t.Fatalf("flow on a dead wire: aborted=%v done=%v", f.Aborted, f.Done)
	}
	if f.FinishAt == 0 || f.FinishAt > 5*sim.Millisecond {
		t.Errorf("abort stamped at %v, want within the first few RTOs", f.FinishAt)
	}
	if len(aborted) != 1 || aborted[0] != f {
		t.Errorf("OnFlowAbort fired %d times", len(aborted))
	}
	if r.a.Aborted != 1 {
		t.Errorf("host Aborted counter = %d, want 1", r.a.Aborted)
	}
	if r.a.ActiveSends() != 0 {
		t.Errorf("aborted flow still in the send list: ActiveSends = %d", r.a.ActiveSends())
	}
	if !r.ccByID[f.Info.ID].closed {
		t.Error("sender not closed on abort")
	}
	if rto := r.a.CurrentRTO(f.Info.ID); rto != 0 {
		t.Errorf("aborted flow still has an armed RTO of %v", rto)
	}
	if out := r.pool.Outstanding(); out != 0 {
		t.Errorf("packet pool leak after abort: %d outstanding", out)
	}
}

// TestDownEgressPortParksFlow downs the host's own egress port: frames stay
// parked in the host (never offered to the wire), so idle RTO fires must not
// spend the retransmission budget — the flow survives a parking interval
// many RTOs long and completes once the port comes back.
func TestDownEgressPortParksFlow(t *testing.T) {
	h := basicHost()
	h.RTOMin = 50 * sim.Microsecond
	h.MaxRetrans = 2 // 2 ms parked at 50 µs RTO: dozens of idle fires vs budget 2
	r := newRig(t, basicSwitch(), h)
	r.eng.At(0, func() { r.a.Port().SetDown(true) })
	f := r.addFlow(1, 2, 50_000, sim.Microsecond)
	r.eng.At(2*sim.Millisecond, func() { r.a.Port().SetDown(false) })
	r.eng.RunUntil(20 * sim.Millisecond)

	if !f.Done || f.Aborted {
		t.Fatalf("parked flow: done=%v aborted=%v — idle timeouts must not spend budget",
			f.Done, f.Aborted)
	}
	if r.a.Retransmits != 0 {
		t.Errorf("Retransmits = %d for a flow that never lost a frame", r.a.Retransmits)
	}
	if f.FinishAt <= 2*sim.Millisecond {
		t.Errorf("flow finished at %v, before the port came back up", f.FinishAt)
	}
}

func TestTableBookkeeping(t *testing.T) {
	table := NewTable()
	info := cc.FlowInfo{Src: 1, Dst: 2, Size: 1000}
	f1 := table.Add(info, 0)
	f2 := table.Add(info, sim.Microsecond)
	if f1.Info.ID == f2.Info.ID {
		t.Fatal("duplicate flow ids")
	}
	if table.Len() != 2 {
		t.Fatalf("Len = %d", table.Len())
	}
	if table.Get(f1.Info.ID) != f1 || table.Get(999) != nil {
		t.Fatal("Get broken")
	}
	if len(table.All()) != 2 {
		t.Fatal("All broken")
	}
}

func TestStartFlowWrongHostPanics(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.table.Add(cc.FlowInfo{Src: 2, Dst: 1, Size: 1000, LinkRate: sim.Gbps, MTU: 1000}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.a.StartFlow(f)
}

func TestFCTZeroWhileUnfinished(t *testing.T) {
	f := &Flow{}
	if f.FCT() != 0 {
		t.Fatal("unfinished flow has nonzero FCT")
	}
}

func TestSubMTUFlow(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f := r.addFlow(1, 2, 100, 0) // single tiny packet
	r.eng.RunUntil(5 * sim.Millisecond)
	if !f.Done {
		t.Fatal("tiny flow incomplete")
	}
	if r.a.SentData != 1 {
		t.Fatalf("SentData = %d", r.a.SentData)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	r := newRig(t, basicSwitch(), basicHost())
	f1 := r.addFlow(1, 2, 200_000, 0)
	f2 := r.addFlow(2, 1, 200_000, 0)
	r.eng.RunUntil(20 * sim.Millisecond)
	if !f1.Done || !f2.Done {
		t.Fatal("bidirectional flows incomplete")
	}
}
