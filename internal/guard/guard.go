// Package guard is the runtime-invariant plane: watchdogs that read the
// simulation at quiescent points (every engine parked, so cross-shard reads
// need no synchronization) and flag pathologies the per-packet conservation
// audit cannot see because every individual packet is accounted for while the
// system as a whole goes nowhere. Three detectors:
//
//   - PFC pause storm: a port whose transmit direction spends more than a
//     configured fraction of a sliding window paused — sustained back-pressure
//     saturation rather than a transient burst.
//   - Pause-cycle deadlock: a cycle in the paused-port wait-for graph
//     (device X's port paused ⇒ X waits on the device that paused it, the
//     owner of the peer port). A cycle of switches holding each other paused
//     is the classic PFC deadlock; it can persist forever with zero drops.
//   - Global progress stall: no acked-byte progress anywhere for K·maxRTT
//     while data is outstanding. Fires a flight-recorder dump and requests a
//     graceful diagnostic abort instead of letting the run idle to its
//     deadline.
//
// The plane is strictly read-only with respect to simulation state: it
// schedules no events, mutates no component, and a run with the guard armed
// but untriggered executes the exact same event sequence — and produces the
// same determinism digest — as one without it.
package guard

import (
	"fmt"
	"io"
	"os"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Progress is a per-host progress probe, read only at quiescent points.
// host.Host implements it.
type Progress interface {
	// AckedBytes is cumulative acknowledged payload bytes across the host's
	// sender-side flows, monotone for the life of the run.
	AckedBytes() int64
	// OutstandingBytes is un-acked bytes inside active go-back-N windows.
	OutstandingBytes() int64
}

// Node is one device in the wait-for graph: its identity (flight-recorder id
// and plan-style name) and the ports whose transmit directions it owns.
type Node struct {
	ID    int32
	Name  string
	Ports []*link.Port
}

// Config tunes the guard plane. Zero values take defaults at New, expressed
// in units of the topology's maximum base RTT so one configuration scales
// across topologies.
type Config struct {
	// Every is the tick interval. Default: maxRTT.
	Every sim.Time
	// StormWindow is the sliding window over which per-port pause fractions
	// are measured. Default: 8×Every. Rounded up to a whole number of ticks.
	StormWindow sim.Time
	// StormFrac is the cumulative-pause fraction of StormWindow at or above
	// which a port is storming. Default: 0.9.
	StormFrac float64
	// StallK is the global progress supervisor's patience: no acked-byte
	// progress for StallK·maxRTT with data outstanding is a stall.
	// Default: 64.
	StallK int
}

// withDefaults resolves zero fields against maxRTT.
func (c Config) withDefaults(maxRTT sim.Time) Config {
	if c.Every <= 0 {
		c.Every = maxRTT
	}
	if c.StormWindow <= 0 {
		c.StormWindow = 8 * c.Every
	}
	if c.StormFrac <= 0 {
		c.StormFrac = 0.9
	}
	if c.StallK <= 0 {
		c.StallK = 64
	}
	return c
}

// portState is one monitored transmit direction: a ring of PausedTotalAt
// samples (one per tick) long enough to look StormWindow into the past, plus
// the rising-edge latch.
type portState struct {
	node     *Node
	port     *link.Port
	hist     []sim.Time // sample ring; len = window+1
	n        int        // samples taken
	storming bool
}

// Plane is one armed guard plane. Build with New, drive with Tick from a
// quiescent hook.
type Plane struct {
	cfg    Config
	maxRTT sim.Time

	nodes []*Node
	owner map[*link.Port]*Node
	ports []*portState
	hosts []Progress

	frs  []*metrics.FlightRecorder // per-shard rings, merged into dumps; may be nil/empty
	out  io.Writer
	halt func(reason string)

	window int // storm window in ticks

	lastAcked  int64
	lastChange sim.Time
	started    bool
	stalled    bool
	deadlocked bool

	// Counters (read at quiescent points; registered via RegisterMetrics).
	Ticks     int64
	Storms    int64 // rising edges of per-port pause-storm state
	Deadlocks int64 // rising edges of wait-for-graph cycle state
	Stalls    int64 // global progress stalls detected (at most 1 per halt)
}

// New builds a guard plane over the given devices and progress probes.
// maxRTT scales the defaults (use the topology's largest base RTT); frs are
// the run's per-shard flight recorders (nil is fine — dumps then carry no
// event replay); halt, when non-nil, is invoked once on a progress stall to
// request a graceful diagnostic abort. Violation dumps go to os.Stderr until
// SetOutput.
func New(cfg Config, maxRTT sim.Time, nodes []*Node, hosts []Progress,
	frs []*metrics.FlightRecorder, halt func(reason string)) *Plane {
	if maxRTT <= 0 {
		maxRTT = sim.Millisecond
	}
	cfg = cfg.withDefaults(maxRTT)
	window := int((cfg.StormWindow + cfg.Every - 1) / cfg.Every)
	if window < 1 {
		window = 1
	}
	g := &Plane{
		cfg:    cfg,
		maxRTT: maxRTT,
		nodes:  nodes,
		owner:  make(map[*link.Port]*Node),
		hosts:  hosts,
		frs:    frs,
		out:    os.Stderr,
		halt:   halt,
		window: window,
	}
	for _, nd := range nodes {
		for _, p := range nd.Ports {
			g.owner[p] = nd
			g.ports = append(g.ports, &portState{
				node: nd,
				port: p,
				hist: make([]sim.Time, window+1),
			})
		}
	}
	return g
}

// Every reports the resolved tick interval, for quiescent-hook registration.
func (g *Plane) Every() sim.Time { return g.cfg.Every }

// SetOutput redirects violation dumps (tests) and returns the previous
// writer.
func (g *Plane) SetOutput(w io.Writer) io.Writer {
	prev := g.out
	g.out = w
	return prev
}

// RegisterMetrics registers the plane's counters under prefix (e.g.
// "guard"). A nil registry is a no-op.
func (g *Plane) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+".ticks", func() int64 { return g.Ticks })
	reg.CounterFunc(prefix+".storms", func() int64 { return g.Storms })
	reg.CounterFunc(prefix+".deadlocks", func() int64 { return g.Deadlocks })
	reg.CounterFunc(prefix+".stalls", func() int64 { return g.Stalls })
}

// Stalled reports whether the progress supervisor has fired.
func (g *Plane) Stalled() bool { return g.stalled }

// Tick runs every detector once. It must be called with the simulation
// quiescent (topo.Network.OnQuiescent provides exactly that), at the interval
// the plane was configured with.
func (g *Plane) Tick(now sim.Time) {
	g.Ticks++
	g.tickStorms(now)
	g.tickDeadlock(now)
	g.tickStall(now)
}

// record appends a guard event to the first shard's flight recorder — guard
// events originate on the driving goroutine, so one ring keeps the merged
// stream deterministic.
func (g *Plane) record(ev metrics.Event) {
	if len(g.frs) > 0 {
		g.frs[0].Record(ev)
	}
}

// tickStorms samples every monitored port's cumulative pause time and fires
// on the rising edge of (pause time over the last StormWindow) / StormWindow
// crossing StormFrac.
func (g *Plane) tickStorms(now sim.Time) {
	for _, ps := range g.ports {
		pt := ps.port.PausedTotalAt(now)
		ps.hist[ps.n%len(ps.hist)] = pt
		ps.n++
		if ps.n <= g.window {
			continue
		}
		old := ps.hist[(ps.n-1-g.window)%len(ps.hist)]
		frac := float64(pt-old) / float64(sim.Time(g.window)*g.cfg.Every)
		if frac >= g.cfg.StormFrac {
			if !ps.storming {
				ps.storming = true
				g.Storms++
				g.record(metrics.Event{T: now, Kind: metrics.EvGuardStorm,
					Node: ps.node.ID, Port: int32(ps.port.Index),
					Val: int64(frac * 1e6)})
			}
		} else {
			ps.storming = false
		}
	}
}

// tickDeadlock walks the paused-port wait-for graph: device X with a paused
// transmit port waits on the owner of that port's peer (the device holding
// it paused). A cycle means a PFC deadlock — every device in it waits for
// pause relief that only another member can grant. Fires on the rising edge
// and dumps the cycle plus the flight-recorder tail.
func (g *Plane) tickDeadlock(now sim.Time) {
	// Adjacency in node order, deterministically.
	adj := make(map[*Node][]*Node, len(g.nodes))
	any := false
	for _, nd := range g.nodes {
		for _, p := range nd.Ports {
			if !p.Paused(pkt.ClassData) || p.Peer() == nil {
				continue
			}
			if holder, ok := g.owner[p.Peer()]; ok && holder != nd {
				adj[nd] = append(adj[nd], holder)
				any = true
			}
		}
	}
	if !any {
		g.deadlocked = false
		return
	}
	cycle := findCycle(g.nodes, adj)
	if cycle == nil {
		g.deadlocked = false
		return
	}
	if g.deadlocked {
		return
	}
	g.deadlocked = true
	g.Deadlocks++
	g.record(metrics.Event{T: now, Kind: metrics.EvGuardDeadlock,
		Node: cycle[0].ID, Port: -1, Val: int64(len(cycle))})
	fmt.Fprintf(g.out, "guard: PFC pause cycle at %v:", now)
	for _, nd := range cycle {
		fmt.Fprintf(g.out, " %s", nd.Name)
	}
	fmt.Fprintf(g.out, " -> %s\n", cycle[0].Name)
	g.dump()
}

// findCycle runs an iterative colored DFS over adj in deterministic node
// order and returns the first cycle found (in wait order), or nil.
func findCycle(nodes []*Node, adj map[*Node][]*Node) []*Node {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored, cycle-free
	)
	color := make(map[*Node]int, len(nodes))
	var path []*Node
	var dfs func(nd *Node) []*Node
	dfs = func(nd *Node) []*Node {
		color[nd] = grey
		path = append(path, nd)
		for _, next := range adj[nd] {
			switch color[next] {
			case white:
				if c := dfs(next); c != nil {
					return c
				}
			case grey:
				// Cycle: the path suffix from next onward.
				for i, x := range path {
					if x == next {
						return append([]*Node(nil), path[i:]...)
					}
				}
			}
		}
		path = path[:len(path)-1]
		color[nd] = black
		return nil
	}
	for _, nd := range nodes {
		if color[nd] == white && len(adj[nd]) > 0 {
			if c := dfs(nd); c != nil {
				return c
			}
		}
	}
	return nil
}

// tickStall drives the global progress supervisor: the no-progress clock runs
// only while data is outstanding somewhere (an idle network is not stalled,
// and neither is one whose window just opened after a long idle gap), and
// fires once per stall with a flight-recorder dump and a halt request.
func (g *Plane) tickStall(now sim.Time) {
	var acked, outstanding int64
	for _, h := range g.hosts {
		acked += h.AckedBytes()
		outstanding += h.OutstandingBytes()
	}
	if !g.started || acked != g.lastAcked || outstanding == 0 {
		g.started = true
		g.lastAcked = acked
		g.lastChange = now
		g.stalled = false
		return
	}
	if g.stalled {
		return
	}
	silent := now - g.lastChange
	if silent < sim.Time(g.cfg.StallK)*g.maxRTT {
		return
	}
	g.stalled = true
	g.Stalls++
	g.record(metrics.Event{T: now, Kind: metrics.EvGuardStall,
		Node: -1, Port: -1, Val: int64(silent)})
	fmt.Fprintf(g.out, "guard: no acked-byte progress for %v with %d bytes outstanding (stall window %d x %v)\n",
		silent, outstanding, g.cfg.StallK, g.maxRTT)
	g.dump()
	if g.halt != nil {
		g.halt(fmt.Sprintf("guard: progress stalled for %v with %d bytes outstanding", silent, outstanding))
	}
}

// dump replays the merged flight-recorder tail to the plane's output — the
// non-panicking counterpart of metrics.Violation, because a guard firing is a
// diagnosis, not a broken conservation law.
func (g *Plane) dump() {
	var total uint64
	var capacity int
	live := g.frs[:0:0]
	for _, fr := range g.frs {
		if fr != nil {
			live = append(live, fr)
			total += fr.Recorded()
			capacity += fr.Cap()
		}
	}
	if len(live) == 0 {
		return
	}
	_ = metrics.DumpEvents(g.out, metrics.MergeEvents(live...), total, capacity)
}
