package guard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// nullEndpoint swallows deliveries — the guard tests traffic only PFC frames,
// which the port layer consumes before the owner ever sees them.
type nullEndpoint struct{}

func (nullEndpoint) Receive(p *pkt.Packet, on *link.Port) {}

// pauseRing builds the classic three-switch PFC deadlock out of real ports:
// devices A, B, C where A's monitored transmit port is held paused by B, B's
// by C, and C's by A. Each edge is a genuine link pair — the "held paused"
// state is installed by SendPause frames delivered through the wire, exactly
// the path a congested switch uses. Returns the engine (pause frames already
// delivered), the wait-for nodes in deterministic order, and the reverse
// ports used to pause/resume each monitored edge.
func pauseRing(t *testing.T) (*sim.Engine, []*Node, []*link.Port) {
	t.Helper()
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	names := []string{"leafA", "leafB", "leafC"}
	nodes := make([]*Node, 3)
	for i, name := range names {
		nodes[i] = &Node{ID: int32(100 + i), Name: name}
	}
	mon := make([]*link.Port, 3)
	rev := make([]*link.Port, 3)
	for i := range nodes {
		// Edge i: nodes[i] owns the monitored transmit port; its peer is
		// owned by nodes[(i+1)%3], the device that will hold it paused.
		a := link.NewPort(eng, nullEndpoint{}, 0, 25*sim.Gbps, sim.Microsecond, pool)
		b := link.NewPort(eng, nullEndpoint{}, 1, 25*sim.Gbps, sim.Microsecond, pool)
		link.Connect(a, b)
		nodes[i].Ports = append(nodes[i].Ports, a)
		nodes[(i+1)%3].Ports = append(nodes[(i+1)%3].Ports, b)
		mon[i] = a
		rev[i] = b
	}
	for _, b := range rev {
		b.SendPause(pkt.ClassData, true)
	}
	eng.Run()
	for i, p := range mon {
		if !p.Paused(pkt.ClassData) {
			t.Fatalf("edge %d: monitored port not paused after SendPause delivery", i)
		}
	}
	return eng, nodes, rev
}

// TestDeadlockCycleDetected drives the detector over a constructed PFC pause
// cycle: the colored DFS must find it, count exactly one rising edge, name
// every member in the dump, and re-arm only after the cycle breaks.
func TestDeadlockCycleDetected(t *testing.T) {
	eng, nodes, rev := pauseRing(t)
	var out bytes.Buffer
	g := New(Config{Every: 10 * sim.Microsecond}, sim.Millisecond, nodes, nil, nil, nil)
	g.SetOutput(&out)

	g.Tick(eng.Now())
	if g.Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d after ticking over a pause cycle, want 1", g.Deadlocks)
	}
	dump := out.String()
	if !strings.Contains(dump, "PFC pause cycle") {
		t.Errorf("dump does not announce the cycle:\n%s", dump)
	}
	for _, nd := range nodes {
		if !strings.Contains(dump, nd.Name) {
			t.Errorf("dump omits cycle member %s:\n%s", nd.Name, dump)
		}
	}

	// Latched: a persisting cycle is one deadlock, not one per tick.
	g.Tick(eng.Now() + 10*sim.Microsecond)
	if g.Deadlocks != 1 {
		t.Errorf("Deadlocks = %d after second tick over the same cycle, want 1 (latch broken)", g.Deadlocks)
	}

	// Break one edge: the cycle clears and the latch re-arms.
	rev[0].SendPause(pkt.ClassData, false)
	eng.Run()
	g.Tick(eng.Now())
	if g.Deadlocks != 1 {
		t.Errorf("Deadlocks = %d after the cycle broke, want 1", g.Deadlocks)
	}
	rev[0].SendPause(pkt.ClassData, true)
	eng.Run()
	g.Tick(eng.Now())
	if g.Deadlocks != 2 {
		t.Errorf("Deadlocks = %d after the cycle re-formed, want 2 (latch did not re-arm)", g.Deadlocks)
	}
}

// TestDeadlockIgnoresAcyclicWaits pins the detector's specificity: a paused
// chain with no back edge (A waits on B waits on C) is congestion, not
// deadlock, no matter how long it persists.
func TestDeadlockIgnoresAcyclicWaits(t *testing.T) {
	eng, nodes, rev := pauseRing(t)
	// Release C's monitored port (edge 2, held by A): A→B→C remains, C→A gone.
	rev[2].SendPause(pkt.ClassData, false)
	eng.Run()
	var out bytes.Buffer
	g := New(Config{Every: 10 * sim.Microsecond}, sim.Millisecond, nodes, nil, nil, nil)
	g.SetOutput(&out)
	for i := 0; i < 16; i++ {
		g.Tick(eng.Now() + sim.Time(i)*10*sim.Microsecond)
	}
	if g.Deadlocks != 0 {
		t.Errorf("Deadlocks = %d on an acyclic paused chain, want 0:\n%s", g.Deadlocks, out.String())
	}
}

// TestStormRisingEdge holds one monitored port paused through the whole storm
// window and checks the watchdog fires exactly once on the rising edge, then
// re-arms after the pause duty drops.
func TestStormRisingEdge(t *testing.T) {
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	a := link.NewPort(eng, nullEndpoint{}, 0, 25*sim.Gbps, sim.Microsecond, pool)
	b := link.NewPort(eng, nullEndpoint{}, 0, 25*sim.Gbps, sim.Microsecond, pool)
	link.Connect(a, b)
	nd := &Node{ID: 1, Name: "leaf0", Ports: []*link.Port{a}}

	const every = 100 * sim.Microsecond
	g := New(Config{Every: every, StormWindow: 4 * every, StormFrac: 0.9},
		sim.Millisecond, []*Node{nd}, nil, nil, nil)
	g.SetOutput(new(bytes.Buffer))

	b.SendPause(pkt.ClassData, true)
	eng.Run()
	now := eng.Now()
	for i := 0; i < 12; i++ {
		g.Tick(now + sim.Time(i)*every)
	}
	if g.Storms != 1 {
		t.Fatalf("Storms = %d with the port held paused, want exactly 1 rising edge", g.Storms)
	}

	// Resume: duty over the window decays to zero, the latch re-arms, and a
	// second saturation counts again.
	b.SendPause(pkt.ClassData, false)
	eng.Run()
	base := now + 12*every
	for i := 0; i < 8; i++ {
		g.Tick(base + sim.Time(i)*every)
	}
	if g.Storms != 1 {
		t.Fatalf("Storms = %d after the pause lifted, want still 1", g.Storms)
	}
	b.SendPause(pkt.ClassData, true)
	eng.Run()
	base += 8 * every
	for i := 0; i < 12; i++ {
		g.Tick(base + sim.Time(i)*every)
	}
	if g.Storms != 2 {
		t.Errorf("Storms = %d after a second saturation, want 2", g.Storms)
	}
}

// fakeProgress is a scripted guard.Progress probe.
type fakeProgress struct{ acked, out int64 }

func (f *fakeProgress) AckedBytes() int64       { return f.acked }
func (f *fakeProgress) OutstandingBytes() int64 { return f.out }

// TestStallSupervisor scripts the progress probe through idle, stalled and
// recovered phases: the supervisor must fire once per stall — with the halt
// callback and a dump — never while the network is idle, and re-arm after
// progress resumes.
func TestStallSupervisor(t *testing.T) {
	const maxRTT = sim.Millisecond
	probe := &fakeProgress{}
	var halts []string
	var out bytes.Buffer
	g := New(Config{StallK: 2}, maxRTT, nil, []Progress{probe},
		nil, func(reason string) { halts = append(halts, reason) })
	g.SetOutput(&out)

	// Idle (nothing outstanding): the clock must not run.
	for i := 0; i < 8; i++ {
		g.Tick(sim.Time(i) * maxRTT)
	}
	if g.Stalls != 0 || len(halts) != 0 {
		t.Fatalf("supervisor fired on an idle network: stalls=%d halts=%v", g.Stalls, halts)
	}

	// Data outstanding, acked frozen: fires at silent ≥ StallK·maxRTT, once.
	probe.out = 1 << 20
	for i := 8; i < 16; i++ {
		g.Tick(sim.Time(i) * maxRTT)
	}
	if g.Stalls != 1 || len(halts) != 1 {
		t.Fatalf("stalls=%d halts=%v after %d silent RTTs, want exactly 1", g.Stalls, halts, 8)
	}
	if !g.Stalled() {
		t.Error("Stalled() = false after the supervisor fired")
	}
	if !strings.Contains(halts[0], "progress stalled") {
		t.Errorf("halt reason %q does not describe the stall", halts[0])
	}
	if !strings.Contains(out.String(), "no acked-byte progress") {
		t.Errorf("dump does not describe the stall:\n%s", out.String())
	}

	// Progress resumes, then a second stall: the supervisor re-arms.
	probe.acked = 1 << 20
	g.Tick(16 * maxRTT)
	if g.Stalled() {
		t.Error("Stalled() still true after acked bytes moved")
	}
	for i := 17; i < 25; i++ {
		g.Tick(sim.Time(i) * maxRTT)
	}
	if g.Stalls != 2 || len(halts) != 2 {
		t.Errorf("stalls=%d halts=%d after a second stall, want 2", g.Stalls, len(halts))
	}
}

// TestStallDumpMergesRecorders pins that a stall dump replays the merged
// per-shard flight-recorder rings, not just shard 0's.
func TestStallDumpMergesRecorders(t *testing.T) {
	frs := []*metrics.FlightRecorder{
		metrics.NewFlightRecorder(64),
		metrics.NewFlightRecorder(64),
	}
	frs[0].Record(metrics.Event{T: 1, Kind: metrics.EvEnqueue, Node: 7, Flow: 1, Val: 111})
	frs[1].Record(metrics.Event{T: 2, Kind: metrics.EvEnqueue, Node: 8, Flow: 2, Val: 222})
	probe := &fakeProgress{out: 4096}
	var out bytes.Buffer
	g := New(Config{StallK: 1}, sim.Millisecond, nil, []Progress{probe}, frs, nil)
	g.SetOutput(&out)
	for i := 0; i < 4; i++ {
		g.Tick(sim.Time(i) * sim.Millisecond)
	}
	if g.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", g.Stalls)
	}
	dump := out.String()
	for _, want := range []string{"node=7", "node=8"} {
		if !strings.Contains(dump, want) {
			t.Errorf("stall dump missing %s (per-shard rings not merged):\n%s", want, dump)
		}
	}
}

// TestConfigDefaults pins the zero-config resolution against maxRTT.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(2 * sim.Millisecond)
	if c.Every != 2*sim.Millisecond {
		t.Errorf("Every default = %v, want maxRTT", c.Every)
	}
	if c.StormWindow != 8*c.Every {
		t.Errorf("StormWindow default = %v, want 8×Every", c.StormWindow)
	}
	if c.StormFrac != 0.9 {
		t.Errorf("StormFrac default = %v, want 0.9", c.StormFrac)
	}
	if c.StallK != 64 {
		t.Errorf("StallK default = %d, want 64", c.StallK)
	}
}

// TestFindCycleDeterministic pins that the DFS reports the same cycle for the
// same graph regardless of how many times it runs — the dump and the
// flight-recorder attribution must not depend on traversal luck.
func TestFindCycleDeterministic(t *testing.T) {
	eng, nodes, _ := pauseRing(t)
	_ = eng
	var first []*Node
	for i := 0; i < 16; i++ {
		adj := map[*Node][]*Node{
			nodes[0]: {nodes[1]},
			nodes[1]: {nodes[2]},
			nodes[2]: {nodes[0]},
		}
		c := findCycle(nodes, adj)
		if c == nil {
			t.Fatal("findCycle missed a 3-cycle")
		}
		if first == nil {
			first = c
			continue
		}
		if fmt.Sprint(c) != fmt.Sprint(first) {
			t.Fatalf("findCycle nondeterministic: %v vs %v", c, first)
		}
	}
}
