package guard_test

import (
	"bytes"
	"testing"

	"mlcc/internal/guard"
	"mlcc/internal/sim"
	"mlcc/internal/topo"
)

// TestGuardShardedQuiescentReads arms the guard plane on a two-shard build
// with a hair-trigger tick interval and reads its counters from a second
// quiescent hook mid-run. The plane reads port pause state and host progress
// probes across both shards every tick; under `go test -race` (the make-check
// race sweep includes this package) this proves the quiescent-read contract —
// no engine goroutine races the plane's cross-shard walks. The counters must
// also be monotone across quiescent samples.
func TestGuardShardedQuiescentReads(t *testing.T) {
	p := topo.DefaultParams().WithAlgorithm(topo.AlgMLCC)
	p.Seed = 1
	p.HostsPerLeaf = 2
	p.LongHaulDelay = 500 * sim.Microsecond
	p.Shards = 2
	p.Guard = &guard.Config{Every: 100 * sim.Microsecond}
	n := topo.Dumbbell(p)
	if n.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", n.ShardCount())
	}
	if n.Guard == nil {
		t.Fatal("guard plane not armed by P.Guard")
	}
	n.Guard.SetOutput(new(bytes.Buffer))

	half := n.NumHosts() / 2
	n.AddFlow(0, half, 4<<20, sim.Millisecond)
	n.AddFlow(half+1, 1, 4<<20, sim.Millisecond)
	n.AddFlow(0, 1, 1<<20, sim.Millisecond)

	var samples int
	var lastTicks int64
	n.OnQuiescent(sim.Millisecond, func(now sim.Time) {
		samples++
		g := n.Guard
		if g.Ticks < lastTicks {
			t.Errorf("t=%v: Ticks went backwards: %d -> %d", now, lastTicks, g.Ticks)
		}
		lastTicks = g.Ticks
		if g.Storms < 0 || g.Deadlocks < 0 || g.Stalls < 0 {
			t.Errorf("t=%v: negative guard counter", now)
		}
		_ = g.Stalled()
	})
	n.Run(30 * sim.Millisecond)

	if samples == 0 {
		t.Fatal("quiescent hook never fired")
	}
	if n.Guard.Ticks == 0 {
		t.Fatal("guard plane never ticked")
	}
	if stalled, reason := n.Halted(); stalled {
		t.Fatalf("healthy run halted: %s", reason)
	}
}
