package fabric

import (
	"testing"

	"mlcc/internal/link"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// stubHost is a minimal traffic endpoint: it records arrivals and can blast
// a fixed number of packets as fast as its port allows.
type stubHost struct {
	eng  *sim.Engine
	pool *pkt.Pool
	id   pkt.NodeID
	port *link.Port

	outbox []*pkt.Packet
	got    []*pkt.Packet
	gotAt  []sim.Time
}

func newStubHost(eng *sim.Engine, pool *pkt.Pool, id pkt.NodeID, rate sim.Rate, delay sim.Time) *stubHost {
	h := &stubHost{eng: eng, pool: pool, id: id}
	h.port = link.NewPort(eng, h, 0, rate, delay, pool)
	h.port.SetSource(h)
	return h
}

func (h *stubHost) Receive(p *pkt.Packet, on *link.Port) {
	h.got = append(h.got, p)
	h.gotAt = append(h.gotAt, h.eng.Now())
}

func (h *stubHost) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	if len(h.outbox) == 0 {
		return nil
	}
	p := h.outbox[0]
	if paused[p.Pri] {
		return nil
	}
	h.outbox = h.outbox[1:]
	return p
}

func (h *stubHost) send(p *pkt.Packet) {
	h.outbox = append(h.outbox, p)
	h.port.Kick()
}

// rig builds host A -- sw -- host B with the given switch config.
type rig struct {
	eng  *sim.Engine
	pool *pkt.Pool
	a, b *stubHost
	sw   *Switch
}

func newRig(cfg Config, rate sim.Rate, delay sim.Time) *rig {
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	sw := New(eng, pool, cfg)
	a := newStubHost(eng, pool, 1, rate, delay)
	b := newStubHost(eng, pool, 2, rate, delay)
	pa := sw.AddPort(rate, delay)
	pb := sw.AddPort(rate, delay)
	link.Connect(a.port, pa)
	link.Connect(b.port, pb)
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	return &rig{eng: eng, pool: pool, a: a, b: b, sw: sw}
}

func basicCfg() Config {
	return Config{
		ID:          100,
		BufferBytes: 1 << 20,
		ECNKmin:     100_000,
		ECNKmax:     400_000,
		ECNPmax:     1,
		INTEnabled:  true,
	}
}

func TestSwitchForwarding(t *testing.T) {
	r := newRig(basicCfg(), 100*sim.Gbps, sim.Microsecond)
	r.a.send(r.pool.NewData(1, 1, 2, 0, 1000))
	r.eng.Run()
	if len(r.b.got) != 1 {
		t.Fatalf("delivered %d", len(r.b.got))
	}
	// host serialization 80ns + 1us + switch serialization 80ns + 1us.
	want := 2*(80*sim.Nanosecond) + 2*sim.Microsecond
	if r.b.gotAt[0] != want {
		t.Fatalf("arrival %v, want %v", r.b.gotAt[0], want)
	}
	if r.sw.RxData != 1 {
		t.Fatalf("RxData = %d", r.sw.RxData)
	}
	if r.sw.BufferUsed() != 0 {
		t.Fatalf("buffer not drained: %d", r.sw.BufferUsed())
	}
}

func TestSwitchINTStamp(t *testing.T) {
	r := newRig(basicCfg(), 100*sim.Gbps, sim.Microsecond)
	r.a.send(r.pool.NewData(1, 1, 2, 0, 1000))
	r.eng.Run()
	p := r.b.got[0]
	if len(p.Hops) != 1 {
		t.Fatalf("hops = %d", len(p.Hops))
	}
	h := p.Hops[0]
	if h.Node != 100 || h.Band != 100*sim.Gbps {
		t.Fatalf("bad hop: %+v", h)
	}
	if h.QLen != 0 {
		t.Fatalf("qlen = %d, want 0 for sole packet", h.QLen)
	}
}

func TestSwitchINTDisabled(t *testing.T) {
	cfg := basicCfg()
	cfg.INTEnabled = false
	r := newRig(cfg, 100*sim.Gbps, sim.Microsecond)
	r.a.send(r.pool.NewData(1, 1, 2, 0, 1000))
	r.eng.Run()
	if len(r.b.got[0].Hops) != 0 {
		t.Fatal("INT stamped while disabled")
	}
}

func TestSwitchECNMarking(t *testing.T) {
	cfg := basicCfg()
	cfg.ECNKmin = 2000
	cfg.ECNKmax = 5000
	r := newRig(cfg, 100*sim.Gbps, 0)
	// Pause the egress toward b so the queue builds.
	r.sw.Port(1).SendPause(pkt.ClassData, false) // warm path; no-op resume
	// Directly enqueue enough to exceed Kmax, then check marking of later
	// packets.
	for i := 0; i < 10; i++ {
		p := r.pool.NewData(1, 1, 2, int64(i)*1000, 1000)
		// bypass ports: inject at switch
		r.sw.Receive(p, r.sw.Port(0))
	}
	marked := r.sw.Marked
	if marked == 0 {
		t.Fatal("no packets marked despite queue over Kmax")
	}
	r.eng.Run()
	var ce int
	for _, p := range r.b.got {
		if p.CE {
			ce++
		}
	}
	if ce == 0 {
		t.Fatal("no CE-marked packets delivered")
	}
}

func TestSwitchECNNotMarkedBelowKmin(t *testing.T) {
	r := newRig(basicCfg(), 100*sim.Gbps, 0)
	for i := 0; i < 5; i++ {
		r.a.send(r.pool.NewData(1, 1, 2, int64(i)*1000, 1000))
	}
	r.eng.Run()
	for _, p := range r.b.got {
		if p.CE {
			t.Fatal("marked below Kmin")
		}
	}
}

func TestSwitchBufferDrop(t *testing.T) {
	cfg := basicCfg()
	cfg.BufferBytes = 2500 // room for two 1000B packets
	r := newRig(cfg, 100*sim.Gbps, 0)
	for i := 0; i < 5; i++ {
		p := r.pool.NewData(1, 1, 2, int64(i)*1000, 1000)
		r.sw.Receive(p, r.sw.Port(0))
	}
	if r.sw.Drops == 0 {
		t.Fatal("no drops with overfull buffer")
	}
	r.eng.Run()
	if got := len(r.b.got); got+int(r.sw.Drops) != 5 {
		t.Fatalf("delivered %d + dropped %d != 5", got, r.sw.Drops)
	}
}

func TestSwitchControlNeverDropped(t *testing.T) {
	cfg := basicCfg()
	cfg.BufferBytes = 100 // can't hold even one data packet
	r := newRig(cfg, 100*sim.Gbps, 0)
	r.sw.Receive(r.pool.NewControl(pkt.Ack, 1, 1, 2), r.sw.Port(0))
	r.eng.Run()
	if len(r.b.got) != 1 || r.b.got[0].Kind != pkt.Ack {
		t.Fatal("control frame dropped")
	}
}

func TestSwitchPFC(t *testing.T) {
	cfg := basicCfg()
	cfg.PFCEnabled = true
	cfg.PFCXoff = 3000
	cfg.PFCXon = 1000
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	sw := New(eng, pool, cfg)
	// Fast host a, slow egress to b so the switch backs up.
	a := newStubHost(eng, pool, 1, 100*sim.Gbps, sim.Microsecond)
	b := newStubHost(eng, pool, 2, sim.Gbps, sim.Microsecond)
	pa := sw.AddPort(100*sim.Gbps, sim.Microsecond)
	pb := sw.AddPort(sim.Gbps, sim.Microsecond)
	link.Connect(a.port, pa)
	link.Connect(b.port, pb)
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)

	for i := 0; i < 20; i++ {
		a.send(pool.NewData(1, 1, 2, int64(i)*1000, 1000))
	}
	eng.Run()
	if sw.PFCPauses == 0 {
		t.Fatal("PFC never triggered")
	}
	if sw.PFCResumes != sw.PFCPauses {
		t.Fatalf("pauses %d != resumes %d after drain", sw.PFCPauses, sw.PFCResumes)
	}
	if a.port.PauseRx == 0 {
		t.Fatal("host never paused")
	}
	if len(b.got) != 20 {
		t.Fatalf("delivered %d, want 20 (PFC must be lossless)", len(b.got))
	}
	if sw.Drops != 0 {
		t.Fatalf("drops = %d with PFC", sw.Drops)
	}
}

func TestSwitchRoutePanicsOnUnknownDst(t *testing.T) {
	r := newRig(basicCfg(), sim.Gbps, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.sw.RouteFor(999, 1)
}

func TestECMPDeterministicAndSpread(t *testing.T) {
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	sw := New(eng, pool, basicCfg())
	for i := 0; i < 4; i++ {
		sw.AddPort(sim.Gbps, 0)
	}
	for p := 0; p < 4; p++ {
		sw.AddRoute(7, p)
	}
	seen := map[int]int{}
	for f := pkt.FlowID(0); f < 64; f++ {
		p1 := sw.RouteFor(7, f)
		p2 := sw.RouteFor(7, f)
		if p1 != p2 {
			t.Fatal("ECMP not deterministic per flow")
		}
		seen[p1]++
	}
	if len(seen) < 3 {
		t.Fatalf("poor ECMP spread: %v", seen)
	}
}

func TestSwitchPFCAccountingNonNegative(t *testing.T) {
	cfg := basicCfg()
	cfg.PFCEnabled = true
	cfg.PFCXoff = 2000
	cfg.PFCXon = 500
	r := newRig(cfg, 10*sim.Gbps, sim.Microsecond)
	for i := 0; i < 50; i++ {
		r.a.send(r.pool.NewData(1, 1, 2, int64(i)*1000, 1000))
	}
	r.eng.Run()
	if r.sw.BufferUsed() != 0 {
		t.Fatalf("buffer residual %d after drain", r.sw.BufferUsed())
	}
	for i, v := range r.sw.ingressBytes {
		if v != 0 {
			t.Fatalf("ingress %d residual %d", i, v)
		}
	}
}
