package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlcc/internal/pkt"
)

func TestRingFIFOOrder(t *testing.T) {
	var r pkt.Ring
	for i := 0; i < 100; i++ {
		r.Push(&pkt.Packet{Seq: int64(i), Size: 10})
	}
	if r.Len() != 100 || r.Bytes() != 1000 {
		t.Fatalf("len=%d bytes=%d", r.Len(), r.Bytes())
	}
	for i := 0; i < 100; i++ {
		p := r.Pop()
		if p.Seq != int64(i) {
			t.Fatalf("pop %d got seq %d", i, p.Seq)
		}
	}
	if r.Pop() != nil || r.Len() != 0 || r.Bytes() != 0 {
		t.Fatal("ring not empty after drain")
	}
}

func TestRingInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r pkt.Ring
	next, expect := int64(0), int64(0)
	for op := 0; op < 10000; op++ {
		if rng.Intn(3) != 0 {
			r.Push(&pkt.Packet{Seq: next, Size: 1})
			next++
		} else if p := r.Pop(); p != nil {
			if p.Seq != expect {
				t.Fatalf("expected %d got %d", expect, p.Seq)
			}
			expect++
		}
	}
	if r.Bytes() != int64(r.Len()) {
		t.Fatalf("bytes %d != len %d", r.Bytes(), r.Len())
	}
}

func TestFIFOControlFirst(t *testing.T) {
	f := NewFIFO()
	f.Enqueue(&pkt.Packet{Kind: pkt.Data, Pri: pkt.ClassData, Size: 1000})
	f.Enqueue(&pkt.Packet{Kind: pkt.Ack, Pri: pkt.ClassControl, Size: 64})
	var paused [pkt.NumClasses]bool
	if p := f.Next(&paused); p.Kind != pkt.Ack {
		t.Fatalf("first = %v", p.Kind)
	}
	if p := f.Next(&paused); p.Kind != pkt.Data {
		t.Fatalf("second = %v", p.Kind)
	}
	if f.Next(&paused) != nil {
		t.Fatal("expected empty")
	}
}

func TestFIFOPauseHonoured(t *testing.T) {
	f := NewFIFO()
	f.Enqueue(&pkt.Packet{Kind: pkt.Data, Pri: pkt.ClassData, Size: 1000})
	paused := [pkt.NumClasses]bool{pkt.ClassData: true}
	if f.Next(&paused) != nil {
		t.Fatal("paused data dequeued")
	}
	if f.DataBytes() != 1000 {
		t.Fatalf("DataBytes = %d", f.DataBytes())
	}
	paused[pkt.ClassData] = false
	if f.Next(&paused) == nil {
		t.Fatal("unpaused data not dequeued")
	}
}

// Property: FIFO preserves per-class order and byte accounting for any
// push/pop interleaving.
func TestFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewFIFO()
		var paused [pkt.NumClasses]bool
		var wantData, wantCtl []int64
		seq := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.Enqueue(&pkt.Packet{Kind: pkt.Data, Pri: pkt.ClassData, Size: 100, Seq: seq})
				wantData = append(wantData, seq)
			case 1:
				q.Enqueue(&pkt.Packet{Kind: pkt.Ack, Pri: pkt.ClassControl, Size: 64, Seq: seq})
				wantCtl = append(wantCtl, seq)
			case 2:
				p := q.Next(&paused)
				if p == nil {
					if len(wantData)+len(wantCtl) != 0 {
						return false
					}
					continue
				}
				if p.Pri == pkt.ClassControl {
					if len(wantCtl) == 0 || p.Seq != wantCtl[0] {
						return false
					}
					wantCtl = wantCtl[1:]
				} else {
					// control must be drained first
					if len(wantCtl) != 0 || len(wantData) == 0 || p.Seq != wantData[0] {
						return false
					}
					wantData = wantData[1:]
				}
			}
			seq++
		}
		return q.DataBytes() == int64(100*len(wantData))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
