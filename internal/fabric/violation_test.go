package fabric

import (
	"strings"
	"testing"

	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// TestInvariantViolationReplaysFlightRecorder corrupts the shared-buffer
// accounting of a switch carrying live traffic and checks that the resulting
// invariant panic first replays the flight recorder's buffered
// packet-lifecycle events — the debugging workflow the recorder exists for.
func TestInvariantViolationReplaysFlightRecorder(t *testing.T) {
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	sw := New(eng, pool, Config{ID: 7, BufferBytes: 1 << 20, Seed: 1})
	fr := metrics.NewFlightRecorder(32)
	sw.SetRecorder(fr)

	a := newStubHost(eng, pool, 1, 10*sim.Gbps, sim.Microsecond)
	b := newStubHost(eng, pool, 2, 10*sim.Gbps, sim.Microsecond)
	link.Connect(a.port, sw.AddPort(10*sim.Gbps, sim.Microsecond))
	link.Connect(b.port, sw.AddPort(10*sim.Gbps, sim.Microsecond))
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)

	// Healthy traffic first, so the recorder holds real events.
	for i := 0; i < 8; i++ {
		a.send(pool.NewData(1, 1, 2, int64(i)*1000, 1000))
	}
	eng.Run()
	if fr.Recorded() == 0 {
		t.Fatal("no events recorded during healthy traffic")
	}

	var dump strings.Builder
	prev := metrics.SetViolationOutput(&dump)
	defer metrics.SetViolationOutput(prev)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted accounting did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "shared buffer underflow") {
			t.Fatalf("panic = %v", r)
		}
		out := dump.String()
		if !strings.Contains(out, "invariant violation: fabric: switch 7:") {
			t.Fatalf("violation header missing: %q", out)
		}
		if !strings.Contains(out, "events (capacity 32)") {
			t.Fatalf("flight-recorder replay missing: %q", out)
		}
		// The replay must contain the lifecycle events of the healthy
		// traffic, not just the header.
		if !strings.Contains(out, "enq") || !strings.Contains(out, "deq") {
			t.Fatalf("replay lacks enqueue/dequeue events: %q", out)
		}
	}()

	// Bias the shared-buffer accounting low: the next packet's dequeue then
	// drives bufferUsed negative and must trip the invariant.
	sw.bufferUsed = -1
	a.send(pool.NewData(1, 1, 2, 9000, 1000))
	eng.Run()
	t.Fatal("engine drained without tripping the invariant")
}
