// Package fabric models lossless-Ethernet datacenter switches: a shared
// packet buffer with per-ingress-port PFC accounting (IEEE 802.1Qbb Xoff/Xon
// thresholds), WRED ECN marking, per-hop INT telemetry stamping, static ECMP
// routing, and a pluggable per-port queue discipline so that DCI switches
// (package dci) can substitute per-flow queuing on selected ports.
package fabric

import (
	"fmt"
	"math/rand"

	"mlcc/internal/audit"
	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// Config parameterizes a switch.
type Config struct {
	ID          pkt.NodeID
	BufferBytes int64 // shared data buffer capacity

	// WRED ECN marking thresholds on egress data queue length.
	ECNKmin int64
	ECNKmax int64
	ECNPmax float64

	// PFC per-ingress-port thresholds (bytes). PFCEnabled gates the whole
	// mechanism.
	PFCEnabled bool
	PFCXoff    int64
	PFCXon     int64

	// INTEnabled stamps per-hop telemetry onto data packets at dequeue.
	INTEnabled bool

	// Seed for the marking RNG; runs are deterministic per (ID, Seed).
	Seed int64
}

// Hooks let a wrapper (the DCI switch) observe and rewrite traffic.
type Hooks interface {
	// OnIngress runs after routing and before enqueue. It may mutate the
	// packet (e.g. rewrite ACK rate fields) or consume it entirely (near-
	// source INT reflection consumes nothing, PFQ redirection does).
	// Returning true means the hook took ownership of the packet.
	OnIngress(p *pkt.Packet, inPort, outPort int) bool
}

// Discipline is a per-port egress queue. Implementations must be
// single-goroutine like everything else in the simulator.
type Discipline interface {
	link.Source
	// Enqueue stores p for transmission. It never rejects: admission
	// (shared-buffer) control happens in the switch before Enqueue.
	Enqueue(p *pkt.Packet)
	// DataBytes reports the queued data-class backlog in bytes.
	DataBytes() int64
	// Drain empties every queue, passing each frame to drop (which takes
	// ownership) and resetting all internal scheduling state — switch failure
	// uses it to destroy buffered frames pool-clean, bypassing the dequeue
	// accounting path.
	Drain(drop func(p *pkt.Packet))
}

// Switch is a store-and-forward output-queued switch.
type Switch struct {
	Cfg  Config
	Eng  *sim.Engine
	Pool *pkt.Pool

	ports  []*link.Port
	disc   []Discipline
	routes map[pkt.NodeID][]int // destination host -> ECMP candidate egress ports

	hooks Hooks

	bufferUsed   int64
	ingressBytes []int64 // per ingress port, data class
	ingressPause []bool  // whether we have paused that upstream

	rng *rand.Rand

	fr  *metrics.FlightRecorder
	aud *audit.Ledger
	pfc []PFCPortStat // per ingress port

	failed bool // device powered off by a node fault

	// Statistics.
	Drops      int64 // data packets dropped at admission
	Marked     int64 // CE marks applied
	PFCPauses  int64 // pause events generated (Xoff crossings)
	PFCResumes int64
	RxData     int64 // data packets received
	Fails      int64 // node-fault failure events applied
	Recovers   int64 // node-fault recovery events applied
	Drained    int64 // frames destroyed from egress queues by Fail
}

// PFCPortStat accounts PFC activity toward one upstream: pause/resume events
// generated on that ingress port and the cumulative time it was held paused.
type PFCPortStat struct {
	Pauses      int64
	Resumes     int64
	PausedTotal sim.Time

	pausedAt sim.Time // valid while the upstream is paused
}

// New constructs a switch with nports ports. Each port must then be
// configured via AddPort and connected by the topology builder.
func New(eng *sim.Engine, pool *pkt.Pool, cfg Config) *Switch {
	if cfg.ECNPmax == 0 {
		cfg.ECNPmax = 1
	}
	return &Switch{
		Cfg:    cfg,
		Eng:    eng,
		Pool:   pool,
		routes: make(map[pkt.NodeID][]int),
		rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)<<17 ^ 0x5eed)),
	}
}

// ID returns the switch's node id.
func (s *Switch) ID() pkt.NodeID { return s.Cfg.ID }

// AddPort creates port i (ports must be added in index order) with the given
// line rate and propagation delay, using the default two-class FIFO
// discipline. It returns the new port for the topology builder to Connect.
func (s *Switch) AddPort(rate sim.Rate, delay sim.Time) *link.Port {
	idx := len(s.ports)
	p := link.NewPort(s.Eng, s, idx, rate, delay, s.Pool)
	s.ports = append(s.ports, p)
	d := NewFIFO()
	s.disc = append(s.disc, d)
	p.SetSource(&portSource{sw: s, port: idx})
	s.ingressBytes = append(s.ingressBytes, 0)
	s.ingressPause = append(s.ingressPause, false)
	s.pfc = append(s.pfc, PFCPortStat{})
	return p
}

// SetRecorder attaches a flight recorder (nil detaches). Hot-path call sites
// are guarded on the pointer, so a detached recorder costs one branch.
func (s *Switch) SetRecorder(fr *metrics.FlightRecorder) { s.fr = fr }

// Recorder returns the attached flight recorder (possibly nil).
func (s *Switch) Recorder() *metrics.FlightRecorder { return s.fr }

// SetAudit attaches the conservation-audit ledger (nil detaches).
func (s *Switch) SetAudit(a *audit.Ledger) { s.aud = a }

// PFCStatAt reports ingress port i's PFC accounting. PausedTotal includes the
// still-open pause interval when the upstream is currently paused, so it is
// accurate mid-run.
func (s *Switch) PFCStatAt(i int) PFCPortStat {
	st := s.pfc[i]
	if s.ingressPause[i] {
		st.PausedTotal += s.Eng.Now() - st.pausedAt
	}
	return st
}

// RegisterMetrics registers the switch's counters and per-port instruments
// under prefix (e.g. "switch.leaf0"). Call after all ports are added; a nil
// registry makes this a no-op.
func (s *Switch) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+".rx_data_pkts", func() int64 { return s.RxData })
	reg.CounterFunc(prefix+".drops", func() int64 { return s.Drops })
	reg.CounterFunc(prefix+".ecn_marked", func() int64 { return s.Marked })
	reg.CounterFunc(prefix+".pfc_pauses", func() int64 { return s.PFCPauses })
	reg.CounterFunc(prefix+".pfc_resumes", func() int64 { return s.PFCResumes })
	reg.CounterFunc(prefix+".fails", func() int64 { return s.Fails })
	reg.CounterFunc(prefix+".recovers", func() int64 { return s.Recovers })
	reg.CounterFunc(prefix+".drained_pkts", func() int64 { return s.Drained })
	reg.GaugeFunc(prefix+".buffer_bytes", func() float64 { return float64(s.bufferUsed) })
	for i := range s.ports {
		i := i
		q := fmt.Sprintf("%s.q%d", prefix, i)
		reg.GaugeFunc(q+".qlen_bytes", func() float64 { return float64(s.disc[i].DataBytes()) })
		reg.CounterFunc(q+".tx_bytes", func() int64 { return s.ports[i].TxBytes })
		reg.CounterFunc(q+".pfc_pauses", func() int64 { return s.pfc[i].Pauses })
		reg.CounterFunc(q+".pfc_resumes", func() int64 { return s.pfc[i].Resumes })
		reg.CounterFunc(q+".pfc_pause_ns", func() int64 {
			return int64(s.PFCStatAt(i).PausedTotal / sim.Nanosecond)
		})
	}
}

// Port returns port i.
func (s *Switch) Port(i int) *link.Port { return s.ports[i] }

// NumPorts reports the number of ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetDiscipline replaces the egress discipline of port i (used by the DCI
// switch to install per-flow queuing).
func (s *Switch) SetDiscipline(i int, d Discipline) { s.disc[i] = d }

// DisciplineAt returns the egress discipline of port i.
func (s *Switch) DisciplineAt(i int) Discipline { return s.disc[i] }

// SetHooks installs packet hooks (DCI behaviours).
func (s *Switch) SetHooks(h Hooks) { s.hooks = h }

// AddRoute registers egress port candidates for a destination host. Called
// repeatedly it builds the ECMP set.
func (s *Switch) AddRoute(dst pkt.NodeID, port int) {
	s.routes[dst] = append(s.routes[dst], port)
}

// RouteFor returns the egress port for a flow toward dst, hashing the flow
// id across the ECMP set. It panics on unknown destinations: a routing hole
// is always a topology bug.
func (s *Switch) RouteFor(dst pkt.NodeID, flow pkt.FlowID) int {
	cands := s.routes[dst]
	if len(cands) == 0 {
		panic(fmt.Sprintf("fabric: switch %d has no route to %d", s.Cfg.ID, dst))
	}
	if len(cands) == 1 {
		return cands[0]
	}
	return cands[ecmpHash(flow, s.Cfg.ID)%uint32(len(cands))]
}

// ecmpHash mixes the flow id and switch id (fnv-style) so different switches
// spread the same flows differently.
func ecmpHash(flow pkt.FlowID, node pkt.NodeID) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(flow)) * 16777619
	h = (h ^ uint32(node)) * 16777619
	h = (h ^ (h >> 13)) * 0x5bd1e995
	return h ^ (h >> 15)
}

// BufferUsed reports the shared data buffer occupancy in bytes.
func (s *Switch) BufferUsed() int64 { return s.bufferUsed }

// EgressQLen reports the data backlog of port i's discipline.
func (s *Switch) EgressQLen(i int) int64 { return s.disc[i].DataBytes() }

// Receive implements link.Endpoint.
func (s *Switch) Receive(p *pkt.Packet, on *link.Port) {
	out := s.RouteFor(p.Dst, p.Flow)
	if s.hooks != nil && s.hooks.OnIngress(p, on.Index, out) {
		return
	}
	s.ForwardTo(p, on.Index, out)
}

// ForwardTo runs admission control and enqueues p on egress port out. It is
// exported for the DCI hook, which re-injects PFQ packets through the normal
// path. inPort < 0 means "internally generated" (no PFC accounting).
func (s *Switch) ForwardTo(p *pkt.Packet, inPort, out int) {
	if p.Kind == pkt.Data {
		s.RxData++
		// Shared-buffer admission. Control frames are never dropped: they
		// are tiny and ride a protected class, as in real RDMA fabrics.
		if s.bufferUsed+int64(p.Size) > s.Cfg.BufferBytes {
			s.Drops++
			if s.fr != nil {
				s.fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvDrop,
					Node: int32(s.Cfg.ID), Port: int32(out), Flow: int32(p.Flow), Val: int64(p.Size)})
			}
			s.aud.OnWREDDrop(p.Flow, p.Size)
			s.Pool.Put(p)
			return
		}
		s.bufferUsed += int64(p.Size)
		p.InPort = inPort
		if inPort >= 0 {
			s.ingressBytes[inPort] += int64(p.Size)
			s.checkXoff(inPort)
		}
		s.ecnMark(p, out)
		if s.fr != nil {
			s.fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvEnqueue,
				Node: int32(s.Cfg.ID), Port: int32(out), Flow: int32(p.Flow), Val: int64(p.Size)})
		}
	}
	s.disc[out].Enqueue(p)
	s.ports[out].Kick()
}

// checkXoff sends a PFC pause upstream when the ingress backlog crosses Xoff.
func (s *Switch) checkXoff(in int) {
	if !s.Cfg.PFCEnabled || s.ingressPause[in] {
		return
	}
	if s.ingressBytes[in] >= s.Cfg.PFCXoff {
		s.ingressPause[in] = true
		s.PFCPauses++
		st := &s.pfc[in]
		st.Pauses++
		st.pausedAt = s.Eng.Now()
		if s.fr != nil {
			s.fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvPFCPause,
				Node: int32(s.Cfg.ID), Port: int32(in), Val: s.ingressBytes[in]})
		}
		s.ports[in].SendPause(pkt.ClassData, true)
	}
}

// ecnMark applies WRED marking based on the egress data backlog.
func (s *Switch) ecnMark(p *pkt.Packet, out int) {
	if !p.ECT || s.Cfg.ECNKmax <= 0 {
		return
	}
	q := s.disc[out].DataBytes()
	switch {
	case q <= s.Cfg.ECNKmin:
		return
	case q >= s.Cfg.ECNKmax:
		p.CE = true
	default:
		prob := s.Cfg.ECNPmax * float64(q-s.Cfg.ECNKmin) / float64(s.Cfg.ECNKmax-s.Cfg.ECNKmin)
		if s.rng.Float64() < prob {
			p.CE = true
		}
	}
	if p.CE {
		s.Marked++
		if s.fr != nil {
			s.fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvECNMark,
				Node: int32(s.Cfg.ID), Port: int32(out), Flow: int32(p.Flow), Val: q})
		}
	}
}

// afterDequeue performs post-dequeue accounting: shared-buffer release,
// PFC Xon resume, and INT stamping.
func (s *Switch) afterDequeue(p *pkt.Packet, out int) {
	if p.Kind != pkt.Data {
		return
	}
	s.bufferUsed -= int64(p.Size)
	if s.bufferUsed < 0 {
		s.violatef("shared buffer underflow: %d bytes after dequeue of flow %d", s.bufferUsed, p.Flow)
	}
	if in := p.InPort; in >= 0 && in < len(s.ingressBytes) {
		s.ingressBytes[in] -= int64(p.Size)
		if s.ingressBytes[in] < 0 {
			s.violatef("ingress port %d accounting underflow: %d bytes", in, s.ingressBytes[in])
		}
		if s.Cfg.PFCEnabled && s.ingressPause[in] && s.ingressBytes[in] <= s.Cfg.PFCXon {
			s.ingressPause[in] = false
			s.PFCResumes++
			st := &s.pfc[in]
			st.Resumes++
			st.PausedTotal += s.Eng.Now() - st.pausedAt
			if s.fr != nil {
				s.fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvPFCResume,
					Node: int32(s.Cfg.ID), Port: int32(in), Val: s.ingressBytes[in]})
			}
			s.ports[in].SendPause(pkt.ClassData, false)
		}
	}
	if s.fr != nil {
		s.fr.Record(metrics.Event{T: s.Eng.Now(), Kind: metrics.EvDequeue,
			Node: int32(s.Cfg.ID), Port: int32(out), Flow: int32(p.Flow), Val: int64(p.Size)})
	}
	if s.Cfg.INTEnabled {
		port := s.ports[out]
		p.AddHop(pkt.INTHop{
			Node:    s.Cfg.ID,
			QLen:    s.disc[out].DataBytes(),
			TxBytes: port.TxBytes,
			TS:      s.Eng.Now(),
			Band:    port.Rate,
		})
	}
}

// Fail powers the switch off. Every egress queue drains pool-clean — each
// buffered frame is reported to the audit ledger as a fault drop (it is
// already past the inbound link's Rx accounting, so this is the fate that
// balances its flow's books) and returned to the pool, bypassing the dequeue
// path so a dead switch emits no Xon frames. Every attached port is cut in
// both directions (cross-shard peer ends are cut by the fault layer's peer-
// engine hook at the same absolute time). Shared-buffer and per-ingress PFC
// accounting reset wholesale; open pause intervals fold into PausedTotal
// without counting a resume — no Resume frame was ever sent. Idempotent.
func (s *Switch) Fail() {
	if s.failed {
		return
	}
	s.failed = true
	s.Fails++
	for i, p := range s.ports {
		s.disc[i].Drain(func(q *pkt.Packet) {
			s.Drained++
			s.aud.OnFaultDrop(q, false)
			s.Pool.Put(q)
		})
		p.SetDown(true)
		if peer := p.Peer(); peer != nil && !p.Cross() {
			peer.SetDown(true)
		}
	}
	s.bufferUsed = 0
	now := s.Eng.Now()
	for i := range s.ingressBytes {
		s.ingressBytes[i] = 0
		if s.ingressPause[i] {
			s.ingressPause[i] = false
			st := &s.pfc[i]
			st.PausedTotal += now - st.pausedAt
		}
	}
}

// Recover powers a failed switch back on: every attached port comes up in
// both directions (restoring a port kicks its transmitter). The switch
// restarts empty — buffers, PFC state and queues were cleared at Fail.
// Idempotent.
func (s *Switch) Recover() {
	if !s.failed {
		return
	}
	s.failed = false
	s.Recovers++
	for _, p := range s.ports {
		p.SetDown(false)
		if peer := p.Peer(); peer != nil && !p.Cross() {
			peer.SetDown(false)
		}
	}
}

// Failed reports whether the switch is currently powered off.
func (s *Switch) Failed() bool { return s.failed }

// violatef reports a broken conservation invariant: the flight recorder's
// last events are replayed (when one is attached) and the simulation panics.
func (s *Switch) violatef(format string, args ...any) {
	metrics.Violation(s.fr, fmt.Sprintf("fabric: switch %d: ", s.Cfg.ID)+fmt.Sprintf(format, args...))
}

// portSource adapts a Discipline to link.Source, inserting the switch's
// post-dequeue accounting between the queue and the wire.
type portSource struct {
	sw   *Switch
	port int
}

func (ps *portSource) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	p := ps.sw.disc[ps.port].Next(paused)
	if p == nil {
		return nil
	}
	ps.sw.afterDequeue(p, ps.port)
	return p
}
