package fabric

import (
	"math/rand"
	"testing"

	"mlcc/internal/link"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// TestSwitchInvariantsUnderRandomTraffic drives random flows from several
// hosts through one switch with tight buffers and PFC enabled, then checks
// the conservation invariants: every data packet is either delivered or
// counted as dropped, and all buffer/ingress accounting returns to zero.
func TestSwitchInvariantsUnderRandomTraffic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		eng := sim.NewEngine()
		pool := pkt.NewPool()
		cfg := Config{
			ID:          100,
			BufferBytes: int64(20_000 + rng.Intn(200_000)),
			PFCEnabled:  rng.Intn(2) == 0,
			PFCXoff:     8_000,
			PFCXon:      4_000,
			ECNKmin:     4_000,
			ECNKmax:     16_000,
			ECNPmax:     0.5,
			INTEnabled:  true,
			Seed:        int64(trial),
		}
		sw := New(eng, pool, cfg)

		const nHosts = 4
		hosts := make([]*stubHost, nHosts)
		for i := range hosts {
			rate := sim.Rate(1+rng.Intn(40)) * sim.Gbps
			h := newStubHost(eng, pool, pkt.NodeID(i+1), rate, sim.Microsecond)
			p := sw.AddPort(rate, sim.Microsecond)
			link.Connect(h.port, p)
			sw.AddRoute(pkt.NodeID(i+1), i)
			hosts[i] = h
		}

		sent := 0
		for i := 0; i < 300; i++ {
			src := rng.Intn(nHosts)
			dst := rng.Intn(nHosts)
			if dst == src {
				dst = (dst + 1) % nHosts
			}
			size := 64 + rng.Intn(1400)
			p := pool.NewData(pkt.FlowID(i%17), pkt.NodeID(src+1), pkt.NodeID(dst+1), int64(i), size)
			at := sim.Time(rng.Intn(200)) * sim.Microsecond
			h := hosts[src]
			eng.At(at, func() { h.send(p) })
			sent++
		}
		eng.Run()

		delivered := 0
		for _, h := range hosts {
			for _, p := range h.got {
				if p.Kind == pkt.Data {
					delivered++
				}
			}
		}
		if delivered+int(sw.Drops) != sent {
			t.Fatalf("trial %d: delivered %d + dropped %d != sent %d",
				trial, delivered, sw.Drops, sent)
		}
		if sw.BufferUsed() != 0 {
			t.Fatalf("trial %d: buffer residual %d", trial, sw.BufferUsed())
		}
		for i, v := range sw.ingressBytes {
			if v != 0 {
				t.Fatalf("trial %d: ingress %d residual %d", trial, i, v)
			}
		}
		if cfg.PFCEnabled && sw.PFCPauses != sw.PFCResumes {
			t.Fatalf("trial %d: pauses %d != resumes %d after drain",
				trial, sw.PFCPauses, sw.PFCResumes)
		}
	}
}

// TestSwitchLosslessUnderPFC checks that with PFC on and generous thresholds
// relative to buffer size, no packet is ever dropped regardless of overload.
func TestSwitchLosslessUnderPFC(t *testing.T) {
	eng := sim.NewEngine()
	pool := pkt.NewPool()
	cfg := Config{
		ID:          1,
		BufferBytes: 1 << 20,
		PFCEnabled:  true,
		PFCXoff:     64 << 10, // 64KB of 1MB: plenty of headroom
		PFCXon:      32 << 10,
		Seed:        1,
	}
	sw := New(eng, pool, cfg)
	fast := newStubHost(eng, pool, 1, 100*sim.Gbps, sim.Microsecond)
	slow := newStubHost(eng, pool, 2, sim.Gbps, sim.Microsecond)
	pf := sw.AddPort(100*sim.Gbps, sim.Microsecond)
	ps := sw.AddPort(sim.Gbps, sim.Microsecond)
	link.Connect(fast.port, pf)
	link.Connect(slow.port, ps)
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)

	const n = 2000
	for i := 0; i < n; i++ {
		fast.send(pool.NewData(1, 1, 2, int64(i)*1000, 1000))
	}
	eng.Run()
	if sw.Drops != 0 {
		t.Fatalf("dropped %d packets despite PFC", sw.Drops)
	}
	if len(slow.got) != n {
		t.Fatalf("delivered %d of %d", len(slow.got), n)
	}
	// 100:1 overload must have paused the fast host.
	if fast.port.PauseRx == 0 {
		t.Fatal("fast sender never paused")
	}
}
