package fabric

import "mlcc/internal/pkt"

// FIFO is the default egress discipline: a strict-priority pair of FIFOs,
// control class first (congestion signals must not queue behind data).
type FIFO struct {
	q [pkt.NumClasses]pkt.Ring
}

// NewFIFO returns an empty FIFO discipline.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Discipline.
func (f *FIFO) Enqueue(p *pkt.Packet) { f.q[p.Pri].Push(p) }

// Next implements link.Source: strict priority, honouring pause state.
func (f *FIFO) Next(paused *[pkt.NumClasses]bool) *pkt.Packet {
	for class := pkt.NumClasses - 1; class >= 0; class-- {
		if paused[class] {
			continue
		}
		if p := f.q[class].Pop(); p != nil {
			return p
		}
	}
	return nil
}

// DataBytes implements Discipline.
func (f *FIFO) DataBytes() int64 { return f.q[pkt.ClassData].Bytes() }

// Drain implements Discipline: every queued frame of every class is handed
// to drop, which takes ownership.
func (f *FIFO) Drain(drop func(p *pkt.Packet)) {
	for class := range f.q {
		for p := f.q[class].Pop(); p != nil; p = f.q[class].Pop() {
			drop(p)
		}
	}
}

// ControlLen reports queued control frames (for tests).
func (f *FIFO) ControlLen() int { return f.q[pkt.ClassControl].Len() }

// DataLen reports queued data frames (for tests).
func (f *FIFO) DataLen() int { return f.q[pkt.ClassData].Len() }
