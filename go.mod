module mlcc

go 1.22
