package mlcc

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mlcc/internal/fabric"
	"mlcc/internal/link"
	"mlcc/internal/metrics"
	"mlcc/internal/pkt"
	"mlcc/internal/sim"
)

// TestTelemetryDisabledPathAllocFree proves the telemetry layer's
// zero-overhead contract on the simulator's hot paths: with no telemetry
// attached the link-transfer and switch-forward loops must not allocate, and
// attaching a flight recorder plus registry must not add allocations either
// (the ring is pre-sized and registry instruments are read only at snapshot
// time).
func TestTelemetryDisabledPathAllocFree(t *testing.T) {
	t.Run("link", func(t *testing.T) {
		e := sim.NewEngine()
		pool := pkt.NewPool()
		sink := &benchSink{pool: pool}
		feed := &benchFeed{pool: pool}
		a := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
		z := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
		link.Connect(a, z)
		a.SetSource(feed)
		z.SetSource(&benchFeed{pool: pool})
		step := func() {
			feed.remaining = 1
			a.Kick()
			e.Run()
		}
		for i := 0; i < 100; i++ { // reach pool steady state
			step()
		}
		if n := testing.AllocsPerRun(200, step); n != 0 {
			t.Errorf("link transfer allocated %v/op with telemetry disabled", n)
		}
	})

	forward := func(t *testing.T, attach bool) {
		e := sim.NewEngine()
		pool := pkt.NewPool()
		sw := fabric.New(e, pool, fabric.Config{
			ID: 100, BufferBytes: 22 << 20,
			ECNKmin: 100 << 10, ECNKmax: 400 << 10, ECNPmax: 0.2,
			INTEnabled: true, Seed: 1,
		})
		sink := &benchSink{pool: pool}
		idle := &benchFeed{pool: pool}
		p0 := sw.AddPort(100*sim.Gbps, sim.Microsecond)
		p1 := sw.AddPort(100*sim.Gbps, sim.Microsecond)
		e0 := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
		e1 := link.NewPort(e, sink, 0, 100*sim.Gbps, sim.Microsecond, pool)
		e0.SetSource(idle)
		e1.SetSource(idle)
		link.Connect(p0, e0)
		link.Connect(p1, e1)
		sw.AddRoute(2, 1)
		if attach {
			sw.SetRecorder(metrics.NewFlightRecorder(256))
			sw.RegisterMetrics(metrics.NewRegistry(), "switch.s0")
		}
		step := func() {
			sw.Receive(pool.NewData(1, 1, 2, 0, pkt.DefaultMTU), sw.Port(0))
			e.Run()
		}
		for i := 0; i < 100; i++ {
			step()
		}
		if n := testing.AllocsPerRun(200, step); n != 0 {
			t.Errorf("switch forward allocated %v/op (telemetry attached=%v)", n, attach)
		}
	}
	t.Run("switch-disabled", func(t *testing.T) { forward(t, false) })
	t.Run("switch-enabled", func(t *testing.T) { forward(t, true) })
}

// TestRunWithTelemetryWritesArtifacts is the end-to-end acceptance check for
// the dumbbell scenario: a Run with telemetry attached must produce a
// manifest, a time-series CSV, and a flight-recorder log.
func TestRunWithTelemetryWritesArtifacts(t *testing.T) {
	tel := NewTelemetry(TelemetryOptions{
		Metrics:            true,
		FlightRecorderSize: 128,
		SampleInterval:     100 * Microsecond,
		SampleAll:          true,
	})
	res, err := Run(Config{
		Algorithm: "mlcc",
		IntraLoad: 0.3,
		CrossLoad: 0.3,
		Duration:  Millisecond,
		Dumbbell:  true,
		Telemetry: tel,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 {
		t.Fatal("no flows ran")
	}

	dir := t.TempDir()
	if err := tel.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool      string             `json:"tool"`
		Algorithm string             `json:"algorithm"`
		Counters  map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if m.Tool != "mlccsim" || m.Algorithm != "mlcc" {
		t.Fatalf("manifest tool/algorithm = %q/%q", m.Tool, m.Algorithm)
	}
	if len(m.Counters) == 0 {
		t.Fatal("manifest counters empty")
	}
	if _, ok := m.Counters["sim.events_fired"]; !ok {
		t.Fatalf("sim.events_fired missing from counters (%d entries)", len(m.Counters))
	}
	if tel.Recorder().Recorded() == 0 {
		t.Fatal("flight recorder saw no events")
	}
	for _, name := range []string{"series.csv", "flight.log"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
