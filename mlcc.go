// Package mlcc is the public API of this repository: a from-scratch Go
// reproduction of "Efficient Cross-Datacenter Congestion Control with Fast
// Control Loops" (ICPP 2025).
//
// MLCC (Micro Loop Congestion Control) splits the long cross-datacenter
// control loop into three fast loops — a near-source loop fed by Switch-INT
// reflection at the sender-side DCI switch, a receiver-driven credit loop
// controlling per-flow queue (PFQ) dequeue rates at the receiver-side DCI
// switch, and an end-to-end loop carrying the DQM queue-management rate —
// and paces each flow at R_MLCC = min(R_NS, R̄_DQM).
//
// The package wraps a deterministic packet-level network simulator
// (internal/sim, internal/fabric, internal/host, internal/dci) providing the
// substrate the paper evaluates on: a two-datacenter spine-leaf fabric with
// PFC, ECN, INT telemetry and deep-buffered DCI switches, plus the DCQCN,
// Timely, HPCC and PowerTCP baselines.
//
// Quick start:
//
//	res, err := mlcc.Run(mlcc.Config{
//		Algorithm: "mlcc",
//		Workload:  "websearch",
//		IntraLoad: 0.5,
//		CrossLoad: 0.2,
//		Duration:  5 * mlcc.Millisecond,
//	})
//	fmt.Println(res.AvgFCTIntra, res.AvgFCTCross)
//
// For scripted reproduction of every figure in the paper's evaluation see
// cmd/mlccfig and the Experiments function.
package mlcc

import (
	"fmt"
	"io"
	"time"

	"mlcc/internal/audit"
	"mlcc/internal/exp"
	"mlcc/internal/fault"
	"mlcc/internal/guard"
	"mlcc/internal/host"
	"mlcc/internal/metrics"
	"mlcc/internal/obs"
	"mlcc/internal/pkt"
	"mlcc/internal/scenario"
	"mlcc/internal/sim"
	"mlcc/internal/stats"
	"mlcc/internal/topo"
	"mlcc/internal/workload"
)

// FaultPlan re-exports the fault-injection plan: deterministic, seeded link
// faults (flaps, degradation, Bernoulli loss) applied to named topology
// links. Attach one to Config.Fault. See DESIGN.md, "Fault model".
type FaultPlan = fault.Plan

// FaultEvent is one timed link-state change in a FaultPlan.
type FaultEvent = fault.Event

// FaultLossRule is one windowed Bernoulli loss rule in a FaultPlan.
type FaultLossRule = fault.LossRule

// Fault-event actions.
const (
	LinkDown = fault.LinkDown // administratively down: wire contents destroyed
	LinkUp   = fault.LinkUp   // restore a downed link
	Degrade  = fault.Degrade  // reduce rate and/or add delay and jitter
	Restore  = fault.Restore  // clear a degradation
)

// FaultNodeEvent is one timed whole-device fault in a FaultPlan: a host
// crash/restart or a switch failure/recovery, addressed by topology node
// name ("host3", "leaf0", "spine1", "dci0").
type FaultNodeEvent = fault.NodeEvent

// FaultNodeAction selects what a FaultNodeEvent does to its node.
type FaultNodeAction = fault.NodeAction

// Node-fault actions.
const (
	HostCrash     = fault.HostCrash     // host dies: in-flight flows park, NIC link cut
	HostRestart   = fault.HostRestart   // host returns: parked transfers resume from the acked prefix
	SwitchFail    = fault.SwitchFail    // switch dies: queues drain to the ledger, every cable cut
	SwitchRecover = fault.SwitchRecover // switch returns: ports restored, buffers empty
)

// FaultFeedbackRule is one windowed reverse-path rule in a FaultPlan: it
// drops, delays/jitters, or corrupts ACK/CNP/Switch-INT frames at the
// matched hosts' feedback ingress. Host selectors use the topology
// vocabulary ("host3"; "" or "*" for all hosts).
type FaultFeedbackRule = fault.FeedbackRule

// FaultFBKind selects which feedback kinds a FaultFeedbackRule applies to.
type FaultFBKind = fault.FBKind

// Feedback kinds for FaultFeedbackRule.Kinds (zero means all).
const (
	FBAck       = fault.FBAck       // cumulative ACKs (and their INT stacks)
	FBCNP       = fault.FBCNP       // DCQCN congestion notifications
	FBSwitchINT = fault.FBSwitchINT // MLCC near-source Switch-INT reflections
	FBAllKinds  = fault.FBAllKinds
)

// FaultCorruptMode selects which INT-stack corruptions a FaultFeedbackRule
// may apply.
type FaultCorruptMode = fault.CorruptMode

// INT corruption modes for FaultFeedbackRule.Modes (zero means all).
const (
	CorruptTruncate = fault.CorruptTruncate // drop records off the stack tail
	CorruptStaleTS  = fault.CorruptStaleTS  // regress one hop's timestamp
	CorruptGarbage  = fault.CorruptGarbage  // garbage QLen/TxBytes/Band on one hop
	CorruptAllModes = fault.CorruptAllModes
)

// GuardConfig tunes the runtime-invariant guard plane (Config.Guard): the
// PFC pause-storm watchdog, the pause-cycle deadlock detector and the global
// progress (stall) supervisor. The zero value means "armed with defaults";
// every field defaults from the topology's cross-DC RTT. See DESIGN.md,
// "Node faults & guard plane".
type GuardConfig = guard.Config

// DefaultFBWatchdogK is the recommended Config.FBWatchdogK when running
// under feedback faults: conservative enough to ride out transient
// congestion-induced feedback gaps, fast enough to decay well before the
// retransmission budget is at risk.
const DefaultFBWatchdogK = host.DefaultWatchdogK

// ReadFaultPlan parses a fault plan from its JSON form (see EXPERIMENTS.md
// for the format) and validates it.
func ReadFaultPlan(r io.Reader) (*FaultPlan, error) { return fault.ReadPlan(r) }

// WriteFaultPlan emits a plan in the JSON form ReadFaultPlan accepts.
func WriteFaultPlan(w io.Writer, p *FaultPlan) error { return fault.WritePlan(w, p) }

// ScenarioPlan re-exports the scenario-composition plan: named workload
// components — closed-loop ML-collective rings, N→1 incasts, all-to-all
// shuffles, multi-tenant Poisson mixes and a high-RTT long-haul profile —
// composed into one deterministic flow schedule. Attach one to
// Config.Scenario. See DESIGN.md, "Scenario layer".
type ScenarioPlan = scenario.Plan

// ScenarioCollective is one closed-loop ring all-reduce in a ScenarioPlan.
type ScenarioCollective = scenario.Collective

// ScenarioIncast is one open-loop N→1 burst in a ScenarioPlan.
type ScenarioIncast = scenario.Incast

// ScenarioShuffle is one open-loop all-to-all transfer in a ScenarioPlan.
type ScenarioShuffle = scenario.Shuffle

// ScenarioTenant is one named Poisson mix in a ScenarioPlan.
type ScenarioTenant = scenario.Tenant

// ScenarioProfile reshapes the long-haul link (propagation override, jitter,
// outages) for a ScenarioPlan.
type ScenarioProfile = scenario.Profile

// CollectiveStatus is one collective's end-of-run summary in Result.
type CollectiveStatus = scenario.CollectiveStatus

// ReadScenarioPlan parses a JSON scenario plan (see EXPERIMENTS.md for the
// format) and validates it.
func ReadScenarioPlan(r io.Reader) (*ScenarioPlan, error) { return scenario.ReadPlan(r) }

// WriteScenarioPlan emits a plan in the JSON form ReadScenarioPlan accepts.
func WriteScenarioPlan(w io.Writer, p *ScenarioPlan) error { return scenario.WritePlan(w, p) }

// ScenarioKinds lists the canonical acceptance-scenario kinds.
func ScenarioKinds() []string { return scenario.Kinds() }

// CanonicalScenario builds the pinned acceptance plan of the given kind for
// a topology with hosts hosts.
func CanonicalScenario(kind string, hosts int, seed int64) (*ScenarioPlan, error) {
	return scenario.CanonicalPlan(kind, hosts, seed)
}

// TenantSet re-exports the per-tenant statistics partition filled in by
// scenario runs (Result.Tenants).
type TenantSet = stats.TenantSet

// Telemetry re-exports the unified telemetry layer (metrics registry, flight
// recorder, run manifests). Attach one to Config.Telemetry to collect it.
type Telemetry = metrics.Telemetry

// TelemetryOptions selects which telemetry planes to enable.
type TelemetryOptions = metrics.Options

// NewTelemetry builds a telemetry layer for Config.Telemetry.
func NewTelemetry(opts TelemetryOptions) *Telemetry { return metrics.New(opts) }

// ObsServer re-exports the live observability server: Prometheus-text
// /metrics, /manifest, flight-recorder tails, Chrome trace exports and
// net/http/pprof, all served from immutable snapshots published at quiescent
// simulation points. Attach one to Config.Obs and call Serve on it; see
// EXPERIMENTS.md, "Live observability".
type ObsServer = obs.Server

// NewObsServer builds an observability server for Config.Obs.
func NewObsServer() *ObsServer { return obs.NewServer() }

// Time re-exports the simulator's picosecond time type.
type Time = sim.Time

// Rate re-exports the simulator's bits-per-second rate type.
type Rate = sim.Rate

// Convenient units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second

	Kbps = sim.Kbps
	Mbps = sim.Mbps
	Gbps = sim.Gbps
)

// FlowSpec is one transfer of a replayable workload trace.
type FlowSpec = workload.FlowSpec

// ReadFlows parses a flow trace file (CSV: src,dst,size_bytes,start_us);
// hosts is the host count of the target topology.
func ReadFlows(r io.Reader, hosts int) ([]FlowSpec, error) {
	return workload.ReadFlows(r, hosts)
}

// WriteFlows emits flows as a trace file for later replay.
func WriteFlows(w io.Writer, flows []FlowSpec) error {
	return workload.WriteFlows(w, flows)
}

// Algorithms lists the supported congestion-control algorithms.
func Algorithms() []string { return topo.Algorithms() }

// Workloads lists the supported flow-size distributions.
func Workloads() []string { return []string{"websearch", "hadoop"} }

// Config describes one workload simulation on the two-DC topology.
type Config struct {
	// Algorithm is one of Algorithms(); default "mlcc".
	Algorithm string
	// Workload is one of Workloads(); default "websearch".
	Workload string

	// IntraLoad is the intra-DC offered load as a fraction of per-host
	// bisection capacity; CrossLoad is the cross-DC offered load as a
	// fraction of the long-haul link capacity.
	IntraLoad float64
	CrossLoad float64

	// Duration is the arrival window; the simulation then drains until
	// Deadline (default 20× Duration + 100 ms; scenario runs instead derive
	// the default from the plan's horizon, phase count and long-haul delay
	// so closed-loop collectives have room to drain).
	Duration Time
	Deadline Time

	// HostsPerLeaf scales the topology (default 8; the paper's 4:1
	// oversubscribed setup uses 32). Other shape parameters follow §4.1.
	HostsPerLeaf int

	// LongHaulDelay overrides the 3 ms inter-DC propagation delay.
	LongHaulDelay Time

	// Dumbbell selects the §4.6 testbed shape instead of two-DC spine-leaf.
	Dumbbell bool

	// Flows, when non-empty, replays an explicit trace instead of
	// generating Poisson arrivals from Workload/IntraLoad/CrossLoad.
	Flows []FlowSpec

	// Scenario, when non-nil, replaces workload generation entirely: the
	// plan's components (collectives, incasts, shuffles, tenants) define
	// the whole schedule — express background load as a tenant. Exclusive
	// with Flows; Workload/IntraLoad/CrossLoad are ignored. A plan profile
	// reshapes the long-haul link unless the corresponding Config field
	// (LongHaulDelay) overrides it, and profile outages/jitter merge after
	// any Config.Fault events. Results gain per-tenant statistics
	// (Result.Tenants) and collective summaries (Result.Collectives).
	Scenario *ScenarioPlan

	// Fault, when non-nil, injects the scripted link faults (flaps,
	// degradation, loss), feedback-plane faults (ACK/CNP/Switch-INT loss,
	// delay, INT corruption) and node faults (host crash/restart, switch
	// failure/recovery) during the run. Link and node names resolve
	// against the selected topology; "longhaul" is always the inter-DC
	// link. Nil costs nothing and leaves the simulation bit-identical to a
	// fault-free run.
	Fault *FaultPlan

	// Guard, when non-nil, arms the runtime-invariant guard plane: a PFC
	// pause-storm watchdog per port, a pause-cycle deadlock detector over
	// the paused-port wait-for graph, and a global progress supervisor
	// that dumps the flight recorder and halts the run gracefully when no
	// acked byte moves anywhere for StallK·maxRTT with data outstanding.
	// The plane is read-only and ticks only at quiescent points: arming it
	// never perturbs the event schedule, and an armed-but-untriggered
	// guard leaves the run bit-identical to an unguarded one. &GuardConfig{}
	// arms it with defaults scaled by the cross-DC RTT.
	Guard *GuardConfig

	// FBWatchdogK arms the per-flow feedback-silence watchdog: with data
	// outstanding and no feedback for K round-trips, the host halves the
	// pacing rate each further silent RTT (floored at the algorithm's
	// minimum) and unwinds one halving per feedback frame once the reverse
	// path heals. Zero (the default) disarms it entirely; clean runs are
	// then bit-identical. Arming is deliberate opt-in: genuine PFC-pause
	// silences on µs-RTT intra-DC flows would otherwise trigger decay.
	FBWatchdogK int

	// Telemetry, when non-nil, is wired through the whole simulation:
	// every component registers instruments, the flight recorder captures
	// packet-lifecycle events, time-series sampling runs at the configured
	// interval, and the run manifest is filled in. Nil costs nothing.
	Telemetry *Telemetry

	// Audit enables the end-to-end conservation ledger (internal/audit):
	// every injected byte is accounted against its fate and any
	// conservation violation at run end is reported in
	// Result.AuditProblems (Result.Audit then stays empty). Off (the
	// default) costs nothing and leaves the simulation bit-identical.
	Audit bool

	// Obs, when non-nil, serves the run live: the server republishes a
	// fresh snapshot at every quiescent telemetry boundary during Run and a
	// final one when the run ends, so /metrics, /flight and /trace track
	// the simulation as it executes. The caller owns the listener (Serve/
	// Close). Nil costs nothing; attaching a server never perturbs the
	// event schedule (snapshots are taken only with the engines parked).
	Obs *ObsServer

	// Shards selects the per-DC engine count: 0 or 1 runs the whole
	// topology on one engine; 2 gives each datacenter its own engine under
	// the conservative barrier scheduler (lookahead = the long-haul
	// propagation delay). Results are bit-identical either way — sharding
	// is purely a wall-time optimization for multi-DC runs, and every
	// plane — telemetry (flight recorder, sampling, per-flow gauges) and
	// fault injection (scripted events, loss rules, feedback rules) — is
	// shard-safe. The build silently falls back to one engine only when
	// the topology has no positive long-haul delay to bound the shard
	// lookahead; see topo.Params.ShardFallback.
	Shards int

	Seed int64
}

// Result summarizes one simulation.
type Result struct {
	Flows      int
	Completed  int
	Unfinished int

	// Aborted counts flows whose sender gave up after the retransmission
	// budget (only possible under a fault plan or extreme loss).
	Aborted int

	// FaultDrops counts frames destroyed by the fault layer (down-link
	// discards plus Bernoulli loss); 0 when no plan was attached.
	FaultDrops int64

	// NodeCrashes/NodeRestarts/SwitchFails/SwitchRecovers count node-fault
	// events fired by the plan; all 0 without node events.
	NodeCrashes    int64
	NodeRestarts   int64
	SwitchFails    int64
	SwitchRecovers int64

	// FBDrops and FBCorrupts count feedback frames destroyed and INT
	// stacks damaged by the plan's feedback rules; 0 without one.
	FBDrops    int64
	FBCorrupts int64

	// InvalidINT counts feedback frames whose INT stack failed ingress
	// validation and was discarded before reaching the control loops.
	InvalidINT int64

	// WatchdogDecays and WatchdogRecovers count feedback-silence watchdog
	// rate halvings and their unwindings; always 0 unless Config.FBWatchdogK
	// armed the watchdog.
	WatchdogDecays   int64
	WatchdogRecovers int64

	AvgFCTIntra Time
	AvgFCTCross Time
	AvgFCT      Time
	P999Intra   Time
	P999Cross   Time

	PFCPauses int64
	Drops     int64

	// FCT gives access to the full completion-time distribution.
	FCT *stats.FCTCollector

	// Trace is the workload that was run (generated or replayed), suitable
	// for WriteFlows so a run can be replayed exactly. For scenario runs it
	// holds only the open-loop schedule: collective flows are closed-loop
	// (each phase launches off the previous one's completion barrier) and
	// cannot be replayed as a fixed trace.
	Trace []FlowSpec

	// Tenants partitions the FCT samples by scenario component (tenant,
	// collective, incast, shuffle name) with per-tenant percentiles,
	// completed-byte goodput and a Jain fairness index across components.
	// Nil unless the run had a Scenario.
	Tenants *TenantSet

	// Collectives summarizes each scenario collective's end state (phases
	// completed, failure, finish time), in plan order. Nil without a
	// Scenario.
	Collectives []CollectiveStatus

	// Audit is the conservation ledger's one-line fate summary when
	// Config.Audit was set and every conservation check passed ("" when
	// auditing was off or a check failed — see AuditProblems).
	Audit string

	// AuditProblems lists the conservation violations found at run end
	// when Config.Audit was set; nil when auditing was off or the books
	// closed clean. cmd/mlccsim and cmd/mlccfig exit non-zero on any.
	AuditProblems []string

	// Stalled reports that the guard plane's progress supervisor halted
	// the run (StallReason says why); always false without Config.Guard.
	Stalled     bool
	StallReason string

	// GuardStorms/GuardDeadlocks/GuardStalls count guard-plane detections
	// (rising edges, pause cycles, progress stalls); all 0 without
	// Config.Guard.
	GuardStorms    int64
	GuardDeadlocks int64
	GuardStalls    int64
}

// Run executes one workload simulation and returns its summary.
func Run(cfg Config) (*Result, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = "mlcc"
	}
	if cfg.Workload == "" {
		cfg.Workload = "websearch"
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * Millisecond
	}
	sc := cfg.Scenario
	if sc != nil {
		if len(cfg.Flows) > 0 {
			return nil, fmt.Errorf("mlcc: Config.Scenario and Config.Flows are mutually exclusive")
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("mlcc: %w", err)
		}
	}
	if cfg.Deadline <= 0 && sc == nil {
		cfg.Deadline = 20*cfg.Duration + 100*Millisecond
	}
	cdf, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}

	p := topo.DefaultParams()
	if cfg.HostsPerLeaf > 0 {
		p.HostsPerLeaf = cfg.HostsPerLeaf
	} else if !cfg.Dumbbell {
		p.HostsPerLeaf = 8
	}
	if cfg.LongHaulDelay > 0 {
		p.LongHaulDelay = cfg.LongHaulDelay
	} else if sc != nil && sc.Profile != nil && sc.Profile.LongHaul > 0 {
		p.LongHaulDelay = sc.Profile.LongHaul
	}
	p.Seed = cfg.Seed
	p.Shards = cfg.Shards
	found := false
	for _, a := range topo.Algorithms() {
		if a == cfg.Algorithm {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("mlcc: unknown algorithm %q (have %v)", cfg.Algorithm, topo.Algorithms())
	}
	p = p.WithAlgorithm(cfg.Algorithm)
	p.Telemetry = cfg.Telemetry
	if cfg.FBWatchdogK > 0 {
		p.FBWatchdogK = cfg.FBWatchdogK
	}
	if cfg.Audit {
		p.Audit = audit.New()
	}
	if cfg.Fault != nil {
		if err := cfg.Fault.Validate(); err != nil {
			return nil, fmt.Errorf("mlcc: %w", err)
		}
		p.Fault = cfg.Fault
	}
	if cfg.Guard != nil {
		g := *cfg.Guard
		p.Guard = &g
	}
	if sc != nil {
		if fp := sc.FaultPlan(p.Fault); fp != p.Fault {
			if err := fp.Validate(); err != nil {
				return nil, fmt.Errorf("mlcc: scenario profile faults: %w", err)
			}
			p.Fault = fp
		}
		if cfg.Deadline <= 0 {
			// Horizon covers every open-loop instant; each collective phase
			// needs at most a handful of long-haul round trips to drain, so a
			// generous multiple of the phase budget bounds the closed loop.
			cfg.Deadline = 20*sc.Horizon() + 100*Millisecond +
				sim.Time(32*(sc.MaxPhases()+2))*p.LongHaulDelay
		}
	}

	var n *topo.Network
	if cfg.Dumbbell {
		if cfg.HostsPerLeaf == 0 {
			p.HostsPerLeaf = 2
		}
		p.HostRate = 100 * Gbps
		n = topo.Dumbbell(p)
	} else {
		n = topo.TwoDC(p)
	}

	var runner *scenario.Runner
	flows := cfg.Flows
	switch {
	case sc != nil:
		// Bind validates placement against the built topology, registers
		// every open-loop flow and primes the collectives' first phases.
		runner, err = scenario.Bind(sc, n)
		if err != nil {
			return nil, fmt.Errorf("mlcc: %w", err)
		}
		flows = runner.OpenLoop()
	case len(flows) == 0:
		flows, err = workload.Generate(workload.Spec{
			CDF:       cdf,
			IntraLoad: cfg.IntraLoad,
			CrossLoad: cfg.CrossLoad,
			HostRate:  n.P.HostRate,
			IntraRate: n.PerHostBisection(),
			CrossRate: n.P.FabricRate,
			Hosts:     n.NumHosts(),
			Duration:  cfg.Duration,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("mlcc: %w", err)
		}
		if len(flows) == 0 {
			return nil, fmt.Errorf("mlcc: zero offered load (intra=%v cross=%v)", cfg.IntraLoad, cfg.CrossLoad)
		}
	default:
		for _, f := range flows {
			if f.Src >= n.NumHosts() || f.Dst >= n.NumHosts() {
				return nil, fmt.Errorf("mlcc: trace flow %d->%d outside the %d-host topology", f.Src, f.Dst, n.NumHosts())
			}
		}
	}

	tel := cfg.Telemetry
	fctHist := tel.Registry().Histogram("cc." + cfg.Algorithm + ".fct_us")
	if runner == nil {
		for _, fs := range flows {
			n.AddFlow(fs.Src, fs.Dst, fs.Size, fs.Start)
		}
	}
	tel.StartSampling(cfg.Deadline)
	if cfg.Obs != nil {
		every := tel.SampleInterval()
		if every <= 0 {
			every = Millisecond
		}
		cfg.Obs.Attach(n, every)
		cfg.Obs.PublishNetwork(n, true)
	}
	t0 := time.Now()
	n.Run(cfg.Deadline)
	auditProblems := n.AuditProblems()

	// Collect completions post-run in flow-ID order rather than via
	// OnFlowDone/OnFlowAbort closures: on a sharded build the closures
	// would write one collector from two engines' goroutines, and the
	// flow-ID walk gives the same sample order for any shard count (the
	// digest tests prove the per-flow outcomes are identical).
	col := stats.NewFCTCollector()
	var tenants *stats.TenantSet
	if runner != nil {
		tenants = stats.NewTenantSet()
	}
	for id := 1; id <= n.Table.Len(); id++ {
		f := n.Table.Get(pkt.FlowID(id))
		var s stats.FCTSample
		switch {
		case f.Done:
			s = stats.FCTSample{Size: f.Info.Size, FCT: f.FCT(), Cross: f.Info.CrossDC, Start: f.Start}
			fctHist.Observe(f.FCT().Micros())
		case f.Aborted:
			s = stats.FCTSample{Size: f.Info.Size, Cross: f.Info.CrossDC, Start: f.Start, Aborted: true}
		default:
			continue
		}
		col.Add(s)
		if tenants != nil {
			tenants.Add(runner.Tag(f.Info.ID), s)
		}
	}
	if tel != nil {
		if tel.Manifest == nil {
			tel.Manifest = metrics.NewManifest("mlccsim")
		}
		m := tel.Manifest
		m.Algorithm = cfg.Algorithm
		m.Workload = cfg.Workload
		m.Seed = cfg.Seed
		m.Flows = n.Table.Len()
		m.WallSeconds = time.Since(t0).Seconds()
		m.FillSim(n.Now(), n.Fired())
		m.Config = map[string]any{
			"intra_load":     cfg.IntraLoad,
			"cross_load":     cfg.CrossLoad,
			"duration_ms":    cfg.Duration.Millis(),
			"deadline_ms":    cfg.Deadline.Millis(),
			"hosts_per_leaf": p.HostsPerLeaf,
			"longhaul_ms":    p.LongHaulDelay.Millis(),
			"dumbbell":       cfg.Dumbbell,
			"shards":         n.ShardCount(),
		}
		if cfg.Fault != nil {
			m.Config["fault_seed"] = cfg.Fault.Seed
			m.Config["fault_events"] = len(cfg.Fault.Events)
			m.Config["fault_loss_rules"] = len(cfg.Fault.Loss)
			m.Config["fault_feedback_rules"] = len(cfg.Fault.Feedback)
			m.Config["fault_node_events"] = len(cfg.Fault.Nodes)
		}
		if cfg.Guard != nil {
			m.Config["guard"] = true
			m.Config["guard_stall_k"] = cfg.Guard.StallK
		}
		if cfg.FBWatchdogK > 0 {
			m.Config["fb_watchdog_k"] = cfg.FBWatchdogK
		}
		if sc != nil {
			m.Config["scenario"] = sc.Name
			m.Config["scenario_components"] = len(sc.Components())
			m.Config["scenario_collectives"] = len(sc.Collectives)
		}
	}

	res := &Result{Flows: n.Table.Len(), FCT: col, Trace: flows}
	if runner != nil {
		res.Tenants = tenants
		res.Collectives = runner.Statuses()
	}
	if cfg.Audit {
		res.AuditProblems = auditProblems
		if len(auditProblems) == 0 {
			res.Audit = n.Audit().Summary()
		}
	}
	res.Stalled, res.StallReason = n.Halted()
	if g := n.Guard; g != nil {
		res.GuardStorms = g.Storms
		res.GuardDeadlocks = g.Deadlocks
		res.GuardStalls = g.Stalls
	}
	res.NodeCrashes = n.Faults.NodeCrashes()
	res.NodeRestarts = n.Faults.NodeRestarts()
	res.SwitchFails = n.Faults.SwitchFails()
	res.SwitchRecovers = n.Faults.SwitchRecovers()
	for _, h := range n.Hosts {
		res.Aborted += int(h.Aborted)
		res.InvalidINT += h.InvalidINT
		res.WatchdogDecays += h.WatchdogDecays
		res.WatchdogRecovers += h.WatchdogRecovers
	}
	res.FaultDrops = n.Faults.TotalDrops()
	res.FBDrops = n.Faults.FeedbackDropped()
	res.FBCorrupts = n.Faults.FeedbackCorrupted()
	res.Completed = col.Len() - res.Aborted
	res.Unfinished = res.Flows - res.Completed - res.Aborted
	res.AvgFCTIntra, _ = col.Avg(stats.Intra)
	res.AvgFCTCross, _ = col.Avg(stats.Cross)
	res.AvgFCT, _ = col.Avg(nil)
	res.P999Intra, _ = col.Percentile(stats.Intra, 0.999)
	res.P999Cross, _ = col.Percentile(stats.Cross, 0.999)
	for _, sw := range n.Leaves {
		res.PFCPauses += sw.PFCPauses
		res.Drops += sw.Drops
	}
	for _, sw := range n.Spines {
		res.PFCPauses += sw.PFCPauses
		res.Drops += sw.Drops
	}
	for _, sw := range n.DCIs {
		res.PFCPauses += sw.PFCPauses
		res.Drops += sw.Drops
	}
	// Final publish after the manifest is filled, so /manifest and /metrics
	// serve the completed run until the caller closes the server.
	cfg.Obs.PublishNetwork(n, false)
	return res, nil
}

// Experiment re-exports the figure-regeneration harness: id is one of
// ExperimentIDs(); full selects the paper-scale topology.
func Experiment(id string, full bool, seed int64) (*exp.Report, error) {
	e, ok := exp.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("mlcc: unknown experiment %q (have %v)", id, exp.IDs())
	}
	scale := exp.Quick
	if full {
		scale = exp.Full
	}
	return e.Run(exp.Config{Scale: scale, Seed: seed})
}

// ExperimentIDs lists the reproducible paper figures.
func ExperimentIDs() []string { return exp.IDs() }
