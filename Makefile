GO ?= go

.PHONY: build test check bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis, race-enabled tests on the
# determinism-sensitive packages, and a one-shot benchmark smoke run.
check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/sim/... ./internal/exp/...
	$(GO) test -run '^$$' -bench 'BenchmarkFig02' -benchtime=1x .

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

figures:
	$(GO) run ./cmd/mlccfig -fig all
