GO ?= go

.PHONY: build test check bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis, race-enabled tests on the
# determinism-sensitive packages (including the fault-injection layer, the
# link/host paths it perturbs, the congestion-control feedback consumers and
# the conservation-audit ledger), a one-shot benchmark smoke run, the
# telemetry-overhead proof (disabled-path hot loops must stay at 0
# allocs/op), the digest invariants (golden digests identical with
# telemetry, with an empty/vacuous fault plan, with a vacuous feedback-fault
# plan, and with the audit ledger attached — the last also asserting zero
# conservation violations), the shard digest-equality property (sharded runs
# byte-identical to single-engine — including with every telemetry plane
# active, via TestShardDigestTelemetry — and merged shard ledgers closing
# clean), the observability-server invariant (digest untouched with the live
# HTTP server attached and publishing) and a short fuzz budget on each native
# fuzz target so the committed corpora keep being exercised beyond plain-seed
# replay. The race line carries an explicit -timeout: the exp digest sweeps
# take ~10 min under the race detector, right at go test's default 600s
# per-binary limit, so the default would flake on loaded machines.
check: build
	$(GO) vet ./...
	$(GO) test -race -timeout 1800s ./internal/sim/... ./internal/exp/... ./internal/metrics/... ./internal/obs/... ./internal/fault/... ./internal/link/... ./internal/host/... ./internal/audit/... ./internal/cc/...
	$(GO) test -run '^$$' -bench 'BenchmarkFig02' -benchtime=1x .
	$(GO) test -run 'TestTelemetryDisabledPathAllocFree' -count=1 .
	$(GO) test -run 'TestDigestTelemetryInvariant' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestFaultPlan' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestFeedbackPlan' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestAuditInvariant' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestShardDigest' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestObsInvariant' -short -count=1 ./internal/obs/
	$(GO) test -fuzz 'FuzzEngineSchedule' -fuzztime=10s -run '^$$' ./internal/sim/
	$(GO) test -fuzz 'FuzzFaultPlanJSON' -fuzztime=10s -run '^$$' ./internal/fault/
	$(GO) test -fuzz 'FuzzINTFeedback' -fuzztime=10s -run '^$$' ./internal/cc/
	$(GO) test -fuzz 'FuzzCDF' -fuzztime=10s -run '^$$' ./internal/workload/
	$(GO) test -fuzz 'FuzzTracefile' -fuzztime=10s -run '^$$' ./internal/workload/

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

figures:
	$(GO) run ./cmd/mlccfig -fig all
