GO ?= go

.PHONY: build test check bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis, race-enabled tests on the
# determinism-sensitive packages, a one-shot benchmark smoke run, the
# telemetry-overhead proof (disabled-path hot loops must stay at 0 allocs/op)
# and the telemetry determinism invariant (golden digests identical with the
# metrics registry and flight recorder attached).
check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/sim/... ./internal/exp/... ./internal/metrics/...
	$(GO) test -run '^$$' -bench 'BenchmarkFig02' -benchtime=1x .
	$(GO) test -run 'TestTelemetryDisabledPathAllocFree' -count=1 .
	$(GO) test -run 'TestDigestTelemetryInvariant' -short -count=1 ./internal/exp/

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

figures:
	$(GO) run ./cmd/mlccfig -fig all
