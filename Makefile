GO ?= go

.PHONY: build test check bench figures soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis, race-enabled tests on the
# determinism-sensitive packages (including the fault-injection layer, the
# link/host paths it perturbs, the congestion-control feedback consumers,
# the conservation-audit ledger and the guard plane's cross-shard quiescent
# reads), a one-shot benchmark smoke run, the telemetry-overhead proof
# (disabled-path hot loops must stay at 0 allocs/op), the digest invariants
# (golden digests identical with telemetry, with an empty/vacuous fault
# plan, with a vacuous feedback-fault plan, with the audit ledger attached —
# that one also asserting zero conservation violations — and with the guard
# plane armed but untriggered), the shard digest-equality property (sharded
# runs byte-identical to single-engine — including with every telemetry
# plane active, via TestShardDigestTelemetry, for closed-loop scenario
# plans, via TestShardDigestScenario, and for active node-fault plans, via
# TestShardDigestNodeFaults — and merged shard ledgers closing clean), the
# observability-server invariant (digest untouched with the live HTTP
# server attached and publishing), the chaos smoke tier (8 seeded random
# fault plans, each run single-engine and sharded with digest equality,
# clean conservation books and counter invariants gating every cell;
# failures print the exact seed and plan JSON), a 2-plan soak smoke across
# the full algorithm × topology matrix so the generated node-fault groups
# get end-to-end exercise pre-merge, and a short fuzz budget on each native
# fuzz target so the committed corpora keep being exercised beyond
# plain-seed replay. The race line carries an explicit -timeout: the exp
# digest sweeps take ~10 min under the race detector, right at go test's
# default 600s per-binary limit, so the default would flake on loaded
# machines.
check: build
	$(GO) vet ./...
	$(GO) test -race -timeout 1800s ./internal/sim/... ./internal/exp/... ./internal/metrics/... ./internal/obs/... ./internal/fault/... ./internal/guard/... ./internal/link/... ./internal/host/... ./internal/audit/... ./internal/cc/... ./internal/chaos/... ./internal/scenario/... ./internal/stats/...
	$(GO) test -run '^$$' -bench 'BenchmarkFig02' -benchtime=1x .
	$(GO) test -run 'TestTelemetryDisabledPathAllocFree' -count=1 .
	$(GO) test -run 'TestDigestTelemetryInvariant' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestFaultPlan' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestFeedbackPlan' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestAuditInvariant' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestGuardInvariant' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestShardDigest' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestObsInvariant' -short -count=1 ./internal/obs/
	$(GO) test -run 'TestChaosSmoke' -count=1 -timeout 600s ./internal/chaos/
	MLCC_SOAK=1 MLCC_SOAK_PLANS=2 $(GO) test -run 'TestChaosSoak' -count=1 -timeout 1200s ./internal/chaos/
	$(GO) test -fuzz 'FuzzEngineSchedule' -fuzztime=10s -run '^$$' ./internal/sim/
	$(GO) test -fuzz 'FuzzFaultPlanJSON' -fuzztime=10s -run '^$$' ./internal/fault/
	$(GO) test -fuzz 'FuzzNodeFaultPlan' -fuzztime=10s -run '^$$' ./internal/fault/
	$(GO) test -fuzz 'FuzzScenarioPlan' -fuzztime=10s -run '^$$' ./internal/scenario/
	$(GO) test -fuzz 'FuzzChaosPlan' -fuzztime=10s -run '^$$' ./internal/chaos/
	$(GO) test -fuzz 'FuzzINTFeedback' -fuzztime=10s -run '^$$' ./internal/cc/
	$(GO) test -fuzz 'FuzzCDF' -fuzztime=10s -run '^$$' ./internal/workload/
	$(GO) test -fuzz 'FuzzTracefile' -fuzztime=10s -run '^$$' ./internal/workload/

# soak runs the full chaos matrix: every algorithm × both topologies × N
# generated fault plans (default 20; override with MLCC_SOAK_PLANS), each
# cell executed at shards=1 and shards=2 and held to the same invariants as
# the smoke tier. Failures are self-reproducing: the harness prints the
# cell's algorithm, topology and seed plus the generated plan's JSON.
soak:
	MLCC_SOAK=1 MLCC_SOAK_PLANS=$${MLCC_SOAK_PLANS:-20} $(GO) test -run 'TestChaosSoak' -count=1 -timeout 7200s -v ./internal/chaos/

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

figures:
	$(GO) run ./cmd/mlccfig -fig all
