GO ?= go

.PHONY: build test check bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis, race-enabled tests on the
# determinism-sensitive packages (including the fault-injection layer and the
# link/host paths it perturbs), a one-shot benchmark smoke run, the
# telemetry-overhead proof (disabled-path hot loops must stay at 0 allocs/op)
# and the two digest invariants: golden digests identical with telemetry
# attached, and identical with an empty or vacuous fault plan attached.
check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/sim/... ./internal/exp/... ./internal/metrics/... ./internal/fault/... ./internal/link/... ./internal/host/...
	$(GO) test -run '^$$' -bench 'BenchmarkFig02' -benchtime=1x .
	$(GO) test -run 'TestTelemetryDisabledPathAllocFree' -count=1 .
	$(GO) test -run 'TestDigestTelemetryInvariant' -short -count=1 ./internal/exp/
	$(GO) test -run 'TestDigestFaultPlan' -short -count=1 ./internal/exp/

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

figures:
	$(GO) run ./cmd/mlccfig -fig all
